// Command benchdiff compares two relational-layer benchmark artifacts
// (the BENCH_*.json documents written by cmd/relbench) and flags elems/s
// regressions beyond a noise threshold — the ROADMAP follow-on to the CI
// perf-trend upload.
//
// Points are matched by (name, n). New points (present only in the new
// artifact) and retired points (present only in the base) are reported but
// never flagged. Exit status is 1 when any matched point regresses beyond
// the threshold, unless -warn is set (CI runs warn-only: shared runners
// are noisy and the artifact is a trend indicator, not a gate).
//
// Usage:
//
//	benchdiff -base BENCH_2.json -new BENCH_3.json
//	benchdiff -base BENCH_2.json -new BENCH_3.json -threshold 0.30 -warn
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// Result mirrors cmd/relbench's per-point measurement (the fields benchdiff
// consumes; unknown fields are ignored).
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	ElemsPerSec float64 `json:"elems_per_sec"`
}

// File mirrors the artifact envelope.
type File struct {
	Schema    string   `json:"schema"`
	Generated string   `json:"generated"`
	Results   []Result `json:"results"`
}

type pointKey struct {
	Name string
	N    int
}

// diffLine is one matched point's comparison.
type diffLine struct {
	Key        pointKey
	Base, New  float64
	Ratio      float64 // new/base
	Regression bool
}

// diff matches the two artifacts' points by (name, n) and flags matched
// points whose new throughput falls below base*(1-threshold). It returns
// the matched comparisons plus the unmatched point keys of either side.
func diff(base, cur File, threshold float64) (lines []diffLine, onlyBase, onlyNew []pointKey) {
	baseBy := map[pointKey]float64{}
	for _, r := range base.Results {
		baseBy[pointKey{r.Name, r.N}] = r.ElemsPerSec
	}
	seen := map[pointKey]bool{}
	for _, r := range cur.Results {
		k := pointKey{r.Name, r.N}
		seen[k] = true
		b, ok := baseBy[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		l := diffLine{Key: k, Base: b, New: r.ElemsPerSec}
		if b > 0 {
			l.Ratio = r.ElemsPerSec / b
			l.Regression = l.Ratio < 1-threshold
		}
		lines = append(lines, l)
	}
	for _, r := range base.Results {
		if k := (pointKey{r.Name, r.N}); !seen[k] {
			onlyBase = append(onlyBase, k)
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].Key.Name != lines[j].Key.Name {
			return lines[i].Key.Name < lines[j].Key.Name
		}
		return lines[i].Key.N < lines[j].Key.N
	})
	return lines, onlyBase, onlyNew
}

func load(path string) (File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func main() {
	basePath := flag.String("base", "BENCH_2.json", "baseline artifact")
	newPath := flag.String("new", "BENCH_3.json", "new artifact")
	threshold := flag.Float64("threshold", 0.20, "flag matched points slower than base by more than this fraction")
	warn := flag.Bool("warn", false, "report regressions but exit 0 (CI trend mode)")
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	lines, onlyBase, onlyNew := diff(base, cur, *threshold)
	regressions := 0
	fmt.Printf("%-14s %10s %14s %14s %8s\n", "benchmark", "n", "base elems/s", "new elems/s", "ratio")
	for _, l := range lines {
		flagStr := ""
		if l.Regression {
			flagStr = "  << REGRESSION"
			regressions++
		}
		fmt.Printf("%-14s %10d %14.0f %14.0f %7.2fx%s\n", l.Key.Name, l.Key.N, l.Base, l.New, l.Ratio, flagStr)
	}
	for _, k := range onlyNew {
		fmt.Printf("%-14s %10d %14s %14s   (new point, no baseline)\n", k.Name, k.N, "-", "-")
	}
	for _, k := range onlyBase {
		fmt.Printf("%-14s %10d %14s %14s   (retired point)\n", k.Name, k.N, "-", "-")
	}
	if regressions > 0 {
		fmt.Printf("\n%d point(s) regressed beyond %.0f%% (%s → %s)\n",
			regressions, *threshold*100, base.Generated, cur.Generated)
		if !*warn {
			os.Exit(1)
		}
		fmt.Println("(warn-only mode: exiting 0)")
		return
	}
	fmt.Printf("\nno regressions beyond %.0f%%\n", *threshold*100)
}
