// Command benchdiff compares two relational-layer benchmark artifacts
// (the BENCH_*.json documents written by cmd/relbench) and flags elems/s
// regressions beyond a noise threshold — the ROADMAP follow-on to the CI
// perf-trend upload.
//
// Points are matched by (name, n, workers). Schema-1 artifacts carry no
// per-result workers field; those results inherit the file-level workers
// value, so a schema-2 sweep diffs cleanly against the old single-pool
// artifacts at the matching pool size. New points (present only in the new
// artifact) and retired points (present only in the base) are reported but
// never flagged. When an artifact contains a -procs sweep, benchdiff also
// prints its scaling curves — each point's speedup over the fewest-workers
// run — for both sides, so a flattening curve is visible even when every
// individual point is within the noise threshold. Exit status is 1 when
// any matched point regresses beyond the threshold, unless -warn is set
// (CI runs warn-only: shared runners are noisy and the artifact is a trend
// indicator, not a gate). The exception is the gated benchmark (-gate,
// default join_all): a gated point slower than base by more than
// -gate-threshold fails the run even under -warn, so the join_all
// recovery can never silently regress.
//
// Usage:
//
//	benchdiff -base BENCH_7.json -new BENCH_8.json
//	benchdiff -base BENCH_7.json -new BENCH_8.json -threshold 0.30 -warn
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// Result mirrors cmd/relbench's per-point measurement (the fields benchdiff
// consumes; unknown fields are ignored). Workers is absent (0) in schema-1
// artifacts.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Workers     int     `json:"workers"`
	ElemsPerSec float64 `json:"elems_per_sec"`
}

// File mirrors the artifact envelope. The file-level Workers backfills
// per-result workers for schema-1 artifacts.
type File struct {
	Schema    string   `json:"schema"`
	Generated string   `json:"generated"`
	Workers   int      `json:"workers"`
	Results   []Result `json:"results"`
}

// normalize resolves every result's workers, inheriting the file-level
// value when the per-result field is absent.
func (f *File) normalize() {
	for i := range f.Results {
		if f.Results[i].Workers == 0 {
			f.Results[i].Workers = f.Workers
		}
	}
}

type pointKey struct {
	Name    string
	N       int
	Workers int
}

// diffLine is one matched point's comparison.
type diffLine struct {
	Key        pointKey
	Base, New  float64
	Ratio      float64 // new/base
	Regression bool
}

// diff matches the two artifacts' points by (name, n, workers) and flags
// matched points whose new throughput falls below base*(1-threshold). It
// returns the matched comparisons plus the unmatched point keys of either
// side.
func diff(base, cur File, threshold float64) (lines []diffLine, onlyBase, onlyNew []pointKey) {
	baseBy := map[pointKey]float64{}
	for _, r := range base.Results {
		baseBy[pointKey{r.Name, r.N, r.Workers}] = r.ElemsPerSec
	}
	seen := map[pointKey]bool{}
	for _, r := range cur.Results {
		k := pointKey{r.Name, r.N, r.Workers}
		seen[k] = true
		b, ok := baseBy[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		l := diffLine{Key: k, Base: b, New: r.ElemsPerSec}
		if b > 0 {
			l.Ratio = r.ElemsPerSec / b
			l.Regression = l.Ratio < 1-threshold
		}
		lines = append(lines, l)
	}
	for _, r := range base.Results {
		if k := (pointKey{r.Name, r.N, r.Workers}); !seen[k] {
			onlyBase = append(onlyBase, k)
		}
	}
	sortKeys := func(ks []pointKey) {
		sort.Slice(ks, func(i, j int) bool { return keyLess(ks[i], ks[j]) })
	}
	sort.Slice(lines, func(i, j int) bool { return keyLess(lines[i].Key, lines[j].Key) })
	sortKeys(onlyBase)
	sortKeys(onlyNew)
	return lines, onlyBase, onlyNew
}

func keyLess(a, b pointKey) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.N != b.N {
		return a.N < b.N
	}
	return a.Workers < b.Workers
}

// curvePoint is one (workers, throughput) sample of a scaling curve.
type curvePoint struct {
	Workers     int
	ElemsPerSec float64
}

// curves groups an artifact's results into per-(name, n) scaling curves,
// returning only those measured at more than one pool size, sorted by
// workers within each curve.
func curves(f File) map[[2]interface{}][]curvePoint {
	type nk struct {
		Name string
		N    int
	}
	by := map[nk][]curvePoint{}
	for _, r := range f.Results {
		k := nk{r.Name, r.N}
		by[k] = append(by[k], curvePoint{r.Workers, r.ElemsPerSec})
	}
	out := map[[2]interface{}][]curvePoint{}
	for k, pts := range by {
		ws := map[int]bool{}
		for _, p := range pts {
			ws[p.Workers] = true
		}
		if len(ws) < 2 {
			continue
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Workers < pts[j].Workers })
		out[[2]interface{}{k.Name, k.N}] = pts
	}
	return out
}

// printCurves renders an artifact's scaling curves as speedups over its
// fewest-workers point.
func printCurves(label string, f File) {
	cs := curves(f)
	if len(cs) == 0 {
		return
	}
	keys := make([][2]interface{}, 0, len(cs))
	for k := range cs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0].(string) != keys[j][0].(string) {
			return keys[i][0].(string) < keys[j][0].(string)
		}
		return keys[i][1].(int) < keys[j][1].(int)
	})
	fmt.Printf("\nscaling curves (%s, speedup vs fewest workers):\n", label)
	for _, k := range keys {
		pts := cs[k]
		base := pts[0].ElemsPerSec
		fmt.Printf("  %-22s n=%-9d", k[0].(string), k[1].(int))
		for _, p := range pts {
			if base > 0 {
				fmt.Printf("  %dw=%.2fx", p.Workers, p.ElemsPerSec/base)
			} else {
				fmt.Printf("  %dw=?", p.Workers)
			}
		}
		fmt.Println()
	}
}

func load(path string) (File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	f.normalize()
	return f, nil
}

func main() {
	basePath := flag.String("base", "BENCH_2.json", "baseline artifact")
	newPath := flag.String("new", "BENCH_3.json", "new artifact")
	threshold := flag.Float64("threshold", 0.20, "flag matched points slower than base by more than this fraction")
	warn := flag.Bool("warn", false, "report regressions but exit 0 (CI trend mode)")
	gate := flag.String("gate", "join_all", "benchmark name whose regressions fail even under -warn (empty disables)")
	gateThreshold := flag.Float64("gate-threshold", 0.15, "hard-failure fraction for the gated benchmark")
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	lines, onlyBase, onlyNew := diff(base, cur, *threshold)
	regressions, gated := 0, 0
	fmt.Printf("%-22s %10s %4s %14s %14s %8s\n", "benchmark", "n", "w", "base elems/s", "new elems/s", "ratio")
	for _, l := range lines {
		flagStr := ""
		if l.Regression {
			flagStr = "  << REGRESSION"
			regressions++
		}
		if *gate != "" && l.Key.Name == *gate && l.Base > 0 && l.Ratio < 1-*gateThreshold {
			flagStr = "  << GATED REGRESSION"
			gated++
		}
		fmt.Printf("%-22s %10d %4d %14.0f %14.0f %7.2fx%s\n", l.Key.Name, l.Key.N, l.Key.Workers, l.Base, l.New, l.Ratio, flagStr)
	}
	for _, k := range onlyNew {
		fmt.Printf("%-22s %10d %4d %14s %14s   (new point, no baseline)\n", k.Name, k.N, k.Workers, "-", "-")
	}
	for _, k := range onlyBase {
		fmt.Printf("%-22s %10d %4d %14s %14s   (retired point)\n", k.Name, k.N, k.Workers, "-", "-")
	}

	printCurves("base", base)
	printCurves("new", cur)

	if gated > 0 {
		fmt.Printf("\n%d %s point(s) regressed beyond the %.0f%% gate (%s → %s) — failing even in warn mode\n",
			gated, *gate, *gateThreshold*100, base.Generated, cur.Generated)
		os.Exit(1)
	}
	if regressions > 0 {
		fmt.Printf("\n%d point(s) regressed beyond %.0f%% (%s → %s)\n",
			regressions, *threshold*100, base.Generated, cur.Generated)
		if !*warn {
			os.Exit(1)
		}
		fmt.Println("(warn-only mode: exiting 0)")
		return
	}
	fmt.Printf("\nno regressions beyond %.0f%%\n", *threshold*100)
}
