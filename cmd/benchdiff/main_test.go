package main

import "testing"

func TestDiffFlagsRegressionsBeyondThreshold(t *testing.T) {
	base := File{Results: []Result{
		{Name: "groupby", N: 4096, ElemsPerSec: 1000},
		{Name: "groupby", N: 65536, ElemsPerSec: 2000},
		{Name: "join", N: 4096, ElemsPerSec: 500},
		{Name: "retired", N: 4096, ElemsPerSec: 9},
	}}
	cur := File{Results: []Result{
		{Name: "groupby", N: 4096, ElemsPerSec: 850},   // -15%: within 20% noise
		{Name: "groupby", N: 65536, ElemsPerSec: 1500}, // -25%: regression
		{Name: "join", N: 4096, ElemsPerSec: 600},      // improvement
		{Name: "fresh", N: 4096, ElemsPerSec: 7},
	}}
	lines, onlyBase, onlyNew := diff(base, cur, 0.20)
	if len(lines) != 3 {
		t.Fatalf("matched %d points, want 3", len(lines))
	}
	flagged := map[pointKey]bool{}
	for _, l := range lines {
		flagged[l.Key] = l.Regression
	}
	if flagged[pointKey{"groupby", 4096, 0}] {
		t.Fatal("-15% flagged at a 20% threshold")
	}
	if !flagged[pointKey{"groupby", 65536, 0}] {
		t.Fatal("-25% not flagged at a 20% threshold")
	}
	if flagged[pointKey{"join", 4096, 0}] {
		t.Fatal("improvement flagged as regression")
	}
	if len(onlyBase) != 1 || onlyBase[0] != (pointKey{"retired", 4096, 0}) {
		t.Fatalf("retired points = %v", onlyBase)
	}
	if len(onlyNew) != 1 || onlyNew[0] != (pointKey{"fresh", 4096, 0}) {
		t.Fatalf("new points = %v", onlyNew)
	}
}

func TestDiffZeroBaselineNeverFlags(t *testing.T) {
	base := File{Results: []Result{{Name: "x", N: 1, ElemsPerSec: 0}}}
	cur := File{Results: []Result{{Name: "x", N: 1, ElemsPerSec: 5}}}
	lines, _, _ := diff(base, cur, 0.2)
	if len(lines) != 1 || lines[0].Regression {
		t.Fatalf("zero-baseline point mishandled: %+v", lines)
	}
}

// A schema-1 artifact (no per-result workers) must match a schema-2 sweep's
// results at the file-level pool size: the old `workers: 1` single-pool
// artifacts are the baselines the new scaling sweeps diff against.
func TestDiffSchema1WorkersFallback(t *testing.T) {
	base := File{Workers: 1, Results: []Result{
		{Name: "groupby", N: 4096, ElemsPerSec: 1000}, // schema 1: Workers absent
	}}
	base.normalize()
	cur := File{Workers: 1, Results: []Result{
		{Name: "groupby", N: 4096, Workers: 1, ElemsPerSec: 1100},
		{Name: "groupby", N: 4096, Workers: 4, ElemsPerSec: 3000},
	}}
	cur.normalize()
	lines, onlyBase, onlyNew := diff(base, cur, 0.20)
	if len(lines) != 1 || lines[0].Key != (pointKey{"groupby", 4096, 1}) {
		t.Fatalf("schema-1 fallback did not match at workers=1: %+v", lines)
	}
	if len(onlyBase) != 0 {
		t.Fatalf("retired points = %v", onlyBase)
	}
	if len(onlyNew) != 1 || onlyNew[0] != (pointKey{"groupby", 4096, 4}) {
		t.Fatalf("the 4-worker point should be new, got %v", onlyNew)
	}
}

func TestCurvesGroupsSweeps(t *testing.T) {
	f := File{Results: []Result{
		{Name: "groupby", N: 4096, Workers: 4, ElemsPerSec: 3000},
		{Name: "groupby", N: 4096, Workers: 1, ElemsPerSec: 1000},
		{Name: "groupby", N: 4096, Workers: 8, ElemsPerSec: 5000},
		{Name: "join", N: 4096, Workers: 1, ElemsPerSec: 500}, // single size: no curve
	}}
	cs := curves(f)
	if len(cs) != 1 {
		t.Fatalf("got %d curves, want 1", len(cs))
	}
	pts := cs[[2]interface{}{"groupby", 4096}]
	if len(pts) != 3 || pts[0].Workers != 1 || pts[1].Workers != 4 || pts[2].Workers != 8 {
		t.Fatalf("curve not sorted by workers: %+v", pts)
	}
	if pts[2].ElemsPerSec/pts[0].ElemsPerSec != 5.0 {
		t.Fatalf("speedup = %v, want 5.0", pts[2].ElemsPerSec/pts[0].ElemsPerSec)
	}
}
