package main

import "testing"

func TestDiffFlagsRegressionsBeyondThreshold(t *testing.T) {
	base := File{Results: []Result{
		{Name: "groupby", N: 4096, ElemsPerSec: 1000},
		{Name: "groupby", N: 65536, ElemsPerSec: 2000},
		{Name: "join", N: 4096, ElemsPerSec: 500},
		{Name: "retired", N: 4096, ElemsPerSec: 9},
	}}
	cur := File{Results: []Result{
		{Name: "groupby", N: 4096, ElemsPerSec: 850},   // -15%: within 20% noise
		{Name: "groupby", N: 65536, ElemsPerSec: 1500}, // -25%: regression
		{Name: "join", N: 4096, ElemsPerSec: 600},      // improvement
		{Name: "fresh", N: 4096, ElemsPerSec: 7},
	}}
	lines, onlyBase, onlyNew := diff(base, cur, 0.20)
	if len(lines) != 3 {
		t.Fatalf("matched %d points, want 3", len(lines))
	}
	flagged := map[pointKey]bool{}
	for _, l := range lines {
		flagged[l.Key] = l.Regression
	}
	if flagged[pointKey{"groupby", 4096}] {
		t.Fatal("-15% flagged at a 20% threshold")
	}
	if !flagged[pointKey{"groupby", 65536}] {
		t.Fatal("-25% not flagged at a 20% threshold")
	}
	if flagged[pointKey{"join", 4096}] {
		t.Fatal("improvement flagged as regression")
	}
	if len(onlyBase) != 1 || onlyBase[0] != (pointKey{"retired", 4096}) {
		t.Fatalf("retired points = %v", onlyBase)
	}
	if len(onlyNew) != 1 || onlyNew[0] != (pointKey{"fresh", 4096}) {
		t.Fatalf("new points = %v", onlyNew)
	}
}

func TestDiffZeroBaselineNeverFlags(t *testing.T) {
	base := File{Results: []Result{{Name: "x", N: 1, ElemsPerSec: 0}}}
	cur := File{Results: []Result{{Name: "x", N: 1, ElemsPerSec: 5}}}
	lines, _, _ := diff(base, cur, 0.2)
	if len(lines) != 1 || lines[0].Regression {
		t.Fatalf("zero-baseline point mishandled: %+v", lines)
	}
}
