// Command oblivserve is the long-running oblivious analytics server and
// its CLI: `serve` hosts loaded relations behind the HTTP/JSON surface
// (bounded-admission session lanes, cross-query result cache, order-token
// planning), `load` pushes a relation from a file or generator, `query`
// runs a declarative spec and reports the executed sort passes, and
// `explain` renders the order-aware plan without running it.
//
// Usage:
//
//	oblivserve serve -addr :8344 -lanes 4
//	oblivserve load -name sales -rows 4096 -groups 64        # generated example
//	printf "1 120\n2 95\n" | oblivserve load -name t -stdin  # "key... value" lines
//	oblivserve query -table sales -agg sum -keyorder -as totals
//	oblivserve query -table totals -agg max                  # rides the order token
//	oblivserve explain -table totals -agg max
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"oblivmc"
	"oblivmc/client"
	"oblivmc/internal/prng"
	"oblivmc/internal/serve"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		cmdServe(os.Args[2:])
	case "load":
		cmdLoad(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:], false)
	case "explain":
		cmdQuery(os.Args[2:], true)
	default:
		usage()
	}
}

func usage() {
	log.Fatal("usage: oblivserve <serve|load|query|explain> [flags] (-h per subcommand)")
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8344", "listen address")
	lanes := fs.Int("lanes", 0, "concurrent query lanes (0 = GOMAXPROCS/2)")
	workers := fs.Int("workers", 0, "fork-join workers per lane (0 = GOMAXPROCS/lanes)")
	queueTimeout := fs.Duration("queue-timeout", 5*time.Second, "admission queue timeout before 429")
	queryTimeout := fs.Duration("query-timeout", 0, "per-query execution deadline before 504 (0 = unlimited)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain deadline before canceling stragglers (0 = wait forever)")
	cacheSize := fs.Int("cache", 128, "result cache entries")
	backend := fs.String("backend", "auto", "sort backend: auto, bitonic, shuffle")
	serial := fs.Bool("serial", false, "serial execution per lane (tests, debugging)")
	_ = fs.Parse(args)

	cfg := oblivmc.Config{Workers: *workers}
	if *serial {
		cfg.Mode = oblivmc.ModeSerial
	}
	switch *backend {
	case "auto":
	case "bitonic":
		cfg.SortBackend = oblivmc.SortBitonic
	case "shuffle":
		cfg.SortBackend = oblivmc.SortShuffle
	default:
		log.Fatalf("unknown -backend %q (auto, bitonic, shuffle)", *backend)
	}
	srv := serve.NewServer(serve.Options{
		Lanes: *lanes, QueueTimeout: *queueTimeout, QueryTimeout: *queryTimeout,
		CacheSize: *cacheSize, Exec: cfg,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("oblivserve: draining (%d in flight, deadline %v)", srv.Running(), *drain)
		// Finish in-flight queries, cancel stragglers past the deadline,
		// close lane sessions — then drop the listener.
		if canceled := srv.ShutdownDrain(*drain); canceled > 0 {
			log.Printf("oblivserve: drain deadline hit, canceled %d straggler(s)", canceled)
		}
		_ = hs.Close()
		close(done)
	}()
	log.Printf("oblivserve: listening on %s (%d lanes × %d workers)", *addr, srv.Lanes(), srv.WorkersPerLane())
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}

func cmdLoad(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8344", "server base URL")
	name := fs.String("name", "", "table name (required)")
	replace := fs.Bool("replace", false, "replace an existing binding (bumps its version)")
	useStdin := fs.Bool("stdin", false, "read \"key... value\" rows (one per line) from stdin")
	n := fs.Int("rows", 1<<12, "generated workload size (ignored with -stdin)")
	groups := fs.Int("groups", 64, "distinct keys in the generated workload")
	cols := fs.Int("cols", 1, "key columns per generated row")
	seed := fs.Uint64("seed", 1, "generator seed")
	_ = fs.Parse(args)
	if *name == "" {
		log.Fatal("load: -name is required")
	}
	var rows []client.Row
	if *useStdin {
		sc := bufio.NewScanner(os.Stdin)
		for ln := 1; sc.Scan(); ln++ {
			fields := strings.Fields(sc.Text())
			if len(fields) == 0 {
				continue
			}
			if len(fields) < 2 {
				log.Fatalf("load: line %d: need at least \"key value\"", ln)
			}
			row := client.Row{}
			for _, f := range fields[:len(fields)-1] {
				k, err := strconv.ParseUint(f, 10, 64)
				if err != nil {
					log.Fatalf("load: line %d: %v", ln, err)
				}
				row.Keys = append(row.Keys, k)
			}
			v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			if err != nil {
				log.Fatalf("load: line %d: %v", ln, err)
			}
			row.Val = v
			rows = append(rows, row)
		}
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
	} else {
		src := prng.New(*seed)
		rows = make([]client.Row, *n)
		for i := range rows {
			keys := make([]uint64, *cols)
			for c := range keys {
				keys[c] = src.Uint64n(uint64(*groups))
			}
			rows[i] = client.Row{Keys: keys, Val: src.Uint64n(1000)}
		}
	}
	info, err := client.New(*addr).Load(*name, rows, *replace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s@%d: %d rows, %d key column(s)\n",
		info.Name, info.Version, info.Rows, info.Width)
}

// specFlags builds a query spec from shared query/explain flags.
func specFlags(fs *flag.FlagSet) (*string, func() client.Spec) {
	addr := fs.String("addr", "http://localhost:8344", "server base URL")
	table := fs.String("table", "", "queried table (required)")
	join := fs.String("join", "", "join against this loaded table first")
	joinCap := fs.Int("joincap", 0, "public join output capacity (required with -join)")
	filter := fs.String("filter", "", "filter clause \"col op value\" (col = key index or 'val'; op = eq ne lt le gt ge)")
	distinct := fs.Bool("distinct", false, "deduplicate by key tuple")
	agg := fs.String("agg", "", "group-by aggregation: sum count min max avg var")
	topK := fs.Int("top", 0, "keep the k largest-value rows")
	keyOrder := fs.Bool("keyorder", false, "materialize in key order with the OrderKeys token (cross-query sort skipping)")
	as := fs.String("as", "", "store the result as this table")
	staged := fs.Bool("no-optimize", false, "run the pre-fusion staged baseline")
	graph := fs.String("graph", "", "graph operator over a width-2 edge table: cc, msf, pagerank (excludes the relational clauses)")
	rounds := fs.Int("rounds", 0, "graph round parameter: fixed cc rounds (0 = converge) or pagerank iterations (0 = 5)")
	return addr, func() client.Spec {
		if *table == "" {
			log.Fatal("-table is required")
		}
		spec := client.Spec{
			Table: *table, Distinct: *distinct, GroupBy: *agg,
			TopK: *topK, KeyOrderOut: *keyOrder, As: *as, NoOptimize: *staged,
			Graph: *graph, GraphRounds: *rounds,
		}
		if *join != "" {
			spec.Join = &client.Join{Table: *join, MaxOut: *joinCap}
		}
		if *filter != "" {
			parts := strings.Fields(*filter)
			if len(parts) != 3 {
				log.Fatalf("bad -filter %q: want \"col op value\"", *filter)
			}
			f := client.Filter{Op: parts[1]}
			if parts[0] == "val" {
				f.Col = -1
			} else {
				c, err := strconv.Atoi(parts[0])
				if err != nil {
					log.Fatalf("bad -filter column %q", parts[0])
				}
				f.Col = c
			}
			v, err := strconv.ParseUint(parts[2], 10, 64)
			if err != nil {
				log.Fatalf("bad -filter value %q", parts[2])
			}
			f.Value = v
			spec.Filter = &f
		}
		return spec
	}
}

func cmdQuery(args []string, explainOnly bool) {
	name := "query"
	if explainOnly {
		name = "explain"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	showRows := fs.Int("show", 10, "rows to print (0 = none)")
	addr, build := specFlags(fs)
	_ = fs.Parse(args)
	spec := build()
	cl := client.New(*addr)
	if explainOnly {
		plan, err := cl.Explain(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(plan)
		return
	}
	start := time.Now()
	res, err := cl.Query(spec)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("plan: %s\n", res.Stats.Plan)
	fmt.Printf("%d row(s) in %v  sorts=%d cold=%d cached=%t order=%s\n",
		len(res.Rows), elapsed.Round(time.Microsecond),
		res.Stats.SortPasses, res.Stats.ColdSortPasses, res.Stats.Cached, res.Stats.Order)
	if res.StoredAs != "" {
		fmt.Printf("stored as %s@%d\n", res.StoredAs, res.StoredVersion)
	}
	for i, r := range res.Rows {
		if i >= *showRows {
			if *showRows > 0 {
				fmt.Printf("... (%d more)\n", len(res.Rows)-i)
			}
			break
		}
		keys := make([]string, len(r.Keys))
		for c, k := range r.Keys {
			keys[c] = strconv.FormatUint(k, 10)
		}
		fmt.Printf("  %s  %d\n", strings.Join(keys, " "), r.Val)
	}
}
