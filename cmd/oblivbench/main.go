// Command oblivbench regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index). All measurements come from the
// metered executor: exact work, span and ideal-cache misses, normalized by
// the paper's bounds.
//
// Usage:
//
//	oblivbench -exp all            # everything (a few minutes)
//	oblivbench -exp table1,fig1    # selected experiments
//	oblivbench -exp table1 -quick  # smaller sizes
//
// Experiments: table1, table2, fig1, bitonic, orba, overflow, oram,
// oblivcheck.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oblivmc/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: table1,table2,fig1,bitonic,orba,overflow,oram,oblivcheck,all")
	quick := flag.Bool("quick", false, "smaller input sizes")
	cacheM := flag.Int("cacheM", experiments.DefaultCacheM, "simulated cache size (elements)")
	cacheB := flag.Int("cacheB", experiments.DefaultCacheB, "simulated cache block size (elements)")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	w := os.Stdout

	fmt.Fprintf(w, "oblivmc experiment harness — cache M=%d B=%d (elements), quick=%v\n",
		*cacheM, *cacheB, *quick)

	ok := true
	if all || want["fig1"] {
		experiments.Fig1(w)
	}
	if all || want["table1"] {
		experiments.Table1(w, *cacheM, *cacheB, *quick)
	}
	if all || want["table2"] {
		experiments.Table2(w, *cacheM, *cacheB, *quick)
	}
	if all || want["bitonic"] {
		experiments.BitonicAblation(w, *cacheM, *cacheB, *quick)
	}
	if all || want["orba"] {
		experiments.ORBAAblation(w, *cacheM, *cacheB, *quick)
	}
	if all || want["overflow"] {
		experiments.Overflow(w, *quick)
	}
	if all || want["oram"] {
		experiments.ORAMScaling(w, *cacheM, *cacheB, *quick)
	}
	if all || want["oblivcheck"] {
		ok = experiments.OblivCheck(w)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "oblivcheck: FAILURES detected")
		os.Exit(1)
	}
}
