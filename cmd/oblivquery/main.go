// Command oblivquery runs a data-oblivious relational query pipeline
// (join → filter → distinct → group-by → top-k) over a table read from
// stdin or generated randomly, reporting throughput and (optionally) the
// metered cost profile plus the adversary's-view fingerprint. Tables may
// declare one or two key columns (-cols); multi-column tables group by the
// full key tuple — GROUP BY (a, b). With -join N a generated N-row
// dimension table (keys drawn from the same -groups space, so keys repeat:
// the join is many-to-many) is equi-joined against the table first; the
// output capacity -joincap is public query shape, and a run whose true
// match count exceeds it fails with the count a retry needs. -joincap auto
// delegates the capacity to the engine's advisor (the worst-case match
// bound, which can never overflow — revealed as public shape).
//
// Usage:
//
//	oblivquery -n 65536 -agg sum -top 10        # top-10 groups by total value
//	printf "1 120\n2 95\n1 140\n" | oblivquery -stdin -agg sum
//	printf "1 7 120\n1 8 95\n1 7 140\n" | oblivquery -stdin -cols 2 -agg avg
//	oblivquery -n 4096 -min 100 -agg count -metered
//	oblivquery -n 4096 -cols 2 -agg var -explain
//	oblivquery -n 4096 -join 64 -agg count -explain   # many-to-many join feed
//
// With -graph the table is a width-2 edge table ("u v w" rows on stdin, or
// the canonical benchmark graph of -n edges) and the query is a graph
// operator instead of the relational pipeline:
//
//	oblivquery -graph cc -n 65536 -backend shuffle    # min-hook components
//	oblivquery -graph cc -rounds 4 -explain           # fixed-round, fixed trace
//	oblivquery -graph msf -n 4096 -metered
//	printf "0 1 5\n1 2 3\n" | oblivquery -graph pagerank -rounds 8 -stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"oblivmc"
	"oblivmc/internal/benchdata"
	"oblivmc/internal/prng"
)

// runGraph executes the -graph path: build a width-2 edge table (stdin
// "u v w" rows, or the canonical benchmark graph of n edges), run the
// operator, report like the relational path.
func runGraph(op string, rounds, n int, useStdin, explain, metered bool, limit int,
	seed uint64, workers int, backend string, crossover int, detShuffle bool) {
	var gop oblivmc.GraphOp
	switch op {
	case "cc":
		gop = oblivmc.GraphOpComponents
	case "msf":
		gop = oblivmc.GraphOpMSF
	case "pagerank":
		gop = oblivmc.GraphOpPageRank
	default:
		log.Fatalf("unknown graph op %q (cc, msf, pagerank)", op)
	}

	var edges []oblivmc.WeightedEdge
	if useStdin {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for ln := 1; sc.Scan(); ln++ {
			fields := strings.Fields(sc.Text())
			if len(fields) == 0 {
				continue
			}
			if len(fields) != 3 {
				log.Fatalf("line %d: edge rows are \"u v w\"", ln)
			}
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			w, err3 := strconv.ParseUint(fields[2], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				log.Fatalf("line %d: bad edge %q", ln, sc.Text())
			}
			edges = append(edges, oblivmc.WeightedEdge{U: u, V: v, W: w})
		}
	} else {
		_, bench := benchdata.GraphEdges(n)
		edges = make([]oblivmc.WeightedEdge, len(bench))
		for i, e := range bench {
			edges[i] = oblivmc.WeightedEdge{U: e.U, V: e.V, W: e.W}
		}
	}
	table, err := oblivmc.NewEdgeTable(edges)
	if err != nil {
		log.Fatal(err)
	}

	if explain {
		pl, err := oblivmc.GraphExplainTable(gop, table, rounds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "plan: %s\n", pl)
	}

	cfg := oblivmc.Config{Seed: seed, Workers: workers, SortCrossover: crossover, DeterministicShuffle: detShuffle}
	switch backend {
	case "auto":
		cfg.SortBackend = oblivmc.SortAuto
	case "bitonic":
		cfg.SortBackend = oblivmc.SortBitonic
	case "shuffle":
		cfg.SortBackend = oblivmc.SortShuffle
	default:
		log.Fatalf("unknown backend %q (auto|bitonic|shuffle)", backend)
	}
	if metered {
		cfg.Mode = oblivmc.ModeMetered
		cfg.CacheM = 1 << 12
		cfg.CacheB = 32
		cfg.Trace = true
	}

	start := time.Now()
	var res oblivmc.Table
	var rep *oblivmc.Report
	switch gop {
	case oblivmc.GraphOpMSF:
		res, rep, err = oblivmc.MSF(cfg, table)
	case oblivmc.GraphOpPageRank:
		if rounds == 0 {
			rounds = 5
		}
		res, rep, err = oblivmc.PageRank(cfg, table, rounds)
	default:
		res, rep, err = oblivmc.Components(cfg, table, rounds)
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Fprintf(os.Stderr, "%s over %d edges obliviously in %v (%.0f edges/s), %d result rows\n",
		op, table.Len(), elapsed, float64(table.Len())/elapsed.Seconds(), res.Len())
	if rep != nil {
		fmt.Fprintf(os.Stderr, "work=%d span=%d parallelism=%.0fx memops=%d cache-misses=%d\n",
			rep.Work, rep.Span, float64(rep.Work)/float64(rep.Span), rep.MemOps, rep.CacheMisses)
		fmt.Fprintf(os.Stderr, "adversary's view: %016x/%d\n",
			rep.TraceFingerprint.Hash, rep.TraceFingerprint.Count)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, r := range res.WideRows() {
		if i >= limit {
			fmt.Fprintf(w, "... (%d more rows)\n", res.Len()-limit)
			break
		}
		keys := make([]string, len(r.Keys))
		for c, k := range r.Keys {
			keys[c] = strconv.FormatUint(k, 10)
		}
		fmt.Fprintf(w, "%s\t%d\n", strings.Join(keys, "\t"), r.Val)
	}
}

func main() {
	n := flag.Int("n", 1<<14, "random workload size (ignored with -stdin)")
	groups := flag.Int("groups", 64, "distinct keys per column in the random workload")
	cols := flag.Int("cols", 1, "key columns per row (1 or 2; 2 groups by the full (a, b) tuple)")
	useStdin := flag.Bool("stdin", false, "read \"key... value\" rows (one per line, -cols keys) from stdin")
	joinN := flag.Int("join", 0, "many-to-many join: equi-join a generated dimension table of this many rows against the table first (0 = no join)")
	joinCap := flag.String("joincap", "", "public output capacity of the join: a row count, \"auto\" for the capacity advisor's worst-case bound, or empty for 4x the table's rows")
	minVal := flag.Uint64("min", 0, "filter: keep rows with value >= min (0 = no filter; any width)")
	minKey := flag.Uint64("minkey", 0, "key-only filter: keep rows with key column 0 >= minkey (0 = none; plannable below distinct/group-by; any width)")
	distinct := flag.Bool("distinct", false, "deduplicate rows by key tuple before aggregating")
	explain := flag.Bool("explain", false, "print the planner's physical pass sequence before running")
	noOpt := flag.Bool("noopt", false, "bypass the sort-fusion planner (staged baseline execution)")
	agg := flag.String("agg", "sum", "aggregation: sum|count|min|max|avg|var|none")
	top := flag.Int("top", 0, "keep only the k largest-value result rows (0 = all)")
	limit := flag.Int("limit", 20, "print at most this many result rows")
	metered := flag.Bool("metered", false, "report exact work/span/cache metrics and trace fingerprint")
	seed := flag.Uint64("seed", 1, "randomness seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	backend := flag.String("backend", "auto", "relational sort backend: auto|bitonic|shuffle (auto switches at the size crossover)")
	crossover := flag.Int("crossover", 0, "auto-backend size crossover override (0 = default)")
	detShuffle := flag.Bool("det-shuffle", false, "derive the shuffle backend's permutations from -seed for reproducible traces (testing only: a known seed forfeits the backend's obliviousness guarantee)")
	graphOp := flag.String("graph", "", "graph workload over an edge table: cc, msf, pagerank (-n counts edges; -stdin reads \"u v w\" rows)")
	rounds := flag.Int("rounds", 0, "graph round parameter: fixed cc rounds (0 = converge) or pagerank iterations (0 = 5)")
	flag.Parse()

	if *graphOp != "" {
		runGraph(*graphOp, *rounds, *n, *useStdin, *explain, *metered, *limit,
			*seed, *workers, *backend, *crossover, *detShuffle)
		return
	}

	if *cols < 1 || *cols > 2 {
		log.Fatalf("-cols must be 1 or 2 (got %d)", *cols)
	}
	if !*useStdin && (*n < 1 || *groups < 1) {
		log.Fatalf("-n and -groups must be >= 1 (got %d, %d)", *n, *groups)
	}

	var rows []oblivmc.WideRow
	if *useStdin {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		sc.Split(bufio.ScanWords)
		words := func() (uint64, bool) {
			if !sc.Scan() {
				return 0, false
			}
			v, err := strconv.ParseUint(sc.Text(), 10, 64)
			if err != nil {
				log.Fatalf("bad input %q: %v", sc.Text(), err)
			}
			return v, true
		}
		for {
			keys := make([]uint64, *cols)
			k0, ok := words()
			if !ok {
				break
			}
			keys[0] = k0
			for c := 1; c < *cols; c++ {
				k, ok := words()
				if !ok {
					log.Fatalf("truncated input: rows are %d key(s) plus a value", *cols)
				}
				keys[c] = k
			}
			v, ok := words()
			if !ok {
				log.Fatalf("truncated input: rows are %d key(s) plus a value", *cols)
			}
			rows = append(rows, oblivmc.WideRow{Keys: keys, Val: v})
		}
	} else {
		src := prng.New(*seed ^ 0xbeef)
		rows = make([]oblivmc.WideRow, *n)
		for i := range rows {
			keys := make([]uint64, *cols)
			for c := range keys {
				keys[c] = src.Uint64n(uint64(*groups))
			}
			rows[i] = oblivmc.WideRow{Keys: keys, Val: src.Uint64n(1 << 20)}
		}
	}
	table, err := oblivmc.NewWideTable(rows)
	if err != nil {
		log.Fatal(err)
	}

	q := oblivmc.Query{Distinct: *distinct, TopK: *top, NoOptimize: *noOpt}
	if *joinN > 0 {
		// The dimension table's keys repeat (same -groups space as the fact
		// table), so the expansion is genuinely many-to-many.
		src := prng.New(*seed ^ 0xd1e5e1)
		dims := make([]oblivmc.WideRow, *joinN)
		for i := range dims {
			keys := make([]uint64, *cols)
			for c := range keys {
				keys[c] = src.Uint64n(uint64(*groups))
			}
			dims[i] = oblivmc.WideRow{Keys: keys, Val: 1_000_000 + src.Uint64n(1<<20)}
		}
		dim, err := oblivmc.NewWideTable(dims)
		if err != nil {
			log.Fatal(err)
		}
		capacity := 4 * table.Len()
		switch *joinCap {
		case "", "0":
		case "auto":
			capacity = oblivmc.JoinCapAuto
		default:
			capacity, err = strconv.Atoi(*joinCap)
			if err != nil {
				log.Fatalf("-joincap must be a row count or \"auto\": %v", err)
			}
		}
		q.Join = &oblivmc.JoinSpec{Left: dim, MaxOut: capacity}
	}
	// Multi-column tables filter through the wide-predicate form
	// (Query.FilterWide); the narrow form keeps exercising the width-1 path.
	switch {
	case *minVal > 0 && *minKey > 0:
		log.Fatal("-min and -minkey are mutually exclusive")
	case *minVal > 0:
		m := *minVal
		if *cols > 1 {
			q.FilterWide = func(r oblivmc.WideRow) bool { return r.Val >= m }
		} else {
			q.Filter = func(r oblivmc.Row) bool { return r.Val >= m }
		}
	case *minKey > 0:
		m := *minKey
		if *cols > 1 {
			q.FilterWide = func(r oblivmc.WideRow) bool { return r.Keys[0] >= m }
		} else {
			q.Filter = func(r oblivmc.Row) bool { return r.Key >= m }
		}
		q.FilterKeyOnly = true
	}
	switch *agg {
	case "sum":
		q.GroupBy = oblivmc.AggSum
	case "count":
		q.GroupBy = oblivmc.AggCount
	case "min":
		q.GroupBy = oblivmc.AggMin
	case "max":
		q.GroupBy = oblivmc.AggMax
	case "avg":
		q.GroupBy = oblivmc.AggAvg
	case "var":
		q.GroupBy = oblivmc.AggVar
	case "none":
		q.GroupBy = oblivmc.AggNone
	default:
		log.Fatalf("unknown aggregation %q", *agg)
	}

	if *explain {
		pl, err := oblivmc.ExplainWidth(q, table.Width())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "plan: %s\n", pl)
	}

	cfg := oblivmc.Config{Seed: *seed, Workers: *workers, SortCrossover: *crossover, DeterministicShuffle: *detShuffle}
	switch *backend {
	case "auto":
		cfg.SortBackend = oblivmc.SortAuto
	case "bitonic":
		cfg.SortBackend = oblivmc.SortBitonic
	case "shuffle":
		cfg.SortBackend = oblivmc.SortShuffle
	default:
		log.Fatalf("unknown backend %q (auto|bitonic|shuffle)", *backend)
	}
	if *metered {
		cfg.Mode = oblivmc.ModeMetered
		cfg.CacheM = 1 << 12
		cfg.CacheB = 32
		cfg.Trace = true
	}
	start := time.Now()
	res, rep, err := oblivmc.RunQuery(cfg, table, q)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Fprintf(os.Stderr, "queried %d rows (%d key column(s)) obliviously in %v (%.0f rows/s), %d result rows\n",
		table.Len(), table.Width(), elapsed, float64(table.Len())/elapsed.Seconds(), res.Len())
	if rep != nil {
		fmt.Fprintf(os.Stderr, "work=%d span=%d parallelism=%.0fx memops=%d cache-misses=%d\n",
			rep.Work, rep.Span, float64(rep.Work)/float64(rep.Span), rep.MemOps, rep.CacheMisses)
		fmt.Fprintf(os.Stderr, "adversary's view: %016x/%d (bitonic: a function of row count, width, and query shape; shuffle: input-independent in distribution over its secret permutation)\n",
			rep.TraceFingerprint.Hash, rep.TraceFingerprint.Count)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, r := range res.WideRows() {
		if i >= *limit {
			fmt.Fprintf(w, "... (%d more rows)\n", res.Len()-*limit)
			break
		}
		keys := make([]string, len(r.Keys))
		for c, k := range r.Keys {
			keys[c] = strconv.FormatUint(k, 10)
		}
		fmt.Fprintf(w, "%s\t%d\n", strings.Join(keys, "\t"), r.Val)
	}
}
