// Command oblivquery runs a data-oblivious relational query pipeline
// (filter → distinct → group-by → top-k) over a (key, value) table read
// from stdin or generated randomly, reporting throughput and (optionally)
// the metered cost profile plus the adversary's-view fingerprint.
//
// Usage:
//
//	oblivquery -n 65536 -agg sum -top 10        # top-10 groups by total value
//	printf "1 120\n2 95\n1 140\n" | oblivquery -stdin -agg sum
//	oblivquery -n 4096 -min 100 -agg count -metered
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"oblivmc"
	"oblivmc/internal/prng"
)

func main() {
	n := flag.Int("n", 1<<14, "random workload size (ignored with -stdin)")
	groups := flag.Int("groups", 64, "distinct keys in the random workload")
	useStdin := flag.Bool("stdin", false, "read \"key value\" rows (one per line) from stdin")
	minVal := flag.Uint64("min", 0, "filter: keep rows with value >= min (0 = no filter)")
	minKey := flag.Uint64("minkey", 0, "key-only filter: keep rows with key >= minkey (0 = none; plannable below distinct/group-by)")
	distinct := flag.Bool("distinct", false, "deduplicate rows by key before aggregating")
	explain := flag.Bool("explain", false, "print the planner's physical pass sequence before running")
	noOpt := flag.Bool("noopt", false, "bypass the sort-fusion planner (staged baseline execution)")
	agg := flag.String("agg", "sum", "aggregation: sum|count|min|max|none")
	top := flag.Int("top", 0, "keep only the k largest-value result rows (0 = all)")
	limit := flag.Int("limit", 20, "print at most this many result rows")
	metered := flag.Bool("metered", false, "report exact work/span/cache metrics and trace fingerprint")
	seed := flag.Uint64("seed", 1, "randomness seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	if !*useStdin && (*n < 1 || *groups < 1) {
		log.Fatalf("-n and -groups must be >= 1 (got %d, %d)", *n, *groups)
	}

	var rows []oblivmc.Row
	if *useStdin {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		sc.Split(bufio.ScanWords)
		words := func() (uint64, bool) {
			if !sc.Scan() {
				return 0, false
			}
			v, err := strconv.ParseUint(sc.Text(), 10, 64)
			if err != nil {
				log.Fatalf("bad input %q: %v", sc.Text(), err)
			}
			return v, true
		}
		for {
			k, ok := words()
			if !ok {
				break
			}
			v, ok := words()
			if !ok {
				log.Fatal("odd number of input words: rows are \"key value\" pairs")
			}
			rows = append(rows, oblivmc.Row{Key: k, Val: v})
		}
	} else {
		src := prng.New(*seed ^ 0xbeef)
		rows = make([]oblivmc.Row, *n)
		for i := range rows {
			rows[i] = oblivmc.Row{Key: src.Uint64n(uint64(*groups)), Val: src.Uint64n(1 << 20)}
		}
	}
	table, err := oblivmc.NewTable(rows)
	if err != nil {
		log.Fatal(err)
	}

	q := oblivmc.Query{Distinct: *distinct, TopK: *top, NoOptimize: *noOpt}
	switch {
	case *minVal > 0 && *minKey > 0:
		log.Fatal("-min and -minkey are mutually exclusive")
	case *minVal > 0:
		m := *minVal
		q.Filter = func(r oblivmc.Row) bool { return r.Val >= m }
	case *minKey > 0:
		m := *minKey
		q.Filter = func(r oblivmc.Row) bool { return r.Key >= m }
		q.FilterKeyOnly = true
	}
	switch *agg {
	case "sum":
		q.GroupBy = oblivmc.AggSum
	case "count":
		q.GroupBy = oblivmc.AggCount
	case "min":
		q.GroupBy = oblivmc.AggMin
	case "max":
		q.GroupBy = oblivmc.AggMax
	case "none":
		q.GroupBy = oblivmc.AggNone
	default:
		log.Fatalf("unknown aggregation %q", *agg)
	}

	if *explain {
		pl, err := oblivmc.Explain(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "plan: %s\n", pl)
	}

	cfg := oblivmc.Config{Seed: *seed, Workers: *workers}
	if *metered {
		cfg.Mode = oblivmc.ModeMetered
		cfg.CacheM = 1 << 12
		cfg.CacheB = 32
		cfg.Trace = true
	}
	start := time.Now()
	res, rep, err := oblivmc.RunQuery(cfg, table, q)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Fprintf(os.Stderr, "queried %d rows obliviously in %v (%.0f rows/s), %d result rows\n",
		table.Len(), elapsed, float64(table.Len())/elapsed.Seconds(), res.Len())
	if rep != nil {
		fmt.Fprintf(os.Stderr, "work=%d span=%d parallelism=%.0fx memops=%d cache-misses=%d\n",
			rep.Work, rep.Span, float64(rep.Work)/float64(rep.Span), rep.MemOps, rep.CacheMisses)
		fmt.Fprintf(os.Stderr, "adversary's view: %016x/%d (depends only on row count and query shape)\n",
			rep.TraceFingerprint.Hash, rep.TraceFingerprint.Count)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, r := range res.Rows() {
		if i >= *limit {
			fmt.Fprintf(w, "... (%d more rows)\n", res.Len()-*limit)
			break
		}
		fmt.Fprintf(w, "%d\t%d\n", r.Key, r.Val)
	}
}
