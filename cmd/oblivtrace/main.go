// Command oblivtrace checks data-obliviousness empirically: it runs a
// chosen operation on two different random inputs of the same size with
// identical coins and diffs the recorded adversary views (§B).
//
// Usage:
//
//	oblivtrace -op sort -n 1024
//	oblivtrace -op shuffle -n 512
//	oblivtrace -op groupby -n 256
//	oblivtrace -op cc -n 32
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"oblivmc"
	"oblivmc/internal/prng"
)

func main() {
	op := flag.String("op", "shuffle", "operation: shuffle, sort, groupby, lookup, cc")
	n := flag.Int("n", 512, "input size")
	seed := flag.Uint64("seed", 7, "coin seed (shared by both runs)")
	flag.Parse()

	cfg := oblivmc.Config{Mode: oblivmc.ModeMetered, Trace: true, Seed: *seed}
	view := func(inputSeed uint64) (string, int64) {
		src := prng.New(inputSeed)
		var rep *oblivmc.Report
		var err error
		switch *op {
		case "shuffle", "sort":
			keys := make([]uint64, 0, *n)
			seen := map[uint64]bool{}
			for len(keys) < *n {
				k := src.Uint64() >> 4
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
			if *op == "shuffle" {
				_, rep, err = oblivmc.Shuffle(cfg, keys)
			} else {
				_, rep, err = oblivmc.Sort(cfg, keys)
			}
		case "groupby":
			g := make([]uint64, *n)
			v := make([]uint64, *n)
			for i := range g {
				g[i] = src.Uint64n(16)
				v[i] = src.Uint64n(1000)
			}
			_, rep, err = oblivmc.GroupTotals(cfg, g, v)
		case "lookup":
			keys := make([]uint64, *n)
			vals := make([]uint64, *n)
			qs := make([]uint64, *n)
			for i := range keys {
				keys[i] = uint64(i)*64 + src.Uint64n(32)
				vals[i] = src.Uint64()
				qs[i] = src.Uint64n(uint64(*n) * 64)
			}
			_, _, rep, err = oblivmc.Lookup(cfg, keys, vals, qs)
		case "cc":
			edges := make([][2]int, 0, 2**n)
			for len(edges) < 2**n {
				u, v := src.Intn(*n), src.Intn(*n)
				if u != v {
					edges = append(edges, [2]int{u, v})
				}
			}
			_, rep, err = oblivmc.ConnectedComponents(cfg, *n, edges)
		default:
			log.Fatalf("unknown op %q", *op)
		}
		if err != nil {
			log.Fatal(err)
		}
		return fmt.Sprintf("%016x", rep.TraceFingerprint.Hash), rep.TraceFingerprint.Count
	}

	h1, c1 := view(1001)
	h2, c2 := view(2002)
	fmt.Printf("op=%s n=%d seed=%d\n", *op, *n, *seed)
	fmt.Printf("input A view: hash=%s events=%d\n", h1, c1)
	fmt.Printf("input B view: hash=%s events=%d\n", h2, c2)
	if h1 == h2 && c1 == c2 {
		fmt.Println("VERDICT: OBLIVIOUS — identical access patterns on different inputs")
		return
	}
	if *op == "sort" {
		fmt.Println(`VERDICT: traces differ — expected for the full practical sort: after
the oblivious shuffle, REC-SORT's pattern depends on the (randomly
permuted) data; its *distribution* is input-independent (§C.4). Use
-op shuffle to see the exact-equality guarantee of the oblivious phase.`)
		return
	}
	fmt.Println("VERDICT: LEAK — access pattern depends on the input")
	os.Exit(1)
}
