// Command oblivsort sorts unsigned integers data-obliviously from stdin or
// generates a random workload, reporting throughput and (optionally) the
// metered cost profile.
//
// Usage:
//
//	oblivsort -n 100000                # sort a random workload
//	echo "5 1 9 3" | oblivsort -stdin  # sort stdin numbers
//	oblivsort -n 4096 -metered         # exact work/span/cache metrics
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"oblivmc"
	"oblivmc/internal/prng"
)

func main() {
	n := flag.Int("n", 1<<14, "random workload size (ignored with -stdin)")
	useStdin := flag.Bool("stdin", false, "read whitespace-separated uint64 keys from stdin")
	metered := flag.Bool("metered", false, "report exact work/span/cache metrics instead of wall-clock")
	seed := flag.Uint64("seed", 1, "randomness seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	verify := flag.Bool("verify", true, "verify the output is sorted")
	flag.Parse()

	var keys []uint64
	if *useStdin {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		sc.Split(bufio.ScanWords)
		for sc.Scan() {
			v, err := strconv.ParseUint(sc.Text(), 10, 64)
			if err != nil {
				log.Fatalf("bad input %q: %v", sc.Text(), err)
			}
			keys = append(keys, v)
		}
	} else {
		src := prng.New(*seed ^ 0xdead)
		seen := map[uint64]bool{}
		for len(keys) < *n {
			k := src.Uint64() >> 4
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	if len(keys) == 0 {
		log.Fatal("no input")
	}

	cfg := oblivmc.Config{Seed: *seed, Workers: *workers}
	if *metered {
		cfg.Mode = oblivmc.ModeMetered
		cfg.CacheM = 1 << 12
		cfg.CacheB = 32
	}
	start := time.Now()
	sorted, rep, err := oblivmc.Sort(cfg, keys)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if *verify {
		for i := 1; i < len(sorted); i++ {
			if sorted[i-1] > sorted[i] {
				log.Fatalf("NOT SORTED at %d", i)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "sorted %d keys obliviously in %v (%.0f keys/s)\n",
		len(sorted), elapsed, float64(len(sorted))/elapsed.Seconds())
	if rep != nil {
		fmt.Fprintf(os.Stderr, "work=%d span=%d parallelism=%.0fx memops=%d cache-misses=%d\n",
			rep.Work, rep.Span, float64(rep.Work)/float64(rep.Span), rep.MemOps, rep.CacheMisses)
	}
	if *useStdin {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, v := range sorted {
			fmt.Fprintln(w, v)
		}
	}
}
