// Command relbench measures the wall-clock throughput (elements/second) of
// the oblivious relational layer — Compact, GroupBy (narrow and wide),
// Join, the many-to-many JoinAll, and the end-to-end
// Filter→Distinct→GroupBy→TopK query pipeline in both its planner-fused
// and staged-baseline form — at n ∈ {2^12, 2^16, 2^20}, and writes the
// results as JSON (the BENCH_*.json trend artifact CI uploads). The graph
// points (graph_cc_bitonic / graph_cc_shuffle / graph_msf) run the
// edge-table workloads over the canonical benchmark graph at 2^16 and 2^20
// edges — n for those points counts edges — with min-hook CC measured on
// both backends side by side; MSF stops at 2^16 edges (its revealed
// Borůvka iteration count makes the 2^20 point a multi-hour measurement).
//
// The trend points run the default (Auto) sort backend; the explicitly
// suffixed points (groupby_bitonic/groupby_shuffle and the query_fused
// pair) pin one backend each, recording the keyed-bitonic versus
// shuffle-then-sort comparison side by side at every size.
//
// -procs takes a comma-separated list of pool sizes and repeats every
// point once per size, producing a scaling curve in a single artifact:
// each result records the workers it ran under, and the envelope records
// both GOMAXPROCS and the machine's CPU count so single- and multi-core
// trajectories stay distinguishable. Asking for more workers than
// GOMAXPROCS is an error — oversubscribed goroutines time-share cores and
// the "curve" would silently measure scheduler noise — unless
// -oversubscribe explicitly opts in (the artifact is then marked).
//
// Usage:
//
//	relbench -out BENCH_HEAD.json             # full sweep, one pool size
//	relbench -procs 1,4,8 -out BENCH_8.json   # scaling sweep
//	relbench -max 65536 -iters 5              # bounded sweep for quick checks
//	relbench -points groupby_shuffle,join_all # only the named points
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"oblivmc"
	"oblivmc/internal/benchdata"
	"oblivmc/internal/bitonic"
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/relops"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Workers     int     `json:"workers"`
	Iters       int     `json:"iters"`
	SecPerOp    float64 `json:"sec_per_op"`
	ElemsPerSec float64 `json:"elems_per_sec"`
}

// File is the artifact envelope. Schema 2 adds per-result workers and the
// sweep list; Workers stays as the first sweep entry so schema-1 consumers
// (and old artifacts fed to benchdiff) keep working.
type File struct {
	Schema         string   `json:"schema"`
	Generated      string   `json:"generated"`
	GoVersion      string   `json:"go_version"`
	MaxProcs       int      `json:"max_procs"`
	NumCPU         int      `json:"num_cpu"`
	Workers        int      `json:"workers"`
	Procs          []int    `json:"procs"`
	Oversubscribed bool     `json:"oversubscribed,omitempty"`
	Sizes          []int    `json:"sizes"`
	Results        []Result `json:"results"`
}

// The workload is the canonical one shared with bench_test.go via
// internal/benchdata, so this artifact stays comparable with
// `go test -bench` numbers.
func rows(n int) []oblivmc.Row {
	recs := benchdata.Records(n)
	out := make([]oblivmc.Row, n)
	for i, r := range recs {
		out[i] = oblivmc.Row{Key: r.Key, Val: r.Val}
	}
	return out
}

// Relational sort backends measured side by side. The sorter constructors
// run per iteration: the shuffle sorter counts its sorts, so instances are
// per logical run, mirroring the Table layer. The benchmarks pin the
// shuffle seed (FixedSeed / DeterministicShuffle) so iterations measure
// identical traces — acceptable here because nothing secret is being
// hidden, and exactly the mode the library defaults away from.
var benchSeed uint64 = 1

func autoSorter() obliv.Sorter    { return &core.ShuffleSorter{FixedSeed: &benchSeed} }
func bitonicSorter() obliv.Sorter { return bitonic.CacheAgnostic{} }
func shuffleSorter() obliv.Sorter {
	return &core.ShuffleSorter{FixedSeed: &benchSeed, Crossover: 2}
}

// parseProcs parses the -procs comma list into resolved pool sizes
// (0 → GOMAXPROCS) and fails fast on oversubscription unless allowed.
func parseProcs(spec string, oversubscribe bool) ([]int, bool) {
	maxProcs := runtime.GOMAXPROCS(0)
	var ws []int
	oversub := false
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			log.Fatalf("relbench: bad -procs entry %q (want a non-negative integer)", f)
		}
		if v == 0 {
			v = maxProcs
		}
		if v > maxProcs {
			if !oversubscribe {
				log.Fatalf("relbench: -procs %d exceeds GOMAXPROCS=%d; the workers would time-share cores and the scaling point would be meaningless. Raise GOMAXPROCS (or run on a bigger machine), or pass -oversubscribe to record it anyway (the artifact is marked oversubscribed).", v, maxProcs)
			}
		}
		if v > runtime.NumCPU() {
			// Even when GOMAXPROCS permits it, more workers than physical
			// CPUs is time-sharing; the artifact says so.
			oversub = true
		}
		ws = append(ws, v)
	}
	if len(ws) == 0 {
		log.Fatal("relbench: -procs parsed to an empty list")
	}
	return ws, oversub
}

func main() {
	out := flag.String("out", "BENCH_HEAD.json", "output file (\"-\" = stdout)")
	max := flag.Int("max", 1<<20, "largest relation size to measure")
	iters := flag.Int("iters", 0, "iterations per point (0 = auto: more for small n)")
	procs := flag.String("procs", "0", "comma-separated fork-join pool sizes; each point is measured once per size (0 = GOMAXPROCS)")
	points := flag.String("points", "", "comma-separated point names to measure (empty = all)")
	oversubscribe := flag.Bool("oversubscribe", false, "allow -procs entries above GOMAXPROCS (scaling numbers will reflect time-sharing, not parallel speedup)")
	flag.Parse()

	sweep, oversub := parseProcs(*procs, *oversubscribe)
	wantPoint := func(name string) bool {
		if *points == "" {
			return true
		}
		for _, p := range strings.Split(*points, ",") {
			if strings.TrimSpace(p) == name {
				return true
			}
		}
		return false
	}

	query := oblivmc.Query{
		Filter:   func(r oblivmc.Row) bool { return benchdata.FilterPred(r.Val) },
		Distinct: true,
		GroupBy:  oblivmc.AggSum,
		TopK:     benchdata.TopK,
	}

	measure := func(n int, body func()) (float64, int) {
		it := *iters
		if it == 0 {
			it = 3
			if n >= 1<<20 {
				it = 1
			}
		}
		body() // warm-up (pool spin-up, allocator)
		start := time.Now()
		for i := 0; i < it; i++ {
			body()
		}
		return time.Since(start).Seconds() / float64(it), it
	}

	doc := File{
		Schema:         "oblivmc-relbench/2",
		Generated:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		MaxProcs:       runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		Workers:        sweep[0],
		Procs:          sweep,
		Oversubscribed: oversub,
	}

	for _, w := range sweep {
		pool := forkjoin.NewPool(w)
		queryCfg := func(b oblivmc.SortBackend) oblivmc.Config {
			return oblivmc.Config{Workers: w, Seed: benchSeed, SortBackend: b, DeterministicShuffle: true}
		}

		for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
			if n > *max {
				break
			}
			if w == sweep[0] {
				doc.Sizes = append(doc.Sizes, n)
			}
			recs := benchdata.Records(n)
			wrecs := benchdata.WideRecords(n)
			lrecs := benchdata.LeftRecords(n)
			table, err := oblivmc.NewTable(rows(n))
			if err != nil {
				log.Fatal(err)
			}

			groupby := func(srt func() obliv.Sorter) func() {
				return func() {
					pool.Run(func(c *forkjoin.Ctx) {
						sp := mem.NewSpace()
						a, err := relops.Load(sp, recs, 1)
						if err != nil {
							log.Fatal(err)
						}
						relops.GroupBy(c, sp, relops.NewArena(), a, relops.AggSum, srt())
					})
				}
			}
			queryFused := func(b oblivmc.SortBackend) func() {
				return func() {
					if _, _, err := oblivmc.RunQuery(queryCfg(b), table, query); err != nil {
						log.Fatal(err)
					}
				}
			}

			pts := []struct {
				name string
				body func()
			}{
				{"compact", func() {
					pool.Run(func(c *forkjoin.Ctx) {
						sp := mem.NewSpace()
						a, err := relops.Load(sp, recs, 1)
						if err != nil {
							log.Fatal(err)
						}
						relops.Compact(c, sp, relops.NewArena(), a, func(r relops.Record) bool { return r.Val%2 == 0 }, autoSorter())
					})
				}},
				{"groupby", groupby(autoSorter)},
				{"groupby_bitonic", groupby(bitonicSorter)},
				{"groupby_shuffle", groupby(shuffleSorter)},
				{"groupby_w2", func() {
					pool.Run(func(c *forkjoin.Ctx) {
						sp := mem.NewSpace()
						a, err := relops.Load(sp, wrecs, 2)
						if err != nil {
							log.Fatal(err)
						}
						relops.GroupBy(c, sp, relops.NewArena(), a, relops.AggAvg, autoSorter())
					})
				}},
				{"join", func() {
					pool.Run(func(c *forkjoin.Ctx) {
						sp := mem.NewSpace()
						l, err := relops.Load(sp, lrecs, 1)
						if err != nil {
							log.Fatal(err)
						}
						r, err := relops.Load(sp, recs, 1)
						if err != nil {
							log.Fatal(err)
						}
						relops.Join(c, sp, relops.NewArena(), l, r, autoSorter())
					})
				}},
				{"join_all", func() {
					jl, jr, maxOut := benchdata.JoinAllRecords(n)
					pool.Run(func(c *forkjoin.Ctx) {
						sp := mem.NewSpace()
						l, err := relops.Load(sp, jl, 1)
						if err != nil {
							log.Fatal(err)
						}
						r, err := relops.Load(sp, jr, 1)
						if err != nil {
							log.Fatal(err)
						}
						if _, _, err := relops.JoinAll(c, sp, relops.NewArena(), l, r, maxOut, autoSorter()); err != nil {
							log.Fatal(err)
						}
					})
				}},
				{"query_staged", func() {
					q := query
					q.NoOptimize = true
					if _, _, err := oblivmc.RunQuery(queryCfg(oblivmc.SortAuto), table, q); err != nil {
						log.Fatal(err)
					}
				}},
				{"query_fused", queryFused(oblivmc.SortAuto)},
				{"query_fused_bitonic", queryFused(oblivmc.SortBitonic)},
				{"query_fused_shuffle", queryFused(oblivmc.SortShuffle)},
			}
			if n >= 1<<16 {
				// Graph workload points: n counts edges; the canonical
				// benchmark graph has n/16 vertices. Min-hook CC runs to
				// convergence (the round count is a fixed property of the
				// fixed workload, so iterations measure identical traces) on
				// both backends.
				_, ge := benchdata.GraphEdges(n)
				wedges := make([]oblivmc.WeightedEdge, len(ge))
				for i, e := range ge {
					wedges[i] = oblivmc.WeightedEdge{U: e.U, V: e.V, W: e.W}
				}
				etab, err := oblivmc.NewEdgeTable(wedges)
				if err != nil {
					log.Fatal(err)
				}
				graphCC := func(b oblivmc.SortBackend) func() {
					return func() {
						if _, _, err := oblivmc.Components(queryCfg(b), etab, 0); err != nil {
							log.Fatal(err)
						}
					}
				}
				pts = append(pts,
					struct {
						name string
						body func()
					}{"graph_cc_bitonic", graphCC(oblivmc.SortBitonic)},
					struct {
						name string
						body func()
					}{"graph_cc_shuffle", graphCC(oblivmc.SortShuffle)},
				)
				if n <= 1<<16 {
					pts = append(pts, struct {
						name string
						body func()
					}{"graph_msf", func() {
						if _, _, err := oblivmc.MSF(queryCfg(oblivmc.SortAuto), etab); err != nil {
							log.Fatal(err)
						}
					}})
				}
			}
			for _, p := range pts {
				if !wantPoint(p.name) {
					continue
				}
				sec, it := measure(n, p.body)
				doc.Results = append(doc.Results, Result{
					Name: p.name, N: n, Workers: w, Iters: it,
					SecPerOp:    sec,
					ElemsPerSec: float64(n) / sec,
				})
				fmt.Fprintf(os.Stderr, "%-20s n=%-8d w=%-3d %10.4fs/op %14.0f elems/s\n", p.name, n, w, sec, float64(n)/sec)
			}
		}
		pool.Close()
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
