// Command relbench measures the wall-clock throughput (elements/second) of
// the oblivious relational layer — Compact, GroupBy (narrow and wide),
// Join, the many-to-many JoinAll, and the end-to-end
// Filter→Distinct→GroupBy→TopK query pipeline in both its planner-fused
// and staged-baseline form — at n ∈ {2^12, 2^16, 2^20}, and writes the
// results as JSON (the BENCH_5.json trend artifact CI uploads).
//
// The trend points run the default (Auto) sort backend; the explicitly
// suffixed points (groupby_bitonic/groupby_shuffle and the query_fused
// pair) pin one backend each, recording the keyed-bitonic versus
// shuffle-then-sort comparison side by side at every size.
//
// Usage:
//
//	relbench -out BENCH_5.json            # full sweep
//	relbench -max 65536 -iters 5          # bounded sweep for quick checks
//	relbench -procs 8                     # pin the fork-join pool size
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"oblivmc"
	"oblivmc/internal/benchdata"
	"oblivmc/internal/bitonic"
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/relops"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Iters       int     `json:"iters"`
	SecPerOp    float64 `json:"sec_per_op"`
	ElemsPerSec float64 `json:"elems_per_sec"`
}

// File is the BENCH_5.json document.
type File struct {
	Schema    string   `json:"schema"`
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	MaxProcs  int      `json:"max_procs"`
	Workers   int      `json:"workers"`
	Sizes     []int    `json:"sizes"`
	Results   []Result `json:"results"`
}

// The workload is the canonical one shared with bench_test.go via
// internal/benchdata, so this artifact stays comparable with
// `go test -bench` numbers.
func rows(n int) []oblivmc.Row {
	recs := benchdata.Records(n)
	out := make([]oblivmc.Row, n)
	for i, r := range recs {
		out[i] = oblivmc.Row{Key: r.Key, Val: r.Val}
	}
	return out
}

// Relational sort backends measured side by side. The sorter constructors
// run per iteration: the shuffle sorter counts its sorts, so instances are
// per logical run, mirroring the Table layer. The benchmarks pin the
// shuffle seed (FixedSeed / DeterministicShuffle) so iterations measure
// identical traces — acceptable here because nothing secret is being
// hidden, and exactly the mode the library defaults away from.
var benchSeed uint64 = 1

func autoSorter() obliv.Sorter    { return &core.ShuffleSorter{FixedSeed: &benchSeed} }
func bitonicSorter() obliv.Sorter { return bitonic.CacheAgnostic{} }
func shuffleSorter() obliv.Sorter {
	return &core.ShuffleSorter{FixedSeed: &benchSeed, Crossover: 2}
}

func main() {
	out := flag.String("out", "BENCH_5.json", "output file (\"-\" = stdout)")
	max := flag.Int("max", 1<<20, "largest relation size to measure")
	iters := flag.Int("iters", 0, "iterations per point (0 = auto: more for small n)")
	procs := flag.Int("procs", 0, "fork-join pool workers (0 = GOMAXPROCS); recorded in the artifact so single- vs multi-core trajectories stay distinguishable")
	flag.Parse()

	pool := forkjoin.NewPool(*procs)
	query := oblivmc.Query{
		Filter:   func(r oblivmc.Row) bool { return benchdata.FilterPred(r.Val) },
		Distinct: true,
		GroupBy:  oblivmc.AggSum,
		TopK:     benchdata.TopK,
	}
	queryCfg := func(b oblivmc.SortBackend) oblivmc.Config {
		return oblivmc.Config{Workers: *procs, Seed: benchSeed, SortBackend: b, DeterministicShuffle: true}
	}

	measure := func(n int, body func()) (float64, int) {
		it := *iters
		if it == 0 {
			it = 3
			if n >= 1<<20 {
				it = 1
			}
		}
		body() // warm-up (pool spin-up, allocator)
		start := time.Now()
		for i := 0; i < it; i++ {
			body()
		}
		return time.Since(start).Seconds() / float64(it), it
	}

	doc := File{
		Schema:    "oblivmc-relbench/1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Workers:   pool.Workers(),
	}

	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		if n > *max {
			break
		}
		doc.Sizes = append(doc.Sizes, n)
		recs := benchdata.Records(n)
		wrecs := benchdata.WideRecords(n)
		lrecs := benchdata.LeftRecords(n)
		table, err := oblivmc.NewTable(rows(n))
		if err != nil {
			log.Fatal(err)
		}

		groupby := func(srt func() obliv.Sorter) func() {
			return func() {
				pool.Run(func(c *forkjoin.Ctx) {
					sp := mem.NewSpace()
					a, err := relops.Load(sp, recs, 1)
					if err != nil {
						log.Fatal(err)
					}
					relops.GroupBy(c, sp, relops.NewArena(), a, relops.AggSum, srt())
				})
			}
		}
		queryFused := func(b oblivmc.SortBackend) func() {
			return func() {
				if _, _, err := oblivmc.RunQuery(queryCfg(b), table, query); err != nil {
					log.Fatal(err)
				}
			}
		}

		points := []struct {
			name string
			body func()
		}{
			{"compact", func() {
				pool.Run(func(c *forkjoin.Ctx) {
					sp := mem.NewSpace()
					a, err := relops.Load(sp, recs, 1)
					if err != nil {
						log.Fatal(err)
					}
					relops.Compact(c, sp, relops.NewArena(), a, func(r relops.Record) bool { return r.Val%2 == 0 }, autoSorter())
				})
			}},
			{"groupby", groupby(autoSorter)},
			{"groupby_bitonic", groupby(bitonicSorter)},
			{"groupby_shuffle", groupby(shuffleSorter)},
			{"groupby_w2", func() {
				pool.Run(func(c *forkjoin.Ctx) {
					sp := mem.NewSpace()
					a, err := relops.Load(sp, wrecs, 2)
					if err != nil {
						log.Fatal(err)
					}
					relops.GroupBy(c, sp, relops.NewArena(), a, relops.AggAvg, autoSorter())
				})
			}},
			{"join", func() {
				pool.Run(func(c *forkjoin.Ctx) {
					sp := mem.NewSpace()
					l, err := relops.Load(sp, lrecs, 1)
					if err != nil {
						log.Fatal(err)
					}
					r, err := relops.Load(sp, recs, 1)
					if err != nil {
						log.Fatal(err)
					}
					relops.Join(c, sp, relops.NewArena(), l, r, autoSorter())
				})
			}},
			{"join_all", func() {
				jl, jr, maxOut := benchdata.JoinAllRecords(n)
				pool.Run(func(c *forkjoin.Ctx) {
					sp := mem.NewSpace()
					l, err := relops.Load(sp, jl, 1)
					if err != nil {
						log.Fatal(err)
					}
					r, err := relops.Load(sp, jr, 1)
					if err != nil {
						log.Fatal(err)
					}
					if _, _, err := relops.JoinAll(c, sp, relops.NewArena(), l, r, maxOut, autoSorter()); err != nil {
						log.Fatal(err)
					}
				})
			}},
			{"query_staged", func() {
				q := query
				q.NoOptimize = true
				if _, _, err := oblivmc.RunQuery(queryCfg(oblivmc.SortAuto), table, q); err != nil {
					log.Fatal(err)
				}
			}},
			{"query_fused", queryFused(oblivmc.SortAuto)},
			{"query_fused_bitonic", queryFused(oblivmc.SortBitonic)},
			{"query_fused_shuffle", queryFused(oblivmc.SortShuffle)},
		}
		for _, p := range points {
			sec, it := measure(n, p.body)
			doc.Results = append(doc.Results, Result{
				Name: p.name, N: n, Iters: it,
				SecPerOp:    sec,
				ElemsPerSec: float64(n) / sec,
			})
			fmt.Fprintf(os.Stderr, "%-20s n=%-8d %10.4fs/op %14.0f elems/s\n", p.name, n, sec, float64(n)/sec)
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
