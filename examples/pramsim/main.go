// Oblivious PRAM simulation (Theorem 4.1): take an off-the-shelf CRCW PRAM
// program — Wyllie pointer jumping for list ranking — and run it under the
// oblivious compiler, showing that the direct execution leaks the list
// structure while the oblivious simulation does not.
package main

import (
	"fmt"
	"log"

	"oblivmc"
	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/pram"
	"oblivmc/internal/prng"
)

func randomList(seed uint64, n int) []int {
	src := prng.New(seed)
	order := src.Perm(n)
	succ := make([]int, n)
	for k := 0; k < n-1; k++ {
		succ[order[k]] = order[k+1]
	}
	succ[order[n-1]] = order[n-1]
	return succ
}

func main() {
	const n = 32
	succ := randomList(1, n)
	m := &pram.PointerJumpMachine{N: n, Succ: succ}

	// Run the machine under the oblivious simulation via the public API.
	final, rep, err := oblivmc.SimulatePRAM(oblivmc.Config{
		Mode: oblivmc.ModeMetered, CacheM: 1 << 10, CacheB: 32, Seed: 1,
	}, m, m.InitialMemory())
	if err != nil {
		log.Fatal(err)
	}
	ranks := m.Ranks(final)
	fmt.Printf("list ranking via oblivious PRAM simulation (n=%d, %d steps):\n", n, m.Steps())
	fmt.Printf("  first ranks: %v ...\n", ranks[:8])
	fmt.Printf("  work=%d span=%d cache misses=%d\n", rep.Work, rep.Span, rep.CacheMisses)

	// Leakage comparison: the adversary's view of the DIRECT execution
	// depends on the secret list; the oblivious simulation's does not.
	direct := func(seed uint64) string {
		mm := &pram.PointerJumpMachine{N: n, Succ: randomList(seed, n)}
		sp := mem.NewSpace()
		met := forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			pram.RunDirect(c, sp, mm, mm.InitialMemory())
		})
		return fmt.Sprintf("%016x", met.Trace.Hash)
	}
	oblivious := func(seed uint64) string {
		mm := &pram.PointerJumpMachine{N: n, Succ: randomList(seed, n)}
		sp := mem.NewSpace()
		met := forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			pram.RunOblivious(c, sp, mm, mm.InitialMemory(), bitonic.CacheAgnostic{})
		})
		return fmt.Sprintf("%016x", met.Trace.Hash)
	}

	fmt.Println("\nadversary's view, two different secret lists:")
	fmt.Printf("  direct CRCW:     list1=%s list2=%s (leak!)\n", direct(10), direct(20))
	fmt.Printf("  oblivious (4.1): list1=%s list2=%s (identical)\n", oblivious(10), oblivious(20))
}
