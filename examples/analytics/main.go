// Private analytics on outsourced data — the motivating workload of the
// paper's introduction: a client stores encrypted records on an untrusted
// cloud with a secure multicore processor; queries must not leak record
// contents through memory access patterns.
//
// This example runs an oblivious group-by aggregation (per-department
// salary totals) and an oblivious join (employee → department budget)
// while recording the adversary's view to show it is data-independent.
package main

import (
	"fmt"
	"log"

	"oblivmc"
)

func main() {
	// A toy HR database. In the deployment model the contents are secret;
	// the adversary sees only memory addresses.
	departments := []uint64{ /* engineering */ 1, 2, 1, 3, 2, 1, 3, 3, 2, 1}
	salaries := []uint64{120, 95, 140, 80, 105, 130, 75, 90, 110, 125}

	// Oblivious group-by: every record learns its department's total.
	totals, _, err := oblivmc.GroupTotals(oblivmc.Config{Seed: 1}, departments, salaries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-record department salary totals (oblivious group-by):")
	seen := map[uint64]bool{}
	for i, d := range departments {
		if !seen[d] {
			fmt.Printf("  department %d: total %d\n", d, totals[i])
			seen[d] = true
		}
	}

	// Oblivious join: route each employee's department budget to them via
	// send-receive without revealing who belongs to which department.
	budgetKeys := []uint64{1, 2, 3}
	budgetVals := []uint64{1000, 800, 600}
	perEmployee, found, _, err := oblivmc.Lookup(oblivmc.Config{Seed: 2}, budgetKeys, budgetVals, departments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-employee budget via oblivious join:")
	for i := range departments {
		if found[i] {
			fmt.Printf("  employee %d -> budget %d\n", i, perEmployee[i])
		}
	}

	// The proof of privacy: run the same analytics on a database with a
	// totally different department structure and compare access patterns.
	other := []uint64{7, 7, 7, 7, 7, 8, 8, 9, 9, 9}
	traceOf := func(deps []uint64) string {
		_, r, err := oblivmc.GroupTotals(oblivmc.Config{
			Mode: oblivmc.ModeMetered, Trace: true, Seed: 5,
		}, deps, salaries)
		if err != nil {
			log.Fatal(err)
		}
		return fmt.Sprintf("%016x/%d", r.TraceFingerprint.Hash, r.TraceFingerprint.Count)
	}
	fmt.Println("\nadversary's view of the group-by:")
	fmt.Println("  database 1:", traceOf(departments))
	fmt.Println("  database 2:", traceOf(other))
	fmt.Println("  identical views => the query leaks nothing about the groups")
}
