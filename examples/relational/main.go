// Private relational analytics — the paper's §1 workload realized with the
// oblivious relational operator engine: a client outsources an encrypted
// sales database to an untrusted cloud with a secure multicore processor
// and asks "which three products earned the most revenue from large
// purchases?" plus a join against a product dimension table. The memory
// trace the cloud observes is identical for any database of the same size.
package main

import (
	"fmt"
	"log"

	"oblivmc"
	"oblivmc/internal/trace"
)

func main() {
	// A toy sales fact table: Key = product id, Val = sale amount.
	sales := []oblivmc.Row{
		{Key: 3, Val: 250}, {Key: 1, Val: 40}, {Key: 2, Val: 310},
		{Key: 3, Val: 90}, {Key: 1, Val: 500}, {Key: 2, Val: 75},
		{Key: 4, Val: 620}, {Key: 3, Val: 410}, {Key: 1, Val: 130},
		{Key: 4, Val: 55}, {Key: 2, Val: 220}, {Key: 4, Val: 180},
	}
	facts, err := oblivmc.NewTable(sales)
	if err != nil {
		log.Fatal(err)
	}

	// One declarative oblivious pipeline: keep sales >= 100, total them per
	// product, return the top-3 products by revenue.
	q := oblivmc.Query{
		Filter:  func(r oblivmc.Row) bool { return r.Val >= 100 },
		GroupBy: oblivmc.AggSum,
		TopK:    3,
	}
	if pl, err := oblivmc.Explain(q); err == nil {
		// The sort-fusion planner compiles the public query shape into a
		// pass sequence with fewer sorting-network passes than running the
		// stages one operator at a time.
		fmt.Printf("plan: %s\n\n", pl)
	}
	top3, _, err := oblivmc.RunQuery(oblivmc.Config{Seed: 1}, facts, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 products by revenue from large sales (oblivious filter→group-by→top-k):")
	for i, r := range top3.Rows() {
		fmt.Printf("  #%d product %d: revenue %d\n", i+1, r.Key, r.Val)
	}

	// Oblivious sort-merge join: attach each sale's unit price from the
	// product dimension table without revealing which products sell.
	prices, err := oblivmc.NewTable([]oblivmc.Row{
		{Key: 1, Val: 10}, {Key: 2, Val: 25}, {Key: 3, Val: 40}, {Key: 4, Val: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	joined, _, err := oblivmc.Join(oblivmc.Config{Seed: 2}, prices, facts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst sales joined with unit prices (oblivious sort-merge join):")
	for _, j := range joined[:4] {
		fmt.Printf("  product %d: amount %d at unit price %d\n", j.Key, j.RightVal, j.LeftVal)
	}

	// Many-to-many join via oblivious expansion: each product carries
	// *several* promotion rows (left keys repeat, which Join rejects), and
	// every sale matches every promotion of its product. The output
	// capacity is public shape — the true match count stays hidden in the
	// trace and is only reported back through the overflow error when the
	// capacity is too small.
	promos, err := oblivmc.NewTable([]oblivmc.Row{
		{Key: 1, Val: 5}, {Key: 1, Val: 10}, // product 1: two promos
		{Key: 2, Val: 15}, {Key: 4, Val: 20}, {Key: 4, Val: 25},
	})
	if err != nil {
		log.Fatal(err)
	}
	pairs, _, err := oblivmc.JoinAllRows(oblivmc.Config{Seed: 4}, promos, facts, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst (promotion, sale) pairs — many-to-many oblivious JoinAllRows (%d matches):\n", len(pairs))
	for _, p := range pairs[:4] {
		fmt.Printf("  product %d: sale %d under promo discount %d%%\n", p.Keys[0], p.RightVal, p.LeftVal)
	}

	// The same join feeds a declarative pipeline: how many promoted sales
	// does each product have? The planner defers the join's
	// propagate+compact sorts into the group-by's own passes.
	jq := oblivmc.Query{
		Join:    &oblivmc.JoinSpec{Left: promos, MaxOut: 32},
		GroupBy: oblivmc.AggCount,
	}
	if pl, err := oblivmc.Explain(jq); err == nil {
		fmt.Printf("\njoined-query plan: %s\n", pl)
	}
	promoted, _, err := oblivmc.RunQuery(oblivmc.Config{Seed: 4}, facts, jq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("promoted-sale counts per product (join-all → group-by(count)):")
	for _, r := range promoted.Rows() {
		fmt.Printf("  product %d: %d (sale, promo) pairs\n", r.Key, r.Val)
	}

	// Composite keys: GROUP BY (region, product) with a one-pass average.
	// Key columns span the full uint64 range — region ids here are hashes
	// far above the old 2^40 packed-key ceiling — and the key tuple, like
	// the row count, is public schema while its values stay secret.
	const west, east = 0x9e3779b97f4a7c15, 0x517cc1b727220a95
	regional, err := oblivmc.NewWideTable([]oblivmc.WideRow{
		{Keys: []uint64{west, 1}, Val: 40}, {Keys: []uint64{east, 1}, Val: 500},
		{Keys: []uint64{west, 2}, Val: 310}, {Keys: []uint64{west, 1}, Val: 130},
		{Keys: []uint64{east, 2}, Val: 75}, {Keys: []uint64{east, 1}, Val: 220},
	})
	if err != nil {
		log.Fatal(err)
	}
	avg, _, err := oblivmc.GroupByCols(oblivmc.Config{Seed: 3}, regional, oblivmc.AggAvg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naverage sale per (region, product) — oblivious GROUP BY (a, b) with AggAvg:")
	for _, r := range avg.WideRows() {
		fmt.Printf("  region %x, product %d: avg %d\n", r.Keys[0], r.Keys[1], r.Val)
	}

	// The proof of privacy: run the same query on a database with totally
	// different contents (different products, amounts, duplication) and
	// compare the adversary's views.
	other := make([]oblivmc.Row, len(sales))
	for i := range other {
		other[i] = oblivmc.Row{Key: 9, Val: uint64(i)}
	}
	viewOf := func(rows []oblivmc.Row) trace.Fingerprint {
		tab, err := oblivmc.NewTable(rows)
		if err != nil {
			log.Fatal(err)
		}
		_, rep, err := oblivmc.RunQuery(oblivmc.Config{
			Mode: oblivmc.ModeMetered, Trace: true, Seed: 5,
		}, tab, oblivmc.Query{
			Filter:  func(r oblivmc.Row) bool { return r.Val >= 100 },
			GroupBy: oblivmc.AggSum,
			TopK:    3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep.TraceFingerprint
	}
	v1, v2 := viewOf(sales), viewOf(other)
	fmt.Println("\nadversary's view of the query:")
	fmt.Printf("  database 1: %016x/%d\n", v1.Hash, v1.Count)
	fmt.Printf("  database 2: %016x/%d\n", v2.Hash, v2.Count)
	if v1.Equal(v2) {
		fmt.Println("  identical views => the query leaks nothing about the records")
	} else {
		fmt.Println("  VIEWS DIFFER — obliviousness violated!")
	}
}
