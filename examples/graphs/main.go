// Graph analytics without access-pattern leakage: connected components and
// minimum spanning forest on an outsourced graph (§5.3 / Theorem 5.2(ii)).
package main

import (
	"fmt"
	"log"

	"oblivmc"
	"oblivmc/internal/prng"
)

func main() {
	// A random sparse graph: two planted clusters plus noise edges.
	const n = 40
	src := prng.New(99)
	var edges [][2]int
	for v := 1; v < n/2; v++ { // cluster A: vertices 0..19
		edges = append(edges, [2]int{src.Intn(v), v})
	}
	for v := n/2 + 1; v < n; v++ { // cluster B: vertices 20..39
		edges = append(edges, [2]int{n/2 + src.Intn(v-n/2), v})
	}

	labels, _, err := oblivmc.ConnectedComponents(oblivmc.Config{Seed: 3}, n, edges)
	if err != nil {
		log.Fatal(err)
	}
	comps := map[int][]int{}
	for v, l := range labels {
		comps[l] = append(comps[l], v)
	}
	fmt.Printf("connected components (oblivious Shiloach–Vishkin): %d components\n", len(comps))
	for _, members := range comps {
		fmt.Printf("  %v\n", members)
	}

	// Weighted version: minimum spanning forest.
	wedges := make([]oblivmc.WeightedEdge, 0, len(edges)+10)
	for _, e := range edges {
		wedges = append(wedges, oblivmc.WeightedEdge{U: e[0], V: e[1], W: src.Uint64n(1000)})
	}
	// extra redundant edges so the MSF has real choices to make
	for k := 0; k < 10; k++ {
		u, v := src.Intn(n/2), src.Intn(n/2)
		if u != v {
			wedges = append(wedges, oblivmc.WeightedEdge{U: u, V: v, W: src.Uint64n(1000)})
		}
	}
	chosen, _, err := oblivmc.MinimumSpanningForest(oblivmc.Config{Seed: 4}, n, wedges)
	if err != nil {
		log.Fatal(err)
	}
	var total uint64
	for _, e := range chosen {
		total += wedges[e].W
	}
	fmt.Printf("\nminimum spanning forest (oblivious Borůvka): %d edges, weight %d\n",
		len(chosen), total)

	// Tree analytics on one of the spanning trees: depths, subtree sizes.
	treeEdges := edges[:n/2-1] // cluster A is a tree already
	tf, _, err := oblivmc.TreeFunctions(oblivmc.Config{Seed: 5}, n/2, treeEdges, 0)
	if err != nil {
		log.Fatal(err)
	}
	deepest, dv := uint64(0), 0
	for v, d := range tf.Depth {
		if d > deepest {
			deepest, dv = d, v
		}
	}
	fmt.Printf("\ncluster A as a rooted tree (oblivious Euler tour + list ranking):\n")
	fmt.Printf("  deepest vertex: %d at depth %d; root subtree size %d\n",
		dv, deepest, tf.SubtreeSize[0])
}
