// Quickstart: sort data obliviously, then demonstrate what "oblivious"
// means by comparing the adversary's view across two different inputs.
package main

import (
	"fmt"
	"log"

	"oblivmc"
)

func main() {
	// 1. Sort a million-ish-free small demo array on the parallel executor.
	keys := []uint64{42, 7, 99, 1, 65, 13, 27, 88, 54, 31, 70, 3}
	sorted, _, err := oblivmc.Sort(oblivmc.Config{Seed: 1}, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input: ", keys)
	fmt.Println("sorted:", sorted)

	// 2. Meter the same sort: exact work, span and cache misses — the
	// quantities the paper's bounds are stated in.
	big := make([]uint64, 2048)
	for i := range big {
		big[i] = uint64(i*2654435761) % (1 << 40)
	}
	_, rep, err := oblivmc.Sort(oblivmc.Config{
		Mode: oblivmc.ModeMetered, CacheM: 1 << 12, CacheB: 32, Seed: 2,
	}, big)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmetered oblivious sort of n=%d:\n", len(big))
	fmt.Printf("  work=%d  span=%d  (parallelism %.0fx)\n", rep.Work, rep.Span,
		float64(rep.Work)/float64(rep.Span))
	fmt.Printf("  memory ops=%d  cache misses=%d\n", rep.MemOps, rep.CacheMisses)

	// 3. Obliviousness, demonstrated: shuffle two different inputs of the
	// same length under the same seed and compare the recorded access
	// patterns — they are identical, so the pattern reveals nothing.
	mkInput := func(mult uint64) []uint64 {
		v := make([]uint64, 256)
		for i := range v {
			v[i] = (uint64(i)*mult + 17) % (1 << 40)
		}
		return v
	}
	trace := func(in []uint64) string {
		_, r, err := oblivmc.Shuffle(oblivmc.Config{
			Mode: oblivmc.ModeMetered, Trace: true, Seed: 7,
		}, in)
		if err != nil {
			log.Fatal(err)
		}
		return fmt.Sprintf("%016x/%d", r.TraceFingerprint.Hash, r.TraceFingerprint.Count)
	}
	a, b := trace(mkInput(2654435761)), trace(mkInput(40503))
	fmt.Printf("\nadversary's view, input A: %s\n", a)
	fmt.Printf("adversary's view, input B: %s\n", b)
	if a == b {
		fmt.Println("=> identical access patterns: the shuffle is data-oblivious")
	} else {
		fmt.Println("=> MISMATCH (bug!)")
	}
}
