package oblivmc

// Planner-level tests: the sort-fusion planner must (a) produce the same
// rows as the staged reference for every query shape, (b) run strictly
// fewer sorting-network passes than the staged execution on multi-stage
// pipelines, and (c) keep the trace a function of (row count, query shape)
// only — fusing and reordering passes must not let record contents leak.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/obliv/oblivtest"
	"oblivmc/internal/plan"
	"oblivmc/internal/prng"
	"oblivmc/internal/relops"
	"oblivmc/internal/trace"
)

// countingSorter wraps a ScheduledSorter and counts full sorting passes.
// The relational sorts all run through the key-schedule path, so the
// counter lives on SortScheduled; Sort delegates for completeness.
type countingSorter struct {
	inner obliv.ScheduledSorter
	n     *int
}

func (s countingSorter) Name() string { return "counting:" + s.inner.Name() }

func (s countingSorter) Sort(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], lo, n int, key func(obliv.Elem) uint64) {
	*s.n++
	s.inner.Sort(c, sp, a, lo, n, key)
}

func (s countingSorter) SortScheduled(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, scr *mem.Array[obliv.Elem], kscr *obliv.KeySchedule, lo, n int) {
	*s.n++
	s.inner.SortScheduled(c, sp, a, ks, scr, kscr, lo, n)
}

// queryShapes enumerates every stage combination, with both filter
// declarations where a filter is present.
func queryShapes() []Query {
	var out []Query
	for _, filter := range []int{0, 1, 2} { // none, value-filter, key-only filter
		for _, distinct := range []bool{false, true} {
			for _, agg := range []Agg{AggNone, AggSum, AggCount, AggMin, AggAvg, AggVar} {
				for _, k := range []int{0, 3} {
					q := Query{Distinct: distinct, GroupBy: agg, TopK: k}
					switch filter {
					case 1:
						q.Filter = func(r Row) bool { return r.Val%3 != 0 }
					case 2:
						q.Filter = func(r Row) bool { return r.Key%2 == 0 }
						q.FilterKeyOnly = true
					}
					out = append(out, q)
				}
			}
		}
	}
	return out
}

func queryRows(n int) []Row {
	src := prng.New(4242)
	rows := make([]Row, n)
	for i := range rows {
		// Distinct values (and practically distinct group aggregates) keep
		// the TopK reference exact.
		rows[i] = Row{Key: src.Uint64n(11), Val: uint64(i)*977 + src.Uint64n(900)}
	}
	return rows
}

// checkQueryResult compares got against the reference semantics of q over
// rows. For shapes without TopK the row sequence must match exactly. With
// TopK, value ties make the k-th row's identity implementation-defined
// ("broken deterministically but arbitrarily"), so the check accepts any
// valid top-k: correct length, descending values, the top-k value multiset
// of the pre-TopK relation, and every row present in that relation.
func checkQueryResult(t *testing.T, label string, got, rows []Row, q Query) {
	t.Helper()
	if q.TopK == 0 {
		want := refQuery(rows, q)
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: row %d = %v, want %v", label, j, got[j], want[j])
			}
		}
		return
	}
	pre := q
	pre.TopK = 0
	preRows := refQuery(rows, pre)
	preCount := map[Row]int{}
	vals := make([]uint64, 0, len(preRows))
	for _, r := range preRows {
		preCount[r]++
		vals = append(vals, r.Val)
	}
	for i := 1; i < len(vals); i++ { // insertion-sort descending
		for j := i; j > 0 && vals[j] > vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	wantLen := q.TopK
	if wantLen > len(preRows) {
		wantLen = len(preRows)
	}
	if len(got) != wantLen {
		t.Fatalf("%s: %d rows, want %d (%v)", label, len(got), wantLen, got)
	}
	for j, r := range got {
		if r.Val != vals[j] {
			t.Fatalf("%s: row %d val %d, want %d (top vals %v, got %v)", label, j, r.Val, vals[j], vals[:wantLen], got)
		}
		if preCount[r] == 0 {
			t.Fatalf("%s: row %d = %v is not a pre-TopK result row", label, j, r)
		}
		preCount[r]--
	}
}

// TestPlannedMatchesReferenceAllShapes runs every query shape through the
// fused planner path and the staged baseline and compares both against the
// plain-Go reference semantics.
func TestPlannedMatchesReferenceAllShapes(t *testing.T) {
	rows := queryRows(96)
	tab := mustTable(t, rows)
	for i, q := range queryShapes() {
		label := fmt.Sprintf("shape %d (filter=%v keyonly=%v distinct=%v agg=%d topk=%d)",
			i, q.Filter != nil, q.FilterKeyOnly, q.Distinct, q.GroupBy, q.TopK)

		fused, _, err := RunQuery(Config{Mode: ModeSerial}, tab, q)
		if err != nil {
			t.Fatalf("%s: fused: %v", label, err)
		}
		staged := q
		staged.NoOptimize = true
		base, _, err := RunQuery(Config{Mode: ModeSerial}, tab, staged)
		if err != nil {
			t.Fatalf("%s: staged: %v", label, err)
		}
		checkQueryResult(t, label+" fused", fused.Rows(), rows, q)
		checkQueryResult(t, label+" staged", base.Rows(), rows, q)
	}
}

// TestFusedRunsFewerSorts is the sort-pass counter test: the fused
// Filter→Distinct→GroupBy→TopK pipeline must run strictly fewer sorts than
// the staged seed path — concretely 2 against 6 — and every multi-stage
// shape must save at least one sort.
func TestFusedRunsFewerSorts(t *testing.T) {
	rows := queryRows(64)
	tab := mustTable(t, rows)

	sortsOf := func(q Query, staged bool) int {
		n := 0
		srt := countingSorter{inner: obliv.SelectionNetwork{}, n: &n}
		kind, err := queryAgg(q)
		if err != nil {
			t.Fatal(err)
		}
		if staged {
			_, _, err = runQueryStaged(exec{cfg: Config{Mode: ModeSerial}}, tab, q, kind, srt)
		} else {
			_, _, err = runQueryPlanned(exec{cfg: Config{Mode: ModeSerial}}, tab, q, kind, srt)
		}
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	full := Query{
		Filter:   func(r Row) bool { return r.Val%2 == 0 },
		Distinct: true,
		GroupBy:  AggSum,
		TopK:     5,
	}
	if fused, staged := sortsOf(full, false), sortsOf(full, true); fused != 2 || staged != 6 {
		t.Fatalf("full pipeline: fused %d sorts, staged %d — want 2 and 6", fused, staged)
	}

	for i, q := range queryShapes() {
		stages := 0
		for _, b := range []bool{q.Filter != nil, q.Distinct, q.GroupBy != AggNone, q.TopK > 0} {
			if b {
				stages++
			}
		}
		if stages < 2 {
			continue
		}
		if fused, staged := sortsOf(q, false), sortsOf(q, true); fused >= staged {
			t.Errorf("shape %d: fused %d sorts >= staged %d", i, fused, staged)
		}
	}
}

// TestWidthOneQueriesKeepTwoPassSchedule is the sort-pass-counter pin for
// the wide-key refactor: a width-1 four-stage pipeline must still plan and
// execute exactly 2 sorting passes (PR 2's fused schedule), and widening
// the table to two key columns must not change the pass count — width only
// widens the schedules, never the plan.
func TestWidthOneQueriesKeepTwoPassSchedule(t *testing.T) {
	q := Query{
		Filter:   func(r Row) bool { return r.Val%2 == 0 },
		Distinct: true,
		GroupBy:  AggSum,
		TopK:     5,
	}
	kind, err := queryAgg(q)
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= relops.MaxKeyCols; w++ {
		if pl := plan.Build(q.shape(kind, w, OrderNone)); pl.SortPasses != 2 {
			t.Fatalf("width %d: planned %d sorts, want 2 (%s)", w, pl.SortPasses, pl)
		}
	}

	// Executed pass count, width 1: the full pipeline runs 2 sorts.
	tab := mustTable(t, queryRows(64))
	n := 0
	if _, _, err := runQueryPlanned(exec{cfg: Config{Mode: ModeSerial}}, tab, q,
		kind, countingSorter{inner: obliv.SelectionNetwork{}, n: &n}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("width-1 fused pipeline executed %d sorts, want 2", n)
	}

	// Executed pass count, width 2 (no filter — wide filters are a
	// follow-on): Distinct→GroupBy→TopK fuses to the same 2 sorts.
	wq := Query{Distinct: true, GroupBy: AggAvg, TopK: 5}
	wkind, err := queryAgg(wq)
	if err != nil {
		t.Fatal(err)
	}
	wtab := mustWideTable(t, wideQueryRows(64))
	n = 0
	if _, _, err := runQueryPlanned(exec{cfg: Config{Mode: ModeSerial}}, wtab, wq,
		wkind, countingSorter{inner: obliv.SelectionNetwork{}, n: &n}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("width-2 fused pipeline executed %d sorts, want 2", n)
	}
}

// TestPlannedQueryObliviousTrace asserts trace-fingerprint equality for
// fused/reordered plans across same-shape, different-content tables: the
// planner's rewrites must leave the adversary's view a function of (row
// count, query shape) only. The views come from the public metered Report,
// so the assertion goes through oblivtest.Equal rather than the harness's
// own metered runner.
func TestPlannedQueryObliviousTrace(t *testing.T) {
	shapes := []Query{
		{Filter: func(r Row) bool { return r.Val > 100 }, Distinct: true, GroupBy: AggSum, TopK: 4},
		{Filter: func(r Row) bool { return r.Key%2 == 0 }, FilterKeyOnly: true, Distinct: true},
		{Filter: func(r Row) bool { return r.Key < 5 }, FilterKeyOnly: true, GroupBy: AggMax},
		{Distinct: true, GroupBy: AggCount},
		{Filter: func(r Row) bool { return r.Val%2 == 1 }, TopK: 7},
		{GroupBy: AggMin},
	}
	const n = 80
	src := prng.New(555)
	contents := [][]Row{make([]Row, n), make([]Row, n), make([]Row, n)}
	for i := 0; i < n; i++ {
		contents[0][i] = Row{Key: 3, Val: 0}                                         // one group, constant
		contents[1][i] = Row{Key: uint64(i), Val: uint64(1<<40) - uint64(i)}         // all distinct
		contents[2][i] = Row{Key: src.Uint64n(6), Val: src.Uint64n(uint64(1 << 33))} // random dups
	}
	for si, q := range shapes {
		fps := make([]trace.Fingerprint, len(contents))
		for ci, rows := range contents {
			fps[ci] = queryTraceOf(t, mustTable(t, rows), q)
		}
		oblivtest.Equal(t, fmt.Sprintf("planned query shape %d", si), fps...)
	}
}

// queryTraceOf runs q metered over tab and returns the adversary's view
// from the public Report.
func queryTraceOf(t *testing.T, tab Table, q Query) trace.Fingerprint {
	t.Helper()
	_, rep, err := RunQuery(Config{Mode: ModeMetered, Trace: true, Seed: 9}, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	return rep.TraceFingerprint
}

// TestPlannedTraceDependsOnShape is the sanity inverse: different query
// shapes (and different row counts) must change the view.
func TestPlannedTraceDependsOnShape(t *testing.T) {
	rows := queryRows(64)
	withTopK := queryTraceOf(t, mustTable(t, rows), Query{GroupBy: AggSum, TopK: 3})
	withoutTopK := queryTraceOf(t, mustTable(t, rows), Query{GroupBy: AggSum})
	if withTopK.Equal(withoutTopK) {
		t.Fatal("different query shapes should yield different traces")
	}
	small := queryTraceOf(t, mustTable(t, queryRows(32)), Query{GroupBy: AggSum, TopK: 3})
	if small.Equal(withTopK) {
		t.Fatal("different row counts should yield different traces")
	}
}

// TestExplain pins the plan rendering the CLI exposes.
func TestExplain(t *testing.T) {
	got, err := Explain(Query{
		Filter:   func(r Row) bool { return r.Val > 0 },
		Distinct: true,
		GroupBy:  AggSum,
		TopK:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "filter-mark → sort(key,pos) → dedup+aggregate → sort(val↓) → topk [2 sorts, staged 6]"
	if got != want {
		t.Fatalf("Explain = %q, want %q", got, want)
	}

	// A NoOptimize query explains what actually runs: the staged sequence.
	got, err = Explain(Query{Distinct: true, GroupBy: AggSum, TopK: 2, NoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := "staged: distinct → group-by → top-k [5 sorts]"; got != want {
		t.Fatalf("Explain(NoOptimize) = %q, want %q", got, want)
	}

	// Explain validates like RunQuery.
	if _, err := Explain(Query{TopK: -1}); err == nil {
		t.Fatal("Explain accepted negative k")
	}
}

// TestTableBoundaryErrors pins the typed boundary errors at both layers.
// The old 2^40 key ceiling is gone: every key below the filler sentinel
// (relops.KeyLimit = 2^64-1) is legal, and the row bound — now 2^40, far
// too large to materialize — is exercised through relops.CheckShape.
func TestTableBoundaryErrors(t *testing.T) {
	if _, err := NewTable([]Row{{Key: 1 << 40, Val: 1}}); err != nil {
		t.Fatalf("NewTable rejected a key above the lifted 2^40 bound: %v", err)
	}
	if _, err := NewTable([]Row{{Key: ^uint64(0), Val: 1}}); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("NewTable key at the filler sentinel: err = %v, want ErrKeyTooLarge", err)
	}
	if _, err := NewTable([]Row{{Key: ^uint64(0) - 1, Val: 1}}); err != nil {
		t.Fatalf("NewTable rejected the maximum legal key: %v", err)
	}
	if err := relops.CheckShape(relops.MaxRows+1, 1); !errors.Is(err, relops.ErrTooManyRows) {
		t.Fatalf("CheckShape row overflow: err = %v, want ErrTooManyRows", err)
	}
	if _, err := NewWideTable([]WideRow{{Keys: []uint64{1, 2, 3}, Val: 1}}); !errors.Is(err, ErrBadWidth) {
		t.Fatalf("NewWideTable 3 columns: err = %v, want ErrBadWidth", err)
	}
	if _, err := NewWideTable([]WideRow{{Keys: []uint64{1, 2}}, {Keys: []uint64{3}}}); !errors.Is(err, ErrBadWidth) {
		t.Fatalf("NewWideTable ragged widths: err = %v, want ErrBadWidth", err)
	}
	if _, err := NewWideTable([]WideRow{{Keys: []uint64{1, ^uint64(0)}, Val: 1}}); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("NewWideTable sentinel column: err = %v, want ErrKeyTooLarge", err)
	}
	// The public errors wrap the relops ones, so either layer matches.
	if !errors.Is(ErrKeyTooLarge, relops.ErrKeyTooLarge) || !errors.Is(ErrTooManyRows, relops.ErrTooManyRows) ||
		!errors.Is(ErrBadWidth, relops.ErrBadWidth) {
		t.Fatal("public boundary errors must wrap the relops typed errors")
	}
}

// --- Join stage --------------------------------------------------------------

// refJoinedRows is the plain-Go reference of the Query join stage: one row
// per (left row, right row) pair sharing its key, carrying the right row's
// key and value, ordered by (right position, left position).
func refJoinedRows(left, rows []Row) []Row {
	var out []Row
	for _, r := range rows {
		for _, l := range left {
			if l.Key == r.Key {
				out = append(out, r)
			}
		}
	}
	return out
}

// joinedQueryTables builds the canonical join-query fixture: a duplicated
// left dimension (two rows per key) against a right table with repeated
// keys, so the expansion is genuinely many-to-many in both directions.
func joinedQueryTables(t *testing.T, n int) (Table, Table, []Row, []Row) {
	t.Helper()
	src := prng.New(977)
	left := make([]Row, 12)
	for i := range left {
		left[i] = Row{Key: uint64(i / 2), Val: 1000 + uint64(i)} // keys 0..5, each twice
	}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Key: src.Uint64n(9), Val: uint64(i)*977 + src.Uint64n(900)}
	}
	return mustTable(t, left), mustTable(t, rows), left, rows
}

// TestJoinedQueryMatchesReference runs joined query shapes through both
// the planned and the staged path and compares against the expand-then-ref
// semantics.
func TestJoinedQueryMatchesReference(t *testing.T) {
	lt, rt, left, rows := joinedQueryTables(t, 48)
	expanded := refJoinedRows(left, rows)
	spec := &JoinSpec{Left: lt, MaxOut: len(expanded) + 5}
	shapes := []Query{
		{},
		{Filter: func(r Row) bool { return r.Val%3 != 0 }},
		{Distinct: true},
		{GroupBy: AggSum},
		{GroupBy: AggCount, TopK: 3},
		{Filter: func(r Row) bool { return r.Key%2 == 0 }, FilterKeyOnly: true, Distinct: true, GroupBy: AggSum, TopK: 4},
	}
	for i, q := range shapes {
		q.Join = spec
		label := fmt.Sprintf("joined shape %d", i)
		fused, _, err := RunQuery(Config{Mode: ModeSerial}, rt, q)
		if err != nil {
			t.Fatalf("%s: fused: %v", label, err)
		}
		staged := q
		staged.NoOptimize = true
		base, _, err := RunQuery(Config{Mode: ModeSerial}, rt, staged)
		if err != nil {
			t.Fatalf("%s: staged: %v", label, err)
		}
		unary := q
		unary.Join = nil
		checkQueryResult(t, label+" fused", fused.Rows(), expanded, unary)
		checkQueryResult(t, label+" staged", base.Rows(), expanded, unary)
	}
}

// TestJoinedQueryWide compares the planned and staged paths over a
// two-column joined query (the reference semantics are pinned at width 1;
// width only widens the schedules).
func TestJoinedQueryWide(t *testing.T) {
	wide := func(rows []WideRow) Table { return mustWideTable(t, rows) }
	lt := wide([]WideRow{
		{Keys: []uint64{1, 7}, Val: 100}, {Keys: []uint64{1, 7}, Val: 101},
		{Keys: []uint64{2, 7}, Val: 200}, {Keys: []uint64{1, 8}, Val: 300},
	})
	rt := wide([]WideRow{
		{Keys: []uint64{1, 7}, Val: 10}, {Keys: []uint64{2, 7}, Val: 20},
		{Keys: []uint64{1, 8}, Val: 30}, {Keys: []uint64{1, 7}, Val: 40},
		{Keys: []uint64{9, 9}, Val: 50},
	})
	// Matches: (1,7)×2 for rows 10 and 40, (2,7)×1, (1,8)×1 → 7 pairs.
	q := Query{Join: &JoinSpec{Left: lt, MaxOut: 8}, GroupBy: AggCount}
	fused, _, err := RunQuery(Config{Mode: ModeSerial}, rt, q)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]uint64]uint64{{1, 7}: 4, {2, 7}: 1, {1, 8}: 1}
	if len(fused.WideRows()) != len(want) {
		t.Fatalf("joined wide group-by: %v, want one row per matched tuple %v", fused.WideRows(), want)
	}
	for _, r := range fused.WideRows() {
		if want[[2]uint64{r.Keys[0], r.Keys[1]}] != r.Val {
			t.Fatalf("joined wide group-by row %v, want counts %v", r, want)
		}
	}
	staged := q
	staged.NoOptimize = true
	base, _, err := RunQuery(Config{Mode: ModeSerial}, rt, staged)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(base.WideRows()) != fmt.Sprint(fused.WideRows()) {
		t.Fatalf("staged joined wide result %v differs from fused %v", base.WideRows(), fused.WideRows())
	}
}

// TestJoinPlanSortPasses is the planner sort-pass-count pin for the join
// stage: the stand-alone join plans its three operator sorts (the
// bitonic-merge expansion absorbed the old distribution sort), and feeding
// a downstream stage defers the propagate+compact tail down to one — so
// the fused join+group-by pipeline runs 3 sorts against the staged 5.
func TestJoinPlanSortPasses(t *testing.T) {
	for _, tc := range []struct {
		shape         plan.Shape
		sorts, staged int
		rendered      string
	}{
		{plan.Shape{Join: true}, 3, 3,
			"join-all [3 sorts, staged 3]"},
		{plan.Shape{Join: true, GroupBy: true}, 3, 5,
			"join-all+defer → sort(key,pos) → aggregate → compact(pos) [3 sorts, staged 5]"},
		{plan.Shape{Join: true, TopK: 3}, 2, 4,
			"join-all+defer → sort(val↓) → topk [2 sorts, staged 4]"},
		{plan.Shape{Join: true, Distinct: true, GroupBy: true}, 3, 7,
			"join-all+defer → sort(key,pos) → dedup+aggregate → compact(pos) [3 sorts, staged 7]"},
	} {
		pl := plan.Build(tc.shape)
		if pl.SortPasses != tc.sorts || pl.StagedSortPasses != tc.staged {
			t.Errorf("shape %+v: %d sorts staged %d, want %d/%d", tc.shape, pl.SortPasses, pl.StagedSortPasses, tc.sorts, tc.staged)
		}
		if got := pl.String(); got != tc.rendered {
			t.Errorf("shape %+v renders %q, want %q", tc.shape, got, tc.rendered)
		}
		// Width never changes the join plan's pass structure.
		wide := tc.shape
		wide.KeyCols = 2
		if wpl := plan.Build(wide); wpl.SortPasses != tc.sorts {
			t.Errorf("shape %+v at width 2: %d sorts, want %d", tc.shape, wpl.SortPasses, tc.sorts)
		}
	}
}

// TestJoinedQueryExecutedSorts counts the sorting passes the executor
// actually runs for a joined pipeline: the deferred join's one sort plus
// the group-by stage's two — exactly the planned 3 — against the staged 5
// (stand-alone JoinAll's three plus GroupBy's two).
func TestJoinedQueryExecutedSorts(t *testing.T) {
	lt, rt, left, rows := joinedQueryTables(t, 32)
	q := Query{Join: &JoinSpec{Left: lt, MaxOut: len(refJoinedRows(left, rows)) + 1}, GroupBy: AggSum}
	kind, err := queryAgg(q)
	if err != nil {
		t.Fatal(err)
	}
	sortsOf := func(staged bool) int {
		n := 0
		srt := countingSorter{inner: obliv.SelectionNetwork{}, n: &n}
		if staged {
			_, _, err = runQueryStaged(exec{cfg: Config{Mode: ModeSerial}}, rt, q, kind, srt)
		} else {
			_, _, err = runQueryPlanned(exec{cfg: Config{Mode: ModeSerial}}, rt, q, kind, srt)
		}
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if fused, staged := sortsOf(false), sortsOf(true); fused != 3 || staged != 5 {
		t.Fatalf("joined group-by pipeline: fused %d sorts, staged %d — want 3 and 5", fused, staged)
	}
}

// TestJoinedQueryObliviousTrace: the joined query's view must be identical
// across different contents of both sides — at both key widths — and must
// change when the public capacity changes.
func TestJoinedQueryObliviousTrace(t *testing.T) {
	const nl, nr, maxOut = 8, 24, 64
	q := func(lt Table) Query { return Query{Join: &JoinSpec{Left: lt, MaxOut: maxOut}, GroupBy: AggSum} }

	narrow := func(seed uint64) (Table, Table) {
		src := prng.New(seed)
		left := make([]Row, nl)
		for i := range left {
			left[i] = Row{Key: src.Uint64n(4), Val: src.Uint64n(1 << 20)}
		}
		rows := make([]Row, nr)
		for i := range rows {
			rows[i] = Row{Key: src.Uint64n(4), Val: src.Uint64n(1 << 20)}
		}
		return mustTable(t, left), mustTable(t, rows)
	}
	var fps []trace.Fingerprint
	for _, seed := range []uint64{1, 2, 3} {
		lt, rt := narrow(seed)
		fps = append(fps, queryTraceOf(t, rt, q(lt)))
	}
	oblivtest.Equal(t, "joined query width 1", fps...)

	wideTabs := func(seed uint64) (Table, Table) {
		src := prng.New(seed)
		left := make([]WideRow, nl)
		for i := range left {
			left[i] = WideRow{Keys: []uint64{src.Uint64n(4), src.Uint64n(3)}, Val: src.Uint64n(1 << 20)}
		}
		rows := make([]WideRow, nr)
		for i := range rows {
			rows[i] = WideRow{Keys: []uint64{src.Uint64n(4), src.Uint64n(3)}, Val: src.Uint64n(1 << 20)}
		}
		return mustWideTable(t, left), mustWideTable(t, rows)
	}
	var wfps []trace.Fingerprint
	for _, seed := range []uint64{4, 5, 6} {
		lt, rt := wideTabs(seed)
		wfps = append(wfps, queryTraceOf(t, rt, q(lt)))
	}
	oblivtest.Equal(t, "joined query width 2", wfps...)
	if fps[0].Equal(wfps[0]) {
		t.Fatal("width-1 and width-2 joined queries should yield different views")
	}

	// Capacity is public shape: a different maxOut must change the view.
	lt, rt := narrow(1)
	bigger := queryTraceOf(t, rt, Query{Join: &JoinSpec{Left: lt, MaxOut: 2 * maxOut}, GroupBy: AggSum})
	if bigger.Equal(fps[0]) {
		t.Fatal("different join capacities should yield different views")
	}
}

// TestJoinCapAuto: a JoinCapAuto capacity resolves to the advisor's exact
// worst-case bound inside the run, so the query result matches an explicit
// exact capacity, the join can never overflow, and both surfaces (Query
// and JoinAllRows) accept the sentinel.
func TestJoinCapAuto(t *testing.T) {
	lt, rt, left, rows := joinedQueryTables(t, 48)
	want := refJoinedRows(left, rows)

	exact, _, err := RunQuery(Config{Mode: ModeSerial}, rt, Query{Join: &JoinSpec{Left: lt, MaxOut: len(want)}, GroupBy: AggSum})
	if err != nil {
		t.Fatal(err)
	}
	auto, _, err := RunQuery(Config{Mode: ModeSerial}, rt, Query{Join: &JoinSpec{Left: lt, MaxOut: JoinCapAuto}, GroupBy: AggSum})
	if err != nil {
		t.Fatalf("JoinCapAuto query: %v", err)
	}
	if fmt.Sprint(auto.Rows()) != fmt.Sprint(exact.Rows()) {
		t.Fatalf("auto-capacity rows %v differ from exact-capacity rows %v", auto.Rows(), exact.Rows())
	}

	// The staged path resolves the sentinel through the same seam.
	staged, _, err := RunQuery(Config{Mode: ModeSerial}, rt, Query{Join: &JoinSpec{Left: lt, MaxOut: JoinCapAuto}, GroupBy: AggSum, NoOptimize: true})
	if err != nil {
		t.Fatalf("JoinCapAuto staged query: %v", err)
	}
	if fmt.Sprint(staged.Rows()) != fmt.Sprint(exact.Rows()) {
		t.Fatalf("staged auto-capacity rows %v differ from exact %v", staged.Rows(), exact.Rows())
	}

	// JoinAllRows honors the sentinel and delivers every match.
	joined, _, err := JoinAllRows(Config{Mode: ModeSerial}, lt, rt, JoinCapAuto)
	if err != nil {
		t.Fatalf("JoinAllRows(JoinCapAuto): %v", err)
	}
	if len(joined) != len(want) {
		t.Fatalf("JoinAllRows(JoinCapAuto) delivered %d rows, want every match: %d", len(joined), len(want))
	}

	// No possible matches: the advised bound of zero is floored to the
	// legal minimum capacity instead of failing validation.
	disjoint := mustTable(t, []Row{{Key: 1 << 30, Val: 1}})
	if rows, _, err := JoinAllRows(Config{Mode: ModeSerial}, disjoint, rt, JoinCapAuto); err != nil || len(rows) != 0 {
		t.Fatalf("disjoint JoinCapAuto: rows %v, err %v — want empty success", rows, err)
	}
}

// TestJoinedQueryBoundaryErrors pins the join stage's typed errors at the
// Query layer: capacity bounds, width mismatches, and the overflow error
// carrying the true match count.
func TestJoinedQueryBoundaryErrors(t *testing.T) {
	lt := mustTable(t, []Row{{Key: 1, Val: 1}, {Key: 1, Val: 2}})
	rt := mustTable(t, []Row{{Key: 1, Val: 10}, {Key: 1, Val: 20}, {Key: 2, Val: 30}})

	if _, _, err := RunQuery(Config{Mode: ModeSerial}, rt, Query{Join: &JoinSpec{Left: lt}}); !errors.Is(err, ErrBadCapacity) {
		t.Fatalf("zero capacity: err = %v, want ErrBadCapacity", err)
	}
	wt := mustWideTable(t, []WideRow{{Keys: []uint64{1, 2}, Val: 1}})
	if _, _, err := RunQuery(Config{Mode: ModeSerial}, rt, Query{Join: &JoinSpec{Left: wt, MaxOut: 4}}); !errors.Is(err, ErrBadWidth) {
		t.Fatalf("width mismatch: err = %v, want ErrBadWidth", err)
	}

	// Four true matches (two lefts × two key-1 rights): maxOut 3 overflows
	// on both paths, and the wrapped message carries the retry numbers.
	for _, noOpt := range []bool{false, true} {
		_, _, err := RunQuery(Config{Mode: ModeSerial}, rt, Query{Join: &JoinSpec{Left: lt, MaxOut: 3}, NoOptimize: noOpt})
		if !errors.Is(err, ErrJoinOverflow) || !errors.Is(err, relops.ErrJoinOverflow) {
			t.Fatalf("noOpt=%v: err = %v, want ErrJoinOverflow at both layers", noOpt, err)
		}
		if got := err.Error(); !strings.Contains(got, "4 matches, capacity 3") {
			t.Fatalf("noOpt=%v: overflow error %q does not carry the true count", noOpt, got)
		}
	}
	if _, _, err := RunQuery(Config{Mode: ModeSerial}, rt, Query{Join: &JoinSpec{Left: lt, MaxOut: 4}}); err != nil {
		t.Fatalf("exact capacity should succeed: %v", err)
	}
}
