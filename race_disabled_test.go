//go:build !race

package oblivmc

// raceEnabled lets heavyweight stress tests skip under the race detector;
// see race_enabled_test.go.
const raceEnabled = false
