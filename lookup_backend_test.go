package oblivmc

// Regression test for the send-receive backend seam: Lookup's routing
// sorts used to hard-code the bitonic network regardless of
// Config.SortBackend. Now that obliv.SendReceive takes the injected
// ScheduledSorter, a shuffle-backend Lookup must execute ZERO bitonic
// network sorts — pinned here against the package-level bitonic call
// counter, with a bitonic-backend sanity leg proving the counter is
// observing the run. (Tests in this package do not use t.Parallel, so
// the counter deltas are not racy.)

import (
	"testing"

	"oblivmc/internal/bitonic"
)

func TestLookupShuffleBackendRunsZeroBitonicSorts(t *testing.T) {
	const nt, nq = 64, 32
	keys := make([]uint64, nt)
	vals := make([]uint64, nt)
	for i := range keys {
		keys[i] = uint64(i * 3)
		vals[i] = uint64(i*i + 1)
	}
	queries := make([]uint64, nq)
	for i := range queries {
		queries[i] = uint64(i * 2) // hits and misses
	}
	check := func(got []uint64, found []bool) {
		t.Helper()
		byKey := map[uint64]uint64{}
		for i, k := range keys {
			byKey[k] = vals[i]
		}
		for i, q := range queries {
			want, ok := byKey[q]
			if found[i] != ok {
				t.Fatalf("query %d (%d): found=%t, want %t", i, q, found[i], ok)
			}
			if ok && got[i] != want {
				t.Fatalf("query %d (%d): val=%d, want %d", i, q, got[i], want)
			}
		}
	}

	before := bitonic.NetworkCalls()
	got, found, _, err := Lookup(Config{SortBackend: SortShuffle, DeterministicShuffle: true, Seed: 3}, keys, vals, queries)
	if err != nil {
		t.Fatal(err)
	}
	check(got, found)
	if d := bitonic.NetworkCalls() - before; d != 0 {
		t.Fatalf("shuffle-backend Lookup executed %d bitonic network sorts, want 0", d)
	}

	// Sanity leg: the bitonic backend must move the counter, or the
	// zero above proves nothing.
	before = bitonic.NetworkCalls()
	got, found, _, err = Lookup(Config{SortBackend: SortBitonic}, keys, vals, queries)
	if err != nil {
		t.Fatal(err)
	}
	check(got, found)
	if d := bitonic.NetworkCalls() - before; d == 0 {
		t.Fatal("bitonic-backend Lookup executed no bitonic network sorts — counter not observing the run")
	}
}
