package oblivmc

import (
	"sort"
	"testing"

	"oblivmc/internal/graph"
	"oblivmc/internal/pram"
	"oblivmc/internal/prng"
)

func distinctKeys(seed uint64, n int) []uint64 {
	src := prng.New(seed)
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := src.Uint64() >> 4
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func TestSortAllModes(t *testing.T) {
	keys := distinctKeys(1, 500)
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, mode := range []Mode{ModeSerial, ModeParallel, ModeMetered} {
		got, rep, err := Sort(Config{Mode: mode, Seed: 7}, keys)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mode %d: got[%d] = %d, want %d", mode, i, got[i], want[i])
			}
		}
		if (mode == ModeMetered) != (rep != nil) {
			t.Fatalf("mode %d: unexpected report %v", mode, rep)
		}
	}
}

func TestSortReportMetrics(t *testing.T) {
	keys := distinctKeys(2, 256)
	_, rep, err := Sort(Config{Mode: ModeMetered, CacheM: 1 << 10, CacheB: 16, Trace: true, Seed: 3}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Work <= 0 || rep.Span <= 0 || rep.MemOps <= 0 || rep.Forks <= 0 {
		t.Fatalf("empty metrics: %+v", rep)
	}
	if rep.CacheMisses <= 0 || rep.CacheAccesses < rep.CacheMisses {
		t.Fatalf("cache metrics: %+v", rep)
	}
	if rep.TraceFingerprint.Count == 0 {
		t.Fatal("trace fingerprint missing")
	}
	if rep.Span >= rep.Work {
		t.Fatalf("span %d should be far below work %d", rep.Span, rep.Work)
	}
}

func TestSortObliviousAcrossInputs(t *testing.T) {
	// Same length + seed, different keys → identical shuffle-phase trace is
	// covered in internal tests; here check the public metered costs agree.
	a, ra, _ := Sort(Config{Mode: ModeMetered, Seed: 5}, distinctKeys(3, 300))
	b, rb, _ := Sort(Config{Mode: ModeMetered, Seed: 5}, distinctKeys(4, 300))
	_ = a
	_ = b
	if ra.MemOps == 0 || rb.MemOps == 0 {
		t.Fatal("missing metrics")
	}
}

func TestSortRejectsBadKeys(t *testing.T) {
	if _, _, err := Sort(Config{}, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := Sort(Config{}, []uint64{1 << 63}); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	keys := distinctKeys(5, 200)
	got, _, err := Shuffle(Config{Mode: ModeSerial, Seed: 9}, keys)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, k := range got {
		seen[k] = true
	}
	for _, k := range keys {
		if !seen[k] {
			t.Fatalf("key %d lost in shuffle", k)
		}
	}
	// Different seeds give different arrangements (overwhelmingly).
	got2, _, _ := Shuffle(Config{Mode: ModeSerial, Seed: 10}, keys)
	same := 0
	for i := range got {
		if got[i] == got2[i] {
			same++
		}
	}
	if same == len(got) {
		t.Fatal("two seeds produced identical shuffles")
	}
}

func TestListRankAPI(t *testing.T) {
	src := prng.New(11)
	const n = 60
	order := src.Perm(n)
	succ := make([]int, n)
	for k := 0; k < n-1; k++ {
		succ[order[k]] = order[k+1]
	}
	succ[order[n-1]] = order[n-1]
	got, _, err := ListRank(Config{Mode: ModeSerial, Seed: 2}, succ, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ListRankSeq(succ, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if _, _, err := ListRank(Config{}, []int{5}, nil); err == nil {
		t.Fatal("out-of-range successor accepted")
	}
}

func TestTreeFunctionsAPI(t *testing.T) {
	src := prng.New(13)
	const n = 16
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{src.Intn(v), v})
	}
	tf, _, err := TreeFunctions(Config{Mode: ModeSerial, Seed: 3}, n, edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := graph.TreeFunctionsSeq(n, edges, 0)
	for v := 0; v < n; v++ {
		if tf.Parent[v] != ref.Parent[v] || tf.Depth[v] != ref.Depth[v] {
			t.Fatalf("vertex %d mismatch", v)
		}
	}
	if _, _, err := TreeFunctions(Config{}, 3, [][2]int{{0, 1}}, 0); err == nil {
		t.Fatal("wrong edge count accepted")
	}
}

func TestEvaluateExpressionTreeAPI(t *testing.T) {
	// (3 + 4) * 2
	tr := ExpressionTree{
		N: 5, Root: 4,
		Left:    []int{-1, -1, -1, 0, 3},
		Right:   []int{-1, -1, -1, 1, 2},
		Op:      []uint8{0, 0, 0, OpAdd, OpMul},
		LeafVal: []uint64{3, 4, 2, 0, 0},
	}
	got, _, err := EvaluateExpressionTree(Config{Mode: ModeSerial, Seed: 4}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 14 {
		t.Fatalf("got %d, want 14", got)
	}
	bad := tr
	bad.Right = []int{-1, -1, -1, -1, 2} // node 3 has left but no right
	if _, _, err := EvaluateExpressionTree(Config{}, bad); err == nil {
		t.Fatal("non-full tree accepted")
	}
}

func TestConnectedComponentsAPI(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {3, 4}}
	labels, _, err := ConnectedComponents(Config{Mode: ModeSerial}, 6, edges)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("0-1-2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Fatal("3-4 should share a component")
	}
	if labels[0] == labels[3] || labels[0] == labels[5] || labels[3] == labels[5] {
		t.Fatal("distinct components merged")
	}
}

func TestMinimumSpanningForestAPI(t *testing.T) {
	edges := []WeightedEdge{
		{0, 1, 10}, {1, 2, 1}, {0, 2, 5}, {3, 4, 2},
	}
	chosen, _, err := MinimumSpanningForest(Config{Mode: ModeSerial}, 5, edges)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{1: true, 2: true, 3: true}
	if len(chosen) != 3 {
		t.Fatalf("chose %v", chosen)
	}
	for _, e := range chosen {
		if !want[e] {
			t.Fatalf("chose %v, want edges 1,2,3", chosen)
		}
	}
	if _, _, err := MinimumSpanningForest(Config{}, 2, []WeightedEdge{{0, 1, 1 << 20}}); err == nil {
		t.Fatal("oversized weight accepted")
	}
}

func TestSimulatePRAMAPI(t *testing.T) {
	const n = 16
	src := prng.New(17)
	order := src.Perm(n)
	succ := make([]int, n)
	for k := 0; k < n-1; k++ {
		succ[order[k]] = order[k+1]
	}
	succ[order[n-1]] = order[n-1]
	m := &pram.PointerJumpMachine{N: n, Succ: succ}
	final, rep, err := SimulatePRAM(Config{Mode: ModeMetered, Seed: 1}, m, m.InitialMemory())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Work == 0 {
		t.Fatal("missing metrics")
	}
	ranks := m.Ranks(final)
	want := graph.ListRankSeq(succ, nil)
	for i := range want {
		if uint64(ranks[i]) != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, ranks[i], want[i])
		}
	}
}

func TestWithORAMAPI(t *testing.T) {
	rep, err := WithORAM(Config{Mode: ModeMetered, Seed: 6}, 9, 4, func(access func([]ORAMRequest) []uint64) {
		access([]ORAMRequest{{Addr: 3, Write: true, Val: 99}})
		got := access([]ORAMRequest{{Addr: 3}, {Addr: 4}})
		if got[0] != 99 || got[1] != 0 {
			t.Errorf("read back %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Work == 0 {
		t.Fatal("missing metrics")
	}
}

func TestParallelModeMatchesSerial(t *testing.T) {
	keys := distinctKeys(21, 800)
	a, _, _ := Sort(Config{Mode: ModeSerial, Seed: 5}, keys)
	b, _, _ := Sort(Config{Mode: ModeParallel, Workers: 4, Seed: 5}, keys)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}
