package oblivmc

// Public-surface tests for the graph workload over edge tables:
// Components/MSF/PageRank against plain references across both sort
// backends and serial/parallel modes, the edge-table round trip and its
// typed errors, the GraphExplain/GraphSorts accounting pinned against
// the sorts a run actually executes (via the bitonic network-call
// counter), and metered-run fingerprints as a function of public shape
// only.

import (
	"errors"
	"strings"
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/graph"
	"oblivmc/internal/prng"
)

func testEdges(seed uint64, n, m int, maxW uint64) []WeightedEdge {
	src := prng.New(seed)
	edges := make([]WeightedEdge, m)
	for i := range edges {
		edges[i] = WeightedEdge{U: src.Intn(n), V: src.Intn(n), W: src.Uint64n(maxW)}
	}
	return edges
}

func mustEdgeTable(t *testing.T, edges []WeightedEdge) Table {
	t.Helper()
	tab, err := NewEdgeTable(edges)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func graphConfigs() []Config {
	var cfgs []Config
	for _, backend := range []SortBackend{SortBitonic, SortShuffle} {
		cfgs = append(cfgs,
			Config{Mode: ModeSerial, SortBackend: backend, Seed: 5, DeterministicShuffle: true},
			Config{Mode: ModeParallel, Workers: 4, SortBackend: backend, Seed: 5, DeterministicShuffle: true},
		)
	}
	return cfgs
}

func TestComponentsMatchesReference(t *testing.T) {
	edges := testEdges(21, 40, 55, 100)
	tab := mustEdgeTable(t, edges)
	pairs := make([][2]int, len(edges))
	n := 0
	for i, e := range edges {
		pairs[i] = [2]int{e.U, e.V}
		if e.U >= n {
			n = e.U + 1
		}
		if e.V >= n {
			n = e.V + 1
		}
	}
	want := graph.ConnectedComponentsSeq(n, pairs)
	var ref []Row
	for ci, cfg := range graphConfigs() {
		out, _, err := Components(cfg, tab, 0)
		if err != nil {
			t.Fatal(err)
		}
		rows := out.Rows()
		if len(rows) != n {
			t.Fatalf("cfg %d: %d rows, want %d", ci, len(rows), n)
		}
		for v, r := range rows {
			if r.Key != uint64(v) || r.Val != uint64(want[v]) {
				t.Fatalf("cfg %d: row %d = %+v, want {%d %d}", ci, v, r, v, want[v])
			}
		}
		if ref == nil {
			ref = rows
		} else {
			for v := range ref {
				if rows[v] != ref[v] {
					t.Fatalf("cfg %d: row %d diverged across configs", ci, v)
				}
			}
		}
	}
	// Fixed public round count: enough rounds for this graph converges to
	// the same labeling with a shape-only access pattern.
	fixed, _, err := Components(Config{}, tab, 8)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range fixed.Rows() {
		if r.Val != uint64(want[v]) {
			t.Fatalf("fixed rounds: label[%d] = %d, want %d", v, r.Val, want[v])
		}
	}
}

func TestMSFMatchesKruskal(t *testing.T) {
	edges := testEdges(22, 24, 40, 16) // tiny weight range: tie-breaks load-bearing
	tab := mustEdgeTable(t, edges)
	ge := make([]graph.WEdge, len(edges))
	n := 0
	for i, e := range edges {
		ge[i] = graph.WEdge{U: e.U, V: e.V, W: e.W}
		if e.U >= n {
			n = e.U + 1
		}
		if e.V >= n {
			n = e.V + 1
		}
	}
	chosen := graph.MinimumSpanningForestSeq(n, ge)
	want := make([]WeightedEdge, len(chosen))
	for i, e := range chosen {
		want[i] = edges[e]
	}
	for ci, cfg := range graphConfigs() {
		out, _, err := MSF(cfg, tab)
		if err != nil {
			t.Fatal(err)
		}
		got, err := out.Edges()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("cfg %d: %d forest edges, want %d", ci, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cfg %d: forest edge %d = %+v, want %+v", ci, i, got[i], want[i])
			}
		}
	}
}

// pageRankRef replays PageRank's exact integer fixed-point recurrence
// sequentially.
func pageRankRef(n int, edges []WeightedEdge, iters int) []uint64 {
	deg := make([]uint64, n)
	for _, e := range edges {
		deg[e.U]++
	}
	ranks := make([]uint64, n)
	for v := range ranks {
		ranks[v] = PageRankScale
	}
	base := PageRankScale * 15 / 100
	for it := 0; it < iters; it++ {
		next := make([]uint64, n)
		for v := range next {
			next[v] = base
		}
		for _, e := range edges {
			if deg[e.U] > 0 {
				next[e.V] += ranks[e.U] * 85 / 100 / deg[e.U]
			}
		}
		ranks = next
	}
	return ranks
}

func TestPageRankMatchesIntegerReference(t *testing.T) {
	edges := testEdges(23, 20, 40, 100)
	tab := mustEdgeTable(t, edges)
	n := 0
	for _, e := range edges {
		if e.U >= n {
			n = e.U + 1
		}
		if e.V >= n {
			n = e.V + 1
		}
	}
	const iters = 3
	want := pageRankRef(n, edges, iters)
	for ci, cfg := range graphConfigs() {
		out, _, err := PageRank(cfg, tab, iters)
		if err != nil {
			t.Fatal(err)
		}
		rows := out.Rows()
		if len(rows) != n {
			t.Fatalf("cfg %d: %d rows, want %d", ci, len(rows), n)
		}
		for v, r := range rows {
			if r.Val != want[v] {
				t.Fatalf("cfg %d: rank[%d] = %d, want %d", ci, v, r.Val, want[v])
			}
		}
	}
}

func TestEdgeTableRoundTripAndErrors(t *testing.T) {
	edges := []WeightedEdge{{0, 3, 7}, {2, 2, 1}, {5, 1, 0}}
	tab := mustEdgeTable(t, edges)
	got, err := tab.Edges()
	if err != nil {
		t.Fatal(err)
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, got[i], edges[i])
		}
	}
	if _, err := NewEdgeTable([]WeightedEdge{{U: -1, V: 0}}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	narrow, err := NewTable([]Row{{Key: 1, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := narrow.Edges(); !errors.Is(err, ErrBadWidth) {
		t.Fatalf("Edges on width-1 table: %v, want ErrBadWidth", err)
	}
	if _, _, err := Components(Config{}, tab, -1); err == nil {
		t.Fatal("negative rounds accepted")
	}
	if _, _, err := PageRank(Config{}, tab, 0); err == nil {
		t.Fatal("zero PageRank iterations accepted")
	}
}

// TestGraphSortsPinnedToExecutedSorts: the plan layer's sort accounting
// for fixed-round components must equal the number of sorts the run
// actually executes, counted at the bitonic network (one call per sort
// pass on the bitonic backend).
func TestGraphSortsPinnedToExecutedSorts(t *testing.T) {
	edges := testEdges(31, 24, 32, 50)
	tab := mustEdgeTable(t, edges)
	el, err := tab.Edges()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range el {
		if e.U >= n {
			n = e.U + 1
		}
		if e.V >= n {
			n = e.V + 1
		}
	}
	const rounds = 3
	want := GraphSorts(GraphOpComponents, n, len(el), rounds)
	before := bitonic.NetworkCalls()
	if _, _, err := Components(Config{SortBackend: SortBitonic}, tab, rounds); err != nil {
		t.Fatal(err)
	}
	if got := int(bitonic.NetworkCalls() - before); got != want {
		t.Fatalf("executed %d bitonic sorts, plan predicts %d", got, want)
	}
	if GraphSorts(GraphOpComponents, n, len(el), 0) != -1 {
		t.Fatal("convergence mode must report -1 (unbounded) total sorts")
	}
}

func TestGraphExplainStrings(t *testing.T) {
	cases := []struct {
		op     GraphOp
		rounds int
		want   []string
	}{
		{GraphOpComponents, 4, []string{"cc-minhook", "9 sorts/round", "4 rounds", "36 sorts"}},
		{GraphOpComponents, 0, []string{"cc-minhook", "rounds revealed"}},
		{GraphOpComponentsAS, 0, []string{"cc-as"}},
		{GraphOpMSF, 0, []string{"msf", "revealed"}},
		{GraphOpPageRank, 5, []string{"pagerank", "5"}},
	}
	for _, tc := range cases {
		s := GraphExplain(tc.op, 1<<10, 1<<12, tc.rounds)
		for _, sub := range tc.want {
			if !strings.Contains(s, sub) {
				t.Fatalf("GraphExplain(%v, rounds=%d) = %q: missing %q", tc.op, tc.rounds, s, sub)
			}
		}
	}
}

// TestGraphFingerprintsShapeOnly: at the public layer, two metered runs
// over different edge CONTENTS of the same public shape (n, m, rounds)
// report identical trace fingerprints — for the fixed-round components
// kernel and for the relationally-composed PageRank.
func TestGraphFingerprintsShapeOnly(t *testing.T) {
	const n, m = 24, 36
	mk := func(seed uint64) Table {
		// Force both endpoints' ranges so every draw shares n.
		edges := testEdges(seed, n, m-1, 60)
		edges = append(edges, WeightedEdge{U: n - 1, V: 0, W: 1})
		return mustEdgeTable(t, edges)
	}
	cfg := Config{Mode: ModeMetered, Trace: true, SortBackend: SortBitonic}
	ccFP := func(tab Table) interface{} {
		_, rep, err := Components(cfg, tab, 3)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TraceFingerprint
	}
	if a, b := ccFP(mk(101)), ccFP(mk(202)); a != b {
		t.Fatalf("components fingerprints differ across contents of one shape: %v vs %v", a, b)
	}
	prFP := func(tab Table) interface{} {
		_, rep, err := PageRank(cfg, tab, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TraceFingerprint
	}
	if a, b := prFP(mk(303)), prFP(mk(404)); a != b {
		t.Fatalf("pagerank fingerprints differ across contents of one shape: %v vs %v", a, b)
	}
}
