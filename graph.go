package oblivmc

import (
	"fmt"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/graph"
	"oblivmc/internal/mem"
	"oblivmc/internal/plan"
	"oblivmc/internal/pram"
	"oblivmc/internal/relops"
)

// GraphOp selects the workload for GraphExplain.
type GraphOp int

const (
	// GraphOpComponents — min-hook connected components (Components).
	GraphOpComponents GraphOp = iota
	// GraphOpComponentsAS — Awerbuch–Shiloach connected components
	// (ConnectedComponents).
	GraphOpComponentsAS
	// GraphOpMSF — Borůvka minimum spanning forest (MSF /
	// MinimumSpanningForest).
	GraphOpMSF
	// GraphOpPageRank — the relational PageRank iterated aggregate
	// (PageRank).
	GraphOpPageRank
)

func (op GraphOp) planKind() plan.GraphKind {
	switch op {
	case GraphOpComponentsAS:
		return plan.GraphCCAS
	case GraphOpMSF:
		return plan.GraphMSF
	case GraphOpPageRank:
		return plan.GraphPageRank
	}
	return plan.GraphCC
}

// GraphExplain renders the sort-pass accounting of a graph operator at the
// public shape (n vertices, m edges, rounds — the fixed round count for
// Components, the iteration count for PageRank, ignored otherwise), e.g.
//
//	cc-minhook(n=65536, m=1048576): gather → scatter-min → jump → jump
//	[9 sorts/round × 4 rounds = 36 sorts]
//
// Like Explain for relational queries, the output is a pure function of
// the shape — the same accounting the metered-run tests pin.
func GraphExplain(op GraphOp, n, m, rounds int) string {
	return plan.BuildGraph(plan.GraphShape{Kind: op.planKind(), N: n, M: m, Rounds: rounds}).String()
}

// GraphExplainTable is GraphExplain against a concrete edge table: the
// vertex and edge counts are taken from the table's public shape.
func GraphExplainTable(op GraphOp, edges Table, rounds int) (string, error) {
	el, err := edges.Edges()
	if err != nil {
		return "", err
	}
	return GraphExplain(op, graphShape(el), len(el), rounds), nil
}

// GraphSorts returns the operator's total sort-pass count at the public
// shape: exact for fixed-round workloads (Components with rounds > 0,
// PageRank, the AS components' fixed iteration bound), the worst-case
// bound for MSF's revealed early-exit loop, and -1 for a convergence loop
// with no a-priori bound (Components with rounds == 0).
func GraphSorts(op GraphOp, n, m, rounds int) int {
	return plan.BuildGraph(plan.GraphShape{Kind: op.planKind(), N: n, M: m, Rounds: rounds}).TotalSorts()
}

// NewEdgeTable wraps a weighted edge list in a width-2 Table: key column 0
// is the edge's U endpoint, key column 1 its V endpoint, and the value is
// the weight. Edge tables are the relational form of a graph — they flow
// through the generic operators (Filter on weight, Distinct to dedupe,
// JoinAllRows for multi-hop expansion) and into the graph operators
// (Components, MSF, PageRank). Endpoints must be non-negative; the usual
// table bounds apply (ErrKeyTooLarge / ErrTooManyRows).
func NewEdgeTable(edges []WeightedEdge) (Table, error) {
	rows := make([]WideRow, len(edges))
	for i, e := range edges {
		if e.U < 0 || e.V < 0 {
			return Table{}, fmt.Errorf("oblivmc: edge %d has a negative endpoint", i)
		}
		rows[i] = WideRow{Keys: []uint64{uint64(e.U), uint64(e.V)}, Val: e.W}
	}
	return NewWideTable(rows)
}

// Edges converts a width-2 table back to a weighted edge list (the inverse
// of NewEdgeTable). Tables of any other width return ErrBadWidth.
func (t Table) Edges() ([]WeightedEdge, error) {
	if t.Width() != 2 {
		return nil, fmt.Errorf("%w (edge tables have 2 key columns, this table has %d)", ErrBadWidth, t.Width())
	}
	out := make([]WeightedEdge, t.Len())
	for i, r := range t.WideRows() {
		out[i] = WeightedEdge{U: int(r.Keys[0]), V: int(r.Keys[1]), W: r.Val}
	}
	return out, nil
}

// graphShape derives the public vertex count of an edge table: one past the
// largest endpoint. The count is public shape (it is a function of the key
// columns, which the relational layer already treats as boundable by the
// caller), so revealing it leaks nothing beyond the table bounds.
func graphShape(edges []WeightedEdge) int {
	n := 0
	for _, e := range edges {
		if e.U >= n {
			n = e.U + 1
		}
		if e.V >= n {
			n = e.V + 1
		}
	}
	return n
}

// Components obliviously labels the connected components of the undirected
// graph carried by a width-2 edge table and returns a width-1 table mapping
// every vertex 0..n-1 (n = one past the largest endpoint) to the minimum
// vertex id of its component. It runs the min-hook labeling
// (graph.ConnectedComponentsMinHook): each round is one batched endpoint
// gather, one min-combining conflict-resolved scatter, and two pointer
// jumps, every sort on the configured backend (Config.SortBackend).
//
// rounds > 0 runs exactly that many rounds: the access pattern is a fixed
// function of (n, m, rounds) — full shape-only obliviousness — but too few
// rounds returns an under-merged partition (labels are still component-
// consistent prefixes: every label names a vertex of the own component).
// rounds == 0 runs to convergence, revealing only the round count (O(log n)
// in practice).
//
// Requirement: n <= 2^21 (labels double as scatter priorities).
func Components(cfg Config, edges Table, rounds int) (Table, *Report, error) {
	el, err := edges.Edges()
	if err != nil {
		return Table{}, nil, err
	}
	if len(el) == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	if rounds < 0 {
		return Table{}, nil, fmt.Errorf("oblivmc: negative round count %d", rounds)
	}
	n := graphShape(el)
	if n > pram.MaxPrio {
		return Table{}, nil, fmt.Errorf("oblivmc: graph has %d vertices, max %d", n, pram.MaxPrio)
	}
	pairs := make([][2]int, len(el))
	for i, e := range el {
		pairs[i] = [2]int{e.U, e.V}
	}
	var labels []int
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		p := cfg.Tuning.params()
		p.Sorter = relSorter(cfg)
		labels, _ = graph.ConnectedComponentsMinHook(c, sp, n, pairs, rounds, p)
	})
	if err != nil {
		return Table{}, nil, err
	}
	rows := make([]Row, n)
	for v, l := range labels {
		rows[v] = Row{Key: uint64(v), Val: uint64(l)}
	}
	out, err := NewTable(rows)
	if err != nil {
		return Table{}, nil, err
	}
	return out, rep, nil
}

// MSF obliviously computes the minimum spanning forest of the undirected
// weighted graph carried by a width-2 edge table (Borůvka star-hooking,
// Theorem 5.2(ii)) and returns the chosen edges as a width-2 edge table in
// input-edge order. Ties are broken by edge index, so the forest is unique
// and backend-independent. Every sort runs on the configured backend
// (Config.SortBackend). Requirements: vertices and edges < 2^21, weights
// < 2^20.
func MSF(cfg Config, edges Table) (Table, *Report, error) {
	el, err := edges.Edges()
	if err != nil {
		return Table{}, nil, err
	}
	if len(el) == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	n := graphShape(el)
	if n >= 1<<21 || len(el) >= 1<<21 {
		return Table{}, nil, fmt.Errorf("oblivmc: graph too large (%d vertices, %d edges, max 2^21-1)", n, len(el))
	}
	ge := make([]graph.WEdge, len(el))
	for i, e := range el {
		if e.W >= 1<<20 {
			return Table{}, nil, fmt.Errorf("oblivmc: edge %d weight %d exceeds 2^20-1", i, e.W)
		}
		ge[i] = graph.WEdge{U: e.U, V: e.V, W: e.W}
	}
	var chosen []int
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		p := cfg.Tuning.params()
		p.Sorter = relSorter(cfg)
		chosen = graph.MinimumSpanningForestOblivious(c, sp, n, ge, p)
	})
	if err != nil {
		return Table{}, nil, err
	}
	rows := make([]WideRow, len(chosen))
	for i, e := range chosen {
		rows[i] = WideRow{Keys: []uint64{uint64(el[e].U), uint64(el[e].V)}, Val: el[e].W}
	}
	if len(rows) == 0 {
		// A forest with no edges (self-loop-only input): no Table to build.
		return Table{}, rep, nil
	}
	out, err := NewWideTable(rows)
	if err != nil {
		return Table{}, nil, err
	}
	return out, rep, nil
}

// PageRankScale is the fixed-point unit of PageRank ranks: a rank of
// PageRankScale is the stationary weight 1.0.
const PageRankScale uint64 = 1 << 20

// pageRankDampNum/Den encode the standard 0.85 damping factor as an exact
// integer ratio.
const (
	pageRankDampNum = 85
	pageRankDampDen = 100
)

// PageRank runs iters rounds of the PageRank iterated aggregate over the
// directed graph carried by a width-2 edge table (key column 0 = source,
// column 1 = destination; weights are ignored) and returns a width-1 table
// mapping every vertex 0..n-1 to its rank in PageRankScale fixed point.
//
// The iteration is built from the relational operators, exercising the
// join/group pipeline as a graph workload: each round joins the per-vertex
// share table against the edge table on the source column (JoinAllRows with
// the exact public capacity m — every edge matches exactly one share row),
// re-keys the matches by destination, and folds them with a grouped sum
// (GroupByCols/AggSum) over a zero-sentinel row per vertex, so the output
// always has exactly n rows in vertex order. All arithmetic is integer
// fixed point: share(u) = (rank(u)·85/100)/outdeg(u), next rank(v) =
// PageRankScale·15/100 + Σ incoming shares. Vertices with no out-edges
// drop their mass (the simple "dangling mass lost" variant), so ranks sum
// to slightly less than n·PageRankScale on graphs with sinks.
//
// Every constituent operator runs under cfg (backend, mode, workers); the
// returned Report is the counter-sum over all 1+2·iters operator runs, with
// a combined trace fingerprint (nil outside ModeMetered).
func PageRank(cfg Config, edges Table, iters int) (Table, *Report, error) {
	el, err := edges.Edges()
	if err != nil {
		return Table{}, nil, err
	}
	if len(el) == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	if iters < 1 {
		return Table{}, nil, fmt.Errorf("oblivmc: PageRank needs at least 1 iteration, got %d", iters)
	}
	n := graphShape(el)
	m := len(el)
	if int64(n+m) > relops.MaxRows {
		return Table{}, nil, fmt.Errorf("%w (%d vertices + %d edges)", ErrTooManyRows, n, m)
	}

	var total *Report

	// Out-degrees: one grouped count over a unit row per edge source plus a
	// zero sentinel per vertex, so every vertex appears and the key-sorted
	// output is exactly vertex order.
	degRows := make([]Row, 0, n+m)
	for v := 0; v < n; v++ {
		degRows = append(degRows, Row{Key: uint64(v), Val: 0})
	}
	for _, e := range el {
		degRows = append(degRows, Row{Key: uint64(e.U), Val: 1})
	}
	degTbl, err := NewTable(degRows)
	if err != nil {
		return Table{}, nil, err
	}
	degOut, rep, err := GroupByCols(cfg, degTbl, AggSum)
	if err != nil {
		return Table{}, nil, err
	}
	mergeReport(&total, rep)
	deg := make([]uint64, n)
	for _, r := range degOut.Rows() {
		deg[r.Key] = r.Val
	}

	edgeRows := make([]Row, m)
	for i, e := range el {
		edgeRows[i] = Row{Key: uint64(e.U), Val: uint64(e.V)}
	}
	edgeTbl, err := NewTable(edgeRows)
	if err != nil {
		return Table{}, nil, err
	}

	ranks := make([]uint64, n)
	for v := range ranks {
		ranks[v] = PageRankScale
	}
	base := PageRankScale * (pageRankDampDen - pageRankDampNum) / pageRankDampDen

	for it := 0; it < iters; it++ {
		shareRows := make([]Row, n)
		for v := 0; v < n; v++ {
			s := uint64(0)
			if deg[v] > 0 {
				s = ranks[v] * pageRankDampNum / pageRankDampDen / deg[v]
			}
			shareRows[v] = Row{Key: uint64(v), Val: s}
		}
		shareTbl, err := NewTable(shareRows)
		if err != nil {
			return Table{}, nil, err
		}
		// Every edge row matches exactly one share row (shares cover all
		// vertices, with distinct keys), so m is the exact public capacity.
		joined, rep, err := JoinAllRows(cfg, shareTbl, edgeTbl, m)
		if err != nil {
			return Table{}, nil, err
		}
		mergeReport(&total, rep)

		contribRows := make([]Row, 0, n+m)
		for v := 0; v < n; v++ {
			contribRows = append(contribRows, Row{Key: uint64(v), Val: 0})
		}
		for _, j := range joined {
			contribRows = append(contribRows, Row{Key: j.RightVal, Val: j.LeftVal})
		}
		contribTbl, err := NewTable(contribRows)
		if err != nil {
			return Table{}, nil, err
		}
		summed, rep, err := GroupByCols(cfg, contribTbl, AggSum)
		if err != nil {
			return Table{}, nil, err
		}
		mergeReport(&total, rep)
		for _, r := range summed.Rows() {
			ranks[r.Key] = base + r.Val
		}
	}

	outRows := make([]Row, n)
	for v := 0; v < n; v++ {
		outRows[v] = Row{Key: uint64(v), Val: ranks[v]}
	}
	out, err := NewTable(outRows)
	if err != nil {
		return Table{}, nil, err
	}
	return out, total, nil
}

// mergeReport folds one operator run's report into an accumulated total:
// counters and spans add (the composition is sequential), and the trace
// fingerprints fold with an order-sensitive hash combine, so two metered
// compositions match iff every constituent fingerprint matches in order.
func mergeReport(total **Report, r *Report) {
	if r == nil {
		return
	}
	if *total == nil {
		cp := *r
		*total = &cp
		return
	}
	t := *total
	t.Work += r.Work
	t.Span += r.Span
	t.MemOps += r.MemOps
	t.Reads += r.Reads
	t.Writes += r.Writes
	t.Forks += r.Forks
	t.CacheMisses += r.CacheMisses
	t.CacheAccesses += r.CacheAccesses
	t.TraceFingerprint.Hash = t.TraceFingerprint.Hash*0x100000001b3 ^ r.TraceFingerprint.Hash
	t.TraceFingerprint.Count += r.TraceFingerprint.Count
}
