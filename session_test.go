package oblivmc

// Session-level tests: a long-lived Session (persistent pool, space,
// arena, sorter) must serve back-to-back queries with the exact rows of
// the one-shot surfaces, count its executed sort passes faithfully, and
// realize the cross-query order-token savings the serving layer is built
// on.

import (
	"fmt"
	"sort"
	"testing"

	"oblivmc/internal/plan"
)

// keySorted returns rows in ascending (key, first-occurrence) order — the
// public order of a KeyOrderOut materialization.
func keySorted(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func TestSessionMatchesOneShot(t *testing.T) {
	rows := queryRows(256)
	tab, err := NewTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeSerial}
	sess := NewSession(cfg)
	defer sess.Close()
	for i, q := range queryShapes() {
		if i%3 != 0 { // every shape family, a third of the full sweep
			continue
		}
		want, _, err := RunQuery(cfg, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := sess.RunQuery(tab, q)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("shape %d", i)
		checkQueryResult(t, label+" (session)", got.Rows(), rows, q)
		if len(got.Rows()) != len(want.Rows()) {
			t.Fatalf("%s: session %d rows, one-shot %d", label, len(got.Rows()), len(want.Rows()))
		}
		kind, err := queryAgg(q)
		if err != nil {
			t.Fatal(err)
		}
		pl := plan.Build(q.shape(kind, 1, OrderNone))
		if stats.SortPasses != pl.SortPasses {
			t.Fatalf("%s: executed %d sorts, plan says %d (%s)", label, stats.SortPasses, pl.SortPasses, pl)
		}
	}
}

func TestSessionKeyOrderOut(t *testing.T) {
	rows := queryRows(200)
	tab, err := NewTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(Config{Mode: ModeSerial})
	defer sess.Close()
	q := Query{GroupBy: AggSum, KeyOrderOut: true}
	out, stats, err := sess.RunQuery(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Order() != OrderKeys {
		t.Fatalf("result order token = %v, want OrderKeys", out.Order())
	}
	if stats.SortPasses != 1 {
		t.Fatalf("keyout groupby executed %d sorts, want 1 (plan %s)", stats.SortPasses, stats.Plan)
	}
	want := keySorted(refQuery(rows, Query{GroupBy: AggSum}))
	got := out.Rows()
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSessionOrderTokenChaining is the cross-query seam end to end: a
// KeyOrderOut materialization feeds a follow-up query that skips its key
// sort — executed passes, not just the rendered plan.
func TestSessionOrderTokenChaining(t *testing.T) {
	rows := queryRows(256)
	tab, err := NewTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(Config{Mode: ModeSerial})
	defer sess.Close()

	agg, stats, err := sess.RunQuery(tab, Query{GroupBy: AggSum, KeyOrderOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SortPasses != 1 || agg.Order() != OrderKeys {
		t.Fatalf("materialization: %d sorts, order %v; want 1, OrderKeys", stats.SortPasses, agg.Order())
	}

	// Follow-up 1: zero-sort aggregate over the ordered materialization.
	out, stats, err := sess.RunQuery(agg, Query{GroupBy: AggMax, KeyOrderOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SortPasses != 0 || stats.ColdSortPasses != 1 {
		t.Fatalf("ordered follow-up: executed %d sorts (cold %d), want 0 (1): %s",
			stats.SortPasses, stats.ColdSortPasses, stats.Plan)
	}
	want := keySorted(refQuery(agg.Rows(), Query{GroupBy: AggMax}))
	got := out.Rows()
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Follow-up 2: the token also saves a pass when the output order is the
	// default position order (1 sort instead of the cold 2).
	_, stats, err = sess.RunQuery(agg, Query{GroupBy: AggMin})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SortPasses != 1 || stats.ColdSortPasses != 2 {
		t.Fatalf("pos-order follow-up: executed %d sorts (cold %d), want 1 (2): %s",
			stats.SortPasses, stats.ColdSortPasses, stats.Plan)
	}

	// The skip is visible in Explain against the carried token.
	plan, err := ExplainTable(agg, Query{GroupBy: AggMax, KeyOrderOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := "in(key,pos) → aggregate [0 sorts, cold 1, staged 2]"; plan != want {
		t.Fatalf("ExplainTable = %q, want %q", plan, want)
	}
}

// TestSessionParallelPoolReuse drives a ModeParallel session (persistent
// work-stealing pool) through mixed shapes, including a join, and checks
// rows against the serial one-shot reference.
func TestSessionParallelPoolReuse(t *testing.T) {
	rows := queryRows(300)
	tab, err := NewTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	dim, err := NewTable([]Row{{Key: 1, Val: 10}, {Key: 3, Val: 30}, {Key: 5, Val: 50}, {Key: 3, Val: 31}})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(Config{Mode: ModeParallel, Workers: 2})
	defer sess.Close()
	queries := []Query{
		{GroupBy: AggSum},
		{Distinct: true, TopK: 4},
		{Join: &JoinSpec{Left: dim, MaxOut: 2048}, GroupBy: AggCount},
		{Filter: func(r Row) bool { return r.Key%2 == 1 }, FilterKeyOnly: true, GroupBy: AggSum, KeyOrderOut: true},
	}
	for i, q := range queries {
		want, _, err := RunQuery(Config{Mode: ModeSerial}, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sess.RunQuery(tab, q)
		if err != nil {
			t.Fatal(err)
		}
		gr, wr := got.Rows(), want.Rows()
		if q.KeyOrderOut {
			wr = keySorted(wr)
		}
		if len(gr) != len(wr) {
			t.Fatalf("query %d: %d rows, want %d", i, len(gr), len(wr))
		}
		for j := range wr {
			if gr[j] != wr[j] {
				t.Fatalf("query %d row %d = %v, want %v", i, j, gr[j], wr[j])
			}
		}
	}
}

func TestSessionClosed(t *testing.T) {
	sess := NewSession(Config{Mode: ModeSerial})
	sess.Close()
	sess.Close() // idempotent
	tab, err := NewTable([]Row{{Key: 1, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.RunQuery(tab, Query{Distinct: true}); err == nil {
		t.Fatal("RunQuery on a closed session must fail")
	}
}
