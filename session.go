package oblivmc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"

	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/plan"
	"oblivmc/internal/relops"
)

// exec is the execution environment a relational surface runs under. The
// zero-value-with-cfg form (exec{cfg: cfg}) reproduces the one-shot
// behavior: a fresh address space, a fresh pool in ModeParallel, and a
// per-run arena. A Session fills the persistent fields so back-to-back
// queries reuse the pool, the space, and the arena instead of rebuilding
// them per invocation.
type exec struct {
	cfg Config
	// pool, when non-nil, is a long-lived work-stealing pool used for
	// ModeParallel runs instead of constructing (and tearing down) one per
	// call.
	pool *forkjoin.Pool
	// sp, when non-nil, is a long-lived address space. Keeping the space
	// stable across runs is what makes arena and sorter scratch caches
	// effective: both drop their arrays when the requesting space changes.
	sp *mem.Space
	// arena, when non-nil, is a long-lived relational scratch arena handed
	// to every run in place of a per-run one.
	arena *relops.Arena
	// cancel, when non-nil, overrides cfg.Cancel as the run's cancellation
	// token (the Session sets a fresh per-query token here).
	cancel *forkjoin.Cancel
}

// token resolves the run's cancellation token: the session's per-query
// token when set, else the config-level one.
func (e exec) token() *forkjoin.Cancel {
	if e.cancel != nil {
		return e.cancel
	}
	return e.cfg.Cancel.token()
}

// run executes fn under e's executor. It is the lifecycle boundary: a
// tripped cancellation token surfaces as ErrCanceled (carrying only the
// public checkpoint site), and any other panic out of the computation —
// which has fully quiesced by the time it unwinds here, so the pool stays
// structurally reusable — converts to a *PanicError wrapping ErrInternal.
func (e exec) run(fn func(c *forkjoin.Ctx, sp *mem.Space)) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep = nil
			switch p := r.(type) {
			case *forkjoin.CanceledError:
				err = fmt.Errorf("%w (at %s)", ErrCanceled, p.Site)
			case *forkjoin.TaskPanic:
				err = &PanicError{Val: p.Val, Stack: p.Stack}
			default:
				err = &PanicError{Val: r, Stack: debug.Stack()}
			}
		}
	}()
	cn := e.token()
	sp := e.sp
	if sp == nil {
		sp = mem.NewSpace()
	}
	switch e.cfg.Mode {
	case ModeMetered:
		m := forkjoin.RunMetered(forkjoin.MeterOpts{
			CacheM: e.cfg.CacheM, CacheB: e.cfg.CacheB, EnableTrace: e.cfg.Trace,
			Cancel: cn,
		}, func(c *forkjoin.Ctx) { fn(c, sp) })
		return reportOf(m), nil
	case ModeSerial:
		fn(forkjoin.SerialCancel(cn), sp)
		return nil, nil
	default:
		if e.pool != nil {
			e.pool.RunCancel(cn, func(c *forkjoin.Ctx) { fn(c, sp) })
			return nil, nil
		}
		w := e.cfg.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		forkjoin.RunParallelCancel(w, cn, func(c *forkjoin.Ctx) { fn(c, sp) })
		return nil, nil
	}
}

// QueryStats is the public bookkeeping of one Session.RunQuery: the
// executed sort-pass count (measured at the sorter seam, not planned), the
// cold-plan baseline the cross-query savings are measured against, and the
// rendered plan. Everything here is a function of public query shape.
type QueryStats struct {
	// SortPasses counts the full sorting-network passes the query
	// executed (0 for an identity plan or a fully order-covered one).
	SortPasses int
	// ColdSortPasses is what the same query plans with no input order
	// token — the baseline a token-covered query beats.
	ColdSortPasses int
	// Plan is the rendered physical pass sequence (order-aware, e.g.
	// "in(key,pos) → aggregate [0 sorts, cold 1, staged 2]").
	Plan string
	// Order is the result table's sorted-by token.
	Order TableOrder
	// Report carries the metered metrics when the session runs
	// ModeMetered (nil otherwise).
	Report *Report
}

// passCounter wraps the session's scheduled sorter and counts executed
// full sorting passes — the counter QueryStats.SortPasses reports and the
// serve-level tests assert on.
type passCounter struct {
	inner obliv.ScheduledSorter
	n     *int
}

func (s passCounter) Name() string { return s.inner.Name() }

func (s passCounter) Sort(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], lo, n int, key func(obliv.Elem) uint64) {
	*s.n++
	s.inner.Sort(c, sp, a, lo, n, key)
}

func (s passCounter) SortScheduled(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, scr *mem.Array[obliv.Elem], kscr *obliv.KeySchedule, lo, n int) {
	*s.n++
	s.inner.SortScheduled(c, sp, a, ks, scr, kscr, lo, n)
}

// Session is a reusable execution context for the relational query
// surface — the seam a long-running server (internal/serve, cmd/oblivserve)
// multiplexes requests over. Where the one-shot RunQuery rebuilds its
// fork-join pool, address space, scratch arena, and sorter per invocation,
// a Session constructs them once and reuses them across queries: the
// arena's key schedules and element scratch, the shuffle backend's tie
// planes and Beneš level buffers, and the pool's worker goroutines all
// persist, so a steady stream of same-shape queries runs allocation-flat.
//
// A Session is NOT safe for concurrent use: queries must be issued
// sequentially (the shuffle sorter and arena are stateful). A server gives
// each admission lane its own Session. Close releases the pool's workers;
// a closed session must not run further queries.
//
// Obliviousness is unchanged from the one-shot surfaces: resource reuse
// follows the public sequence of (relation size, query shape) pairs only,
// and the cross-query order tokens a Session feeds back into the planner
// are themselves functions of prior public shapes.
type Session struct {
	cfg     Config
	pool    *forkjoin.Pool
	sp      *mem.Space
	arena   *relops.Arena
	shuffle *core.ShuffleSorter
	closed  bool

	// cur is the in-flight query's cancellation token (nil when idle) —
	// the seam Interrupt trips from other goroutines.
	cur atomic.Pointer[forkjoin.Cancel]
	// poisoned is set when a query panicked out of the execution: the
	// arena and sorter state are suspect, so the session refuses further
	// queries until rebuilt. (A cooperative cancellation does NOT poison:
	// every pass rewrites its scratch from the freshly loaded relation, so
	// an aborted pass leaves no state the next run reads.)
	poisoned atomic.Bool
}

// NewSession creates a session executing under cfg. In ModeParallel (the
// default) it owns a long-lived work-stealing pool of cfg.Workers workers
// (GOMAXPROCS when zero); call Close to release it.
func NewSession(cfg Config) *Session {
	s := &Session{cfg: cfg, sp: mem.NewSpace(), arena: relops.NewArena()}
	if cfg.Mode == ModeParallel {
		s.pool = forkjoin.NewPool(cfg.Workers)
	}
	// One persistent shuffle sorter per session (it is the stateful
	// backend whose caches — tie planes, Beneš level buffers — make
	// cross-request pooling worthwhile). The bitonic backend is stateless,
	// so sessions hand out the same value every run.
	switch cfg.SortBackend {
	case SortBitonic:
	case SortShuffle:
		s.shuffle = &core.ShuffleSorter{FixedSeed: shuffleSeed(cfg), Crossover: 2}
	default:
		s.shuffle = &core.ShuffleSorter{FixedSeed: shuffleSeed(cfg), Crossover: cfg.SortCrossover}
	}
	return s
}

// Workers returns the session pool's size (cfg.Workers resolved; 1 outside
// ModeParallel).
func (s *Session) Workers() int {
	if s.pool != nil {
		return s.pool.Workers()
	}
	return 1
}

// Close releases the session's pool workers. The session must be idle.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.pool != nil {
		s.pool.Close()
	}
}

// sorter returns the session's scheduled sorter for one run.
func (s *Session) sorter() obliv.ScheduledSorter {
	if s.shuffle != nil {
		return s.shuffle
	}
	return relSorter(s.cfg)
}

// exec assembles the session's execution environment.
func (s *Session) exec() exec {
	return exec{cfg: s.cfg, pool: s.pool, sp: s.sp, arena: s.arena}
}

// Interrupt cancels the in-flight query, if any: RunQuery/RunQueryCtx
// returns ErrCanceled at its next public-shape checkpoint. Safe to call
// from any goroutine, any number of times; a no-op when the session is
// idle. The session stays reusable after an interrupt.
func (s *Session) Interrupt() {
	if cn := s.cur.Load(); cn != nil {
		cn.Cancel()
	}
}

// Poisoned reports whether a prior query panicked out of this session's
// execution, leaving its arena/sorter state suspect. A poisoned session
// refuses further queries with ErrInternal; close it and build a fresh one.
func (s *Session) Poisoned() bool { return s.poisoned.Load() }

// RunQuery executes q over t exactly like the package-level RunQuery, but
// under the session's pooled resources, and returns the executed sort-pass
// stats alongside the result. The input table's sorted-by token feeds the
// planner (the cross-query skip); the result carries its own token for the
// next query.
func (s *Session) RunQuery(t Table, q Query) (Table, QueryStats, error) {
	return s.RunQueryCtx(context.Background(), t, q)
}

// RunQueryCtx is RunQuery under a context: cancellation and deadlines
// propagate into the execution at its public-shape checkpoints (between
// sort passes, network layers, scan sweeps), returning ErrCanceled or
// ErrDeadline. The abort reveals only public quantities — the checkpoint
// site and the executed sort-pass count — never data.
func (s *Session) RunQueryCtx(ctx context.Context, t Table, q Query) (Table, QueryStats, error) {
	if s.closed {
		return Table{}, QueryStats{}, fmt.Errorf("oblivmc: RunQuery on closed Session")
	}
	if s.poisoned.Load() {
		return Table{}, QueryStats{}, fmt.Errorf("%w (session poisoned by a prior panic; rebuild it)", ErrInternal)
	}
	if ctx != nil && ctx.Err() != nil {
		return Table{}, QueryStats{}, ctxErrOf(ctx, fmt.Errorf("%w (before execution)", ErrCanceled))
	}
	if t.Len() == 0 {
		return Table{}, QueryStats{}, ErrEmptyInput
	}
	if q.Filter != nil && t.Width() > 1 {
		return Table{}, QueryStats{}, errWideFilter("Query.Filter")
	}
	if q.Join != nil {
		if err := checkJoinTables(q.Join.Left, t, q.Join.MaxOut); err != nil {
			return Table{}, QueryStats{}, err
		}
	}
	kind, err := queryAgg(q)
	if err != nil {
		return Table{}, QueryStats{}, err
	}
	passes := 0
	srt := passCounter{inner: s.sorter(), n: &passes}
	cn := new(forkjoin.Cancel)
	s.cur.Store(cn)
	defer s.cur.Store(nil)
	stop := watchCtx(ctx, cn)
	defer stop()
	e := s.exec()
	e.cancel = cn
	var (
		out Table
		rep *Report
	)
	if q.NoOptimize {
		out, rep, err = runQueryStaged(e, t, q, kind, srt)
	} else {
		out, rep, err = runQueryPlanned(e, t, q, kind, srt)
	}
	if err != nil {
		if errors.Is(err, ErrInternal) {
			s.poisoned.Store(true)
		}
		if errors.Is(err, ErrCanceled) {
			// The executed pass count is public shape, like the site.
			err = fmt.Errorf("%w (after %d executed sort passes)", ctxErrOf(ctx, err), passes)
		}
		return Table{}, QueryStats{}, err
	}
	pl := plan.Build(q.shape(kind, t.Width(), t.order))
	stats := QueryStats{
		SortPasses:     passes,
		ColdSortPasses: pl.ColdSortPasses,
		Plan:           pl.String(),
		Order:          out.order,
		Report:         rep,
	}
	if q.NoOptimize {
		stats.ColdSortPasses = pl.StagedSortPasses
		stats.Plan = fmt.Sprintf("staged: %d sorts", pl.StagedSortPasses)
	}
	return out, stats, nil
}

// Explain renders the order-aware plan q would execute over t in this
// session (identical to ExplainTable; the session adds nothing beyond the
// table's token, but callers holding a session read more naturally).
func (s *Session) Explain(t Table, q Query) (string, error) {
	return ExplainTable(t, q)
}
