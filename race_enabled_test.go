//go:build race

package oblivmc

// raceEnabled lets heavyweight stress tests skip under the race detector,
// whose instrumentation multiplies their multi-minute sorting cost on
// shared CI runners.
const raceEnabled = true
