package oblivmc

import (
	"fmt"
	"testing"

	"oblivmc/internal/prng"
	"oblivmc/internal/trace"
)

func mustTable(t *testing.T, rows []Row) Table {
	t.Helper()
	tab, err := NewTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Fatal("empty table should be rejected")
	}
	// The old 2^40 key ceiling is lifted: only the filler sentinel itself
	// is out of range.
	if _, err := NewTable([]Row{{Key: ^uint64(0), Val: 0}}); err == nil {
		t.Fatal("sentinel key should be rejected")
	}
	if _, err := NewTable([]Row{{Key: 1 << 40, Val: ^uint64(0)}}); err != nil {
		t.Fatalf("legal table rejected: %v", err)
	}
	if _, err := NewTable([]Row{{Key: ^uint64(0) - 1, Val: ^uint64(0)}}); err != nil {
		t.Fatalf("maximum legal key rejected: %v", err)
	}
}

func TestFilterTable(t *testing.T) {
	tab := mustTable(t, []Row{{1, 10}, {2, 25}, {3, 30}, {4, 45}, {5, 50}})
	got, _, err := Filter(Config{Mode: ModeSerial}, tab, func(r Row) bool { return r.Val%10 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{1, 10}, {3, 30}, {5, 50}}
	if len(got.Rows()) != len(want) {
		t.Fatalf("got %v, want %v", got.Rows(), want)
	}
	for i, r := range want {
		if got.Rows()[i] != r {
			t.Fatalf("got %v, want %v", got.Rows(), want)
		}
	}
}

func TestGroupByAndTopKTable(t *testing.T) {
	// Departments and salaries; top-2 departments by total salary.
	tab := mustTable(t, []Row{
		{1, 120}, {2, 95}, {1, 140}, {3, 80}, {2, 105}, {1, 130}, {3, 75},
	})
	grouped, _, err := GroupBy(Config{Mode: ModeSerial}, tab, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	wantTotals := map[uint64]uint64{1: 390, 2: 200, 3: 155}
	if len(grouped.Rows()) != len(wantTotals) {
		t.Fatalf("grouped rows %v", grouped.Rows())
	}
	for _, r := range grouped.Rows() {
		if wantTotals[r.Key] != r.Val {
			t.Fatalf("group %d total %d, want %d", r.Key, r.Val, wantTotals[r.Key])
		}
	}

	top, _, err := TopK(Config{Mode: ModeSerial}, grouped, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Rows()) != 2 || top.Rows()[0] != (Row{1, 390}) || top.Rows()[1] != (Row{2, 200}) {
		t.Fatalf("top-2 = %v", top.Rows())
	}
}

func TestDistinctTable(t *testing.T) {
	tab := mustTable(t, []Row{{4, 1}, {2, 2}, {4, 3}, {9, 4}, {2, 5}})
	got, _, err := Distinct(Config{Mode: ModeSerial}, tab)
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{4, 1}, {2, 2}, {9, 4}}
	if len(got.Rows()) != len(want) {
		t.Fatalf("got %v, want %v", got.Rows(), want)
	}
	for i, r := range want {
		if got.Rows()[i] != r {
			t.Fatalf("got %v, want %v", got.Rows(), want)
		}
	}
}

func TestJoinTable(t *testing.T) {
	budgets := mustTable(t, []Row{{1, 1000}, {2, 800}, {3, 600}})
	employees := mustTable(t, []Row{{1, 120}, {2, 95}, {7, 50}, {1, 140}})
	got, _, err := Join(Config{Mode: ModeSerial}, budgets, employees)
	if err != nil {
		t.Fatal(err)
	}
	want := []JoinedRow{{1, 1000, 120}, {2, 800, 95}, {1, 1000, 140}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i, r := range want {
		if got[i] != r {
			t.Fatalf("got %v, want %v", got, want)
		}
	}

	dup := mustTable(t, []Row{{1, 1}, {1, 2}})
	if _, _, err := Join(Config{Mode: ModeSerial}, dup, employees); err == nil {
		t.Fatal("duplicate left keys should be rejected")
	}
}

// refAgg is the plain-Go reference of every aggregation kind over a
// group's moment statistics and extrema.
func refAgg(agg Agg, sum, sq, cnt, minv, maxv uint64) uint64 {
	switch agg {
	case AggSum:
		return sum
	case AggCount:
		return cnt
	case AggMin:
		return minv
	case AggMax:
		return maxv
	case AggAvg:
		return sum / cnt
	case AggVar:
		m := sum / cnt
		ex2 := sq / cnt
		if ex2 < m*m {
			return 0
		}
		return ex2 - m*m
	}
	return 0
}

func refQuery(rows []Row, q Query) []Row {
	cur := append([]Row(nil), rows...)
	if q.Filter != nil {
		var kept []Row
		for _, r := range cur {
			if q.Filter(r) {
				kept = append(kept, r)
			}
		}
		cur = kept
	}
	if q.Distinct {
		seen := map[uint64]bool{}
		var kept []Row
		for _, r := range cur {
			if !seen[r.Key] {
				seen[r.Key] = true
				kept = append(kept, r)
			}
		}
		cur = kept
	}
	if q.GroupBy != AggNone {
		type stats struct{ sum, sq, cnt, minv, maxv uint64 }
		aggs := map[uint64]*stats{}
		var order []uint64
		for _, r := range cur {
			s, ok := aggs[r.Key]
			if !ok {
				s = &stats{minv: r.Val, maxv: r.Val}
				aggs[r.Key] = s
				order = append(order, r.Key)
			} else {
				if r.Val < s.minv {
					s.minv = r.Val
				}
				if r.Val > s.maxv {
					s.maxv = r.Val
				}
			}
			s.sum += r.Val
			s.sq += r.Val * r.Val
			s.cnt++
		}
		cur = cur[:0]
		for _, k := range order {
			cur = append(cur, Row{Key: k, Val: refAgg(q.GroupBy, aggs[k].sum, aggs[k].sq, aggs[k].cnt, aggs[k].minv, aggs[k].maxv)})
		}
	}
	if q.TopK > 0 {
		// Insertion-sort descending by value (stable enough for distinct vals).
		sorted := append([]Row(nil), cur...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j].Val > sorted[j-1].Val; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		if q.TopK < len(sorted) {
			sorted = sorted[:q.TopK]
		}
		cur = sorted
	}
	return cur
}

func TestRunQueryPipeline(t *testing.T) {
	src := prng.New(88)
	rows := make([]Row, 120)
	for i := range rows {
		rows[i] = Row{Key: src.Uint64n(9), Val: 10 + uint64(i)} // distinct vals
	}
	tab := mustTable(t, rows)
	q := Query{
		Filter:  func(r Row) bool { return r.Val%2 == 0 },
		GroupBy: AggSum,
		TopK:    3,
	}
	got, _, err := RunQuery(Config{Mode: ModeSerial, Seed: 1}, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	want := refQuery(rows, q)
	if len(got.Rows()) != len(want) {
		t.Fatalf("got %v, want %v", got.Rows(), want)
	}
	for i, r := range want {
		if got.Rows()[i] != r {
			t.Fatalf("row %d: got %v, want %v", i, got.Rows()[i], r)
		}
	}
}

func TestRunQueryParallelMatchesSerial(t *testing.T) {
	src := prng.New(99)
	rows := make([]Row, 200)
	for i := range rows {
		rows[i] = Row{Key: src.Uint64n(20), Val: src.Uint64n(1 << 30)}
	}
	tab := mustTable(t, rows)
	q := Query{Filter: func(r Row) bool { return r.Val%3 != 0 }, GroupBy: AggMax, TopK: 5}
	serial, _, err := RunQuery(Config{Mode: ModeSerial}, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := RunQuery(Config{Workers: 4}, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows()) != len(par.Rows()) {
		t.Fatalf("serial %v != parallel %v", serial.Rows(), par.Rows())
	}
	for i := range serial.Rows() {
		if serial.Rows()[i] != par.Rows()[i] {
			t.Fatalf("serial %v != parallel %v", serial.Rows(), par.Rows())
		}
	}
}

// TestQueryObliviousTrace asserts the full public pipeline's adversary view
// depends only on the table's shape, not its contents.
func TestQueryObliviousTrace(t *testing.T) {
	q := Query{Filter: func(r Row) bool { return r.Val > 500 }, GroupBy: AggSum, TopK: 4}
	traceOf := func(rows []Row) trace.Fingerprint {
		tab := mustTable(t, rows)
		_, rep, err := RunQuery(Config{Mode: ModeMetered, Trace: true, Seed: 3}, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TraceFingerprint
	}
	src := prng.New(77)
	n := 90
	a := make([]Row, n)
	b := make([]Row, n)
	for i := 0; i < n; i++ {
		a[i] = Row{Key: 1, Val: 0}
		b[i] = Row{Key: src.Uint64n(30), Val: src.Uint64n(1 << 35)}
	}
	if !traceOf(a).Equal(traceOf(b)) {
		t.Fatal("query trace depends on table contents")
	}
}

// --- Wide-key (multi-column) table tests --------------------------------

func mustWideTable(t *testing.T, rows []WideRow) Table {
	t.Helper()
	tab, err := NewWideTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// wideQueryRows draws two-column rows with full-range column values (far
// beyond the old 2^40 key ceiling) and heavy tuple duplication.
func wideQueryRows(n int) []WideRow {
	src := prng.New(2024)
	rows := make([]WideRow, n)
	for i := range rows {
		rows[i] = WideRow{
			Keys: []uint64{
				src.Uint64n(4) * 0x9e3779b97f4a7c15,
				src.Uint64n(3) * 0x517cc1b727220a95,
			},
			Val: src.Uint64n(1 << 20),
		}
	}
	return rows
}

// refGroupByCols is the plain-Go reference of GroupByCols over wide rows.
func refGroupByCols(rows []WideRow, agg Agg) []WideRow {
	type stats struct{ sum, sq, cnt, minv, maxv uint64 }
	aggs := map[[2]uint64]*stats{}
	var order [][2]uint64
	for _, r := range rows {
		k := [2]uint64{r.Keys[0], r.Keys[1]}
		s, ok := aggs[k]
		if !ok {
			s = &stats{minv: r.Val, maxv: r.Val}
			aggs[k] = s
			order = append(order, k)
		} else {
			if r.Val < s.minv {
				s.minv = r.Val
			}
			if r.Val > s.maxv {
				s.maxv = r.Val
			}
		}
		s.sum += r.Val
		s.sq += r.Val * r.Val
		s.cnt++
	}
	out := make([]WideRow, len(order))
	for i, k := range order {
		s := aggs[k]
		out[i] = WideRow{Keys: []uint64{k[0], k[1]}, Val: refAgg(agg, s.sum, s.sq, s.cnt, s.minv, s.maxv)}
	}
	return out
}

func checkWideRows(t *testing.T, got, want []WideRow, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Val != want[i].Val || got[i].Keys[0] != want[i].Keys[0] || got[i].Keys[1] != want[i].Keys[1] {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestGroupByColsWide drives the composite GROUP BY (a, b) through the
// public API under every aggregation, including the one-pass (sum, count)
// Avg and Var.
func TestGroupByColsWide(t *testing.T) {
	rows := wideQueryRows(150)
	tab := mustWideTable(t, rows)
	if tab.Width() != 2 {
		t.Fatalf("width = %d, want 2", tab.Width())
	}
	for _, agg := range []Agg{AggSum, AggCount, AggMin, AggMax, AggAvg, AggVar} {
		got, _, err := GroupByCols(Config{Mode: ModeSerial}, tab, agg)
		if err != nil {
			t.Fatalf("agg %d: %v", agg, err)
		}
		checkWideRows(t, got.WideRows(), refGroupByCols(rows, agg), fmt.Sprintf("GroupByCols agg %d", agg))
	}
}

// TestAvgVarNarrow pins the new aggregates on a hand-checked width-1 table.
func TestAvgVarNarrow(t *testing.T) {
	tab := mustTable(t, []Row{
		{1, 10}, {2, 7}, {1, 20}, {1, 30}, {2, 7},
	})
	avg, _, err := GroupBy(Config{Mode: ModeSerial}, tab, AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := []Row{{1, 20}, {2, 7}}
	for i, r := range wantAvg {
		if avg.Rows()[i] != r {
			t.Fatalf("avg = %v, want %v", avg.Rows(), wantAvg)
		}
	}
	vr, _, err := GroupBy(Config{Mode: ModeSerial}, tab, AggVar)
	if err != nil {
		t.Fatal(err)
	}
	// Group 1: E[X^2] = (100+400+900)/3 = 466, mean 20 → var 66.
	wantVar := []Row{{1, 66}, {2, 0}}
	for i, r := range wantVar {
		if vr.Rows()[i] != r {
			t.Fatalf("var = %v, want %v", vr.Rows(), wantVar)
		}
	}
}

// TestWideQueryPipeline runs the fused Distinct→GroupBy→TopK pipeline over
// a two-column table and checks it against the staged baseline and the
// plain-Go reference.
func TestWideQueryPipeline(t *testing.T) {
	rows := wideQueryRows(120)
	for i := range rows {
		rows[i].Val = uint64(i) // distinct values: TopK tie-breaks exact
	}
	tab := mustWideTable(t, rows)
	q := Query{Distinct: true, GroupBy: AggSum, TopK: 3}

	fused, _, err := RunQuery(Config{Mode: ModeSerial}, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	staged := q
	staged.NoOptimize = true
	base, _, err := RunQuery(Config{Mode: ModeSerial}, tab, staged)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct keeps each tuple's earliest (distinct) value; the singleton
	// sums stay distinct, so the top-3 is unique and both paths must agree
	// exactly.
	checkWideRows(t, fused.WideRows(), base.WideRows(), "wide fused vs staged")
	if len(fused.WideRows()) != 3 {
		t.Fatalf("wide top-3: %d rows", len(fused.WideRows()))
	}

	// Filters over wide tables are a declared follow-on: reject, not
	// mis-execute.
	if _, _, err := RunQuery(Config{Mode: ModeSerial}, tab, Query{Filter: func(Row) bool { return true }}); err == nil {
		t.Fatal("wide table with Filter should be rejected")
	}
	if _, _, err := Filter(Config{Mode: ModeSerial}, tab, func(Row) bool { return true }); err == nil {
		t.Fatal("Filter over wide table should be rejected")
	}
	if _, _, err := Join(Config{Mode: ModeSerial}, tab, tab); err == nil {
		t.Fatal("Join over wide tables should be rejected")
	}
}

// TestWideQueryObliviousTrace is the width-2 trace satellite at the public
// layer: same-shape two-column tables with wildly different contents must
// produce identical views through the planned pipeline.
func TestWideQueryObliviousTrace(t *testing.T) {
	const n = 80
	src := prng.New(31)
	contents := [][]WideRow{make([]WideRow, n), make([]WideRow, n), make([]WideRow, n)}
	for i := 0; i < n; i++ {
		contents[0][i] = WideRow{Keys: []uint64{^uint64(1), ^uint64(1)}, Val: 0}
		contents[1][i] = WideRow{Keys: []uint64{uint64(i) << 45, uint64(i)}, Val: uint64(i)}
		contents[2][i] = WideRow{Keys: []uint64{src.Uint64n(5), src.Uint64n(3)}, Val: src.Uint64n(1 << 30)}
	}
	q := Query{Distinct: true, GroupBy: AggAvg, TopK: 4}
	traceOf := func(rows []WideRow) trace.Fingerprint {
		tab := mustWideTable(t, rows)
		_, rep, err := RunQuery(Config{Mode: ModeMetered, Trace: true, Seed: 9}, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TraceFingerprint
	}
	ref := traceOf(contents[0])
	for i := 1; i < len(contents); i++ {
		if !traceOf(contents[i]).Equal(ref) {
			t.Fatalf("wide planned trace differs between contents 0 and %d — record contents leak", i)
		}
	}
}

// TestWideGroupByBeyondRowLimit is the acceptance stress: a two-column
// GROUP BY (a, b) with full-range uint64 column values over a relation of
// more than 2^20 rows — beyond the old MaxRows — loads, runs under the
// parallel pool, and matches the plain-Go reference.
func TestWideGroupByBeyondRowLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("2^20+1-row group-by takes tens of seconds; skipped with -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation multiplies the 2^21-element sort cost; covered by the non-race run")
	}
	const n = 1<<20 + 1 // pads to 2^21 elements
	src := prng.New(555)
	rows := make([]WideRow, n)
	for i := range rows {
		rows[i] = WideRow{
			Keys: []uint64{
				src.Uint64n(3) * 0x9e3779b97f4a7c15, // full-range column values
				src.Uint64n(2) * 0x517cc1b727220a95,
			},
			Val: src.Uint64n(1 << 20),
		}
	}
	tab := mustWideTable(t, rows)
	got, _, err := GroupByCols(Config{}, tab, AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	checkWideRows(t, got.WideRows(), refGroupByCols(rows, AggAvg), "GroupByCols beyond 2^20 rows")
}
