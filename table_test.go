package oblivmc

import (
	"testing"

	"oblivmc/internal/prng"
	"oblivmc/internal/trace"
)

func mustTable(t *testing.T, rows []Row) Table {
	t.Helper()
	tab, err := NewTable(rows)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Fatal("empty table should be rejected")
	}
	if _, err := NewTable([]Row{{Key: 1 << 40, Val: 0}}); err == nil {
		t.Fatal("out-of-range key should be rejected")
	}
	if _, err := NewTable([]Row{{Key: (1 << 40) - 1, Val: ^uint64(0)}}); err != nil {
		t.Fatalf("legal table rejected: %v", err)
	}
}

func TestFilterTable(t *testing.T) {
	tab := mustTable(t, []Row{{1, 10}, {2, 25}, {3, 30}, {4, 45}, {5, 50}})
	got, _, err := Filter(Config{Mode: ModeSerial}, tab, func(r Row) bool { return r.Val%10 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{1, 10}, {3, 30}, {5, 50}}
	if len(got.Rows()) != len(want) {
		t.Fatalf("got %v, want %v", got.Rows(), want)
	}
	for i, r := range want {
		if got.Rows()[i] != r {
			t.Fatalf("got %v, want %v", got.Rows(), want)
		}
	}
}

func TestGroupByAndTopKTable(t *testing.T) {
	// Departments and salaries; top-2 departments by total salary.
	tab := mustTable(t, []Row{
		{1, 120}, {2, 95}, {1, 140}, {3, 80}, {2, 105}, {1, 130}, {3, 75},
	})
	grouped, _, err := GroupBy(Config{Mode: ModeSerial}, tab, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	wantTotals := map[uint64]uint64{1: 390, 2: 200, 3: 155}
	if len(grouped.Rows()) != len(wantTotals) {
		t.Fatalf("grouped rows %v", grouped.Rows())
	}
	for _, r := range grouped.Rows() {
		if wantTotals[r.Key] != r.Val {
			t.Fatalf("group %d total %d, want %d", r.Key, r.Val, wantTotals[r.Key])
		}
	}

	top, _, err := TopK(Config{Mode: ModeSerial}, grouped, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Rows()) != 2 || top.Rows()[0] != (Row{1, 390}) || top.Rows()[1] != (Row{2, 200}) {
		t.Fatalf("top-2 = %v", top.Rows())
	}
}

func TestDistinctTable(t *testing.T) {
	tab := mustTable(t, []Row{{4, 1}, {2, 2}, {4, 3}, {9, 4}, {2, 5}})
	got, _, err := Distinct(Config{Mode: ModeSerial}, tab)
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{4, 1}, {2, 2}, {9, 4}}
	if len(got.Rows()) != len(want) {
		t.Fatalf("got %v, want %v", got.Rows(), want)
	}
	for i, r := range want {
		if got.Rows()[i] != r {
			t.Fatalf("got %v, want %v", got.Rows(), want)
		}
	}
}

func TestJoinTable(t *testing.T) {
	budgets := mustTable(t, []Row{{1, 1000}, {2, 800}, {3, 600}})
	employees := mustTable(t, []Row{{1, 120}, {2, 95}, {7, 50}, {1, 140}})
	got, _, err := Join(Config{Mode: ModeSerial}, budgets, employees)
	if err != nil {
		t.Fatal(err)
	}
	want := []JoinedRow{{1, 1000, 120}, {2, 800, 95}, {1, 1000, 140}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i, r := range want {
		if got[i] != r {
			t.Fatalf("got %v, want %v", got, want)
		}
	}

	dup := mustTable(t, []Row{{1, 1}, {1, 2}})
	if _, _, err := Join(Config{Mode: ModeSerial}, dup, employees); err == nil {
		t.Fatal("duplicate left keys should be rejected")
	}
}

func refQuery(rows []Row, q Query) []Row {
	cur := append([]Row(nil), rows...)
	if q.Filter != nil {
		var kept []Row
		for _, r := range cur {
			if q.Filter(r) {
				kept = append(kept, r)
			}
		}
		cur = kept
	}
	if q.Distinct {
		seen := map[uint64]bool{}
		var kept []Row
		for _, r := range cur {
			if !seen[r.Key] {
				seen[r.Key] = true
				kept = append(kept, r)
			}
		}
		cur = kept
	}
	if q.GroupBy != AggNone {
		aggs := map[uint64]uint64{}
		var order []uint64
		for _, r := range cur {
			if _, ok := aggs[r.Key]; !ok {
				order = append(order, r.Key)
				switch q.GroupBy {
				case AggCount:
					aggs[r.Key] = 1
				default:
					aggs[r.Key] = r.Val
				}
				continue
			}
			switch q.GroupBy {
			case AggSum:
				aggs[r.Key] += r.Val
			case AggCount:
				aggs[r.Key]++
			case AggMin:
				if r.Val < aggs[r.Key] {
					aggs[r.Key] = r.Val
				}
			case AggMax:
				if r.Val > aggs[r.Key] {
					aggs[r.Key] = r.Val
				}
			}
		}
		cur = cur[:0]
		for _, k := range order {
			cur = append(cur, Row{Key: k, Val: aggs[k]})
		}
	}
	if q.TopK > 0 {
		// Insertion-sort descending by value (stable enough for distinct vals).
		sorted := append([]Row(nil), cur...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j].Val > sorted[j-1].Val; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		if q.TopK < len(sorted) {
			sorted = sorted[:q.TopK]
		}
		cur = sorted
	}
	return cur
}

func TestRunQueryPipeline(t *testing.T) {
	src := prng.New(88)
	rows := make([]Row, 120)
	for i := range rows {
		rows[i] = Row{Key: src.Uint64n(9), Val: 10 + uint64(i)} // distinct vals
	}
	tab := mustTable(t, rows)
	q := Query{
		Filter:  func(r Row) bool { return r.Val%2 == 0 },
		GroupBy: AggSum,
		TopK:    3,
	}
	got, _, err := RunQuery(Config{Mode: ModeSerial, Seed: 1}, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	want := refQuery(rows, q)
	if len(got.Rows()) != len(want) {
		t.Fatalf("got %v, want %v", got.Rows(), want)
	}
	for i, r := range want {
		if got.Rows()[i] != r {
			t.Fatalf("row %d: got %v, want %v", i, got.Rows()[i], r)
		}
	}
}

func TestRunQueryParallelMatchesSerial(t *testing.T) {
	src := prng.New(99)
	rows := make([]Row, 200)
	for i := range rows {
		rows[i] = Row{Key: src.Uint64n(20), Val: src.Uint64n(1 << 30)}
	}
	tab := mustTable(t, rows)
	q := Query{Filter: func(r Row) bool { return r.Val%3 != 0 }, GroupBy: AggMax, TopK: 5}
	serial, _, err := RunQuery(Config{Mode: ModeSerial}, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := RunQuery(Config{Workers: 4}, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows()) != len(par.Rows()) {
		t.Fatalf("serial %v != parallel %v", serial.Rows(), par.Rows())
	}
	for i := range serial.Rows() {
		if serial.Rows()[i] != par.Rows()[i] {
			t.Fatalf("serial %v != parallel %v", serial.Rows(), par.Rows())
		}
	}
}

// TestQueryObliviousTrace asserts the full public pipeline's adversary view
// depends only on the table's shape, not its contents.
func TestQueryObliviousTrace(t *testing.T) {
	q := Query{Filter: func(r Row) bool { return r.Val > 500 }, GroupBy: AggSum, TopK: 4}
	traceOf := func(rows []Row) trace.Fingerprint {
		tab := mustTable(t, rows)
		_, rep, err := RunQuery(Config{Mode: ModeMetered, Trace: true, Seed: 3}, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TraceFingerprint
	}
	src := prng.New(77)
	n := 90
	a := make([]Row, n)
	b := make([]Row, n)
	for i := 0; i < n; i++ {
		a[i] = Row{Key: 1, Val: 0}
		b[i] = Row{Key: src.Uint64n(30), Val: src.Uint64n(1 << 35)}
	}
	if !traceOf(a).Equal(traceOf(b)) {
		t.Fatal("query trace depends on table contents")
	}
}
