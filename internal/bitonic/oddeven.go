package bitonic

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// SortOddEven runs Batcher's odd–even merge sorting network over
// a[lo:lo+n], ascending. n must be a power of two. Like bitonic it uses
// O(n log² n) comparators with a data-independent schedule; unlike bitonic
// every comparator points the same way, which makes it the second
// convenient practical stand-in for the AKS network (DESIGN.md §5).
func SortOddEven(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], lo, n int, key func(obliv.Elem) uint64) {
	if !obliv.IsPow2(n) {
		panic("bitonic: n must be a power of two")
	}
	for p := 1; p < n; p <<= 1 {
		for k := p; k >= 1; k >>= 1 {
			off := k % p
			forkjoin.ParallelRange(c, 0, n-k, layerGrain, func(c *forkjoin.Ctx, from, to int) {
				for t := from; t < to; t++ {
					if t < off {
						continue
					}
					if ((t-off)/k)%2 != 0 {
						continue
					}
					if t/(2*p) != (t+k)/(2*p) {
						continue
					}
					obliv.CompareExchange(c, a, lo+t, lo+t+k, true, key)
				}
			})
		}
	}
}
