package bitonic

import (
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// TestKeyedCancelSite pins the cancellation checkpoint of the keyed
// networks: a tripped token aborts at the public "bitonic.layer" site
// before any layer runs, and an untripped token leaves the sort intact.
func TestKeyedCancelSite(t *testing.T) {
	const n = 128
	s := mem.NewSpace()
	a := mem.FromSlice(s, randElems(7, n))
	ks := obliv.AllocKeySchedule(s, n, 1)
	obliv.BuildKeySchedule(forkjoin.Serial(), a, ks, 0, n, keyWords)

	cn := new(forkjoin.Cancel)
	cn.Cancel()
	for _, tc := range []struct {
		name string
		run  func(c *forkjoin.Ctx)
	}{
		{"iterative", func(c *forkjoin.Ctx) { SortIterativeKeyed(c, a, ks, 0, n, true) }},
		{"oddeven", func(c *forkjoin.Ctx) { SortOddEvenKeyed(c, a, ks, 0, n) }},
	} {
		var caught any
		func() {
			defer func() { caught = recover() }()
			tc.run(forkjoin.SerialCancel(cn))
		}()
		ce, ok := caught.(*forkjoin.CanceledError)
		if !ok {
			t.Fatalf("%s with tripped token panicked %T (%v), want *CanceledError", tc.name, caught, caught)
		}
		if ce.Site != "bitonic.layer" {
			t.Fatalf("%s aborted at site %q, want bitonic.layer", tc.name, ce.Site)
		}
	}

	// The abort fired before the first layer, so the array is untouched; an
	// untripped token must now run the sort to completion.
	SortIterativeKeyed(forkjoin.SerialCancel(new(forkjoin.Cancel)), a, ks, 0, n, true)
	assertSorted(t, a.Data(), "keyed sort with untripped token")
}
