// Package bitonic implements Batcher's bitonic sorting network [Bat68] in
// the binary fork-join model, in three flavors:
//
//   - Naive: the direct parallelization that forks the comparators of each
//     layer — O(n log² n) work, O(log³ n) span, O((n/B)·log² n) cache
//     misses. This is the baseline the paper's §E.1 improves on.
//
//   - CacheAgnostic: the paper's BITONIC-SORT / BITONIC-MERGE (§E.1,
//     Theorem E.1) with the two-transpose recursive merge — same work,
//     O(log² n · log log n) span, O((n/B)·log_M n·log(n/M)) cache misses.
//
//   - OddEven: Batcher's odd–even merge sorting network, a second
//     data-independent sorting network used as the practical stand-in for
//     AKS (see DESIGN.md deviation 1).
//
// All three are data-oblivious: the comparator schedule depends only on n.
package bitonic

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// SortIterative runs the classic iterative bitonic network over
// a[lo:lo+n], ascending if asc. n must be a power of two. Each layer's
// comparators are forked with a binary tree (the naive parallelization).
func SortIterative(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], lo, n int, asc bool, key func(obliv.Elem) uint64) {
	if !obliv.IsPow2(n) {
		panic("bitonic: n must be a power of two")
	}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			layer(c, a, lo, n, k, j, asc, key)
		}
	}
}

// layerGrain is the leaf width of a comparator layer's fork tree: each
// leaf runs layerGrain/2 compare-exchanges (half the indices skip), enough
// work per task that an n/2-wide layer splits without drowning in deque
// traffic. Metered runs ignore it (grain is forced to 1 there).
const layerGrain = 1 << 8

// layer applies one butterfly layer: compare i with i|j for all i with
// bit j clear; direction flips with bit k of i (global direction asc).
func layer(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], lo, n, k, j int, asc bool, key func(obliv.Elem) uint64) {
	forkjoin.ParallelRange(c, 0, n, layerGrain, func(c *forkjoin.Ctx, from, to int) {
		for i := from; i < to; i++ {
			if i&j != 0 {
				continue
			}
			dir := (i&k == 0) == asc
			obliv.CompareExchange(c, a, lo+i, lo+(i|j), dir, key)
		}
	})
}

// mergeIterative applies the log2(m) butterfly layers of a single bitonic
// merge over a[lo:lo+m] in direction asc. The input must be bitonic.
func mergeIterative(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], lo, m int, asc bool, key func(obliv.Elem) uint64) {
	for j := m >> 1; j > 0; j >>= 1 {
		forkjoin.ParallelRange(c, 0, m, layerGrain, func(c *forkjoin.Ctx, from, to int) {
			for i := from; i < to; i++ {
				if i&j == 0 {
					obliv.CompareExchange(c, a, lo+i, lo+(i|j), asc, key)
				}
			}
		})
	}
}

// mergeSerial is mergeIterative without forking, used at recursion leaves.
func mergeSerial(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], lo, m int, asc bool, key func(obliv.Elem) uint64) {
	for j := m >> 1; j > 0; j >>= 1 {
		for i := 0; i < m; i++ {
			if i&j == 0 {
				obliv.CompareExchange(c, a, lo+i, lo+(i|j), asc, key)
			}
		}
	}
}

// sortSerial is the full iterative network without forking, used at
// recursion leaves.
func sortSerial(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], lo, n int, asc bool, key func(obliv.Elem) uint64) {
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < n; i++ {
				if i&j == 0 {
					dir := (i&k == 0) == asc
					obliv.CompareExchange(c, a, lo+i, lo+(i|j), dir, key)
				}
			}
		}
	}
}

// Comparator is one compare-exchange of the network: positions I < J,
// ascending if Asc (arrow pointing to J in Figure 1's convention).
type Comparator struct {
	I, J int
	Asc  bool
}

// Schedule returns the bitonic network for n inputs as a list of layers,
// each a list of comparators — the structure drawn in Figure 1 of the
// paper (n=16). n must be a power of two.
func Schedule(n int) [][]Comparator {
	if !obliv.IsPow2(n) {
		panic("bitonic: n must be a power of two")
	}
	var layers [][]Comparator
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			var l []Comparator
			for i := 0; i < n; i++ {
				if i&j == 0 {
					l = append(l, Comparator{I: i, J: i | j, Asc: i&k == 0})
				}
			}
			layers = append(layers, l)
		}
	}
	return layers
}
