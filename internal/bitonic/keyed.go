// Keyed (key-schedule) variants of the three sorting networks: the
// comparator schedule is identical to the closure-keyed networks — same
// layers, same positions, same directions — but each comparator reads the
// cached key words built by obliv.BuildKeySchedule instead of invoking the
// key closure twice. The key schedule moves in lockstep with the element
// array (including through the cache-agnostic merge's transposes, applied
// plane by plane), so the resulting permutation is exactly the one the
// closure network produces.
//
// The networks are width-generic: a schedule of W words per element widens
// each comparator's fixed read/write set and nothing else — the comparator
// positions and directions are functions of n alone, so the trace shape is
// the same at every width, and width 1 runs the identical single-word
// comparator the pre-wide-key networks ran.
package bitonic

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/matrix"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// SortIterativeKeyed is SortIterative against a cached key schedule. ks is
// indexed identically to a: ks words at i cache the key of a[i].
func SortIterativeKeyed(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, lo, n int, asc bool) {
	if !obliv.IsPow2(n) {
		panic("bitonic: n must be a power of two")
	}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			// Cancellation checkpoint between comparator layers: the layer
			// schedule is a function of n alone, so an abort reveals only
			// the public layer index.
			c.Check("bitonic.layer")
			layerKeyed(c, a, ks, lo, n, k, j, asc)
		}
	}
}

func layerKeyed(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, lo, n, k, j int, asc bool) {
	forkjoin.ParallelRange(c, 0, n, layerGrain, func(c *forkjoin.Ctx, from, to int) {
		for i := from; i < to; i++ {
			if i&j != 0 {
				continue
			}
			dir := (i&k == 0) == asc
			obliv.CompareExchangeCachedW(c, a, ks, lo+i, lo+(i|j), dir)
		}
	})
}

func mergeSerialKeyed(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, lo, m int, asc bool) {
	for j := m >> 1; j > 0; j >>= 1 {
		for i := 0; i < m; i++ {
			if i&j == 0 {
				obliv.CompareExchangeCachedW(c, a, ks, lo+i, lo+(i|j), asc)
			}
		}
	}
}

func sortSerialKeyed(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, lo, n int, asc bool) {
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < n; i++ {
				if i&j == 0 {
					dir := (i&k == 0) == asc
					obliv.CompareExchangeCachedW(c, a, ks, lo+i, lo+(i|j), dir)
				}
			}
		}
	}
}

// transposeKeyed transposes every plane of src into dst (the schedules move
// through the cache-agnostic merge in lockstep with the elements).
func transposeKeyed(c *forkjoin.Ctx, dst, src *obliv.KeySchedule, rows, cols int) {
	for p := 0; p < src.Width(); p++ {
		matrix.Transpose(c, dst.Plane(p), src.Plane(p), rows, cols)
	}
}

// SortCAKeyed is the cache-agnostic BITONIC-SORT (§E.1.1) against a cached
// key schedule: scratch must have length >= n, kscr must match ks's width
// and cover >= n elements, and neither may alias a or ks. ks is indexed
// identically to a (ks[lo:lo+n) cache the keys of a[lo:lo+n)). n must be a
// power of two.
func SortCAKeyed(c *forkjoin.Ctx, a, scratch *mem.Array[obliv.Elem], ks, kscr *obliv.KeySchedule, lo, n int, asc bool, leaf int) {
	if !obliv.IsPow2(n) {
		panic("bitonic: n must be a power of two")
	}
	if leaf < 2 {
		leaf = DefaultLeaf
	}
	if c.Metered() {
		// Grain-1 policy: measure the span of the fully forked network.
		leaf = 2
	}
	if n == 1 {
		return
	}
	sortCAKeyedRec(c, a.View(lo, n), scratch.View(0, n), ks.View(lo, n), kscr.View(0, n), 0, n, asc, leaf)
}

func sortCAKeyedRec(c *forkjoin.Ctx, buf, scr *mem.Array[obliv.Elem], kbuf, kscr *obliv.KeySchedule, lo, n int, asc bool, leaf int) {
	if n == 1 {
		return
	}
	// The recursion structure is a function of (n, leaf) alone — both
	// public — so a cancellation at a recursion entry reveals only how far
	// the fixed schedule progressed.
	c.Check("bitonic.layer")
	if n <= leaf {
		sortSerialKeyed(c, buf, kbuf, lo, n, asc)
		return
	}
	half := n / 2
	c.Fork(
		func(c *forkjoin.Ctx) { sortCAKeyedRec(c, buf, scr, kbuf, kscr, lo, half, true, leaf) },
		func(c *forkjoin.Ctx) { sortCAKeyedRec(c, buf, scr, kbuf, kscr, lo+half, half, false, leaf) },
	)
	mergeCAKeyedRec(c, buf, scr, kbuf, kscr, lo, n, asc, leaf)
}

func mergeCAKeyedRec(c *forkjoin.Ctx, buf, scr *mem.Array[obliv.Elem], kbuf, kscr *obliv.KeySchedule, lo, m int, asc bool, leaf int) {
	if m <= leaf {
		mergeSerialKeyed(c, buf, kbuf, lo, m, asc)
		return
	}
	k := obliv.Log2(m)
	k1 := (k + 1) / 2
	m1 := 1 << k1
	m2 := m / m1

	bv, sv := buf.View(lo, m), scr.View(lo, m)
	kbv, ksv := kbuf.View(lo, m), kscr.View(lo, m)

	// Phase 1: transpose the m1×m2 row-major view (elements and cached keys
	// in lockstep) and run the first k1 butterfly layers as contiguous
	// merges of length m1.
	matrix.Transpose(c, sv, bv, m1, m2)
	transposeKeyed(c, ksv, kbv, m1, m2)
	forkjoin.ParallelFor(c, 0, m2, 1, func(c *forkjoin.Ctx, i int) {
		mergeCAKeyedRec(c, scr, buf, kscr, kbuf, lo+i*m1, m1, asc, leaf)
	})

	// Phase 2: transpose back and run the remaining k-k1 layers as merges
	// of length m2 on the now-contiguous rows.
	matrix.Transpose(c, bv, sv, m2, m1)
	transposeKeyed(c, kbv, ksv, m2, m1)
	forkjoin.ParallelFor(c, 0, m1, 1, func(c *forkjoin.Ctx, i int) {
		mergeCAKeyedRec(c, buf, scr, kbuf, kscr, lo+i*m2, m2, asc, leaf)
	})
}

// SortOddEvenKeyed is Batcher's odd–even merge network against a cached key
// schedule. n must be a power of two.
func SortOddEvenKeyed(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, lo, n int) {
	if !obliv.IsPow2(n) {
		panic("bitonic: n must be a power of two")
	}
	for p := 1; p < n; p <<= 1 {
		for k := p; k >= 1; k >>= 1 {
			c.Check("bitonic.layer")
			off := k % p
			forkjoin.ParallelRange(c, 0, n-k, layerGrain, func(c *forkjoin.Ctx, from, to int) {
				for t := from; t < to; t++ {
					if t < off {
						continue
					}
					if ((t-off)/k)%2 != 0 {
						continue
					}
					if t/(2*p) != (t+k)/(2*p) {
						continue
					}
					obliv.CompareExchangeCachedW(c, a, ks, lo+t, lo+t+k, true)
				}
			})
		}
	}
}
