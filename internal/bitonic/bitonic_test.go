package bitonic

import (
	"sort"
	"testing"
	"testing/quick"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

var keyFn = func(e obliv.Elem) uint64 { return e.Key }

// keyWords is keyFn as a width-1 key-schedule emitter.
var keyWords = func(e obliv.Elem, out []uint64) { out[0] = e.Key }

func randElems(seed uint64, n int) []obliv.Elem {
	src := prng.New(seed)
	out := make([]obliv.Elem, n)
	for i := range out {
		out[i] = obliv.Elem{Key: src.Uint64n(uint64(4 * n)), Val: uint64(i), Kind: obliv.Real}
	}
	return out
}

func assertSorted(t *testing.T, data []obliv.Elem, label string) {
	t.Helper()
	for i := 1; i < len(data); i++ {
		if data[i-1].Key > data[i].Key {
			t.Fatalf("%s: not sorted at %d (%d > %d)", label, i, data[i-1].Key, data[i].Key)
		}
	}
}

func assertSameMultiset(t *testing.T, got, want []obliv.Elem, label string) {
	t.Helper()
	g := make([]uint64, len(got))
	w := make([]uint64, len(want))
	for i := range got {
		g[i], w[i] = got[i].Key, want[i].Key
	}
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: multiset changed", label)
		}
	}
}

func runSorter(t *testing.T, name string, sortFn func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], n int)) {
	t.Helper()
	for _, n := range []int{1, 2, 4, 8, 32, 128, 1024} {
		for seed := uint64(0); seed < 3; seed++ {
			raw := randElems(seed*100+uint64(n), n)
			s := mem.NewSpace()
			a := mem.FromSlice(s, raw)
			sortFn(forkjoin.Serial(), s, a, n)
			assertSorted(t, a.Data(), name)
			assertSameMultiset(t, a.Data(), raw, name)
		}
	}
}

func TestIterativeSorts(t *testing.T) {
	runSorter(t, "iterative", func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], n int) {
		SortIterative(c, a, 0, n, true, keyFn)
	})
}

func TestIterativeDescending(t *testing.T) {
	raw := randElems(7, 64)
	s := mem.NewSpace()
	a := mem.FromSlice(s, raw)
	SortIterative(forkjoin.Serial(), a, 0, 64, false, keyFn)
	for i := 1; i < 64; i++ {
		if a.Data()[i-1].Key < a.Data()[i].Key {
			t.Fatal("descending sort not descending")
		}
	}
}

func TestCacheAgnosticSorts(t *testing.T) {
	runSorter(t, "cache-agnostic", func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], n int) {
		CacheAgnostic{}.Sort(c, sp, a, 0, n, keyFn)
	})
}

func TestCacheAgnosticSmallLeaf(t *testing.T) {
	// Force deep recursion with a tiny leaf to exercise the transpose path
	// on every level, including odd log2 sizes.
	for _, n := range []int{8, 16, 32, 64, 128, 256, 512} {
		raw := randElems(uint64(n), n)
		s := mem.NewSpace()
		a := mem.FromSlice(s, raw)
		scratch := mem.Alloc[obliv.Elem](s, n)
		SortCA(forkjoin.Serial(), a, scratch, 0, n, true, 2, keyFn)
		assertSorted(t, a.Data(), "leaf=2")
		assertSameMultiset(t, a.Data(), raw, "leaf=2")
	}
}

func TestOddEvenSorts(t *testing.T) {
	runSorter(t, "odd-even", func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], n int) {
		OddEven{}.Sort(c, sp, a, 0, n, keyFn)
	})
}

func TestNaiveSorterSubrange(t *testing.T) {
	raw := randElems(9, 48)
	s := mem.NewSpace()
	a := mem.FromSlice(s, raw)
	Naive{}.Sort(forkjoin.Serial(), s, a, 8, 32, keyFn)
	// Outside the range untouched.
	for i := 0; i < 8; i++ {
		if a.Data()[i] != raw[i] {
			t.Fatal("prefix modified")
		}
	}
	for i := 40; i < 48; i++ {
		if a.Data()[i] != raw[i] {
			t.Fatal("suffix modified")
		}
	}
	assertSorted(t, a.Data()[8:40], "subrange")
}

func TestCacheAgnosticSubrange(t *testing.T) {
	raw := randElems(11, 96)
	s := mem.NewSpace()
	a := mem.FromSlice(s, raw)
	CacheAgnostic{Leaf: 4}.Sort(forkjoin.Serial(), s, a, 16, 64, keyFn)
	for i := 0; i < 16; i++ {
		if a.Data()[i] != raw[i] {
			t.Fatal("prefix modified")
		}
	}
	for i := 80; i < 96; i++ {
		if a.Data()[i] != raw[i] {
			t.Fatal("suffix modified")
		}
	}
	assertSorted(t, a.Data()[16:80], "subrange")
}

func TestMergeCAOnBitonicInput(t *testing.T) {
	// ascending then descending halves form a bitonic sequence.
	for _, n := range []int{8, 64, 256} {
		raw := randElems(uint64(n)+1, n)
		sort.Slice(raw[:n/2], func(i, j int) bool { return raw[i].Key < raw[j].Key })
		sort.Slice(raw[n/2:], func(i, j int) bool { return raw[n/2+i].Key > raw[n/2+j].Key })
		s := mem.NewSpace()
		a := mem.FromSlice(s, raw)
		scratch := mem.Alloc[obliv.Elem](s, n)
		MergeCA(forkjoin.Serial(), a, scratch, 0, n, true, 4, keyFn)
		assertSorted(t, a.Data(), "mergeCA")
		assertSameMultiset(t, a.Data(), raw, "mergeCA")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	raw := randElems(13, 2048)
	s1 := mem.NewSpace()
	a1 := mem.FromSlice(s1, raw)
	CacheAgnostic{}.Sort(forkjoin.Serial(), s1, a1, 0, 2048, keyFn)
	s2 := mem.NewSpace()
	a2 := mem.FromSlice(s2, raw)
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		CacheAgnostic{}.Sort(c, s2, a2, 0, 2048, keyFn)
	})
	for i := range raw {
		if a1.Data()[i].Key != a2.Data()[i].Key {
			t.Fatalf("parallel/serial mismatch at %d", i)
		}
	}
}

func TestStability01Principle(t *testing.T) {
	// 0/1 principle: a comparator network sorts all inputs iff it sorts
	// all 0/1 inputs. Exhaustively check n=16 via the Schedule.
	const n = 16
	layers := Schedule(n)
	for mask := 0; mask < 1<<n; mask++ {
		v := make([]uint8, n)
		for i := 0; i < n; i++ {
			v[i] = uint8((mask >> i) & 1)
		}
		for _, layer := range layers {
			for _, cmp := range layer {
				x, y := v[cmp.I], v[cmp.J]
				if (x > y) == cmp.Asc {
					v[cmp.I], v[cmp.J] = y, x
				}
			}
		}
		for i := 1; i < n; i++ {
			if v[i-1] > v[i] {
				t.Fatalf("network fails on mask %b", mask)
			}
		}
	}
}

func TestScheduleShape(t *testing.T) {
	// For n=16 the network has 1+2+3+4 = 10 layers of 8 comparators each —
	// the structure of Figure 1.
	layers := Schedule(16)
	if len(layers) != 10 {
		t.Fatalf("layers = %d, want 10", len(layers))
	}
	for i, l := range layers {
		if len(l) != 8 {
			t.Fatalf("layer %d has %d comparators, want 8", i, len(l))
		}
	}
}

func TestTraceObliviousAllVariants(t *testing.T) {
	const n = 256
	variants := []obliv.Sorter{CacheAgnostic{}, Naive{}, OddEven{}}
	for _, v := range variants {
		run := func(seed uint64) *forkjoin.Metrics {
			raw := randElems(seed, n)
			s := mem.NewSpace()
			a := mem.FromSlice(s, raw)
			return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
				v.Sort(c, s, a, 0, n, keyFn)
			})
		}
		if !run(1).Trace.Equal(run(2).Trace) {
			t.Fatalf("%s: access pattern depends on data", v.Name())
		}
	}
}

// TestScheduledMatchesClosureSort pins the keysched contract for all three
// networks: SortScheduled against a cached key schedule must produce
// exactly the permutation the closure-keyed Sort produces (same comparator
// schedule, same outcomes), and must keep the key array in lockstep.
func TestScheduledMatchesClosureSort(t *testing.T) {
	variants := []obliv.ScheduledSorter{CacheAgnostic{}, CacheAgnostic{Leaf: 2}, Naive{}, OddEven{}}
	for _, v := range variants {
		for _, n := range []int{1, 2, 8, 64, 256, 1024} {
			for seed := uint64(0); seed < 3; seed++ {
				raw := randElems(seed*31+uint64(n), n)

				s1 := mem.NewSpace()
				want := mem.FromSlice(s1, raw)
				v.Sort(forkjoin.Serial(), s1, want, 0, n, keyFn)

				s2 := mem.NewSpace()
				got := mem.FromSlice(s2, raw)
				ks := obliv.AllocKeySchedule(s2, n, 1)
				obliv.BuildKeySchedule(forkjoin.Serial(), got, ks, 0, n, keyWords)
				scr := mem.Alloc[obliv.Elem](s2, n)
				kscr := obliv.AllocKeySchedule(s2, n, 1)
				v.SortScheduled(forkjoin.Serial(), s2, got, ks, scr, kscr, 0, n)

				for i := 0; i < n; i++ {
					if got.Data()[i] != want.Data()[i] {
						t.Fatalf("%s n=%d seed=%d: keyed sort diverges from closure sort at %d (%v vs %v)",
							v.Name(), n, seed, i, got.Data()[i], want.Data()[i])
					}
					if ks.Plane(0).Data()[i] != keyFn(got.Data()[i]) {
						t.Fatalf("%s n=%d seed=%d: key schedule out of lockstep at %d", v.Name(), n, seed, i)
					}
				}
			}
		}
	}
}

// TestScheduledSubrange checks the keyed networks honor [lo, lo+n) bounds.
func TestScheduledSubrange(t *testing.T) {
	variants := []obliv.ScheduledSorter{CacheAgnostic{Leaf: 4}, Naive{}, OddEven{}}
	for _, v := range variants {
		raw := randElems(17, 96)
		s := mem.NewSpace()
		a := mem.FromSlice(s, raw)
		ks := obliv.AllocKeySchedule(s, 96, 1)
		obliv.BuildKeySchedule(forkjoin.Serial(), a, ks, 16, 64, keyWords)
		scr := mem.Alloc[obliv.Elem](s, 64)
		kscr := obliv.AllocKeySchedule(s, 64, 1)
		v.SortScheduled(forkjoin.Serial(), s, a, ks, scr, kscr, 16, 64)
		for i := 0; i < 16; i++ {
			if a.Data()[i] != raw[i] {
				t.Fatalf("%s: prefix modified", v.Name())
			}
		}
		for i := 80; i < 96; i++ {
			if a.Data()[i] != raw[i] {
				t.Fatalf("%s: suffix modified", v.Name())
			}
		}
		assertSorted(t, a.Data()[16:80], v.Name()+" keyed subrange")
	}
}

// TestScheduledTraceOblivious extends the variant trace test to the keyed
// path: the cached-key comparator always reads and rewrites all four
// positions, so the view must be data-independent.
func TestScheduledTraceOblivious(t *testing.T) {
	const n = 128
	for _, v := range []obliv.ScheduledSorter{CacheAgnostic{}, Naive{}, OddEven{}} {
		run := func(seed uint64) *forkjoin.Metrics {
			raw := randElems(seed, n)
			s := mem.NewSpace()
			a := mem.FromSlice(s, raw)
			ks := obliv.AllocKeySchedule(s, n, 1)
			scr := mem.Alloc[obliv.Elem](s, n)
			kscr := obliv.AllocKeySchedule(s, n, 1)
			return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
				obliv.BuildKeySchedule(c, a, ks, 0, n, keyWords)
				v.SortScheduled(c, s, a, ks, scr, kscr, 0, n)
			})
		}
		if !run(1).Trace.Equal(run(2).Trace) {
			t.Fatalf("%s: keyed access pattern depends on data", v.Name())
		}
	}
}

func TestWorkMatchesComparatorCount(t *testing.T) {
	// Bitonic on n=2^k has exactly n/2 * k(k+1)/2 comparators; each does
	// 2 reads + 2 writes + 1 comparison op = 5 work in the iterative net.
	const n, k = 64, 6
	comparators := int64(n / 2 * k * (k + 1) / 2)
	s := mem.NewSpace()
	a := mem.FromSlice(s, randElems(3, n))
	m := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) {
		SortIterative(c, a, 0, n, true, keyFn)
	})
	if m.MemOps != 4*comparators {
		t.Fatalf("memops = %d, want %d", m.MemOps, 4*comparators)
	}
}

func TestCacheAgnosticBeatsNaiveOnCache(t *testing.T) {
	// Theorem E.1: for n >> M, the recursive variant's misses scale like
	// (n/B)·log_M n·log(n/M) vs the naive (n/B)·log² n, so the ratio
	// recursive/naive must (a) stay below 1 and (b) shrink as n grows.
	const M, B = 1 << 8, 1 << 4
	miss := func(s obliv.Sorter, n int) int64 {
		sp := mem.NewSpace()
		a := mem.FromSlice(sp, randElems(5, n))
		m := forkjoin.RunMetered(forkjoin.MeterOpts{CacheM: M, CacheB: B}, func(c *forkjoin.Ctx) {
			s.Sort(c, sp, a, 0, n, keyFn)
		})
		return m.CacheMisses
	}
	// Normalizing each variant's misses by its own theoretical bound must
	// give a roughly flat constant across sizes; and the recursive variant
	// must win outright.
	lg := func(x int) float64 {
		l := 0.0
		for v := 1; v < x; v <<= 1 {
			l++
		}
		return l
	}
	caTheory := func(n int) float64 {
		return float64(n) / B * (lg(n) / lg(M)) * (lg(n) - lg(M))
	}
	naiveTheory := func(n int) float64 {
		return float64(n) / B * lg(n) * lg(n) / 2
	}
	const n1, n2 = 1 << 11, 1 << 14
	caF1 := float64(miss(CacheAgnostic{}, n1)) / caTheory(n1)
	caF2 := float64(miss(CacheAgnostic{}, n2)) / caTheory(n2)
	nvF1 := float64(miss(Naive{}, n1)) / naiveTheory(n1)
	nvF2 := float64(miss(Naive{}, n2)) / naiveTheory(n2)
	if caF2 > 1.7*caF1 || caF1 > 1.7*caF2 {
		t.Fatalf("cache-agnostic misses do not track the E.1 bound: factors %.2f vs %.2f", caF1, caF2)
	}
	if nvF2 > 1.7*nvF1 || nvF1 > 1.7*nvF2 {
		t.Fatalf("naive misses do not track the (n/B)log²n bound: factors %.2f vs %.2f", nvF1, nvF2)
	}
	if m1, m2 := miss(CacheAgnostic{}, n2), miss(Naive{}, n2); m1 >= m2 {
		t.Fatalf("cache-agnostic (%d misses) not better than naive (%d)", m1, m2)
	}
}

func TestCacheAgnosticBeatsNaiveOnSpan(t *testing.T) {
	// Span: O(log²n · loglog n) vs O(log³ n).
	const n = 1 << 12
	span := func(s obliv.Sorter) int64 {
		sp := mem.NewSpace()
		a := mem.FromSlice(sp, randElems(6, n))
		m := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) {
			s.Sort(c, sp, a, 0, n, keyFn)
		})
		return m.Span
	}
	if ca, naive := span(CacheAgnostic{Leaf: 4}), span(Naive{}); ca >= naive {
		t.Fatalf("cache-agnostic span %d not below naive %d", ca, naive)
	}
}

func TestQuickRandomInputsAllSorters(t *testing.T) {
	f := func(seed uint64, sizeExp uint8) bool {
		n := 1 << (sizeExp%8 + 1) // 2..256
		raw := randElems(seed, n)
		for _, v := range []obliv.Sorter{CacheAgnostic{Leaf: 4}, Naive{}, OddEven{}} {
			s := mem.NewSpace()
			a := mem.FromSlice(s, raw)
			v.Sort(forkjoin.Serial(), s, a, 0, n, keyFn)
			for i := 1; i < n; i++ {
				if a.Data()[i-1].Key > a.Data()[i].Key {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNonPow2Panics(t *testing.T) {
	s := mem.NewSpace()
	a := mem.FromSlice(s, randElems(1, 12))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two n")
		}
	}()
	SortIterative(forkjoin.Serial(), a, 0, 12, true, keyFn)
}

// wideKeyWords emits the (Key, Key2) two-word lexicographic schedule.
var wideKeyWords = func(e obliv.Elem, out []uint64) { out[0], out[1] = e.Key, e.Key2 }

// randWideElems draws elements whose two key columns exercise the full
// word range (including values far above 2^40) with plenty of column-0
// ties, so the lexicographic comparator's second word matters.
func randWideElems(seed uint64, n int) []obliv.Elem {
	src := prng.New(seed)
	out := make([]obliv.Elem, n)
	for i := range out {
		out[i] = obliv.Elem{
			Key:  src.Uint64n(8) * 0x9e3779b97f4a7c15, // few huge col-0 values
			Key2: src.Uint64n(uint64(2 * n)),
			Val:  uint64(i),
			Kind: obliv.Real,
		}
	}
	return out
}

// TestScheduledWideKeysMatchReference pins the width-2 schedule contract
// for all three networks: sorting against a two-word schedule must order
// elements by (Key, Key2) lexicographically and keep both planes in
// lockstep.
func TestScheduledWideKeysMatchReference(t *testing.T) {
	variants := []obliv.ScheduledSorter{CacheAgnostic{}, CacheAgnostic{Leaf: 2}, Naive{}, OddEven{}, obliv.SelectionNetwork{}}
	for _, v := range variants {
		for _, n := range []int{1, 2, 8, 64, 256} {
			raw := randWideElems(uint64(n)*7+1, n)

			want := append([]obliv.Elem(nil), raw...)
			sort.SliceStable(want, func(i, j int) bool {
				if want[i].Key != want[j].Key {
					return want[i].Key < want[j].Key
				}
				return want[i].Key2 < want[j].Key2
			})

			s := mem.NewSpace()
			a := mem.FromSlice(s, raw)
			ks := obliv.AllocKeySchedule(s, n, 2)
			obliv.BuildKeySchedule(forkjoin.Serial(), a, ks, 0, n, wideKeyWords)
			scr := mem.Alloc[obliv.Elem](s, n)
			kscr := obliv.AllocKeySchedule(s, n, 2)
			v.SortScheduled(forkjoin.Serial(), s, a, ks, scr, kscr, 0, n)

			for i := 0; i < n; i++ {
				g := a.Data()[i]
				if g.Key != want[i].Key || g.Key2 != want[i].Key2 {
					t.Fatalf("%s n=%d: wide sort out of order at %d: (%d,%d) want (%d,%d)",
						v.Name(), n, i, g.Key, g.Key2, want[i].Key, want[i].Key2)
				}
				if ks.Plane(0).Data()[i] != g.Key || ks.Plane(1).Data()[i] != g.Key2 {
					t.Fatalf("%s n=%d: wide key schedule out of lockstep at %d", v.Name(), n, i)
				}
			}
		}
	}
}

// TestScheduledWideTraceOblivious extends the keyed trace test to width 2:
// the wide comparator reads and rewrites every word of both positions
// unconditionally, so the view must be data-independent at any width.
func TestScheduledWideTraceOblivious(t *testing.T) {
	const n = 128
	for _, v := range []obliv.ScheduledSorter{CacheAgnostic{}, Naive{}, OddEven{}} {
		run := func(seed uint64) *forkjoin.Metrics {
			raw := randWideElems(seed, n)
			s := mem.NewSpace()
			a := mem.FromSlice(s, raw)
			ks := obliv.AllocKeySchedule(s, n, 2)
			scr := mem.Alloc[obliv.Elem](s, n)
			kscr := obliv.AllocKeySchedule(s, n, 2)
			return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
				obliv.BuildKeySchedule(c, a, ks, 0, n, wideKeyWords)
				v.SortScheduled(c, s, a, ks, scr, kscr, 0, n)
			})
		}
		if !run(1).Trace.Equal(run(2).Trace) {
			t.Fatalf("%s: wide keyed access pattern depends on data", v.Name())
		}
	}
}

// TestScheduledTiePosIsStable pins the TiePos tie-break contract the
// relational key sorts rely on: a keyed sort whose schedule breaks ties by
// the elements' (Kind, Tag, Aux) must order duplicate keys by tag then
// original position, with fillers at the tail — i.e. behave like a stable
// sort — for every network.
func TestScheduledTiePosIsStable(t *testing.T) {
	variants := []obliv.ScheduledSorter{CacheAgnostic{}, CacheAgnostic{Leaf: 2}, Naive{}, OddEven{}, obliv.SelectionNetwork{}}
	for _, v := range variants {
		for _, n := range []int{2, 8, 64, 256} {
			src := prng.New(uint64(n) * 13)
			raw := make([]obliv.Elem, n)
			for i := range raw {
				raw[i] = obliv.Elem{Key: src.Uint64n(4), Tag: uint32(src.Uint64n(2)), Aux: uint64(i), Kind: obliv.Real}
				if src.Uint64n(5) == 0 {
					raw[i] = obliv.Elem{} // filler
				}
			}
			want := append([]obliv.Elem(nil), raw...)
			sort.SliceStable(want, func(i, j int) bool {
				xf, yf := want[i].Kind != obliv.Real, want[j].Kind != obliv.Real
				if xf != yf {
					return yf
				}
				if xf {
					return false
				}
				if want[i].Key != want[j].Key {
					return want[i].Key < want[j].Key
				}
				if want[i].Tag != want[j].Tag {
					return want[i].Tag < want[j].Tag
				}
				return want[i].Aux < want[j].Aux
			})

			s := mem.NewSpace()
			a := mem.FromSlice(s, raw)
			ks := obliv.AllocKeySchedule(s, n, 1)
			ks.Tie = obliv.TiePos
			kscr := obliv.AllocKeySchedule(s, n, 1)
			kscr.Tie = obliv.TiePos
			obliv.BuildKeySchedule(forkjoin.Serial(), a, ks, 0, n, func(e obliv.Elem, out []uint64) {
				if e.Kind != obliv.Real {
					out[0] = obliv.InfKey
					return
				}
				out[0] = e.Key
			})
			scr := mem.Alloc[obliv.Elem](s, n)
			v.SortScheduled(forkjoin.Serial(), s, a, ks, scr, kscr, 0, n)

			for i := 0; i < n; i++ {
				if a.Data()[i] != want[i] {
					t.Fatalf("%s n=%d: TiePos sort not stable at %d: %+v want %+v",
						v.Name(), n, i, a.Data()[i], want[i])
				}
			}
		}
	}
}
