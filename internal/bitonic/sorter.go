package bitonic

import (
	"sync/atomic"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// networkCalls counts entries into the package's sorting networks (every
// Sort/SortScheduled that actually runs a network, across all sorter
// types). It exists for backend-routing regression tests: a run that
// selected the shuffle backend end to end must leave the counter
// untouched. The counter is advisory test instrumentation, not part of
// the oblivious cost model.
var networkCalls atomic.Int64

// NetworkCalls returns the number of bitonic/odd-even network invocations
// since process start. Tests snapshot it around a run and assert on the
// delta.
func NetworkCalls() int64 { return networkCalls.Load() }

// CacheAgnostic is the obliv.Sorter backed by the paper's cache-agnostic
// BITONIC-SORT (§E.1). It is the sorter used by REC-ORBA, REC-SORT and all
// higher-level primitives in the practical configuration. n must be a
// power of two.
type CacheAgnostic struct {
	// Leaf is the serial-leaf size (DefaultLeaf if zero).
	Leaf int
}

// Name implements obliv.Sorter.
func (CacheAgnostic) Name() string { return "bitonic-cache-agnostic" }

// Sort implements obliv.Sorter.
func (s CacheAgnostic) Sort(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], lo, n int, key func(obliv.Elem) uint64) {
	if n <= 1 {
		return
	}
	networkCalls.Add(1)
	scratch := mem.Alloc[obliv.Elem](sp, n)
	SortCA(c, a, scratch, lo, n, true, s.Leaf, key)
}

// SortScheduled implements obliv.ScheduledSorter (the space is unused; the
// network sorts through the caller's scratch).
func (s CacheAgnostic) SortScheduled(c *forkjoin.Ctx, _ *mem.Space, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, scr *mem.Array[obliv.Elem], kscr *obliv.KeySchedule, lo, n int) {
	if n <= 1 {
		return
	}
	networkCalls.Add(1)
	SortCAKeyed(c, a, scr, ks, kscr, lo, n, true, s.Leaf)
}

// Naive is the obliv.Sorter backed by the iterative network with per-layer
// forking — the baseline whose span and caching §E.1 improves. n must be a
// power of two.
type Naive struct{}

// Name implements obliv.Sorter.
func (Naive) Name() string { return "bitonic-naive" }

// Sort implements obliv.Sorter.
func (Naive) Sort(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], lo, n int, key func(obliv.Elem) uint64) {
	if n <= 1 {
		return
	}
	networkCalls.Add(1)
	SortIterative(c, a, lo, n, true, key)
}

// SortScheduled implements obliv.ScheduledSorter (in-place network; the
// space and scratch arguments are ignored).
func (Naive) SortScheduled(c *forkjoin.Ctx, _ *mem.Space, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, _ *mem.Array[obliv.Elem], _ *obliv.KeySchedule, lo, n int) {
	if n <= 1 {
		return
	}
	networkCalls.Add(1)
	SortIterativeKeyed(c, a, ks, lo, n, true)
}

// OddEven is the obliv.Sorter backed by Batcher's odd–even merge network.
// n must be a power of two.
type OddEven struct{}

// Name implements obliv.Sorter.
func (OddEven) Name() string { return "odd-even" }

// Sort implements obliv.Sorter.
func (OddEven) Sort(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], lo, n int, key func(obliv.Elem) uint64) {
	if n <= 1 {
		return
	}
	networkCalls.Add(1)
	SortOddEven(c, a, lo, n, key)
}

// SortScheduled implements obliv.ScheduledSorter (in-place network; the
// space and scratch arguments are ignored).
func (OddEven) SortScheduled(c *forkjoin.Ctx, _ *mem.Space, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, _ *mem.Array[obliv.Elem], _ *obliv.KeySchedule, lo, n int) {
	if n <= 1 {
		return
	}
	networkCalls.Add(1)
	SortOddEvenKeyed(c, a, ks, lo, n)
}
