package bitonic

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/matrix"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// DefaultLeaf is the subproblem size below which the recursion switches to
// the serial iterative network. It only affects constants; the recursion is
// cache-agnostic either way.
const DefaultLeaf = 32

// SortCA is the paper's cache-agnostic, binary fork-join BITONIC-SORT
// (§E.1.1): recursively sort the two halves in opposite directions, then
// BITONIC-MERGE. It sorts a[lo:lo+n]; scratch must have length >= n and
// not alias it. n must be a power of two.
//
// Costs (Theorem E.1): O(n log² n) work, O(log² n · log log n) span,
// O((n/B)·log_M n·log(n/M)) cache misses for n > M >= B².
func SortCA(c *forkjoin.Ctx, a, scratch *mem.Array[obliv.Elem], lo, n int, asc bool, leaf int, key func(obliv.Elem) uint64) {
	if !obliv.IsPow2(n) {
		panic("bitonic: n must be a power of two")
	}
	if leaf < 2 {
		leaf = DefaultLeaf
	}
	if c.Metered() {
		// Measure the span of the fully forked network (grain-1 policy).
		leaf = 2
	}
	if n == 1 {
		return
	}
	sortCARec(c, a.View(lo, n), scratch.View(0, n), 0, n, asc, leaf, key)
}

// sortCARec operates on buf with scr as an equal-shape scratch; lo is
// relative to the start of the top-level range, valid in both buffers.
func sortCARec(c *forkjoin.Ctx, buf, scr *mem.Array[obliv.Elem], lo, n int, asc bool, leaf int, key func(obliv.Elem) uint64) {
	if n == 1 {
		return
	}
	if n <= leaf {
		sortSerial(c, buf, lo, n, asc, key)
		return
	}
	half := n / 2
	c.Fork(
		func(c *forkjoin.Ctx) { sortCARec(c, buf, scr, lo, half, true, leaf, key) },
		func(c *forkjoin.Ctx) { sortCARec(c, buf, scr, lo+half, half, false, leaf, key) },
	)
	mergeCARec(c, buf, scr, lo, n, asc, leaf, key)
}

// MergeCA is the paper's cache-agnostic BITONIC-MERGE (§E.1.2) applied to
// the bitonic sequence a[lo:lo+m]; scratch must have length >= m and not
// alias a. m must be a power of two.
//
// The m-input reverse butterfly is evaluated as
//
//	transpose (m1×m2 → m2×m1) → merge the m2 rows of length m1
//	→ transpose back → merge the m1 rows of length m2,
//
// with m1 = 2^⌈k/2⌉, m2 = m/m1. The recursion structure mirrors the FFT of
// Frigo et al. [FLPR99].
func MergeCA(c *forkjoin.Ctx, a, scratch *mem.Array[obliv.Elem], lo, m int, asc bool, leaf int, key func(obliv.Elem) uint64) {
	if !obliv.IsPow2(m) {
		panic("bitonic: m must be a power of two")
	}
	if leaf < 2 {
		leaf = DefaultLeaf
	}
	if c.Metered() {
		leaf = 2
	}
	mergeCARec(c, a.View(lo, m), scratch.View(0, m), 0, m, asc, leaf, key)
}

func mergeCARec(c *forkjoin.Ctx, buf, scr *mem.Array[obliv.Elem], lo, m int, asc bool, leaf int, key func(obliv.Elem) uint64) {
	if m <= leaf {
		mergeSerial(c, buf, lo, m, asc, key)
		return
	}
	k := obliv.Log2(m)
	k1 := (k + 1) / 2
	m1 := 1 << k1
	m2 := m / m1

	bv := buf.View(lo, m)
	sv := scr.View(lo, m)

	// Phase 1: the first k1 butterfly layers (distances m/2 .. m2) become
	// full merges of length m1 on the columns, made contiguous by a
	// transpose of the m1×m2 row-major view.
	matrix.Transpose(c, sv, bv, m1, m2)
	forkjoin.ParallelFor(c, 0, m2, 1, func(c *forkjoin.Ctx, i int) {
		mergeCARec(c, scr, buf, lo+i*m1, m1, asc, leaf, key)
	})

	// Phase 2: transpose back and run the remaining k-k1 layers as merges
	// of length m2 on the now-contiguous rows.
	matrix.Transpose(c, bv, sv, m2, m1)
	forkjoin.ParallelFor(c, 0, m1, 1, func(c *forkjoin.Ctx, i int) {
		mergeCARec(c, buf, scr, lo+i*m2, m2, asc, leaf, key)
	})
}
