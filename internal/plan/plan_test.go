package plan

import "testing"

// shapes enumerates all 16 stage combinations (plus key-only variants where
// a filter is present).
func shapes() []Shape {
	var out []Shape
	for _, f := range []bool{false, true} {
		for _, d := range []bool{false, true} {
			for _, g := range []bool{false, true} {
				for _, k := range []int{0, 5} {
					out = append(out, Shape{Filter: f, Distinct: d, GroupBy: g, Agg: 0, TopK: k})
					if f {
						out = append(out, Shape{Filter: f, FilterKeyOnly: true, Distinct: d, GroupBy: g, Agg: 0, TopK: k})
					}
				}
			}
		}
	}
	return out
}

func TestPlansNeverBeatenByStaged(t *testing.T) {
	for _, s := range shapes() {
		p := Build(s)
		if p.SortPasses > p.StagedSortPasses {
			t.Errorf("shape %+v: fused plan uses %d sorts, staged only %d (%s)", s, p.SortPasses, p.StagedSortPasses, p)
		}
	}
}

func TestMultiStagePlansSaveSorts(t *testing.T) {
	// Any shape with >= 2 stages must run strictly fewer sorts than the
	// staged baseline — that is the planner's whole point.
	for _, s := range shapes() {
		stages := 0
		for _, b := range []bool{s.Filter, s.Distinct, s.GroupBy, s.TopK > 0} {
			if b {
				stages++
			}
		}
		if stages < 2 {
			continue
		}
		p := Build(s)
		if p.SortPasses >= p.StagedSortPasses {
			t.Errorf("shape %+v: fused %d sorts >= staged %d (%s)", s, p.SortPasses, p.StagedSortPasses, p)
		}
	}
}

func TestFullPipelinePlan(t *testing.T) {
	// The benchmark pipeline Filter→Distinct→GroupBy→TopK: 6 staged sorts
	// collapse to 2 (one key sort feeding the fused dedup+aggregate, one
	// value sort feeding top-k).
	p := Build(Shape{Filter: true, Distinct: true, GroupBy: true, Agg: 1, TopK: 3})
	if p.SortPasses != 2 || p.StagedSortPasses != 6 {
		t.Fatalf("full pipeline: sorts = %d (staged %d), want 2 (6): %s", p.SortPasses, p.StagedSortPasses, p)
	}
	if p.Output != OrderValDesc {
		t.Fatalf("full pipeline output order = %v, want %v", p.Output, OrderValDesc)
	}
	want := []OpKind{OpFilterMark, OpSortKey, OpDedupAggregate, OpSortValDesc, OpTopK}
	if len(p.Ops) != len(want) {
		t.Fatalf("ops = %s, want kinds %v", p, want)
	}
	for i, k := range want {
		if p.Ops[i].Kind != k {
			t.Fatalf("op %d = %v, want %v (%s)", i, p.Ops[i].Kind, k, p)
		}
	}
}

func TestKeyOnlyFilterPushdown(t *testing.T) {
	p := Build(Shape{Filter: true, FilterKeyOnly: true, GroupBy: true, Agg: 0})
	for _, op := range p.Ops {
		if op.Kind == OpFilterMark {
			t.Fatalf("key-only filter not pushed below group-by: %s", p)
		}
	}
	found := false
	for _, op := range p.Ops {
		if op.Kind == OpAggregate && op.WithFilter {
			found = true
		}
	}
	if !found {
		t.Fatalf("pushed filter not merged into aggregate pass: %s", p)
	}
}

func TestSingleStagePlansMatchSeedCosts(t *testing.T) {
	cases := []struct {
		s     Shape
		sorts int
		out   Order
	}{
		{Shape{Filter: true}, 1, OrderPos},
		{Shape{Distinct: true}, 2, OrderPos},
		{Shape{GroupBy: true}, 2, OrderPos},
		{Shape{TopK: 4}, 1, OrderValDesc},
		{Shape{}, 0, OrderInput},
	}
	for _, tc := range cases {
		p := Build(tc.s)
		if p.SortPasses != tc.sorts || p.Output != tc.out {
			t.Errorf("shape %+v: %d sorts / output %v, want %d / %v (%s)",
				tc.s, p.SortPasses, p.Output, tc.sorts, tc.out, p)
		}
	}
}

// TestShapeOnlyDeterminism pins the planner contract: equal shapes yield
// identical plans (Build takes nothing else, so this guards against future
// signature drift more than current behavior).
func TestShapeOnlyDeterminism(t *testing.T) {
	for _, s := range shapes() {
		a, b := Build(s), Build(s)
		if a.String() != b.String() {
			t.Fatalf("shape %+v: plans differ: %s vs %s", s, a, b)
		}
	}
}

// TestKeyColsNeverChangeThePlan pins the width-awareness contract: the
// key-column count selects schedule widths, never passes — every shape
// compiles to the same op sequence and sort counts at width 1 and 2, and
// width 1 renders exactly as the single-word planner always has.
func TestKeyColsNeverChangeThePlan(t *testing.T) {
	for _, s := range shapes() {
		narrow := Build(s)
		wide := s
		wide.KeyCols = 2
		w := Build(wide)
		if len(w.Ops) != len(narrow.Ops) || w.SortPasses != narrow.SortPasses ||
			w.StagedSortPasses != narrow.StagedSortPasses || w.Output != narrow.Output {
			t.Fatalf("shape %+v: width changed the plan: %s vs %s", s, narrow, w)
		}
		for i := range w.Ops {
			if w.Ops[i] != narrow.Ops[i] {
				t.Fatalf("shape %+v: op %d differs across widths", s, i)
			}
		}
	}
	p := Build(Shape{KeyCols: 2, Distinct: true, GroupBy: true, Agg: 4, TopK: 3})
	if want := "sort(key×2,pos) → dedup+aggregate → sort(val↓) → topk [2 sorts, staged 5]"; p.String() != want {
		t.Fatalf("wide rendering = %q, want %q", p, want)
	}
	n := Build(Shape{Distinct: true, GroupBy: true, Agg: 4, TopK: 3})
	if want := "sort(key,pos) → dedup+aggregate → sort(val↓) → topk [2 sorts, staged 5]"; n.String() != want {
		t.Fatalf("narrow rendering = %q, want %q", n, want)
	}
}

// ordersAndShapes crosses every stage combination with every input-order
// token and both output modes — the cross-query planning space.
func ordersAndShapes() []Shape {
	var out []Shape
	for _, base := range shapes() {
		for _, in := range []Order{OrderInput, OrderPos, OrderKeyPos, OrderValDesc} {
			for _, ko := range []bool{false, true} {
				s := base
				s.InputOrder = in
				s.KeyOrderOut = ko
				out = append(out, s)
			}
		}
	}
	return out
}

func TestInputOrderNeverIncreasesSorts(t *testing.T) {
	for _, s := range ordersAndShapes() {
		p := Build(s)
		cold := s
		cold.InputOrder = OrderInput
		if want := Build(cold).SortPasses; p.ColdSortPasses != want {
			t.Errorf("shape %+v: ColdSortPasses = %d, want the cold build's %d", s, p.ColdSortPasses, want)
		}
		if p.SortPasses > p.ColdSortPasses {
			t.Errorf("shape %+v: token plan runs %d sorts, cold only %d (%s)", s, p.SortPasses, p.ColdSortPasses, p)
		}
	}
}

func TestInputOrderSkipsFirstSort(t *testing.T) {
	cases := []struct {
		name        string
		s           Shape
		sorts, cold int
	}{
		// A key-ordered input feeds Distinct/GroupBy without their key sort.
		{"distinct", Shape{Distinct: true, InputOrder: OrderKeyPos}, 1, 2},
		{"groupby", Shape{GroupBy: true, Agg: 1, InputOrder: OrderKeyPos}, 1, 2},
		// With KeyOrderOut the compaction goes too: a zero-sort aggregate.
		{"distinct/keyout", Shape{Distinct: true, InputOrder: OrderKeyPos, KeyOrderOut: true}, 0, 1},
		{"groupby/keyout", Shape{GroupBy: true, Agg: 1, InputOrder: OrderKeyPos, KeyOrderOut: true}, 0, 1},
		// A key-only filter pushes below the group stage, so it does not
		// break the contiguity the token needs.
		{"keyfilter+groupby/keyout", Shape{Filter: true, FilterKeyOnly: true, GroupBy: true, Agg: 1, InputOrder: OrderKeyPos, KeyOrderOut: true}, 0, 1},
		// A value-ordered input feeds TopK without its value sort.
		{"topk", Shape{TopK: 3, InputOrder: OrderValDesc}, 0, 1},
		// Wrong token: no skip.
		{"topk/wrong-token", Shape{TopK: 3, InputOrder: OrderKeyPos}, 1, 1},
	}
	for _, tc := range cases {
		p := Build(tc.s)
		if p.SortPasses != tc.sorts || p.ColdSortPasses != tc.cold {
			t.Errorf("%s: sorts = %d (cold %d), want %d (%d): %s",
				tc.name, p.SortPasses, p.ColdSortPasses, tc.sorts, tc.cold, p)
		}
	}
}

func TestMarkPassBreaksContiguityForGroupStages(t *testing.T) {
	// A non-key-only filter interleaves fillers among the key-sorted real
	// records; dedup needs contiguous key groups, so the key sort must
	// come back even though the token matches.
	s := Shape{Filter: true, Distinct: true, InputOrder: OrderKeyPos}
	p := Build(s)
	found := false
	for _, op := range p.Ops {
		if op.Kind == OpSortKey {
			found = true
		}
	}
	if !found {
		t.Fatalf("filter-mark + distinct over a key-ordered input must re-sort: %s", p)
	}
	if p.SortPasses != p.ColdSortPasses {
		t.Fatalf("no skip expected: %d vs cold %d (%s)", p.SortPasses, p.ColdSortPasses, p)
	}
}

func TestKeyOrderOutDropsCompaction(t *testing.T) {
	plain := Build(Shape{GroupBy: true, Agg: 1})
	keyed := Build(Shape{GroupBy: true, Agg: 1, KeyOrderOut: true})
	if plain.SortPasses != 2 || keyed.SortPasses != 1 {
		t.Fatalf("groupby: plain %d sorts, keyout %d, want 2 and 1 (%s / %s)",
			plain.SortPasses, keyed.SortPasses, plain, keyed)
	}
	if keyed.Output != OrderKeyPos {
		t.Fatalf("keyout output token = %v, want OrderKeyPos", keyed.Output)
	}
	// TopK's public order is descending value; KeyOrderOut is ignored.
	tk := Build(Shape{TopK: 5})
	tko := Build(Shape{TopK: 5, KeyOrderOut: true})
	if tk.String() != tko.String() || tko.Output != OrderValDesc {
		t.Fatalf("topk must ignore KeyOrderOut: %s vs %s (output %v)", tk, tko, tko.Output)
	}
}

func TestOrderPosInputIsNoToken(t *testing.T) {
	// Positions renumber on reload, so OrderPos carries no information:
	// plans must match the cold build exactly.
	for _, base := range shapes() {
		s := base
		s.InputOrder = OrderPos
		cold := base
		cold.InputOrder = OrderInput
		if got, want := Build(s).String(), Build(cold).String(); got != want {
			t.Errorf("shape %+v: OrderPos input planned %q, cold plans %q", base, got, want)
		}
	}
}
