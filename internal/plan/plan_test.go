package plan

import "testing"

// shapes enumerates all 16 stage combinations (plus key-only variants where
// a filter is present).
func shapes() []Shape {
	var out []Shape
	for _, f := range []bool{false, true} {
		for _, d := range []bool{false, true} {
			for _, g := range []bool{false, true} {
				for _, k := range []int{0, 5} {
					out = append(out, Shape{Filter: f, Distinct: d, GroupBy: g, Agg: 0, TopK: k})
					if f {
						out = append(out, Shape{Filter: f, FilterKeyOnly: true, Distinct: d, GroupBy: g, Agg: 0, TopK: k})
					}
				}
			}
		}
	}
	return out
}

func TestPlansNeverBeatenByStaged(t *testing.T) {
	for _, s := range shapes() {
		p := Build(s)
		if p.SortPasses > p.StagedSortPasses {
			t.Errorf("shape %+v: fused plan uses %d sorts, staged only %d (%s)", s, p.SortPasses, p.StagedSortPasses, p)
		}
	}
}

func TestMultiStagePlansSaveSorts(t *testing.T) {
	// Any shape with >= 2 stages must run strictly fewer sorts than the
	// staged baseline — that is the planner's whole point.
	for _, s := range shapes() {
		stages := 0
		for _, b := range []bool{s.Filter, s.Distinct, s.GroupBy, s.TopK > 0} {
			if b {
				stages++
			}
		}
		if stages < 2 {
			continue
		}
		p := Build(s)
		if p.SortPasses >= p.StagedSortPasses {
			t.Errorf("shape %+v: fused %d sorts >= staged %d (%s)", s, p.SortPasses, p.StagedSortPasses, p)
		}
	}
}

func TestFullPipelinePlan(t *testing.T) {
	// The benchmark pipeline Filter→Distinct→GroupBy→TopK: 6 staged sorts
	// collapse to 2 (one key sort feeding the fused dedup+aggregate, one
	// value sort feeding top-k).
	p := Build(Shape{Filter: true, Distinct: true, GroupBy: true, Agg: 1, TopK: 3})
	if p.SortPasses != 2 || p.StagedSortPasses != 6 {
		t.Fatalf("full pipeline: sorts = %d (staged %d), want 2 (6): %s", p.SortPasses, p.StagedSortPasses, p)
	}
	if p.Output != OrderValDesc {
		t.Fatalf("full pipeline output order = %v, want %v", p.Output, OrderValDesc)
	}
	want := []OpKind{OpFilterMark, OpSortKey, OpDedupAggregate, OpSortValDesc, OpTopK}
	if len(p.Ops) != len(want) {
		t.Fatalf("ops = %s, want kinds %v", p, want)
	}
	for i, k := range want {
		if p.Ops[i].Kind != k {
			t.Fatalf("op %d = %v, want %v (%s)", i, p.Ops[i].Kind, k, p)
		}
	}
}

func TestKeyOnlyFilterPushdown(t *testing.T) {
	p := Build(Shape{Filter: true, FilterKeyOnly: true, GroupBy: true, Agg: 0})
	for _, op := range p.Ops {
		if op.Kind == OpFilterMark {
			t.Fatalf("key-only filter not pushed below group-by: %s", p)
		}
	}
	found := false
	for _, op := range p.Ops {
		if op.Kind == OpAggregate && op.WithFilter {
			found = true
		}
	}
	if !found {
		t.Fatalf("pushed filter not merged into aggregate pass: %s", p)
	}
}

func TestSingleStagePlansMatchSeedCosts(t *testing.T) {
	cases := []struct {
		s     Shape
		sorts int
		out   Order
	}{
		{Shape{Filter: true}, 1, OrderPos},
		{Shape{Distinct: true}, 2, OrderPos},
		{Shape{GroupBy: true}, 2, OrderPos},
		{Shape{TopK: 4}, 1, OrderValDesc},
		{Shape{}, 0, OrderInput},
	}
	for _, tc := range cases {
		p := Build(tc.s)
		if p.SortPasses != tc.sorts || p.Output != tc.out {
			t.Errorf("shape %+v: %d sorts / output %v, want %d / %v (%s)",
				tc.s, p.SortPasses, p.Output, tc.sorts, tc.out, p)
		}
	}
}

// TestShapeOnlyDeterminism pins the planner contract: equal shapes yield
// identical plans (Build takes nothing else, so this guards against future
// signature drift more than current behavior).
func TestShapeOnlyDeterminism(t *testing.T) {
	for _, s := range shapes() {
		a, b := Build(s), Build(s)
		if a.String() != b.String() {
			t.Fatalf("shape %+v: plans differ: %s vs %s", s, a, b)
		}
	}
}

// TestKeyColsNeverChangeThePlan pins the width-awareness contract: the
// key-column count selects schedule widths, never passes — every shape
// compiles to the same op sequence and sort counts at width 1 and 2, and
// width 1 renders exactly as the single-word planner always has.
func TestKeyColsNeverChangeThePlan(t *testing.T) {
	for _, s := range shapes() {
		narrow := Build(s)
		wide := s
		wide.KeyCols = 2
		w := Build(wide)
		if len(w.Ops) != len(narrow.Ops) || w.SortPasses != narrow.SortPasses ||
			w.StagedSortPasses != narrow.StagedSortPasses || w.Output != narrow.Output {
			t.Fatalf("shape %+v: width changed the plan: %s vs %s", s, narrow, w)
		}
		for i := range w.Ops {
			if w.Ops[i] != narrow.Ops[i] {
				t.Fatalf("shape %+v: op %d differs across widths", s, i)
			}
		}
	}
	p := Build(Shape{KeyCols: 2, Distinct: true, GroupBy: true, Agg: 4, TopK: 3})
	if want := "sort(key×2,pos) → dedup+aggregate → sort(val↓) → topk [2 sorts, staged 5]"; p.String() != want {
		t.Fatalf("wide rendering = %q, want %q", p, want)
	}
	n := Build(Shape{Distinct: true, GroupBy: true, Agg: 4, TopK: 3})
	if want := "sort(key,pos) → dedup+aggregate → sort(val↓) → topk [2 sorts, staged 5]"; n.String() != want {
		t.Fatalf("narrow rendering = %q, want %q", n, want)
	}
}
