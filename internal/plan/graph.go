package plan

import "fmt"

// Sort-pass costs of the PRAM-layer primitives the graph operators are
// assembled from. A send-receive routes with two schedule-driven sorts
// (source-key order, then destination order); a gather is one send-receive
// with the memory cells as senders; a conflict-resolved scatter pays one
// (addr, prio) request sort and then a send-receive to rewrite every cell.
const (
	sendReceiveSorts = 2
	gatherSorts      = sendReceiveSorts
	scatterSorts     = 1 + sendReceiveSorts
	jumpSorts        = gatherSorts // one pointer jump = one D[D[w]] gather
	starsSorts       = gatherSorts + scatterSorts + gatherSorts
)

// Per-round / per-iteration sort counts of the graph operators, derived
// from the primitive costs above (asserted against metered runs by the
// package tests):
//
//	min-hook CC round  = endpoint gather + min-scatter + 2 jumps
//	AS CC iteration    = stars + hook(3 gathers + scatter) + stars + hook + jump
//	MSF iteration      = 2 endpoint gathers + stars + selection sort
//	                     + star-root gather + 2 scatters + D[D] gather + jump
//	PageRank iteration = join-all (3 staged sorts) + grouped sum (2)
const (
	ccMinHookRoundSorts = gatherSorts + scatterSorts + 2*jumpSorts
	hookSorts           = 3*gatherSorts + scatterSorts
	ccASIterSorts       = 2*starsSorts + 2*hookSorts + jumpSorts
	msfIterSorts        = 2*gatherSorts + starsSorts + 1 + gatherSorts +
		2*scatterSorts + gatherSorts + jumpSorts
	pageRankIterSorts = joinSorts + 2
	pageRankBaseSorts = 2 // the one-off out-degree grouped count
)

// GraphKind enumerates the planned graph workloads.
type GraphKind uint8

const (
	// GraphCC — min-hook connected components (the workload variant: one
	// batched endpoint gather, one min-combining scatter, two jumps per
	// round).
	GraphCC GraphKind = iota
	// GraphCCAS — Awerbuch–Shiloach connected components (the Theorem
	// 5.2(ii) variant with its fixed 3·⌈log₂ n⌉+5 iteration bound).
	GraphCCAS
	// GraphMSF — Borůvka star-hooking minimum spanning forest.
	GraphMSF
	// GraphPageRank — the relational PageRank iterated aggregate
	// (join-all + grouped sum per iteration).
	GraphPageRank
)

// String implements fmt.Stringer.
func (k GraphKind) String() string {
	switch k {
	case GraphCC:
		return "cc-minhook"
	case GraphCCAS:
		return "cc-as"
	case GraphMSF:
		return "msf"
	case GraphPageRank:
		return "pagerank"
	}
	return fmt.Sprintf("graph(%d)", uint8(k))
}

// GraphShape is the public shape of a graph workload: the vertex and edge
// counts plus the round parameter. Like the relational Shape, it carries
// exactly what the adversary already holds; BuildGraph is a pure function
// of it.
type GraphShape struct {
	Kind GraphKind
	// N, M are the public vertex and edge counts.
	N, M int
	// Rounds is the workload's round parameter: for GraphCC a positive
	// value runs exactly that many rounds (0 = run to convergence,
	// revealing the count); for GraphPageRank it is the iteration count;
	// GraphCCAS and GraphMSF ignore it (their bounds are functions of N).
	Rounds int
}

// GraphPlan is the sort-pass accounting of one graph workload, the
// graph-side analogue of Plan.
type GraphPlan struct {
	Kind GraphKind
	N, M int
	// SortsPerRound is the fixed sort cost of one round/iteration.
	SortsPerRound int
	// BaseSorts counts the sorts outside the iteration (PageRank's
	// out-degree pass).
	BaseSorts int
	// Rounds is the round count the totals are computed over: the exact
	// public count when Fixed, else the worst-case bound of a revealed
	// data-dependent loop (0 = unbounded a priori; CC convergence).
	Rounds int
	// Fixed reports whether Rounds is an exact public count — the trace is
	// then a fixed function of (N, M, Rounds) — rather than a revealed
	// run-time quantity.
	Fixed bool
}

// TotalSorts is the total sort-pass count: exact when Fixed, a worst-case
// bound otherwise, and -1 when no a-priori bound exists (a convergence
// loop whose round count is revealed only at run time).
func (p GraphPlan) TotalSorts() int {
	if p.Rounds == 0 && !p.Fixed {
		return -1
	}
	return p.BaseSorts + p.SortsPerRound*p.Rounds
}

// String renders the per-round pass structure and the sort accounting in
// the style of Plan.String, e.g.
//
//	cc-minhook(n=65536, m=1048576): gather → scatter-min → jump → jump
//	[9 sorts/round × 4 rounds = 36 sorts]
func (p GraphPlan) String() string {
	var passes string
	switch p.Kind {
	case GraphCC:
		passes = "gather → scatter-min → jump → jump"
	case GraphCCAS:
		passes = "stars → hook → stars → hook! → jump"
	case GraphMSF:
		passes = "gather² → stars → sort(sel) → gather → scatter² → gather → jump"
	case GraphPageRank:
		passes = "join-all → group-sum"
	default:
		passes = "?"
	}
	head := fmt.Sprintf("%s(n=%d, m=%d): %s", p.Kind, p.N, p.M, passes)
	base := ""
	if p.BaseSorts > 0 {
		base = fmt.Sprintf("%d + ", p.BaseSorts)
	}
	switch {
	case p.Fixed:
		return fmt.Sprintf("%s [%s%d sorts/round × %d rounds = %d sorts]",
			head, base, p.SortsPerRound, p.Rounds, p.TotalSorts())
	case p.Rounds > 0:
		return fmt.Sprintf("%s [%s%d sorts/round × ≤%d rounds, count revealed]",
			head, base, p.SortsPerRound, p.Rounds)
	default:
		return fmt.Sprintf("%s [%s%d sorts/round, rounds revealed]",
			head, base, p.SortsPerRound)
	}
}

// BuildGraph compiles a graph workload shape into its sort accounting. It
// is a pure function of s, mirroring Build: equal shapes plan identically
// regardless of graph contents.
func BuildGraph(s GraphShape) GraphPlan {
	p := GraphPlan{Kind: s.Kind, N: s.N, M: s.M}
	switch s.Kind {
	case GraphCC:
		p.SortsPerRound = ccMinHookRoundSorts
		if s.Rounds > 0 {
			p.Rounds = s.Rounds
			p.Fixed = true
		}
	case GraphCCAS:
		p.SortsPerRound = ccASIterSorts
		p.Rounds = 3*log2ceil(s.N) + 5
		p.Fixed = true
	case GraphMSF:
		p.SortsPerRound = msfIterSorts
		b := log2ceil(s.N) + 2
		p.Rounds = b * b // revealed early-exit bound, not a fixed count
	case GraphPageRank:
		p.SortsPerRound = pageRankIterSorts
		p.BaseSorts = pageRankBaseSorts
		p.Rounds = s.Rounds
		p.Fixed = true
	}
	return p
}

// log2ceil returns ⌈log₂ n⌉ (0 for n <= 1).
func log2ceil(n int) int {
	r := 0
	for (1 << r) < n {
		r++
	}
	return r
}
