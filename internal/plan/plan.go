// Package plan is the sort-fusion query planner for the oblivious
// relational engine (internal/relops). It rewrites a declarative pipeline
// of logical stages (JoinAll → Filter → Distinct → GroupBy → TopK) into a
// sequence of physical passes that runs strictly fewer O(n log² n)
// sorting-network passes than executing the stages one operator at a time.
// The join stage is binary and therefore executed by the query layer
// (which holds both relations), but it is planned here: its sort-pass
// accounting and its rule-1 fusion — dropping the join's propagate+compact
// tail whenever a later stage re-sorts — are planner decisions rendered by
// Explain like every other fusion opportunity.
//
// Obliviousness: every planner decision is a pure function of the *query
// shape* — which stages are present, the aggregation kind, k, and the
// declared key-only-ness of the filter — never of the relation contents.
// The physical passes themselves are the same data-independent primitives
// the stand-alone operators use (sorting networks, segmented scans, fixed
// elementwise passes), so a planned pipeline's trace remains a function of
// the relation size and the public query shape only. Rewriting *which*
// sorts run is safe precisely because comparator schedules are
// data-independent (the property the paper's §E.1 bitonic construction and
// Batcher's networks provide): dropping or merging a sorting pass changes
// the trace as a function of the shape, not of the data.
//
// The same order token crosses queries (the cross-query planner of the
// serving layer): Shape.InputOrder declares the order the input relation
// already carries — the Output token of the query that materialized it,
// stamped on the public Table — and Build skips the pipeline's first sort
// when the declared order is the one that sort would establish. The token
// is itself a pure function of the producing query's shape, so feeding it
// forward keeps every planner decision, and hence the trace, a function of
// public query shapes only: result caching and order chaining add no
// trace leakage.
//
// The three rewrite rules, expressed over a "sorted-by" order token carried
// on the intermediate relation:
//
//  1. Compaction deferral. A stage that merely marks its victims (Filter,
//     the duplicate-drop of Distinct, the non-head drop of GroupBy) does
//     not need its own compaction sort when a later stage re-sorts the
//     relation anyway: victims become fillers in place (one fixed
//     elementwise pass, zero sorts) and the next sort carries them to the
//     tail. Only the *last* stage pays a compaction sort, and only when the
//     pipeline's output order demands it.
//
//  2. Sort fusion. Adjacent stages that need the same key order share one
//     sort: Distinct immediately followed by GroupBy runs a single
//     (key, position) sort and a single combined dedup+aggregate pass.
//
//  3. Filter pushdown. A filter declared key-only commutes with Distinct
//     and GroupBy (it drops whole key groups, so neither the surviving
//     heads nor the group aggregates change); the planner pushes it below
//     them and merges its predicate into their existing elementwise pass,
//     eliminating the filter's own pass altogether.
package plan

import "fmt"

// Order is the public "sorted-by" token tracked on the intermediate
// relation: it describes the relative order of the *real* records (fillers
// are interchangeable padding — a sort keyed to send them to the tail
// restores contiguity without disturbing real-record order).
type Order uint8

const (
	// OrderInput — original input order (positions 0..n), fillers anywhere.
	OrderInput Order = iota
	// OrderPos — survivors at the front, ascending original position,
	// fillers at the tail (the operators' public output order).
	OrderPos
	// OrderKeyPos — ascending (key, original position); fillers possibly
	// interleaved where dropped records sat.
	OrderKeyPos
	// OrderValDesc — descending value; fillers at the tail.
	OrderValDesc
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case OrderInput:
		return "input"
	case OrderPos:
		return "pos"
	case OrderKeyPos:
		return "key,pos"
	case OrderValDesc:
		return "val↓"
	}
	return fmt.Sprintf("order(%d)", uint8(o))
}

// Shape is the public shape of a query: exactly the information the
// adversary already holds. Build's output is a deterministic function of a
// Shape and nothing else.
type Shape struct {
	// KeyCols is the relation's key-column count (0 is treated as 1). The
	// width is public schema, not data: it selects how many words the key
	// sorts' schedules carry — (key columns..., position) — and nothing
	// else. Widening the key never changes which passes run or how many
	// sorts the plan costs, so width-1 queries keep the exact pass
	// sequence (and sort-pass count) of the single-word planner.
	KeyCols int
	// Join reports whether a many-to-many equi-join stage feeds the unary
	// pipeline (the queried table is the join's right side; the output
	// capacity is execution shape the planner never needs).
	Join bool
	// Filter reports whether a filter stage is present.
	Filter bool
	// FilterKeyOnly declares the filter predicate a function of the key
	// alone, enabling pushdown below Distinct/GroupBy.
	FilterKeyOnly bool
	// Distinct reports whether a distinct stage is present.
	Distinct bool
	// GroupBy reports whether a group-by stage is present; Agg then holds
	// the aggregation kind (an opaque code forwarded to the executor).
	GroupBy bool
	Agg     uint8
	// TopK > 0 keeps only the k largest-value rows.
	TopK int
	// InputOrder is the "sorted-by" token the input relation already
	// carries: the Output token of the query that materialized it, fed
	// forward across the public boundary (OrderInput — the zero value —
	// means no known order; OrderPos is equivalent, since reloading
	// renumbers positions to the stored order). It is public shape: the
	// token is a function of the producing query's shape, never of data.
	// Build skips the pipeline's first sort when InputOrder is exactly the
	// order that sort would establish and no earlier mark pass has
	// interleaved fillers among the real records.
	InputOrder Order
	// KeyOrderOut requests the result in ascending (key tuple, position)
	// order — OrderKeyPos — instead of the operators' original-position
	// output order. For shapes whose last dropping stage is Distinct or
	// GroupBy the relation is already key-sorted there, so the
	// position-restoring compaction sort disappears entirely; other shapes
	// pay one key sort in place of the compaction sort. TopK shapes ignore
	// it (their public order is descending value). This is the serving
	// layer's materialization mode: the saved sort compounds with
	// InputOrder on the next query over the stored result.
	KeyOrderOut bool
}

// OpKind enumerates the physical passes of the fused execution.
type OpKind uint8

const (
	// OpFilterMark drops records failing the predicate to fillers in one
	// fixed elementwise pass. No sort; preserves real-record order.
	OpFilterMark OpKind = iota
	// OpSortKey sorts by (key, original position), fillers last. One sort.
	OpSortKey
	// OpDedup marks key-group heads and drops duplicates to fillers
	// (requires OrderKeyPos with contiguous key groups). No sort.
	OpDedup
	// OpAggregate runs the segmented aggregate, installs each group's
	// aggregate on its head and drops non-heads to fillers (requires
	// OrderKeyPos with contiguous key groups). No sort.
	OpAggregate
	// OpDedupAggregate is the fused Distinct→GroupBy pass: group heads
	// survive carrying the singleton aggregate of the deduplicated
	// relation. No sort.
	OpDedupAggregate
	// OpSortValDesc sorts by descending value, fillers last. One sort.
	OpSortValDesc
	// OpTopK drops records of oblivious rank > k to fillers (requires
	// OrderValDesc). No sort.
	OpTopK
	// OpCompactPos restores the public output order: survivors to the
	// front by original position, fillers to the tail. One sort.
	OpCompactPos
	// OpJoinAll is the many-to-many expansion join feeding the unary
	// pipeline (relops.JoinAll; executed by the query layer, which holds
	// both relations — the fused executor rejects it). Three sorts
	// stand-alone (the expansion rides the interleave sort's order through
	// a bitonic merge rather than sorting again); with Deferred set, the
	// join's value-propagation and output-compaction sorts are dropped
	// (rule 1 applied to the join's propagate+compact tail) and it costs
	// one.
	OpJoinAll
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpFilterMark:
		return "filter-mark"
	case OpSortKey:
		return "sort(key,pos)"
	case OpDedup:
		return "dedup"
	case OpAggregate:
		return "aggregate"
	case OpDedupAggregate:
		return "dedup+aggregate"
	case OpSortValDesc:
		return "sort(val↓)"
	case OpTopK:
		return "topk"
	case OpCompactPos:
		return "compact(pos)"
	case OpJoinAll:
		return "join-all"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one physical pass.
type Op struct {
	Kind OpKind
	// Agg is the aggregation code for OpAggregate / OpDedupAggregate.
	Agg uint8
	// K is the rank cutoff for OpTopK.
	K int
	// WithFilter merges the (key-only) filter predicate into this pass's
	// elementwise survivor test (rewrite rule 3).
	WithFilter bool
	// Deferred drops OpJoinAll's value-propagation and output-compaction
	// sorts: a later stage re-sorts the relation anyway, so the join may
	// leave its matches scattered among fillers (rewrite rule 1).
	Deferred bool
}

// Plan is the physical pass sequence for one query, plus the public
// bookkeeping the tests and tools assert on.
type Plan struct {
	Ops []Op
	// KeyCols is the key-column count the key sorts' schedules carry
	// (>= 1; copied from the shape).
	KeyCols int
	// SortPasses counts the full sorting-network passes the plan runs.
	SortPasses int
	// StagedSortPasses counts the sorts the same shape costs when executed
	// one stand-alone operator at a time (the pre-planner baseline).
	StagedSortPasses int
	// ColdSortPasses counts the sorts the same shape plans with no input
	// order token (InputOrder = OrderInput) — the cold-plan baseline the
	// cross-query savings are measured against.
	ColdSortPasses int
	// Input is the input order token the plan was built against (copied
	// from the shape; rendered by String when non-trivial).
	Input Order
	// Output is the order token of the result relation.
	Output Order
}

// String renders the pass sequence, e.g.
// "filter-mark → sort(key,pos) → aggregate → sort(val↓) → topk [2 sorts]";
// multi-column shapes render their key sorts with the column count, e.g.
// "sort(key×2,pos)". Width-1 plans render exactly as the single-word
// planner always has.
func (p Plan) String() string {
	s := ""
	for i, op := range p.Ops {
		if i > 0 {
			s += " → "
		}
		if op.Kind == OpSortKey && p.KeyCols > 1 {
			s += fmt.Sprintf("sort(key×%d,pos)", p.KeyCols)
		} else {
			s += op.Kind.String()
		}
		if op.WithFilter {
			s += "+filter"
		}
		if op.Deferred {
			s += "+defer"
		}
	}
	if s == "" {
		s = "identity"
	}
	if p.Input != OrderInput && p.Input != OrderPos {
		s = fmt.Sprintf("in(%s) → %s", p.Input, s)
	}
	if p.ColdSortPasses > p.SortPasses {
		return fmt.Sprintf("%s [%d sorts, cold %d, staged %d]",
			s, p.SortPasses, p.ColdSortPasses, p.StagedSortPasses)
	}
	return fmt.Sprintf("%s [%d sorts, staged %d]", s, p.SortPasses, p.StagedSortPasses)
}

// Join-stage sort costs: the stand-alone operator's three sorting passes
// (key sort — whose order the bitonic-merge expansion reuses in place of
// the old distribution sort — left-index sort, output compaction) and the
// one that remains once deferral drops the propagate+compact tail.
const (
	joinSorts         = 3
	joinSortsDeferred = 1
)

// SortCost is the number of full sorting-network passes op runs.
func (op Op) SortCost() int {
	switch {
	case op.Kind == OpJoinAll && op.Deferred:
		return joinSortsDeferred
	case op.Kind == OpJoinAll:
		return joinSorts
	case op.Kind == OpSortKey || op.Kind == OpSortValDesc || op.Kind == OpCompactPos:
		return 1
	}
	return 0
}

// Build compiles a query shape into its fused physical plan. It is a pure
// function of s: two queries of equal shape get identical plans regardless
// of their table contents, which is what keeps the planned trace a function
// of (relation size, query shape) only — InputOrder and KeyOrderOut are
// part of the shape, so order chaining across queries preserves that
// property.
func Build(s Shape) Plan {
	var ops []Op
	keyCols := s.KeyCols
	if keyCols < 1 {
		keyCols = 1
	}

	// cur tracks the relative order of the real records; contiguous tracks
	// whether they sit packed at the front with fillers only at the tail
	// (how Load delivers every relation). The group passes (dedup,
	// aggregate) need both: a filler interleaved by an earlier mark pass
	// would split a key group, so an input order token is only honored
	// while contiguity holds.
	cur := s.InputOrder
	if cur == OrderPos {
		// Reloading renumbers positions to the stored order, so a
		// position-ordered result reloads as plain input order.
		cur = OrderInput
	}
	contiguous := true

	if s.Join {
		// The join feeds the unary stages. Whenever any later stage is
		// present, that stage (or the pipeline's final compaction) sorts
		// the relation again, so the join's value-propagation and
		// output-compaction sorts are deferred away (rule 1 applied to the
		// join's tail): matches stay scattered among fillers and the next
		// sort restores contiguity. A stand-alone join pays the full
		// four-sort operator and establishes the output order itself. The
		// expansion scrambles the right side either way, so any input
		// token dies here.
		deferred := s.Filter || s.Distinct || s.GroupBy || s.TopK > 0
		ops = append(ops, Op{Kind: OpJoinAll, Deferred: deferred})
		if deferred {
			// Scattered matches: no order token holds (the copies of one
			// right record even share a position).
			cur = OrderInput
			contiguous = false
		} else {
			cur = OrderPos
		}
	}

	// Rule 3: a key-only filter below a Distinct/GroupBy stage merges into
	// that stage's elementwise pass.
	pushFilter := s.Filter && s.FilterKeyOnly && (s.Distinct || s.GroupBy)
	if s.Filter && !pushFilter {
		// Rule 1: mark only; a later sort (or the final compaction) carries
		// the dropped records to the tail. Marking keeps the real records'
		// relative order but interleaves fillers where victims sat.
		ops = append(ops, Op{Kind: OpFilterMark})
		contiguous = false
	}

	if s.Distinct || s.GroupBy {
		if cur != OrderKeyPos || !contiguous {
			ops = append(ops, Op{Kind: OpSortKey})
			cur = OrderKeyPos
			contiguous = true
		}
		switch {
		case s.Distinct && s.GroupBy:
			// Rule 2: one sort, one combined pass.
			ops = append(ops, Op{Kind: OpDedupAggregate, Agg: s.Agg, WithFilter: pushFilter})
		case s.Distinct:
			ops = append(ops, Op{Kind: OpDedup, WithFilter: pushFilter})
		default:
			ops = append(ops, Op{Kind: OpAggregate, Agg: s.Agg, WithFilter: pushFilter})
		}
		// Victims became fillers in place: real records remain key-sorted.
		contiguous = false
	}

	if s.TopK > 0 {
		if cur != OrderValDesc || !contiguous {
			ops = append(ops, Op{Kind: OpSortValDesc})
			cur = OrderValDesc
			contiguous = true
		}
		ops = append(ops, Op{Kind: OpTopK, K: s.TopK})
		contiguous = false
	}

	// Output-order restoration (rule 1's deferred compaction): TopK's
	// public order is descending value, already established; every other
	// stage promises survivors in original order at the front — or, under
	// KeyOrderOut, in key order, which a shape ending in Distinct/GroupBy
	// already holds with no sort at all (Unload skips fillers, so
	// interleaved fillers cost nothing at the public boundary).
	output := cur
	if s.TopK == 0 && (s.Filter || s.Distinct || s.GroupBy) {
		switch {
		case s.KeyOrderOut && cur == OrderKeyPos:
			output = OrderKeyPos
		case s.KeyOrderOut:
			ops = append(ops, Op{Kind: OpSortKey})
			output = OrderKeyPos
		case cur != OrderPos || !contiguous:
			ops = append(ops, Op{Kind: OpCompactPos})
			output = OrderPos
		default:
			output = OrderPos
		}
	}

	p := Plan{Ops: ops, KeyCols: keyCols, StagedSortPasses: stagedSorts(s),
		Input: s.InputOrder, Output: output}
	for _, op := range ops {
		p.SortPasses += op.SortCost()
	}
	p.ColdSortPasses = p.SortPasses
	if s.InputOrder != OrderInput && s.InputOrder != OrderPos {
		cold := s
		cold.InputOrder = OrderInput
		p.ColdSortPasses = Build(cold).SortPasses
	}
	return p
}

// stagedSorts counts the sorting passes of the pre-planner execution: each
// stand-alone operator pays its own sorts (JoinAll 3, Filter 1, Distinct 2,
// GroupBy 2, TopK 1 — see internal/relops).
func stagedSorts(s Shape) int {
	n := 0
	if s.Join {
		n += joinSorts
	}
	if s.Filter {
		n++
	}
	if s.Distinct {
		n += 2
	}
	if s.GroupBy {
		n += 2
	}
	if s.TopK > 0 {
		n++
	}
	return n
}
