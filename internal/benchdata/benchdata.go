// Package benchdata defines the canonical relational benchmark workload
// shared by the in-repo benchmarks (bench_test.go) and the BENCH_2.json
// trend tool (cmd/relbench). Keeping one definition makes the CI artifact
// comparable with `go test -bench` numbers across commits — edit here, and
// both surfaces move together.
package benchdata

import (
	"oblivmc/internal/prng"
	"oblivmc/internal/relops"
)

// Query pipeline parameters of the end-to-end benchmark
// (Filter→Distinct→GroupBy(Sum)→TopK).
const (
	// FilterDiv drops every FilterDiv-th value: the benchmark filter keeps
	// rows with Val % FilterDiv != 0.
	FilterDiv = 4
	// TopK is the benchmark's top-k cutoff.
	TopK = 10
	// JoinLeftFraction: the join benchmark's primary relation has
	// n/JoinLeftFraction distinct keys.
	JoinLeftFraction = 8
)

// FilterPred is the benchmark query's filter predicate over a row value.
func FilterPred(val uint64) bool { return val%FilterDiv != 0 }

// Records generates the benchmark relation: n records, keys drawn from
// n/8 distinct values, values below 2^30, fixed seed 42.
func Records(n int) []relops.Record {
	src := prng.New(42)
	recs := make([]relops.Record, n)
	for i := range recs {
		recs[i] = relops.Record{Key: src.Uint64n(uint64(n / 8)), Val: src.Uint64n(1 << 30)}
	}
	return recs
}

// WideRecords generates the width-2 benchmark relation: n records whose
// two key columns are drawn from n/32 and 8 distinct values respectively
// (so GROUP BY (a, b) sees ~n/4 composite groups), values below 2^30,
// fixed seed 43. Column values span the full uint64 range scaled by a
// large odd multiplier to exercise wide-key comparisons beyond 2^40.
func WideRecords(n int) []relops.Record {
	src := prng.New(43)
	spread := uint64(n / 32)
	if spread == 0 {
		spread = 1
	}
	recs := make([]relops.Record, n)
	for i := range recs {
		recs[i] = relops.Record{
			Key:  src.Uint64n(spread) * 0x9e3779b97f4a7c15,
			Key2: src.Uint64n(8) * 0x517cc1b727220a95,
			Val:  src.Uint64n(1 << 30),
		}
	}
	return recs
}

// LeftRecords generates the join benchmark's primary relation for a
// foreign relation of n records: n/JoinLeftFraction distinct keys covering
// the low end of Records' key range.
func LeftRecords(n int) []relops.Record {
	nl := n / JoinLeftFraction
	recs := make([]relops.Record, nl)
	for i := range recs {
		recs[i] = relops.Record{Key: uint64(i), Val: uint64(i) * 3}
	}
	return recs
}

// GraphVertexFraction: the graph benchmarks run m-edge graphs over
// n = m/GraphVertexFraction vertices (min 2) — dense enough that the
// min-hook CC converges in a handful of rounds, sparse enough that the
// component structure is nontrivial.
const GraphVertexFraction = 16

// Edge is one weighted benchmark edge (a plain struct so the package stays
// importable from both the root benchmarks and the relbench tool without
// depending on the public API).
type Edge struct {
	U, V int
	W    uint64
}

// GraphEdges generates the canonical m-edge benchmark graph: vertices
// n = m/GraphVertexFraction, a Hamiltonian-path backbone over the first
// half of the vertices (so there is one giant component plus random
// attachments), the rest uniform random pairs, weights below 2^20, fixed
// seed 44. Shared by bench_test.go's graph benchmarks and relbench's
// graph_cc/graph_msf points.
func GraphEdges(m int) (n int, edges []Edge) {
	n = m / GraphVertexFraction
	if n < 2 {
		n = 2
	}
	src := prng.New(44)
	edges = make([]Edge, m)
	backbone := n / 2
	for i := range edges {
		if i < backbone-1 {
			edges[i] = Edge{U: i, V: i + 1}
		} else {
			edges[i] = Edge{U: int(src.Uint64n(uint64(n))), V: int(src.Uint64n(uint64(n)))}
		}
		edges[i].W = src.Uint64n(1 << 20)
	}
	return n, edges
}

// JoinAllRecords generates the many-to-many join benchmark workload for a
// foreign relation of n records (n must be a multiple of 16). The left
// relation has n/JoinLeftFraction rows over half as many distinct keys —
// every key appears exactly twice, so the expansion is genuinely
// many-to-many — and the right relation cycles through n/8 keys, of which
// the lower half match. The true match count is therefore exactly n, and
// the returned maxOut (= n) is the tight public capacity: the benchmark
// measures the operator at full occupancy with zero overflow slack.
func JoinAllRecords(n int) (left, right []relops.Record, maxOut int) {
	nl := n / JoinLeftFraction
	left = make([]relops.Record, nl)
	for i := range left {
		left[i] = relops.Record{Key: uint64(i / 2), Val: uint64(i) * 5}
	}
	right = make([]relops.Record, n)
	for i := range right {
		right[i] = relops.Record{Key: uint64(i % (n / 8)), Val: uint64(i) * 3}
	}
	return left, right, n
}
