package pram

import (
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

var srt = bitonic.CacheAgnostic{}

// randomList builds a random successor array for a single list over n
// nodes; returns (succ, referenceRanks).
func randomList(seed uint64, n int) ([]int, []int) {
	src := prng.New(seed)
	order := src.Perm(n) // order[k] = node at list position k
	succ := make([]int, n)
	ranks := make([]int, n)
	for k := 0; k < n; k++ {
		node := order[k]
		if k == n-1 {
			succ[node] = node // tail
		} else {
			succ[node] = order[k+1]
		}
		ranks[node] = n - 1 - k
	}
	return succ, ranks
}

func TestDirectPointerJump(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 100} {
		succ, want := randomList(uint64(n), n)
		m := &PointerJumpMachine{N: n, Succ: succ}
		sp := mem.NewSpace()
		final := RunDirect(forkjoin.Serial(), sp, m, m.InitialMemory())
		got := m.Ranks(final)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestObliviousPointerJumpMatchesDirect(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		succ, want := randomList(uint64(n)+3, n)
		m := &PointerJumpMachine{N: n, Succ: succ}
		sp := mem.NewSpace()
		final := RunOblivious(forkjoin.Serial(), sp, m, m.InitialMemory(), srt)
		got := m.Ranks(final)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: oblivious rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestMaxMachineBothSimulators(t *testing.T) {
	const n = 32
	src := prng.New(5)
	vals := make([]uint64, n)
	var want uint64
	for i := range vals {
		vals[i] = src.Uint64n(1 << 40)
		if vals[i] > want {
			want = vals[i]
		}
	}
	m := &MaxMachine{N: n, Values: vals}
	sp := mem.NewSpace()
	direct := RunDirect(forkjoin.Serial(), sp, m, m.InitialMemory())
	if direct[0] != want {
		t.Fatalf("direct max = %d, want %d", direct[0], want)
	}
	sp2 := mem.NewSpace()
	obliv := RunOblivious(forkjoin.Serial(), sp2, m, m.InitialMemory(), srt)
	if obliv[0] != want {
		t.Fatalf("oblivious max = %d, want %d", obliv[0], want)
	}
}

func TestAddConstMachine(t *testing.T) {
	const n = 10
	m := &AddConstMachine{N: n, K: 7}
	init := make([]uint64, n)
	for i := range init {
		init[i] = uint64(i * 10)
	}
	sp := mem.NewSpace()
	got := RunOblivious(forkjoin.Serial(), sp, m, init, srt)
	for i := range init {
		if got[i] != init[i]+7 {
			t.Fatalf("cell %d = %d, want %d", i, got[i], init[i]+7)
		}
	}
}

func TestPriorityConflictResolution(t *testing.T) {
	m := &ConflictMachine{P: 9, Base: 100}
	sp := mem.NewSpace()
	direct := RunDirect(forkjoin.Serial(), sp, m, make([]uint64, 4))
	if direct[0] != 100 {
		t.Fatalf("direct priority CRCW kept %d, want 100 (proc 0)", direct[0])
	}
	sp2 := mem.NewSpace()
	obl := RunOblivious(forkjoin.Serial(), sp2, m, make([]uint64, 4), srt)
	if obl[0] != 100 {
		t.Fatalf("oblivious priority CRCW kept %d, want 100 (proc 0)", obl[0])
	}
}

func TestObliviousSimulationTraceOblivious(t *testing.T) {
	// Two different list structures of the same size must induce identical
	// access patterns under the oblivious simulation — this is the heart
	// of Theorem 4.1.
	const n = 16
	run := func(seed uint64) *forkjoin.Metrics {
		succ, _ := randomList(seed, n)
		m := &PointerJumpMachine{N: n, Succ: succ}
		sp := mem.NewSpace()
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			RunOblivious(c, sp, m, m.InitialMemory(), srt)
		})
	}
	if !run(1).Trace.Equal(run(2).Trace) {
		t.Fatal("oblivious PRAM simulation leaks the list structure")
	}
}

func TestDirectSimulationLeaks(t *testing.T) {
	// Sanity inverse: the direct interpreter's pattern DOES depend on the
	// list structure (otherwise the oblivious test above proves nothing).
	const n = 16
	run := func(seed uint64) *forkjoin.Metrics {
		succ, _ := randomList(seed, n)
		m := &PointerJumpMachine{N: n, Succ: succ}
		sp := mem.NewSpace()
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			RunDirect(c, sp, m, m.InitialMemory())
		})
	}
	if run(1).Trace.Equal(run(2).Trace) {
		t.Fatal("direct interpreter unexpectedly oblivious (test is vacuous)")
	}
}

func TestGatherBasic(t *testing.T) {
	sp := mem.NewSpace()
	memory := mem.FromSlice(sp, []uint64{10, 20, 30, 40})
	addrs := mem.FromSlice(sp, []uint64{2, 0, 3, 99, 1})
	out := Gather(forkjoin.Serial(), sp, memory, addrs, srt)
	want := []struct {
		val uint64
		ok  bool
	}{{30, true}, {10, true}, {40, true}, {0, false}, {20, true}}
	for i, w := range want {
		e := out.Data()[i]
		if (e.Kind == obliv.Real) != w.ok {
			t.Fatalf("addr %d: ok=%v want %v", i, e.Kind == obliv.Real, w.ok)
		}
		if w.ok && e.Val != w.val {
			t.Fatalf("addr %d: val=%d want %d", i, e.Val, w.val)
		}
	}
}

func TestScatterResolveBasic(t *testing.T) {
	sp := mem.NewSpace()
	memory := mem.FromSlice(sp, []uint64{1, 2, 3, 4})
	reqs := mem.FromSlice(sp, []obliv.Elem{
		{Key: 1, Val: 100, Aux: 5, Kind: obliv.Real},
		{Key: 1, Val: 200, Aux: 2, Kind: obliv.Real}, // lower priority id wins
		{Key: 3, Val: 300, Aux: 9, Kind: obliv.Real},
		{Kind: obliv.Filler},
	})
	ScatterResolve(forkjoin.Serial(), sp, memory, reqs, srt)
	want := []uint64{1, 200, 3, 300}
	for i, w := range want {
		if memory.Data()[i] != w {
			t.Fatalf("memory = %v, want %v", memory.Data(), want)
		}
	}
}

func TestScatterResolveAllFillers(t *testing.T) {
	sp := mem.NewSpace()
	memory := mem.FromSlice(sp, []uint64{7, 8, 9})
	reqs := mem.Alloc[obliv.Elem](sp, 5) // all fillers
	ScatterResolve(forkjoin.Serial(), sp, memory, reqs, srt)
	for i, w := range []uint64{7, 8, 9} {
		if memory.Data()[i] != w {
			t.Fatalf("memory changed: %v", memory.Data())
		}
	}
}

func TestGatherScatterTraceOblivious(t *testing.T) {
	run := func(addrSeed uint64) *forkjoin.Metrics {
		sp := mem.NewSpace()
		src := prng.New(addrSeed)
		memory := mem.Alloc[uint64](sp, 32)
		addrs := mem.Alloc[uint64](sp, 8)
		for i := range addrs.Data() {
			addrs.Data()[i] = src.Uint64n(32)
		}
		reqs := mem.Alloc[obliv.Elem](sp, 8)
		for i := range reqs.Data() {
			reqs.Data()[i] = obliv.Elem{Key: src.Uint64n(32), Val: src.Uint64(), Aux: uint64(i), Kind: obliv.Real}
		}
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			out := Gather(c, sp, memory, addrs, srt)
			_ = out
			ScatterResolve(c, sp, memory, reqs, srt)
		})
	}
	if !run(1).Trace.Equal(run(2).Trace) {
		t.Fatal("gather/scatter access pattern depends on addresses")
	}
}

func TestObliviousStepCostScalesWithSpace(t *testing.T) {
	// Theorem 4.1: per-step work is O(Wsort(p+s)) — so doubling s should
	// roughly double per-step work (up to the log factor), not square it.
	work := func(n int) int64 {
		m := &AddConstMachine{N: n, K: 1}
		sp := mem.NewSpace()
		mm := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) {
			RunOblivious(c, sp, m, make([]uint64, n), srt)
		})
		return mm.Work
	}
	w1, w2 := work(1<<7), work(1<<8)
	r := float64(w2) / float64(w1)
	if r < 1.7 || r > 3.4 {
		t.Fatalf("per-step work doubling ratio %.2f outside [1.7, 3.4]", r)
	}
}

func TestParallelObliviousMatchesSerial(t *testing.T) {
	const n = 32
	succ, _ := randomList(77, n)
	m := &PointerJumpMachine{N: n, Succ: succ}
	sp1 := mem.NewSpace()
	serial := RunOblivious(forkjoin.Serial(), sp1, m, m.InitialMemory(), srt)
	var par []uint64
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		sp2 := mem.NewSpace()
		par = RunOblivious(c, sp2, m, m.InitialMemory(), srt)
	})
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("parallel mismatch at %d", i)
		}
	}
}
