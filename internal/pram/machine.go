// Package pram implements the CRCW PRAM model and the paper's oblivious,
// binary fork-join simulation of space-bounded PRAMs (§4.1, Theorem 4.1).
//
// A Machine describes a priority-CRCW PRAM program in a two-phase step
// form: at each step every processor may issue one read; after the read
// resolves it performs local computation and may issue one write. Write
// conflicts resolve by lowest processor id (priority CRCW).
//
// RunDirect executes the machine on instrumented memory with the naive
// binary-fork parallelization (the insecure baseline of Table 2's PRAM
// row). RunOblivious executes it with the paper's simulation: reads become
// one oblivious send-receive against the memory array, writes go through
// oblivious conflict resolution (O(1) oblivious sorts) and a second
// send-receive — so each PRAM step costs O(Wsort(p+s)) work,
// O(Qsort(p+s)) cache misses and O(Tsort(p+s)) span.
//
// Processor-local state lives in registers inside the secure cores — the
// adversary of §B observes memory addresses, not registers — so local
// state is held in plain slices and charged via Ctx.Op.
package pram

import (
	"sort"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// Machine is a priority-CRCW PRAM program.
type Machine interface {
	// Procs returns the number of processors p.
	Procs() int
	// Space returns the shared-memory size s (words).
	Space() int
	// Steps returns the number of synchronous steps to execute.
	Steps() int
	// LocalWords returns the size of each processor's register file.
	LocalWords() int
	// Init fills processor proc's registers before step 0.
	Init(proc int, local []uint64)
	// ReadAddr returns the address processor proc reads at step t, or -1
	// for no read.
	ReadAddr(t, proc int, local []uint64) int
	// Compute runs proc's local computation for step t, given the value
	// read this step (ok=false if no read was issued or the address was
	// out of range). It returns a write request, or addr=-1 for none.
	Compute(t, proc int, local []uint64, read uint64, ok bool) (addr int, val uint64)
}

// RunDirect executes m against memInit with direct (insecure) memory
// accesses, forking the p processors as a binary tree each step. It
// returns the final memory. This is the Table 2 baseline: per step O(p)
// work and O(log p) span, with a data-dependent access pattern.
func RunDirect(c *forkjoin.Ctx, sp *mem.Space, m Machine, memInit []uint64) []uint64 {
	p, s := m.Procs(), m.Space()
	memory := mem.Alloc[uint64](sp, s)
	for i, v := range memInit {
		memory.Data()[i] = v
	}
	locals := makeLocals(m)

	type wreq struct {
		addr int
		val  uint64
		proc int
	}
	writes := make([]wreq, p)
	for t := 0; t < m.Steps(); t++ {
		forkjoin.ParallelFor(c, 0, p, 1, func(c *forkjoin.Ctx, i int) {
			addr := m.ReadAddr(t, i, locals[i])
			c.Op(int64(m.LocalWords()))
			var v uint64
			ok := false
			if addr >= 0 && addr < s {
				v = memory.Get(c, addr)
				ok = true
			}
			wa, wv := m.Compute(t, i, locals[i], v, ok)
			c.Op(int64(m.LocalWords()))
			writes[i] = wreq{addr: wa, val: wv, proc: i}
		})
		// Priority-CRCW conflict resolution: the hardware semantics, not
		// an algorithmic cost — lowest proc id wins per address.
		winners := writes[:0:0]
		winners = append(winners, writes...)
		sort.Slice(winners, func(a, b int) bool {
			if winners[a].addr != winners[b].addr {
				return winners[a].addr < winners[b].addr
			}
			return winners[a].proc < winners[b].proc
		})
		forkjoin.ParallelFor(c, 0, len(winners), 1, func(c *forkjoin.Ctx, k int) {
			w := winners[k]
			if w.addr < 0 || w.addr >= s {
				return
			}
			if k > 0 && winners[k-1].addr == w.addr {
				return // lost the priority race
			}
			memory.Set(c, w.addr, w.val)
		})
	}
	out := make([]uint64, s)
	copy(out, memory.Data())
	return out
}

func makeLocals(m Machine) [][]uint64 {
	locals := make([][]uint64, m.Procs())
	for i := range locals {
		locals[i] = make([]uint64, m.LocalWords())
		m.Init(i, locals[i])
	}
	return locals
}
