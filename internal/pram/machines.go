package pram

// This file provides concrete CRCW machines used by the tests, the
// examples, and the Table 2 "PRAM step" benchmarks.

// PointerJumpMachine performs Wyllie-style pointer jumping for list
// ranking: memory holds [succ_0, rank_0, succ_1, rank_1, ...]; after
// ceil(log2 n) rounds, rank_i is the distance from i to the list tail.
// Each round takes four PRAM steps (two reads, two writes), keeping to one
// memory operation per processor per step.
type PointerJumpMachine struct {
	N    int
	Succ []int // initial successor array; Succ[i] == i marks the tail
}

// Local register layout.
const (
	pjSucc = iota // current successor
	pjRank        // accumulated rank
	pjTmpRank
	pjTmpSucc
	pjWords
)

// Procs implements Machine.
func (m *PointerJumpMachine) Procs() int { return m.N }

// Space implements Machine.
func (m *PointerJumpMachine) Space() int { return 2 * m.N }

// Steps implements Machine: four steps per jumping round.
func (m *PointerJumpMachine) Steps() int { return 4 * log2ceil(m.N) }

// LocalWords implements Machine.
func (m *PointerJumpMachine) LocalWords() int { return pjWords }

// Init implements Machine.
func (m *PointerJumpMachine) Init(proc int, local []uint64) {
	local[pjSucc] = uint64(m.Succ[proc])
	if m.Succ[proc] == proc {
		local[pjRank] = 0
	} else {
		local[pjRank] = 1
	}
}

// InitialMemory returns the memory image matching Init.
func (m *PointerJumpMachine) InitialMemory() []uint64 {
	mm := make([]uint64, 2*m.N)
	for i := 0; i < m.N; i++ {
		mm[2*i] = uint64(m.Succ[i])
		if m.Succ[i] != i {
			mm[2*i+1] = 1
		}
	}
	return mm
}

// ReadAddr implements Machine.
func (m *PointerJumpMachine) ReadAddr(t, proc int, local []uint64) int {
	succ := int(local[pjSucc])
	switch t % 4 {
	case 0:
		return 2*succ + 1 // rank of successor
	case 1:
		return 2 * succ // successor of successor
	}
	return -1
}

// Compute implements Machine.
func (m *PointerJumpMachine) Compute(t, proc int, local []uint64, read uint64, ok bool) (int, uint64) {
	self := uint64(proc)
	switch t % 4 {
	case 0:
		local[pjTmpRank] = read
		return -1, 0
	case 1:
		local[pjTmpSucc] = read
		return -1, 0
	case 2:
		if local[pjSucc] != self {
			local[pjRank] += local[pjTmpRank]
		}
		return 2*proc + 1, local[pjRank]
	default:
		if local[pjSucc] != self {
			local[pjSucc] = local[pjTmpSucc]
		}
		return 2 * proc, local[pjSucc]
	}
}

// Ranks extracts the rank array from a final memory image.
func (m *PointerJumpMachine) Ranks(memory []uint64) []int {
	out := make([]int, m.N)
	for i := range out {
		out[i] = int(memory[2*i+1])
	}
	return out
}

// MaxMachine computes the maximum of N values by a binary tournament:
// round t halves the live prefix; proc i < live/2 reads cell i+live/2 and
// writes max(own, read) to cell i. After log2(N) rounds cell 0 holds the
// maximum. N must be a power of two.
type MaxMachine struct {
	N      int
	Values []uint64
}

// Procs implements Machine.
func (m *MaxMachine) Procs() int { return m.N }

// Space implements Machine.
func (m *MaxMachine) Space() int { return m.N }

// Steps implements Machine: one warm-up read plus the tournament rounds.
func (m *MaxMachine) Steps() int { return 1 + log2ceil(m.N) }

// LocalWords implements Machine.
func (m *MaxMachine) LocalWords() int { return 1 }

// Init implements Machine.
func (m *MaxMachine) Init(proc int, local []uint64) { local[0] = 0 }

// InitialMemory returns the memory image.
func (m *MaxMachine) InitialMemory() []uint64 {
	mm := make([]uint64, m.N)
	copy(mm, m.Values)
	return mm
}

// ReadAddr implements Machine.
func (m *MaxMachine) ReadAddr(t, proc int, local []uint64) int {
	if t == 0 {
		return proc // cache own value
	}
	live := m.N >> uint(t-1)
	if proc < live/2 {
		return proc + live/2
	}
	return -1
}

// Compute implements Machine.
func (m *MaxMachine) Compute(t, proc int, local []uint64, read uint64, ok bool) (int, uint64) {
	if t == 0 {
		local[0] = read
		return -1, 0
	}
	live := m.N >> uint(t-1)
	if proc < live/2 && ok {
		if read > local[0] {
			local[0] = read
		}
		return proc, local[0]
	}
	return -1, 0
}

// AddConstMachine adds K to every memory cell in a single step — the
// smallest possible machine, used to sanity-check the simulators.
type AddConstMachine struct {
	N int
	K uint64
}

// Procs implements Machine.
func (m *AddConstMachine) Procs() int { return m.N }

// Space implements Machine.
func (m *AddConstMachine) Space() int { return m.N }

// Steps implements Machine.
func (m *AddConstMachine) Steps() int { return 1 }

// LocalWords implements Machine.
func (m *AddConstMachine) LocalWords() int { return 1 }

// Init implements Machine.
func (m *AddConstMachine) Init(proc int, local []uint64) {}

// ReadAddr implements Machine.
func (m *AddConstMachine) ReadAddr(t, proc int, local []uint64) int { return proc }

// Compute implements Machine.
func (m *AddConstMachine) Compute(t, proc int, local []uint64, read uint64, ok bool) (int, uint64) {
	return proc, read + m.K
}

// ConflictMachine has every processor write its id+Base to cell 0 in one
// step; priority CRCW must keep processor 0's value. Used to verify
// conflict resolution.
type ConflictMachine struct {
	P    int
	Base uint64
}

// Procs implements Machine.
func (m *ConflictMachine) Procs() int { return m.P }

// Space implements Machine.
func (m *ConflictMachine) Space() int { return 4 }

// Steps implements Machine.
func (m *ConflictMachine) Steps() int { return 1 }

// LocalWords implements Machine.
func (m *ConflictMachine) LocalWords() int { return 1 }

// Init implements Machine.
func (m *ConflictMachine) Init(proc int, local []uint64) {}

// ReadAddr implements Machine.
func (m *ConflictMachine) ReadAddr(t, proc int, local []uint64) int { return -1 }

// Compute implements Machine.
func (m *ConflictMachine) Compute(t, proc int, local []uint64, read uint64, ok bool) (int, uint64) {
	return 0, m.Base + uint64(proc)
}

func log2ceil(n int) int {
	l := 0
	for (1 << l) < n {
		l++
	}
	return l
}
