package pram

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// Address/priority field widths for the composite conflict-resolution key:
// addr < 2^40 and priority < 2^21 keep (addr << 21 | prio) below
// obliv.MaxKey.
const (
	prioBits = 21
	maxAddr  = 1 << 40
	maxPrio  = 1 << prioBits
)

// MaxPrio is the exclusive priority bound of ScatterResolve's composite
// conflict-resolution key, exported for callers that pack data-derived
// priorities (the graph layer's min-label hooks use vertex labels as
// priorities and must bound n below it).
const MaxPrio = maxPrio

// Gather obliviously reads memory at the p requested addresses: the result
// parallels addrs, entry i holding Val = memory[addrs[i]] with Kind = Real,
// or Kind = Filler if the address is out of range. One send-receive with
// the memory cells as senders (§4.1 read step); cost O(Wsort(p+s)).
func Gather(c *forkjoin.Ctx, sp *mem.Space, memory *mem.Array[uint64], addrs *mem.Array[uint64], srt obliv.ScheduledSorter) *mem.Array[obliv.Elem] {
	s, p := memory.Len(), addrs.Len()
	sources := mem.Alloc[obliv.Elem](sp, s)
	forkjoin.ParallelRange(c, 0, s, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			sources.Set(c, i, obliv.Elem{Key: uint64(i), Val: memory.Get(c, i), Kind: obliv.Real})
		}
	})
	dests := mem.Alloc[obliv.Elem](sp, p)
	forkjoin.ParallelRange(c, 0, p, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			a := addrs.Get(c, i)
			key := a
			if a >= uint64(s) {
				// Distinct not-found keys (beyond every memory cell key).
				key = uint64(s) + uint64(i)
			}
			dests.Set(c, i, obliv.Elem{Key: key, Kind: obliv.Real})
		}
	})
	return obliv.SendReceive(c, sp, sources, dests, srt)
}

// ScatterResolve obliviously applies a batch of priority-CRCW writes to
// memory: each request Elem carries Key = address, Val = value, Aux =
// priority (lower wins), with Kind = Filler for no-ops. Duplicate
// addresses are suppressed by O(1) oblivious sorts + propagation (§4.1
// write step), then a send-receive updates every memory cell (cells whose
// address receives no write keep their value; every cell is rewritten so
// the pattern is fixed). Cost O(Wsort(p+s)).
func ScatterResolve(c *forkjoin.Ctx, sp *mem.Space, memory *mem.Array[uint64], reqs *mem.Array[obliv.Elem], srt obliv.ScheduledSorter) {
	scatterResolve(c, sp, memory, reqs, srt, false)
}

// ScatterResolveMin is ScatterResolve with combining update semantics:
// each addressed cell keeps min(current value, winning request's value)
// instead of being overwritten. The access pattern is identical to
// ScatterResolve's — the combine happens inside the fixed cell-rewrite
// pass. The graph layer's label-hooking steps use it so labels only ever
// decrease regardless of write ordering.
func ScatterResolveMin(c *forkjoin.Ctx, sp *mem.Space, memory *mem.Array[uint64], reqs *mem.Array[obliv.Elem], srt obliv.ScheduledSorter) {
	scatterResolve(c, sp, memory, reqs, srt, true)
}

func scatterResolve(c *forkjoin.Ctx, sp *mem.Space, memory *mem.Array[uint64], reqs *mem.Array[obliv.Elem], srt obliv.ScheduledSorter, combineMin bool) {
	s, p := memory.Len(), reqs.Len()
	if s >= maxAddr || p >= maxPrio {
		panic("pram: address or priority out of composite-key range")
	}
	// Copy requests into a pow2 working array and sort by (addr, prio).
	w := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(p))
	forkjoin.ParallelRange(c, 0, p, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := reqs.Get(c, i)
			e.Mark = 0
			w.Set(c, i, e)
		}
	})
	key1 := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real {
			return obliv.InfKey
		}
		return e.Key<<prioBits | (e.Aux & (maxPrio - 1))
	}
	obliv.SortKeyed(c, sp, w, w.Len(), key1, srt)

	// The first request of each address group wins; all others become
	// fillers. Propagate the winner's priority and compare.
	groupOf := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real {
			return obliv.InfKey
		}
		return e.Key
	}
	obliv.PropagateFirst(c, sp, w, groupOf,
		func(e obliv.Elem, i int) (uint64, bool) { return e.Aux, e.Kind == obliv.Real },
		func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem {
			if e.Kind == obliv.Real && (!ok || e.Aux != v) {
				e.Kind = obliv.Filler
			}
			return e
		})

	// Route winner values to the memory cells; every cell is rewritten.
	dests := mem.Alloc[obliv.Elem](sp, s)
	forkjoin.ParallelRange(c, 0, s, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			dests.Set(c, i, obliv.Elem{Key: uint64(i), Kind: obliv.Real})
		}
	})
	routed := obliv.SendReceive(c, sp, w.View(0, p), dests, srt)
	forkjoin.ParallelRange(c, 0, s, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := routed.Get(c, i)
			old := memory.Get(c, i)
			v := old
			c.Op(1)
			if r.Kind == obliv.Real && (!combineMin || r.Val < old) {
				v = r.Val
			}
			memory.Set(c, i, v)
		}
	})
}

// RunOblivious executes m under the oblivious simulation of Theorem 4.1
// and returns the final memory. With a fixed machine shape (p, s, steps),
// the access pattern is independent of memInit and of every value read —
// the property asserted by the package tests.
func RunOblivious(c *forkjoin.Ctx, sp *mem.Space, m Machine, memInit []uint64, srt obliv.ScheduledSorter) []uint64 {
	p, s := m.Procs(), m.Space()
	memory := mem.Alloc[uint64](sp, s)
	for i, v := range memInit {
		memory.Data()[i] = v
	}
	locals := makeLocals(m)

	addrs := mem.Alloc[uint64](sp, p)
	reqs := mem.Alloc[obliv.Elem](sp, p)
	for t := 0; t < m.Steps(); t++ {
		// Read phase: collect addresses (no-read procs request an
		// out-of-range address and receive ⊥).
		forkjoin.ParallelFor(c, 0, p, 1, func(c *forkjoin.Ctx, i int) {
			a := m.ReadAddr(t, i, locals[i])
			c.Op(int64(m.LocalWords()))
			if a < 0 || a >= s {
				a = s + i
			}
			addrs.Set(c, i, uint64(a))
		})
		fetched := Gather(c, sp, memory, addrs, srt)

		// Local computation phase.
		forkjoin.ParallelFor(c, 0, p, 1, func(c *forkjoin.Ctx, i int) {
			f := fetched.Get(c, i)
			wa, wv := m.Compute(t, i, locals[i], f.Val, f.Kind == obliv.Real)
			c.Op(int64(m.LocalWords()))
			e := obliv.Elem{Aux: uint64(i)}
			if wa >= 0 && wa < s {
				e.Key = uint64(wa)
				e.Val = wv
				e.Kind = obliv.Real
			}
			reqs.Set(c, i, e)
		})

		// Write phase with oblivious conflict resolution.
		ScatterResolve(c, sp, memory, reqs, srt)
	}
	out := make([]uint64, s)
	copy(out, memory.Data())
	return out
}
