// Shuffle-then-sort backend for schedule-driven sorts (Theorem 3.2 / §C.4
// generalized for the relational engine): obliviously apply a uniformly
// random secret permutation to the element array together with every plane
// of its key schedule, then run an insecure comparison sample sort on the
// permuted sequence. Because the permutation is uniform and hidden, the
// order type of the permuted sequence — and hence the access-pattern
// distribution of the insecure sort — is independent of the input contents,
// provided the sort's effective keys are distinct ([CGLS18, ACN+20]); the
// keyed sample sort guarantees distinctness by breaking full ties with the
// elements' (Kind, Tag, Aux) triple and a fresh random tie word.
//
// The security of the composition rests on the permutation being SECRET:
// an adversary who knows it can invert the insecure sort's trace back to
// the input key order. A ShuffleSorter therefore draws every sort's
// permutation by default from a ChaCha8 stream keyed with 256 fresh bits
// of crypto/rand — a cryptographically strong generator, so the
// permutation is computationally indistinguishable from uniform and
// cannot be recovered from the trace. The deterministic seeding the
// fingerprint test harness and the benchmarks need is an explicit opt-in
// (FixedSeed) that forfeits the guarantee unless the seed value itself is
// secret, uniformly random, and fresh per run — and even then bounds the
// coin space at 64 bits through a non-cryptographic expander, so it is
// for tests and benchmarks only.
//
// The permutation stage is realized as a Beneš routing network rather than
// the REC-ORBA bin cascade: the network's topology — which addresses each
// of its 2·log₂(n)−1 layers reads and writes — is a fixed function of n
// alone, while the permutation itself is encoded in the switch settings,
// which live outside the instrumented memory and are computed from the
// per-sort PRNG exactly like a random tape (they are a function of the
// coins, never of the data, so the adversary's view of the permutation
// stage is simulatable from n). This trades REC-ORBA's O(n·log n·log log n) bin
// passes — whose practical constants exceed a full bitonic sort at
// realistic n — for O(n·log n) element moves with constant ~2 per layer,
// which is what lets the composition overtake the keyed bitonic networks
// on large relations. Every switch moves the element and all schedule
// words together, the same lockstep contract the keyed bitonic merge
// keeps through its transposes.
package core

import (
	crand "crypto/rand"
	"fmt"
	mrand "math/rand/v2"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
	"oblivmc/internal/spms"
)

// DefaultShuffleCrossover is the public size threshold of the Auto backend
// policy: schedule-driven sorts of at least this many slots run the
// shuffle-then-sort composition, smaller ones the keyed bitonic network
// (whose lower fixed costs win on small arrays). The crossover is a
// function of the array length alone — public query shape, like the length
// itself — so backend selection never depends on the data. The default was
// measured on the relational benchmarks (cmd/relbench): the backends break
// even between 2^12 and 2^13 and the shuffle composition pulls ahead ~1.5×
// at 2^14, ~1.8× at 2^20.
const DefaultShuffleCrossover = 1 << 13

// ShuffleSorter is the obliv.ScheduledSorter implementing the Theorem 3.2
// composition: oblivious random permutation (Beneš network, element array
// and key-schedule planes in lockstep), then an insecure keyed sample sort
// (internal/spms) ordering by (cached key words, TiePos triple, random tie
// word). Arrays below Crossover — and arrays whose length is not a power
// of two, which never arise from the relational layer's padded relations —
// are delegated to Fallback.
//
// By default every sort draws its permutation and tie coins from a fresh
// crypto/rand-keyed ChaCha8 stream, so the insecure stage's trace — which
// depends on the order type of the permuted keys — is input-independent
// in distribution (the Theorem 3.2 guarantee, computationally) with no
// requirement on any caller-supplied value, at the cost of traces that
// differ between runs. FixedSeed opts into deterministic coins: the
// permutations derive from (seed, per-sorter call counter), so a pipeline
// of sorts at a fixed seed replays the identical trace across runs of the
// same shape — what the oblivtest fingerprint harness and the benchmarks
// need. Fixing the seed narrows the guarantee: the trace becomes a
// deterministic function of (shape, key order), hidden only if the seed
// value is secret, uniformly random, and fresh for each dataset. Never fix
// the seed outside tests and benchmarks; the bitonic backend remains the
// choice where per-seed trace determinism is required in production.
//
// A ShuffleSorter is stateful (the call counter and the cached tie
// scratch) and must be created per logical run; its sorts must be issued
// sequentially, as the relational orchestration path does. The zero value
// gives the Auto defaults with crypto/rand coins.
type ShuffleSorter struct {
	// FixedSeed, when non-nil, derives every sort's permutation and tie
	// words deterministically from the pointed-to seed plus a per-sorter
	// call counter (reproducible traces for tests and benchmarks — see the
	// type comment for the secrecy requirements this transfers onto the
	// seed). nil — the default — keys a fresh ChaCha8 stream from
	// crypto/rand per sort.
	FixedSeed *uint64
	// Crossover is the minimum array length sorted by the shuffle
	// composition (0 = DefaultShuffleCrossover; 2 forces the shuffle path
	// at every power-of-two length).
	Crossover int
	// Fallback sorts arrays below Crossover (nil = bitonic.CacheAgnostic).
	Fallback obliv.ScheduledSorter

	// calls counts the sorts of a FixedSeed pipeline (each draws the next
	// deterministic tape). Plain state, like the scratch cache below: a
	// ShuffleSorter's sorts are issued sequentially per the type contract.
	calls uint64
	// Tie-plane scratch cached across the sorts of a run (arena-style:
	// grow-only, dropped when the requesting space changes), plus the
	// harness-memory staging buffer its words are drawn into. The reuse is
	// trace-safe — the allocation sequence is a function of the sort-size
	// sequence, itself public shape — and keeps a multi-sort pipeline's
	// footprint flat instead of ~3n fresh words per sort.
	sp       *mem.Space
	tiePlane *mem.Array[uint64]
	tieScr   *mem.Array[uint64]
	tieWords []uint64
	// Beneš routing state cached across the sorts of a run: one routed-plan
	// buffer per array size — the (2·log₂ n − 1) × n/2 switch-setting
	// planes, rewritten in place by each sort's routing — plus the grow-only
	// two-coloring scratch and the permutation buffer. All plain harness
	// memory (settings are simulatable, like tape generation), so the reuse
	// is trace-free; it keeps a server pipeline of same-shape sorts from
	// rebuilding ~n·log n bytes of planes per call.
	plans   map[int]*benesPlan
	route   routeScratch
	permBuf []int
}

// Name implements obliv.Sorter.
func (s *ShuffleSorter) Name() string { return "shuffle-samplesort" }

func (s *ShuffleSorter) crossover() int {
	if s.Crossover <= 0 {
		return DefaultShuffleCrossover
	}
	if s.Crossover < 2 {
		return 2
	}
	return s.Crossover
}

func (s *ShuffleSorter) fallback() obliv.ScheduledSorter {
	if s.Fallback != nil {
		return s.Fallback
	}
	return bitonic.CacheAgnostic{}
}

// sortCoins is one sort's randomness: Intn draws the ORP permutation's
// Fisher–Yates indices, Uint64 the tie words and pivot seed.
type sortCoins interface {
	Intn(n int) int
	Uint64() uint64
}

// cryptoCoins adapts math/rand/v2's ChaCha8-backed Rand to sortCoins.
type cryptoCoins struct{ *mrand.Rand }

func (c cryptoCoins) Intn(n int) int { return c.IntN(n) }

// coins returns one sort's coin source: a ChaCha8 stream keyed with 256
// fresh bits from crypto/rand — a cryptographically strong generator, so
// the permutation is computationally indistinguishable from uniform and
// stays hidden from a trace observer — or, under FixedSeed, the
// reproducible xoshiro tape derived from (seed, call index).
func (s *ShuffleSorter) coins() sortCoins {
	if s.FixedSeed == nil {
		var key [32]byte
		if _, err := crand.Read(key[:]); err != nil {
			panic("core: crypto/rand unavailable for the shuffle backend: " + err.Error())
		}
		return cryptoCoins{mrand.New(mrand.NewChaCha8(key))}
	}
	s.calls++
	return prng.New(prng.Mix64(*s.FixedSeed + s.calls*0x632be59bd9b4e019))
}

// perm draws a uniform permutation of [0, n) into the sorter's cached
// buffer. The Fisher–Yates draw sequence is identical to prng.Source.Perm,
// so FixedSeed pipelines replay the same permutations (and the same
// downstream tie-word stream) as before the buffer reuse.
func (s *ShuffleSorter) perm(src sortCoins, n int) []int {
	if cap(s.permBuf) < n {
		s.permBuf = make([]int, n)
	}
	p := s.permBuf[:n]
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// benesPlanFor returns the sorter's cached routed-plan buffer for size n,
// allocating its layer planes on first use of that size.
func (s *ShuffleSorter) benesPlanFor(n int) *benesPlan {
	if pl := s.plans[n]; pl != nil {
		return pl
	}
	if s.plans == nil {
		s.plans = make(map[int]*benesPlan, 4)
	}
	pl := newBenesPlan(n)
	s.plans[n] = pl
	return pl
}

// tieScratch returns the sort's tie plane and tie-plane sorting scratch of
// length n, reusing the cached arrays when the space matches and they are
// large enough.
func (s *ShuffleSorter) tieScratch(sp *mem.Space, n int) (tie, tscr *mem.Array[uint64]) {
	if s.sp != sp {
		s.sp, s.tiePlane, s.tieScr = sp, nil, nil
	}
	if s.tiePlane == nil || s.tiePlane.Len() < n {
		s.tiePlane = mem.Alloc[uint64](sp, n)
		s.tieScr = mem.Alloc[uint64](sp, n)
	}
	return s.tiePlane.View(0, n), s.tieScr.View(0, n)
}

// Sort implements obliv.Sorter by materializing the closure's keys into a
// width-1 schedule and sorting through SortScheduled.
func (s *ShuffleSorter) Sort(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], lo, n int, key func(obliv.Elem) uint64) {
	if n <= 1 {
		return
	}
	if n < s.crossover() || !obliv.IsPow2(n) {
		s.fallback().Sort(c, sp, a, lo, n, key)
		return
	}
	// Work on the [lo, lo+n) view so the freshly built schedule and the
	// sorted range stay index-aligned at any lo.
	av := a.View(lo, n)
	ks := obliv.AllocKeySchedule(sp, n, 1)
	ks.Tie = obliv.TiePos
	obliv.BuildKeySchedule(c, av, ks, 0, n, func(e obliv.Elem, out []uint64) { out[0] = key(e) })
	s.SortScheduled(c, sp, av, ks, nil, nil, 0, n)
}

// SortScheduled implements obliv.ScheduledSorter: Beneš-permute a[lo:lo+n)
// and ks[lo:lo+n) in lockstep with a fresh uniform permutation, then sample
// sort the permuted sequence by its cached keys. scr/kscr serve as the
// network's double buffer and the sample sort's scratch (nil = allocated
// from sp).
func (s *ShuffleSorter) SortScheduled(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, scr *mem.Array[obliv.Elem], kscr *obliv.KeySchedule, lo, n int) {
	if n <= 1 {
		return
	}
	w := ks.Width()
	// Both branches need the element/key scratch: the shuffle path as its
	// network double-buffer, the fallback per the ScheduledSorter
	// caller-scratch contract.
	if scr == nil {
		scr = mem.Alloc[obliv.Elem](sp, n)
	}
	if kscr == nil {
		kscr = obliv.AllocKeySchedule(sp, n, w)
		kscr.Tie = ks.Tie // cache-agnostic merges swap the schedule roles
	}
	if n < s.crossover() || !obliv.IsPow2(n) {
		s.fallback().SortScheduled(c, sp, a, ks, scr, kscr, lo, n)
		return
	}
	av, ksv := a.View(lo, n), ks.View(lo, n)
	scrv, kscrv := scr.View(0, n), kscr.View(0, n)

	// Per-sort coins: a fresh permutation and tie tape for every sort of a
	// pipeline — never a function of the data (see coins for the
	// secret-vs-deterministic derivation).
	src := s.coins()

	// Stage 1 — ORP: settings are computed in harness memory from the PRNG
	// (simulatable, like tape generation); the instrumented application
	// touches a fixed address sequence, a function of (n, w) only. The plan
	// buffer and routing scratch are the sorter's cached ones — repeated
	// same-size sorts reroute in place, allocation-free.
	pl := s.benesPlanFor(n)
	routeBenesInto(c, pl, s.perm(src, n), &s.route)
	pl.apply(c, av, scrv, ksv, kscrv)

	// Stage 2 — insecure keyed sample sort on the permuted sequence. The
	// tie plane holds fresh words of the same coin stream as the
	// permutation (staged through the cached harness buffer — the stream
	// is sequential, the instrumented fill parallel), making every
	// comparison strict (the distinct-keys precondition of the security
	// argument; it also fixes the order of otherwise-identical fillers to
	// the coins).
	tie, tscr := s.tieScratch(sp, n)
	if len(s.tieWords) < n {
		s.tieWords = make([]uint64, n)
	}
	words := s.tieWords[:n]
	for i := range words {
		words[i] = src.Uint64()
	}
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, from, to int) {
		for i := from; i < to; i++ {
			tie.Set(c, i, words[i])
		}
	})
	spms.SampleSortScheduled(c, sp, av, ksv, tie, scrv, kscrv, tscr, 0, n, src.Uint64())
}

// benesPlan is a routed Beneš network over n = 2^k positions: 2k−1 layers
// of n/2 switch settings. Layer ℓ < k−1 is the split layer at block size
// n>>ℓ (reading pairs (2j, 2j+1), writing halves (j, m/2+j)); layer k−1 is
// the middle layer of adjacent conditional swaps; layer 2k−2−ℓ is the
// merge layer mirroring split layer ℓ. The addresses every layer touches
// are a function of n alone; the settings encode the permutation.
type benesPlan struct {
	n      int
	layers [][]bool
}

// routeScratch is the grow-only harness-memory scratch of the routing
// loop: the level-synchronous permutation double buffer and the
// two-coloring state, reused across the sorts of a pipeline.
type routeScratch struct {
	cur, nxt, pinv []int
	color          []int8
}

func (rs *routeScratch) grow(n int) {
	if cap(rs.cur) < n {
		rs.cur, rs.nxt, rs.pinv = make([]int, n), make([]int, n), make([]int, n)
		rs.color = make([]int8, n)
	}
}

// newBenesPlan allocates an unrouted plan buffer for n = 2^k positions.
func newBenesPlan(n int) *benesPlan {
	if !obliv.IsPow2(n) || n < 2 {
		panic(fmt.Sprintf("core: Beneš network needs a power-of-two size >= 2, got %d", n))
	}
	k := obliv.Log2(n)
	pl := &benesPlan{n: n, layers: make([][]bool, 2*k-1)}
	for i := range pl.layers {
		pl.layers[i] = make([]bool, n/2)
	}
	return pl
}

// routeBenes computes switch settings realizing new[i] = old[p[i]] via the
// classic two-coloring loop algorithm, level-synchronously with O(n) reused
// buffers per level (O(n log n) total time, plain harness memory). It
// allocates a fresh plan; the sorter's pipeline path reroutes its cached
// buffers through routeBenesInto instead.
func routeBenes(p []int) *benesPlan {
	pl := newBenesPlan(len(p))
	routeBenesInto(forkjoin.Serial(), pl, p, &routeScratch{})
	return pl
}

// routeGrain is the minimum number of permutation entries one routing task
// covers when the switch-setting computation forks across a level's blocks:
// a block's coloring is O(m) pointer-chasing over harness memory, so leaves
// much smaller than this are dominated by task bookkeeping.
const routeGrain = 1 << 12

// routeBenesInto routes p into pl's switch planes in place, drawing all
// working memory from rs. Allocation-free once pl and rs have seen the
// size; p is left untouched.
//
// Within a level the blocks are independent — each reads and writes only
// its own [off, off+m) slice of every buffer — so in parallel mode the
// per-block cycle coloring forks across the pool (each block colors over
// its own disjoint pinv/color slice; no shared state). The computed switch
// settings are identical to the serial route at every level: blocks are
// deterministic functions of their slice of cur, and the level barrier
// (ParallelRange joins before the buffer swap) preserves the level-
// synchronous order. Serial and metered contexts take the plain loop, so
// metered traces — which would otherwise record the extra forks — and
// FixedSeed fingerprints are byte-identical to the pre-parallel routing.
func routeBenesInto(c *forkjoin.Ctx, pl *benesPlan, p []int, rs *routeScratch) {
	n := pl.n
	if len(p) != n {
		panic("core: Beneš routing permutation length mismatch")
	}
	k := obliv.Log2(n)
	rs.grow(n)
	cur, nxt := rs.cur[:n], rs.nxt[:n]
	pinv, color := rs.pinv[:n], rs.color[:n]
	par := c.ParallelMode()
	copy(cur, p)
	for l := 0; l < k-1; l++ {
		// Routing happens in harness memory and its level count is a
		// function of n alone, so a cancellation here reveals only the
		// public level index.
		c.Check("benes.route")
		m := n >> l
		blocks := n / m
		if par && n >= 2*routeGrain {
			grain := routeGrain / m
			if grain < 1 {
				grain = 1
			}
			sIn, sOut := pl.layers[l], pl.layers[2*k-2-l]
			curv, nxtv := cur, nxt
			forkjoin.ParallelRange(c, 0, blocks, grain, func(_ *forkjoin.Ctx, from, to int) {
				routeBlocks(curv, nxtv, sIn, sOut, pinv, color, m, from, to)
			})
		} else {
			routeBlocks(cur, nxt, pl.layers[l], pl.layers[2*k-2-l], pinv, color, m, 0, blocks)
		}
		cur, nxt = nxt, cur
	}
	mid := pl.layers[k-1]
	if par && n >= 2*routeGrain {
		forkjoin.ParallelRange(c, 0, n/2, routeGrain/2, func(_ *forkjoin.Ctx, from, to int) {
			for t := from; t < to; t++ {
				mid[t] = cur[2*t] == 1
			}
		})
	} else {
		for t := 0; t < n/2; t++ {
			mid[t] = cur[2*t] == 1
		}
	}
}

// routeBlocks routes blocks [from, to) of one level: block b covers the
// [b·m, (b+1)·m) slice of every buffer, so concurrent calls over disjoint
// block ranges touch disjoint memory.
func routeBlocks(cur, nxt []int, sIn, sOut []bool, pinv []int, color []int8, m, from, to int) {
	for b := from; b < to; b++ {
		off := b * m
		routeBlock(cur[off:off+m], nxt[off:off+m],
			sIn[off/2:off/2+m/2], sOut[off/2:off/2+m/2],
			pinv[off:off+m], color[off:off+m])
	}
}

// routeBlock routes one block: p is the block-local permutation, q receives
// the two half-size sub-permutations (top in q[:m/2], bottom in q[m/2:]),
// sIn/sOut the block's split/merge switch settings. Each output position o
// is 2-colored by the subnet that carries its element: the two outputs of
// an output pair need different subnets (each subnet contributes one slot
// per pair), and so do the two outputs served by an input pair (each input
// pair sends one element to each subnet). The constraint graph is a union
// of even cycles, colored by loop-following.
func routeBlock(p, q []int, sIn, sOut []bool, pinv []int, color []int8) {
	m := len(p)
	h := m / 2
	for i, v := range p {
		pinv[v] = i
	}
	for i := range color {
		color[i] = -1
	}
	for o0 := 0; o0 < m; o0++ {
		if color[o0] >= 0 {
			continue
		}
		o := o0
		for {
			color[o] = 0
			o2 := pinv[p[o]^1] // output served by o's input-pair partner
			if color[o2] >= 0 {
				break
			}
			color[o2] = 1
			o = o2 ^ 1 // its output-pair partner returns to color 0
			if color[o] >= 0 {
				break
			}
		}
	}
	for j := 0; j < h; j++ {
		so := color[2*j] == 1
		sOut[j] = so
		oT, oB := 2*j, 2*j+1 // outputs of pair j served by top / bottom
		if so {
			oT, oB = oB, oT
		}
		// The element entering at input position i rides subnet slot i/2.
		q[j] = p[oT] >> 1
		q[h+j] = p[oB] >> 1
		sIn[j] = color[pinv[2*j]] == 1
	}
}

// benesApplyGrain is the switch count per leaf task when a network layer
// forks: each switch moves two elements plus their schedule words, so the
// leaf carries a few thousand memory touches — large enough to amortize
// task bookkeeping, small enough that every n/2-wide layer still splits
// hundreds of ways at the sizes the shuffle backend serves (n ≥ 2^13).
// Metered runs ignore it (the grain-1 policy measures the full span).
const benesApplyGrain = 1 << 10

// apply runs the routed network over the element array and every schedule
// plane in lockstep, double-buffering through scr/kscr (same length and
// width; the result lands back in a/ks — the layer count that leaves the
// home buffer is even). The address sequence is a fixed function of
// (n, width): each switch always reads its two inputs and writes its two
// outputs, whichever way it is set.
func (pl *benesPlan) apply(c *forkjoin.Ctx, a, scr *mem.Array[obliv.Elem], ks, kscr *obliv.KeySchedule) {
	n := pl.n
	if a.Len() != n || scr.Len() != n {
		panic("core: Beneš apply length mismatch")
	}
	w := ks.Width()
	k := obliv.Log2(n)
	cura, nxta := a, scr
	curk, nxtk := ks, kscr
	move := func(c *forkjoin.Ctx, swap bool, i0, i1, o0, o1 int) {
		c.Op(1)
		x, y := cura.Get(c, i0), cura.Get(c, i1)
		if swap {
			x, y = y, x
		}
		nxta.Set(c, o0, x)
		nxta.Set(c, o1, y)
		for p := 0; p < w; p++ {
			kx, ky := curk.Plane(p).Get(c, i0), curk.Plane(p).Get(c, i1)
			if swap {
				kx, ky = ky, kx
			}
			nxtk.Plane(p).Set(c, o0, kx)
			nxtk.Plane(p).Set(c, o1, ky)
		}
	}
	for l := 0; l < k-1; l++ {
		// Cancellation checkpoint between network layers: the layer
		// boundary is a function of n alone, so an abort reveals only the
		// public layer index (never a partial-layer position).
		c.Check("benes.level")
		m := n >> l
		h := m / 2
		set := pl.layers[l]
		forkjoin.ParallelRange(c, 0, n/2, benesApplyGrain, func(c *forkjoin.Ctx, from, to int) {
			for t := from; t < to; t++ {
				off := 2 * t / m * m
				j := t - off/2
				move(c, set[t], off+2*j, off+2*j+1, off+j, off+h+j)
			}
		})
		cura, nxta = nxta, cura
		curk, nxtk = nxtk, curk
	}
	c.Check("benes.level")
	mid := pl.layers[k-1]
	forkjoin.ParallelRange(c, 0, n/2, benesApplyGrain, func(c *forkjoin.Ctx, from, to int) {
		for t := from; t < to; t++ {
			c.Op(1)
			i0, i1 := 2*t, 2*t+1
			x, y := cura.Get(c, i0), cura.Get(c, i1)
			if mid[t] {
				x, y = y, x
			}
			cura.Set(c, i0, x)
			cura.Set(c, i1, y)
			for p := 0; p < w; p++ {
				kx, ky := curk.Plane(p).Get(c, i0), curk.Plane(p).Get(c, i1)
				if mid[t] {
					kx, ky = ky, kx
				}
				curk.Plane(p).Set(c, i0, kx)
				curk.Plane(p).Set(c, i1, ky)
			}
		}
	})
	for l := k - 2; l >= 0; l-- {
		c.Check("benes.level")
		m := n >> l
		h := m / 2
		set := pl.layers[2*k-2-l]
		forkjoin.ParallelRange(c, 0, n/2, benesApplyGrain, func(c *forkjoin.Ctx, from, to int) {
			for t := from; t < to; t++ {
				off := 2 * t / m * m
				j := t - off/2
				move(c, set[t], off+j, off+h+j, off+2*j, off+2*j+1)
			}
		})
		cura, nxta = nxta, cura
		curk, nxtk = nxtk, curk
	}
	if cura != a {
		panic("core: Beneš apply did not return to the home buffer")
	}
}
