package core

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// SortStats reports diagnostics of a full oblivious sort.
type SortStats struct {
	// Attempts is the number of ORP (and, for the practical variant,
	// REC-SORT) attempts before a loss-free run.
	Attempts int
	// Perm carries the permutation diagnostics of the successful attempt.
	Perm PermStats
	// RecSort carries REC-SORT diagnostics (practical variant only).
	RecSort RecSortStats
}

// InsecureSort is a comparison-based, not-necessarily-oblivious sorting
// routine applied after the oblivious random permutation. Theorem 3.2
// instantiates it with SPMS; internal/spms provides the stand-ins.
type InsecureSort func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem])

// SortWith is the composition of Theorem 3.2 / §C.4: obliviously permute,
// then run any comparison-based insecure sort on the permuted array (whose
// access-pattern distribution is then input-independent). Elements are
// ordered by Key; Key values must be distinct for the security argument of
// [CGLS18, ACN+20] to apply. The input array is not modified.
func SortWith(c *forkjoin.Ctx, sp *mem.Space, in *mem.Array[obliv.Elem], seed uint64, p Params, insecure InsecureSort) (*mem.Array[obliv.Elem], SortStats) {
	p = p.normalized(in.Len())
	perm, attempts := MustRandomPermutation(c, sp, in, seed, p)
	insecure(c, sp, perm)
	return perm, SortStats{Attempts: attempts}
}

// SortPractical is the practical variant of §3.4/§E: REC-ORBA-based ORP
// (with bitonic inner sorts), pivot selection, and REC-SORT. It retries
// with fresh randomness in the negligible-probability event that a bin
// overflow dropped elements, so the result is always a complete sort.
func SortPractical(c *forkjoin.Ctx, sp *mem.Space, in *mem.Array[obliv.Elem], seed uint64, p Params) (*mem.Array[obliv.Elem], SortStats) {
	n := in.Len()
	p = p.normalized(n)
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			panic("core: practical sort failed 64 times; params far too tight")
		}
		aseed := prng.Mix64(seed + uint64(attempt)*0x632be59bd9b4e019)
		tape := prng.NewTape(aseed, TapeLen(n, p))
		perm, pstats := RandomPermutation(c, sp, in, tape, p)
		if pstats.Lost != 0 {
			continue
		}
		out, rstats := RecSortPermuted(c, sp, perm, aseed, p)
		if rstats.Lost != 0 {
			continue
		}
		return out, SortStats{Attempts: attempt + 1, Perm: pstats, RecSort: rstats}
	}
}

// SortKeys is a convenience wrapper sorting a raw key slice with the
// practical variant; it returns a fresh sorted slice.
func SortKeys(c *forkjoin.Ctx, sp *mem.Space, keys []uint64, seed uint64, p Params) []uint64 {
	in := mem.Alloc[obliv.Elem](sp, len(keys))
	for i, k := range keys {
		in.Data()[i] = obliv.Elem{Key: k, Kind: obliv.Real}
	}
	out, _ := SortPractical(c, sp, in, seed, p)
	res := make([]uint64, out.Len())
	for i, e := range out.Data() {
		res[i] = e.Key
	}
	return res
}
