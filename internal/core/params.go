// Package core implements the paper's primary contribution: oblivious
// random bin assignment (META-ORBA §C.2 and its cache-agnostic binary
// fork-join implementation REC-ORBA §D.1), oblivious random permutation
// (§C.3/§D.2), the full oblivious sort (Theorems 3.2/D.1), and the
// practical variant built on pivot selection and REC-SORT (§E.2).
package core

import (
	"oblivmc/internal/bitonic"
	"oblivmc/internal/obliv"
)

// Params carries the paper's tunables. Zero fields are filled by
// ParamsForN; tests override them to force deep recursions at small n and
// to run the overflow experiments.
type Params struct {
	// Z is the bin capacity (power of two). The paper uses Z = log² n
	// (Theorem C.1); bins start half full.
	Z int
	// Gamma is the butterfly branching factor γ (power of two). The paper
	// uses γ = Θ(log n); γ = 2 recovers the prior algorithms of
	// [ACN+20, CGLS18] and is exposed for the Lemma 3.1 ablation.
	Gamma int
	// Sorter is the oblivious sorter used for the small poly-logarithmic
	// subproblems (AKS in the theory bound, bitonic in the practical
	// variant — see DESIGN.md deviation 1). It must support the
	// key-schedule seam (obliv.ScheduledSorter): the graph and PRAM bulk
	// operations route every sort through cached-key schedules, which is
	// how they inherit backend selection.
	Sorter obliv.ScheduledSorter

	// SampleRate: REC-SORT samples each element with probability
	// 1/SampleRate during pivot selection (paper: log n).
	SampleRate int
	// PivotSpacing: every PivotSpacing-th sorted sample becomes a pivot
	// (paper: log² n, making regions of expected size ~log³ n).
	PivotSpacing int
	// BinCapFactor scales REC-SORT's bin capacity relative to the mean
	// load (slack for the Chernoff fluctuations of §E.2's analysis).
	BinCapFactor int
}

// log2ceil returns ⌈log2 n⌉ for n >= 1.
func log2ceil(n int) int {
	l := 0
	for (1 << l) < n {
		l++
	}
	return l
}

// ParamsForN returns the paper's default parameters for input size n.
func ParamsForN(n int) Params {
	if n < 1 {
		n = 1
	}
	lg := log2ceil(n)
	if lg < 2 {
		lg = 2
	}
	z := obliv.NextPow2(lg * lg)
	if z < 16 {
		z = 16
	}
	gamma := obliv.NextPow2(lg)
	if gamma < 2 {
		gamma = 2
	}
	return Params{
		Z:            z,
		Gamma:        gamma,
		Sorter:       bitonic.CacheAgnostic{},
		SampleRate:   lg,
		PivotSpacing: obliv.NextPow2(lg * lg),
		BinCapFactor: 4,
	}
}

// normalized fills zero fields with the defaults for n and validates
// power-of-two constraints.
func (p Params) normalized(n int) Params {
	def := ParamsForN(n)
	if p.Z == 0 {
		p.Z = def.Z
	}
	if p.Gamma == 0 {
		p.Gamma = def.Gamma
	}
	if p.Sorter == nil {
		p.Sorter = def.Sorter
	}
	if p.SampleRate == 0 {
		p.SampleRate = def.SampleRate
	}
	if p.PivotSpacing == 0 {
		p.PivotSpacing = def.PivotSpacing
	}
	if p.BinCapFactor == 0 {
		p.BinCapFactor = def.BinCapFactor
	}
	if !obliv.IsPow2(p.Z) || p.Z < 2 {
		panic("core: Z must be a power of two >= 2")
	}
	if !obliv.IsPow2(p.Gamma) || p.Gamma < 2 {
		panic("core: Gamma must be a power of two >= 2")
	}
	return p
}

// digit extracts the label bits [s, s+width) of lbl, where bit 0 is the
// most significant of a labelBits-wide label. This is the "next unconsumed
// Θ(log log n) bits" selector of META-ORBA.
func digit(lbl uint64, labelBits, s, width int) uint64 {
	return (lbl >> uint(labelBits-s-width)) & ((1 << uint(width)) - 1)
}
