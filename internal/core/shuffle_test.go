package core

import (
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// fixedSeed opts a test's ShuffleSorter into deterministic coins.
func fixedSeed(v uint64) *uint64 { return &v }

// benesFixture allocates an n-element array with Aux = position plus a
// width-w schedule whose word p of element i is a distinct function of
// (i, p), so any lockstep violation is visible.
func benesFixture(sp *mem.Space, n, w int) (*mem.Array[obliv.Elem], *obliv.KeySchedule) {
	a := mem.Alloc[obliv.Elem](sp, n)
	ks := obliv.AllocKeySchedule(sp, n, w)
	for i := 0; i < n; i++ {
		a.Data()[i] = obliv.Elem{Key: uint64(i) * 3, Aux: uint64(i), Kind: obliv.Real}
		for p := 0; p < w; p++ {
			ks.Plane(p).Data()[i] = uint64(i)*31 + uint64(p)*7 + 1
		}
	}
	return a, ks
}

func TestBenesAppliesPermutation(t *testing.T) {
	src := prng.New(11)
	for _, n := range []int{2, 4, 8, 16, 64, 256, 1024} {
		for _, w := range []int{1, 2} {
			for rep := 0; rep < 3; rep++ {
				sp := mem.NewSpace()
				a, ks := benesFixture(sp, n, w)
				scr := mem.Alloc[obliv.Elem](sp, n)
				kscr := obliv.AllocKeySchedule(sp, n, w)
				perm := src.Perm(n)
				routeBenes(perm).apply(forkjoin.Serial(), a, scr, ks, kscr)
				for i := 0; i < n; i++ {
					e := a.Data()[i]
					if int(e.Aux) != perm[i] {
						t.Fatalf("n=%d w=%d: position %d holds element %d, want perm[%d]=%d", n, w, i, e.Aux, i, perm[i])
					}
					for p := 0; p < w; p++ {
						if got, want := ks.Plane(p).Data()[i], uint64(perm[i])*31+uint64(p)*7+1; got != want {
							t.Fatalf("n=%d w=%d: schedule plane %d out of lockstep at %d: %d want %d", n, w, p, i, got, want)
						}
					}
				}
			}
		}
	}
}

// TestBenesTraceFixed asserts the permutation stage's strongest property:
// its instrumented trace is a fixed function of (n, width) — not just of
// the tape, but identical across *different permutations and contents*.
func TestBenesTraceFixed(t *testing.T) {
	const n, w = 128, 2
	run := func(seed uint64) *forkjoin.Metrics {
		sp := mem.NewSpace()
		a, ks := benesFixture(sp, n, w)
		for i := range a.Data() {
			a.Data()[i].Val = prng.Mix64(seed + uint64(i))
		}
		scr := mem.Alloc[obliv.Elem](sp, n)
		kscr := obliv.AllocKeySchedule(sp, n, w)
		perm := prng.New(seed).Perm(n)
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			routeBenes(perm).apply(c, a, scr, ks, kscr)
		})
	}
	if !run(1).Trace.Equal(run(2).Trace) {
		t.Fatal("Beneš application trace depends on the permutation or contents")
	}
}

// shuffleInput builds n elements with nReal real records (duplicate-heavy
// keys drawn from content, distinct Aux) and identical zero fillers, plus
// the (key columns, fillers-last) schedule of the relational key sorts.
func shuffleInput(sp *mem.Space, src *prng.Source, n, nReal, w int) (*mem.Array[obliv.Elem], *obliv.KeySchedule) {
	a := mem.Alloc[obliv.Elem](sp, n)
	for i := 0; i < nReal; i++ {
		a.Data()[i] = obliv.Elem{
			Key:  src.Uint64n(5) * 0x9e3779b97f4a7c15 >> 1,
			Key2: src.Uint64n(3),
			Val:  src.Uint64(),
			Aux:  uint64(i),
			Kind: obliv.Real,
		}
	}
	ks := obliv.AllocKeySchedule(sp, n, w)
	ks.Tie = obliv.TiePos
	obliv.BuildKeySchedule(forkjoin.Serial(), a, ks, 0, n, func(e obliv.Elem, out []uint64) {
		if e.Kind != obliv.Real {
			for p := range out {
				out[p] = obliv.InfKey
			}
			return
		}
		out[0] = e.Key
		if len(out) > 1 {
			out[1] = e.Key2
		}
	})
	return a, ks
}

// TestShuffleSorterMatchesBitonic is the backend-equivalence property: on
// the relational (keys..., TiePos) schedules the shuffle composition must
// produce the identical array the keyed bitonic network produces —
// element for element, including duplicate-heavy keys and filler tails —
// at both widths and across sizes straddling the forced crossover.
func TestShuffleSorterMatchesBitonic(t *testing.T) {
	src := prng.New(0x5eed)
	for _, n := range []int{2, 8, 32, 128, 512} {
		for _, w := range []int{1, 2} {
			for _, frac := range []int{0, 1, 2} {
				nReal := n - n*frac/4 // full, 3/4, 1/2 occupancy
				contentSeed := src.Uint64()

				mk := func() (*mem.Space, *mem.Array[obliv.Elem], *obliv.KeySchedule) {
					sp := mem.NewSpace()
					a, ks := shuffleInput(sp, prng.New(contentSeed), n, nReal, w)
					return sp, a, ks
				}

				sp1, a1, ks1 := mk()
				scr1 := mem.Alloc[obliv.Elem](sp1, n)
				kscr1 := obliv.AllocKeySchedule(sp1, n, w)
				kscr1.Tie = obliv.TiePos // the cache-agnostic merge swaps schedule roles
				bitonic.CacheAgnostic{}.SortScheduled(forkjoin.Serial(), sp1, a1, ks1, scr1, kscr1, 0, n)

				sp2, a2, ks2 := mk()
				shuf := &ShuffleSorter{FixedSeed: fixedSeed(7), Crossover: 2}
				shuf.SortScheduled(forkjoin.Serial(), sp2, a2, ks2, nil, nil, 0, n)

				for i := 0; i < n; i++ {
					if a1.Data()[i] != a2.Data()[i] {
						t.Fatalf("n=%d w=%d nReal=%d: backends diverge at %d:\nbitonic %+v\nshuffle %+v",
							n, w, nReal, i, a1.Data()[i], a2.Data()[i])
					}
					for p := 0; p < w; p++ {
						if ks1.Plane(p).Data()[i] != ks2.Plane(p).Data()[i] {
							t.Fatalf("n=%d w=%d: schedule plane %d out of lockstep after sort at %d", n, w, p, i)
						}
					}
				}
			}
		}
	}
}

// TestShuffleSorterFixedSeedTraceValueIndependent pins the fingerprint
// guarantee the backend does make at a fixed seed: the trace is independent
// of the key and payload *values* — two inputs whose keys are order-
// isomorphic but numerically disjoint, with unrelated payloads, produce
// identical views at every tested width. (Independence of the key *order*
// is distributional, supplied by the secret permutation; see the package
// comment.)
func TestShuffleSorterFixedSeedTraceValueIndependent(t *testing.T) {
	const n = 256
	for _, w := range []int{1, 2} {
		run := func(scale, bias, valSeed uint64) *forkjoin.Metrics {
			sp := mem.NewSpace()
			a := mem.Alloc[obliv.Elem](sp, n)
			for i := 0; i < n/2; i++ { // half occupancy: identical filler tail
				rank := uint64(i%7) * 13 // duplicate-heavy, same order both runs
				a.Data()[i] = obliv.Elem{
					Key:  rank*scale + bias,
					Key2: rank * scale,
					Val:  prng.Mix64(valSeed + uint64(i)),
					Aux:  uint64(i),
					Kind: obliv.Real,
				}
			}
			ks := obliv.AllocKeySchedule(sp, n, w)
			ks.Tie = obliv.TiePos
			scr := mem.Alloc[obliv.Elem](sp, n)
			kscr := obliv.AllocKeySchedule(sp, n, w)
			shuf := &ShuffleSorter{FixedSeed: fixedSeed(42), Crossover: 2}
			return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
				obliv.BuildKeySchedule(c, a, ks, 0, n, func(e obliv.Elem, out []uint64) {
					if e.Kind != obliv.Real {
						for p := range out {
							out[p] = obliv.InfKey
						}
						return
					}
					out[0] = e.Key
					if len(out) > 1 {
						out[1] = e.Key2
					}
				})
				shuf.SortScheduled(c, sp, a, ks, scr, kscr, 0, n)
			})
		}
		if !run(1, 0, 1).Trace.Equal(run(1<<40, 5, 999).Trace) {
			t.Fatalf("w=%d: fixed-seed shuffle trace depends on key/payload values", w)
		}
	}
}

// TestShuffleSorterTraceShapeSensitive is the sanity inverse: a different
// length must change the view.
func TestShuffleSorterTraceShapeSensitive(t *testing.T) {
	run := func(n int) *forkjoin.Metrics {
		sp := mem.NewSpace()
		a, ks := shuffleInput(sp, prng.New(3), n, n, 1)
		shuf := &ShuffleSorter{FixedSeed: fixedSeed(9), Crossover: 2}
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			shuf.SortScheduled(c, sp, a, ks, nil, nil, 0, n)
		})
	}
	if run(64).Trace.Equal(run(128).Trace) {
		t.Fatal("shuffle traces of different lengths coincide")
	}
}

// TestShuffleSorterPermutationUniform spot-checks ORP uniformity through
// the public surface: across seeds, the element originally at position 0
// must land uniformly (the Fisher–Yates draw feeding the network is
// uniform; this guards the network against systematically misrouting).
func TestShuffleSorterPermutationUniform(t *testing.T) {
	const n, runs = 32, 640
	counts := make([]int64, n)
	for r := 0; r < runs; r++ {
		sp := mem.NewSpace()
		a, ks := benesFixture(sp, n, 1)
		scr := mem.Alloc[obliv.Elem](sp, n)
		kscr := obliv.AllocKeySchedule(sp, n, 1)
		perm := prng.New(uint64(r) + 1000).Perm(n)
		routeBenes(perm).apply(forkjoin.Serial(), a, scr, ks, kscr)
		for pos, e := range a.Data() {
			if e.Aux == 0 {
				counts[pos]++
			}
		}
	}
	stat, dof := traceChi(counts)
	if stat > critChi(dof) {
		t.Fatalf("shuffled position not uniform: chi²=%.1f crit=%.1f", stat, critChi(dof))
	}
}

// TestShuffleSorterFallsBackBelowCrossover pins the public selection rule:
// below the crossover the fallback network runs (its trace is the bitonic
// network's), at or above it the shuffle trace appears.
func TestShuffleSorterFallsBackBelowCrossover(t *testing.T) {
	const n = 64
	run := func(srt obliv.ScheduledSorter) *forkjoin.Metrics {
		sp := mem.NewSpace()
		a, ks := shuffleInput(sp, prng.New(5), n, n, 1)
		scr := mem.Alloc[obliv.Elem](sp, n)
		kscr := obliv.AllocKeySchedule(sp, n, 1)
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			srt.SortScheduled(c, sp, a, ks, scr, kscr, 0, n)
		})
	}
	above := &ShuffleSorter{FixedSeed: fixedSeed(1), Crossover: n + 1}
	scr := run(above)
	bit := run(bitonic.CacheAgnostic{})
	if !scr.Trace.Equal(bit.Trace) {
		t.Fatal("below the crossover the shuffle sorter must run the bitonic fallback")
	}
	at := &ShuffleSorter{FixedSeed: fixedSeed(1), Crossover: n}
	if run(at).Trace.Equal(bit.Trace) {
		t.Fatal("at the crossover the shuffle path must run (trace differs from bitonic)")
	}
}

// TestShuffleSorterSortSubrange pins the closure-keyed Sorter path at
// lo > 0: only [lo, lo+n) is sorted, the prefix and suffix stay intact,
// and the schedule stays aligned with the sorted view.
func TestShuffleSorterSortSubrange(t *testing.T) {
	const lo, n, total = 16, 64, 96
	src := prng.New(8)
	sp := mem.NewSpace()
	a := mem.Alloc[obliv.Elem](sp, total)
	for i := 0; i < total; i++ {
		a.Data()[i] = obliv.Elem{Key: src.Uint64n(9), Aux: uint64(i), Kind: obliv.Real}
	}
	raw := append([]obliv.Elem(nil), a.Data()...)
	shuf := &ShuffleSorter{FixedSeed: fixedSeed(4), Crossover: 2}
	shuf.Sort(forkjoin.Serial(), sp, a, lo, n, func(e obliv.Elem) uint64 { return e.Key })
	for i := 0; i < lo; i++ {
		if a.Data()[i] != raw[i] {
			t.Fatalf("prefix modified at %d", i)
		}
	}
	for i := lo + n; i < total; i++ {
		if a.Data()[i] != raw[i] {
			t.Fatalf("suffix modified at %d", i)
		}
	}
	for i := lo + 1; i < lo+n; i++ {
		x, y := a.Data()[i-1], a.Data()[i]
		if x.Key > y.Key || (x.Key == y.Key && x.Aux > y.Aux) {
			t.Fatalf("subrange not sorted at %d: %+v then %+v", i, x, y)
		}
	}
}

// TestShuffleSorterDefaultSecretCoins pins the security default: with no
// FixedSeed every sort draws fresh crypto/rand coins, so the sort is still
// correct, and two identically constructed sorters over the same input do
// NOT replay the same permutation — their views differ. (A replayed
// permutation across runs is exactly what would let a trace observer
// correlate key order; deterministic replay is the explicit FixedSeed
// opt-in.)
func TestShuffleSorterDefaultSecretCoins(t *testing.T) {
	const n = 256
	run := func() *forkjoin.Metrics {
		sp := mem.NewSpace()
		a, ks := shuffleInput(sp, prng.New(6), n, n, 1)
		shuf := &ShuffleSorter{Crossover: 2}
		m := forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			shuf.SortScheduled(c, sp, a, ks, nil, nil, 0, n)
		})
		for i := 1; i < n; i++ {
			x, y := a.Data()[i-1], a.Data()[i]
			if x.Key > y.Key || (x.Key == y.Key && x.Aux > y.Aux) {
				t.Fatalf("default-coins sort out of order at %d: %+v then %+v", i, x, y)
			}
		}
		return m
	}
	if run().Trace.Equal(run().Trace) {
		t.Fatal("two default sorters replayed an identical view — permutations must be fresh secrets per sort")
	}
}

// TestBenesRouteIntoMatchesFresh pins the routing-buffer reuse refactor:
// rerouting a cached (dirty) plan through routeBenesInto must produce
// switch settings identical to a fresh routeBenes, at every size and
// across back-to-back permutations sharing the buffers.
func TestBenesRouteIntoMatchesFresh(t *testing.T) {
	src := prng.New(17)
	var rs routeScratch
	for _, n := range []int{2, 4, 8, 64, 256, 1024} {
		pl := newBenesPlan(n)
		for rep := 0; rep < 3; rep++ {
			perm := src.Perm(n)
			routeBenesInto(forkjoin.Serial(), pl, perm, &rs)
			want := routeBenes(perm)
			for l := range want.layers {
				for j := range want.layers[l] {
					if pl.layers[l][j] != want.layers[l][j] {
						t.Fatalf("n=%d rep=%d: layer %d switch %d diverges from fresh routing", n, rep, l, j)
					}
				}
			}
		}
	}
}

// TestBenesLevelBufferReuseFlatAllocs asserts the satellite property: once
// a ShuffleSorter has routed a size, re-drawing and re-routing that size —
// the whole per-sort ORP planning step, the part that used to rebuild
// (2·log₂ n − 1) × n/2 switch planes per sort — allocates nothing, even
// when two sizes alternate through the per-size plan cache.
func TestBenesLevelBufferReuseFlatAllocs(t *testing.T) {
	s := &ShuffleSorter{FixedSeed: fixedSeed(3), Crossover: 2}
	src := prng.New(29) // stable coins: coins() itself is one fixed-size alloc per sort
	serial := forkjoin.Serial()
	route := func(n int) {
		routeBenesInto(serial, s.benesPlanFor(n), s.perm(src, n), &s.route)
	}
	// Warm both sizes (plan buffers, routing scratch, perm buffer).
	route(1 << 10)
	route(1 << 11)
	if allocs := testing.AllocsPerRun(10, func() { route(1 << 10); route(1 << 11) }); allocs != 0 {
		t.Fatalf("re-routing warmed sizes allocated %v objects per run, want 0", allocs)
	}
}

// TestShuffleSorterReusesPlanesAcrossSorts asserts the buffer cache at the
// sort level: back-to-back SortScheduled calls of the same shape on one
// sorter route through the identical plan storage (no per-sort rebuild),
// and the reuse does not disturb sortedness.
func TestShuffleSorterReusesPlanesAcrossSorts(t *testing.T) {
	const n = 1 << 9
	shuf := &ShuffleSorter{FixedSeed: fixedSeed(12), Crossover: 2}
	sp := mem.NewSpace()
	src := prng.New(23)
	scr := mem.Alloc[obliv.Elem](sp, n)
	kscr := obliv.AllocKeySchedule(sp, n, 1)
	var planes *bool
	for rep := 0; rep < 3; rep++ {
		a, ks := shuffleInput(sp, src, n, n, 1)
		shuf.SortScheduled(forkjoin.Serial(), sp, a, ks, scr, kscr, 0, n)
		for i := 1; i < n; i++ {
			x, y := a.Data()[i-1], a.Data()[i]
			if x.Key > y.Key || (x.Key == y.Key && x.Aux > y.Aux) {
				t.Fatalf("rep %d: out of order at %d", rep, i)
			}
		}
		pl := shuf.plans[n]
		if pl == nil {
			t.Fatalf("rep %d: no cached plan for n=%d", rep, n)
		}
		if planes == nil {
			planes = &pl.layers[0][0]
		} else if planes != &pl.layers[0][0] {
			t.Fatalf("rep %d: plan storage was rebuilt across sorts", rep)
		}
	}
}

// TestBenesRouteParallelMatchesSerial pins the parallel switch-setting
// computation (the multicore PR's routing fork): routing the same
// permutation under the work-stealing pool and under the serial executor
// must produce bit-identical switch planes at every size — the settings
// encode the permutation, so any divergence would change the realized
// shuffle and break the FixedSeed trace replay downstream. Sizes straddle
// the routeGrain fork threshold so both the forked and the inline path of
// the pool context are exercised.
func TestBenesRouteParallelMatchesSerial(t *testing.T) {
	src := prng.New(41)
	for _, n := range []int{1 << 10, 2 * routeGrain, 4 * routeGrain} {
		perm := src.Perm(n)
		want := routeBenes(perm)
		got := newBenesPlan(n)
		var rs routeScratch
		forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
			routeBenesInto(c, got, perm, &rs)
		})
		for l := range want.layers {
			for j := range want.layers[l] {
				if got.layers[l][j] != want.layers[l][j] {
					t.Fatalf("n=%d: layer %d switch %d diverges between parallel and serial routing", n, l, j)
				}
			}
		}
	}
}

// TestShuffleSortParallelMatchesSerial runs the full FixedSeed shuffle sort
// pipeline — routing, network application, keyed sample sort — under the
// serial executor and under pools of 2 and 4 workers, and asserts the
// sorted arrays are byte-identical: with deterministic coins the strict
// total order (keys, TiePos, tie word) has exactly one realization, so the
// parallel schedule may not change any output bit.
func TestShuffleSortParallelMatchesSerial(t *testing.T) {
	const n, w = 4 * routeGrain, 2 // past the routing fork threshold
	sorted := func(workers int) []obliv.Elem {
		sp := mem.NewSpace()
		src := prng.New(7)
		a, ks := shuffleInput(sp, src, n, n-100, w)
		shuf := &ShuffleSorter{FixedSeed: fixedSeed(5), Crossover: 2}
		if workers == 0 {
			shuf.SortScheduled(forkjoin.Serial(), sp, a, ks, nil, nil, 0, n)
		} else {
			forkjoin.RunParallel(workers, func(c *forkjoin.Ctx) {
				shuf.SortScheduled(c, sp, a, ks, nil, nil, 0, n)
			})
		}
		return append([]obliv.Elem(nil), a.Data()...)
	}
	want := sorted(0)
	for _, workers := range []int{2, 4} {
		got := sorted(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: output diverges from serial at %d: %+v want %+v", workers, i, got[i], want[i])
			}
		}
	}
}
