package core

import (
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// caughtSite runs f expecting a cancellation abort and returns the public
// site it carried.
func caughtSite(t *testing.T, label string, f func()) string {
	t.Helper()
	var caught any
	func() {
		defer func() { caught = recover() }()
		f()
	}()
	ce, ok := caught.(*forkjoin.CanceledError)
	if !ok {
		t.Fatalf("%s panicked %T (%v), want *forkjoin.CanceledError", label, caught, caught)
	}
	return ce.Site
}

// TestBenesCancelSites pins the Beneš checkpoints: a tripped token aborts
// the shuffle composition in the routing stage ("benes.route", which
// precedes the network application), and aborts a direct plan application
// at a layer boundary ("benes.level").
func TestBenesCancelSites(t *testing.T) {
	const n = 64
	sp := mem.NewSpace()
	a, ks := shuffleInput(sp, prng.New(11), n, n, 1)
	cn := new(forkjoin.Cancel)
	cn.Cancel()
	c := forkjoin.SerialCancel(cn)

	shuf := &ShuffleSorter{FixedSeed: fixedSeed(3), Crossover: 2}
	if site := caughtSite(t, "tripped SortScheduled", func() {
		shuf.SortScheduled(c, sp, a, ks, nil, nil, 0, n)
	}); site != "benes.route" {
		t.Fatalf("tripped shuffle sort aborted at %q, want benes.route", site)
	}

	// Route a plan with a live context, then abort its application: the
	// first checkpoint inside apply is the layer boundary.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	pl := routeBenes(p)
	scr := mem.Alloc[obliv.Elem](sp, n)
	kscr := obliv.AllocKeySchedule(sp, n, 1)
	if site := caughtSite(t, "tripped apply", func() {
		pl.apply(c, a, scr, ks, kscr)
	}); site != "benes.level" {
		t.Fatalf("tripped network apply aborted at %q, want benes.level", site)
	}
}
