package core

import (
	"sort"
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// mkInput builds n Real elements with Key = distinct random values and
// Aux = original index.
func mkInput(sp *mem.Space, seed uint64, n int) *mem.Array[obliv.Elem] {
	src := prng.New(seed)
	used := map[uint64]bool{}
	a := mem.Alloc[obliv.Elem](sp, n)
	for i := 0; i < n; i++ {
		k := src.Uint64() >> 4 // keep below MaxKey
		for used[k] {
			k = src.Uint64() >> 4
		}
		used[k] = true
		a.Data()[i] = obliv.Elem{Key: k, Val: k * 3, Aux: uint64(i), Kind: obliv.Real}
	}
	return a
}

func TestParamsDefaults(t *testing.T) {
	p := ParamsForN(1 << 16)
	if !obliv.IsPow2(p.Z) || !obliv.IsPow2(p.Gamma) {
		t.Fatal("defaults not powers of two")
	}
	if p.Z < 256 { // log²(65536) = 256
		t.Fatalf("Z = %d too small for n=2^16", p.Z)
	}
	if p.Gamma != 16 {
		t.Fatalf("Gamma = %d, want 16", p.Gamma)
	}
}

func TestDigit(t *testing.T) {
	// label 0b1011 with labelBits=4: digits MSB-first.
	lbl := uint64(0b1011)
	if digit(lbl, 4, 0, 1) != 1 || digit(lbl, 4, 1, 1) != 0 || digit(lbl, 4, 2, 2) != 0b11 {
		t.Fatal("digit extraction wrong")
	}
	if digit(lbl, 4, 0, 4) != 0b1011 {
		t.Fatal("full-width digit wrong")
	}
}

func TestRecORBARoutesToLabeledBin(t *testing.T) {
	// Every surviving real element must be in the bin named by its label.
	for _, cfg := range []struct {
		n    int
		p    Params
		seed uint64
	}{
		{256, Params{Z: 64, Gamma: 8}, 1},
		{512, Params{Z: 64, Gamma: 2}, 2},   // γ=2: deep recursion ablation
		{1000, Params{Z: 128, Gamma: 4}, 3}, // non-pow2 n
		{64, Params{Z: 128, Gamma: 4}, 4},   // single-bin edge
	} {
		sp := mem.NewSpace()
		in := mkInput(sp, cfg.seed, cfg.n)
		tape := prng.NewTape(cfg.seed+100, TapeLen(cfg.n, cfg.p.normalized(cfg.n)))
		res := RecORBA(forkjoin.Serial(), sp, in, tape, cfg.p)
		data := res.Bins.Data()
		found := 0
		for b := 0; b < res.Beta; b++ {
			for k := 0; k < res.Z; k++ {
				e := data[b*res.Z+k]
				if e.Kind != obliv.Real {
					continue
				}
				found++
				if int(e.Lbl) != b {
					t.Fatalf("n=%d: element with label %d in bin %d", cfg.n, e.Lbl, b)
				}
			}
		}
		if found != cfg.n-res.Lost {
			t.Fatalf("n=%d: found %d elements, want %d (lost %d)", cfg.n, found, cfg.n-res.Lost, res.Lost)
		}
	}
}

func TestRecORBANoLossWithSlack(t *testing.T) {
	// With Z at 4x the mean bin load, overflow probability is astronomical.
	sp := mem.NewSpace()
	const n = 512
	p := Params{Z: 64, Gamma: 4}
	in := mkInput(sp, 9, n)
	tape := prng.NewTape(77, TapeLen(n, p.normalized(n)))
	res := RecORBA(forkjoin.Serial(), sp, in, tape, p)
	if res.Lost != 0 {
		t.Fatalf("lost %d elements with generous Z", res.Lost)
	}
}

func TestRecORBAPreservesPayload(t *testing.T) {
	sp := mem.NewSpace()
	const n = 200
	in := mkInput(sp, 5, n)
	want := map[uint64][2]uint64{}
	for _, e := range in.Data() {
		want[e.Key] = [2]uint64{e.Val, e.Aux}
	}
	tape := prng.NewTape(6, TapeLen(n, ParamsForN(n)))
	res := RecORBA(forkjoin.Serial(), sp, in, tape, Params{})
	for _, e := range res.Bins.Data() {
		if e.Kind != obliv.Real {
			continue
		}
		w, ok := want[e.Key]
		if !ok || e.Val != w[0] || e.Aux != w[1] {
			t.Fatalf("payload corrupted: %+v", e)
		}
		delete(want, e.Key)
	}
	if len(want) != res.Lost {
		t.Fatalf("%d elements unaccounted (lost=%d)", len(want), res.Lost)
	}
}

func TestMetaEqualsRecORBA(t *testing.T) {
	// Same tape → identical per-bin multisets (the two algorithms realize
	// the same functionality).
	const n = 512
	p := Params{Z: 64, Gamma: 4}
	binSets := func(orba func(*forkjoin.Ctx, *mem.Space, *mem.Array[obliv.Elem], *prng.Tape, Params) BinsResult) []map[uint64]int {
		sp := mem.NewSpace()
		in := mkInput(sp, 11, n)
		tape := prng.NewTape(42, TapeLen(n, p.normalized(n)))
		res := orba(forkjoin.Serial(), sp, in, tape, p)
		sets := make([]map[uint64]int, res.Beta)
		for b := range sets {
			sets[b] = map[uint64]int{}
			for k := 0; k < res.Z; k++ {
				e := res.Bins.Data()[b*res.Z+k]
				if e.Kind == obliv.Real {
					sets[b][e.Key]++
				}
			}
		}
		return sets
	}
	rec, meta := binSets(RecORBA), binSets(MetaORBA)
	if len(rec) != len(meta) {
		t.Fatalf("beta mismatch: %d vs %d", len(rec), len(meta))
	}
	for b := range rec {
		if len(rec[b]) != len(meta[b]) {
			t.Fatalf("bin %d load mismatch: %d vs %d", b, len(rec[b]), len(meta[b]))
		}
		for k, v := range rec[b] {
			if meta[b][k] != v {
				t.Fatalf("bin %d content mismatch at key %d", b, k)
			}
		}
	}
}

func TestRecORBATraceOblivious(t *testing.T) {
	const n = 256
	p := Params{Z: 32, Gamma: 4}
	run := func(seed uint64) *forkjoin.Metrics {
		sp := mem.NewSpace()
		in := mkInput(sp, seed, n)
		tape := prng.NewTape(1234, TapeLen(n, p.normalized(n))) // fixed tape
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			RecORBA(c, sp, in, tape, p)
		})
	}
	if !run(1).Trace.Equal(run(2).Trace) {
		t.Fatal("REC-ORBA access pattern depends on input data")
	}
}

func TestMetaORBATraceOblivious(t *testing.T) {
	const n = 256
	p := Params{Z: 32, Gamma: 4}
	run := func(seed uint64) *forkjoin.Metrics {
		sp := mem.NewSpace()
		in := mkInput(sp, seed, n)
		tape := prng.NewTape(99, TapeLen(n, p.normalized(n)))
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			MetaORBA(c, sp, in, tape, p)
		})
	}
	if !run(3).Trace.Equal(run(4).Trace) {
		t.Fatal("META-ORBA access pattern depends on input data")
	}
}

func TestRecORBALoadDistributionUniform(t *testing.T) {
	// Across tapes, each element's bin choice must be uniform: aggregate
	// bin loads over many runs and chi-square against uniform.
	const n, runs = 128, 60
	p := Params{Z: 32, Gamma: 4}
	var counts []int64
	for r := 0; r < runs; r++ {
		sp := mem.NewSpace()
		in := mkInput(sp, uint64(r), n)
		tape := prng.NewTape(uint64(1000+r), TapeLen(n, p.normalized(n)))
		res := RecORBA(forkjoin.Serial(), sp, in, tape, p)
		if counts == nil {
			counts = make([]int64, res.Beta)
		}
		for b, l := range res.BinLoads() {
			counts[b] += int64(l)
		}
	}
	stat, dof := traceChi(counts)
	if stat > critChi(dof) {
		t.Fatalf("bin loads not uniform: chi²=%.1f crit=%.1f counts=%v", stat, critChi(dof), counts)
	}
}

func TestRandomPermutationIsPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 17, 128, 500} {
		sp := mem.NewSpace()
		in := mkInput(sp, uint64(n), n)
		out, attempts := MustRandomPermutation(forkjoin.Serial(), sp, in, 7, Params{})
		if attempts > 8 {
			t.Fatalf("n=%d needed %d attempts", n, attempts)
		}
		if out.Len() != n {
			t.Fatalf("n=%d: output length %d", n, out.Len())
		}
		seen := map[uint64]bool{}
		for _, e := range out.Data() {
			if e.Kind != obliv.Real {
				t.Fatal("filler in permutation output")
			}
			if seen[e.Key] {
				t.Fatal("duplicate element in output")
			}
			seen[e.Key] = true
		}
		for _, e := range in.Data() {
			if !seen[e.Key] {
				t.Fatalf("element %d missing from output", e.Key)
			}
		}
	}
}

func TestRandomPermutationUniformity(t *testing.T) {
	// The element with Aux=0 must land at a uniformly random output
	// position across tapes.
	const n, runs = 32, 640
	p := Params{Z: 16, Gamma: 4}
	counts := make([]int64, n)
	for r := 0; r < runs; r++ {
		sp := mem.NewSpace()
		in := mkInput(sp, 3, n) // same input every run; randomness from tape
		out, _ := MustRandomPermutation(forkjoin.Serial(), sp, in, uint64(r), p)
		if out.Len() != n {
			continue
		}
		for pos, e := range out.Data() {
			if e.Aux == 0 {
				counts[pos]++
			}
		}
	}
	stat, dof := traceChi(counts)
	if stat > critChi(dof) {
		t.Fatalf("permutation position not uniform: chi²=%.1f crit=%.1f", stat, critChi(dof))
	}
}

func TestRandomPermutationTraceOblivious(t *testing.T) {
	const n = 200
	p := Params{Z: 32, Gamma: 4}
	run := func(seed uint64) *forkjoin.Metrics {
		sp := mem.NewSpace()
		in := mkInput(sp, seed, n)
		tape := prng.NewTape(555, TapeLen(n, p.normalized(n)))
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			RandomPermutation(c, sp, in, tape, p)
		})
	}
	if !run(10).Trace.Equal(run(20).Trace) {
		t.Fatal("ORP access pattern depends on input data")
	}
}

func TestRecSortPermutedSorts(t *testing.T) {
	// REC-SORT applied to an already-shuffled input must fully sort it.
	for _, n := range []int{10, 100, 1000, 4096} {
		sp := mem.NewSpace()
		in := mkInput(sp, uint64(n)+1, n)
		// Shuffle non-obliviously (REC-SORT only needs *some* random order).
		src := prng.New(99)
		perm := src.Perm(n)
		sh := mem.Alloc[obliv.Elem](sp, n)
		for i, j := range perm {
			sh.Data()[i] = in.Data()[j]
		}
		p := Params{SampleRate: 4, PivotSpacing: 16, Gamma: 4}
		out, stats := RecSortPermuted(forkjoin.Serial(), sp, sh, 5, p)
		if stats.Lost != 0 {
			t.Fatalf("n=%d: REC-SORT lost %d", n, stats.Lost)
		}
		if out.Len() != n {
			t.Fatalf("n=%d: output length %d", n, out.Len())
		}
		for i := 1; i < n; i++ {
			if out.Data()[i-1].Key > out.Data()[i].Key {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}

func TestSortPracticalSortsAndPreserves(t *testing.T) {
	for _, n := range []int{1, 2, 50, 300, 2000} {
		sp := mem.NewSpace()
		in := mkInput(sp, uint64(n)+7, n)
		want := make([]uint64, n)
		for i, e := range in.Data() {
			want[i] = e.Key
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		out, stats := SortPractical(forkjoin.Serial(), sp, in, 13, Params{})
		if stats.Attempts > 8 {
			t.Fatalf("n=%d: %d attempts", n, stats.Attempts)
		}
		if out.Len() != n {
			t.Fatalf("n=%d: len %d", n, out.Len())
		}
		for i, e := range out.Data() {
			if e.Key != want[i] {
				t.Fatalf("n=%d: out[%d] = %d, want %d", n, i, e.Key, want[i])
			}
			if e.Val != e.Key*3 {
				t.Fatalf("n=%d: payload lost at %d", n, i)
			}
		}
	}
}

func TestSortWithInsecurePlug(t *testing.T) {
	// SortWith using a trivial comparison sort as the "SPMS" stage.
	const n = 300
	sp := mem.NewSpace()
	in := mkInput(sp, 21, n)
	want := make([]uint64, n)
	for i, e := range in.Data() {
		want[i] = e.Key
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	insecure := func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]) {
		// A deliberately simple comparison sort over instrumented memory.
		d := a.Data()
		sort.Slice(d, func(i, j int) bool { return d[i].Key < d[j].Key })
		c.Op(int64(n)) // nominal cost
	}
	out, _ := SortWith(forkjoin.Serial(), sp, in, 3, Params{}, insecure)
	for i, e := range out.Data() {
		if e.Key != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, e.Key, want[i])
		}
	}
}

func TestSortKeys(t *testing.T) {
	keys := []uint64{42, 7, 99, 1, 65, 13, 27, 88, 54, 31}
	sp := mem.NewSpace()
	got := SortKeys(forkjoin.Serial(), sp, keys, 1, Params{})
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSortPracticalParallelMatchesMetered(t *testing.T) {
	const n = 800
	mk := func() (*mem.Space, *mem.Array[obliv.Elem]) {
		sp := mem.NewSpace()
		return sp, mkInput(sp, 31, n)
	}
	sp1, in1 := mk()
	out1, _ := SortPractical(forkjoin.Serial(), sp1, in1, 17, Params{})
	sp2, in2 := mk()
	var out2 *mem.Array[obliv.Elem]
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		out2, _ = SortPractical(c, sp2, in2, 17, Params{})
	})
	if out1.Len() != out2.Len() {
		t.Fatalf("length mismatch %d vs %d", out1.Len(), out2.Len())
	}
	for i := range out1.Data() {
		if out1.Data()[i].Key != out2.Data()[i].Key {
			t.Fatalf("parallel/serial sort mismatch at %d", i)
		}
	}
}

func TestORBAWorkScalesNearLinearithmic(t *testing.T) {
	// Work(2n)/Work(n) should be ~2·(log 2n / log n)·(loglog factor) —
	// bounded well below 3 at these sizes, and above 1.8.
	work := func(n int) int64 {
		sp := mem.NewSpace()
		in := mkInput(sp, 1, n)
		p := ParamsForN(n)
		tape := prng.NewTape(2, TapeLen(n, p))
		m := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) {
			RecORBA(c, sp, in, tape, p)
		})
		return m.Work
	}
	w1, w2 := work(1<<10), work(1<<11)
	ratio := float64(w2) / float64(w1)
	if ratio < 1.6 || ratio > 3.2 {
		t.Fatalf("ORBA work doubling ratio %.2f outside [1.6, 3.2]", ratio)
	}
}

func TestORBASpanPolylog(t *testing.T) {
	span := func(n int) int64 {
		sp := mem.NewSpace()
		in := mkInput(sp, 1, n)
		p := ParamsForN(n)
		tape := prng.NewTape(2, TapeLen(n, p))
		m := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) {
			RecORBA(c, sp, in, tape, p)
		})
		return m.Span
	}
	s1, s2 := span(1<<9), span(1<<12)
	// 8x the input should grow span by far less than 8x.
	if float64(s2) > 3.0*float64(s1) {
		t.Fatalf("ORBA span grows too fast: %d -> %d", s1, s2)
	}
}

// --- helpers ---

func traceChi(counts []int64) (float64, int) {
	k := len(counts)
	var total int64
	for _, c := range counts {
		total += c
	}
	if k < 2 || total == 0 {
		return 0, 0
	}
	exp := float64(total) / float64(k)
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		stat += d * d / exp
	}
	return stat, k - 1
}

func critChi(dof int) float64 {
	// Wilson–Hilferty at p≈0.001 (same as trace.CriticalValue999).
	if dof <= 0 {
		return 0
	}
	k := float64(dof)
	z := 3.0902
	t := 1 - 2/(9*k) + z*sqrt(2/(9*k))
	return k * t * t * t
}

func sqrt(x float64) float64 {
	g := x
	for i := 0; i < 40; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}
