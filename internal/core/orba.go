package core

import (
	"sync/atomic"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/matrix"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// BinsResult is the output of an oblivious random bin assignment: Beta bins
// of Z slots each, concatenated in Bins; real elements of bin b carry a
// label whose value is b. Lost counts real elements dropped by bin
// overflow — the negligible-probability failure event of Theorem C.1,
// reported for diagnostics (read outside the adversary's view).
type BinsResult struct {
	Bins *mem.Array[obliv.Elem]
	Beta int
	Z    int
	Lost int
}

// setupBins pads the input to β bins of Z slots, each half filled, and
// assigns element i the random label tape.At(i) (its target bin, stored in
// Lbl; Key/Val/Aux are preserved). Returns the bin buffer, β, and the
// label width.
func setupBins(c *forkjoin.Ctx, sp *mem.Space, in *mem.Array[obliv.Elem], tape *prng.Tape, p Params) (*mem.Array[obliv.Elem], int, int) {
	n := in.Len()
	half := p.Z / 2
	beta := obliv.NextPow2((n + half - 1) / half)
	labelBits := obliv.Log2(beta)
	buf := mem.Alloc[obliv.Elem](sp, beta*p.Z)
	forkjoin.ParallelRange(c, 0, beta*p.Z, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for slot := lo; slot < hi; slot++ {
			b := slot / p.Z
			k := slot % p.Z
			i := b*half + k
			var e obliv.Elem // filler by default
			if k < half && i < n {
				e = in.Get(c, i)
				e.Kind = obliv.Real
				e.Lbl = tape.At(i) & uint64(beta-1)
			}
			buf.Set(c, slot, e)
		}
	})
	return buf, beta, labelBits
}

// RecORBA is the paper's REC-ORBA (§D.1): the cache-agnostic, binary
// fork-join implementation of oblivious random bin assignment. Each real
// input element is routed to the uniformly random bin named by its tape
// word. Costs (Lemma 3.1, with the practical bitonic instantiation of the
// small sorts): O(n log n · log log n) work, O(log n · polyloglog) span,
// O((n/B)·log_M n) cache misses for M = Ω(log^{1+ε} n).
//
// The tape must provide at least in.Len() words; with the tape fixed, the
// access pattern is a deterministic function of (n, params) — the property
// the obliviousness tests assert.
func RecORBA(c *forkjoin.Ctx, sp *mem.Space, in *mem.Array[obliv.Elem], tape *prng.Tape, p Params) BinsResult {
	p = p.normalized(in.Len())
	buf, beta, labelBits := setupBins(c, sp, in, tape, p)
	scratch := mem.Alloc[obliv.Elem](sp, beta*p.Z)
	var lost atomic.Int64
	recORBA(c, sp, buf, scratch, 0, beta, 0, labelBits, p, &lost)
	return BinsResult{Bins: buf, Beta: beta, Z: p.Z, Lost: int(lost.Load())}
}

// recORBA distributes the β bins at bin offset off of buf by label bits
// [s, s+log β), in place.
func recORBA(c *forkjoin.Ctx, sp *mem.Space, buf, scratch *mem.Array[obliv.Elem], off, beta, s, labelBits int, p Params, lost *atomic.Int64) {
	if beta <= 1 {
		return
	}
	region := buf.View(off*p.Z, beta*p.Z)
	bits := obliv.Log2(beta)
	if beta <= p.Gamma {
		groupOf := func(e obliv.Elem) uint64 { return digit(e.Lbl, labelBits, s, bits) }
		// BinPlace copies its input to internal scratch first, so output
		// may alias input.
		l := obliv.BinPlace(c, sp, region, region, beta, p.Z, groupOf, p.Sorter)
		if l > 0 {
			lost.Add(int64(l))
		}
		return
	}

	k := bits
	b1 := 1 << uint((k+1)/2) // √β rounded up to a power of two
	b2 := beta / b1

	// Phase 1: β1 subproblems of β2 consecutive bins, consuming the next
	// log β2 label bits.
	forkjoin.ParallelFor(c, 0, b1, 1, func(c *forkjoin.Ctx, j int) {
		recORBA(c, sp, buf, scratch, off+j*b2, b2, s, labelBits, p, lost)
	})

	// Transpose the β1×β2 matrix of bins so that bins agreeing on the
	// consumed bits become consecutive.
	sregion := scratch.View(off*p.Z, beta*p.Z)
	matrix.TransposeBlocks(c, sregion, region, b1, b2, p.Z)
	mem.CopyPar(c, region, 0, sregion, 0, beta*p.Z)

	// Phase 2: β2 subproblems of β1 bins, consuming the remaining bits.
	forkjoin.ParallelFor(c, 0, b2, 1, func(c *forkjoin.Ctx, i int) {
		recORBA(c, sp, buf, scratch, off+i*b1, b1, s+obliv.Log2(b2), labelBits, p, lost)
	})
}

// MetaORBA is the layer-by-layer meta-algorithm (§C.2, Theorem C.1): a
// γ-way butterfly of log_γ β layers, each layer obliviously distributing
// groups of γ bins by the next log γ label bits. It computes exactly the
// same functionality as RecORBA (same tape → same final bins) but without
// the cache-friendly recursion; the ORBA benchmarks compare the two.
func MetaORBA(c *forkjoin.Ctx, sp *mem.Space, in *mem.Array[obliv.Elem], tape *prng.Tape, p Params) BinsResult {
	p = p.normalized(in.Len())
	buf, beta, labelBits := setupBins(c, sp, in, tape, p)
	var lost atomic.Int64

	gammaBits := obliv.Log2(p.Gamma)
	for s := 0; s < labelBits; {
		cb := gammaBits
		if s+cb > labelBits {
			cb = labelBits - s
		}
		layerGamma := 1 << uint(cb)
		stride := 1 << uint(labelBits-s-cb)
		hiCount := 1 << uint(s)
		groups := hiCount * stride
		sCur := s
		forkjoin.ParallelFor(c, 0, groups, 1, func(c *forkjoin.Ctx, g int) {
			hi := g / stride
			lo := g % stride
			// Gather the γ strided bins into contiguous scratch.
			w := mem.Alloc[obliv.Elem](sp, layerGamma*p.Z)
			for kk := 0; kk < layerGamma; kk++ {
				src := hi*(stride*layerGamma) + kk*stride + lo
				mem.CopyPar(c, w, kk*p.Z, buf, src*p.Z, p.Z)
			}
			groupOf := func(e obliv.Elem) uint64 { return digit(e.Lbl, labelBits, sCur, cb) }
			l := obliv.BinPlace(c, sp, w, w, layerGamma, p.Z, groupOf, p.Sorter)
			if l > 0 {
				lost.Add(int64(l))
			}
			// Scatter back.
			for kk := 0; kk < layerGamma; kk++ {
				dst := hi*(stride*layerGamma) + kk*stride + lo
				mem.CopyPar(c, buf, dst*p.Z, w, kk*p.Z, p.Z)
			}
		})
		s += cb
	}
	return BinsResult{Bins: buf, Beta: beta, Z: p.Z, Lost: int(lost.Load())}
}

// BinLoads returns the number of real elements in each bin (diagnostics,
// raw access).
func (r BinsResult) BinLoads() []int {
	loads := make([]int, r.Beta)
	data := r.Bins.Data()
	for b := 0; b < r.Beta; b++ {
		for k := 0; k < r.Z; k++ {
			if data[b*r.Z+k].Kind == obliv.Real {
				loads[b]++
			}
		}
	}
	return loads
}
