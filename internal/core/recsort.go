package core

import (
	"sync/atomic"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/matrix"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// RecSortStats reports diagnostics of a REC-SORT run.
type RecSortStats struct {
	// Pivots is the number of pivots selected (before power-of-two padding).
	Pivots int
	// Beta is the number of top-level regions (power of two).
	Beta int
	// Cap is the per-bin capacity used.
	Cap int
	// Lost counts elements dropped by bin-capacity overflow (the
	// negligible-probability event of §E.2's Chernoff analysis).
	Lost int
}

// RecSortPermuted sorts an array that has been randomly permuted, using the
// paper's REC-SORT (§E.2): a γ-way butterfly with the same recursive
// structure as REC-ORBA, where binning is decided by a precomputed sorted
// pivot set instead of random labels, bins carry revealed loads, and no
// filler padding is needed (the algorithm need not be data-oblivious — its
// access-pattern distribution is input-independent *because* the input was
// obliviously permuted first).
//
// Elements are ordered by Elem.Key. The returned array has length
// n − Lost; Lost is 0 except with negligible probability.
func RecSortPermuted(c *forkjoin.Ctx, sp *mem.Space, perm *mem.Array[obliv.Elem], seed uint64, p Params) (*mem.Array[obliv.Elem], RecSortStats) {
	n := perm.Len()
	p = p.normalized(n)
	var stats RecSortStats

	if n < 2 {
		out := mem.Alloc[obliv.Elem](sp, n)
		mem.CopyPar(c, out, 0, perm, 0, n)
		return out, stats
	}

	// selectPivots returns zero pivots for inputs too small to sample a
	// full spacing worth of elements; sortWhole handles those directly.
	pivots, npiv := selectPivots(c, sp, perm, seed, p)
	stats.Pivots = npiv
	if npiv == 0 {
		out := sortWhole(c, sp, perm, p)
		return out, stats
	}
	beta := pivots.Len() + 1 // power of two
	stats.Beta = beta

	chunk := (n + beta - 1) / beta
	capacity := obliv.NextPow2(p.BinCapFactor * chunk)
	stats.Cap = capacity

	// Distribute the permuted input into β initial bins of consecutive
	// chunks; loads are revealed throughout REC-SORT.
	buf := mem.Alloc[obliv.Elem](sp, beta*capacity)
	loads := mem.Alloc[uint64](sp, beta)
	forkjoin.ParallelFor(c, 0, beta, 1, func(c *forkjoin.Ctx, b int) {
		lo := b * chunk
		hi := min(lo+chunk, n)
		if lo > n {
			lo = n
		}
		if hi > lo {
			mem.CopyPar(c, buf, b*capacity, perm, lo, hi-lo)
		}
		loads.Set(c, b, uint64(max(0, hi-lo)))
	})

	scratch := mem.Alloc[obliv.Elem](sp, beta*capacity)
	scratchLoads := mem.Alloc[uint64](sp, beta)
	var lost atomic.Int64
	recSort(c, sp, buf, loads, scratch, scratchLoads, 0, beta, pivots, capacity, p, &lost)
	stats.Lost = int(lost.Load())

	// Concatenate bins by load into the output.
	offsets := mem.Alloc[uint64](sp, beta)
	mem.CopyPar(c, offsets, 0, loads, 0, beta)
	obliv.PrefixSumU64(c, sp, offsets, false)
	out := mem.Alloc[obliv.Elem](sp, n-stats.Lost)
	forkjoin.ParallelFor(c, 0, beta, 1, func(c *forkjoin.Ctx, b int) {
		off := int(offsets.Get(c, b))
		ld := int(loads.Get(c, b))
		if ld > 0 {
			mem.CopyPar(c, out, off, buf, b*capacity, ld)
		}
	})
	return out, stats
}

// sortWhole network-sorts the whole array (pow2-padded) and returns a
// compact sorted copy.
func sortWhole(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], p Params) *mem.Array[obliv.Elem] {
	n := a.Len()
	if n == 0 {
		return mem.Alloc[obliv.Elem](sp, 0)
	}
	w := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(n))
	mem.CopyPar(c, w, 0, a, 0, n)
	p.Sorter.Sort(c, sp, w, 0, w.Len(), sortKey)
	out := mem.Alloc[obliv.Elem](sp, n)
	mem.CopyPar(c, out, 0, w, 0, n)
	return out
}

// sortKey orders by the caller's Key with fillers last.
func sortKey(e obliv.Elem) uint64 {
	if e.Kind != obliv.Real {
		return obliv.InfKey
	}
	return e.Key
}

// selectPivots implements the pre-processing phase of §E.2: sample each
// element with probability 1/SampleRate, sort the sample with the network
// sorter, keep every PivotSpacing-th element, and pad the pivot array with
// +∞ so that (#pivots + 1) is a power of two. Returns the padded pivot
// array and the unpadded pivot count.
func selectPivots(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], seed uint64, p Params) (*mem.Array[uint64], int) {
	n := a.Len()
	src := prng.New(prng.Mix64(seed ^ 0x7069766f7473)) // "pivots"
	rate := uint64(max(1, p.SampleRate))
	// Mark sampled positions (RNG-dependent only).
	idx := make([]int, 0, n/int(rate)*2+8)
	for i := 0; i < n; i++ {
		if src.Uint64n(rate) == 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) < p.PivotSpacing {
		return nil, 0
	}
	// Gather and sort the sample.
	w := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(len(idx)))
	forkjoin.ParallelFor(c, 0, len(idx), 0, func(c *forkjoin.Ctx, k int) {
		e := a.Get(c, idx[k])
		w.Set(c, k, e)
	})
	p.Sorter.Sort(c, sp, w, 0, w.Len(), sortKey)

	npiv := len(idx) / p.PivotSpacing
	beta := obliv.NextPow2(npiv + 1)
	pv := mem.Alloc[uint64](sp, beta-1)
	forkjoin.ParallelFor(c, 0, beta-1, 0, func(c *forkjoin.Ctx, t int) {
		v := obliv.InfKey
		if t < npiv {
			v = w.Get(c, (t+1)*p.PivotSpacing-1).Key
		}
		pv.Set(c, t, v)
	})
	return pv, npiv
}

// recSort redistributes the β bins at bin offset off into β region bins
// defined by the β−1 entries of pivots, leaving every bin sorted. It is
// the REC-SORTγ recursion of §E.2.
func recSort(c *forkjoin.Ctx, sp *mem.Space, buf *mem.Array[obliv.Elem], loads *mem.Array[uint64], scratch *mem.Array[obliv.Elem], scratchLoads *mem.Array[uint64], off, beta int, pivots *mem.Array[uint64], capacity int, p Params, lost *atomic.Int64) {
	if beta <= 1 {
		// One region: just sort the single bin's content in place.
		ld := int(loads.Get(c, off))
		if ld > 1 {
			w := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(ld))
			mem.CopyPar(c, w, 0, buf, off*capacity, ld)
			p.Sorter.Sort(c, sp, w, 0, w.Len(), sortKey)
			mem.CopyPar(c, buf, off*capacity, w, 0, ld)
		}
		return
	}
	if beta <= p.Gamma {
		recSortBase(c, sp, buf, loads, off, beta, pivots, capacity, p, lost)
		return
	}
	k := obliv.Log2(beta)
	b1 := 1 << uint((k+1)/2)
	b2 := beta / b1

	// Coarse pivots: every b1-th global pivot (the boundaries between the
	// b2 coarse regions).
	cp := mem.Alloc[uint64](sp, b2-1)
	forkjoin.ParallelFor(c, 0, b2-1, 0, func(c *forkjoin.Ctx, t int) {
		cp.Set(c, t, pivots.Get(c, (t+1)*b1-1))
	})

	// Phase 1: each of the b1 partitions (b2 consecutive bins) distributes
	// its elements into b2 coarse-region bins.
	forkjoin.ParallelFor(c, 0, b1, 1, func(c *forkjoin.Ctx, j int) {
		recSort(c, sp, buf, loads, scratch, scratchLoads, off+j*b2, b2, cp, capacity, p, lost)
	})

	// Transpose the b1×b2 matrix of bins (and their loads) so each coarse
	// region's pieces become consecutive.
	region := buf.View(off*capacity, beta*capacity)
	sregion := scratch.View(off*capacity, beta*capacity)
	matrix.TransposeBlocks(c, sregion, region, b1, b2, capacity)
	mem.CopyPar(c, region, 0, sregion, 0, beta*capacity)
	lregion := loads.View(off, beta)
	slregion := scratchLoads.View(off, beta)
	matrix.Transpose(c, slregion, lregion, b1, b2)
	mem.CopyPar(c, lregion, 0, slregion, 0, beta)

	// Phase 2: each coarse region (b1 bins) distributes into its b1 fine
	// regions using the pivots interior to that region.
	forkjoin.ParallelFor(c, 0, b2, 1, func(c *forkjoin.Ctx, i int) {
		fp := pivots.View(i*b1, b1-1)
		recSort(c, sp, buf, loads, scratch, scratchLoads, off+i*b1, b1, fp, capacity, p, lost)
	})
}

// recSortBase gathers the ≤γ input bins, network-sorts them, and splits the
// sorted run into β region bins by binary search on the pivots.
func recSortBase(c *forkjoin.Ctx, sp *mem.Space, buf *mem.Array[obliv.Elem], loads *mem.Array[uint64], off, beta int, pivots *mem.Array[uint64], capacity int, p Params, lost *atomic.Int64) {
	// Per-bin output offsets in the gather buffer.
	offs := mem.Alloc[uint64](sp, beta)
	forkjoin.ParallelFor(c, 0, beta, 0, func(c *forkjoin.Ctx, b int) {
		offs.Set(c, b, loads.Get(c, off+b))
	})
	obliv.PrefixSumU64(c, sp, offs, false)
	last := int(offs.Get(c, beta-1)) + int(loads.Get(c, off+beta-1))
	total := last

	w := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(beta*capacity))
	forkjoin.ParallelFor(c, 0, beta, 1, func(c *forkjoin.Ctx, b int) {
		ld := int(loads.Get(c, off+b))
		if ld > 0 {
			mem.CopyPar(c, w, int(offs.Get(c, b)), buf, (off+b)*capacity, ld)
		}
	})
	p.Sorter.Sort(c, sp, w, 0, w.Len(), sortKey)

	// Split [0, total) into β regions: region t is (pivot[t-1], pivot[t]].
	forkjoin.ParallelFor(c, 0, beta, 1, func(c *forkjoin.Ctx, t int) {
		lo := 0
		if t > 0 {
			lo = upperBound(c, w, total, pivots.Get(c, t-1))
		}
		hi := total
		if t < beta-1 {
			hi = upperBound(c, w, total, pivots.Get(c, t))
		}
		ld := hi - lo
		if ld > capacity {
			lost.Add(int64(ld - capacity))
			ld = capacity
		}
		if ld > 0 {
			mem.CopyPar(c, buf, (off+t)*capacity, w, lo, ld)
		}
		loads.Set(c, off+t, uint64(ld))
	})
}

// upperBound returns the first index in w[0:total) whose Key exceeds v
// (instrumented binary search; the probes depend on revealed loads and the
// permuted data, which is fine for the non-oblivious REC-SORT).
func upperBound(c *forkjoin.Ctx, w *mem.Array[obliv.Elem], total int, v uint64) int {
	lo, hi := 0, total
	for lo < hi {
		mid := (lo + hi) / 2
		e := w.Get(c, mid)
		c.Op(1)
		if sortKey(e) > v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
