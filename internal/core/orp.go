package core

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// PermStats reports diagnostics of an oblivious random permutation run,
// gathered outside the adversary's view.
type PermStats struct {
	// Lost counts real elements dropped by ORBA bin overflow (the
	// negligible-probability failure event; callers that need exactness
	// retry with a fresh tape — see MustRandomPermutation).
	Lost int
	// MaxBinLoad is the largest bin occupancy observed.
	MaxBinLoad int
	// Beta and Z record the bin structure used.
	Beta, Z int
}

// TapeLen returns the number of random words RandomPermutation consumes for
// an input of length n under params p: one routing label per element plus
// one shuffle label per bin slot.
func TapeLen(n int, p Params) int {
	p = p.normalized(n)
	half := p.Z / 2
	beta := obliv.NextPow2((n + half - 1) / half)
	return n + beta*p.Z
}

// RandomPermutation obliviously applies a uniformly random permutation to
// in (§C.3, implemented with REC-ORBA per §D.2): route elements to random
// bins, obliviously shuffle within each bin by fresh random labels, then
// reveal only the bin loads while removing fillers. Key/Val/Aux payloads
// are preserved. The returned array has length n − Lost.
//
// With the tape fixed, the access pattern depends only on (n, params, tape)
// — in particular not on the input contents.
func RandomPermutation(c *forkjoin.Ctx, sp *mem.Space, in *mem.Array[obliv.Elem], tape *prng.Tape, p Params) (*mem.Array[obliv.Elem], PermStats) {
	n := in.Len()
	p = p.normalized(n)
	res := RecORBA(c, sp, in, tape, p)
	beta, z := res.Beta, res.Z
	buf := res.Bins

	// Within-bin oblivious shuffle: fresh tape labels, positional by slot,
	// then a network sort per bin keyed by label (fillers to the end).
	shuffleKey := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real {
			return obliv.InfKey
		}
		return e.Lbl
	}
	forkjoin.ParallelFor(c, 0, beta, 1, func(c *forkjoin.Ctx, b int) {
		for k := 0; k < z; k++ {
			e := buf.Get(c, b*z+k)
			e.Lbl = tape.At(n + b*z + k)
			buf.Set(c, b*z+k, e)
		}
		p.Sorter.Sort(c, sp, buf, b*z, z, shuffleKey)
	})

	// Reveal bin loads (simulatable: the loads depend only on the tape)
	// and compact the real elements into the output.
	loads := mem.Alloc[uint64](sp, beta)
	forkjoin.ParallelFor(c, 0, beta, 1, func(c *forkjoin.Ctx, b int) {
		cnt := uint64(0)
		for k := 0; k < z; k++ {
			if buf.Get(c, b*z+k).Kind == obliv.Real {
				cnt++
			}
		}
		loads.Set(c, b, cnt)
	})
	offsets := mem.Alloc[uint64](sp, beta)
	mem.CopyPar(c, offsets, 0, loads, 0, beta)
	obliv.PrefixSumU64(c, sp, offsets, false)

	total := n - res.Lost
	out := mem.Alloc[obliv.Elem](sp, total)
	forkjoin.ParallelFor(c, 0, beta, 1, func(c *forkjoin.Ctx, b int) {
		off := int(offsets.Get(c, b))
		cnt := int(loads.Get(c, b))
		for k := 0; k < cnt; k++ {
			e := buf.Get(c, b*z+k)
			e.Lbl = 0
			out.Set(c, off+k, e)
		}
	})

	stats := PermStats{Lost: res.Lost, Beta: beta, Z: z}
	for _, l := range res.BinLoads() {
		if l > stats.MaxBinLoad {
			stats.MaxBinLoad = l
		}
	}
	return out, stats
}

// MustRandomPermutation retries RandomPermutation with fresh tapes derived
// from seed until no element is lost (the per-attempt failure probability
// is negligible in n; a handful of attempts suffices at any size). It
// returns the permutation and the number of attempts used.
func MustRandomPermutation(c *forkjoin.Ctx, sp *mem.Space, in *mem.Array[obliv.Elem], seed uint64, p Params) (*mem.Array[obliv.Elem], int) {
	n := in.Len()
	p = p.normalized(n)
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			panic("core: random permutation failed 64 times; params far too tight")
		}
		tape := prng.NewTape(prng.Mix64(seed+uint64(attempt)*0x9e3779b9), TapeLen(n, p))
		out, stats := RandomPermutation(c, sp, in, tape, p)
		if stats.Lost == 0 {
			return out, attempt + 1
		}
	}
}
