package mem

import (
	"testing"

	"oblivmc/internal/forkjoin"
)

func TestAllocDistinctAddresses(t *testing.T) {
	s := NewSpace()
	a := Alloc[uint64](s, 100)
	b := Alloc[uint64](s, 100)
	if a.Base() == b.Base() {
		t.Fatal("arrays share a base address")
	}
	// Ranges must not overlap.
	if b.Base() < a.Base()+uint64(a.Len()) && a.Base() < b.Base()+uint64(b.Len()) {
		t.Fatal("address ranges overlap")
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	s := NewSpace()
	a := Alloc[int](s, 10)
	c := forkjoin.Serial()
	for i := 0; i < 10; i++ {
		a.Set(c, i, i*i)
	}
	for i := 0; i < 10; i++ {
		if got := a.Get(c, i); got != i*i {
			t.Fatalf("a[%d] = %d, want %d", i, got, i*i)
		}
	}
}

func TestSwap(t *testing.T) {
	s := NewSpace()
	a := FromSlice(s, []int{1, 2, 3})
	c := forkjoin.Serial()
	a.Swap(c, 0, 2)
	if a.Get(c, 0) != 3 || a.Get(c, 2) != 1 {
		t.Fatalf("swap failed: %v", a.Data())
	}
}

func TestViewAliases(t *testing.T) {
	s := NewSpace()
	a := FromSlice(s, []int{0, 1, 2, 3, 4, 5})
	v := a.View(2, 3)
	c := forkjoin.Serial()
	if v.Len() != 3 {
		t.Fatalf("view len = %d", v.Len())
	}
	if v.Get(c, 0) != 2 {
		t.Fatalf("view[0] = %d", v.Get(c, 0))
	}
	v.Set(c, 1, 99)
	if a.Get(c, 3) != 99 {
		t.Fatal("view write did not alias parent")
	}
	if v.Base() != a.Base()+2 {
		t.Fatal("view base address mismatch")
	}
}

func TestAccessesAreMetered(t *testing.T) {
	s := NewSpace()
	a := Alloc[uint64](s, 16)
	m := forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
		for i := 0; i < 16; i++ {
			a.Set(c, i, uint64(i))
		}
		for i := 0; i < 16; i++ {
			a.Get(c, i)
		}
	})
	if m.Writes != 16 || m.Reads != 16 {
		t.Fatalf("reads=%d writes=%d", m.Reads, m.Writes)
	}
	if m.MemOps != 32 {
		t.Fatalf("memops = %d", m.MemOps)
	}
}

func TestTraceSeesAddressesNotValues(t *testing.T) {
	s := NewSpace()
	a := Alloc[uint64](s, 8)
	run := func(vals []uint64) *forkjoin.Metrics {
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			for i, v := range vals {
				a.Set(c, i, v)
			}
		})
	}
	m1 := run([]uint64{1, 2, 3, 4, 5, 6, 7, 8})
	m2 := run([]uint64{8, 7, 6, 5, 4, 3, 2, 1})
	if !m1.Trace.Equal(m2.Trace) {
		t.Fatal("writing different values changed the trace")
	}
}

func TestCopyAndCopyPar(t *testing.T) {
	s := NewSpace()
	src := FromSlice(s, []int{10, 20, 30, 40, 50})
	dst := Alloc[int](s, 5)
	Copy(forkjoin.Serial(), dst, 0, src, 0, 5)
	for i := 0; i < 5; i++ {
		if dst.Data()[i] != src.Data()[i] {
			t.Fatalf("copy mismatch at %d", i)
		}
	}
	dst2 := Alloc[int](s, 5)
	forkjoin.RunParallel(2, func(c *forkjoin.Ctx) {
		CopyPar(c, dst2, 0, src, 0, 5)
	})
	for i := 0; i < 5; i++ {
		if dst2.Data()[i] != src.Data()[i] {
			t.Fatalf("par copy mismatch at %d", i)
		}
	}
}

func TestCopyOffsets(t *testing.T) {
	s := NewSpace()
	src := FromSlice(s, []int{1, 2, 3, 4, 5, 6})
	dst := Alloc[int](s, 6)
	Copy(forkjoin.Serial(), dst, 2, src, 3, 3)
	want := []int{0, 0, 4, 5, 6, 0}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("dst = %v, want %v", dst.Data(), want)
		}
	}
}

func TestFill(t *testing.T) {
	s := NewSpace()
	a := Alloc[uint64](s, 100)
	forkjoin.RunParallel(2, func(c *forkjoin.Ctx) { Fill(c, a, 7) })
	for i, v := range a.Data() {
		if v != 7 {
			t.Fatalf("a[%d] = %d", i, v)
		}
	}
}

func TestFromSliceCopies(t *testing.T) {
	s := NewSpace()
	orig := []int{1, 2, 3}
	a := FromSlice(s, orig)
	orig[0] = 99
	if a.Data()[0] != 1 {
		t.Fatal("FromSlice should copy, not alias")
	}
}

func TestConcurrentAlloc(t *testing.T) {
	s := NewSpace()
	bases := make([]uint64, 64)
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		forkjoin.ParallelFor(c, 0, 64, 1, func(c *forkjoin.Ctx, i int) {
			bases[i] = Alloc[byte](s, 10).Base()
		})
	})
	seen := map[uint64]bool{}
	for _, b := range bases {
		if seen[b] {
			t.Fatal("duplicate base address under concurrent allocation")
		}
		seen[b] = true
	}
}
