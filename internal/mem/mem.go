// Package mem provides instrumented arrays living in a flat, element-granular
// address space.
//
// Every algorithm in this module performs its memory traffic through
// Array.Get/Set so that the metered executor (internal/forkjoin) can count
// memory operations, drive the ideal-cache simulator, and record the access
// pattern that constitutes the adversary's view (§B of the paper). One array
// element occupies one address ("word"); the cache block size B is measured
// in elements (see DESIGN.md §5, deviation 5).
//
// In parallel (uninstrumented) mode Get/Set compile down to a nil check and
// a slice index.
package mem

import (
	"sync/atomic"

	"oblivmc/internal/forkjoin"
)

// addrAlign keeps distinct arrays on distinct cache-block boundaries for
// any simulated block size up to addrAlign.
const addrAlign = 1 << 12

// Space allocates non-overlapping address ranges. It is safe for concurrent
// allocation (parallel-mode algorithms may allocate scratch inside forked
// tasks). The pads keep the shared counter on its own cache line so
// allocating tasks contend only on the counter itself, not on whatever the
// runtime happens to place next to a small heap object.
type Space struct {
	_    [64]byte
	next atomic.Uint64
	_    [56]byte
}

// NewSpace returns an empty address space.
func NewSpace() *Space { return &Space{} }

// reserve claims n addresses and returns the base.
func (s *Space) reserve(n int) uint64 {
	sz := (uint64(n) + addrAlign - 1) &^ uint64(addrAlign-1)
	if sz == 0 {
		sz = addrAlign
	}
	return s.next.Add(sz) - sz
}

// Array is an instrumented, fixed-length array of T.
type Array[T any] struct {
	base uint64
	data []T
}

// Alloc allocates a zeroed array of n elements in s.
func Alloc[T any](s *Space, n int) *Array[T] {
	return &Array[T]{base: s.reserve(n), data: make([]T, n)}
}

// FromSlice allocates an array initialized with a copy of v. The copy is a
// harness operation (input loading) and is not instrumented.
func FromSlice[T any](s *Space, v []T) *Array[T] {
	a := Alloc[T](s, len(v))
	copy(a.data, v)
	return a
}

// Len returns the number of elements.
func (a *Array[T]) Len() int { return len(a.data) }

// Get reads element i, recording the access.
func (a *Array[T]) Get(c *forkjoin.Ctx, i int) T {
	c.Access(a.base+uint64(i), false)
	return a.data[i]
}

// Set writes element i, recording the access.
func (a *Array[T]) Set(c *forkjoin.Ctx, i int, v T) {
	c.Access(a.base+uint64(i), true)
	a.data[i] = v
}

// Swap exchanges elements i and j (two reads plus two writes).
func (a *Array[T]) Swap(c *forkjoin.Ctx, i, j int) {
	vi := a.Get(c, i)
	vj := a.Get(c, j)
	a.Set(c, i, vj)
	a.Set(c, j, vi)
}

// View returns an aliased subarray covering [lo, lo+n). Views share both
// backing store and addresses with the parent, which is what the recursive
// cache-agnostic algorithms need.
func (a *Array[T]) View(lo, n int) *Array[T] {
	return &Array[T]{base: a.base + uint64(lo), data: a.data[lo : lo+n]}
}

// Data exposes the raw backing slice without instrumentation. It exists for
// the harness (loading inputs, verifying outputs, collecting diagnostics
// outside the adversary's view); algorithm code must not use it.
func (a *Array[T]) Data() []T { return a.data }

// Base returns the first address of the array (used in tests).
func (a *Array[T]) Base() uint64 { return a.base }

// Copy copies n elements from src[slo:] to dst[dlo:], element by element,
// with instrumentation. The copy is sequential; callers needing parallelism
// wrap it in ParallelRange via CopyPar.
func Copy[T any](c *forkjoin.Ctx, dst *Array[T], dlo int, src *Array[T], slo, n int) {
	for k := 0; k < n; k++ {
		dst.Set(c, dlo+k, src.Get(c, slo+k))
	}
}

// CopyPar is a parallel instrumented copy.
func CopyPar[T any](c *forkjoin.Ctx, dst *Array[T], dlo int, src *Array[T], slo, n int) {
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for k := lo; k < hi; k++ {
			dst.Set(c, dlo+k, src.Get(c, slo+k))
		}
	})
}

// Fill sets every element of a to v, in parallel.
func Fill[T any](c *forkjoin.Ctx, a *Array[T], v T) {
	forkjoin.ParallelRange(c, 0, a.Len(), 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Set(c, i, v)
		}
	})
}
