// Package veb implements the van Emde Boas tree layout used by §4.2's
// first cache-complexity modification: storing each ORAM tree in vEB order
// makes a root-to-leaf path of length L cost O(log_B 2^L) cache misses
// instead of L.
//
// The layout maps BFS positions of a complete binary tree to a recursive
// order: a tree of height h is split into a top tree of height ⌈h/2⌉
// followed by its 2^⌈h/2⌉ bottom trees of height ⌊h/2⌋, each laid out
// recursively and contiguously.
package veb

// Layout precomputes the BFS→vEB position map for a complete binary tree.
type Layout struct {
	levels int
	pos    []int32 // BFS index -> vEB index
}

// New builds the layout for a complete binary tree with the given number
// of levels (so 2^levels − 1 nodes). levels must be in [1, 30].
func New(levels int) *Layout {
	if levels < 1 || levels > 30 {
		panic("veb: levels out of range")
	}
	n := (1 << levels) - 1
	l := &Layout{levels: levels, pos: make([]int32, n)}
	next := int32(0)
	l.build(0, levels, &next)
	return l
}

// build assigns vEB positions to the height-h subtree rooted at BFS index
// root.
func (l *Layout) build(root, h int, next *int32) {
	if h == 1 {
		l.pos[root] = *next
		*next++
		return
	}
	hTop := h / 2
	hBot := h - hTop
	// Top tree: the first hTop levels below root.
	l.build(root, hTop, next)
	// Bottom trees: rooted at the 2^hTop descendants at relative depth
	// hTop; BFS index of the k-th is (root+1)<<hTop - 1 + k.
	cnt := 1 << hTop
	base := (root+1)<<hTop - 1
	for k := 0; k < cnt; k++ {
		l.build(base+k, hBot, next)
	}
}

// Levels returns the number of tree levels.
func (l *Layout) Levels() int { return l.levels }

// Nodes returns the node count 2^levels − 1.
func (l *Layout) Nodes() int { return len(l.pos) }

// Pos maps a BFS index (root = 0, children 2i+1, 2i+2) to its vEB
// position.
func (l *Layout) Pos(bfs int) int { return int(l.pos[bfs]) }

// PathBFS returns the BFS indices of the root-to-leaf path for a leaf
// number in [0, 2^(levels-1)).
func (l *Layout) PathBFS(leaf int) []int {
	out := make([]int, l.levels)
	idx := 0
	for d := 0; d < l.levels; d++ {
		out[d] = idx
		if d == l.levels-1 {
			break
		}
		bit := (leaf >> (l.levels - 2 - d)) & 1
		idx = 2*idx + 1 + bit
	}
	return out
}

// PathPos returns the vEB positions of the root-to-leaf path.
func (l *Layout) PathPos(leaf int) []int {
	bfs := l.PathBFS(leaf)
	out := make([]int, len(bfs))
	for i, b := range bfs {
		out[i] = l.Pos(b)
	}
	return out
}
