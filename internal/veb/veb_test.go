package veb

import "testing"

func TestBijection(t *testing.T) {
	for _, levels := range []int{1, 2, 3, 5, 8, 12} {
		l := New(levels)
		n := l.Nodes()
		if n != (1<<levels)-1 {
			t.Fatalf("levels=%d: nodes=%d", levels, n)
		}
		seen := make([]bool, n)
		for bfs := 0; bfs < n; bfs++ {
			p := l.Pos(bfs)
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("levels=%d: Pos(%d)=%d not a bijection", levels, bfs, p)
			}
			seen[p] = true
		}
	}
}

func TestSmallLayouts(t *testing.T) {
	// levels=2: root, then its two children — vEB = BFS here.
	l := New(2)
	if l.Pos(0) != 0 || l.Pos(1) != 1 || l.Pos(2) != 2 {
		t.Fatalf("levels=2 layout: %d %d %d", l.Pos(0), l.Pos(1), l.Pos(2))
	}
	// levels=3: top tree of height 1 (wait: hTop = 1), bottoms of height 2.
	// Root first, then left child's subtree, then right child's subtree.
	l = New(3)
	if l.Pos(0) != 0 {
		t.Fatal("root must be first")
	}
	if l.Pos(1) != 1 || l.Pos(3) != 2 || l.Pos(4) != 3 {
		t.Fatalf("left subtree misplaced: %d %d %d", l.Pos(1), l.Pos(3), l.Pos(4))
	}
	if l.Pos(2) != 4 || l.Pos(5) != 5 || l.Pos(6) != 6 {
		t.Fatalf("right subtree misplaced: %d %d %d", l.Pos(2), l.Pos(5), l.Pos(6))
	}
}

func TestPathBFS(t *testing.T) {
	l := New(4)
	// Leaf 0: all-left path.
	p := l.PathBFS(0)
	want := []int{0, 1, 3, 7}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("leaf 0 path %v, want %v", p, want)
		}
	}
	// Leaf 7 (all-right).
	p = l.PathBFS(7)
	want = []int{0, 2, 6, 14}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("leaf 7 path %v, want %v", p, want)
		}
	}
}

func TestPathEndsAtCorrectLeaf(t *testing.T) {
	l := New(6)
	leaves := 1 << 5
	for leaf := 0; leaf < leaves; leaf++ {
		p := l.PathBFS(leaf)
		if len(p) != 6 {
			t.Fatalf("path length %d", len(p))
		}
		wantLeafBFS := (1 << 5) - 1 + leaf
		if p[5] != wantLeafBFS {
			t.Fatalf("leaf %d path ends at %d, want %d", leaf, p[5], wantLeafBFS)
		}
		// Consecutive entries must be parent/child.
		for i := 1; i < len(p); i++ {
			if (p[i]-1)/2 != p[i-1] {
				t.Fatalf("path %v not a root-leaf chain", p)
			}
		}
	}
}

func TestVEBLocalityBeatsBFS(t *testing.T) {
	// With block size B, a root-leaf path in vEB order should touch fewer
	// distinct blocks than in BFS order for deep trees.
	const levels = 16
	const B = 64
	l := New(levels)
	distinct := func(positions []int) int {
		blocks := map[int]bool{}
		for _, p := range positions {
			blocks[p/B] = true
		}
		return len(blocks)
	}
	totalVEB, totalBFS := 0, 0
	for leaf := 0; leaf < 1<<(levels-1); leaf += 997 {
		bfs := l.PathBFS(leaf)
		pos := make([]int, len(bfs))
		for i, b := range bfs {
			pos[i] = l.Pos(b)
		}
		totalVEB += distinct(pos)
		totalBFS += distinct(bfs)
	}
	if totalVEB >= totalBFS {
		t.Fatalf("vEB locality not better: %d vs %d blocks", totalVEB, totalBFS)
	}
}
