// Package oram implements the large-space oblivious simulation substrate of
// §4.2 (Theorem 4.2): a batched, recursive tree ORAM in the style of
// Circuit OPRAM [CCS17], adapted per DESIGN.md deviation 3.
//
// Structure: logical space s = 2^D words. A small flat oblivious map holds
// the position labels for the first tree level; recursion levels
// d = dStart..D-1 are binary trees whose entries store the (packed) leaf
// labels of their two children prefixes at level d+1; level D is the data
// tree. Every tree is stored in van Emde Boas order (§4.2 modification 1),
// so a path of length L costs O(log_B 2^L) cache misses.
//
// A batch of p requests is processed level by level: per level the
// requested prefixes are obliviously deduplicated (sort + propagate),
// exactly p root-to-leaf paths are read (duplicates and padding read
// random dummy paths), fetched entries are re-planted into a fixed-size
// stash under fresh PRF labels, labels are multicast to duplicate
// requesters by send-receive, and evictFactor·p deterministic
// reverse-lexicographic paths are evicted per tree with an oblivious
// greedy placement built on bin placement (§C.1).
//
// Known deviations (documented in DESIGN.md): eviction is Path-ORAM-style
// greedy rather than Circuit ORAM's single-scan eviction; fresh labels
// come from a PRF-style mixer rather than true randomness; stash occupancy
// is monitored empirically (Stats) rather than proven.
//
// Per batch: O(p·log²s) work shape (independent of s up to log factors),
// Õ(log s·log p) span, and path reads touching O(log_B s) blocks each.
package oram

import (
	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
	"oblivmc/internal/veb"
)

// Options configures an OPRAM.
type Options struct {
	// BucketCap is the bucket capacity Z (default 4).
	BucketCap int
	// StashCap is the per-tree stash capacity (default 3·batch + 32).
	StashCap int
	// EvictFactor is the number of eviction paths per fetched path
	// (default 2).
	EvictFactor int
	// Seed drives label generation and initialization.
	Seed uint64
	// Sorter is the oblivious sorter (default cache-agnostic bitonic).
	// It must support the key-schedule seam (obliv.ScheduledSorter):
	// the PRAM bulk steps underneath route through it.
	Sorter obliv.ScheduledSorter
}

func (o Options) withDefaults(batch int) Options {
	if o.BucketCap == 0 {
		o.BucketCap = 4
	}
	if o.StashCap == 0 {
		o.StashCap = 3*batch + 32
	}
	if o.EvictFactor == 0 {
		o.EvictFactor = 2
	}
	if o.Sorter == nil {
		o.Sorter = bitonic.CacheAgnostic{}
	}
	return o
}

// Req is one logical memory request.
type Req struct {
	Addr  uint64
	Write bool
	Val   uint64
}

// Stats carries diagnostics read outside the adversary's view.
type Stats struct {
	// StashMax is the maximum stash occupancy observed across trees.
	StashMax int
	// Overflows counts stash-capacity overflow events (entries dropped —
	// the negligible-probability failure; must be 0 in a healthy run).
	Overflows int
	// Misses counts fetches that failed to find their entry (must be 0).
	Misses int
	// Batches counts processed batches.
	Batches int
}

// tree is one recursion level's bucket tree.
type tree struct {
	level   int // entries 2^level, labels in [0, 2^level)
	layout  *veb.Layout
	buckets *mem.Array[obliv.Elem] // nodes × Z, vEB order
	stash   *mem.Array[obliv.Elem]
	evCtr   uint64 // reverse-lexicographic eviction counter
}

// OPRAM is a batched oblivious RAM over 2^D words.
type OPRAM struct {
	d      int // log2 of the logical space
	batch  int // p: requests per batch
	dStart int // first tree level; levels < dStart live in the flat base
	opt    Options
	base   *mem.Array[uint64] // flat labels for level dStart (size 2^dStart)
	trees  []*tree            // levels dStart..D
	flat   *mem.Array[uint64] // degenerate small-space mode: plain values
	stats  Stats
	ctr    uint64 // batch counter (PRF input)
}

// New builds an OPRAM over 2^dLog words serving batches of exactly batch
// requests, initialized to all-zero memory.
func New(c *forkjoin.Ctx, sp *mem.Space, dLog, batch int, opt Options) *OPRAM {
	if dLog < 1 || dLog > 26 {
		panic("oram: dLog out of range")
	}
	if batch < 1 {
		panic("oram: batch must be positive")
	}
	opt = opt.withDefaults(batch)
	o := &OPRAM{d: dLog, batch: batch, opt: opt}

	// dStart: smallest level whose entry count exceeds ~2p.
	o.dStart = 1
	for (1 << o.dStart) <= 2*batch {
		o.dStart++
	}
	if o.dStart >= dLog {
		// Degenerate: the whole space is small; use a flat oblivious array.
		o.flat = mem.Alloc[uint64](sp, 1<<dLog)
		return o
	}

	src := prng.New(prng.Mix64(opt.Seed ^ 0x6f72616d))
	// Initial labels per level: a random permutation, so placements are
	// collision-free and each first access reveals a uniform leaf.
	labels := make([][]uint32, dLog+1)
	for d := o.dStart; d <= dLog; d++ {
		perm := src.Perm(1 << d)
		labels[d] = make([]uint32, 1<<d)
		for q, l := range perm {
			labels[d][q] = uint32(l)
		}
	}

	// Flat base: labels of level dStart.
	o.base = mem.Alloc[uint64](sp, 1<<o.dStart)
	for q := 0; q < 1<<o.dStart; q++ {
		o.base.Data()[q] = uint64(labels[o.dStart][q])
	}

	// Trees for levels dStart..D. Entry q of level d < D stores the packed
	// labels of prefixes 2q, 2q+1 at level d+1; entry q of level D stores
	// the data word (zero).
	for d := o.dStart; d <= dLog; d++ {
		t := &tree{level: d, layout: veb.New(d + 1)}
		t.buckets = mem.Alloc[obliv.Elem](sp, t.layout.Nodes()*opt.BucketCap)
		t.stash = mem.Alloc[obliv.Elem](sp, opt.StashCap)
		// Place entry q directly in its leaf bucket (permutation labels
		// are collision-free, and leaves hold one entry at capacity >= 1).
		for q := 0; q < 1<<d; q++ {
			leaf := int(labels[d][q])
			var val uint64
			if d < dLog {
				val = packLabels(labels[d+1][2*q], labels[d+1][2*q+1])
			}
			bfs := leafBFS(d+1, leaf)
			pos := t.layout.Pos(bfs) * opt.BucketCap
			t.buckets.Data()[pos] = obliv.Elem{
				Key: uint64(q), Val: val, Aux: uint64(leaf), Kind: obliv.Real,
			}
		}
		o.trees = append(o.trees, t)
	}
	return o
}

func packLabels(l0, l1 uint32) uint64 { return uint64(l0)<<32 | uint64(l1) }

func unpackLabel(v uint64, bit uint64) uint32 {
	if bit == 0 {
		return uint32(v >> 32)
	}
	return uint32(v & 0xffffffff)
}

func setLabel(v uint64, bit uint64, l uint32) uint64 {
	if bit == 0 {
		return uint64(l)<<32 | (v & 0xffffffff)
	}
	return (v &^ uint64(0xffffffff)) | uint64(l)
}

// leafBFS returns the BFS index of leaf number `leaf` in a tree with the
// given number of levels.
func leafBFS(levels, leaf int) int {
	return (1 << (levels - 1)) - 1 + leaf
}

// freshLabel derives the replacement label for (batch, level, prefix) —
// a PRF-style mixer so duplicate requesters agree without coordination.
func (o *OPRAM) freshLabel(level int, prefix uint64) uint32 {
	h := prng.Mix64(o.opt.Seed ^ o.ctr<<32 ^ uint64(level)<<56 ^ prefix*0x9e3779b97f4a7c15)
	return uint32(h & uint64((1<<level)-1))
}

// Stats returns the diagnostics snapshot.
func (o *OPRAM) Stats() Stats { return o.stats }

// Space returns the logical space in words.
func (o *OPRAM) Space() int { return 1 << o.d }

// Batch returns the fixed batch size p.
func (o *OPRAM) Batch() int { return o.batch }
