package oram

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/pram"
	"oblivmc/internal/prng"
)

// dummyKey marks padded / duplicate requests at a level.
const dummyKey = uint64(1) << 50

// perReq is the per-request walking state of a batch.
type perReq struct {
	addr   uint64
	real   bool
	write  bool
	wval   uint64
	curLbl uint32 // label for the current level (learned from the parent)
	uniq   bool   // first occurrence of this level's prefix
	winW   bool   // resolved winning write (data level)
	winV   uint64
	out    uint64 // result value
}

// Access processes one batch of at most Batch() requests and returns the
// read values (for writes, the previous value) in request order. The batch
// is padded internally to exactly Batch() requests.
func (o *OPRAM) Access(c *forkjoin.Ctx, sp *mem.Space, reqs []Req) []uint64 {
	p := o.batch
	if len(reqs) > p {
		panic("oram: batch too large")
	}
	o.ctr++
	o.stats.Batches++

	if o.flat != nil {
		return o.accessFlat(c, sp, reqs)
	}

	state := make([]perReq, p)
	for i := range state {
		if i < len(reqs) {
			state[i] = perReq{addr: reqs[i].Addr, real: true, write: reqs[i].Write, wval: reqs[i].Val}
			if reqs[i].Addr >= uint64(o.Space()) {
				panic("oram: address out of range")
			}
		}
	}

	// Flat base level: labels for the first tree level.
	dStart := o.dStart
	addrs := mem.Alloc[uint64](sp, p)
	forkjoin.ParallelFor(c, 0, p, 0, func(c *forkjoin.Ctx, i int) {
		a := dummyKey + uint64(i)
		if state[i].real {
			a = state[i].addr >> (o.d - dStart)
		}
		addrs.Set(c, i, a)
	})
	got := pram.Gather(c, sp, o.base, addrs, o.opt.Sorter)
	upd := mem.Alloc[obliv.Elem](sp, p)
	forkjoin.ParallelFor(c, 0, p, 0, func(c *forkjoin.Ctx, i int) {
		e := obliv.Elem{Kind: obliv.Filler, Aux: uint64(i)}
		g := got.Get(c, i)
		c.Op(1)
		if state[i].real && g.Kind == obliv.Real {
			q := state[i].addr >> (o.d - dStart)
			state[i].curLbl = uint32(g.Val)
			e = obliv.Elem{Key: q, Val: uint64(o.freshLabel(dStart, q)), Aux: uint64(i), Kind: obliv.Real}
		}
		upd.Set(c, i, e)
	})
	pram.ScatterResolve(c, sp, o.base, upd, o.opt.Sorter)

	// Walk the trees.
	for _, t := range o.trees {
		o.levelAccess(c, sp, t, state)
	}

	out := make([]uint64, len(reqs))
	for i := range out {
		out[i] = state[i].out
	}
	return out
}

// accessFlat serves the degenerate small-space mode with one oblivious
// gather + one conflict-resolved scatter.
func (o *OPRAM) accessFlat(c *forkjoin.Ctx, sp *mem.Space, reqs []Req) []uint64 {
	p := o.batch
	addrs := mem.Alloc[uint64](sp, p)
	wr := mem.Alloc[obliv.Elem](sp, p)
	forkjoin.ParallelFor(c, 0, p, 0, func(c *forkjoin.Ctx, i int) {
		a := uint64(o.Space()) + uint64(i)
		e := obliv.Elem{Kind: obliv.Filler, Aux: uint64(i)}
		if i < len(reqs) {
			a = reqs[i].Addr
			if reqs[i].Write {
				e = obliv.Elem{Key: a, Val: reqs[i].Val, Aux: uint64(i), Kind: obliv.Real}
			}
		}
		addrs.Set(c, i, a)
		wr.Set(c, i, e)
	})
	got := pram.Gather(c, sp, o.flat, addrs, o.opt.Sorter)
	pram.ScatterResolve(c, sp, o.flat, wr, o.opt.Sorter)
	out := make([]uint64, len(reqs))
	for i := range out {
		out[i] = got.Data()[i].Val
	}
	return out
}

// levelAccess performs the fetch + re-plant + multicast + evict cycle for
// one tree level.
func (o *OPRAM) levelAccess(c *forkjoin.Ctx, sp *mem.Space, t *tree, state []perReq) {
	p := o.batch
	d := t.level
	isData := d == o.d
	srt := o.opt.Sorter

	// Per-request prefix at this level.
	prefix := func(i int) uint64 {
		if !state[i].real {
			return dummyKey + uint64(i)
		}
		return state[i].addr >> (o.d - d)
	}

	// Oblivious dedup: sort (prefix, reqIdx), mark group-firsts, resolve
	// the group aggregate — at the data level the winning write, at
	// intermediate levels the OR-mask of child bits walked by the group
	// (distinct addresses may share this level's prefix but diverge at the
	// next; every walked child needs a fresh label) — then sort back to
	// request order.
	w := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(p))
	forkjoin.ParallelFor(c, 0, p, 0, func(c *forkjoin.Ctx, i int) {
		agg := uint64(0)
		if isData {
			if state[i].write {
				agg = 1<<63 | (state[i].wval &^ (uint64(1) << 63))
			}
		} else if state[i].real {
			bit := (state[i].addr >> (o.d - d - 1)) & 1
			agg = 1 << bit
		}
		w.Set(c, i, obliv.Elem{
			Key:  prefix(i)<<12 | uint64(i), // p < 2^12
			Val:  uint64(i),
			Aux:  prefix(i),
			Lbl:  agg,
			Kind: obliv.Real,
		})
	})
	if p >= 1<<12 {
		panic("oram: batch too large for dedup keys")
	}
	key1 := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real {
			return obliv.InfKey
		}
		return e.Key
	}
	srt.Sort(c, sp, w, 0, w.Len(), key1)
	groupOf := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real {
			return obliv.InfKey
		}
		return e.Aux
	}
	// Mark group-firsts.
	obliv.PropagateFirst(c, sp, w, groupOf,
		func(e obliv.Elem, i int) (uint64, bool) { return e.Val, e.Kind == obliv.Real },
		func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem {
			e.Mark = 0
			if e.Kind == obliv.Real && ok && v == e.Val {
				e.Mark = 1
			}
			return e
		})
	// Group aggregate: first-writer-wins (data level) or child-bit OR
	// (intermediate levels). Both combines are associative; the OR is also
	// commutative as AggregateSuffix requires, and first-writer-wins only
	// needs the suffix-at-group-first value, which the directional
	// combine below delivers.
	combine := func(x, y uint64) uint64 { return x | y }
	if isData {
		// AggregateSuffix scans the reversed array, so the second argument
		// is the element earlier in request order; preferring y makes the
		// FIRST writer win.
		combine = func(x, y uint64) uint64 {
			if y>>63 == 1 {
				return y
			}
			return x
		}
	}
	obliv.AggregateSuffix(c, sp, w, groupOf,
		func(e obliv.Elem) uint64 { return e.Lbl },
		combine,
		func(e obliv.Elem, i int, agg uint64) obliv.Elem {
			e.Lbl = agg
			return e
		})
	// Back to request order.
	key2 := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real {
			return obliv.InfKey
		}
		return e.Val
	}
	srt.Sort(c, sp, w, 0, w.Len(), key2)
	bitsMask := make([]uint64, p)
	forkjoin.ParallelFor(c, 0, p, 0, func(c *forkjoin.Ctx, i int) {
		e := w.Get(c, i)
		state[i].uniq = e.Mark == 1
		if isData {
			state[i].winW = e.Lbl>>63 == 1
			state[i].winV = e.Lbl &^ (uint64(1) << 63)
		} else {
			bitsMask[i] = e.Lbl
		}
	})

	// Fetch phase: one path per request (dummy path for non-unique or
	// padded requests), then stash scan, then re-plant under fresh labels.
	// Sequential over requests: paths share top buckets, and the stash
	// "first free slot" placement must observe earlier placements.
	childOut := make([]uint64, p)
	for i := 0; i < p; i++ {
		st := &state[i]
		doReal := st.real && st.uniq
		leaf := o.dummyLeaf(d, i)
		q := dummyKey
		if doReal {
			leaf = st.curLbl
			q = prefix(i)
		}
		found, ok := o.fetchPath(c, t, leaf, q)
		if doReal && !ok {
			o.stats.Misses++
		}
		// Update the fetched entry and re-plant it under the fresh label
		// assigned by the parent level. Dummy requests plant a filler so
		// the stash scan count is request-independent.
		plant := obliv.Elem{} // filler
		if doReal && ok {
			freshSelf := o.freshLabel(d, q)
			newVal := found.Val
			if isData {
				st.out = found.Val
				if st.winW {
					newVal = st.winV
				}
			} else {
				// Multicast the full OLD packed label pair; refresh every
				// child bit some group member walks (the PRF makes the
				// labels the child-level re-plants will use identical).
				childOut[i] = found.Val
				for bit := uint64(0); bit < 2; bit++ {
					if bitsMask[i]>>bit&1 == 1 {
						newVal = setLabel(newVal, bit, o.freshLabel(d+1, 2*q+bit))
					}
				}
			}
			plant = obliv.Elem{Key: q, Val: newVal, Aux: uint64(freshSelf), Kind: obliv.Real}
		}
		o.plantStash(c, t, plant)
	}

	// Multicast the fetched result to duplicate requesters.
	sources := mem.Alloc[obliv.Elem](sp, p)
	dests := mem.Alloc[obliv.Elem](sp, p)
	forkjoin.ParallelFor(c, 0, p, 0, func(c *forkjoin.Ctx, i int) {
		s := obliv.Elem{Kind: obliv.Filler}
		if state[i].real && state[i].uniq {
			v := childOut[i]
			if isData {
				v = state[i].out
			}
			s = obliv.Elem{Key: prefix(i), Val: v, Kind: obliv.Real}
		}
		dst := obliv.Elem{Key: prefix(i), Kind: obliv.Real}
		if !state[i].real {
			dst.Kind = obliv.Filler
		}
		sources.Set(c, i, s)
		dests.Set(c, i, dst)
	})
	routed := obliv.SendReceive(c, sp, sources, dests, srt)
	forkjoin.ParallelFor(c, 0, p, 0, func(c *forkjoin.Ctx, i int) {
		r := routed.Get(c, i)
		c.Op(1)
		if state[i].real && r.Kind == obliv.Real {
			if isData {
				state[i].out = r.Val
			} else {
				// Extract this request's child label from the packed pair.
				bit := (state[i].addr >> (o.d - d - 1)) & 1
				state[i].curLbl = unpackLabel(r.Val, bit)
			}
		}
	})

	// Maintenance: deterministic reverse-lexicographic evictions.
	for e := 0; e < o.opt.EvictFactor*p; e++ {
		leaf := reverseBits(t.evCtr, d)
		t.evCtr++
		o.evictPath(c, sp, t, uint32(leaf))
	}

	// Stash occupancy diagnostics (raw access).
	occ := 0
	for _, e := range t.stash.Data() {
		if e.Kind == obliv.Real {
			occ++
		}
	}
	if occ > o.stats.StashMax {
		o.stats.StashMax = occ
	}
}

// dummyLeaf derives a uniform dummy path for padded/duplicate requests.
func (o *OPRAM) dummyLeaf(level, i int) uint32 {
	h := prng.Mix64(o.opt.Seed ^ 0xd0d0 ^ o.ctr<<20 ^ uint64(level)<<8 ^ uint64(i))
	return uint32(h & uint64((1<<level)-1))
}

// fetchPath scans the root-to-leaf path for leaf and the stash, removing
// and returning the entry with key q. Every slot is read and rewritten so
// the pattern depends only on the (revealed, uniform) leaf.
func (o *OPRAM) fetchPath(c *forkjoin.Ctx, t *tree, leaf uint32, q uint64) (obliv.Elem, bool) {
	z := o.opt.BucketCap
	var found obliv.Elem
	ok := false
	for _, pos := range t.layout.PathPos(int(leaf)) {
		for s := 0; s < z; s++ {
			idx := pos*z + s
			e := t.buckets.Get(c, idx)
			c.Op(1)
			if e.Kind == obliv.Real && e.Key == q && !ok {
				found, ok = e, true
				e = obliv.Elem{}
			}
			t.buckets.Set(c, idx, e)
		}
	}
	for s := 0; s < t.stash.Len(); s++ {
		e := t.stash.Get(c, s)
		c.Op(1)
		if e.Kind == obliv.Real && e.Key == q && !ok {
			found, ok = e, true
			e = obliv.Elem{}
		}
		t.stash.Set(c, s, e)
	}
	return found, ok
}

// plantStash writes e into the first free stash slot (fixed scan; every
// slot is rewritten). Filler plants perform the same scan so the pattern
// is independent of how many requests were unique.
func (o *OPRAM) plantStash(c *forkjoin.Ctx, t *tree, e obliv.Elem) {
	placed := false
	for s := 0; s < t.stash.Len(); s++ {
		cur := t.stash.Get(c, s)
		c.Op(1)
		if !placed && cur.Kind != obliv.Real {
			cur = e
			placed = true
		}
		t.stash.Set(c, s, cur)
	}
	if !placed && e.Kind == obliv.Real {
		o.stats.Overflows++
	}
}

// evictPath runs one greedy eviction along the path to leaf: collect path
// + stash, compute each block's deepest legal bucket level with fixed
// loops, then obliviously distribute via bin placement (bins = bucket
// levels plus one stash bin).
func (o *OPRAM) evictPath(c *forkjoin.Ctx, sp *mem.Space, t *tree, leaf uint32) {
	z := o.opt.BucketCap
	L := t.layout.Levels() // bucket levels on a path
	S := t.stash.Len()
	positions := t.layout.PathPos(int(leaf))

	nw := L*z + S
	w := mem.Alloc[obliv.Elem](sp, nw)
	for lvl := 0; lvl < L; lvl++ {
		for s := 0; s < z; s++ {
			e := t.buckets.Get(c, positions[lvl]*z+s)
			w.Set(c, lvl*z+s, e)
		}
	}
	for s := 0; s < S; s++ {
		w.Set(c, L*z+s, t.stash.Get(c, s))
	}

	// Deepest legal level per block: common prefix of (block leaf, evict
	// leaf) over L-1 bits. Invalid blocks get the stash group.
	legal := make([]int, nw)
	for k := 0; k < nw; k++ {
		e := w.Get(c, k)
		c.Op(1)
		if e.Kind != obliv.Real {
			legal[k] = -1
			continue
		}
		legal[k] = commonDepth(uint32(e.Aux), leaf, L)
	}
	// Greedy claim: levels deepest first; the fixed double loop keeps the
	// access pattern data-independent.
	target := make([]int, nw)
	for k := range target {
		target[k] = -1
	}
	fill := make([]int, L)
	for lvl := L - 1; lvl >= 0; lvl-- {
		for k := 0; k < nw; k++ {
			c.Op(1)
			if target[k] < 0 && legal[k] >= lvl && fill[lvl] < z {
				target[k] = lvl
				fill[lvl]++
			}
		}
	}

	// Distribute: bins 0..L-1 = bucket levels, bin L = stash. Bin
	// placement pads each bin with fillers to its capacity.
	binZ := S
	if z > binZ {
		binZ = z
	}
	out := mem.Alloc[obliv.Elem](sp, (L+1)*binZ)
	groups := make([]uint32, nw)
	for k := 0; k < nw; k++ {
		e := w.Get(c, k)
		g := uint32(L) // unplaced valid blocks stay in the stash bin
		if target[k] >= 0 {
			g = uint32(target[k])
		}
		groups[k] = g
		e.Tag = g
		w.Set(c, k, e)
	}
	lost := obliv.BinPlace(c, sp, w, out, L+1, binZ,
		func(e obliv.Elem) uint64 { return uint64(e.Tag) }, o.opt.Sorter)
	if lost > 0 {
		o.stats.Overflows += lost
	}

	// Write back buckets (first z of each level bin) and the stash (first
	// S of the stash bin).
	for lvl := 0; lvl < L; lvl++ {
		for s := 0; s < z; s++ {
			t.buckets.Set(c, positions[lvl]*z+s, out.Get(c, lvl*binZ+s))
		}
	}
	for s := 0; s < S; s++ {
		t.stash.Set(c, s, out.Get(c, L*binZ+s))
	}
}

// commonDepth returns the deepest bucket level (0-based, < L) on the path
// to evictLeaf at which a block routed to blockLeaf may live.
func commonDepth(blockLeaf, evictLeaf uint32, L int) int {
	// Leaves have L-1 bits; depth d requires agreement on the top d bits.
	bits := L - 1
	x := blockLeaf ^ evictLeaf
	d := 0
	for b := bits - 1; b >= 0; b-- {
		if x>>uint(b)&1 != 0 {
			break
		}
		d++
	}
	return d
}

// reverseBits reverses the low `bits` bits of v (the reverse-lexicographic
// eviction order of [CCS17]/Path-ORAM).
func reverseBits(v uint64, bits int) uint64 {
	var r uint64
	for b := 0; b < bits; b++ {
		r = r<<1 | (v>>uint(b))&1
	}
	return r
}
