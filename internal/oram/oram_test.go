package oram

import (
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/prng"
)

// runWorkload drives an OPRAM against a reference memory.
func runWorkload(t *testing.T, dLog, batch, batches int, seed uint64) *OPRAM {
	t.Helper()
	sp := mem.NewSpace()
	c := forkjoin.Serial()
	o := New(c, sp, dLog, batch, Options{Seed: seed})
	ref := make([]uint64, 1<<dLog)
	src := prng.New(seed + 1)
	for b := 0; b < batches; b++ {
		reqs := make([]Req, batch)
		want := make([]uint64, batch)
		// Track within-batch write resolution: the first writer among
		// duplicates wins; reads see the pre-batch value.
		for i := range reqs {
			addr := src.Uint64n(uint64(1) << dLog)
			write := src.Uint64n(2) == 0
			reqs[i] = Req{Addr: addr, Write: write, Val: src.Uint64n(1 << 30)}
			want[i] = ref[addr]
		}
		applied := map[uint64]bool{}
		for i := range reqs {
			if reqs[i].Write && !applied[reqs[i].Addr] {
				ref[reqs[i].Addr] = reqs[i].Val
				applied[reqs[i].Addr] = true
			}
		}
		got := o.Access(c, sp, reqs)
		for i := range reqs {
			if got[i] != want[i] {
				t.Fatalf("batch %d req %d (addr %d): got %d, want %d",
					b, i, reqs[i].Addr, got[i], want[i])
			}
		}
	}
	st := o.Stats()
	if st.Misses != 0 {
		t.Fatalf("%d fetch misses (data-structure inconsistency)", st.Misses)
	}
	if st.Overflows != 0 {
		t.Fatalf("%d stash overflows", st.Overflows)
	}
	return o
}

func TestFlatModeCorrect(t *testing.T) {
	// dLog small enough that the degenerate flat mode kicks in.
	runWorkload(t, 4, 8, 12, 1)
}

func TestTreeModeCorrect(t *testing.T) {
	runWorkload(t, 9, 4, 16, 2)
}

func TestTreeModeLargerBatch(t *testing.T) {
	runWorkload(t, 10, 8, 8, 3)
}

func TestDuplicateAddressesInBatch(t *testing.T) {
	sp := mem.NewSpace()
	c := forkjoin.Serial()
	o := New(c, sp, 9, 4, Options{Seed: 9})
	// Write then read the same address within and across batches.
	got := o.Access(c, sp, []Req{
		{Addr: 100, Write: true, Val: 111},
		{Addr: 100, Write: true, Val: 222}, // loses: first writer wins
		{Addr: 100},
		{Addr: 101, Write: true, Val: 7},
	})
	for i, want := range []uint64{0, 0, 0, 0} {
		if got[i] != want {
			t.Fatalf("batch1[%d] = %d, want %d (pre-batch values)", i, got[i], want)
		}
	}
	got = o.Access(c, sp, []Req{{Addr: 100}, {Addr: 101}, {Addr: 100}, {Addr: 102}})
	if got[0] != 111 || got[2] != 111 {
		t.Fatalf("addr 100 = %d/%d, want 111 (first writer wins)", got[0], got[2])
	}
	if got[1] != 7 {
		t.Fatalf("addr 101 = %d, want 7", got[1])
	}
	if got[3] != 0 {
		t.Fatalf("addr 102 = %d, want 0", got[3])
	}
	if o.Stats().Misses != 0 || o.Stats().Overflows != 0 {
		t.Fatalf("stats: %+v", o.Stats())
	}
}

func TestShortBatchPadded(t *testing.T) {
	sp := mem.NewSpace()
	c := forkjoin.Serial()
	o := New(c, sp, 9, 4, Options{Seed: 4})
	got := o.Access(c, sp, []Req{{Addr: 5, Write: true, Val: 42}})
	if len(got) != 1 {
		t.Fatalf("got %d results", len(got))
	}
	got = o.Access(c, sp, []Req{{Addr: 5}})
	if got[0] != 42 {
		t.Fatalf("read back %d, want 42", got[0])
	}
}

func TestStashStaysBounded(t *testing.T) {
	// A sustained random workload must keep the stash well under capacity.
	o := runWorkload(t, 10, 4, 30, 7)
	st := o.Stats()
	cap := 3*4 + 32
	if st.StashMax > cap/2 {
		t.Fatalf("stash peaked at %d of %d — growth suggests a leak", st.StashMax, cap)
	}
}

func TestRepeatedSameAddress(t *testing.T) {
	// Hammering one address exercises re-plant + evict heavily.
	sp := mem.NewSpace()
	c := forkjoin.Serial()
	o := New(c, sp, 9, 2, Options{Seed: 5})
	for k := 0; k < 20; k++ {
		o.Access(c, sp, []Req{{Addr: 7, Write: true, Val: uint64(k)}, {Addr: 7}})
	}
	got := o.Access(c, sp, []Req{{Addr: 7}, {Addr: 8}})
	if got[0] != 19 {
		t.Fatalf("addr 7 = %d, want 19", got[0])
	}
	if o.Stats().Misses != 0 || o.Stats().Overflows != 0 {
		t.Fatalf("stats: %+v", o.Stats())
	}
}

func TestLeafDistributionUniform(t *testing.T) {
	// The revealed path leaves of the data tree must look uniform across a
	// workload that hammers a single address (the strongest leak case).
	sp := mem.NewSpace()
	c := forkjoin.Serial()
	const dLog = 8
	o := New(c, sp, dLog, 2, Options{Seed: 11})
	if o.flat != nil {
		t.Skip("tree mode required")
	}
	counts := make([]int64, 4) // quadrant the accessed leaf falls in
	for k := 0; k < 200; k++ {
		// Observe the label the single real request will use at the data
		// tree — it is state-internal, so instead check the label stored
		// in the base+chain indirectly: access and record the fresh
		// label generator's output distribution proxy via Stats... the
		// honest observable is the PRF label; sample it directly.
		l := o.freshLabel(o.d, 5)
		counts[l>>(uint(o.d)-2)]++
		o.ctr++ // advance the PRF input as a batch would
	}
	var total int64
	for _, v := range counts {
		total += v
	}
	exp := float64(total) / 4
	for q, v := range counts {
		if float64(v) < exp*0.5 || float64(v) > exp*1.5 {
			t.Fatalf("leaf quadrant %d count %d far from %f", q, v, exp)
		}
	}
}

func TestAccessPatternStructure(t *testing.T) {
	// Two workloads with the same shape (batch count/sizes) but different
	// addresses must produce the same number of instrumented memory
	// operations (the coarse structural invariant; exact trace equality
	// does not hold because revealed leaf labels differ by design).
	run := func(seed uint64) int64 {
		sp := mem.NewSpace()
		var ops int64
		m := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) {
			o := New(c, sp, 9, 4, Options{Seed: 42}) // same ORAM coins
			src := prng.New(seed)
			for b := 0; b < 4; b++ {
				reqs := make([]Req, 4)
				for i := range reqs {
					reqs[i] = Req{Addr: src.Uint64n(512), Write: src.Uint64n(2) == 0, Val: src.Uint64()}
				}
				o.Access(c, sp, reqs)
			}
		})
		ops = m.MemOps
		return ops
	}
	if run(1) != run(2) {
		t.Fatal("memory-operation count depends on the addresses accessed")
	}
}

func TestWorkIndependentOfSpace(t *testing.T) {
	// Theorem 4.2's point: per-batch work grows polylogarithmically in s,
	// not linearly. Quadrupling s must far less than double the work.
	work := func(dLog int) int64 {
		sp := mem.NewSpace()
		m := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) {
			o := New(c, sp, dLog, 4, Options{Seed: 3})
			reqs := []Req{{Addr: 1}, {Addr: 2}, {Addr: 3, Write: true, Val: 9}, {Addr: 4}}
			o.Access(c, sp, reqs)
		})
		return m.Work
	}
	w9, w11 := work(9), work(11)
	if float64(w11) > 1.9*float64(w9) {
		t.Fatalf("work scales too fast with space: %d -> %d", w9, w11)
	}
}

func TestOptionsVariants(t *testing.T) {
	// Larger buckets and eviction factor: same correctness, different
	// stash profile.
	sp := mem.NewSpace()
	c := forkjoin.Serial()
	o := New(c, sp, 9, 2, Options{Seed: 8, BucketCap: 8, EvictFactor: 1, StashCap: 64})
	for k := 0; k < 10; k++ {
		o.Access(c, sp, []Req{{Addr: uint64(k), Write: true, Val: uint64(k * 7)}})
	}
	for k := 0; k < 10; k++ {
		got := o.Access(c, sp, []Req{{Addr: uint64(k)}})
		if got[0] != uint64(k*7) {
			t.Fatalf("addr %d = %d, want %d", k, got[0], k*7)
		}
	}
	if st := o.Stats(); st.Misses != 0 || st.Overflows != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSpaceAndBatchAccessors(t *testing.T) {
	sp := mem.NewSpace()
	o := New(forkjoin.Serial(), sp, 7, 3, Options{Seed: 1})
	if o.Space() != 128 || o.Batch() != 3 {
		t.Fatalf("accessors: space=%d batch=%d", o.Space(), o.Batch())
	}
}

func TestOversizeBatchPanics(t *testing.T) {
	sp := mem.NewSpace()
	c := forkjoin.Serial()
	o := New(c, sp, 8, 2, Options{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized batch accepted")
		}
	}()
	o.Access(c, sp, []Req{{Addr: 1}, {Addr: 2}, {Addr: 3}})
}

func TestAddressOutOfRangePanics(t *testing.T) {
	sp := mem.NewSpace()
	c := forkjoin.Serial()
	o := New(c, sp, 8, 2, Options{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range address accepted")
		}
	}()
	o.Access(c, sp, []Req{{Addr: 1 << 20}})
}
