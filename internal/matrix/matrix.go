// Package matrix implements cache-agnostic matrix transposition in the
// binary fork-join model.
//
// Transposition is the workhorse data-movement step of the paper: REC-ORBA
// and REC-SORT transpose √β×√β matrices of bins between their two recursive
// phases (§D.1, §E.2), BITONIC-MERGE transposes element matrices (§E.1.2),
// and the OPRAM "simultaneous removal" step transposes a p×log s matrix
// (§4.2). The recursive halving scheme below incurs O(rc/B) cache misses
// under a tall cache and O(log(rc)) span, matching the costs assumed
// throughout the paper.
package matrix

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// transposeLeaf is the tile size below which we copy directly in parallel
// mode. Metered runs fork all the way down to single cells so that the
// measured span is the span of the fully forked computation the paper's
// bounds describe (matching ParallelFor's grain-1 policy).
const transposeLeaf = 8

// Transpose writes the transpose of src (rows×cols, row-major) into dst
// (cols×rows, row-major). dst must not alias src.
func Transpose[T any](c *forkjoin.Ctx, dst, src *mem.Array[T], rows, cols int) {
	if src.Len() < rows*cols || dst.Len() < rows*cols {
		panic("matrix: short arrays")
	}
	leaf := transposeLeaf
	if c.Metered() {
		leaf = 1
	}
	transposeRec(c, dst, src, 0, rows, 0, cols, rows, cols, leaf)
}

// transposeRec transposes the tile src[r0:r1) × [c0:c1).
func transposeRec[T any](c *forkjoin.Ctx, dst, src *mem.Array[T], r0, r1, c0, c1, rows, cols, leaf int) {
	dr, dc := r1-r0, c1-c0
	if dr <= leaf && dc <= leaf {
		for i := r0; i < r1; i++ {
			for j := c0; j < c1; j++ {
				dst.Set(c, j*rows+i, src.Get(c, i*cols+j))
			}
		}
		return
	}
	if dr >= dc {
		rm := r0 + dr/2
		c.Fork(
			func(c *forkjoin.Ctx) { transposeRec(c, dst, src, r0, rm, c0, c1, rows, cols, leaf) },
			func(c *forkjoin.Ctx) { transposeRec(c, dst, src, rm, r1, c0, c1, rows, cols, leaf) },
		)
		return
	}
	cm := c0 + dc/2
	c.Fork(
		func(c *forkjoin.Ctx) { transposeRec(c, dst, src, r0, r1, c0, cm, rows, cols, leaf) },
		func(c *forkjoin.Ctx) { transposeRec(c, dst, src, r0, r1, cm, c1, rows, cols, leaf) },
	)
}

// TransposeBlocks transposes a rows×cols matrix whose entries are
// fixed-length blocks of blockLen consecutive elements (the "matrix of
// bins" of REC-ORBA/REC-SORT: each entry is one bin). dst must not alias
// src.
func TransposeBlocks[T any](c *forkjoin.Ctx, dst, src *mem.Array[T], rows, cols, blockLen int) {
	if src.Len() < rows*cols*blockLen || dst.Len() < rows*cols*blockLen {
		panic("matrix: short arrays")
	}
	blockRec(c, dst, src, 0, rows, 0, cols, rows, cols, blockLen)
}

func blockRec[T any](c *forkjoin.Ctx, dst, src *mem.Array[T], r0, r1, c0, c1, rows, cols, bl int) {
	dr, dc := r1-r0, c1-c0
	if dr == 1 && dc == 1 {
		// The per-bin copy itself forks (grain 1 under metering) so block
		// transposition has O(log(rows·cols·bl)) span, matching §D.1.
		mem.CopyPar(c, dst, (c0*rows+r0)*bl, src, (r0*cols+c0)*bl, bl)
		return
	}
	if dr >= dc {
		rm := r0 + dr/2
		c.Fork(
			func(c *forkjoin.Ctx) { blockRec(c, dst, src, r0, rm, c0, c1, rows, cols, bl) },
			func(c *forkjoin.Ctx) { blockRec(c, dst, src, rm, r1, c0, c1, rows, cols, bl) },
		)
		return
	}
	cm := c0 + dc/2
	c.Fork(
		func(c *forkjoin.Ctx) { blockRec(c, dst, src, r0, r1, c0, cm, rows, cols, bl) },
		func(c *forkjoin.Ctx) { blockRec(c, dst, src, r0, r1, cm, c1, rows, cols, bl) },
	)
}
