package matrix

import (
	"testing"
	"testing/quick"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

func transposeRef(src []int, rows, cols int) []int {
	dst := make([]int, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dst[j*rows+i] = src[i*cols+j]
		}
	}
	return dst
}

func TestTransposeSmall(t *testing.T) {
	s := mem.NewSpace()
	src := mem.FromSlice(s, []int{1, 2, 3, 4, 5, 6}) // 2x3
	dst := mem.Alloc[int](s, 6)
	Transpose(forkjoin.Serial(), dst, src, 2, 3)
	want := []int{1, 4, 2, 5, 3, 6}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("dst = %v, want %v", dst.Data(), want)
		}
	}
}

func TestTransposeShapes(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 17}, {17, 1}, {4, 4}, {8, 16}, {16, 8}, {31, 9}, {64, 64}, {3, 100}}
	s := mem.NewSpace()
	for _, sh := range shapes {
		rows, cols := sh[0], sh[1]
		raw := make([]int, rows*cols)
		for i := range raw {
			raw[i] = i * 31
		}
		src := mem.FromSlice(s, raw)
		dst := mem.Alloc[int](s, rows*cols)
		Transpose(forkjoin.Serial(), dst, src, rows, cols)
		want := transposeRef(raw, rows, cols)
		for i := range want {
			if dst.Data()[i] != want[i] {
				t.Fatalf("%dx%d mismatch at %d", rows, cols, i)
			}
		}
	}
}

func TestTransposeParallelMatchesSerial(t *testing.T) {
	const rows, cols = 37, 53
	raw := make([]int, rows*cols)
	for i := range raw {
		raw[i] = i
	}
	s := mem.NewSpace()
	src := mem.FromSlice(s, raw)
	dst := mem.Alloc[int](s, rows*cols)
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		Transpose(c, dst, src, rows, cols)
	})
	want := transposeRef(raw, rows, cols)
	for i := range want {
		if dst.Data()[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	// Transposing twice returns the original (property test over shapes).
	f := func(r8, c8 uint8) bool {
		rows := int(r8%20) + 1
		cols := int(c8%20) + 1
		raw := make([]int, rows*cols)
		for i := range raw {
			raw[i] = i * 7
		}
		s := mem.NewSpace()
		src := mem.FromSlice(s, raw)
		tmp := mem.Alloc[int](s, rows*cols)
		back := mem.Alloc[int](s, rows*cols)
		c := forkjoin.Serial()
		Transpose(c, tmp, src, rows, cols)
		Transpose(c, back, tmp, cols, rows)
		for i := range raw {
			if back.Data()[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeBlocks(t *testing.T) {
	// 2x3 matrix of blocks of length 4.
	const rows, cols, bl = 2, 3, 4
	raw := make([]int, rows*cols*bl)
	for i := range raw {
		raw[i] = i
	}
	s := mem.NewSpace()
	src := mem.FromSlice(s, raw)
	dst := mem.Alloc[int](s, len(raw))
	TransposeBlocks(forkjoin.Serial(), dst, src, rows, cols, bl)
	// Block (i,j) of src must equal block (j,i) of dst.
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			for k := 0; k < bl; k++ {
				if dst.Data()[(j*rows+i)*bl+k] != raw[(i*cols+j)*bl+k] {
					t.Fatalf("block (%d,%d) word %d mismatch", i, j, k)
				}
			}
		}
	}
}

func TestTransposeBlocksInvolution(t *testing.T) {
	const rows, cols, bl = 8, 4, 16
	raw := make([]int, rows*cols*bl)
	for i := range raw {
		raw[i] = i * 3
	}
	s := mem.NewSpace()
	src := mem.FromSlice(s, raw)
	tmp := mem.Alloc[int](s, len(raw))
	back := mem.Alloc[int](s, len(raw))
	c := forkjoin.Serial()
	TransposeBlocks(c, tmp, src, rows, cols, bl)
	TransposeBlocks(c, back, tmp, cols, rows, bl)
	for i := range raw {
		if back.Data()[i] != raw[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestTransposeSpanLogarithmic(t *testing.T) {
	span := func(n int) int64 {
		s := mem.NewSpace()
		src := mem.Alloc[int](s, n*n)
		dst := mem.Alloc[int](s, n*n)
		m := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) {
			Transpose(c, dst, src, n, n)
		})
		return m.Span
	}
	s16, s64 := span(16), span(64)
	// Quadrupling n (16x work) should grow span by a small additive factor,
	// certainly less than 4x.
	if s64 >= 4*s16 {
		t.Fatalf("span not logarithmic: n=16 -> %d, n=64 -> %d", s16, s64)
	}
}

func TestTransposeCacheScanBound(t *testing.T) {
	// With a tall cache the transpose should be within a small factor of
	// the scan bound 2*n/B (one read + one write stream).
	const n = 64 // 4096 elements
	s := mem.NewSpace()
	src := mem.Alloc[int](s, n*n)
	dst := mem.Alloc[int](s, n*n)
	m := forkjoin.RunMetered(forkjoin.MeterOpts{CacheM: 1 << 10, CacheB: 1 << 4}, func(c *forkjoin.Ctx) {
		Transpose(c, dst, src, n, n)
	})
	scan := int64(2 * n * n / (1 << 4))
	if m.CacheMisses > 4*scan {
		t.Fatalf("transpose misses %d exceed 4x scan bound %d", m.CacheMisses, scan)
	}
}

func TestTransposeShortArrayPanics(t *testing.T) {
	s := mem.NewSpace()
	src := mem.Alloc[int](s, 5)
	dst := mem.Alloc[int](s, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short arrays")
		}
	}()
	Transpose(forkjoin.Serial(), dst, src, 3, 3)
}
