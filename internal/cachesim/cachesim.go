// Package cachesim implements the ideal-cache model of Frigo, Leiserson,
// Prokop and Ramachandran (the "cache-oblivious model", which this project
// calls cache-agnostic following the paper): a fully associative cache of
// M words organized in blocks (cache lines) of B words, with LRU
// replacement standing in for the optimal policy.
//
// Addresses are element-granular: one element of an instrumented array is
// one word (see internal/mem). The simulator is attached to the metered
// executor in internal/forkjoin; algorithms never see M or B, which is what
// makes their caching bounds cache-agnostic.
package cachesim

import "math"

// Cache simulates a fully associative LRU cache.
//
// The implementation keeps an intrusive doubly linked list over a
// map[block]*node. For the problem sizes used in the experiments
// (<= 2^20 elements) this is comfortably fast.
type Cache struct {
	m, b   int // cache size in words, block size in words
	lines  int // m / b
	table  map[uint64]*node
	head   *node // most recently used
	tail   *node // least recently used
	misses int64
	hits   int64
	evicts int64
}

type node struct {
	block      uint64
	prev, next *node
}

// New returns a cache of m words with blocks of b words. Both must be
// positive and b must divide m (the tall-cache assumptions of the paper are
// the caller's concern; the simulator only needs m >= b).
func New(m, b int) *Cache {
	if m <= 0 || b <= 0 || m < b {
		panic("cachesim: need m >= b > 0")
	}
	return &Cache{
		m:     m,
		b:     b,
		lines: m / b,
		table: make(map[uint64]*node, m/b+1),
	}
}

// M returns the cache size in words.
func (c *Cache) M() int { return c.m }

// B returns the block size in words.
func (c *Cache) B() int { return c.b }

// Touch records an access to word address addr and reports whether it
// missed.
func (c *Cache) Touch(addr uint64) bool {
	blk := addr / uint64(c.b)
	if n, ok := c.table[blk]; ok {
		c.hits++
		c.moveToFront(n)
		return false
	}
	c.misses++
	n := &node{block: blk}
	c.table[blk] = n
	c.pushFront(n)
	if len(c.table) > c.lines {
		c.evictLRU()
	}
	return true
}

func (c *Cache) pushFront(n *node) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *Cache) moveToFront(n *node) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *Cache) evictLRU() {
	lru := c.tail
	if lru == nil {
		return
	}
	c.unlink(lru)
	delete(c.table, lru.block)
	c.evicts++
}

// Misses returns the number of cache misses so far.
func (c *Cache) Misses() int64 { return c.misses }

// Hits returns the number of cache hits so far.
func (c *Cache) Hits() int64 { return c.hits }

// Accesses returns hits + misses.
func (c *Cache) Accesses() int64 { return c.hits + c.misses }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.table = make(map[uint64]*node, c.lines+1)
	c.head, c.tail = nil, nil
	c.misses, c.hits, c.evicts = 0, 0, 0
}

// ---------------------------------------------------------------------------
// Theory formulas (§A.1) used by the benchmark harness for shape checks.
// ---------------------------------------------------------------------------

// Qscan returns the scan bound Θ(n/B) for the given parameters.
func Qscan(n, b int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / float64(b)
}

// Qsort returns the sorting bound Θ((n/B)·log_{M/B}(n/B)) for the given
// parameters. The log is clamped below at 1 so the bound is monotone for
// small n (matching the convention Q_sort(n) >= Q_scan(n)).
func Qsort(n, m, b int) float64 {
	if n <= 0 {
		return 0
	}
	base := float64(m) / float64(b)
	if base < 2 {
		base = 2
	}
	l := math.Log(float64(n)/float64(b)) / math.Log(base)
	if l < 1 {
		l = 1
	}
	return float64(n) / float64(b) * l
}

// LogM returns log_M(n) clamped below at 1 — the factor appearing in the
// paper's Q bounds written as O((n/B)·log_M n).
func LogM(n, m int) float64 {
	if n <= 1 || m < 2 {
		return 1
	}
	l := math.Log(float64(n)) / math.Log(float64(m))
	if l < 1 {
		l = 1
	}
	return l
}
