package cachesim

import "testing"

func TestColdMisses(t *testing.T) {
	c := New(64, 8)
	for a := uint64(0); a < 64; a++ {
		c.Touch(a)
	}
	// 64 words in blocks of 8 → 8 cold misses, 56 hits.
	if c.Misses() != 8 {
		t.Fatalf("misses = %d, want 8", c.Misses())
	}
	if c.Hits() != 56 {
		t.Fatalf("hits = %d, want 56", c.Hits())
	}
}

func TestFitsInCacheNoCapacityMisses(t *testing.T) {
	c := New(128, 8) // 16 lines
	// Working set of 8 blocks fits; repeated sweeps only miss cold.
	for pass := 0; pass < 10; pass++ {
		for a := uint64(0); a < 64; a++ {
			c.Touch(a)
		}
	}
	if c.Misses() != 8 {
		t.Fatalf("misses = %d, want 8 (cold only)", c.Misses())
	}
}

func TestLRUThrashing(t *testing.T) {
	c := New(16, 8) // 2 lines
	// Cyclic sweep over 3 blocks with 2 lines of LRU misses every access.
	addrs := []uint64{0, 8, 16}
	for pass := 0; pass < 5; pass++ {
		for _, a := range addrs {
			c.Touch(a)
		}
	}
	if c.Misses() != 15 {
		t.Fatalf("misses = %d, want 15 (every access misses)", c.Misses())
	}
}

func TestLRUKeepsHotBlock(t *testing.T) {
	c := New(16, 8) // 2 lines
	c.Touch(0)      // block 0
	c.Touch(8)      // block 1
	c.Touch(0)      // keep block 0 hot
	c.Touch(16)     // evicts block 1 (LRU)
	if c.Touch(17) {
		t.Fatal("block 2 should be resident")
	}
	if c.Touch(1) {
		t.Fatal("block 0 (hot) should still be resident")
	}
	if !c.Touch(8) {
		t.Fatal("block 1 should have been evicted")
	}
}

func TestSequentialScanBound(t *testing.T) {
	// A scan of n words should incur ~n/B misses.
	const n = 1 << 14
	const m, b = 1 << 8, 1 << 4
	c := New(m, b)
	for a := uint64(0); a < n; a++ {
		c.Touch(a)
	}
	want := int64(n / b)
	if c.Misses() != want {
		t.Fatalf("scan misses = %d, want %d", c.Misses(), want)
	}
}

func TestReset(t *testing.T) {
	c := New(64, 8)
	c.Touch(0)
	c.Touch(100)
	c.Reset()
	if c.Misses() != 0 || c.Hits() != 0 || c.Accesses() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if !c.Touch(0) {
		t.Fatal("Reset did not clear contents")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(4, 8) should panic (m < b)")
		}
	}()
	New(4, 8)
}

func TestQscan(t *testing.T) {
	if Qscan(1024, 16) != 64 {
		t.Fatalf("Qscan = %v", Qscan(1024, 16))
	}
	if Qscan(0, 16) != 0 {
		t.Fatal("Qscan(0) != 0")
	}
}

func TestQsortMonotone(t *testing.T) {
	prev := 0.0
	for n := 1 << 8; n <= 1<<20; n <<= 1 {
		q := Qsort(n, 1<<12, 1<<5)
		if q <= prev {
			t.Fatalf("Qsort not increasing at n=%d: %v <= %v", n, q, prev)
		}
		prev = q
	}
}

func TestQsortAtLeastQscan(t *testing.T) {
	for n := 1 << 6; n <= 1<<18; n <<= 2 {
		if Qsort(n, 1<<10, 1<<4) < Qscan(n, 1<<4) {
			t.Fatalf("Qsort < Qscan at n=%d", n)
		}
	}
}

func TestLogMClamp(t *testing.T) {
	if LogM(2, 1<<20) != 1 {
		t.Fatal("LogM should clamp at 1")
	}
	if v := LogM(1<<20, 1<<10); v < 1.9 || v > 2.1 {
		t.Fatalf("LogM(2^20, 2^10) = %v, want ~2", v)
	}
}
