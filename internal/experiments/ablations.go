package experiments

import (
	"fmt"
	"io"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// Fig1 prints the bitonic sorting network for n = 16 — the structure of
// the paper's Figure 1 — layer by layer ('<' comparator orders min-up,
// '>' orders max-up, matching the figure's arrows).
func Fig1(w io.Writer) {
	fmt.Fprintln(w, "\n== Figure 1 — bitonic sorting network, n = 16 ==")
	layers := bitonic.Schedule(16)
	for li, layer := range layers {
		fmt.Fprintf(w, "layer %2d: ", li)
		for _, cmp := range layer {
			dir := "<"
			if !cmp.Asc {
				dir = ">"
			}
			fmt.Fprintf(w, "(%2d%s%2d) ", cmp.I, dir, cmp.J)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "layers: %d, comparators: %d (n/2 · k(k+1)/2 for k = log n = 4)\n",
		len(layers), len(layers)*8)
}

// BitonicAblation regenerates the Theorem E.1 comparison: the paper's
// cache-agnostic BITONIC-SORT vs the naive per-layer parallelization and
// the odd-even network.
func BitonicAblation(w io.Writer, cacheM, cacheB int, quick bool) {
	sizes := []int{1 << 10, 1 << 12, 1 << 14}
	if quick {
		sizes = []int{1 << 10, 1 << 12}
	}
	var rows []Row
	variants := []obliv.Sorter{bitonic.CacheAgnostic{}, bitonic.Naive{}, bitonic.OddEven{}}
	for _, n := range sizes {
		keys := distinctKeys(uint64(n), n)
		for _, v := range variants {
			v := v
			m := Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
				a := elemsOf(sp, keys)
				v.Sort(c, sp, a, 0, n, func(e obliv.Elem) uint64 { return e.Key })
			})
			normS := lg(n) * lg(n) * lg(n) // naive
			normQ := float64(n) / float64(cacheB) * lg(n) * lg(n)
			if v.Name() == "bitonic-cache-agnostic" {
				normS = lg(n) * lg(n) * loglog(n)
				normQ = float64(n) / float64(cacheB) * logM(n, cacheM) * lg(float64ToInt(float64(n)/float64(cacheM)))
			}
			rows = append(rows, Row{
				Task: "BitonicSort", Impl: v.Name(), N: n, M: m,
				NormW: float64(n) * lg(n) * lg(n),
				NormS: normS,
				NormQ: normQ,
			})
		}
	}
	writeRows(w, "Theorem E.1 — bitonic variants", rows)
	fmt.Fprintln(w, `
Claim: the cache-agnostic variant matches the naive network's O(n log² n)
work while cutting span from O(log³ n) to O(log² n·loglog n) and cache
misses from (n/B)·log² n to (n/B)·log_M n·log(n/M).`)
}

func float64ToInt(v float64) int {
	if v < 2 {
		return 2
	}
	return int(v)
}

// ORBAAblation regenerates the Lemma 3.1 / Theorem C.1 comparisons:
// REC-ORBA vs layer-by-layer META-ORBA, and γ = Θ(log n) vs the prior
// work's γ = 2.
func ORBAAblation(w io.Writer, cacheM, cacheB int, quick bool) {
	sizes := []int{1 << 10, 1 << 12}
	if quick {
		sizes = []int{1 << 10}
	}
	var rows []Row
	for _, n := range sizes {
		keys := distinctKeys(uint64(n), n)
		cfgs := []struct {
			impl string
			p    core.Params
			rec  bool
		}{
			{"REC-ORBA γ=log n", core.Params{}, true},
			{"REC-ORBA γ=2 (prior)", core.Params{Gamma: 2}, true},
			{"META-ORBA γ=log n", core.Params{}, false},
		}
		for _, cfg := range cfgs {
			cfg := cfg
			m := Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
				in := elemsOf(sp, keys)
				p := cfg.p
				tape := prng.NewTape(7, core.TapeLen(n, p))
				if cfg.rec {
					core.RecORBA(c, sp, in, tape, p)
				} else {
					core.MetaORBA(c, sp, in, tape, p)
				}
			})
			rows = append(rows, Row{
				Task: "ORBA", Impl: cfg.impl, N: n, M: m,
				NormW: float64(n) * lg(n) * loglog(n),
				NormS: lg(n) * loglog(n) * loglog(n),
				NormQ: float64(n) / float64(cacheB) * logM(n, cacheM),
			})
		}
	}
	writeRows(w, "Lemma 3.1 / Theorem C.1 — ORBA variants", rows)
	fmt.Fprintln(w, `
Claims: γ=Θ(log n) saves a loglog factor over γ=2 (compare spans);
REC-ORBA's recursion beats META-ORBA's layer-by-layer passes on cache
misses at the same work.`)
}

// Overflow regenerates the §C.2 overflow analysis: the probability that a
// bin exceeds Z as a function of Z, measured across independent tapes.
func Overflow(w io.Writer, quick bool) {
	const n = 1 << 10
	zs := []int{8, 16, 32, 64, 128}
	runs := 100
	if quick {
		runs = 30
	}
	fmt.Fprintln(w, "\n== §C.2 — ORBA overflow probability vs bin size Z ==")
	fmt.Fprintf(w, "n=%d, mean bin load Z/2, %d tapes per Z\n", n, runs)
	fmt.Fprintln(w, "Z\truns-with-loss\telements-lost-total")
	for _, z := range zs {
		lossRuns, lossTotal := 0, 0
		for r := 0; r < runs; r++ {
			sp := mem.NewSpace()
			keys := distinctKeys(uint64(r)+1, n)
			in := elemsOf(sp, keys)
			p := core.Params{Z: z}
			tape := prng.NewTape(uint64(1000+r), core.TapeLen(n, p))
			res := core.RecORBA(forkjoin.Serial(), sp, in, tape, p)
			if res.Lost > 0 {
				lossRuns++
				lossTotal += res.Lost
			}
		}
		fmt.Fprintf(w, "%d\t%d/%d\t%d\n", z, lossRuns, runs, lossTotal)
	}
	fmt.Fprintln(w, `
Claim (Theorem C.1): overflow probability decays like exp(-Ω(Z)) once Z
exceeds twice the mean load — the loss counts should collapse to zero
within one or two doublings of Z.`)
}
