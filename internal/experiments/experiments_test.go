package experiments

import (
	"bytes"
	"strings"
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// The experiment harness is itself part of the deliverable; smoke-test
// that every experiment runs in quick mode and produces the expected
// sections.

func TestFig1Renders(t *testing.T) {
	var buf bytes.Buffer
	Fig1(&buf)
	out := buf.String()
	if !strings.Contains(out, "layers: 10, comparators: 80") {
		t.Fatalf("figure 1 structure wrong:\n%s", out)
	}
	if strings.Count(out, "layer ") != 10 {
		t.Fatal("expected 10 layers")
	}
}

func TestOverflowRuns(t *testing.T) {
	var buf bytes.Buffer
	Overflow(&buf, true)
	out := buf.String()
	if !strings.Contains(out, "Z\truns-with-loss") {
		t.Fatalf("overflow table missing:\n%s", out)
	}
	// Z=128 with n=1024 must show zero loss runs.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "128\t") && !strings.Contains(line, "0/") {
			t.Fatalf("Z=128 lost elements: %s", line)
		}
	}
}

func TestOblivCheckPasses(t *testing.T) {
	var buf bytes.Buffer
	if !OblivCheck(&buf) {
		t.Fatalf("obliviousness checks failed:\n%s", buf.String())
	}
	if strings.Count(buf.String(), "PASS") < 7 {
		t.Fatal("expected at least 7 component checks")
	}
}

func TestMeterProducesMetrics(t *testing.T) {
	m := Meter(1<<8, 16, func(c *forkjoin.Ctx, sp *mem.Space) {
		a := mem.Alloc[uint64](sp, 64)
		for i := 0; i < 64; i++ {
			a.Set(c, i, uint64(i))
		}
	})
	if m.Work != 64 || m.MemOps != 64 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.CacheMisses != 4 { // 64 words / block 16
		t.Fatalf("cache misses = %d, want 4", m.CacheMisses)
	}
}

func TestQuickTablesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	Table2(&buf, DefaultCacheM, DefaultCacheB, true)
	if !strings.Contains(buf.String(), "Aggr") || !strings.Contains(buf.String(), "PRAM-step") {
		t.Fatal("table 2 rows missing")
	}
	buf.Reset()
	ORBAAblation(&buf, DefaultCacheM, DefaultCacheB, true)
	if !strings.Contains(buf.String(), "REC-ORBA γ=2") {
		t.Fatal("ORBA ablation rows missing")
	}
}
