package experiments

import (
	"fmt"
	"io"

	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/graph"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
	"oblivmc/internal/spms"
)

// Table1 regenerates Table 1: each application's oblivious algorithm vs
// the insecure baseline, with factors normalized by the paper's bounds.
// "W/bound" etc. should stay roughly flat as n doubles when the measured
// shape matches the claim.
func Table1(w io.Writer, cacheM, cacheB int, quick bool) {
	sortSizes := []int{1 << 9, 1 << 11, 1 << 13}
	lrSizes := []int{1 << 7, 1 << 9}
	graphSizes := []int{48, 96}
	tcLeaves := []int{32, 96}
	if quick {
		sortSizes = []int{1 << 9, 1 << 11}
		lrSizes = []int{1 << 7}
		graphSizes = []int{48}
		tcLeaves = []int{32}
	}

	var rows []Row

	// --- Sort: oblivious O(n log n [·loglog]) work, Õ(log n) span
	// (theory) / Õ(log² n) (practical), Qsort cache.
	for _, n := range sortSizes {
		keys := distinctKeys(uint64(n), n)
		m := Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			in := elemsOf(sp, keys)
			core.SortPractical(c, sp, in, 1, core.Params{})
		})
		rows = append(rows, Row{
			Task: "Sort", Impl: "oblivious-practical", N: n, M: m,
			NormW: float64(n) * lg(n) * loglog(n),
			NormS: lg(n) * lg(n) * loglog(n),
			NormQ: float64(n) / float64(cacheB) * logM(n, cacheM),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			in := elemsOf(sp, keys)
			core.SortWith(c, sp, in, 1, core.Params{}, spms.InsecureSampleSort(2))
		})
		rows = append(rows, Row{
			Task: "Sort", Impl: "oblivious-theory(ORP+samplesort)", N: n, M: m,
			NormW: float64(n) * lg(n) * loglog(n),
			NormS: lg(n) * lg(n),
			NormQ: float64(n) / float64(cacheB) * logM(n, cacheM),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			in := elemsOf(sp, keys)
			spms.SampleSort(c, sp, in, 2)
		})
		rows = append(rows, Row{
			Task: "Sort", Impl: "insecure-samplesort", N: n, M: m,
			NormW: float64(n) * lg(n),
			NormS: lg(n) * lg(n),
			NormQ: float64(n) / float64(cacheB) * logM(n, cacheM),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			in := elemsOf(sp, keys)
			spms.MergeSort(c, sp, in)
		})
		rows = append(rows, Row{
			Task: "Sort", Impl: "insecure-mergesort", N: n, M: m,
			NormW: float64(n) * lg(n),
			NormS: lg(n) * lg(n) * lg(n),
			NormQ: float64(n) / float64(cacheB) * logM(n, cacheM),
		})
	}

	// --- List ranking: O(n log n) work, Õ(log² n) span, Qsort cache.
	for _, n := range lrSizes {
		succ := randomList(uint64(n), n)
		m := Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			graph.ListRankOblivious(c, sp, succ, nil, 3, core.Params{})
		})
		rows = append(rows, Row{
			Task: "LR", Impl: "oblivious", N: n, M: m,
			NormW: float64(n) * lg(n) * loglog(n),
			NormS: lg(n) * lg(n) * loglog(n),
			NormQ: float64(n) / float64(cacheB) * logM(n, cacheM),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			graph.ListRankDirect(c, sp, succ, nil)
		})
		rows = append(rows, Row{
			Task: "LR", Impl: "insecure-direct", N: n, M: m,
			NormW: float64(n) * lg(n),
			NormS: lg(n) * lg(n),
			NormQ: float64(n) / float64(cacheB) * lg(n), // direct jumps: no locality
		})
	}

	// --- Euler-tour tree computations: same bounds as LR.
	for _, n := range lrSizes {
		edges := randomTreeEdges(uint64(n), n)
		m := Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			graph.TreeFunctionsOblivious(c, sp, n, edges, 0, 5, core.Params{})
		})
		rows = append(rows, Row{
			Task: "ET-Tree", Impl: "oblivious", N: n, M: m,
			NormW: float64(n) * lg(n) * loglog(n),
			NormS: lg(n) * lg(n) * loglog(n),
			NormQ: float64(n) / float64(cacheB) * logM(n, cacheM),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			graph.TreeFunctionsDirect(c, sp, n, edges, 0, 5)
		})
		rows = append(rows, Row{
			Task: "ET-Tree", Impl: "insecure-direct", N: n, M: m,
			NormW: float64(n) * lg(n),
			NormS: lg(n) * lg(n),
			NormQ: float64(n) / float64(cacheB) * lg(n),
		})
	}

	// --- Tree contraction (†): oblivious O(Wsort(n)) work, Õ(log² n) span.
	for _, leaves := range tcLeaves {
		tr := randomExpr(uint64(leaves), leaves)
		n := tr.N
		m := Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			graph.EvalTreeOblivious(c, sp, tr, 7, core.Params{})
		})
		rows = append(rows, Row{
			Task: "TC", Impl: "oblivious", N: n, M: m,
			NormW: float64(n) * lg(n) * loglog(n),
			NormS: lg(n) * lg(n) * loglog(n),
			NormQ: float64(n) / float64(cacheB) * logM(n, cacheM),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			graph.EvalTreeDirect(c, sp, tr)
		})
		rows = append(rows, Row{
			Task: "TC", Impl: "insecure-descent", N: n, M: m,
			NormW: float64(n),
			NormS: lg(n),
			NormQ: float64(n) / float64(cacheB),
		})
	}

	// --- CC and MSF (†): oblivious O(m log² n) work, Õ(log² n) span.
	for _, n := range graphSizes {
		mEdges := 2 * n
		edges := randomGraphEdges(uint64(n), n, mEdges)
		m := Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			graph.ConnectedComponentsOblivious(c, sp, n, edges, core.Params{})
		})
		rows = append(rows, Row{
			Task: "CC", Impl: "oblivious", N: n, M: m,
			NormW: float64(mEdges) * lg(n) * lg(n) * loglog(n),
			NormS: lg(n) * lg(n) * loglog(n),
			NormQ: float64(mEdges) / float64(cacheB) * logM(n, cacheM) * lg(n),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			graph.ConnectedComponentsDirect(c, sp, n, edges)
		})
		rows = append(rows, Row{
			Task: "CC", Impl: "insecure-direct", N: n, M: m,
			NormW: float64(mEdges) * lg(n),
			NormS: lg(n) * lg(n),
			NormQ: float64(mEdges) / float64(cacheB) * lg(n),
		})

		wedges := randomWeightedEdges(uint64(n), n, mEdges)
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			graph.MinimumSpanningForestOblivious(c, sp, n, wedges, core.Params{})
		})
		rows = append(rows, Row{
			Task: "MSF", Impl: "oblivious(Boruvka)", N: n, M: m,
			NormW: float64(mEdges) * lg(n) * lg(n) * loglog(n),
			NormS: lg(n) * lg(n) * loglog(n),
			NormQ: float64(mEdges) / float64(cacheB) * logM(n, cacheM) * lg(n),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			graph.MinimumSpanningForestDirect(c, sp, n, wedges)
		})
		rows = append(rows, Row{
			Task: "MSF", Impl: "insecure-direct", N: n, M: m,
			NormW: float64(mEdges) * lg(n),
			NormS: lg(n) * lg(n),
			NormQ: float64(mEdges) / float64(cacheB) * lg(n),
		})
	}

	writeRows(w, "Table 1 — applications vs insecure baselines", rows)
	fmt.Fprintln(w, `
Reading guide: W/T/Q divided by the paper's bound for that row; flat
factors across n confirm the claimed shape. Paper bounds (Table 1):
Sort/LR/ET: W=n log n, T=Õ(log n..log² n), Q=(n/B)log_M n.
TC†/CC†/MSF†: the oblivious span Õ(log² n) improves the insecure Õ(log³ n).
MSF note: Borůvka substrate (not PR02) — W carries one extra log (DESIGN.md).`)
}

// --- input generators -----------------------------------------------------

func distinctKeys(seed uint64, n int) []uint64 {
	src := prng.New(seed)
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := src.Uint64() >> 4
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func elemsOf(sp *mem.Space, keys []uint64) *mem.Array[obliv.Elem] {
	in := mem.Alloc[obliv.Elem](sp, len(keys))
	for i, k := range keys {
		in.Data()[i] = obliv.Elem{Key: k, Kind: obliv.Real}
	}
	return in
}

func randomList(seed uint64, n int) []int {
	src := prng.New(seed)
	order := src.Perm(n)
	succ := make([]int, n)
	for k := 0; k < n; k++ {
		if k == n-1 {
			succ[order[k]] = order[k]
		} else {
			succ[order[k]] = order[k+1]
		}
	}
	return succ
}

func randomTreeEdges(seed uint64, n int) [][2]int {
	src := prng.New(seed)
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{src.Intn(v), v})
	}
	return edges
}

func randomGraphEdges(seed uint64, n, m int) [][2]int {
	src := prng.New(seed)
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

func randomWeightedEdges(seed uint64, n, m int) []graph.WEdge {
	src := prng.New(seed)
	edges := make([]graph.WEdge, 0, m)
	for len(edges) < m {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			edges = append(edges, graph.WEdge{U: u, V: v, W: src.Uint64n(1 << 16)})
		}
	}
	return edges
}

func randomExpr(seed uint64, leaves int) graph.ExprTree {
	src := prng.New(seed)
	n := 2*leaves - 1
	t := graph.ExprTree{
		N: n, Left: make([]int, n), Right: make([]int, n),
		Op: make([]uint8, n), LeafVal: make([]uint64, n),
	}
	for i := range t.Left {
		t.Left[i] = -1
		t.Right[i] = -1
	}
	roots := make([]int, leaves)
	for i := 0; i < leaves; i++ {
		roots[i] = i
		t.LeafVal[i] = src.Uint64n(1 << 20)
	}
	next := leaves
	for len(roots) > 1 {
		i := src.Intn(len(roots))
		a := roots[i]
		roots[i] = roots[len(roots)-1]
		roots = roots[:len(roots)-1]
		j := src.Intn(len(roots))
		t.Left[next] = a
		t.Right[next] = roots[j]
		t.Op[next] = uint8(src.Intn(2))
		roots[j] = next
		next++
	}
	t.Root = roots[0]
	return t
}
