package experiments

import (
	"fmt"
	"io"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/oram"
	"oblivmc/internal/pram"
	"oblivmc/internal/prng"
)

// Table2 regenerates Table 2: the oblivious building blocks — aggregation,
// propagation, send-receive, and one simulated PRAM step — against the
// paper's bounds, plus the naive prior-best span shape.
func Table2(w io.Writer, cacheM, cacheB int, quick bool) {
	sizes := []int{1 << 9, 1 << 11, 1 << 13}
	pramSizes := []int{1 << 6, 1 << 8}
	if quick {
		sizes = []int{1 << 9, 1 << 11}
		pramSizes = []int{1 << 6}
	}
	srt := bitonic.CacheAgnostic{}
	var rows []Row

	for _, n := range sizes {
		// Grouped array for aggregation/propagation.
		mk := func(sp *mem.Space) *mem.Array[obliv.Elem] {
			src := prng.New(uint64(n))
			a := mem.Alloc[obliv.Elem](sp, n)
			g := uint64(0)
			for i := 0; i < n; i++ {
				if src.Uint64n(4) == 0 {
					g++
				}
				a.Data()[i] = obliv.Elem{Key: g, Val: src.Uint64n(100), Kind: obliv.Real}
			}
			return a
		}
		m := Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mk(sp)
			obliv.AggregateSuffix(c, sp, a,
				func(e obliv.Elem) uint64 { return e.Key },
				func(e obliv.Elem) uint64 { return e.Val },
				func(x, y uint64) uint64 { return x + y },
				func(e obliv.Elem, i int, agg uint64) obliv.Elem { e.Aux = agg; return e })
		})
		rows = append(rows, Row{
			Task: "Aggr", Impl: "ours", N: n, M: m,
			NormW: float64(n), NormS: lg(n), NormQ: float64(n) / float64(cacheB),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mk(sp)
			obliv.PropagateFirst(c, sp, a,
				func(e obliv.Elem) uint64 { return e.Key },
				func(e obliv.Elem, i int) (uint64, bool) { return e.Val, true },
				func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem { e.Aux = v; return e })
		})
		rows = append(rows, Row{
			Task: "Prop", Impl: "ours", N: n, M: m,
			NormW: float64(n), NormS: lg(n), NormQ: float64(n) / float64(cacheB),
		})

		// Send-receive: n senders, n receivers.
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			src := prng.New(uint64(n) + 1)
			sources := mem.Alloc[obliv.Elem](sp, n)
			dests := mem.Alloc[obliv.Elem](sp, n)
			for i := 0; i < n; i++ {
				sources.Data()[i] = obliv.Elem{Key: uint64(i), Val: src.Uint64(), Kind: obliv.Real}
				dests.Data()[i] = obliv.Elem{Key: src.Uint64n(uint64(n)), Kind: obliv.Real}
			}
			obliv.SendReceive(c, sp, sources, dests, srt)
		})
		rows = append(rows, Row{
			Task: "S-R", Impl: "ours", N: n, M: m,
			NormW: float64(2*n) * lg(2*n) * lg(2*n), // bitonic networks: n log² n
			NormS: lg(n) * lg(n) * loglog(n),
			NormQ: float64(n) / float64(cacheB) * logM(n, cacheM) * lg(n),
		})
	}

	// One CRCW PRAM step, oblivious (Thm 4.1) vs direct: p = s = n.
	for _, n := range pramSizes {
		mach := &pram.AddConstMachine{N: n, K: 1}
		m := Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			pram.RunOblivious(c, sp, mach, make([]uint64, n), srt)
		})
		rows = append(rows, Row{
			Task: "PRAM-step", Impl: "oblivious(Thm4.1)", N: n, M: m,
			NormW: float64(2*n) * lg(2*n) * lg(2*n),
			NormS: lg(n) * lg(n) * loglog(n),
			NormQ: float64(n) / float64(cacheB) * logM(n, cacheM) * lg(n),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			pram.RunDirect(c, sp, mach, make([]uint64, n))
		})
		rows = append(rows, Row{
			Task: "PRAM-step", Impl: "direct(insecure)", N: n, M: m,
			NormW: float64(n), NormS: lg(n), NormQ: float64(n) / float64(cacheB),
		})
	}

	writeRows(w, "Table 2 — oblivious building blocks and PRAM simulation", rows)
	fmt.Fprintln(w, `
Paper bounds (Table 2): Aggr/Prop W=O(n), T=O(log n), Q=O(n/B) — prior
best span was O(log² n). S-R within the sorting bound, T=Õ(log n) with an
O(log n)-factor span gap to the naive prior. PRAM step: W=O(Wsort(p+s)),
T=O(Tsort(p+s)), Q=O(Qsort(p+s)). Network sorts are bitonic (AKS
stand-in), so sorting-bound rows carry one extra log in W (DESIGN.md §5).`)
}

// ORAMScaling demonstrates Theorem 4.2's shape: per-batch work grows
// polylogarithmically with the logical space s while a flat oblivious
// memory (Theorem 4.1 style) grows linearly.
func ORAMScaling(w io.Writer, cacheM, cacheB int, quick bool) {
	dLogs := []int{8, 10, 12, 14}
	if quick {
		dLogs = []int{8, 10, 12}
	}
	const batch = 4
	var rows []Row
	for _, dLog := range dLogs {
		s := 1 << dLog
		m := Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			o := oram.New(c, sp, dLog, batch, oram.Options{Seed: 3})
			reqs := []oram.Req{{Addr: 1}, {Addr: 5, Write: true, Val: 9}, {Addr: 2}, {Addr: 3}}
			o.Access(c, sp, reqs)
		})
		rows = append(rows, Row{
			Task: "OPRAM-batch", Impl: "tree(Thm4.2)", N: s, M: m,
			NormW: float64(batch) * lg(s) * lg(s),
			NormS: lg(s) * lg(s),
			NormQ: float64(batch) * lg(s) * logM(s, cacheM),
		})
		m = Meter(cacheM, cacheB, func(c *forkjoin.Ctx, sp *mem.Space) {
			memory := mem.Alloc[uint64](sp, s)
			addrs := mem.FromSlice(sp, []uint64{1, 5, 2, 3})
			pram.Gather(c, sp, memory, addrs, bitonic.CacheAgnostic{})
		})
		rows = append(rows, Row{
			Task: "OPRAM-batch", Impl: "flat(Thm4.1-style)", N: s, M: m,
			NormW: float64(s) * lg(s) * lg(s),
			NormS: lg(s) * lg(s),
			NormQ: float64(s) / float64(cacheB) * logM(s, cacheM),
		})
	}
	writeRows(w, "Theorem 4.2 — per-batch cost vs logical space s", rows)
	fmt.Fprintln(w, `
The tree OPRAM's absolute work should stay near-flat as s grows 64x,
while the flat gather's work grows linearly (watch the raw 'work' column;
the normalized factors confirm each shape separately).`)
}
