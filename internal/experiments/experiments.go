// Package experiments regenerates every table and figure of the paper
// (see DESIGN.md §4 for the experiment index): measured work, span and
// ideal-cache misses come from the metered executor, and each row is
// printed next to the paper's asymptotic claim plus a normalized factor
// (measured / bound), which should stay roughly flat across sizes when the
// implementation matches the claimed shape.
package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// DefaultCacheM and DefaultCacheB are the harness cache parameters (in
// elements).
const (
	DefaultCacheM = 1 << 12
	DefaultCacheB = 1 << 5
)

// Meter runs fn under the metered executor with the given cache.
func Meter(cacheM, cacheB int, fn func(c *forkjoin.Ctx, sp *mem.Space)) *forkjoin.Metrics {
	sp := mem.NewSpace()
	return forkjoin.RunMetered(forkjoin.MeterOpts{CacheM: cacheM, CacheB: cacheB},
		func(c *forkjoin.Ctx) { fn(c, sp) })
}

// Row is one measured configuration.
type Row struct {
	Task string
	Impl string
	N    int
	M    *forkjoin.Metrics
	// Norm are the normalization divisors for (work, span, misses): the
	// paper's bound evaluated at N. Factors = measured/Norm.
	NormW, NormS, NormQ float64
}

func lg(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

func loglog(n int) float64 {
	l := lg(n)
	if l < 2 {
		return 1
	}
	return math.Log2(l)
}

// logM returns log_M(n) clamped at 1.
func logM(n, m int) float64 {
	if n <= m {
		return 1
	}
	v := math.Log(float64(n)) / math.Log(float64(m))
	if v < 1 {
		return 1
	}
	return v
}

// writeRows prints rows with normalized factors.
func writeRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "task\timpl\tn\twork\tspan\tcache-misses\tW/bound\tT/bound\tQ/bound")
	for _, r := range rows {
		fw, fs, fq := "-", "-", "-"
		if r.NormW > 0 {
			fw = fmt.Sprintf("%.2f", float64(r.M.Work)/r.NormW)
		}
		if r.NormS > 0 {
			fs = fmt.Sprintf("%.2f", float64(r.M.Span)/r.NormS)
		}
		if r.NormQ > 0 {
			fq = fmt.Sprintf("%.2f", float64(r.M.CacheMisses)/r.NormQ)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%s\t%s\t%s\n",
			r.Task, r.Impl, r.N, r.M.Work, r.M.Span, r.M.CacheMisses, fw, fs, fq)
	}
	tw.Flush()
}
