package experiments

import (
	"fmt"
	"io"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/graph"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/pram"
	"oblivmc/internal/prng"
)

// OblivCheck runs the §B obliviousness verification across the stack: each
// component is executed on two different inputs of the same size with the
// same random tape, and the adversary's-view fingerprints must be
// identical. Returns true iff every check passes.
func OblivCheck(w io.Writer) bool {
	fmt.Fprintln(w, "\n== §B — access-pattern independence (fixed-tape trace equality) ==")
	allOK := true
	check := func(name string, run func(variant uint64) *forkjoin.Metrics) {
		a, b := run(1), run(2)
		ok := a.Trace.Equal(b.Trace)
		status := "PASS"
		if !ok {
			status = "FAIL"
			allOK = false
		}
		fmt.Fprintf(w, "%-34s %s  (events: %d)\n", name, status, a.Trace.Count)
	}
	trace := forkjoin.MeterOpts{EnableTrace: true}
	srt := bitonic.CacheAgnostic{}

	check("bitonic sort (cache-agnostic)", func(v uint64) *forkjoin.Metrics {
		sp := mem.NewSpace()
		a := elemsOf(sp, distinctKeys(v, 256))
		return forkjoin.RunMetered(trace, func(c *forkjoin.Ctx) {
			srt.Sort(c, sp, a, 0, 256, func(e obliv.Elem) uint64 { return e.Key })
		})
	})
	check("bin placement (§C.1)", func(v uint64) *forkjoin.Metrics {
		sp := mem.NewSpace()
		src := prng.New(v)
		in := mem.Alloc[obliv.Elem](sp, 32)
		for i := 0; i < 32; i++ {
			in.Data()[i] = obliv.Elem{Lbl: src.Uint64n(4), Val: uint64(i), Kind: obliv.Real}
		}
		out := mem.Alloc[obliv.Elem](sp, 4*16)
		return forkjoin.RunMetered(trace, func(c *forkjoin.Ctx) {
			obliv.BinPlace(c, sp, in, out, 4, 16, func(e obliv.Elem) uint64 { return e.Lbl }, srt)
		})
	})
	check("send-receive (§F)", func(v uint64) *forkjoin.Metrics {
		sp := mem.NewSpace()
		src := prng.New(v)
		sources := mem.Alloc[obliv.Elem](sp, 64)
		dests := mem.Alloc[obliv.Elem](sp, 64)
		for i := 0; i < 64; i++ {
			sources.Data()[i] = obliv.Elem{Key: uint64(i), Val: src.Uint64(), Kind: obliv.Real}
			dests.Data()[i] = obliv.Elem{Key: src.Uint64n(100), Kind: obliv.Real}
		}
		return forkjoin.RunMetered(trace, func(c *forkjoin.Ctx) {
			obliv.SendReceive(c, sp, sources, dests, srt)
		})
	})
	check("REC-ORBA (§D.1)", func(v uint64) *forkjoin.Metrics {
		sp := mem.NewSpace()
		in := elemsOf(sp, distinctKeys(v, 256))
		p := core.Params{Z: 32, Gamma: 4}
		tape := prng.NewTape(99, core.TapeLen(256, p))
		return forkjoin.RunMetered(trace, func(c *forkjoin.Ctx) {
			core.RecORBA(c, sp, in, tape, p)
		})
	})
	check("random permutation (§C.3)", func(v uint64) *forkjoin.Metrics {
		sp := mem.NewSpace()
		in := elemsOf(sp, distinctKeys(v, 200))
		p := core.Params{Z: 32, Gamma: 4}
		tape := prng.NewTape(55, core.TapeLen(200, p))
		return forkjoin.RunMetered(trace, func(c *forkjoin.Ctx) {
			core.RandomPermutation(c, sp, in, tape, p)
		})
	})
	check("PRAM simulation (Thm 4.1)", func(v uint64) *forkjoin.Metrics {
		src := prng.New(v)
		const n = 16
		order := src.Perm(n)
		succ := make([]int, n)
		for k := 0; k < n-1; k++ {
			succ[order[k]] = order[k+1]
		}
		succ[order[n-1]] = order[n-1]
		m := &pram.PointerJumpMachine{N: n, Succ: succ}
		sp := mem.NewSpace()
		return forkjoin.RunMetered(trace, func(c *forkjoin.Ctx) {
			pram.RunOblivious(c, sp, m, m.InitialMemory(), srt)
		})
	})
	check("connected components (§5.3)", func(v uint64) *forkjoin.Metrics {
		edges := randomGraphEdges(v, 12, 10)
		sp := mem.NewSpace()
		return forkjoin.RunMetered(trace, func(c *forkjoin.Ctx) {
			graph.ConnectedComponentsOblivious(c, sp, 12, edges, core.Params{Z: 32, Gamma: 4})
		})
	})

	fmt.Fprintln(w, `
Each component ran on two different inputs of equal size under the same
random tape; PASS means the full address-and-DAG fingerprints matched.
(Randomized components with data-dependent *revealed* quantities — the
practical sort after ORP, MSF's convergence, ORAM leaves — are checked by
distribution tests in the unit suites instead; see DESIGN.md §3.)`)
	return allOK
}
