package prng

import (
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestUint64nRange(t *testing.T) {
	s := New(7)
	for _, n := range []uint64{1, 2, 3, 7, 16, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			v := s.Uint64n(n)
			if v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	s := New(99)
	const buckets = 8
	const draws = 80000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(buckets)]++
	}
	exp := draws / buckets
	for b, c := range counts {
		if c < exp*9/10 || c > exp*11/10 {
			t.Fatalf("bucket %d count %d far from expected %d", b, c, exp)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(3)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(11)
	const n = 5
	const trials = 50000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[s.Perm(n)[0]]++
	}
	exp := trials / n
	for i, c := range counts {
		if c < exp*85/100 || c > exp*115/100 {
			t.Fatalf("first element %d occurred %d times, expected ~%d", i, c, exp)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestTapeSequence(t *testing.T) {
	tp := NewTape(13, 100)
	if tp.Len() != 100 {
		t.Fatalf("Len = %d", tp.Len())
	}
	first := tp.At(0)
	if got := tp.Next(); got != first {
		t.Fatalf("Next() = %d, At(0) = %d", got, first)
	}
	if tp.Remaining() != 99 {
		t.Fatalf("Remaining = %d", tp.Remaining())
	}
	tp.Reset()
	if tp.Remaining() != 100 {
		t.Fatalf("after Reset Remaining = %d", tp.Remaining())
	}
}

func TestTapeReproducible(t *testing.T) {
	a := NewTape(21, 50)
	b := NewTape(21, 50)
	for i := 0; i < 50; i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("tapes with same seed differ at %d", i)
		}
	}
}

func TestTapeExhaustionPanics(t *testing.T) {
	tp := NewTape(1, 1)
	tp.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted tape did not panic")
		}
	}()
	tp.Next()
}

func TestTapeNextN(t *testing.T) {
	tp := NewTape(9, 1000)
	for i := 0; i < 500; i++ {
		if v := tp.NextN(10); v >= 10 {
			t.Fatalf("NextN(10) = %d", v)
		}
	}
	for i := 0; i < 500; i++ {
		if v := tp.NextN(16); v >= 16 {
			t.Fatalf("NextN(16) = %d", v)
		}
	}
}

func TestMix64Injective(t *testing.T) {
	// Property: Mix64 behaves like a bijection-ish mixer — no collisions on
	// a sample, and changing one input bit changes the output.
	seen := make(map[uint64]uint64)
	if err := quick.Check(func(x uint64) bool {
		h := Mix64(x)
		if prev, ok := seen[h]; ok && prev != x {
			return false
		}
		seen[h] = x
		return Mix64(x^1) != h
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMix64Advances(t *testing.T) {
	s := uint64(0)
	a := SplitMix64(&s)
	b := SplitMix64(&s)
	if a == b {
		t.Fatal("SplitMix64 produced identical consecutive values")
	}
	if s == 0 {
		t.Fatal("SplitMix64 did not advance state")
	}
}
