// Package prng provides deterministic pseudo-random number generation for
// the oblivmc library.
//
// All randomness consumed by the oblivious algorithms in this module is
// drawn from pre-generated "tapes" (see Tape). Pinning the coins to a tape
// makes the access pattern of a randomized data-oblivious algorithm a
// deterministic function of (input length, tape), which is what lets the
// test suite check obliviousness as exact trace equality across different
// inputs. It also makes every experiment reproducible from a single seed.
//
// The generator is xoshiro256**, seeded via splitmix64. It is not a CSPRNG;
// the paper's algorithms only need statistically uniform coins, and the
// security notion being reproduced concerns access patterns, not key
// material.
package prng

// SplitMix64 advances the splitmix64 state and returns the next value.
// It is used for seeding and for cheap stateless mixing.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a well-mixed function of x (stateless splitmix64 finalizer).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Source is a xoshiro256** generator.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = SplitMix64(&sm)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero outputs in a row, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next pseudo-random value.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
// Uses Lemire's multiply-shift rejection method.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n(0)")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Rejection sampling on the high bits to avoid modulo bias.
	threshold := -n % n // = (2^64 - n) mod n
	for {
		v := s.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniform random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Tape is a pre-generated sequence of random words. Oblivious algorithms
// take a *Tape rather than a live generator so that the coins (and hence
// the access pattern) are fixed before execution begins.
type Tape struct {
	words []uint64
	pos   int
}

// NewTape draws n words from seed.
func NewTape(seed uint64, n int) *Tape {
	src := New(seed)
	w := make([]uint64, n)
	for i := range w {
		w[i] = src.Uint64()
	}
	return &Tape{words: w}
}

// TapeFromWords wraps an existing word slice (used by tests).
func TapeFromWords(w []uint64) *Tape { return &Tape{words: w} }

// Next returns the next word on the tape. It panics if the tape is
// exhausted: the caller is responsible for sizing tapes, and silently
// recycling coins would invalidate the obliviousness analysis.
func (t *Tape) Next() uint64 {
	if t.pos >= len(t.words) {
		panic("prng: tape exhausted")
	}
	w := t.words[t.pos]
	t.pos++
	return w
}

// NextN returns the next word reduced to [0, n).
func (t *Tape) NextN(n uint64) uint64 {
	if n == 0 {
		panic("prng: NextN(0)")
	}
	if n&(n-1) == 0 {
		return t.Next() & (n - 1)
	}
	hi, _ := mul64(t.Next(), n)
	return hi
}

// At returns word i without consuming tape position. Algorithms that
// conceptually give coin i to element i use At so the mapping is positional
// (and therefore independent of execution order under parallelism).
func (t *Tape) At(i int) uint64 {
	return t.words[i]
}

// Len returns the number of words on the tape.
func (t *Tape) Len() int { return len(t.words) }

// Remaining returns the number of unconsumed words.
func (t *Tape) Remaining() int { return len(t.words) - t.pos }

// Reset rewinds the tape to the beginning.
func (t *Tape) Reset() { t.pos = 0 }
