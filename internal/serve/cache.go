package serve

import (
	"container/list"
	"sync"

	"oblivmc"
)

// cached is one materialized query result: the table (carrying its
// sorted-by token) and the stats of the run that produced it.
type cached struct {
	key  string
	tab  oblivmc.Table
	plan string
}

// resultCache is the cross-query materialized-result cache: canonical
// key → result table, LRU-bounded. Keys (spec.go canonicalKey) are pure
// functions of request-visible data — the canonical query spec and the
// name@version of every referenced table — so a hit/miss, and the trace
// difference it causes (zero passes vs the full plan), reveals only what
// the request stream already reveals. Version-embedded keys make re-load
// invalidation structural: entries referencing a replaced table can never
// be keyed again and age out of the LRU.
type resultCache struct {
	mu  sync.Mutex
	max int
	lru *list.List // front = most recent; values are *cached
	at  map[string]*list.Element
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = 128
	}
	return &resultCache{max: max, lru: list.New(), at: map[string]*list.Element{}}
}

func (c *resultCache) get(key string) (cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.at[key]
	if !ok {
		return cached{}, false
	}
	c.lru.MoveToFront(el)
	return *el.Value.(*cached), true
}

func (c *resultCache) put(e cached) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.at[e.key]; ok {
		el.Value = &e
		c.lru.MoveToFront(el)
		return
	}
	c.at[e.key] = c.lru.PushFront(&e)
	for c.lru.Len() > c.max {
		old := c.lru.Back()
		delete(c.at, old.Value.(*cached).key)
		c.lru.Remove(old)
	}
}

// len reports the entry count (tests).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
