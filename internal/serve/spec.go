package serve

import (
	"errors"
	"fmt"
	"strings"

	"oblivmc"
)

// ErrBadSpec is returned for a malformed query spec (unknown table names
// map to ErrNoSuchTable instead).
var ErrBadSpec = errors.New("serve: bad query spec")

// FilterSpec is the declarative filter clause. Col selects the compared
// column: a key column by index, or the value column when Col == -1. A
// key-column filter is declared key-only to the planner (it drops whole
// key groups), which is what lets it push below Distinct/GroupBy.
type FilterSpec struct {
	Col   int    `json:"col"`
	Op    string `json:"op"` // eq, ne, lt, le, gt, ge
	Value uint64 `json:"value"`
}

// JoinSpec is the declarative join clause: the named registered relation
// becomes the query's join-left side, MaxOut its public output capacity.
// JoinCap may name the "auto" capacity mode instead of MaxOut: the engine's
// advisor sizes the output at the worst-case match bound (which cannot
// overflow), revealing that bound as public shape. Setting both is an
// error.
type JoinSpec struct {
	Table   string `json:"table"`
	MaxOut  int    `json:"max_out,omitempty"`
	JoinCap string `json:"join_cap,omitempty"`
}

// QuerySpec is the wire form of one query: a declarative mirror of
// oblivmc.Query with relation references by registered name. The whole
// spec is public request data — it is what the result cache keys on
// (canonicalKey), alongside the versions of the tables it references.
type QuerySpec struct {
	// Table names the queried relation.
	Table string `json:"table"`
	// Join, Filter, Distinct, GroupBy, TopK mirror oblivmc.Query. GroupBy
	// is the aggregation name: sum, count, min, max, avg, var.
	Join     *JoinSpec   `json:"join,omitempty"`
	Filter   *FilterSpec `json:"filter,omitempty"`
	Distinct bool        `json:"distinct,omitempty"`
	GroupBy  string      `json:"group_by,omitempty"`
	TopK     int         `json:"top_k,omitempty"`
	// KeyOrderOut materializes the result in key order with the OrderKeys
	// token (the cross-query sort-skipping seam; see oblivmc.Query).
	KeyOrderOut bool `json:"key_order_out,omitempty"`
	// NoOptimize runs the pre-fusion staged baseline.
	NoOptimize bool `json:"no_optimize,omitempty"`
	// As, when set, stores the result in the registry under this name
	// (replacing any existing binding — its version bumps). Not part of
	// the cache key: it names the result, it does not change it.
	As string `json:"as,omitempty"`
	// Graph runs a graph operator over the named width-2 edge table
	// instead of the relational pipeline: "cc" (min-hook connected
	// components), "msf" (minimum spanning forest), or "pagerank".
	// Mutually exclusive with the relational clauses (Join, Filter,
	// Distinct, GroupBy, TopK, KeyOrderOut, NoOptimize); As still stores
	// the result. Like every relational field, the pair (Graph,
	// GraphRounds) is public request shape and part of the cache key.
	Graph string `json:"graph,omitempty"`
	// GraphRounds is the workload's round parameter: for "cc" a positive
	// value runs exactly that many fixed rounds (0 = run to convergence);
	// for "pagerank" the iteration count (0 = 5); "msf" ignores it.
	GraphRounds int `json:"graph_rounds,omitempty"`
}

// graphOps maps the wire names to the public graph operators.
var graphOps = map[string]oblivmc.GraphOp{
	"cc":       oblivmc.GraphOpComponents,
	"msf":      oblivmc.GraphOpMSF,
	"pagerank": oblivmc.GraphOpPageRank,
}

// compileGraph resolves a graph spec against the registry: the edge
// table, the operator, the resolved round parameter, and the canonical
// cache key. The relational clauses must be absent.
func (s QuerySpec) compileGraph(reg *Registry) (oblivmc.Table, oblivmc.GraphOp, int, string, error) {
	fail := func(err error) (oblivmc.Table, oblivmc.GraphOp, int, string, error) {
		return oblivmc.Table{}, 0, 0, "", err
	}
	op, ok := graphOps[s.Graph]
	if !ok {
		return fail(fmt.Errorf("%w: unknown graph op %q (cc, msf, pagerank)", ErrBadSpec, s.Graph))
	}
	if s.Join != nil || s.Filter != nil || s.Distinct || s.GroupBy != "" ||
		s.TopK != 0 || s.KeyOrderOut || s.NoOptimize {
		return fail(fmt.Errorf("%w: graph %q excludes the relational clauses", ErrBadSpec, s.Graph))
	}
	if s.GraphRounds < 0 {
		return fail(fmt.Errorf("%w: negative graph_rounds", ErrBadSpec))
	}
	if s.Table == "" {
		return fail(fmt.Errorf("%w: missing table", ErrBadSpec))
	}
	tab, ver, err := reg.Get(s.Table)
	if err != nil {
		return fail(err)
	}
	rounds := s.GraphRounds
	if op == oblivmc.GraphOpPageRank && rounds == 0 {
		rounds = 5
	}
	key := fmt.Sprintf("t=%s@%d|graph=%s|r=%d", s.Table, ver, s.Graph, rounds)
	return tab, op, rounds, key, nil
}

var aggOf = map[string]oblivmc.Agg{
	"":      oblivmc.AggNone,
	"sum":   oblivmc.AggSum,
	"count": oblivmc.AggCount,
	"min":   oblivmc.AggMin,
	"max":   oblivmc.AggMax,
	"avg":   oblivmc.AggAvg,
	"var":   oblivmc.AggVar,
}

// compileFilter builds the wide-row predicate of f over width w and
// reports whether it is key-only. The predicate runs over every row
// regardless of outcome (the mark pass is oblivious); only its
// declaration — column class and operator, public spec fields — reaches
// the planner.
func compileFilter(f *FilterSpec, w int) (func(oblivmc.WideRow) bool, bool, error) {
	if f == nil {
		return nil, false, nil
	}
	if f.Col < -1 || f.Col >= w {
		return nil, false, fmt.Errorf("%w: filter col %d out of range for width %d (use -1 for the value column)", ErrBadSpec, f.Col, w)
	}
	var cmp func(a, b uint64) bool
	switch f.Op {
	case "eq":
		cmp = func(a, b uint64) bool { return a == b }
	case "ne":
		cmp = func(a, b uint64) bool { return a != b }
	case "lt":
		cmp = func(a, b uint64) bool { return a < b }
	case "le":
		cmp = func(a, b uint64) bool { return a <= b }
	case "gt":
		cmp = func(a, b uint64) bool { return a > b }
	case "ge":
		cmp = func(a, b uint64) bool { return a >= b }
	default:
		return nil, false, fmt.Errorf("%w: unknown filter op %q", ErrBadSpec, f.Op)
	}
	col, val := f.Col, f.Value
	if col == -1 {
		return func(r oblivmc.WideRow) bool { return cmp(r.Val, val) }, false, nil
	}
	return func(r oblivmc.WideRow) bool { return cmp(r.Keys[col], val) }, true, nil
}

// compile resolves s against the registry into a concrete (table, query)
// pair plus the canonical cache key. The key embeds every referenced
// table as name@version, so re-loads structurally invalidate dependent
// entries.
func (s QuerySpec) compile(reg *Registry) (oblivmc.Table, oblivmc.Query, string, error) {
	if s.Table == "" {
		return oblivmc.Table{}, oblivmc.Query{}, "", fmt.Errorf("%w: missing table", ErrBadSpec)
	}
	tab, ver, err := reg.Get(s.Table)
	if err != nil {
		return oblivmc.Table{}, oblivmc.Query{}, "", err
	}
	agg, ok := aggOf[s.GroupBy]
	if !ok {
		return oblivmc.Table{}, oblivmc.Query{}, "", fmt.Errorf("%w: unknown aggregation %q", ErrBadSpec, s.GroupBy)
	}
	if s.TopK < 0 {
		return oblivmc.Table{}, oblivmc.Query{}, "", fmt.Errorf("%w: negative top_k", ErrBadSpec)
	}
	var key strings.Builder
	fmt.Fprintf(&key, "t=%s@%d", s.Table, ver)
	q := oblivmc.Query{
		Distinct:    s.Distinct,
		GroupBy:     agg,
		TopK:        s.TopK,
		KeyOrderOut: s.KeyOrderOut,
		NoOptimize:  s.NoOptimize,
	}
	if s.Join != nil {
		left, lver, err := reg.Get(s.Join.Table)
		if err != nil {
			return oblivmc.Table{}, oblivmc.Query{}, "", err
		}
		maxOut := s.Join.MaxOut
		switch s.Join.JoinCap {
		case "":
		case "auto":
			if maxOut != 0 {
				return oblivmc.Table{}, oblivmc.Query{}, "", fmt.Errorf("%w: join_cap \"auto\" and max_out %d are mutually exclusive", ErrBadSpec, maxOut)
			}
			maxOut = oblivmc.JoinCapAuto
		default:
			return oblivmc.Table{}, oblivmc.Query{}, "", fmt.Errorf("%w: unknown join_cap %q (only \"auto\")", ErrBadSpec, s.Join.JoinCap)
		}
		q.Join = &oblivmc.JoinSpec{Left: left, MaxOut: maxOut}
		// The auto sentinel keys as its own token: the resolved capacity
		// depends on the left table's contents, so the version stamp — not
		// the bound — is what keeps cached entries honest.
		fmt.Fprintf(&key, "|j=%s@%d:%d", s.Join.Table, lver, maxOut)
	}
	pred, keyOnly, err := compileFilter(s.Filter, tab.Width())
	if err != nil {
		return oblivmc.Table{}, oblivmc.Query{}, "", err
	}
	if pred != nil {
		q.FilterWide = pred
		q.FilterKeyOnly = keyOnly
		fmt.Fprintf(&key, "|f=%d %s %d", s.Filter.Col, s.Filter.Op, s.Filter.Value)
	}
	fmt.Fprintf(&key, "|d=%t|g=%s|k=%d|o=%t|n=%t",
		s.Distinct, s.GroupBy, s.TopK, s.KeyOrderOut, s.NoOptimize)
	return tab, q, key.String(), nil
}
