package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oblivmc"
)

// Admission errors.
var (
	// ErrBusy is returned when no session lane frees up within the queue
	// timeout — the bounded-admission backpressure signal (HTTP 503).
	ErrBusy = errors.New("serve: server busy, admission queue timed out")
	// ErrDraining is returned for queries arriving after Shutdown began.
	ErrDraining = errors.New("serve: server draining")
)

// Options configures a Server.
type Options struct {
	// Lanes bounds the queries in flight: each lane owns one
	// oblivmc.Session (persistent fork-join pool, address space, arena,
	// shuffle sorter) and serves one query at a time. 0 = GOMAXPROCS/2,
	// min 1 — queries are internally parallel, so a few lanes saturate
	// the machine.
	Lanes int
	// QueueTimeout bounds how long an admitted request waits for a free
	// lane before failing with ErrBusy (0 = 5s).
	QueueTimeout time.Duration
	// QueryTimeout bounds one query's execution once it holds a lane
	// (0 = unlimited). An expired query aborts cooperatively at its next
	// public-shape checkpoint and fails with oblivmc.ErrDeadline
	// (HTTP 504); the lane stays healthy and returns to the free list.
	QueryTimeout time.Duration
	// CacheSize bounds the materialized-result cache entries (0 = 128).
	CacheSize int
	// Exec is the execution config every lane session runs under. Its
	// Workers field sizes each lane's pool (0 = GOMAXPROCS split evenly
	// across lanes, min 1).
	Exec oblivmc.Config
}

// lane is one admission slot: a session plus the size bucket (log₂ of
// the largest relation length) it has served, which is what its arena,
// tie planes, and Beneš level buffers are warmed for.
type lane struct {
	sess   *oblivmc.Session
	bucket int
}

// Server is the oblivious analytics server: registry + result cache +
// size-bucketed lane free list. It is the transport-independent core —
// Execute/ExplainSpec/LoadTable are plain methods the tests drive
// directly — with an http.Handler surface on top.
type Server struct {
	reg   *Registry
	cache *resultCache
	opts  Options

	// sem holds one token per lane; acquiring a token guarantees the
	// free list below is non-empty.
	sem  chan struct{}
	mu   sync.Mutex
	free []*lane

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	// cancels tracks the per-request cancel funcs of in-flight queries so
	// ShutdownDrain can abort stragglers past the drain deadline.
	cancelMu sync.Mutex
	cancelID int64
	cancels  map[int64]context.CancelFunc

	// running / peak gauge the queries concurrently holding lanes — the
	// admission-bound observable the stress test asserts on.
	running atomic.Int64
	peak    atomic.Int64
}

// NewServer builds a server and its lane sessions.
func NewServer(opts Options) *Server {
	if opts.Lanes <= 0 {
		opts.Lanes = runtime.GOMAXPROCS(0) / 2
		if opts.Lanes < 1 {
			opts.Lanes = 1
		}
	}
	if opts.QueueTimeout <= 0 {
		opts.QueueTimeout = 5 * time.Second
	}
	cfg := opts.Exec
	if cfg.Mode == oblivmc.ModeParallel && cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0) / opts.Lanes
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	opts.Exec = cfg
	s := &Server{
		reg:     NewRegistry(),
		cache:   newResultCache(opts.CacheSize),
		opts:    opts,
		sem:     make(chan struct{}, opts.Lanes),
		cancels: map[int64]context.CancelFunc{},
	}
	for i := 0; i < opts.Lanes; i++ {
		s.free = append(s.free, &lane{sess: oblivmc.NewSession(cfg)})
		s.sem <- struct{}{}
	}
	return s
}

// Registry exposes the server's table registry.
func (s *Server) Registry() *Registry { return s.reg }

// Lanes returns the admission bound.
func (s *Server) Lanes() int { return s.opts.Lanes }

// WorkersPerLane returns the resolved fork-join pool size each lane
// session runs with (1 outside ModeParallel). The machine's cores are
// split lanes ways by default, clamped to at least one worker per lane
// when lanes exceed GOMAXPROCS.
func (s *Server) WorkersPerLane() int {
	if s.opts.Exec.Mode == oblivmc.ModeParallel && s.opts.Exec.Workers > 0 {
		return s.opts.Exec.Workers
	}
	return 1
}

// PeakConcurrency returns the high-water mark of queries concurrently
// holding lanes since startup (always <= Lanes — the admission-control
// invariant the stress test asserts).
func (s *Server) PeakConcurrency() int { return int(s.peak.Load()) }

// Running returns the queries currently holding lanes — the gauge the
// chaos test asserts returns to zero (no leaked lanes) after a storm of
// cancellations, timeouts, and injected panics.
func (s *Server) Running() int { return int(s.running.Load()) }

// bucketOf maps a relation length to its lane size bucket (log₂ ceil).
func bucketOf(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}

// checkout acquires a lane, preferring the best-fit size bucket: the
// largest bucket <= hint (grown exactly to this request, keeping
// bigger-warmed lanes free for the big requests that need their
// caches), else the smallest bucket above it. Blocks up to the queue
// timeout; admission order beyond the token queue is best-effort.
func (s *Server) checkout(ctx context.Context, hint int) (*lane, error) {
	select {
	case <-s.sem:
	default:
		t := time.NewTimer(s.opts.QueueTimeout)
		defer t.Stop()
		select {
		case <-s.sem:
		case <-t.C:
			return nil, ErrBusy
		case <-ctx.Done():
			return nil, queueAbortErr(ctx)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	best := -1
	for i, l := range s.free {
		switch {
		case best == -1:
			best = i
		case l.bucket <= hint && (s.free[best].bucket > hint || l.bucket > s.free[best].bucket):
			best = i
		case l.bucket > hint && s.free[best].bucket > hint && l.bucket < s.free[best].bucket:
			best = i
		}
	}
	l := s.free[best]
	s.free = append(s.free[:best], s.free[best+1:]...)
	n := s.running.Add(1)
	for {
		p := s.peak.Load()
		if n <= p || s.peak.CompareAndSwap(p, n) {
			break
		}
	}
	return l, nil
}

// checkin returns a lane to the free list.
func (s *Server) checkin(l *lane, hint int) {
	if hint > l.bucket {
		l.bucket = hint
	}
	s.running.Add(-1)
	s.mu.Lock()
	s.free = append(s.free, l)
	s.mu.Unlock()
	s.sem <- struct{}{}
}

// retire replaces a poisoned lane: the session that panicked is closed
// (its arena and sorter state are suspect) and a cold session takes the
// slot, so the admission token returns to circulation and the panic never
// shrinks capacity. The rebuilt lane starts at bucket 0 — it is warmed
// for nothing.
func (s *Server) retire(l *lane) {
	l.sess.Close()
	fresh := &lane{sess: oblivmc.NewSession(s.opts.Exec)}
	s.running.Add(-1)
	s.mu.Lock()
	s.free = append(s.free, fresh)
	s.mu.Unlock()
	s.sem <- struct{}{}
}

// release returns the lane after a run: healthy lanes check in warmed to
// hint, poisoned lanes (the run returned ErrInternal) are retired and
// replaced.
func (s *Server) release(l *lane, hint int, err error) {
	if err != nil && errors.Is(err, oblivmc.ErrInternal) {
		s.retire(l)
		return
	}
	s.checkin(l, hint)
}

// trackCancel registers a per-request cancel func for drain-time abort;
// the returned func unregisters it.
func (s *Server) trackCancel(cancel context.CancelFunc) (untrack func()) {
	s.cancelMu.Lock()
	s.cancelID++
	id := s.cancelID
	s.cancels[id] = cancel
	s.cancelMu.Unlock()
	return func() {
		s.cancelMu.Lock()
		delete(s.cancels, id)
		s.cancelMu.Unlock()
	}
}

// queryCtx derives the execution context of one admitted request: the
// caller's context (client disconnect), the query timeout, and a cancel
// func registered for drain-time abort.
func (s *Server) queryCtx(ctx context.Context) (context.Context, func()) {
	var cancel context.CancelFunc
	if s.opts.QueryTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	untrack := s.trackCancel(cancel)
	return ctx, func() {
		untrack()
		cancel()
	}
}

// queueAbortErr types a context abort observed while still queued for a
// lane: deadline → ErrDeadline, disconnect/cancel → ErrCanceled. No
// execution happened, so there is no pass site to report.
func queueAbortErr(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("%w (while queued for a lane)", oblivmc.ErrDeadline)
	}
	return fmt.Errorf("%w (while queued for a lane)", oblivmc.ErrCanceled)
}

// admit registers one in-flight request, failing when draining.
func (s *Server) admit() error {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return ErrDraining
	}
	s.inflight.Add(1)
	return nil
}

// Shutdown drains the server: new queries fail with ErrDraining, in-
// flight queries finish, then every lane session is closed. Idempotent.
func (s *Server) Shutdown() { s.ShutdownDrain(0) }

// ShutdownDrain is Shutdown with a drain deadline: in-flight queries get
// up to d to finish on their own; stragglers still running at the
// deadline are canceled (they abort cooperatively at their next
// public-shape checkpoint and their callers see ErrCanceled) and then
// awaited, so the method never returns with a query still holding a
// lane. d <= 0 waits indefinitely. Returns the number of stragglers
// canceled. Idempotent: later calls return 0 immediately.
func (s *Server) ShutdownDrain(d time.Duration) int {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		return 0
	}
	s.draining = true
	s.drainMu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	canceled := 0
	if d > 0 {
		t := time.NewTimer(d)
		select {
		case <-drained:
			t.Stop()
		case <-t.C:
			s.cancelMu.Lock()
			for _, cancel := range s.cancels {
				cancel()
				canceled++
			}
			s.cancelMu.Unlock()
			<-drained
		}
	} else {
		<-drained
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.free {
		l.sess.Close()
	}
	return canceled
}

// Stats is the public execution accounting of one served query.
type Stats struct {
	// Cached reports a result-cache hit: the query ran zero oblivious
	// sorts (or any other passes) — the response is the materialization.
	Cached bool `json:"cached"`
	// SortPasses is the executed sort-pass count (0 on a cache hit).
	SortPasses int `json:"sort_passes"`
	// ColdSortPasses is the plan's cost with no input-order token — the
	// baseline the cross-query skip is measured against.
	ColdSortPasses int `json:"cold_sort_passes"`
	// Plan is the rendered plan of the executed (or cached) query.
	Plan string `json:"plan"`
	// Order is the result's sorted-by token.
	Order string `json:"order"`
}

// Result is the outcome of one Execute.
type Result struct {
	Table oblivmc.Table
	Stats Stats
	// StoredAs / StoredVersion report the registry binding when the spec
	// carried As.
	StoredAs      string
	StoredVersion int
}

// Execute runs one query spec end to end: compile against the registry,
// serve from the result cache when the canonical key hits, otherwise
// check out a session lane and run, then materialize (cache + optional
// registry store). Safe for concurrent use; concurrency is bounded by
// the lane count.
func (s *Server) Execute(spec QuerySpec) (Result, error) {
	return s.ExecuteCtx(context.Background(), spec)
}

// ExecuteCtx is Execute under a caller context: the query aborts
// cooperatively (at its next public-shape checkpoint) when ctx is
// canceled — client disconnect via the HTTP handler — or when the
// server's QueryTimeout expires, surfacing oblivmc.ErrCanceled or
// oblivmc.ErrDeadline respectively. A run that panics surfaces
// oblivmc.ErrInternal and the lane that ran it is retired and rebuilt,
// returning its admission token.
func (s *Server) ExecuteCtx(ctx context.Context, spec QuerySpec) (Result, error) {
	if err := s.admit(); err != nil {
		return Result{}, err
	}
	defer s.inflight.Done()

	if spec.Graph != "" {
		return s.executeGraph(ctx, spec)
	}

	tab, q, key, err := spec.compile(s.reg)
	if err != nil {
		return Result{}, err
	}
	var res Result
	if hit, ok := s.cache.get(key); ok {
		res = Result{
			Table: hit.tab,
			Stats: Stats{Cached: true, Plan: hit.plan, Order: hit.tab.Order().String()},
		}
	} else {
		qctx, done := s.queryCtx(ctx)
		defer done()
		hint := bucketOf(tab.Len())
		if q.Join != nil {
			if b := bucketOf(q.Join.Left.Len() + tab.Len()); b > hint {
				hint = b
			}
		}
		l, err := s.checkout(qctx, hint)
		if err != nil {
			return Result{}, err
		}
		out, stats, err := l.sess.RunQueryCtx(qctx, tab, q)
		s.release(l, hint, err)
		if err != nil {
			return Result{}, err
		}
		s.cache.put(cached{key: key, tab: out, plan: stats.Plan})
		res = Result{
			Table: out,
			Stats: Stats{
				SortPasses:     stats.SortPasses,
				ColdSortPasses: stats.ColdSortPasses,
				Plan:           stats.Plan,
				Order:          stats.Order.String(),
			},
		}
	}
	if spec.As != "" {
		v, err := s.reg.Load(spec.As, res.Table, true)
		if err != nil {
			return Result{}, err
		}
		res.StoredAs, res.StoredVersion = spec.As, v
	}
	return res, nil
}

// executeGraph serves a graph spec: same admission, caching, and
// materialization path as the relational pipeline, with the operator run
// under a checked-out lane's admission slot (the graph operators manage
// their own execution internally, so the lane bounds concurrency rather
// than lending its session). Stats carry the operator's planned sort
// accounting — exact for fixed-round shapes, 0 with a "rounds revealed"
// plan for convergence runs.
func (s *Server) executeGraph(ctx context.Context, spec QuerySpec) (Result, error) {
	tab, op, rounds, key, err := spec.compileGraph(s.reg)
	if err != nil {
		return Result{}, err
	}
	var res Result
	if hit, ok := s.cache.get(key); ok {
		res = Result{
			Table: hit.tab,
			Stats: Stats{Cached: true, Plan: hit.plan, Order: hit.tab.Order().String()},
		}
	} else {
		qctx, done := s.queryCtx(ctx)
		defer done()
		hint := bucketOf(tab.Len())
		l, err := s.checkout(qctx, hint)
		if err != nil {
			return Result{}, err
		}
		// The graph operators run one-shot (the lane only bounds
		// concurrency, it doesn't lend its session), so cancellation
		// threads through the config token: one token covers every
		// constituent run of a composite operator like PageRank.
		cfg := s.opts.Exec
		cn := oblivmc.NewCancel()
		cfg.Cancel = cn
		stopWatch := make(chan struct{})
		go func() {
			select {
			case <-qctx.Done():
				cn.Cancel()
			case <-stopWatch:
			}
		}()
		var out oblivmc.Table
		switch op {
		case oblivmc.GraphOpMSF:
			out, _, err = oblivmc.MSF(cfg, tab)
		case oblivmc.GraphOpPageRank:
			out, _, err = oblivmc.PageRank(cfg, tab, rounds)
		default:
			out, _, err = oblivmc.Components(cfg, tab, rounds)
		}
		close(stopWatch)
		// The lane session never executed anything, so even a panicking
		// one-shot run leaves it healthy: plain checkin, no retire.
		s.checkin(l, hint)
		if err != nil {
			if errors.Is(err, oblivmc.ErrCanceled) && errors.Is(qctx.Err(), context.DeadlineExceeded) {
				err = fmt.Errorf("%w: %v", oblivmc.ErrDeadline, err)
			}
			return Result{}, err
		}
		plan, err := oblivmc.GraphExplainTable(op, tab, rounds)
		if err != nil {
			return Result{}, err
		}
		el, err := tab.Edges()
		if err != nil {
			return Result{}, err
		}
		n := 0
		for _, e := range el {
			if e.U >= n {
				n = e.U + 1
			}
			if e.V >= n {
				n = e.V + 1
			}
		}
		sorts := oblivmc.GraphSorts(op, n, len(el), rounds)
		if sorts < 0 {
			sorts = 0 // convergence run: count revealed, plan says so
		}
		s.cache.put(cached{key: key, tab: out, plan: plan})
		res = Result{
			Table: out,
			Stats: Stats{
				SortPasses:     sorts,
				ColdSortPasses: sorts,
				Plan:           plan,
				Order:          out.Order().String(),
			},
		}
	}
	if spec.As != "" {
		v, err := s.reg.Load(spec.As, res.Table, true)
		if err != nil {
			return Result{}, err
		}
		res.StoredAs, res.StoredVersion = spec.As, v
	}
	return res, nil
}

// ExplainSpec renders the order-aware plan the spec would execute,
// without running it.
func (s *Server) ExplainSpec(spec QuerySpec) (string, error) {
	if spec.Graph != "" {
		tab, op, rounds, _, err := spec.compileGraph(s.reg)
		if err != nil {
			return "", err
		}
		return oblivmc.GraphExplainTable(op, tab, rounds)
	}
	tab, q, _, err := spec.compile(s.reg)
	if err != nil {
		return "", err
	}
	return oblivmc.ExplainTable(tab, q)
}

// LoadTable validates rows and binds them in the registry.
func (s *Server) LoadTable(name string, rows []oblivmc.WideRow, replace bool) (TableInfo, error) {
	tab, err := oblivmc.NewWideTable(rows)
	if err != nil {
		return TableInfo{}, err
	}
	v, err := s.reg.Load(name, tab, replace)
	if err != nil {
		return TableInfo{}, err
	}
	return TableInfo{
		Name: name, Version: v, Rows: tab.Len(), Width: tab.Width(),
		Order: tab.Order(), OrderName: tab.Order().String(),
	}, nil
}

// ---- HTTP surface ----

// RowJSON is the wire form of one row.
type RowJSON struct {
	Keys []uint64 `json:"keys"`
	Val  uint64   `json:"val"`
}

func rowsJSON(t oblivmc.Table) []RowJSON {
	wide := t.WideRows()
	out := make([]RowJSON, len(wide))
	for i, r := range wide {
		out[i] = RowJSON{Keys: r.Keys, Val: r.Val}
	}
	return out
}

// LoadRequest is the POST /v1/tables body.
type LoadRequest struct {
	Name    string    `json:"name"`
	Rows    []RowJSON `json:"rows"`
	Replace bool      `json:"replace,omitempty"`
}

// QueryResponse is the POST /v1/query body.
type QueryResponse struct {
	Rows          []RowJSON `json:"rows"`
	Stats         Stats     `json:"stats"`
	StoredAs      string    `json:"stored_as,omitempty"`
	StoredVersion int       `json:"stored_version,omitempty"`
}

// ExplainResponse is the POST /v1/explain body.
type ExplainResponse struct {
	Plan string `json:"plan"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// statusOf maps server and library errors to HTTP statuses:
//
//	429 ErrBusy        admission queue timed out — retry with backoff
//	503 ErrDraining    server shutting down — retry against a replacement
//	504 ErrDeadline    query exceeded QueryTimeout — aborted at a checkpoint
//	500 ErrInternal    execution panicked — the lane was retired and rebuilt
//	499 ErrCanceled    caller went away (nginx convention; rarely observed,
//	                   the disconnected client reads nothing)
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrNoSuchTable):
		return http.StatusNotFound
	case errors.Is(err, ErrTableExists):
		return http.StatusConflict
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, oblivmc.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, oblivmc.ErrInternal):
		return http.StatusInternalServerError
	case errors.Is(err, oblivmc.ErrCanceled):
		return 499 // client closed request
	case errors.Is(err, ErrBadSpec):
		return http.StatusBadRequest
	default:
		return http.StatusUnprocessableEntity
	}
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
}

// Handler returns the server's HTTP surface:
//
//	GET    /v1/healthz        liveness + lane/table counts
//	GET    /v1/tables         registry listing (public metadata)
//	POST   /v1/tables         load (LoadRequest)
//	DELETE /v1/tables/{name}  drop
//	POST   /v1/query          execute a QuerySpec
//	POST   /v1/explain        render a QuerySpec's plan
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "lanes": s.opts.Lanes, "tables": len(s.reg.List()),
		})
	})
	mux.HandleFunc("/v1/tables", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, s.reg.List())
		case http.MethodPost:
			var req LoadRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			rows := make([]oblivmc.WideRow, len(req.Rows))
			for i, rr := range req.Rows {
				rows[i] = oblivmc.WideRow{Keys: rr.Keys, Val: rr.Val}
			}
			info, err := s.LoadTable(req.Name, rows, req.Replace)
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, info)
		default:
			w.WriteHeader(http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/v1/tables/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodDelete {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		name := strings.TrimPrefix(r.URL.Path, "/v1/tables/")
		if err := s.reg.Drop(name); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
	})
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		var spec QuerySpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		res, err := s.ExecuteCtx(r.Context(), spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{
			Rows: rowsJSON(res.Table), Stats: res.Stats,
			StoredAs: res.StoredAs, StoredVersion: res.StoredVersion,
		})
	})
	mux.HandleFunc("/v1/explain", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		var spec QuerySpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		plan, err := s.ExplainSpec(spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ExplainResponse{Plan: plan})
	})
	return mux
}

// String renders the admission state (debugging).
func (s *Server) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("serve.Server{lanes=%d free=%d tables=%d cache=%d}",
		s.opts.Lanes, len(s.free), len(s.reg.List()), s.cache.len())
}
