// Package serve is the long-running oblivious analytics server: a
// registry of loaded relations, a lane pool of reusable oblivmc.Sessions
// (persistent fork-join pools, arenas, and shuffle sorters) with bounded
// admission, and a cross-query result cache keyed on public request
// shapes. The HTTP layer (Server) is a thin JSON surface over these
// pieces; the obliviousness argument lives with them: every cache and
// planning decision is a function of request-visible data — table names,
// versions, row counts, key widths, and canonical query specs — never of
// relation contents.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"oblivmc"
)

// Typed registry errors (matchable with errors.Is across the HTTP
// boundary's status mapping).
var (
	// ErrTableExists is returned by Load without replace when the name is
	// already bound.
	ErrTableExists = errors.New("serve: table already exists")
	// ErrNoSuchTable is returned when a query, drop, or join references an
	// unbound table name.
	ErrNoSuchTable = errors.New("serve: no such table")
)

// TableInfo is the public metadata of one registered table — everything
// here is public shape (names, counts, widths, versions, order tokens),
// never contents.
type TableInfo struct {
	Name    string             `json:"name"`
	Version int                `json:"version"`
	Rows    int                `json:"rows"`
	Width   int                `json:"width"`
	Order   oblivmc.TableOrder `json:"-"`
	// OrderName is Order rendered for the JSON surface.
	OrderName string `json:"order"`
}

type tableEntry struct {
	tab     oblivmc.Table
	version int
}

// Registry is the server's name → relation binding, safe for concurrent
// use. Every binding carries a monotonically increasing version: loading
// over an existing name (replace) bumps it, so cache keys embedding
// name@version can never alias a stale relation — the re-load
// invalidation is structural, not a scan.
type Registry struct {
	mu     sync.RWMutex
	tables map[string]*tableEntry
	// versions survives drops: re-loading a dropped name continues its
	// version sequence instead of restarting at 1, keeping old cache keys
	// dead forever.
	versions map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tables: map[string]*tableEntry{}, versions: map[string]int{}}
}

// Load binds tab to name. With replace false a bound name fails with
// ErrTableExists; with replace true the binding is overwritten and the
// version bumped (dependent cache entries die with the old version).
// Returns the bound version.
func (r *Registry) Load(name string, tab oblivmc.Table, replace bool) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("serve: empty table name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[name]; ok && !replace {
		return 0, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	v := r.versions[name] + 1
	r.versions[name] = v
	r.tables[name] = &tableEntry{tab: tab, version: v}
	return v, nil
}

// Get returns the table bound to name and its version.
func (r *Registry) Get(name string) (oblivmc.Table, int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.tables[name]
	if !ok {
		return oblivmc.Table{}, 0, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return e.tab, e.version, nil
}

// Drop unbinds name.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	delete(r.tables, name)
	return nil
}

// List returns the metadata of every binding, name-sorted.
func (r *Registry) List() []TableInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]TableInfo, 0, len(r.tables))
	for name, e := range r.tables {
		out = append(out, TableInfo{
			Name: name, Version: e.version,
			Rows: e.tab.Len(), Width: e.tab.Width(),
			Order: e.tab.Order(), OrderName: e.tab.Order().String(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
