package serve

// Server-layer tests for graph query specs: the Graph clause dispatches
// to the graph operators over a loaded width-2 edge table, rides the
// same result cache and admission path as relational specs, and rejects
// malformed combinations with typed errors.

import (
	"strings"
	"testing"

	"oblivmc"
)

func edgeRows(edges [][3]uint64) []oblivmc.WideRow {
	rows := make([]oblivmc.WideRow, len(edges))
	for i, e := range edges {
		rows[i] = oblivmc.WideRow{Keys: []uint64{e[0], e[1]}, Val: e[2]}
	}
	return rows
}

func TestGraphSpecComponents(t *testing.T) {
	s := serialServer(t, 1)
	// Path 0-1-2 plus the separate pair 3-4: labels are the component
	// minimums [0 0 0 3 3].
	mustLoad(t, s, "g", edgeRows([][3]uint64{{0, 1, 5}, {1, 2, 5}, {3, 4, 5}}))

	res, err := s.Execute(QuerySpec{Table: "g", Graph: "cc"})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 0, 0, 3, 3}
	rows := res.Table.Rows()
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for v, r := range rows {
		if r.Key != uint64(v) || r.Val != want[v] {
			t.Fatalf("row %d = %+v, want {%d %d}", v, r, v, want[v])
		}
	}
	if res.Stats.Cached {
		t.Fatal("first graph query reported cached")
	}
	if !strings.Contains(res.Stats.Plan, "cc-minhook") {
		t.Fatalf("plan %q: missing cc-minhook", res.Stats.Plan)
	}

	// Same spec again: served from the cross-query result cache.
	res2, err := s.Execute(QuerySpec{Table: "g", Graph: "cc"})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.Cached || res2.Stats.SortPasses != 0 {
		t.Fatalf("repeat graph query: cached=%t sorts=%d, want cached with 0 sorts", res2.Stats.Cached, res2.Stats.SortPasses)
	}

	// A different rounds parameter is a different cache key.
	res3, err := s.Execute(QuerySpec{Table: "g", Graph: "cc", GraphRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.Cached {
		t.Fatal("fixed-rounds variant unexpectedly hit the convergence run's cache entry")
	}
	if res3.Stats.SortPasses != 4*9 {
		t.Fatalf("fixed-rounds sort accounting = %d, want %d", res3.Stats.SortPasses, 4*9)
	}
}

func TestGraphSpecMSFAndPageRank(t *testing.T) {
	s := serialServer(t, 1)
	mustLoad(t, s, "g", edgeRows([][3]uint64{{0, 1, 9}, {1, 2, 1}, {0, 2, 3}, {3, 4, 2}}))

	res, err := s.Execute(QuerySpec{Table: "g", Graph: "msf", As: "forest"})
	if err != nil {
		t.Fatal(err)
	}
	// Kruskal on the triangle keeps {1,2} and {0,2}, drops {0,1}.
	if res.Table.Len() != 3 {
		t.Fatalf("%d forest edges, want 3", res.Table.Len())
	}
	if res.StoredAs != "forest" || res.StoredVersion != 1 {
		t.Fatalf("stored %q@%d, want forest@1", res.StoredAs, res.StoredVersion)
	}

	pr, err := s.Execute(QuerySpec{Table: "g", Graph: "pagerank"})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Table.Len() != 5 {
		t.Fatalf("pagerank: %d rows, want 5 (one per vertex)", pr.Table.Len())
	}
	if !strings.Contains(pr.Stats.Plan, "pagerank") {
		t.Fatalf("plan %q: missing pagerank", pr.Stats.Plan)
	}
}

func TestGraphSpecErrors(t *testing.T) {
	s := serialServer(t, 1)
	mustLoad(t, s, "g", edgeRows([][3]uint64{{0, 1, 5}}))
	mustLoad(t, s, "narrow", testRows(8, 4, 1)) // width 1: not an edge table

	if _, err := s.Execute(QuerySpec{Table: "g", Graph: "bfs"}); err == nil {
		t.Fatal("unknown graph op accepted")
	}
	if _, err := s.Execute(QuerySpec{Table: "g", Graph: "cc", GroupBy: "sum"}); err == nil {
		t.Fatal("graph spec with a relational clause accepted")
	}
	if _, err := s.Execute(QuerySpec{Table: "g", Graph: "cc", GraphRounds: -1}); err == nil {
		t.Fatal("negative rounds accepted")
	}
	if _, err := s.Execute(QuerySpec{Table: "narrow", Graph: "cc"}); err == nil {
		t.Fatal("width-1 table accepted as a graph")
	}
	if _, err := s.Execute(QuerySpec{Table: "missing", Graph: "cc"}); err == nil {
		t.Fatal("unknown table accepted")
	}

	plan, err := s.ExplainSpec(QuerySpec{Table: "g", Graph: "cc", GraphRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "cc-minhook") || !strings.Contains(plan, "2 rounds") {
		t.Fatalf("explain plan %q: missing cc-minhook / round count", plan)
	}
}
