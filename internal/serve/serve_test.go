package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"oblivmc"
	"oblivmc/internal/prng"
)

// serialServer builds a small deterministic server for tests.
func serialServer(t *testing.T, lanes int) *Server {
	t.Helper()
	s := NewServer(Options{
		Lanes:        lanes,
		QueueTimeout: 2 * time.Second,
		Exec:         oblivmc.Config{Mode: oblivmc.ModeSerial},
	})
	t.Cleanup(s.Shutdown)
	return s
}

func testRows(n, groups int, seed uint64) []oblivmc.WideRow {
	src := prng.New(seed)
	rows := make([]oblivmc.WideRow, n)
	for i := range rows {
		rows[i] = oblivmc.WideRow{Keys: []uint64{src.Uint64n(uint64(groups))}, Val: src.Uint64n(1000)}
	}
	return rows
}

func mustLoad(t *testing.T, s *Server, name string, rows []oblivmc.WideRow) {
	t.Helper()
	if _, err := s.LoadTable(name, rows, false); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryVersionsAndTypedErrors(t *testing.T) {
	r := NewRegistry()
	tab, err := oblivmc.NewTable([]oblivmc.Row{{Key: 1, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Load("t", tab, false)
	if err != nil || v != 1 {
		t.Fatalf("first load: v=%d err=%v, want 1, nil", v, err)
	}
	if _, err := r.Load("t", tab, false); !errors.Is(err, ErrTableExists) {
		t.Fatalf("re-load without replace: %v, want ErrTableExists", err)
	}
	// The satellite fix: replacing bumps the version, and the sequence
	// survives a drop so stale cache keys can never be minted again.
	if v, err = r.Load("t", tab, true); err != nil || v != 2 {
		t.Fatalf("replace: v=%d err=%v, want 2, nil", v, err)
	}
	if err := r.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drop("t"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("double drop: %v, want ErrNoSuchTable", err)
	}
	if _, _, err := r.Get("t"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("get after drop: %v, want ErrNoSuchTable", err)
	}
	if v, err = r.Load("t", tab, false); err != nil || v != 3 {
		t.Fatalf("load after drop: v=%d err=%v, want 3, nil", v, err)
	}
}

// TestCacheHitRunsZeroSorts is acceptance criterion 1: the repeat of an
// identical query is served from the materialized-result cache with zero
// executed oblivious sorts, returning identical rows.
func TestCacheHitRunsZeroSorts(t *testing.T) {
	s := serialServer(t, 1)
	mustLoad(t, s, "sales", testRows(256, 16, 7))
	spec := QuerySpec{Table: "sales", GroupBy: "sum", TopK: 5}

	cold, err := s.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Cached || cold.Stats.SortPasses == 0 {
		t.Fatalf("cold run: cached=%t sorts=%d, want a real execution", cold.Stats.Cached, cold.Stats.SortPasses)
	}
	warm, err := s.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.Cached || warm.Stats.SortPasses != 0 {
		t.Fatalf("repeat: cached=%t sorts=%d, want cached with 0 sorts", warm.Stats.Cached, warm.Stats.SortPasses)
	}
	a, b := cold.Table.Rows(), warm.Table.Rows()
	if len(a) != len(b) {
		t.Fatalf("cached rows differ in count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cached row %d = %v, want %v", i, b[i], a[i])
		}
	}
}

// TestOrderTokenFollowUpSavesSorts is acceptance criterion 2, at the
// server level: a follow-up query over a KeyOrderOut materialization
// executes at least one sort fewer than its cold plan (measured by the
// executed-pass counter), and the skip is visible in Explain.
func TestOrderTokenFollowUpSavesSorts(t *testing.T) {
	s := serialServer(t, 1)
	mustLoad(t, s, "sales", testRows(300, 24, 9))

	mat, err := s.Execute(QuerySpec{Table: "sales", GroupBy: "sum", KeyOrderOut: true, As: "totals"})
	if err != nil {
		t.Fatal(err)
	}
	if mat.StoredAs != "totals" || mat.Stats.Order != "keys" {
		t.Fatalf("materialization: stored_as=%q order=%q", mat.StoredAs, mat.Stats.Order)
	}

	follow, err := s.Execute(QuerySpec{Table: "totals", GroupBy: "max", KeyOrderOut: true})
	if err != nil {
		t.Fatal(err)
	}
	st := follow.Stats
	if st.Cached {
		t.Fatal("follow-up unexpectedly cached")
	}
	if st.SortPasses >= st.ColdSortPasses {
		t.Fatalf("follow-up executed %d sorts, cold plan %d — no token saving", st.SortPasses, st.ColdSortPasses)
	}
	if st.SortPasses != 0 || st.ColdSortPasses != 1 {
		t.Fatalf("follow-up: executed %d (cold %d), want 0 (1): %s", st.SortPasses, st.ColdSortPasses, st.Plan)
	}
	plan, err := s.ExplainSpec(QuerySpec{Table: "totals", GroupBy: "max", KeyOrderOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "in(key,pos)") || !strings.Contains(plan, "0 sorts, cold 1") {
		t.Fatalf("Explain must show the skipped sort: %q", plan)
	}
}

// TestReloadInvalidatesCachedResults is the satellite fix end to end:
// replacing a table bumps its version, so the previously cached result
// cannot be served against the new contents.
func TestReloadInvalidatesCachedResults(t *testing.T) {
	s := serialServer(t, 1)
	mustLoad(t, s, "t", testRows(128, 8, 1))
	spec := QuerySpec{Table: "t", GroupBy: "count"}
	r1, err := s.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r2, err := s.Execute(spec); err != nil || !r2.Stats.Cached {
		t.Fatalf("repeat before reload: cached=%v err=%v", r2.Stats.Cached, err)
	}
	// Replace with a different relation (more rows, different counts).
	if _, err := s.LoadTable("t", testRows(200, 8, 2), true); err != nil {
		t.Fatal(err)
	}
	r3, err := s.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.Cached {
		t.Fatal("query after reload served from the stale cache entry")
	}
	sum := func(rows []oblivmc.Row) (n uint64) {
		for _, r := range rows {
			n += r.Val
		}
		return
	}
	if sum(r1.Table.Rows()) == sum(r3.Table.Rows()) {
		t.Fatal("reloaded relation produced the old counts — wrong table version served")
	}
}

// refSpec computes the expected narrow rows of a spec by running it
// through the one-shot serial engine on a token-free copy of the tables.
func refSpec(t *testing.T, s *Server, spec QuerySpec) []oblivmc.Row {
	t.Helper()
	tab, q, _, err := spec.compile(s.reg)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the token: rebuild the table from its public rows, so the
	// reference runs the cold plan.
	cold, err := oblivmc.NewTable(tab.Rows())
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := oblivmc.RunQuery(oblivmc.Config{Mode: oblivmc.ModeSerial}, cold, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Rows()
	if q.KeyOrderOut {
		rows = append([]oblivmc.Row(nil), rows...)
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	}
	return rows
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestHTTPSurface exercises the JSON endpoints: load, conflict, list,
// query, explain, drop, and the typed error statuses.
func TestHTTPSurface(t *testing.T) {
	s := serialServer(t, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rows := []RowJSON{{Keys: []uint64{2}, Val: 7}, {Keys: []uint64{1}, Val: 9}, {Keys: []uint64{2}, Val: 3}}
	var info TableInfo
	if code := postJSON(t, ts.URL+"/v1/tables", LoadRequest{Name: "t", Rows: rows}, &info); code != 200 {
		t.Fatalf("load: HTTP %d", code)
	}
	if info.Version != 1 || info.Rows != 3 || info.Width != 1 {
		t.Fatalf("load info = %+v", info)
	}
	if code := postJSON(t, ts.URL+"/v1/tables", LoadRequest{Name: "t", Rows: rows}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate load: HTTP %d, want 409", code)
	}
	var listed []TableInfo
	resp, err := http.Get(ts.URL + "/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed) != 1 || listed[0].Name != "t" {
		t.Fatalf("list = %+v", listed)
	}

	var qr QueryResponse
	if code := postJSON(t, ts.URL+"/v1/query", QuerySpec{Table: "t", GroupBy: "sum"}, &qr); code != 200 {
		t.Fatalf("query: HTTP %d", code)
	}
	want := map[uint64]uint64{2: 10, 1: 9}
	if len(qr.Rows) != 2 {
		t.Fatalf("query rows = %+v", qr.Rows)
	}
	for _, r := range qr.Rows {
		if want[r.Keys[0]] != r.Val {
			t.Fatalf("group %d = %d, want %d", r.Keys[0], r.Val, want[r.Keys[0]])
		}
	}
	if code := postJSON(t, ts.URL+"/v1/query", QuerySpec{Table: "missing"}, nil); code != http.StatusNotFound {
		t.Fatalf("query on missing table: HTTP %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/v1/query", QuerySpec{Table: "t", GroupBy: "median"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad aggregation: HTTP %d, want 400", code)
	}

	var ex ExplainResponse
	if code := postJSON(t, ts.URL+"/v1/explain", QuerySpec{Table: "t", GroupBy: "sum"}, &ex); code != 200 || ex.Plan == "" {
		t.Fatalf("explain: HTTP %d plan %q", code, ex.Plan)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tables/t", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Fatalf("drop: HTTP %d", dresp.StatusCode)
	}
	if code := postJSON(t, ts.URL+"/v1/query", QuerySpec{Table: "t"}, nil); code != http.StatusNotFound {
		t.Fatalf("query after drop: HTTP %d, want 404", code)
	}
}

// TestAdmissionBusy pins the queue-timeout path: with every lane checked
// out and a tiny timeout, Execute fails fast with ErrBusy (HTTP 503).
func TestAdmissionBusy(t *testing.T) {
	s := NewServer(Options{
		Lanes:        1,
		QueueTimeout: 10 * time.Millisecond,
		Exec:         oblivmc.Config{Mode: oblivmc.ModeSerial},
	})
	defer s.Shutdown()
	mustLoad(t, s, "t", testRows(64, 4, 3))
	l, err := s.checkout(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(QuerySpec{Table: "t", Distinct: true}); !errors.Is(err, ErrBusy) {
		t.Fatalf("with the only lane held: %v, want ErrBusy", err)
	}
	s.checkin(l, 0)
	if _, err := s.Execute(QuerySpec{Table: "t", Distinct: true}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestJoinCapAutoSpec wires the "join_cap": "auto" capacity mode through
// the spec layer: the advisor-sized join must match an amply-capacitied
// explicit run, malformed modes and auto+max_out conflicts are ErrBadSpec,
// and the auto sentinel keys the cache distinctly from explicit bounds.
func TestJoinCapAutoSpec(t *testing.T) {
	s := serialServer(t, 1)
	mustLoad(t, s, "sales", testRows(128, 8, 21))
	mustLoad(t, s, "dim", testRows(16, 8, 22))

	explicit, err := s.Execute(QuerySpec{Table: "sales", Join: &JoinSpec{Table: "dim", MaxOut: 4096}, GroupBy: "count"})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := s.Execute(QuerySpec{Table: "sales", Join: &JoinSpec{Table: "dim", JoinCap: "auto"}, GroupBy: "count"})
	if err != nil {
		t.Fatalf("join_cap auto: %v", err)
	}
	if fmt.Sprint(auto.Table.Rows()) != fmt.Sprint(explicit.Table.Rows()) {
		t.Fatalf("auto rows %v differ from explicit-capacity rows %v", auto.Table.Rows(), explicit.Table.Rows())
	}
	if !auto.Stats.Cached {
		// Second identical auto query must hit the cache under the
		// sentinel's own key.
		again, err := s.Execute(QuerySpec{Table: "sales", Join: &JoinSpec{Table: "dim", JoinCap: "auto"}, GroupBy: "count"})
		if err != nil || !again.Stats.Cached {
			t.Fatalf("repeated auto query not cached: err=%v cached=%t", err, again.Stats.Cached)
		}
	}

	if _, err := s.Execute(QuerySpec{Table: "sales", Join: &JoinSpec{Table: "dim", JoinCap: "bogus"}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bogus join_cap: %v, want ErrBadSpec", err)
	}
	if _, err := s.Execute(QuerySpec{Table: "sales", Join: &JoinSpec{Table: "dim", JoinCap: "auto", MaxOut: 64}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("auto with max_out: %v, want ErrBadSpec", err)
	}
}

func TestShutdownDrains(t *testing.T) {
	s := serialServer(t, 2)
	mustLoad(t, s, "t", testRows(64, 4, 3))
	s.Shutdown()
	if _, err := s.Execute(QuerySpec{Table: "t", Distinct: true}); !errors.Is(err, ErrDraining) {
		t.Fatalf("after shutdown: %v, want ErrDraining", err)
	}
	s.Shutdown() // idempotent
}

// TestConcurrentMixedQueries is the concurrency stress test: N goroutines
// issue mixed queries (filter / group-by / join shapes) against shared
// tables through the HTTP handler; every response must equal the serial
// one-shot reference, and the lane gauge must never exceed the admission
// bound. Run with -race for the data-race leg (CI).
func TestConcurrentMixedQueries(t *testing.T) {
	const lanes = 3
	s := NewServer(Options{
		Lanes:        lanes,
		QueueTimeout: 30 * time.Second,
		Exec:         oblivmc.Config{Mode: oblivmc.ModeSerial},
	})
	defer s.Shutdown()
	mustLoad(t, s, "sales", testRows(256, 16, 11))
	mustLoad(t, s, "dim", testRows(16, 16, 12))

	specs := []QuerySpec{
		{Table: "sales", Filter: &FilterSpec{Col: -1, Op: "ge", Value: 300}, GroupBy: "sum"},
		{Table: "sales", GroupBy: "count", KeyOrderOut: true},
		{Table: "sales", Distinct: true, TopK: 6},
		{Table: "sales", Join: &JoinSpec{Table: "dim", MaxOut: 2048}, GroupBy: "count"},
		{Table: "sales", Filter: &FilterSpec{Col: 0, Op: "lt", Value: 8}, Distinct: true},
		{Table: "dim", GroupBy: "max"},
	}
	want := make([][]oblivmc.Row, len(specs))
	for i, spec := range specs {
		want[i] = refSpec(t, s, spec)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const goroutines, iters = 8, 6
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(specs)
				var qr QueryResponse
				b, _ := json.Marshal(specs[i])
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(b))
				if err != nil {
					errc <- err
					return
				}
				code := resp.StatusCode
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if code != 200 || err != nil {
					errc <- fmt.Errorf("spec %d: HTTP %d, %v", i, code, err)
					return
				}
				if len(qr.Rows) != len(want[i]) {
					errc <- fmt.Errorf("spec %d: %d rows, want %d", i, len(qr.Rows), len(want[i]))
					return
				}
				for j, r := range qr.Rows {
					if r.Keys[0] != want[i][j].Key || r.Val != want[i][j].Val {
						errc <- fmt.Errorf("spec %d row %d = %v, want %v", i, j, r, want[i][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if peak := s.PeakConcurrency(); peak > lanes {
		t.Fatalf("admission bound violated: peak %d concurrent queries over %d lanes", peak, lanes)
	}
}

// TestLaneBucketsPreferWarmedSessions sanity-checks the size-bucketed
// free list: a lane that served a large relation is preferred for the
// next large request over a cold lane.
func TestLaneBucketsPreferWarmedSessions(t *testing.T) {
	s := serialServer(t, 2)
	big := bucketOf(1 << 12)
	// Warm one lane to the big bucket by hand.
	l, err := s.checkout(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	warmed := l
	s.checkin(l, big)
	// A big request must pick the warmed lane, not the cold one.
	l, err = s.checkout(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	if l != warmed {
		t.Fatalf("big request got a cold lane (bucket %d), want the warmed one", l.bucket)
	}
	s.checkin(l, big)
	// A small request must prefer the small lane, leaving the big caches
	// to big requests.
	small := bucketOf(64)
	l, err = s.checkout(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if l == warmed {
		t.Fatalf("small request got the big-warmed lane")
	}
	s.checkin(l, small)
}

// The default worker split is GOMAXPROCS/lanes; with more lanes than
// GOMAXPROCS the integer division resolves to 0, which forkjoin.NewPool
// would silently expand to a *full* GOMAXPROCS pool per lane —
// lanes×GOMAXPROCS runnable goroutines on a machine admitting lanes
// queries at once. NewServer clamps the split to one worker per lane;
// this pins the clamp and the resolved per-lane pool size.
func TestWorkerSplitClampedToOne(t *testing.T) {
	lanes := runtime.GOMAXPROCS(0) + 3
	s := NewServer(Options{
		Lanes:        lanes,
		QueueTimeout: 2 * time.Second,
		Exec:         oblivmc.Config{Mode: oblivmc.ModeParallel},
	})
	t.Cleanup(s.Shutdown)
	if got := s.WorkersPerLane(); got != 1 {
		t.Fatalf("WorkersPerLane() = %d, want 1 (lanes=%d, GOMAXPROCS=%d)", got, lanes, runtime.GOMAXPROCS(0))
	}
	for i, l := range s.free {
		if w := l.sess.Workers(); w != 1 {
			t.Fatalf("lane %d session Workers() = %d, want 1", i, w)
		}
	}
}

// With lanes that divide the machine evenly, the split is GOMAXPROCS/lanes
// and an explicit Workers wins over the split.
func TestWorkerSplitExplicitWins(t *testing.T) {
	s := NewServer(Options{
		Lanes:        2,
		QueueTimeout: 2 * time.Second,
		Exec:         oblivmc.Config{Mode: oblivmc.ModeParallel, Workers: 3},
	})
	t.Cleanup(s.Shutdown)
	if got := s.WorkersPerLane(); got != 3 {
		t.Fatalf("WorkersPerLane() = %d, want explicit 3", got)
	}
}
