package serve

// Chaos tests: a storm of concurrent queries under injected panics, slow
// passes, random client cancellations, and tight admission — the server
// must keep every failure typed, leak no lanes (running gauge returns to
// zero), retire-and-rebuild panicked lanes, and keep serving (cache
// included) once the faults stop. Run with -race; the faultinject
// registry is process-global, so these tests must not t.Parallel().

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oblivmc"
	"oblivmc/internal/faultinject"
)

// chaosServer is a small serial server with a short admission queue so
// the storm also exercises ErrBusy.
func chaosServer(t *testing.T, lanes int, queryTimeout time.Duration) *Server {
	t.Helper()
	s := NewServer(Options{
		Lanes:        lanes,
		QueueTimeout: 50 * time.Millisecond,
		QueryTimeout: queryTimeout,
		Exec:         oblivmc.Config{Mode: oblivmc.ModeSerial},
	})
	t.Cleanup(s.Shutdown)
	return s
}

// TestChaosStorm is the acceptance chaos run: >= 50 concurrent mixed
// queries against a 2-lane server while a panic rule fires on every 9th
// sort pass, a slow rule stretches every 4th, and a third of the clients
// cancel their contexts early. Afterwards: no lane leaked, every error
// was typed, and with the faults cleared the server still executes and
// caches.
func TestChaosStorm(t *testing.T) {
	defer faultinject.Reset()
	s := chaosServer(t, 2, 0)
	mustLoad(t, s, "sales", testRows(256, 16, 21))
	mustLoad(t, s, "edges2", testRows(128, 32, 22))

	faultinject.PanicEvery("sort.pass", 9)
	faultinject.SlowEvery("sort.pass", 4, 2*time.Millisecond)

	specs := []QuerySpec{
		{Table: "sales", GroupBy: "sum"},
		{Table: "sales", GroupBy: "count", KeyOrderOut: true},
		{Table: "sales", Distinct: true},
		{Table: "sales", GroupBy: "max", TopK: 3},
		{Table: "sales", Filter: &FilterSpec{Col: 0, Op: "lt", Value: 8}, GroupBy: "sum"},
	}

	const queries = 60
	var (
		wg                                    sync.WaitGroup
		okN, busyN, canceledN, internalN, oth atomic.Int64
	)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if i%3 == 0 {
				// A third of the clients walk away at a random moment.
				go func(d time.Duration) {
					time.Sleep(d)
					cancel()
				}(time.Duration(rng.Intn(4)) * time.Millisecond)
			}
			_, err := s.ExecuteCtx(ctx, specs[i%len(specs)])
			switch {
			case err == nil:
				okN.Add(1)
			case errors.Is(err, ErrBusy):
				busyN.Add(1)
			case errors.Is(err, oblivmc.ErrCanceled), errors.Is(err, oblivmc.ErrDeadline):
				canceledN.Add(1)
			case errors.Is(err, oblivmc.ErrInternal):
				internalN.Add(1)
			default:
				oth.Add(1)
				t.Errorf("untyped chaos error: %v", err)
			}
		}(i)
	}
	wg.Wait()

	if n := oth.Load(); n != 0 {
		t.Fatalf("%d untyped errors escaped the lifecycle boundary", n)
	}
	if got := s.Running(); got != 0 {
		t.Fatalf("running gauge = %d after the storm, want 0 (leaked lane)", got)
	}
	if got := s.PeakConcurrency(); got > s.Lanes() {
		t.Fatalf("peak concurrency %d exceeded %d lanes", got, s.Lanes())
	}
	t.Logf("chaos: ok=%d busy=%d canceled=%d internal=%d",
		okN.Load(), busyN.Load(), canceledN.Load(), internalN.Load())

	// Faults off: the server (with any panicked lanes rebuilt) must still
	// execute, and the second identical query must hit the cache.
	faultinject.Reset()
	spec := QuerySpec{Table: "sales", GroupBy: "min"}
	if _, err := s.Execute(spec); err != nil {
		t.Fatalf("post-chaos execution: %v", err)
	}
	warm, err := s.Execute(spec)
	if err != nil {
		t.Fatalf("post-chaos repeat: %v", err)
	}
	if !warm.Stats.Cached {
		t.Fatal("post-chaos repeat was not served from the cache")
	}
}

// TestQueryTimeoutReturns504 pins the deadline path: a query slower than
// Options.QueryTimeout aborts with oblivmc.ErrDeadline, mapped to HTTP
// 504, and returns its lane.
func TestQueryTimeoutReturns504(t *testing.T) {
	defer faultinject.Reset()
	s := chaosServer(t, 1, 25*time.Millisecond)
	mustLoad(t, s, "t", testRows(256, 8, 3))

	faultinject.SlowEvery("sort.pass", 1, 40*time.Millisecond)
	_, err := s.Execute(QuerySpec{Table: "t", GroupBy: "sum", KeyOrderOut: true})
	if !errors.Is(err, oblivmc.ErrDeadline) {
		t.Fatalf("slow query: err = %v, want ErrDeadline", err)
	}
	if got := statusOf(err); got != http.StatusGatewayTimeout {
		t.Fatalf("statusOf(ErrDeadline) = %d, want 504", got)
	}
	if s.Running() != 0 {
		t.Fatalf("running gauge = %d after timeout, want 0", s.Running())
	}
	faultinject.Reset()
	if _, err := s.Execute(QuerySpec{Table: "t", GroupBy: "sum"}); err != nil {
		t.Fatalf("query after a timeout: %v", err)
	}
}

// TestLaneRetiredAfterPanic pins panic isolation at the serve layer: the
// injected panic surfaces as ErrInternal (HTTP 500), the poisoned lane is
// replaced, and the single-lane server keeps serving.
func TestLaneRetiredAfterPanic(t *testing.T) {
	defer faultinject.Reset()
	s := chaosServer(t, 1, 0)
	mustLoad(t, s, "t", testRows(128, 8, 4))

	faultinject.PanicAt("sort.pass", 1)
	_, err := s.Execute(QuerySpec{Table: "t", GroupBy: "sum"})
	if !errors.Is(err, oblivmc.ErrInternal) {
		t.Fatalf("injected panic: err = %v, want ErrInternal", err)
	}
	if got := statusOf(err); got != http.StatusInternalServerError {
		t.Fatalf("statusOf(ErrInternal) = %d, want 500", got)
	}
	if s.Running() != 0 {
		t.Fatalf("running gauge = %d after panic, want 0", s.Running())
	}
	faultinject.Reset()
	// The only lane panicked; this succeeds only if it was rebuilt.
	res, err := s.Execute(QuerySpec{Table: "t", GroupBy: "sum"})
	if err != nil {
		t.Fatalf("query on rebuilt lane: %v", err)
	}
	if res.Stats.Cached {
		t.Fatal("rebuilt-lane query unexpectedly cached")
	}
}

// TestShutdownDrainCancelsStragglers pins graceful degradation: a drain
// deadline cancels still-running queries (their callers see ErrCanceled),
// later arrivals get ErrDraining (503), and ShutdownDrain reports the
// straggler count.
func TestShutdownDrainCancelsStragglers(t *testing.T) {
	defer faultinject.Reset()
	s := NewServer(Options{
		Lanes:        1,
		QueueTimeout: time.Second,
		Exec:         oblivmc.Config{Mode: oblivmc.ModeSerial},
	})
	mustLoad(t, s, "t", testRows(256, 8, 5))

	faultinject.SlowEvery("sort.pass", 1, 50*time.Millisecond)
	errc := make(chan error, 1)
	go func() {
		_, err := s.Execute(QuerySpec{Table: "t", GroupBy: "sum", KeyOrderOut: true})
		errc <- err
	}()
	for s.Running() == 0 {
		time.Sleep(time.Millisecond)
	}
	canceled := s.ShutdownDrain(10 * time.Millisecond)
	if canceled != 1 {
		t.Fatalf("ShutdownDrain canceled %d stragglers, want 1", canceled)
	}
	if err := <-errc; !errors.Is(err, oblivmc.ErrCanceled) {
		t.Fatalf("straggler error = %v, want ErrCanceled", err)
	}
	if _, err := s.Execute(QuerySpec{Table: "t", GroupBy: "sum"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain query: err = %v, want ErrDraining", err)
	}
	if got := statusOf(ErrDraining); got != http.StatusServiceUnavailable {
		t.Fatalf("statusOf(ErrDraining) = %d, want 503", got)
	}
	if got := statusOf(ErrBusy); got != http.StatusTooManyRequests {
		t.Fatalf("statusOf(ErrBusy) = %d, want 429", got)
	}
}

// TestClientDisconnectCancelsQuery drives cancellation through the HTTP
// handler's request context path via ExecuteCtx directly.
func TestClientDisconnectCancelsQuery(t *testing.T) {
	defer faultinject.Reset()
	s := chaosServer(t, 1, 0)
	mustLoad(t, s, "t", testRows(256, 8, 6))

	faultinject.SlowEvery("sort.pass", 1, 40*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for faultinject.Hits("sort.pass") == 0 {
			time.Sleep(500 * time.Microsecond)
		}
		cancel()
	}()
	_, err := s.ExecuteCtx(ctx, QuerySpec{Table: "t", GroupBy: "sum", KeyOrderOut: true})
	if !errors.Is(err, oblivmc.ErrCanceled) {
		t.Fatalf("disconnected query: err = %v, want ErrCanceled", err)
	}
	if got := statusOf(err); got != 499 {
		t.Fatalf("statusOf(ErrCanceled) = %d, want 499", got)
	}
	if s.Running() != 0 {
		t.Fatalf("running gauge = %d after disconnect, want 0", s.Running())
	}
}
