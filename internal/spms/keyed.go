// Keyed (key-schedule) variant of the insecure sample sort: the post-ORP
// stage of the shuffle-then-sort composition (Theorem 3.2) generalized for
// the relational engine. The sort orders elements by the lexicographic
// order of their cached key-schedule words, breaking full-vector ties by
// the elements' in-register (Kind, Tag, Aux) triple (the obliv.TiePos rule,
// which makes the sort stable in the relational sense) and breaking *those*
// ties by a caller-supplied random tie word per element. With the tie plane
// drawn fresh from the seed tape, every comparison is strict, so the
// sequence being sorted always has distinct effective keys — the
// precondition of the [CGLS18, ACN+20] security argument that lets an
// insecure comparison sort follow an oblivious random permutation.
//
// Every element move carries the element, all schedule words, and the tie
// word together (the planes stay in lockstep with the array, exactly as in
// the keyed bitonic networks), so on return the schedule still caches the
// keys of the array it describes.
//
// Unlike everything else in this module, the access pattern of this sort
// is NOT a fixed function of the input length: it depends on the relative
// order of the (permuted) keys. That is the Theorem 3.2 trade-off — the
// preceding oblivious random permutation makes the order type of the
// input, and hence the trace distribution, independent of the data.
package spms

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// kseq bundles the three lockstep components of a keyed sequence: the
// element array, its key schedule, and the tie plane, all indexed
// identically, plus the cached schedule width.
type kseq struct {
	a   *mem.Array[obliv.Elem]
	ks  *obliv.KeySchedule
	tie *mem.Array[uint64]
	w   int
}

func newKseq(a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, tie *mem.Array[uint64]) kseq {
	return kseq{a: a, ks: ks, tie: tie, w: ks.Width()}
}

func allocKseq(sp *mem.Space, n, w int) kseq {
	return kseq{
		a:   mem.Alloc[obliv.Elem](sp, n),
		ks:  obliv.AllocKeySchedule(sp, n, w),
		tie: mem.Alloc[uint64](sp, n),
		w:   w,
	}
}

// krow is one element with its cached key words and tie word — the unit the
// keyed sort moves and compares.
type krow struct {
	e obliv.Elem
	k [obliv.MaxScheduleWidth]uint64
	t uint64
}

func (s kseq) load(c *forkjoin.Ctx, i int) krow {
	var r krow
	r.e = s.a.Get(c, i)
	for p := 0; p < s.w; p++ {
		r.k[p] = s.ks.Plane(p).Get(c, i)
	}
	r.t = s.tie.Get(c, i)
	return r
}

func (s kseq) store(c *forkjoin.Ctx, i int, r krow) {
	s.a.Set(c, i, r.e)
	for p := 0; p < s.w; p++ {
		s.ks.Plane(p).Set(c, i, r.k[p])
	}
	s.tie.Set(c, i, r.t)
}

// after reports whether x sorts strictly after y: lexicographic cached key
// words, then the TiePos (Kind, Tag, Aux) triple — obliv.PosAfter, the
// rule shared with the keyed networks so both backends realize the same
// order — then the tie word. With distinct tie words the order is total
// and strict.
func after(x, y *krow, w int) bool {
	for p := 0; p < w; p++ {
		if x.k[p] != y.k[p] {
			return x.k[p] > y.k[p]
		}
	}
	if obliv.PosAfter(x.e, y.e) {
		return true
	}
	if obliv.PosAfter(y.e, x.e) {
		return false
	}
	return x.t > y.t
}

// SampleSortScheduled sorts a[lo:lo+n) ascending by (cached schedule words,
// TiePos triple, tie word), keeping every plane of ks and the tie plane in
// lockstep with the elements. tie must cover the same index range as a.
// scr and kscr are the caller's sorting scratch (length >= n past lo=0,
// width matching ks); tscr is tie-plane scratch of length >= n; any of them
// may be nil, in which case fresh scratch is allocated from sp. seed drives
// pivot sampling.
func SampleSortScheduled(
	c *forkjoin.Ctx, sp *mem.Space,
	a *mem.Array[obliv.Elem], ks *obliv.KeySchedule, tie *mem.Array[uint64],
	scr *mem.Array[obliv.Elem], kscr *obliv.KeySchedule, tscr *mem.Array[uint64],
	lo, n int, seed uint64,
) {
	if n <= 1 {
		return
	}
	w := ks.Width()
	s := newKseq(a.View(lo, n), ks.View(lo, n), tie.View(lo, n))
	if scr == nil {
		scr = mem.Alloc[obliv.Elem](sp, n)
	}
	if kscr == nil {
		kscr = obliv.AllocKeySchedule(sp, n, w)
	}
	if tscr == nil {
		tscr = mem.Alloc[uint64](sp, n)
	}
	scratch := newKseq(scr.View(0, n), kscr.View(0, n), tscr.View(0, n))
	sampleSortRecK(c, sp, s, scratch, 0, n, prng.Mix64(seed), 0)
}

// insertionSortK sorts s[lo:hi) serially (instrumented).
func insertionSortK(c *forkjoin.Ctx, s kseq, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		r := s.load(c, i)
		j := i - 1
		for j >= lo {
			f := s.load(c, j)
			c.Op(1)
			if !after(&f, &r, s.w) {
				break
			}
			s.store(c, j+1, f)
			j--
		}
		s.store(c, j+1, r)
	}
}

// sampleSortRecK sorts s[lo:lo+n); scratch parallels s (same length, same
// relative offsets). The recursion shape mirrors SampleSort's: ~√n buckets
// per level carved out by a binary tree of stable parallel partitions, with
// the mergesort fallback keeping the span polylog on small ranges.
func sampleSortRecK(c *forkjoin.Ctx, sp *mem.Space, s, scratch kseq, lo, n int, seed uint64, depth int) {
	if n <= leafFor(c) {
		insertionSortK(c, s, lo, lo+n)
		return
	}
	if n <= 64 || depth > 12 {
		mergeSortRecK(c, s, scratch, lo, n)
		return
	}
	q := 2
	for q*q < n {
		q++
	}

	// Sample with a small oversampling factor and sort the sample
	// recursively (capping at n/2 keeps the sample recursion shrinking).
	sn := 3*q - 1
	if sn > n/2 {
		sn = n / 2
	}
	src := prng.New(seed)
	idx := make([]int, sn) // drawn serially: Source is not goroutine-safe
	for i := range idx {
		idx[i] = src.Intn(n)
	}
	samp := allocKseq(sp, sn, s.w)
	forkjoin.ParallelFor(c, 0, sn, 0, func(c *forkjoin.Ctx, i int) {
		samp.store(c, i, s.load(c, lo+idx[i]))
	})
	sampScratch := allocKseq(sp, sn, s.w)
	sampleSortRecK(c, sp, samp, sampScratch, 0, sn, prng.Mix64(seed+1), depth+1)

	pivots := make([]krow, q-1)
	for t := range pivots {
		pivots[t] = samp.load(c, (t+1)*sn/q)
	}

	// Partition into q buckets with one stable q-way scatter.
	bounds := make([]int, q+1)
	partitionK(c, s, scratch, lo, n, pivots, bounds)

	// Recurse on buckets.
	forkjoin.ParallelFor(c, 0, q, 1, func(c *forkjoin.Ctx, b int) {
		sz := bounds[b+1] - bounds[b]
		if sz > 1 {
			sampleSortRecK(c, sp, s, scratch, lo+bounds[b], sz, prng.Mix64(seed+uint64(b)+2), depth+1)
		}
	})
}

// bucketOf returns the bucket of r under pivots: the first b with
// r <= pivots[b] (bucket t holds keys in (pivot[t-1], pivot[t]]), found by
// binary search over the in-register pivot copies — no memory traffic.
func bucketOf(r *krow, pivots []krow, w int) int {
	lo, hi := 0, len(pivots)
	for lo < hi {
		mid := (lo + hi) / 2
		if after(r, &pivots[mid], w) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// partitionChunk bounds the per-chunk serial work of the q-way scatter.
const partitionChunk = 4096

// prefixParThreshold is the q·chunks table size past which the scatter's
// (bucket, chunk) offset prefix is worth forking; prefixBucketGrain is how
// many bucket columns a leaf walks (each column is `chunks` ints, strided
// q apart, so a leaf touches grain·chunks counters).
const (
	prefixParThreshold = 1 << 14
	prefixBucketGrain  = 16
)

// partitionK stably partitions s[lo:lo+n) into len(pivots)+1 buckets,
// filling bounds (offsets relative to lo, len(pivots)+2 entries) and
// leaving the buckets contiguous in s. Two element passes: chunk-local
// histograms (classification is a register binary search per element),
// then a stable scatter through scratch at offsets derived from the
// histogram prefix, plus the copy back. The counters live in harness
// memory like the pivot table — this is the insecure stage, so only the
// element traffic is instrumented.
func partitionK(c *forkjoin.Ctx, s, scratch kseq, lo, n int, pivots []krow, bounds []int) {
	q := len(pivots) + 1
	chunks := (n + partitionChunk - 1) / partitionChunk
	counts := make([]int, chunks*q)
	forkjoin.ParallelFor(c, 0, chunks, 1, func(c *forkjoin.Ctx, ch int) {
		from, to := ch*partitionChunk, (ch+1)*partitionChunk
		if to > n {
			to = n
		}
		local := counts[ch*q : (ch+1)*q]
		for i := from; i < to; i++ {
			r := s.load(c, lo+i)
			c.Op(1)
			local[bucketOf(&r, pivots, s.w)]++
		}
	})
	// Exclusive prefix in (bucket, chunk) order: chunk ch of bucket b
	// scatters behind every chunk of earlier buckets and earlier chunks of
	// its own — the stable order. O(q·chunks) harness work; with q ~ √n and
	// chunks ~ n/partitionChunk that is ~n/64 at the top level, enough to be
	// a visible serial tail, so in pool mode it splits per bucket: totals
	// first, then a q-length serial prefix for the bucket bases, then each
	// bucket rewrites its own column of counts independently.
	if c.ParallelMode() && q*chunks >= prefixParThreshold {
		totals := make([]int, q)
		forkjoin.ParallelRange(c, 0, q, prefixBucketGrain, func(_ *forkjoin.Ctx, bFrom, bTo int) {
			for b := bFrom; b < bTo; b++ {
				t := 0
				for ch := 0; ch < chunks; ch++ {
					t += counts[ch*q+b]
				}
				totals[b] = t
			}
		})
		off := 0
		for b := 0; b < q; b++ {
			bounds[b] = off
			off += totals[b]
		}
		forkjoin.ParallelRange(c, 0, q, prefixBucketGrain, func(_ *forkjoin.Ctx, bFrom, bTo int) {
			for b := bFrom; b < bTo; b++ {
				off := bounds[b]
				for ch := 0; ch < chunks; ch++ {
					cnt := counts[ch*q+b]
					counts[ch*q+b] = off
					off += cnt
				}
			}
		})
	} else {
		off := 0
		for b := 0; b < q; b++ {
			bounds[b] = off
			for ch := 0; ch < chunks; ch++ {
				cnt := counts[ch*q+b]
				counts[ch*q+b] = off
				off += cnt
			}
		}
	}
	bounds[q] = n
	forkjoin.ParallelFor(c, 0, chunks, 1, func(c *forkjoin.Ctx, ch int) {
		from, to := ch*partitionChunk, (ch+1)*partitionChunk
		if to > n {
			to = n
		}
		next := counts[ch*q : (ch+1)*q]
		for i := from; i < to; i++ {
			r := s.load(c, lo+i)
			c.Op(1)
			b := bucketOf(&r, pivots, s.w)
			scratch.store(c, lo+next[b], r)
			next[b]++
		}
	})
	copyK(c, s, scratch, lo, n)
}

// copyK copies scratch[lo:lo+n) back into s[lo:lo+n), plane by plane.
func copyK(c *forkjoin.Ctx, s, scratch kseq, lo, n int) {
	mem.CopyPar(c, s.a, lo, scratch.a, lo, n)
	for p := 0; p < s.w; p++ {
		mem.CopyPar(c, s.ks.Plane(p), lo, scratch.ks.Plane(p), lo, n)
	}
	mem.CopyPar(c, s.tie, lo, scratch.tie, lo, n)
}

// mergeSortRecK is the cache-agnostic parallel mergesort fallback.
func mergeSortRecK(c *forkjoin.Ctx, s, scratch kseq, lo, n int) {
	if n <= leafFor(c) {
		insertionSortK(c, s, lo, lo+n)
		return
	}
	half := n / 2
	c.Fork(
		func(c *forkjoin.Ctx) { mergeSortRecK(c, s, scratch, lo, half) },
		func(c *forkjoin.Ctx) { mergeSortRecK(c, s, scratch, lo+half, n-half) },
	)
	parMergeK(c, s, scratch, lo, lo+half, lo+half, lo+n, lo)
	copyK(c, s, scratch, lo, n)
}

// parMergeK merges s[alo:ahi) and s[blo:bhi) into scratch starting at out.
func parMergeK(c *forkjoin.Ctx, s, scratch kseq, alo, ahi, blo, bhi, out int) {
	an, bn := ahi-alo, bhi-blo
	if an+bn <= 2*leafFor(c) {
		i, j, o := alo, blo, out
		for i < ahi && j < bhi {
			x, y := s.load(c, i), s.load(c, j)
			c.Op(1)
			if !after(&x, &y, s.w) {
				scratch.store(c, o, x)
				i++
			} else {
				scratch.store(c, o, y)
				j++
			}
			o++
		}
		for i < ahi {
			scratch.store(c, o, s.load(c, i))
			i, o = i+1, o+1
		}
		for j < bhi {
			scratch.store(c, o, s.load(c, j))
			j, o = j+1, o+1
		}
		return
	}
	// Split on the median of the larger run; binary search in the other.
	if an < bn {
		alo, ahi, blo, bhi = blo, bhi, alo, ahi
	}
	amid := alo + (ahi-alo)/2
	pivot := s.load(c, amid)
	bmid := lowerBoundK(c, s, blo, bhi, &pivot)
	leftOut := out
	rightOut := out + (amid - alo) + (bmid - blo)
	c.Fork(
		func(c *forkjoin.Ctx) { parMergeK(c, s, scratch, alo, amid, blo, bmid, leftOut) },
		func(c *forkjoin.Ctx) { parMergeK(c, s, scratch, amid, ahi, bmid, bhi, rightOut) },
	)
}

// lowerBoundK returns the first index in s[lo:hi) ordering >= pv.
func lowerBoundK(c *forkjoin.Ctx, s kseq, lo, hi int, pv *krow) int {
	for lo < hi {
		mid := (lo + hi) / 2
		r := s.load(c, mid)
		c.Op(1)
		if after(pv, &r, s.w) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
