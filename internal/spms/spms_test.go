package spms

import (
	"sort"
	"testing"
	"testing/quick"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

func randElems(seed uint64, n int, distinct bool) []obliv.Elem {
	src := prng.New(seed)
	out := make([]obliv.Elem, n)
	seen := map[uint64]bool{}
	for i := range out {
		k := src.Uint64() >> 4
		if distinct {
			for seen[k] {
				k = src.Uint64() >> 4
			}
			seen[k] = true
		} else {
			k = src.Uint64n(uint64(n/4 + 1))
		}
		out[i] = obliv.Elem{Key: k, Val: uint64(i), Kind: obliv.Real}
	}
	return out
}

func checkSorted(t *testing.T, name string, got []obliv.Elem, orig []obliv.Elem) {
	t.Helper()
	want := make([]uint64, len(orig))
	for i, e := range orig {
		want[i] = e.Key
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range got {
		if got[i].Key != want[i] {
			t.Fatalf("%s: position %d = %d, want %d", name, i, got[i].Key, want[i])
		}
	}
}

func TestSampleSortSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 47, 100, 1000, 5000} {
		raw := randElems(uint64(n)+1, n, true)
		sp := mem.NewSpace()
		a := mem.FromSlice(sp, raw)
		SampleSort(forkjoin.Serial(), sp, a, 7)
		checkSorted(t, "samplesort", a.Data(), raw)
	}
}

func TestSampleSortDuplicates(t *testing.T) {
	raw := randElems(3, 2000, false)
	sp := mem.NewSpace()
	a := mem.FromSlice(sp, raw)
	SampleSort(forkjoin.Serial(), sp, a, 9)
	checkSorted(t, "samplesort-dup", a.Data(), raw)
}

func TestMergeSortSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 47, 100, 1000, 5000} {
		raw := randElems(uint64(n)+2, n, true)
		sp := mem.NewSpace()
		a := mem.FromSlice(sp, raw)
		MergeSort(forkjoin.Serial(), sp, a)
		checkSorted(t, "mergesort", a.Data(), raw)
	}
}

func TestMergeSortDuplicates(t *testing.T) {
	raw := randElems(5, 2000, false)
	sp := mem.NewSpace()
	a := mem.FromSlice(sp, raw)
	MergeSort(forkjoin.Serial(), sp, a)
	checkSorted(t, "mergesort-dup", a.Data(), raw)
}

func TestParallelMatchesSerial(t *testing.T) {
	raw := randElems(11, 4000, true)
	sp1 := mem.NewSpace()
	a1 := mem.FromSlice(sp1, raw)
	SampleSort(forkjoin.Serial(), sp1, a1, 3)
	sp2 := mem.NewSpace()
	a2 := mem.FromSlice(sp2, raw)
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) { SampleSort(c, sp2, a2, 3) })
	for i := range raw {
		if a1.Data()[i].Key != a2.Data()[i].Key {
			t.Fatalf("parallel mismatch at %d", i)
		}
	}
	sp3 := mem.NewSpace()
	a3 := mem.FromSlice(sp3, raw)
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) { MergeSort(c, sp3, a3) })
	for i := range raw {
		if a1.Data()[i].Key != a3.Data()[i].Key {
			t.Fatalf("mergesort parallel mismatch at %d", i)
		}
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16%3000) + 1
		raw := randElems(seed, n, false)
		sp := mem.NewSpace()
		a := mem.FromSlice(sp, raw)
		SampleSort(forkjoin.Serial(), sp, a, seed)
		for i := 1; i < n; i++ {
			if a.Data()[i-1].Key > a.Data()[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSortSpanShapes(t *testing.T) {
	// SampleSort's span should track log² n and MergeSort's log³ n: the
	// normalized factors must stay roughly flat across a 16x size change.
	// (Constants differ — SampleSort's partition tree is span-heavier at
	// laptop sizes — so shapes, not absolute spans, are compared; see
	// EXPERIMENTS.md.)
	span := func(f func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]), n int) float64 {
		raw := randElems(13, n, true)
		sp := mem.NewSpace()
		a := mem.FromSlice(sp, raw)
		m := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) { f(c, sp, a) })
		return float64(m.Span)
	}
	lg := func(n int) float64 {
		l := 0.0
		for v := 1; v < n; v <<= 1 {
			l++
		}
		return l
	}
	const n1, n2 = 1 << 9, 1 << 13
	ss := func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]) { SampleSort(c, sp, a, 1) }
	ms := func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]) { MergeSort(c, sp, a) }
	ssF1 := span(ss, n1) / (lg(n1) * lg(n1))
	ssF2 := span(ss, n2) / (lg(n2) * lg(n2))
	msF1 := span(ms, n1) / (lg(n1) * lg(n1) * lg(n1))
	msF2 := span(ms, n2) / (lg(n2) * lg(n2) * lg(n2))
	if ssF2 > 2.2*ssF1 {
		t.Fatalf("samplesort span outgrows log²n: factor %.2f -> %.2f", ssF1, ssF2)
	}
	if msF2 > 2.2*msF1 {
		t.Fatalf("mergesort span outgrows log³n: factor %.2f -> %.2f", msF1, msF2)
	}
}

func TestMergeSortCacheBeatsSampleSort(t *testing.T) {
	// MergeSort streams; SampleSort scatters. Under a small cache the
	// mergesort must miss less.
	const n = 1 << 13
	const M, B = 1 << 9, 1 << 4
	raw := randElems(17, n, true)
	misses := func(f func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem])) int64 {
		sp := mem.NewSpace()
		a := mem.FromSlice(sp, raw)
		m := forkjoin.RunMetered(forkjoin.MeterOpts{CacheM: M, CacheB: B}, func(c *forkjoin.Ctx) { f(c, sp, a) })
		return m.CacheMisses
	}
	ss := misses(func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]) { SampleSort(c, sp, a, 1) })
	ms := misses(func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]) { MergeSort(c, sp, a) })
	if ms >= ss {
		t.Fatalf("mergesort misses %d not below samplesort misses %d", ms, ss)
	}
}

func TestWorkLinearithmic(t *testing.T) {
	work := func(n int) int64 {
		raw := randElems(1, n, true)
		sp := mem.NewSpace()
		a := mem.FromSlice(sp, raw)
		m := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) { MergeSort(c, sp, a) })
		return m.Work
	}
	w1, w2 := work(1<<11), work(1<<12)
	r := float64(w2) / float64(w1)
	if r < 1.8 || r > 2.6 {
		t.Fatalf("mergesort work doubling ratio %.2f outside [1.8, 2.6]", r)
	}
}

func TestInsecureAdapters(t *testing.T) {
	raw := randElems(23, 500, true)
	for name, f := range map[string]func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]){
		"sample": InsecureSampleSort(5),
		"merge":  InsecureMergeSort(),
	} {
		sp := mem.NewSpace()
		a := mem.FromSlice(sp, raw)
		f(forkjoin.Serial(), sp, a)
		checkSorted(t, name, a.Data(), raw)
	}
}
