// Package spms provides the *insecure* comparison-sort baselines of
// Table 1's "previous best" column. The genuine SPMS algorithm of Cole and
// Ramachandran [CR17b] attains O(n log n) work, O(log n·log log n) span and
// optimal cache-agnostic caching simultaneously; reproducing it exactly is
// out of scope (DESIGN.md deviation 2), so this package supplies two
// baselines that between them cover all three axes:
//
//   - SampleSort: SPMS's recursion shape (n → ~√n buckets per level,
//     log log n levels). Buckets are carved out by a binary tree of
//     stable parallel partitions (prefix-sum based), giving O(n log n)
//     work and O(log² n) span overall — the span-shape baseline (a log
//     factor above true SPMS, noted in EXPERIMENTS.md);
//
//   - MergeSort: cache-agnostic parallel mergesort, optimal O(n log n)
//     work and Θ((n/B)·log(n/M)) caching with O(log³ n) span — the
//     cache-shape baseline.
//
// Both are comparison-based, so either can serve as the post-ORP stage of
// core.SortWith (Theorem 3.2's composition).
package spms

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// sortLeaf is the size at which recursion switches to serial insertion
// sort in parallel mode; metered runs use leaf 4 so the measured span is
// the span of the fully forked computation (the grain-1 policy).
const sortLeaf = 48

func leafFor(c *forkjoin.Ctx) int {
	if c.Metered() {
		return 4
	}
	return sortLeaf
}

// key orders by Elem.Key with fillers last.
func key(e obliv.Elem) uint64 {
	if e.Kind != obliv.Real {
		return obliv.InfKey
	}
	return e.Key
}

// insertionSort sorts a[lo:hi) serially (instrumented).
func insertionSort(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		e := a.Get(c, i)
		k := key(e)
		j := i - 1
		for j >= lo {
			f := a.Get(c, j)
			c.Op(1)
			if key(f) <= k {
				break
			}
			a.Set(c, j+1, f)
			j--
		}
		a.Set(c, j+1, e)
	}
}

// SampleSort sorts a in place. Each level samples ~3√n elements, sorts the
// sample recursively, picks √n−1 pivots, partitions the array into buckets
// with a binary tree of stable parallel partitions, and recurses on the
// buckets in parallel. seed drives pivot sampling.
func SampleSort(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], seed uint64) {
	n := a.Len()
	if n <= 1 {
		return
	}
	scratch := mem.Alloc[obliv.Elem](sp, n)
	sampleSortRec(c, sp, a, scratch, 0, n, prng.Mix64(seed), 0)
}

// sampleSortRec sorts a[lo:lo+n); scratch parallels a (same length, same
// relative offsets).
func sampleSortRec(c *forkjoin.Ctx, sp *mem.Space, a, scratch *mem.Array[obliv.Elem], lo, n int, seed uint64, depth int) {
	if n <= leafFor(c) {
		insertionSort(c, a, lo, lo+n)
		return
	}
	// For small ranges — or in the (never observed) event of pathological
	// pivot luck — fall back to mergesort, which keeps the span polylog.
	if n <= 64 || depth > 12 {
		mergeSortRec(c, a, scratch, lo, n)
		return
	}
	q := 2
	for q*q < n {
		q++
	}

	// Sample with a small oversampling factor and sort the sample
	// recursively. Capping the sample at n/2 guarantees the sample
	// recursion strictly shrinks.
	sn := 3*q - 1
	if sn > n/2 {
		sn = n / 2
	}
	src := prng.New(seed)
	idx := make([]int, sn) // drawn serially: Source is not goroutine-safe
	for i := range idx {
		idx[i] = src.Intn(n)
	}
	samp := mem.Alloc[obliv.Elem](sp, sn)
	forkjoin.ParallelFor(c, 0, sn, 0, func(c *forkjoin.Ctx, i int) {
		samp.Set(c, i, a.Get(c, lo+idx[i]))
	})
	sampScratch := mem.Alloc[obliv.Elem](sp, sn)
	sampleSortRec(c, sp, samp, sampScratch, 0, sn, prng.Mix64(seed+1), depth+1)

	pivots := mem.Alloc[uint64](sp, q-1)
	forkjoin.ParallelFor(c, 0, q-1, 0, func(c *forkjoin.Ctx, t int) {
		pivots.Set(c, t, key(samp.Get(c, (t+1)*sn/q)))
	})

	// Partition into q buckets via a binary tree of stable partitions.
	bounds := make([]int, q+1)
	bounds[0], bounds[q] = 0, n
	partitionByPivots(c, sp, a, scratch, lo, 0, n, pivots, 0, q-2, bounds)

	// Recurse on buckets.
	forkjoin.ParallelFor(c, 0, q, 1, func(c *forkjoin.Ctx, b int) {
		sz := bounds[b+1] - bounds[b]
		if sz > 1 {
			sampleSortRec(c, sp, a, scratch, lo+bounds[b], sz, prng.Mix64(seed+uint64(b)+2), depth+1)
		}
	})
}

// partitionByPivots rearranges a[base+off : base+off+n) so that elements
// are grouped by the buckets defined by pivots[pLo..pHi] (bucket t holds
// keys in (pivot[t-1], pivot[t]]); it records each bucket boundary in
// bounds (offsets relative to base). Classic divide and conquer on the
// pivot range: split by the middle pivot with one stable parallel
// partition, recurse on both sides in parallel. O(n·log q) work,
// O(log q · log n) span per sample-sort level.
func partitionByPivots(c *forkjoin.Ctx, sp *mem.Space, a, scratch *mem.Array[obliv.Elem], base, off, n int, pivots *mem.Array[uint64], pLo, pHi int, bounds []int) {
	if pLo > pHi {
		return
	}
	mid := (pLo + pHi) / 2
	pv := pivots.Get(c, mid)
	split := stablePartition(c, sp, a, scratch, base+off, n, pv)
	bounds[mid+1] = off + split
	c.Fork(
		func(c *forkjoin.Ctx) {
			partitionByPivots(c, sp, a, scratch, base, off, split, pivots, pLo, mid-1, bounds)
		},
		func(c *forkjoin.Ctx) {
			partitionByPivots(c, sp, a, scratch, base, off+split, n-split, pivots, mid+1, pHi, bounds)
		},
	)
}

// stablePartition stably moves elements with key <= pv to the front of
// a[lo:lo+n) and returns their count. Prefix-sum based: O(n) work,
// O(log n) span.
func stablePartition(c *forkjoin.Ctx, sp *mem.Space, a, scratch *mem.Array[obliv.Elem], lo, n int, pv uint64) int {
	if n == 0 {
		return 0
	}
	pos := mem.Alloc[uint64](sp, n)
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, from, to int) {
		for i := from; i < to; i++ {
			v := uint64(0)
			c.Op(1)
			if key(a.Get(c, lo+i)) <= pv {
				v = 1
			}
			pos.Set(c, i, v)
		}
	})
	obliv.PrefixSumU64(c, sp, pos, true)
	total := int(pos.Get(c, n-1))
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, from, to int) {
		for i := from; i < to; i++ {
			e := a.Get(c, lo+i)
			rank := int(pos.Get(c, i))
			c.Op(1)
			if key(e) <= pv {
				scratch.Set(c, lo+rank-1, e)
			} else {
				scratch.Set(c, lo+total+(i-rank), e)
			}
		}
	})
	mem.CopyPar(c, a, lo, scratch, lo, n)
	return total
}

// MergeSort sorts a in place with cache-agnostic parallel mergesort:
// recursive halves in parallel, merged by divide-and-conquer parallel
// merge (median split + binary search). Work O(n log n), span O(log³ n),
// caching Θ((n/B)·log₂(n/M)) — cache-agnostic.
func MergeSort(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]) {
	n := a.Len()
	if n <= 1 {
		return
	}
	scratch := mem.Alloc[obliv.Elem](sp, n)
	mergeSortRec(c, a, scratch, 0, n)
}

func mergeSortRec(c *forkjoin.Ctx, a, scratch *mem.Array[obliv.Elem], lo, n int) {
	if n <= leafFor(c) {
		insertionSort(c, a, lo, lo+n)
		return
	}
	half := n / 2
	c.Fork(
		func(c *forkjoin.Ctx) { mergeSortRec(c, a, scratch, lo, half) },
		func(c *forkjoin.Ctx) { mergeSortRec(c, a, scratch, lo+half, n-half) },
	)
	parMerge(c, a, scratch, lo, lo+half, lo+half, lo+n, lo)
	mem.CopyPar(c, a, lo, scratch, lo, n)
}

// parMerge merges a[alo:ahi) and a[blo:bhi) into scratch starting at out.
func parMerge(c *forkjoin.Ctx, a, scratch *mem.Array[obliv.Elem], alo, ahi, blo, bhi, out int) {
	an, bn := ahi-alo, bhi-blo
	if an+bn <= 2*leafFor(c) {
		i, j, o := alo, blo, out
		for i < ahi && j < bhi {
			x, y := a.Get(c, i), a.Get(c, j)
			c.Op(1)
			if key(x) <= key(y) {
				scratch.Set(c, o, x)
				i++
			} else {
				scratch.Set(c, o, y)
				j++
			}
			o++
		}
		for i < ahi {
			scratch.Set(c, o, a.Get(c, i))
			i, o = i+1, o+1
		}
		for j < bhi {
			scratch.Set(c, o, a.Get(c, j))
			j, o = j+1, o+1
		}
		return
	}
	// Split on the median of the larger run; binary search in the other.
	if an < bn {
		alo, ahi, blo, bhi = blo, bhi, alo, ahi
	}
	amid := alo + (ahi-alo)/2
	pivot := key(a.Get(c, amid))
	bmid := lowerBound(c, a, blo, bhi, pivot)
	leftOut := out
	rightOut := out + (amid - alo) + (bmid - blo)
	c.Fork(
		func(c *forkjoin.Ctx) { parMerge(c, a, scratch, alo, amid, blo, bmid, leftOut) },
		func(c *forkjoin.Ctx) { parMerge(c, a, scratch, amid, ahi, bmid, bhi, rightOut) },
	)
}

// lowerBound returns the first index in a[lo:hi) with key >= v.
func lowerBound(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], lo, hi int, v uint64) int {
	for lo < hi {
		mid := (lo + hi) / 2
		c.Op(1)
		if key(a.Get(c, mid)) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// InsecureSampleSort adapts SampleSort to core's InsecureSort signature.
func InsecureSampleSort(seed uint64) func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]) {
	return func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]) {
		SampleSort(c, sp, a, seed)
	}
}

// InsecureMergeSort adapts MergeSort to core's InsecureSort signature.
func InsecureMergeSort() func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]) {
	return func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem]) {
		MergeSort(c, sp, a)
	}
}
