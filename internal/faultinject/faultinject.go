// Package faultinject provides config-gated fault-injection points for the
// chaos tests: named sites in the execution pipeline call Hit, and tests
// arm rules (panic on the k-th hit, slow every k-th hit) against those
// names. With no rules armed — the production state — a Hit is one atomic
// load and a predicted branch, so the instrumented hot paths cost nothing
// measurable; the package deliberately has no build tag, keeping the chaos
// harness runnable against the exact production binary.
//
// Sites are global (one registry per process), so chaos tests using it
// must not run in parallel with each other; Reset between tests.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// armed short-circuits Hit when no rules exist. It is the only state read
// on the un-faulted fast path.
var armed atomic.Bool

var (
	mu    sync.Mutex
	rules = map[string]*rule{}
)

type rule struct {
	hits      atomic.Int64
	panicAt   int64 // panic on exactly this hit (1-based; 0 = never)
	panicNth  int64 // panic on every n-th hit (0 = never)
	slowNth   int64 // sleep on every n-th hit (0 = never)
	slowDelay time.Duration
}

// Injected is the panic payload of a tripped panic rule; the lifecycle
// layers convert it to a typed internal error like any other panic.
type Injected struct {
	Point string
	Hit   int64
}

func (e *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", e.Point, e.Hit)
}

// Hit marks one execution of the named injection point. No-op unless a
// test armed a rule for it.
func Hit(point string) {
	if !armed.Load() {
		return
	}
	// Snapshot the rule under the lock: tests may arm concurrently with
	// running queries.
	mu.Lock()
	r := rules[point]
	var snap rule
	if r != nil {
		snap.panicAt, snap.panicNth = r.panicAt, r.panicNth
		snap.slowNth, snap.slowDelay = r.slowNth, r.slowDelay
	}
	mu.Unlock()
	if r == nil {
		return
	}
	n := r.hits.Add(1)
	if snap.slowNth > 0 && n%snap.slowNth == 0 {
		time.Sleep(snap.slowDelay)
	}
	if snap.panicAt > 0 && n == snap.panicAt {
		panic(&Injected{Point: point, Hit: n})
	}
	if snap.panicNth > 0 && n%snap.panicNth == 0 {
		panic(&Injected{Point: point, Hit: n})
	}
}

// arm mutates point's rule under the lock (Hit snapshots under the same
// lock, so arming is safe concurrently with running queries).
func arm(point string, set func(*rule)) {
	mu.Lock()
	defer mu.Unlock()
	r := rules[point]
	if r == nil {
		r = &rule{}
		rules[point] = r
	}
	set(r)
	armed.Store(true)
}

// PanicAt arms a one-shot panic on exactly the k-th hit of point (1-based).
func PanicAt(point string, k int64) { arm(point, func(r *rule) { r.panicAt = k }) }

// PanicEvery arms a panic on every n-th hit of point (0 disables).
func PanicEvery(point string, n int64) { arm(point, func(r *rule) { r.panicNth = n }) }

// SlowEvery arms a sleep of d on every n-th hit of point (0 disables).
func SlowEvery(point string, n int64, d time.Duration) {
	arm(point, func(r *rule) { r.slowNth, r.slowDelay = n, d })
}

// Hits returns the hit count of point (0 if never armed).
func Hits(point string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if r := rules[point]; r != nil {
		return r.hits.Load()
	}
	return 0
}

// Reset drops every rule and disarms the fast path. Call from test cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	rules = map[string]*rule{}
	armed.Store(false)
}
