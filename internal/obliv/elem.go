// Package obliv provides the data-oblivious building blocks of the paper:
// oblivious compare-exchange, parallel prefix/segmented scans, aggregation
// and propagation in sorted arrays (§F, Table 2), oblivious bin placement
// (§C.1), and send-receive a.k.a. oblivious routing (§F).
//
// All primitives have access patterns that depend only on the input length
// (and, for randomized callers, on the pre-drawn random tape) — never on
// the data. The test suite verifies this by trace-fingerprint equality.
package obliv

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// Kind classifies an element. The zero value is Filler so that freshly
// allocated arrays consist of fillers.
type Kind uint8

const (
	// Filler is padding (the paper's ⊥ / dummy elements).
	Filler Kind = iota
	// Real is a live element.
	Real
	// Temp is a placeholder used internally by bin placement (§C.1).
	Temp
)

// Elem is the record moved by every oblivious primitive. Interpretation of
// the fields varies by phase and is documented at each call site; broadly:
//
//	Key  — caller's sort key (preserved by ORBA/ORP)
//	Key2 — second key column of wide-key records (relational layer)
//	Val  — payload value
//	Aux  — secondary payload (typically an original index)
//	Lbl  — random routing label (ORBA bin choice, shuffle key)
//	Tag  — small group / role identifier
//	Kind — Filler / Real / Temp
//	Mark — scratch flag written by primitives (e.g. "excess" in §C.1)
//
// One Elem occupies one address in the instrumented memory model.
type Elem struct {
	Key  uint64
	Key2 uint64
	Val  uint64
	Aux  uint64
	Lbl  uint64
	Tag  uint32
	Kind Kind
	Mark uint8
}

// InfKey sorts after every valid key. Valid keys passed to key functions
// must be < MaxKey so that composite keys such as 2k+1 cannot collide with
// InfKey.
const InfKey = ^uint64(0)

// MaxKey bounds caller-supplied keys: primitives that build composite keys
// (send-receive, conflict resolution) require Key < MaxKey.
const MaxKey = uint64(1) << 62

// NextPow2 returns the smallest power of two >= n (n >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Log2 returns floor(log2(n)) for n >= 1.
func Log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// CompareExchange obliviously orders positions i and j of a (ascending by
// key if asc). Both positions are always read and always rewritten, so the
// access pattern is independent of the comparison outcome — this is the
// comparator of every sorting-network primitive.
func CompareExchange(c *forkjoin.Ctx, a *mem.Array[Elem], i, j int, asc bool, key func(Elem) uint64) {
	x := a.Get(c, i)
	y := a.Get(c, j)
	c.Op(1) // the comparison
	if (key(x) > key(y)) == asc {
		x, y = y, x
	}
	a.Set(c, i, x)
	a.Set(c, j, y)
}

// Select returns b if cond else a, in straight-line code (no instrumented
// memory traffic; the branch operates on register values only).
func Select(cond bool, a, b uint64) uint64 {
	if cond {
		return b
	}
	return a
}

// Sorter sorts a[lo:lo+n] ascending by key using a data-independent
// network. Implementations state their n requirements (the network sorters
// in internal/bitonic require n to be a power of two; callers pad with
// Filler elements keyed InfKey).
type Sorter interface {
	Sort(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[Elem], lo, n int, key func(Elem) uint64)
	Name() string
}

// SelectionNetwork is an O(n²)-comparator oblivious sorter (a brute-force
// network of all pairs). It handles any n and exists as a tiny, obviously
// correct reference implementation for tests and micro-baselines.
type SelectionNetwork struct{}

// Name implements Sorter.
func (SelectionNetwork) Name() string { return "selection-network" }

// Sort implements Sorter.
func (SelectionNetwork) Sort(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[Elem], lo, n int, key func(Elem) uint64) {
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			CompareExchange(c, a, lo+i, lo+j, true, key)
		}
	}
}
