package obliv

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// BinPlace implements the oblivious bin placement functionality of §C.1
// (Chan–Shi): each real element of in carries a destination bin
// groupOf(e) ∈ [beta]; the elements are moved to their bins, and every bin
// is padded with fillers to capacity binZ. The concatenated bins are
// written to out (which must have length beta*binZ). It is promised that
// each bin receives at most binZ real elements; any excess reals are
// dropped (replaced by fillers downstream) and their count is returned so
// the caller can account for the negligible-probability overflow event of
// Theorem C.1. The returned count is computed from raw memory outside the
// adversary's view (diagnostics only).
//
// The algorithm is the O(1)-oblivious-sorts construction of [CS17]:
//
//  1. append binZ temp elements per bin;
//  2. oblivious sort by (group, real-before-temp), fillers last;
//  3. oblivious propagation gives each element its group's leftmost
//     position; elements at offset >= binZ within their group are marked
//     excess;
//  4. oblivious sort moving excess and fillers to the end;
//  5. truncate to beta*binZ and replace temps by fillers.
//
// groupOf is consulted only for Real elements; Temp elements use their Tag.
func BinPlace(
	c *forkjoin.Ctx, sp *mem.Space,
	in *mem.Array[Elem], out *mem.Array[Elem],
	beta, binZ int,
	groupOf func(Elem) uint64,
	srt Sorter,
) int {
	nIn := in.Len()
	outLen := beta * binZ
	if out.Len() < outLen {
		panic("obliv: BinPlace output too short")
	}
	wLen := NextPow2(nIn + outLen)
	w := mem.Alloc[Elem](sp, wLen)

	// Step 1: copy input, then append binZ temps per bin; trailing slots
	// remain fillers (zero value).
	mem.CopyPar(c, w, 0, in, 0, nIn)
	forkjoin.ParallelRange(c, 0, outLen, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for k := lo; k < hi; k++ {
			w.Set(c, nIn+k, Elem{Kind: Temp, Tag: uint32(k / binZ)})
		}
	})

	effGroup := func(e Elem) uint64 {
		switch e.Kind {
		case Temp:
			return uint64(e.Tag)
		case Real:
			return groupOf(e)
		default:
			return InfKey
		}
	}

	// Step 2: sort by (group, real-before-temp); fillers last.
	key1 := func(e Elem) uint64 {
		if e.Kind == Filler {
			return InfKey
		}
		k := effGroup(e) << 1
		if e.Kind == Temp {
			k |= 1
		}
		return k
	}
	srt.Sort(c, sp, w, 0, wLen, key1)

	// Step 3: find each group's leftmost position; mark excess.
	PropagateFirst(c, sp, w, effGroup,
		func(e Elem, i int) (uint64, bool) { return uint64(i), true },
		func(e Elem, i int, v uint64, ok bool) Elem {
			e.Mark = 0
			if e.Kind != Filler && i-int(v) >= binZ {
				e.Mark = 1
			}
			return e
		})

	// Step 4: sort normals by (group, real-before-temp); excess and
	// fillers to the end. Ordering reals before temps guarantees every
	// output bin holds its real elements in its first slots — callers
	// (e.g. the ORAM eviction write-back) rely on this.
	key2 := func(e Elem) uint64 {
		if e.Kind == Filler || e.Mark == 1 {
			return InfKey
		}
		k := effGroup(e) << 1
		if e.Kind == Temp {
			k |= 1
		}
		return k
	}
	srt.Sort(c, sp, w, 0, wLen, key2)

	// Step 5: truncate, turning temps into fillers and clearing marks.
	forkjoin.ParallelRange(c, 0, outLen, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := w.Get(c, i)
			if e.Kind == Temp {
				e = Elem{}
			}
			e.Mark = 0
			out.Set(c, i, e)
		}
	})

	// Overflow diagnostics (outside the adversary's view).
	lost := 0
	for _, e := range w.Data()[outLen:] {
		if e.Kind == Real {
			lost++
		}
	}
	return lost
}
