package obliv

import (
	"sort"
	"testing"
	"testing/quick"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/prng"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2Log2(t *testing.T) {
	if !IsPow2(1) || !IsPow2(64) || IsPow2(0) || IsPow2(3) {
		t.Fatal("IsPow2 wrong")
	}
	if Log2(1) != 0 || Log2(2) != 1 || Log2(1024) != 10 || Log2(1023) != 9 {
		t.Fatal("Log2 wrong")
	}
}

func TestCompareExchange(t *testing.T) {
	s := mem.NewSpace()
	c := forkjoin.Serial()
	key := func(e Elem) uint64 { return e.Key }
	a := mem.FromSlice(s, []Elem{{Key: 5}, {Key: 2}})
	CompareExchange(c, a, 0, 1, true, key)
	if a.Data()[0].Key != 2 || a.Data()[1].Key != 5 {
		t.Fatal("ascending exchange failed")
	}
	CompareExchange(c, a, 0, 1, false, key)
	if a.Data()[0].Key != 5 || a.Data()[1].Key != 2 {
		t.Fatal("descending exchange failed")
	}
}

func TestCompareExchangeObliviousTrace(t *testing.T) {
	key := func(e Elem) uint64 { return e.Key }
	run := func(x, y uint64) *forkjoin.Metrics {
		s := mem.NewSpace()
		a := mem.FromSlice(s, []Elem{{Key: x}, {Key: y}})
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			CompareExchange(c, a, 0, 1, true, key)
		})
	}
	if !run(1, 2).Trace.Equal(run(2, 1).Trace) {
		t.Fatal("compare-exchange trace depends on data")
	}
}

func refPrefix(in []uint64, inclusive bool) []uint64 {
	out := make([]uint64, len(in))
	var acc uint64
	for i, v := range in {
		if inclusive {
			acc += v
			out[i] = acc
		} else {
			out[i] = acc
			acc += v
		}
	}
	return out
}

func TestPrefixSumSizes(t *testing.T) {
	src := prng.New(1)
	for _, n := range []int{1, 2, 3, 7, 8, 100, 1023} {
		for _, inclusive := range []bool{true, false} {
			raw := make([]uint64, n)
			for i := range raw {
				raw[i] = src.Uint64n(1000)
			}
			s := mem.NewSpace()
			a := mem.FromSlice(s, raw)
			PrefixSumU64(forkjoin.Serial(), s, a, inclusive)
			want := refPrefix(raw, inclusive)
			for i := range want {
				if a.Data()[i] != want[i] {
					t.Fatalf("n=%d inclusive=%v: a[%d]=%d want %d", n, inclusive, i, a.Data()[i], want[i])
				}
			}
		}
	}
}

func TestPrefixSumEmpty(t *testing.T) {
	s := mem.NewSpace()
	a := mem.Alloc[uint64](s, 0)
	PrefixSumU64(forkjoin.Serial(), s, a, true) // must not panic
}

func TestScanNonCommutativeOp(t *testing.T) {
	// op = right projection is associative but not commutative; inclusive
	// scan must leave the array unchanged, exclusive must shift right.
	rightProj := func(x, y uint64) uint64 { return y }
	raw := []uint64{9, 4, 7, 7, 1, 3}
	s := mem.NewSpace()
	a := mem.FromSlice(s, raw)
	ScanOp(forkjoin.Serial(), s, a, rightProj, 0, true)
	for i := range raw {
		if a.Data()[i] != raw[i] {
			t.Fatalf("inclusive right-projection changed a[%d]", i)
		}
	}
	b := mem.FromSlice(s, raw)
	ScanOp(forkjoin.Serial(), s, b, rightProj, 99, false)
	want := []uint64{99, 9, 4, 7, 7, 1}
	for i := range want {
		if b.Data()[i] != want[i] {
			t.Fatalf("exclusive: b=%v want %v", b.Data(), want)
		}
	}
}

func TestScanMaxOp(t *testing.T) {
	maxOp := func(x, y uint64) uint64 {
		if x > y {
			return x
		}
		return y
	}
	raw := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	s := mem.NewSpace()
	a := mem.FromSlice(s, raw)
	ScanOp(forkjoin.Serial(), s, a, maxOp, 0, true)
	want := []uint64{3, 3, 4, 4, 5, 9, 9, 9}
	for i := range want {
		if a.Data()[i] != want[i] {
			t.Fatalf("running max = %v, want %v", a.Data(), want)
		}
	}
}

func TestScanSpanLogarithmic(t *testing.T) {
	span := func(n int) int64 {
		s := mem.NewSpace()
		a := mem.Alloc[uint64](s, n)
		m := forkjoin.RunMetered(forkjoin.MeterOpts{}, func(c *forkjoin.Ctx) {
			PrefixSumU64(c, s, a, true)
		})
		return m.Span
	}
	s1, s2 := span(1<<8), span(1<<12)
	if s2 >= 3*s1 {
		t.Fatalf("scan span not logarithmic: %d -> %d", s1, s2)
	}
}

func TestScanCacheScanBound(t *testing.T) {
	const n = 1 << 12
	const b = 16
	s := mem.NewSpace()
	a := mem.Alloc[uint64](s, n)
	m := forkjoin.RunMetered(forkjoin.MeterOpts{CacheM: 1 << 9, CacheB: b}, func(c *forkjoin.Ctx) {
		PrefixSumU64(c, s, a, true)
	})
	// Scan touches a twice and the 2n-1 tree twice: ~6n/B misses total.
	bound := int64(8 * n / b)
	if m.CacheMisses > bound {
		t.Fatalf("scan misses %d exceed bound %d", m.CacheMisses, bound)
	}
}

func TestSumU64(t *testing.T) {
	raw := []uint64{5, 10, 20, 1}
	s := mem.NewSpace()
	a := mem.FromSlice(s, raw)
	if got := SumU64(forkjoin.Serial(), s, a); got != 36 {
		t.Fatalf("sum = %d", got)
	}
	for i, v := range a.Data() {
		if v != raw[i] {
			t.Fatal("SumU64 modified the array")
		}
	}
}

func TestScanParallelMatchesSerial(t *testing.T) {
	raw := make([]uint64, 5000)
	src := prng.New(2)
	for i := range raw {
		raw[i] = src.Uint64n(100)
	}
	want := refPrefix(raw, true)
	s := mem.NewSpace()
	a := mem.FromSlice(s, raw)
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		PrefixSumU64(c, s, a, true)
	})
	for i := range want {
		if a.Data()[i] != want[i] {
			t.Fatalf("parallel scan mismatch at %d", i)
		}
	}
}

// buildGrouped creates a grouped (sorted-by-group) Elem array.
func buildGrouped(groups [][]uint64) []Elem {
	var out []Elem
	for g, vals := range groups {
		for _, v := range vals {
			out = append(out, Elem{Key: uint64(g), Val: v, Kind: Real})
		}
	}
	return out
}

func TestPropagateFirstBasic(t *testing.T) {
	raw := buildGrouped([][]uint64{{10, 11, 12}, {20}, {30, 31}})
	s := mem.NewSpace()
	a := mem.FromSlice(s, raw)
	got := make([]uint64, len(raw))
	PropagateFirst(forkjoin.Serial(), s, a,
		func(e Elem) uint64 { return e.Key },
		func(e Elem, i int) (uint64, bool) { return e.Val, true },
		func(e Elem, i int, v uint64, ok bool) Elem {
			got[i] = v
			return e
		})
	want := []uint64{10, 10, 10, 20, 30, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPropagateFirstSelectiveSource(t *testing.T) {
	// Only elements with Tag==1 are sources; groups without any source get
	// ok=false.
	raw := []Elem{
		{Key: 0, Val: 1, Kind: Real}, // group 0: no source
		{Key: 0, Val: 2, Kind: Real},
		{Key: 1, Val: 3, Kind: Real}, // group 1: source is second
		{Key: 1, Val: 4, Tag: 1, Kind: Real},
		{Key: 1, Val: 5, Kind: Real},
	}
	s := mem.NewSpace()
	a := mem.FromSlice(s, raw)
	type res struct {
		v  uint64
		ok bool
	}
	got := make([]res, len(raw))
	PropagateFirst(forkjoin.Serial(), s, a,
		func(e Elem) uint64 { return e.Key },
		func(e Elem, i int) (uint64, bool) { return e.Val, e.Tag == 1 },
		func(e Elem, i int, v uint64, ok bool) Elem {
			got[i] = res{v, ok}
			return e
		})
	if got[0].ok || got[1].ok {
		t.Fatal("sourceless group reported ok")
	}
	// Propagation is directional: positions before the first source of the
	// run see ok=false; the source and everything after it see its value.
	if got[2].ok {
		t.Fatalf("entry before source reported ok: %+v", got[2])
	}
	for i := 3; i < 5; i++ {
		if !got[i].ok || got[i].v != 4 {
			t.Fatalf("group 1 entry %d = %+v, want value 4", i, got[i])
		}
	}
}

func TestPropagateTraceOblivious(t *testing.T) {
	run := func(keys []uint64) *forkjoin.Metrics {
		raw := make([]Elem, len(keys))
		for i, k := range keys {
			raw[i] = Elem{Key: k, Val: k * 10, Kind: Real}
		}
		s := mem.NewSpace()
		a := mem.FromSlice(s, raw)
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			PropagateFirst(c, s, a,
				func(e Elem) uint64 { return e.Key },
				func(e Elem, i int) (uint64, bool) { return e.Val, true },
				func(e Elem, i int, v uint64, ok bool) Elem { e.Aux = v; return e })
		})
	}
	// Different group structures, same length → same trace.
	a := run([]uint64{0, 0, 0, 1, 2, 2})
	b := run([]uint64{0, 1, 2, 3, 4, 5})
	if !a.Trace.Equal(b.Trace) {
		t.Fatal("propagation trace depends on group structure")
	}
}

func TestAggregateSuffixSum(t *testing.T) {
	raw := buildGrouped([][]uint64{{1, 2, 3}, {10, 20}})
	s := mem.NewSpace()
	a := mem.FromSlice(s, raw)
	got := make([]uint64, len(raw))
	AggregateSuffix(forkjoin.Serial(), s, a,
		func(e Elem) uint64 { return e.Key },
		func(e Elem) uint64 { return e.Val },
		func(x, y uint64) uint64 { return x + y },
		func(e Elem, i int, agg uint64) Elem {
			got[i] = agg
			return e
		})
	want := []uint64{6, 5, 3, 30, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAggregateSuffixRandomVsRef(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%50) + 1
		src := prng.New(seed)
		raw := make([]Elem, n)
		g := uint64(0)
		for i := range raw {
			if src.Uint64n(3) == 0 {
				g++
			}
			raw[i] = Elem{Key: g, Val: src.Uint64n(100), Kind: Real}
		}
		// Reference: suffix sums within group.
		want := make([]uint64, n)
		for i := 0; i < n; i++ {
			sum := uint64(0)
			for j := i; j < n && raw[j].Key == raw[i].Key; j++ {
				sum += raw[j].Val
			}
			want[i] = sum
		}
		s := mem.NewSpace()
		a := mem.FromSlice(s, raw)
		ok := true
		AggregateSuffix(forkjoin.Serial(), s, a,
			func(e Elem) uint64 { return e.Key },
			func(e Elem) uint64 { return e.Val },
			func(x, y uint64) uint64 { return x + y },
			func(e Elem, i int, agg uint64) Elem {
				if agg != want[i] {
					ok = false
				}
				return e
			})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionNetworkSorts(t *testing.T) {
	src := prng.New(4)
	for _, n := range []int{1, 2, 5, 16, 33} {
		raw := make([]Elem, n)
		for i := range raw {
			raw[i] = Elem{Key: src.Uint64n(50), Val: uint64(i), Kind: Real}
		}
		s := mem.NewSpace()
		a := mem.FromSlice(s, raw)
		SelectionNetwork{}.Sort(forkjoin.Serial(), s, a, 0, n, func(e Elem) uint64 { return e.Key })
		for i := 1; i < n; i++ {
			if a.Data()[i-1].Key > a.Data()[i].Key {
				t.Fatalf("n=%d not sorted at %d", n, i)
			}
		}
	}
}

func TestSelectionNetworkSubrange(t *testing.T) {
	s := mem.NewSpace()
	raw := []Elem{{Key: 9}, {Key: 3}, {Key: 2}, {Key: 1}, {Key: 7}}
	a := mem.FromSlice(s, raw)
	SelectionNetwork{}.Sort(forkjoin.Serial(), s, a, 1, 3, func(e Elem) uint64 { return e.Key })
	keys := []uint64{9, 1, 2, 3, 7}
	for i, k := range keys {
		if a.Data()[i].Key != k {
			t.Fatalf("subrange sort wrong: %+v", a.Data())
		}
	}
}

func binPlaceRef(in []Elem, beta, binZ int, groupOf func(Elem) uint64) [][]uint64 {
	bins := make([][]uint64, beta)
	for _, e := range in {
		if e.Kind == Real {
			g := int(groupOf(e))
			if len(bins[g]) < binZ {
				bins[g] = append(bins[g], e.Val)
			}
		}
	}
	return bins
}

func TestBinPlaceBasic(t *testing.T) {
	const beta, binZ = 4, 4
	groupOf := func(e Elem) uint64 { return e.Key }
	in := []Elem{
		{Key: 2, Val: 100, Kind: Real},
		{Key: 0, Val: 101, Kind: Real},
		{Key: 2, Val: 102, Kind: Real},
		{Key: 3, Val: 103, Kind: Real},
		{},
		{},
		{Key: 0, Val: 104, Kind: Real},
		{},
	}
	s := mem.NewSpace()
	a := mem.FromSlice(s, in)
	out := mem.Alloc[Elem](s, beta*binZ)
	lost := BinPlace(forkjoin.Serial(), s, a, out, beta, binZ, groupOf, SelectionNetwork{})
	if lost != 0 {
		t.Fatalf("lost %d elements", lost)
	}
	want := binPlaceRef(in, beta, binZ, groupOf)
	for g := 0; g < beta; g++ {
		var got []uint64
		realsEnded := false
		for k := 0; k < binZ; k++ {
			e := out.Data()[g*binZ+k]
			if e.Kind == Real {
				if groupOf(e) != uint64(g) {
					t.Fatalf("bin %d contains element of group %d", g, groupOf(e))
				}
				if realsEnded {
					t.Fatalf("bin %d has a real after a filler", g)
				}
				got = append(got, e.Val)
			} else {
				realsEnded = true
			}
			if e.Kind == Temp {
				t.Fatal("temp leaked into output")
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		w := append([]uint64(nil), want[g]...)
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
		if len(got) != len(w) {
			t.Fatalf("bin %d has %d reals, want %d", g, len(got), len(w))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("bin %d contents %v, want %v", g, got, w)
			}
		}
	}
}

func TestBinPlaceOverflowCounted(t *testing.T) {
	const beta, binZ = 2, 2
	groupOf := func(e Elem) uint64 { return e.Key }
	in := make([]Elem, 4)
	for i := range in {
		in[i] = Elem{Key: 0, Val: uint64(i), Kind: Real} // all to bin 0, capacity 2
	}
	s := mem.NewSpace()
	a := mem.FromSlice(s, in)
	out := mem.Alloc[Elem](s, beta*binZ)
	lost := BinPlace(forkjoin.Serial(), s, a, out, beta, binZ, groupOf, SelectionNetwork{})
	if lost != 2 {
		t.Fatalf("lost = %d, want 2", lost)
	}
}

func TestBinPlaceTraceOblivious(t *testing.T) {
	const beta, binZ = 4, 4
	groupOf := func(e Elem) uint64 { return e.Key }
	run := func(keys []uint64) *forkjoin.Metrics {
		in := make([]Elem, len(keys))
		for i, k := range keys {
			in[i] = Elem{Key: k, Val: uint64(i), Kind: Real}
		}
		s := mem.NewSpace()
		a := mem.FromSlice(s, in)
		out := mem.Alloc[Elem](s, beta*binZ)
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			BinPlace(c, s, a, out, beta, binZ, groupOf, SelectionNetwork{})
		})
	}
	// Very different bin assignments, same input length → identical trace.
	a := run([]uint64{0, 0, 0, 0, 1, 1, 2, 3})
	b := run([]uint64{3, 2, 1, 0, 3, 2, 1, 0})
	if !a.Trace.Equal(b.Trace) {
		t.Fatal("bin placement trace depends on bin choices")
	}
}

func TestSendReceiveBasic(t *testing.T) {
	s := mem.NewSpace()
	sources := mem.FromSlice(s, []Elem{
		{Key: 10, Val: 100, Kind: Real},
		{Key: 20, Val: 200, Kind: Real},
		{Key: 30, Val: 300, Kind: Real},
	})
	dests := mem.FromSlice(s, []Elem{
		{Key: 20, Kind: Real},
		{Key: 99, Kind: Real}, // not found
		{Key: 10, Kind: Real},
		{Key: 10, Kind: Real}, // duplicate receivers OK
	})
	out := SendReceive(forkjoin.Serial(), s, sources, dests, SelectionNetwork{})
	if out.Len() != 4 {
		t.Fatalf("out len = %d", out.Len())
	}
	d := out.Data()
	if d[0].Kind != Real || d[0].Val != 200 {
		t.Fatalf("dest 0 = %+v", d[0])
	}
	if d[1].Kind != Filler {
		t.Fatalf("dest 1 should be ⊥, got %+v", d[1])
	}
	if d[2].Kind != Real || d[2].Val != 100 || d[3].Kind != Real || d[3].Val != 100 {
		t.Fatalf("dests 2,3 = %+v %+v", d[2], d[3])
	}
	for j, e := range d {
		if e.Aux != uint64(j) {
			t.Fatalf("dest %d out of order (Aux=%d)", j, e.Aux)
		}
	}
}

func TestSendReceiveRandomVsMap(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		ns := int(src.Uint64n(20)) + 1
		nd := int(src.Uint64n(20)) + 1
		ref := map[uint64]uint64{}
		srcElems := make([]Elem, 0, ns)
		for len(ref) < ns {
			k := src.Uint64n(40)
			if _, dup := ref[k]; dup {
				continue
			}
			v := src.Uint64()
			ref[k] = v
			srcElems = append(srcElems, Elem{Key: k, Val: v, Kind: Real})
		}
		dstElems := make([]Elem, nd)
		for i := range dstElems {
			dstElems[i] = Elem{Key: src.Uint64n(60), Kind: Real}
		}
		s := mem.NewSpace()
		sa := mem.FromSlice(s, srcElems)
		da := mem.FromSlice(s, dstElems)
		out := SendReceive(forkjoin.Serial(), s, sa, da, SelectionNetwork{})
		for j, e := range out.Data() {
			want, found := ref[dstElems[j].Key]
			if found != (e.Kind == Real) {
				return false
			}
			if found && e.Val != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSendReceiveTraceOblivious(t *testing.T) {
	run := func(sk, dk []uint64) *forkjoin.Metrics {
		s := mem.NewSpace()
		srcs := make([]Elem, len(sk))
		for i, k := range sk {
			srcs[i] = Elem{Key: k, Val: k + 1, Kind: Real}
		}
		dsts := make([]Elem, len(dk))
		for i, k := range dk {
			dsts[i] = Elem{Key: k, Kind: Real}
		}
		sa := mem.FromSlice(s, srcs)
		da := mem.FromSlice(s, dsts)
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			SendReceive(c, s, sa, da, SelectionNetwork{})
		})
	}
	a := run([]uint64{1, 2, 3, 4}, []uint64{1, 1, 1})
	b := run([]uint64{9, 8, 7, 6}, []uint64{5, 4, 9})
	if !a.Trace.Equal(b.Trace) {
		t.Fatal("send-receive trace depends on keys")
	}
}

func TestSendReceiveParallelMatchesSerial(t *testing.T) {
	srcElems := make([]Elem, 64)
	for i := range srcElems {
		srcElems[i] = Elem{Key: uint64(i), Val: uint64(i * 7), Kind: Real}
	}
	dstElems := make([]Elem, 100)
	for i := range dstElems {
		dstElems[i] = Elem{Key: uint64(i % 80), Kind: Real}
	}
	s := mem.NewSpace()
	var got []Elem
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		sa := mem.FromSlice(s, srcElems)
		da := mem.FromSlice(s, dstElems)
		out := SendReceive(c, s, sa, da, SelectionNetwork{})
		got = append([]Elem(nil), out.Data()...)
	})
	for j, e := range got {
		k := uint64(j % 80)
		if k < 64 {
			if e.Kind != Real || e.Val != k*7 {
				t.Fatalf("dest %d = %+v", j, e)
			}
		} else if e.Kind != Filler {
			t.Fatalf("dest %d should be ⊥", j)
		}
	}
}
