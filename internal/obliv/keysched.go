package obliv

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// This file implements the key-schedule fast path for the sorting-network
// primitives. A sort's comparator schedule is data-independent (the core
// property of the paper's §E.1 bitonic construction and of Batcher's
// networks), so the key of every element can be materialized once, up
// front, into a parallel word array — one instrumented linear pass — and
// the network then compares cached uint64 words instead of re-deriving the
// key from the 48-byte element twice per comparator. The cached keys move
// through the network in lockstep with the elements, so the element
// permutation is identical to the closure-keyed network's and the access
// pattern remains a function of n only.

// BuildKeySchedule materializes key(e) for a[lo:lo+n) into ks[lo:lo+n) in
// one fixed elementwise pass (the "keysched" pass). ks is indexed
// identically to a: ks[i] caches the key of a[i].
func BuildKeySchedule(c *forkjoin.Ctx, a *mem.Array[Elem], ks *mem.Array[uint64], lo, n int, key func(Elem) uint64) {
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, from, to int) {
		for i := from; i < to; i++ {
			e := a.Get(c, lo+i)
			c.Op(1) // the key derivation
			ks.Set(c, lo+i, key(e))
		}
	})
}

// CompareExchangeCached is the cached-key comparator: it orders positions i
// and j of a (ascending by cached key if asc) using the key words ks[i],
// ks[j], keeping ks in lockstep with a. All four positions are always read
// and always rewritten, so the access pattern is independent of the
// comparison outcome, exactly as in CompareExchange.
func CompareExchangeCached(c *forkjoin.Ctx, a *mem.Array[Elem], ks *mem.Array[uint64], i, j int, asc bool) {
	x := a.Get(c, i)
	y := a.Get(c, j)
	kx := ks.Get(c, i)
	ky := ks.Get(c, j)
	c.Op(1) // the comparison
	if (kx > ky) == asc {
		x, y = y, x
		kx, ky = ky, kx
	}
	a.Set(c, i, x)
	a.Set(c, j, y)
	ks.Set(c, i, kx)
	ks.Set(c, j, ky)
}

// ScheduledSorter is implemented by sorters that can run against a
// precomputed key schedule (the keysched fast path). SortScheduled sorts
// a[lo:lo+n) ascending by the cached keys ks[lo:lo+n) (ks is indexed
// identically to a), keeping ks in lockstep. scr and kscr are
// caller-provided scratch of length >= n that must not alias a or ks;
// sorters that sort strictly in place ignore them (nil is then permitted).
//
// Callers that hold a multi-pass scratch arena use this interface to avoid
// both the per-comparator key recomputation and the per-sort scratch
// allocation of Sorter.Sort.
type ScheduledSorter interface {
	Sorter
	SortScheduled(c *forkjoin.Ctx, a *mem.Array[Elem], ks *mem.Array[uint64], scr *mem.Array[Elem], kscr *mem.Array[uint64], lo, n int)
}
