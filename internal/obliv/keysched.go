package obliv

import (
	"fmt"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// This file implements the key-schedule fast path for the sorting-network
// primitives. A sort's comparator schedule is data-independent (the core
// property of the paper's §E.1 bitonic construction and of Batcher's
// networks), so the key of every element can be materialized once, up
// front, into a parallel word array — one instrumented linear pass — and
// the network then compares cached uint64 words instead of re-deriving the
// key from the element twice per comparator. The cached keys move through
// the network in lockstep with the elements, so the element permutation is
// identical to the closure-keyed network's and the access pattern remains a
// function of n only.
//
// Schedules are width-parameterized: a KeySchedule caches W words per
// element and the cached comparator orders elements lexicographically by
// their word vectors (word 0 most significant). Nothing in the networks'
// comparator schedules depends on W — widening the key only widens each
// comparator's fixed read/write set — so a width-W sort is exactly as
// oblivious as a width-1 sort. Width 1 runs the same single-word code the
// schedule path has always run.

// MaxScheduleWidth bounds the words per cached key (the comparator buffers
// key vectors on the stack). Relational schedules need at most one word
// per key column, far below this.
const MaxScheduleWidth = 8

// TieBreak selects the order of elements whose cached key vectors are
// equal. The choice is part of the sort's public schedule, not of the
// data: either rule reads and writes exactly the same positions.
type TieBreak uint8

const (
	// TieNetwork reproduces the closure comparator's semantics: equal
	// vectors swap on descending comparators and hold on ascending ones.
	// The resulting permutation is deterministic (a function of the input
	// ordering) but not stable.
	TieNetwork TieBreak = iota
	// TiePos breaks key-vector ties by the elements' (Kind, Tag, Aux)
	// triple — fillers after real elements, then the side tag, then the
	// original position — read from the element structs the comparator
	// already holds in registers. Relational key sorts use it to get
	// stable first-occurrence order without paying a dedicated position
	// plane of memory traffic: the logical schedule is (key columns...,
	// position), but the position word rides inside the elements.
	TiePos
)

// KeySchedule is a width-W cached key schedule over one backing word array
// in strided (plane-major) layout: word w of element i lives at
// backing[w*n + i], exposed as per-word plane views indexed identically to
// the element array. Plane 0 is the most significant word of the
// lexicographic key; Tie resolves full-vector ties.
type KeySchedule struct {
	planes []*mem.Array[uint64]
	// Tie is the tie-break rule of this schedule (default TieNetwork).
	Tie TieBreak
}

// NewKeySchedule carves a width-w schedule for n elements out of backing
// (which must hold at least n*w words). The backing array may be longer —
// arenas reuse one maximal array across passes of different widths.
func NewKeySchedule(backing *mem.Array[uint64], n, w int) *KeySchedule {
	if w < 1 || w > MaxScheduleWidth {
		panic(fmt.Sprintf("obliv: key-schedule width %d out of range [1, %d]", w, MaxScheduleWidth))
	}
	if backing.Len() < n*w {
		panic("obliv: key-schedule backing too short")
	}
	ks := &KeySchedule{planes: make([]*mem.Array[uint64], w)}
	for p := 0; p < w; p++ {
		ks.planes[p] = backing.View(p*n, n)
	}
	return ks
}

// AllocKeySchedule allocates a fresh width-w schedule for n elements.
func AllocKeySchedule(sp *mem.Space, n, w int) *KeySchedule {
	return NewKeySchedule(mem.Alloc[uint64](sp, n*w), n, w)
}

// Width returns the number of words per cached key.
func (ks *KeySchedule) Width() int { return len(ks.planes) }

// Len returns the number of elements the schedule covers.
func (ks *KeySchedule) Len() int { return ks.planes[0].Len() }

// Plane returns the word-w plane (indexed identically to the element
// array).
func (ks *KeySchedule) Plane(w int) *mem.Array[uint64] { return ks.planes[w] }

// View returns the schedule restricted to elements [lo, lo+n), aliasing the
// parent exactly like mem.Array.View and keeping its tie-break rule.
func (ks *KeySchedule) View(lo, n int) *KeySchedule {
	v := &KeySchedule{planes: make([]*mem.Array[uint64], len(ks.planes)), Tie: ks.Tie}
	for p := range ks.planes {
		v.planes[p] = ks.planes[p].View(lo, n)
	}
	return v
}

// BuildKeySchedule materializes the key words of a[lo:lo+n) into
// ks[lo:lo+n) in one fixed elementwise pass (the "keysched" pass). key must
// fill out[0:ks.Width()) with the element's lexicographic key words (word 0
// most significant); it is handed a reusable buffer and must not retain it.
// ks is indexed identically to a: ks word w of position i caches word w of
// the key of a[i].
func BuildKeySchedule(c *forkjoin.Ctx, a *mem.Array[Elem], ks *KeySchedule, lo, n int, key func(e Elem, out []uint64)) {
	w := ks.Width()
	forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, from, to int) {
		var buf [MaxScheduleWidth]uint64
		out := buf[:w]
		for i := from; i < to; i++ {
			e := a.Get(c, lo+i)
			c.Op(1) // the key derivation
			key(e, out)
			for p := 0; p < w; p++ {
				ks.planes[p].Set(c, lo+i, out[p])
			}
		}
	})
}

// CompareExchangeCached is the width-1 cached-key comparator: it orders
// positions i and j of a (ascending by cached key if asc) using the key
// words ks[i], ks[j], keeping ks in lockstep with a. All four positions are
// always read and always rewritten, so the access pattern is independent of
// the comparison outcome, exactly as in CompareExchange.
func CompareExchangeCached(c *forkjoin.Ctx, a *mem.Array[Elem], ks *mem.Array[uint64], i, j int, asc bool) {
	x := a.Get(c, i)
	y := a.Get(c, j)
	kx := ks.Get(c, i)
	ky := ks.Get(c, j)
	c.Op(1) // the comparison
	if (kx > ky) == asc {
		x, y = y, x
		kx, ky = ky, kx
	}
	a.Set(c, i, x)
	a.Set(c, j, y)
	ks.Set(c, i, kx)
	ks.Set(c, j, ky)
}

// PosAfter reports whether x sorts strictly after y under the TiePos
// tie-break: fillers after real elements, then by side tag, then by
// original position. Pure register arithmetic on values the comparator
// already holds. It is exported for sort backends implemented outside this
// package (the shuffle-then-sort composition applies the same rule in its
// insecure comparison phase so both backends realize the same order).
func PosAfter(x, y Elem) bool {
	xf, yf := x.Kind != Real, y.Kind != Real
	if xf != yf {
		return xf
	}
	if x.Tag != y.Tag {
		return x.Tag > y.Tag
	}
	return x.Aux > y.Aux
}

// CompareExchangeCachedW is the width-parameterized cached-key comparator:
// it orders positions i and j of a by the lexicographic order of their
// cached key vectors (ascending if asc), keeping every plane of ks in
// lockstep with a. All words of both positions are read and rewritten
// unconditionally, so the access pattern is a function of (i, j, width)
// only — the tie-break rule reads no additional memory. Under TieNetwork,
// equal key vectors behave exactly like equal single words (the pair swaps
// iff the comparator is descending, matching CompareExchangeCached); under
// TiePos they order by the elements' (Kind, Tag, Aux). At width 1 with
// TieNetwork it runs CompareExchangeCached itself — the schedule fast path
// costs wide keys nothing when keys are narrow.
func CompareExchangeCachedW(c *forkjoin.Ctx, a *mem.Array[Elem], ks *KeySchedule, i, j int, asc bool) {
	if len(ks.planes) == 1 {
		if ks.Tie == TieNetwork {
			CompareExchangeCached(c, a, ks.planes[0], i, j, asc)
			return
		}
		// Width-1 TiePos: one cached word per side, tie in registers.
		x := a.Get(c, i)
		y := a.Get(c, j)
		p0 := ks.planes[0]
		kx := p0.Get(c, i)
		ky := p0.Get(c, j)
		c.Op(1) // the comparison
		gt := kx > ky
		if kx == ky {
			gt = PosAfter(x, y)
		}
		if gt == asc {
			a.Set(c, i, y)
			a.Set(c, j, x)
			p0.Set(c, i, ky)
			p0.Set(c, j, kx)
		} else {
			a.Set(c, i, x)
			a.Set(c, j, y)
			p0.Set(c, i, kx)
			p0.Set(c, j, ky)
		}
		return
	}
	if len(ks.planes) == 2 {
		// Width-2 fast path: scalar registers, no stack vectors.
		x := a.Get(c, i)
		y := a.Get(c, j)
		p0, p1 := ks.planes[0], ks.planes[1]
		kx0, kx1 := p0.Get(c, i), p1.Get(c, i)
		ky0, ky1 := p0.Get(c, j), p1.Get(c, j)
		c.Op(1) // the comparison
		gt := kx0 > ky0
		if kx0 == ky0 {
			gt = kx1 > ky1
			if kx1 == ky1 && ks.Tie == TiePos {
				gt = PosAfter(x, y)
			}
		}
		if gt == asc {
			a.Set(c, i, y)
			a.Set(c, j, x)
			p0.Set(c, i, ky0)
			p0.Set(c, j, kx0)
			p1.Set(c, i, ky1)
			p1.Set(c, j, kx1)
		} else {
			a.Set(c, i, x)
			a.Set(c, j, y)
			p0.Set(c, i, kx0)
			p0.Set(c, j, ky0)
			p1.Set(c, i, kx1)
			p1.Set(c, j, ky1)
		}
		return
	}
	w := len(ks.planes)
	x := a.Get(c, i)
	y := a.Get(c, j)
	var kx, ky [MaxScheduleWidth]uint64
	for p := 0; p < w; p++ {
		kx[p] = ks.planes[p].Get(c, i)
		ky[p] = ks.planes[p].Get(c, j)
	}
	c.Op(1) // the comparison
	gt := false
	tied := true
	for p := 0; p < w; p++ {
		if kx[p] != ky[p] {
			gt = kx[p] > ky[p]
			tied = false
			break
		}
	}
	if tied && ks.Tie == TiePos {
		gt = PosAfter(x, y)
	}
	if gt == asc {
		x, y = y, x
		kx, ky = ky, kx
	}
	a.Set(c, i, x)
	a.Set(c, j, y)
	for p := 0; p < w; p++ {
		ks.planes[p].Set(c, i, kx[p])
		ks.planes[p].Set(c, j, ky[p])
	}
}

// ScheduledSorter is implemented by sorters that can run against a
// precomputed key schedule (the keysched fast path). SortScheduled sorts
// a[lo:lo+n) ascending by the cached lexicographic keys ks[lo:lo+n) (ks is
// indexed identically to a), keeping every plane of ks in lockstep. sp is
// the address space backends allocate working memory from (the in-place
// networks never touch it; the shuffle-then-sort backend draws its routing
// buffers and tie plane from it). scr and kscr are caller-provided scratch
// — scr of length >= n, kscr of ks's width covering >= n elements — that
// must not alias a or ks; sorters that sort strictly in place ignore them
// (nil is then permitted).
//
// Callers that hold a multi-pass scratch arena use this interface to avoid
// both the per-comparator key recomputation and the per-sort scratch
// allocation of Sorter.Sort.
type ScheduledSorter interface {
	Sorter
	SortScheduled(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[Elem], ks *KeySchedule, scr *mem.Array[Elem], kscr *KeySchedule, lo, n int)
}

// SortScheduled implements ScheduledSorter for the selection network: all
// pairs through the cached comparator, any n, space and scratch ignored. It
// exists so the tiny reference sorter remains usable wherever the
// relational layer now requires schedule support.
func (SelectionNetwork) SortScheduled(c *forkjoin.Ctx, _ *mem.Space, a *mem.Array[Elem], ks *KeySchedule, _ *mem.Array[Elem], _ *KeySchedule, lo, n int) {
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			CompareExchangeCachedW(c, a, ks, lo+i, lo+j, true)
		}
	}
}

// SortKeyed sorts a[0:n) ascending by the single-word closure key with the
// deterministic TiePos tie-break, through the sorter's key-schedule path:
// the key words are materialized once into a fresh width-1 schedule (one
// fixed elementwise pass) and the backend orders the cached words, so every
// caller inherits backend selection and the cached-key comparators. TiePos
// makes the output permutation a deterministic function of the input
// regardless of backend — key ties resolve by the elements' (Kind, Tag,
// Aux) triple, never by network topology. This is the migration shim for
// call sites without a multi-pass scratch arena (the graph and PRAM bulk
// steps); relational code uses the arena-backed relops sortSched instead.
func SortKeyed(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[Elem], n int, key func(Elem) uint64, srt ScheduledSorter) {
	if n <= 1 {
		return
	}
	ks := AllocKeySchedule(sp, n, 1)
	ks.Tie = TiePos
	kscr := AllocKeySchedule(sp, n, 1)
	kscr.Tie = TiePos
	scr := mem.Alloc[Elem](sp, n)
	BuildKeySchedule(c, a, ks, 0, n, func(e Elem, out []uint64) { out[0] = key(e) })
	srt.SortScheduled(c, sp, a, ks, scr, kscr, 0, n)
}
