package obliv

import (
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv/oblivtest"
	"oblivmc/internal/prng"
)

// distSpec is one source of a Distribute test case: a value and the width
// of its destination span (0 = non-participant).
type distSpec struct {
	val  uint64
	span uint64
}

// runDistribute loads specs (participants at prefix-sum offsets), runs
// Distribute into outLen slots, and returns the applied slot elements
// indexed by slot plus the passed-through non-participants.
func runDistribute(c *forkjoin.Ctx, sp *mem.Space, specs []distSpec, outLen int) (slots []Elem, passed []Elem) {
	n := len(specs)
	sources := mem.Alloc[Elem](sp, n)
	dests := mem.Alloc[uint64](sp, n)
	off := uint64(0)
	for i, s := range specs {
		sources.Data()[i] = Elem{Key: uint64(i), Val: s.val, Kind: Real}
		if s.span == 0 {
			dests.Data()[i] = InfKey
			continue
		}
		dests.Data()[i] = off
		off += s.span
	}
	w := Distribute(c, sp, sources, dests, outLen, func(slot, d uint64, src Elem, ok bool) Elem {
		if !ok {
			return Elem{Key: slot, Val: InfKey, Kind: Real, Tag: 2}
		}
		return Elem{Key: slot, Val: src.Val, Aux: d, Lbl: src.Key, Kind: Real, Tag: 2}
	}, SelectionNetwork{})
	slots = make([]Elem, outLen)
	for _, e := range w.Data() {
		if e.Kind != Real {
			continue
		}
		if e.Tag == 2 {
			slots[e.Key] = e
		} else {
			passed = append(passed, e)
		}
	}
	return slots, passed
}

func TestDistributeSpans(t *testing.T) {
	specs := []distSpec{
		{val: 10, span: 3}, // slots 0-2
		{val: 20, span: 0}, // non-participant, passed through
		{val: 30, span: 1}, // slot 3
		{val: 40, span: 2}, // slots 4-5
		{val: 50, span: 0}, // non-participant
	}
	const outLen = 9 // slots 6-8 beyond the last span: governed but out of span
	sp := mem.NewSpace()
	c := forkjoin.Serial()
	slots, passed := runDistribute(c, sp, specs, outLen)

	wantVal := []uint64{10, 10, 10, 30, 40, 40, 40, 40, 40}
	wantD := []uint64{0, 0, 0, 3, 4, 4, 4, 4, 4}
	for s := 0; s < outLen; s++ {
		e := slots[s]
		if e.Kind != Real {
			t.Fatalf("slot %d missing from the result", s)
		}
		if e.Val != wantVal[s] || e.Aux != wantD[s] {
			t.Fatalf("slot %d = (val %d, d %d), want (val %d, d %d)", s, e.Val, e.Aux, wantVal[s], wantD[s])
		}
	}
	if len(passed) != 2 || passed[0].Val+passed[1].Val != 70 {
		t.Fatalf("non-participants not passed through: %v", passed)
	}
}

func TestDistributeNoParticipants(t *testing.T) {
	sp := mem.NewSpace()
	slots, passed := runDistribute(forkjoin.Serial(), sp, []distSpec{{val: 7, span: 0}}, 4)
	for s, e := range slots {
		if e.Kind != Real || e.Val != InfKey {
			t.Fatalf("ungoverned slot %d = %v, want the ok=false marker", s, e)
		}
	}
	if len(passed) != 1 || passed[0].Val != 7 {
		t.Fatalf("non-participant not passed through: %v", passed)
	}
}

func TestDistributeRandomReference(t *testing.T) {
	src := prng.New(771)
	for trial := 0; trial < 30; trial++ {
		n := 1 + src.Intn(40)
		specs := make([]distSpec, n)
		total := uint64(0)
		for i := range specs {
			specs[i] = distSpec{val: src.Uint64n(1 << 30), span: src.Uint64n(4)}
			total += specs[i].span
		}
		outLen := 1 + src.Intn(int(total)+8)
		sp := mem.NewSpace()
		slots, _ := runDistribute(forkjoin.Serial(), sp, specs, outLen)

		// Reference: slot s is governed by the participant with the largest
		// prefix-sum offset <= s (or by nobody: the ok=false marker).
		want := make([]uint64, outLen)
		for s := range want {
			want[s] = InfKey
		}
		off := uint64(0)
		for _, spec := range specs {
			if spec.span == 0 {
				continue
			}
			if off < uint64(outLen) {
				for s := off; s < uint64(outLen); s++ {
					want[s] = spec.val
				}
			}
			off += spec.span
		}

		for s := 0; s < outLen; s++ {
			if slots[s].Val != want[s] {
				t.Fatalf("trial %d: slot %d governed by val %d, want %d (specs %v, outLen %d)",
					trial, s, slots[s].Val, want[s], specs, outLen)
			}
		}
	}
}

// TestDistributeObliviousTrace: same shape (source count, outLen), wildly
// different spans and values, identical views — and the sanity inverse for
// a different outLen.
func TestDistributeObliviousTrace(t *testing.T) {
	mk := func(specs []distSpec, outLen int) oblivtest.Body {
		return func(c *forkjoin.Ctx, sp *mem.Space) {
			runDistribute(c, sp, specs, outLen)
		}
	}
	a := []distSpec{{1, 9}, {2, 0}, {3, 0}, {4, 0}}
	b := []distSpec{{5, 1}, {6, 1}, {7, 1}, {8, 1}}
	d := []distSpec{{0, 0}, {0, 0}, {0, 0}, {0, 0}}
	oblivtest.FingerprintEqual(t, "Distribute", mk(a, 9), mk(b, 9), mk(d, 9))
	oblivtest.Different(t, "Distribute outLen", mk(a, 9), mk(a, 16))
}

// runDistributeOrdered is runDistribute for the merge-based variant: the
// same specs, but the destination array carries the raw running offsets
// (non-decreasing, as the contract requires) and participation rides the
// span count stashed in Lbl instead of an InfKey mask.
func runDistributeOrdered(c *forkjoin.Ctx, sp *mem.Space, specs []distSpec, outLen int) (slots []Elem, passed []Elem) {
	n := len(specs)
	sources := mem.Alloc[Elem](sp, n)
	dests := mem.Alloc[uint64](sp, n)
	off := uint64(0)
	for i, s := range specs {
		sources.Data()[i] = Elem{Key: uint64(i), Val: s.val, Lbl: s.span, Kind: Real}
		dests.Data()[i] = off
		off += s.span
	}
	w := DistributeOrdered(c, sp, sources, dests, outLen,
		func(e Elem) bool { return e.Lbl > 0 },
		func(slot, d uint64, src Elem, ok bool) Elem {
			if !ok {
				return Elem{Key: slot, Val: InfKey, Kind: Real, Tag: 2}
			}
			return Elem{Key: slot, Val: src.Val, Aux: d, Lbl: src.Key, Kind: Real, Tag: 2}
		})
	slots = make([]Elem, outLen)
	for _, e := range w.Data() {
		if e.Kind != Real {
			continue
		}
		if e.Tag == 2 {
			slots[e.Key] = e
		} else {
			passed = append(passed, e)
		}
	}
	return slots, passed
}

// TestDistributeOrderedMatchesDistribute: on prefix-sum destinations — the
// only ones the ordered variant accepts — the merge-based expansion must
// agree with the sort-based Distribute slot for slot, including spans
// running past outLen and participants demoted beyond it.
func TestDistributeOrderedMatchesDistribute(t *testing.T) {
	src := prng.New(331)
	for trial := 0; trial < 40; trial++ {
		n := 1 + src.Intn(40)
		specs := make([]distSpec, n)
		total := uint64(0)
		for i := range specs {
			specs[i] = distSpec{val: 1 + src.Uint64n(1<<30), span: src.Uint64n(4)}
			total += specs[i].span
		}
		outLen := 1 + src.Intn(int(total)+8)

		spA, spB := mem.NewSpace(), mem.NewSpace()
		refSlots, refPassed := runDistribute(forkjoin.Serial(), spA, specs, outLen)
		gotSlots, gotPassed := runDistributeOrdered(forkjoin.Serial(), spB, specs, outLen)
		for s := 0; s < outLen; s++ {
			if gotSlots[s].Val != refSlots[s].Val || gotSlots[s].Aux != refSlots[s].Aux {
				t.Fatalf("trial %d: slot %d = (val %d, d %d), Distribute says (val %d, d %d) (specs %v, outLen %d)",
					trial, s, gotSlots[s].Val, gotSlots[s].Aux, refSlots[s].Val, refSlots[s].Aux, specs, outLen)
			}
		}
		if len(gotPassed) != len(refPassed) {
			t.Fatalf("trial %d: %d passed-through sources, Distribute says %d", trial, len(gotPassed), len(refPassed))
		}
		sum := func(es []Elem) (s uint64) {
			for _, e := range es {
				s += e.Val
			}
			return s
		}
		if sum(gotPassed) != sum(refPassed) {
			t.Fatalf("trial %d: passed-through %v, Distribute says %v", trial, gotPassed, refPassed)
		}
	}
}

func TestDistributeOrderedNoParticipants(t *testing.T) {
	sp := mem.NewSpace()
	slots, passed := runDistributeOrdered(forkjoin.Serial(), sp, []distSpec{{val: 7, span: 0}}, 4)
	for s, e := range slots {
		if e.Kind != Real || e.Val != InfKey {
			t.Fatalf("ungoverned slot %d = %v, want the ok=false marker", s, e)
		}
	}
	if len(passed) != 1 || passed[0].Val != 7 {
		t.Fatalf("non-participant not passed through: %v", passed)
	}
}

// TestDistributeOrderedObliviousTrace: the bitonic merge's comparator
// sequence is a function of the array length alone, so same-shape runs
// with different spans and values must have identical views, and a
// different outLen must not.
func TestDistributeOrderedObliviousTrace(t *testing.T) {
	mk := func(specs []distSpec, outLen int) oblivtest.Body {
		return func(c *forkjoin.Ctx, sp *mem.Space) {
			runDistributeOrdered(c, sp, specs, outLen)
		}
	}
	a := []distSpec{{1, 9}, {2, 0}, {3, 0}, {4, 0}}
	b := []distSpec{{5, 1}, {6, 1}, {7, 1}, {8, 1}}
	d := []distSpec{{0, 0}, {0, 0}, {0, 0}, {0, 0}}
	oblivtest.FingerprintEqual(t, "DistributeOrdered", mk(a, 9), mk(b, 9), mk(d, 9))
	oblivtest.Different(t, "DistributeOrdered outLen", mk(a, 9), mk(a, 16))
}
