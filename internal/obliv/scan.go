package obliv

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// ScanOp computes, in place, the prefix combine of a under op with identity
// id. If inclusive, a[i] becomes op(a[0], ..., a[i]); otherwise a[i]
// becomes op(id, a[0], ..., a[i-1]). op must be associative.
//
// The implementation is the classic two-pass (up-sweep / down-sweep)
// divide-and-conquer with the partial-sum tree stored in *pre-order*
// layout, so each recursive call touches a contiguous region: the caching
// cost is the scan bound O(n/B), the work is O(n), and the span is O(log n)
// — the costs the paper assumes for all-prefix-sums and segmented scans
// (§F, [Ja´J92], [CR12a]). The access pattern depends only on n.
func ScanOp[T any](c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[T], op func(T, T) T, id T, inclusive bool) {
	n := a.Len()
	if n == 0 {
		return
	}
	tree := mem.Alloc[T](sp, 2*n-1)
	// Cancellation checkpoints between the two sweeps: the sweep boundary
	// is a function of n alone, so an abort reveals only which public
	// sweep was running.
	c.Check("scan.sweep")
	scanUp(c, a, tree, 0, 0, n, op)
	c.Check("scan.sweep")
	scanDown(c, a, tree, 0, 0, n, id, op, inclusive)
}

// scanGrain is the subtree size below which the up/down sweeps stop
// forking outside metered mode and recurse serially instead. The sweeps
// used to fork all the way to single leaves — per-element task creation
// that made every segmented scan (GroupBy aggregation, Distribute's
// rightward propagation, the partition prefix sums) pay two closure
// allocations and a deque round-trip per array element; at 2^20-element
// relations that bookkeeping dominated the actual combine work and was the
// serial-equivalent tail of join_all. A subtree of scanGrain leaves is
// ~2·scanGrain memory touches per task — comfortably past the point where
// stealing pays — while a 2^20 scan still splits 2^11 ways. Metered runs
// keep the fully forked recursion: the measured span must remain the
// O(log n) critical path of the paper's all-prefix-sums bound, and the
// recorded trace (fork events included) must not move when grains are
// retuned.
const scanGrain = 1 << 9

// scanUp fills tree[pos] (pre-order root of [lo,hi)) with the combine of
// a[lo:hi) and returns nothing; subtree of k leaves occupies 2k-1 slots.
func scanUp[T any](c *forkjoin.Ctx, a *mem.Array[T], tree *mem.Array[T], pos, lo, hi int, op func(T, T) T) {
	if hi-lo == 1 {
		tree.Set(c, pos, a.Get(c, lo))
		return
	}
	if hi-lo <= scanGrain && !c.Metered() {
		scanUpSerial(c, a, tree, pos, lo, hi, op)
		return
	}
	mid := lo + (hi-lo)/2
	leftPos := pos + 1
	rightPos := pos + 2*(mid-lo)
	c.Fork(
		func(c *forkjoin.Ctx) { scanUp(c, a, tree, leftPos, lo, mid, op) },
		func(c *forkjoin.Ctx) { scanUp(c, a, tree, rightPos, mid, hi, op) },
	)
	l := tree.Get(c, leftPos)
	r := tree.Get(c, rightPos)
	c.Op(1)
	tree.Set(c, pos, op(l, r))
}

// scanUpSerial is scanUp without forks or fork closures: the identical
// pre-order tree fill (same slots, same combine order), recursed by plain
// calls. Only reached outside metered mode.
func scanUpSerial[T any](c *forkjoin.Ctx, a *mem.Array[T], tree *mem.Array[T], pos, lo, hi int, op func(T, T) T) {
	if hi-lo == 1 {
		tree.Set(c, pos, a.Get(c, lo))
		return
	}
	mid := lo + (hi-lo)/2
	leftPos := pos + 1
	rightPos := pos + 2*(mid-lo)
	scanUpSerial(c, a, tree, leftPos, lo, mid, op)
	scanUpSerial(c, a, tree, rightPos, mid, hi, op)
	l := tree.Get(c, leftPos)
	r := tree.Get(c, rightPos)
	tree.Set(c, pos, op(l, r))
}

func scanDown[T any](c *forkjoin.Ctx, a *mem.Array[T], tree *mem.Array[T], pos, lo, hi int, carry T, op func(T, T) T, inclusive bool) {
	if hi-lo == 1 {
		if inclusive {
			v := tree.Get(c, pos) // original a[lo]
			c.Op(1)
			a.Set(c, lo, op(carry, v))
		} else {
			a.Set(c, lo, carry)
		}
		return
	}
	if hi-lo <= scanGrain && !c.Metered() {
		scanDownSerial(c, a, tree, pos, lo, hi, carry, op, inclusive)
		return
	}
	mid := lo + (hi-lo)/2
	leftPos := pos + 1
	rightPos := pos + 2*(mid-lo)
	leftSum := tree.Get(c, leftPos)
	c.Op(1)
	rightCarry := op(carry, leftSum)
	c.Fork(
		func(c *forkjoin.Ctx) { scanDown(c, a, tree, leftPos, lo, mid, carry, op, inclusive) },
		func(c *forkjoin.Ctx) { scanDown(c, a, tree, rightPos, mid, hi, rightCarry, op, inclusive) },
	)
}

// scanDownSerial is scanDown without forks or fork closures; see
// scanUpSerial.
func scanDownSerial[T any](c *forkjoin.Ctx, a *mem.Array[T], tree *mem.Array[T], pos, lo, hi int, carry T, op func(T, T) T, inclusive bool) {
	if hi-lo == 1 {
		if inclusive {
			v := tree.Get(c, pos) // original a[lo]
			a.Set(c, lo, op(carry, v))
		} else {
			a.Set(c, lo, carry)
		}
		return
	}
	mid := lo + (hi-lo)/2
	leftPos := pos + 1
	rightPos := pos + 2*(mid-lo)
	leftSum := tree.Get(c, leftPos)
	rightCarry := op(carry, leftSum)
	scanDownSerial(c, a, tree, leftPos, lo, mid, carry, op, inclusive)
	scanDownSerial(c, a, tree, rightPos, mid, hi, rightCarry, op, inclusive)
}

// PrefixSumU64 computes the prefix sum of a in place.
func PrefixSumU64(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[uint64], inclusive bool) {
	ScanOp(c, sp, a, func(x, y uint64) uint64 { return x + y }, 0, inclusive)
}

// SumU64 returns the total of a without modifying it (an up-sweep only).
func SumU64(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[uint64]) uint64 {
	n := a.Len()
	if n == 0 {
		return 0
	}
	tree := mem.Alloc[uint64](sp, 2*n-1)
	c.Check("scan.sweep")
	scanUp(c, a, tree, 0, 0, n, func(x, y uint64) uint64 { return x + y })
	return tree.Get(c, 0)
}
