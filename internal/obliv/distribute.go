package obliv

import (
	"fmt"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// This file implements oblivious distribution — the expansion dual of the
// tight compaction at the heart of the relational operators. Where
// compaction sends marked elements to the front of an array, distribution
// spreads elements to *computed destination offsets* and propagates each
// one rightward across the gap to the next destination, which is exactly
// the duplication step a many-to-many join's oblivious expansion needs
// (each source's copy count is the width of its destination span). The
// construction is the [CS17]-style O(1)-oblivious-sorts recipe the paper's
// §C.1 bin placement uses: one data-independent sort, one prefix scan, and
// fixed elementwise passes, so the trace is a function of
// (len(sources), outLen) only.

// passGrain is the leaf size of the fixed elementwise passes and of each
// bitonic-merge comparator layer outside metered mode. The expansion path
// runs these passes over work relations of 2^21+ slots; at the old default
// grain of 64 the fork bookkeeping (two closure allocations and a deque
// round-trip per task) rivaled the loop bodies themselves and was the
// serial-equivalent tail that made extra workers a net loss. 2^10 elements
// per leaf is past the point where stealing pays while a 2^20 pass still
// splits 2^10 ways. Metered runs are pinned to grain 1 by forkjoin.grainFor,
// so the recorded trace (fork events included) never moves when this is
// retuned.
const passGrain = 1 << 10

// distVal is the carrier of Distribute's "latest participant wins" prefix
// scan: after the inclusive scan, position p holds the participating source
// with the largest destination at or before p.
type distVal struct {
	src Elem
	d   uint64
	has bool
}

// distOp is the associative combine: the later defined participant wins.
func distOp(x, y distVal) distVal {
	if y.has {
		return y
	}
	return distVal{src: x.src, d: x.d, has: x.has}
}

// Distribute realizes oblivious distribution with propagation. Source i of
// sources *participates* iff it is Real and dests[i] < outLen (dests is
// indexed identically to sources; callers disable a source by setting its
// destination to InfKey). Participating destinations must be strictly
// distinct — offsets produced by a prefix sum of positive spans are.
// Conceptually the participants are placed at their destinations in an
// output of outLen slots and then propagated rightward: slot s is governed
// by the participant with the largest destination d <= s.
//
// The returned array has length NextPow2(len(sources)+outLen) and holds,
// in unspecified order,
//
//   - one element per output slot s: apply(s, d, src, ok), where (src, d)
//     is the governing participant and ok is false when no participant
//     governs s (slots before the first destination, or no participants at
//     all);
//   - every non-participating source, passed through unchanged;
//   - fillers elsewhere (participants are consumed into their slots).
//
// Slot order is not restored: every caller in this module feeds the result
// into another data-independent sort, which would make a restoring sort
// here pure waste. apply must be a pure function of its arguments (register
// arithmetic only).
//
// outLen must be in [1, MaxKey) — destinations become sort-key words below
// the InfKey sentinel. srt must be a ScheduledSorter: the destination of an
// element is carried through the network as its cached schedule word and
// read back afterwards, which no closure key can express. The access
// pattern depends only on (len(sources), outLen), never on the
// destinations or the element contents.
func Distribute(
	c *forkjoin.Ctx, sp *mem.Space,
	sources *mem.Array[Elem], dests *mem.Array[uint64], outLen int,
	apply func(slot, d uint64, src Elem, ok bool) Elem,
	srt Sorter,
) *mem.Array[Elem] {
	ss, ok := srt.(ScheduledSorter)
	if !ok {
		panic(fmt.Sprintf("obliv: sorter %s does not support key schedules (ScheduledSorter); Distribute recovers destinations from the schedule", srt.Name()))
	}
	if outLen < 1 || uint64(outLen) >= MaxKey {
		panic(fmt.Sprintf("obliv: Distribute outLen %d out of range [1, 2^62)", outLen))
	}
	if dests.Len() < sources.Len() {
		panic("obliv: Distribute dests shorter than sources")
	}
	nIn := sources.Len()
	wLen := NextPow2(nIn + outLen)
	w := mem.Alloc[Elem](sp, wLen)
	ks := AllocKeySchedule(sp, wLen, 1)
	kscr := AllocKeySchedule(sp, wLen, 1)
	scr := mem.Alloc[Elem](sp, wLen)
	plane := ks.Plane(0)

	// Participants are keyed d<<1 and slots s<<1|1, so the governing
	// participant of slot s sorts immediately before it; everything else
	// keys the InfKey sentinel. The keys are all distinct (distinct
	// destinations, distinct slot indices, disjoint parities), so the
	// default TieNetwork rule never fires on live elements.
	forkjoin.ParallelRange(c, 0, nIn, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := sources.Get(c, i)
			d := dests.Get(c, i)
			c.Op(1)
			key := InfKey
			if e.Kind == Real && d < uint64(outLen) {
				key = d << 1
			}
			w.Set(c, i, e)
			plane.Set(c, i, key)
		}
	})
	forkjoin.ParallelRange(c, 0, outLen, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for s := lo; s < hi; s++ {
			w.Set(c, nIn+s, Elem{Kind: Temp, Aux: uint64(s)})
			plane.Set(c, nIn+s, uint64(s)<<1|1)
		}
	})
	forkjoin.ParallelRange(c, nIn+outLen, wLen, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for p := lo; p < hi; p++ {
			plane.Set(c, p, InfKey)
		}
	})

	ss.SortScheduled(c, sp, w, ks, scr, kscr, 0, wLen)

	// Latest-participant scan: position p learns the participant with the
	// largest destination at or before p. The schedule moved through the
	// network in lockstep with the elements, so plane[p] is the key — and
	// hence the destination — of the element now at p.
	pv := mem.Alloc[distVal](sp, wLen)
	forkjoin.ParallelRange(c, 0, wLen, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for p := lo; p < hi; p++ {
			e := w.Get(c, p)
			key := plane.Get(c, p)
			c.Op(1)
			v := distVal{}
			if key != InfKey && key&1 == 0 {
				v = distVal{src: e, d: key >> 1, has: true}
			}
			pv.Set(c, p, v)
		}
	})
	ScanOp(c, sp, pv, distOp, distVal{}, true)

	// Slots adopt their governing participant via apply; consumed
	// participants clear to fillers; everything else passes through.
	forkjoin.ParallelRange(c, 0, wLen, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for p := lo; p < hi; p++ {
			e := w.Get(c, p)
			key := plane.Get(c, p)
			v := pv.Get(c, p)
			c.Op(1)
			switch {
			case key == InfKey:
				// Non-participating source or filler: unchanged.
			case key&1 == 0:
				e = Elem{}
			default:
				e = apply(key>>1, v.d, v.src, v.has)
			}
			w.Set(c, p, e)
		}
	})
	return w
}

// DistributeOrdered is Distribute for the case every caller in this module
// actually has: destinations that come out of a prefix sum over the source
// array, so they are already non-decreasing in array order. That order makes
// the full data-independent sort at the heart of Distribute overkill — the
// key array built below is one ascending run (the sources) followed by one
// descending run (the slots, laid out reversed), i.e. bitonic, and a single
// bitonic merge (log2(wLen) compare-exchange layers instead of a full
// sorting network or shuffle pass) interleaves participants and slots. For
// the join expansion at 2^20 rows this removes one of the operator's four
// O(n log n)-with-large-constants sorts outright and replaces it with the
// cheapest oblivious primitive we have.
//
// Contract, in place of Distribute's InfKey masking convention:
//
//   - dests[i] clamped to outLen must be non-decreasing over [0, len(sources));
//   - source i participates iff it is Real, participates(sources[i]) holds,
//     and dests[i] < outLen (out-of-range participants degrade to
//     pass-through, same as Distribute);
//   - participating destinations must be strictly increasing, and a
//     non-participant between two participants must carry a destination
//     between theirs — exactly what an exclusive prefix sum of per-source
//     span widths yields.
//
// Violating the order contract yields an unspecified (but still oblivious —
// the comparator sequence is fixed) permutation. The returned array matches
// Distribute's: length NextPow2(len(sources)+outLen); slots hold
// apply(s, d, src, ok), non-participants pass through unchanged, consumed
// participants and padding are fillers; slot order is not restored. The
// access pattern depends only on (len(sources), outLen).
func DistributeOrdered(
	c *forkjoin.Ctx, sp *mem.Space,
	sources *mem.Array[Elem], dests *mem.Array[uint64], outLen int,
	participates func(Elem) bool,
	apply func(slot, d uint64, src Elem, ok bool) Elem,
) *mem.Array[Elem] {
	if outLen < 1 || uint64(outLen) >= MaxKey>>1 {
		panic(fmt.Sprintf("obliv: DistributeOrdered outLen %d out of range [1, 2^61)", outLen))
	}
	if dests.Len() < sources.Len() {
		panic("obliv: DistributeOrdered dests shorter than sources")
	}
	nIn := sources.Len()
	wLen := NextPow2(nIn + outLen)
	w := mem.Alloc[Elem](sp, wLen)
	ks := AllocKeySchedule(sp, wLen, 1)
	plane := ks.Plane(0)
	lim := uint64(outLen)

	// Two class bits under the destination word keep the merge's key order
	// identical to Distribute's semantic order while preserving the bitonic
	// shape: a participant bound for d keys d<<2|1, the slot it governs keys
	// s<<2|2 (so the participant sorts immediately before its first slot),
	// and a non-participant keys its clamped running offset with class 0 (so
	// it never splits a participant from its span). Sources ascend because
	// the clamped offsets do; slots are written reversed (position wLen-1-s
	// holds slot s) with InfKey padding above them, so the tail descends —
	// one run up, one run down, and the whole array is bitonic by
	// construction.
	forkjoin.ParallelRange(c, 0, nIn, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := sources.Get(c, i)
			d := dests.Get(c, i)
			c.Op(1)
			cd := d
			if cd > lim {
				cd = lim
			}
			key := cd << 2
			if e.Kind == Real && d < lim && participates(e) {
				key = d<<2 | 1
			}
			w.Set(c, i, e)
			plane.Set(c, i, key)
		}
	})
	forkjoin.ParallelRange(c, nIn, wLen-outLen, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for p := lo; p < hi; p++ {
			w.Set(c, p, Elem{})
			plane.Set(c, p, InfKey)
		}
	})
	forkjoin.ParallelRange(c, 0, outLen, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for s := lo; s < hi; s++ {
			w.Set(c, wLen-1-s, Elem{Kind: Temp, Aux: uint64(s)})
			plane.Set(c, wLen-1-s, uint64(s)<<2|2)
		}
	})

	mergeBitonic(c, w, ks, wLen)

	// From here the pipeline is Distribute's, reading the class bits instead
	// of the parity bit: the latest-participant scan then the apply pass.
	pv := mem.Alloc[distVal](sp, wLen)
	forkjoin.ParallelRange(c, 0, wLen, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for p := lo; p < hi; p++ {
			e := w.Get(c, p)
			key := plane.Get(c, p)
			c.Op(1)
			v := distVal{}
			if key&3 == 1 {
				v = distVal{src: e, d: key >> 2, has: true}
			}
			pv.Set(c, p, v)
		}
	})
	ScanOp(c, sp, pv, distOp, distVal{}, true)

	forkjoin.ParallelRange(c, 0, wLen, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for p := lo; p < hi; p++ {
			e := w.Get(c, p)
			key := plane.Get(c, p)
			v := pv.Get(c, p)
			c.Op(1)
			switch key & 3 {
			case 1:
				// Consumed participant: cleared to a filler.
				e = Elem{}
			case 2:
				e = apply(key>>2, v.d, v.src, v.has)
			default:
				// Non-participating source (class 0) or InfKey padding
				// (class 3): unchanged.
			}
			w.Set(c, p, e)
		}
	})
	return w
}

// mergeBitonic sorts the bitonic sequence a[0:n) ascending by its width-1
// cached key schedule: a half-cleaner cascade of log2(n) data-independent
// comparator layers, each layer's disjoint compare-exchanges forked with the
// shared pass grain. n must be a power of two. The comparator sequence is a
// function of n alone.
func mergeBitonic(c *forkjoin.Ctx, a *mem.Array[Elem], ks *KeySchedule, n int) {
	for j := n >> 1; j > 0; j >>= 1 {
		forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i&j == 0 {
					CompareExchangeCachedW(c, a, ks, i, i|j, true)
				}
			}
		})
	}
}
