package obliv

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// This file implements the oblivious aggregation and propagation primitives
// of §F / Table 2 as segmented scans: arrays are sorted so that equal
// groups are consecutive; propagation copies the group representative's
// value to every member (span O(log n), work O(n), cache O(n/B)), and
// aggregation gives every member the combine of the group members to its
// right. Both have access patterns depending only on n.
//
// Two groupings are supported: the classic single-word groupOf key (the
// paper's formulation) and an explicit sameGroup predicate over adjacent
// elements (the *By variants), which the relational layer uses for
// multi-column keys that no single word can express. Either way the
// grouping only feeds the boundary flags of the scan carrier — the access
// pattern is identical.

// propVal is the carrier of the "copy first defined value within segment"
// segmented scan. boundary marks the start of a new group at this position.
type propVal struct {
	v        uint64
	has      bool
	boundary bool
}

// propOp is the associative combine: a later boundary resets the segment;
// otherwise the earliest defined value wins.
func propOp(x, y propVal) propVal {
	if y.boundary {
		return y
	}
	v := y.v
	if x.has {
		v = x.v
	}
	return propVal{v: v, has: x.has || y.has, boundary: x.boundary}
}

// PropagateFirst is PropagateFirstBy grouped by a single-word key: a run of
// equal groupOf values forms one group. groupOf must be a pure function of
// the element (fillers typically map to InfKey so they form their own
// trailing group).
func PropagateFirst(
	c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[Elem],
	groupOf func(Elem) uint64,
	src func(e Elem, i int) (uint64, bool),
	apply func(e Elem, i int, v uint64, ok bool) Elem,
) {
	PropagateFirstBy(c, sp, a,
		func(x, y Elem) bool { return groupOf(x) == groupOf(y) },
		src, apply)
}

// PropagateFirstBy performs oblivious propagation in a grouped array: within
// each maximal run of positions whose adjacent elements satisfy sameGroup,
// the value of the *first* element for which src reports ok is delivered
// via apply(e, i, v, ok) to every element at or after that source. Elements
// before the first source of their run — and all elements of runs with no
// source — receive ok=false.
//
// This directional (prefix) semantics matches every use in the paper: the
// group representative is the leftmost element (§F), and send-receive sorts
// sources before receivers within a key group.
//
// sameGroup must be a pure function of its two elements; it is evaluated on
// every adjacent pair in a fixed neighbor-read pass.
func PropagateFirstBy(
	c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[Elem],
	sameGroup func(x, y Elem) bool,
	src func(e Elem, i int) (uint64, bool),
	apply func(e Elem, i int, v uint64, ok bool) Elem,
) {
	n := a.Len()
	if n == 0 {
		return
	}
	p := mem.Alloc[propVal](sp, n)
	forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			boundary := i == 0
			if i > 0 {
				prev := a.Get(c, i-1)
				c.Op(1)
				boundary = !sameGroup(prev, e)
			}
			v, has := src(e, i)
			p.Set(c, i, propVal{v: v, has: has, boundary: boundary})
		}
	})
	ScanOp(c, sp, p, propOp, propVal{}, true)
	forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			pv := p.Get(c, i)
			c.Op(1)
			a.Set(c, i, apply(e, i, pv.v, pv.has))
		}
	})
}

// segVal is the carrier for segmented aggregation over an arbitrary value
// type V ((sum) words, (sum, count) pairs, (sum, sum-of-squares, count)
// triples, ...).
type segVal[V any] struct {
	v        V
	boundary bool
}

// AggregateSuffix is AggregateSuffixBy grouped by a single-word key and
// aggregating single uint64 values — the paper's Table 2 formulation and
// the API every pre-wide-key caller uses.
func AggregateSuffix(
	c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[Elem],
	groupOf func(Elem) uint64,
	valOf func(Elem) uint64,
	combine func(x, y uint64) uint64,
	apply func(e Elem, i int, agg uint64) Elem,
) {
	AggregateSuffixBy(c, sp, a,
		func(x, y Elem) bool { return groupOf(x) == groupOf(y) },
		valOf, combine, apply)
}

// AggregateSuffixBy performs oblivious aggregation in a grouped array:
// every element receives, via apply, the combine of valOf over the elements
// of its group at positions >= its own (an inclusive suffix aggregate; the
// paper's exclusive "to its right" variant follows by combining out the
// element's own value, which all callers in this module do inline). Groups
// are maximal runs whose adjacent elements satisfy sameGroup. combine must
// be commutative and associative over V; aggregating a compound V (e.g. a
// (sum, count) pair) costs the same fixed pass as a single word — one
// carrier element still occupies one address.
func AggregateSuffixBy[V any](
	c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[Elem],
	sameGroup func(x, y Elem) bool,
	valOf func(Elem) V,
	combine func(x, y V) V,
	apply func(e Elem, i int, agg V) Elem,
) {
	n := a.Len()
	if n == 0 {
		return
	}
	// Build the carrier in reversed order so a plain prefix scan computes
	// the suffix aggregate; boundaries sit at original group *ends*.
	p := mem.Alloc[segVal[V]](sp, n)
	forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for j := lo; j < hi; j++ {
			i := n - 1 - j
			e := a.Get(c, i)
			boundary := i == n-1
			if i < n-1 {
				next := a.Get(c, i+1)
				c.Op(1)
				boundary = !sameGroup(next, e)
			}
			p.Set(c, j, segVal[V]{v: valOf(e), boundary: boundary})
		}
	})
	op := func(x, y segVal[V]) segVal[V] {
		if y.boundary {
			return y
		}
		return segVal[V]{v: combine(x.v, y.v), boundary: x.boundary}
	}
	var id segVal[V]
	ScanOp(c, sp, p, op, id, true)
	forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			pv := p.Get(c, n-1-i)
			c.Op(1)
			a.Set(c, i, apply(e, i, pv.v))
		}
	})
}
