// Package oblivtest is the reusable obliviousness property-test harness.
//
// The module-wide testing strategy (DESIGN.md §3) is to run a data-oblivious
// computation on different inputs of the same public shape under the metered
// executor and assert the adversary's views — the trace fingerprints — are
// identical: a divergence means secret contents leak through the access
// pattern. That machinery used to be copy-pasted per test file; this package
// gives every operator, present and future, the same checks in a few lines:
//
//	oblivtest.FingerprintEqual(t, "JoinAll", runA, runB, runC)
//	oblivtest.Different(t, "shape sensitivity", small, large)
//	oblivtest.Lockstep(t, "GroupBy", 6, 3, 42, func(c, sp, shape, content) { ... })
//
// Bodies run under forkjoin.RunMetered with tracing enabled and a fresh
// mem.Space, exactly like the operators run in production metered mode.
package oblivtest

import (
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/prng"
	"oblivmc/internal/trace"
)

// Body is one metered computation under test.
type Body func(c *forkjoin.Ctx, sp *mem.Space)

// Metered runs body under the metered executor with tracing enabled and
// returns its metrics (trace fingerprint included).
func Metered(body Body) *forkjoin.Metrics {
	sp := mem.NewSpace()
	return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
		body(c, sp)
	})
}

// Fingerprint runs body metered and returns the adversary's view of it.
func Fingerprint(body Body) trace.Fingerprint {
	return Metered(body).Trace
}

// FingerprintEqual runs every body and fails t unless all views equal the
// first — the core obliviousness assertion: bodies must differ only in
// secret contents, never in public shape.
func FingerprintEqual(t testing.TB, label string, bodies ...Body) {
	t.Helper()
	if len(bodies) < 2 {
		t.Fatalf("%s: FingerprintEqual needs at least two bodies", label)
	}
	ref := Fingerprint(bodies[0])
	for i, body := range bodies[1:] {
		if got := Fingerprint(body); !got.Equal(ref) {
			t.Fatalf("%s: trace of body %d differs from body 0 (%016x/%d vs %016x/%d) — contents leak through the access pattern",
				label, i+1, got.Hash, got.Count, ref.Hash, ref.Count)
		}
	}
}

// Equal fails t unless every pre-computed fingerprint equals the first.
// Layers that obtain views through their own runners (e.g. the public
// Report of a metered query) assert with this instead of FingerprintEqual.
func Equal(t testing.TB, label string, fps ...trace.Fingerprint) {
	t.Helper()
	if len(fps) < 2 {
		t.Fatalf("%s: Equal needs at least two fingerprints", label)
	}
	for i, fp := range fps[1:] {
		if !fp.Equal(fps[0]) {
			t.Fatalf("%s: fingerprint %d differs from fingerprint 0 (%016x/%d vs %016x/%d) — contents leak through the access pattern",
				label, i+1, fp.Hash, fp.Count, fps[0].Hash, fps[0].Count)
		}
	}
}

// Different runs both bodies and fails t if their views coincide — the
// sanity inverse guarding against a fingerprint that stopped observing the
// computation: a *different public shape* must change the view.
func Different(t testing.TB, label string, a, b Body) {
	t.Helper()
	if Fingerprint(a).Equal(Fingerprint(b)) {
		t.Fatalf("%s: traces of different shapes coincide — the fingerprint is not observing the computation", label)
	}
}

// Lockstep is the shape-randomized lockstep runner. For each of rounds
// rounds it derives a fresh public shape and runs the body once per content
// variant: within a round every variant receives an identical `shape`
// source (same seed, so all shape draws — sizes, widths, capacities — agree
// in lockstep) but a distinct `content` source for the secret record
// contents. All views within a round must agree; across rounds the shape —
// and hence the view — is free to vary. This catches leaks that a few
// hand-picked shapes miss, at the cost of rounds×variants metered runs.
func Lockstep(
	t testing.TB, label string, rounds, variants int, seed uint64,
	run func(c *forkjoin.Ctx, sp *mem.Space, shape, content *prng.Source),
) {
	t.Helper()
	if rounds < 1 || variants < 2 {
		t.Fatalf("%s: Lockstep needs >= 1 round of >= 2 variants", label)
	}
	for r := 0; r < rounds; r++ {
		shapeSeed := prng.Mix64(seed + uint64(r))
		var ref trace.Fingerprint
		for v := 0; v < variants; v++ {
			contentSeed := prng.Mix64(shapeSeed ^ (uint64(v+1) * 0x9e3779b97f4a7c15))
			fp := Fingerprint(func(c *forkjoin.Ctx, sp *mem.Space) {
				run(c, sp, prng.New(shapeSeed), prng.New(contentSeed))
			})
			if v == 0 {
				ref = fp
				continue
			}
			if !fp.Equal(ref) {
				t.Fatalf("%s: round %d: variant %d's trace differs from variant 0 (%016x/%d vs %016x/%d) — contents leak through the access pattern",
					label, r, v, fp.Hash, fp.Count, ref.Hash, ref.Count)
			}
		}
	}
}
