package obliv

import (
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// TestScanCancelSite pins the scan checkpoint: a tripped token aborts the
// prefix-sum sweeps at the public "scan.sweep" site, and an untripped
// token leaves the scan result exact.
func TestScanCancelSite(t *testing.T) {
	const n = 64
	sp := mem.NewSpace()
	a := mem.Alloc[uint64](sp, n)
	for i := 0; i < n; i++ {
		a.Data()[i] = 1
	}

	cn := new(forkjoin.Cancel)
	cn.Cancel()
	var caught any
	func() {
		defer func() { caught = recover() }()
		PrefixSumU64(forkjoin.SerialCancel(cn), sp, a, true)
	}()
	ce, ok := caught.(*forkjoin.CanceledError)
	if !ok {
		t.Fatalf("tripped scan panicked %T (%v), want *forkjoin.CanceledError", caught, caught)
	}
	if ce.Site != "scan.sweep" {
		t.Fatalf("tripped scan aborted at site %q, want scan.sweep", ce.Site)
	}

	// The abort fired before the up-sweep, so the array still holds the
	// input; a live token must now produce the inclusive prefix sums.
	PrefixSumU64(forkjoin.SerialCancel(new(forkjoin.Cancel)), sp, a, true)
	for i := 0; i < n; i++ {
		if got := a.Data()[i]; got != uint64(i+1) {
			t.Fatalf("prefix[%d] = %d after untripped scan, want %d", i, got, i+1)
		}
	}
}
