package obliv

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// SendReceive implements the send-receive abstraction of §F (often called
// oblivious routing): sources hold (Key, Val) pairs with distinct keys;
// each destination requests a Key and learns the corresponding Val, or ⊥
// if no source holds it. The result array parallels dests: entry j has the
// destination's Key, Aux = j, Val = the routed value, and Kind = Real if
// the key was found, Filler otherwise (the ⊥ case).
//
// Construction per [CS17]: O(1) oblivious sorts plus one oblivious
// propagation, all within the sorting bound — with the cache-agnostic,
// binary fork-join sorter this realizes the Table 2 "S-R" row. The sorts
// run through the ScheduledSorter key-schedule seam (one width-1 TiePos
// schedule reused across both passes), so the routing inherits whichever
// backend the caller selected and the cached-key comparators.
//
// Entries of either array with Kind != Real are inert: a non-Real source
// sends nothing, and a non-Real destination occupies its output slot but
// always receives ⊥.
//
// Requirements: source and destination keys must be < MaxKey. If the
// distinct-keys promise is violated, the first source in *input* order
// wins (the TiePos tie-break orders equal-key sources by their original
// index, deterministically on every backend).
func SendReceive(c *forkjoin.Ctx, sp *mem.Space, sources, dests *mem.Array[Elem], srt ScheduledSorter) *mem.Array[Elem] {
	ns, nd := sources.Len(), dests.Len()
	wLen := NextPow2(ns + nd)
	w := mem.Alloc[Elem](sp, wLen) // trailing slots are fillers

	const (
		tagSource = 0
		tagDest   = 1
	)
	forkjoin.ParallelRange(c, 0, ns, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			s := sources.Get(c, i)
			e := Elem{} // non-Real source slots contribute nothing
			c.Op(1)
			if s.Kind == Real {
				e = Elem{Key: s.Key, Val: s.Val, Aux: uint64(i), Tag: tagSource, Kind: Real}
			}
			w.Set(c, i, e)
		}
	})
	forkjoin.ParallelRange(c, 0, nd, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for j := lo; j < hi; j++ {
			d := dests.Get(c, j)
			key := d.Key
			c.Op(1)
			if d.Kind != Real {
				// Non-Real destination slots still occupy their output
				// position but request a key no source can hold, so they
				// come back as ⊥.
				key = MaxKey + uint64(j)
			}
			w.Set(c, ns+j, Elem{Key: key, Aux: uint64(j), Tag: tagDest, Kind: Real})
		}
	})

	// One width-1 TiePos schedule plus scratch, shared by both sorts.
	ks := AllocKeySchedule(sp, wLen, 1)
	ks.Tie = TiePos
	kscr := AllocKeySchedule(sp, wLen, 1)
	kscr.Tie = TiePos
	scr := mem.Alloc[Elem](sp, wLen)

	// Sort by key with sources before destinations at equal keys.
	key1 := func(e Elem) uint64 {
		if e.Kind == Filler {
			return InfKey
		}
		return e.Key<<1 | uint64(e.Tag)
	}
	BuildKeySchedule(c, w, ks, 0, wLen, func(e Elem, out []uint64) { out[0] = key1(e) })
	srt.SortScheduled(c, sp, w, ks, scr, kscr, 0, wLen)

	// Propagate each key-group's source value to the whole group.
	groupOf := func(e Elem) uint64 {
		if e.Kind == Filler {
			return InfKey
		}
		return e.Key
	}
	PropagateFirst(c, sp, w, groupOf,
		func(e Elem, i int) (uint64, bool) {
			return e.Val, e.Kind == Real && e.Tag == tagSource
		},
		func(e Elem, i int, v uint64, ok bool) Elem {
			if e.Kind == Real && e.Tag == tagDest {
				e.Val = v
				e.Mark = 0
				if ok {
					e.Mark = 1
				}
			}
			return e
		})

	// Sort destinations back to request order; sources and fillers last.
	key2 := func(e Elem) uint64 {
		if e.Kind == Real && e.Tag == tagDest {
			return e.Aux
		}
		return InfKey
	}
	BuildKeySchedule(c, w, ks, 0, wLen, func(e Elem, out []uint64) { out[0] = key2(e) })
	srt.SortScheduled(c, sp, w, ks, scr, kscr, 0, wLen)

	out := mem.Alloc[Elem](sp, nd)
	forkjoin.ParallelRange(c, 0, nd, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for j := lo; j < hi; j++ {
			e := w.Get(c, j)
			r := Elem{Key: e.Key, Val: e.Val, Aux: e.Aux, Kind: Real}
			if e.Mark == 0 {
				r.Kind = Filler // ⊥: key not found
			}
			r.Mark = 0
			out.Set(c, j, r)
		}
	})
	return out
}
