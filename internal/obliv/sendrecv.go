package obliv

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// SendReceive implements the send-receive abstraction of §F (often called
// oblivious routing): sources hold (Key, Val) pairs with distinct keys;
// each destination requests a Key and learns the corresponding Val, or ⊥
// if no source holds it. The result array parallels dests: entry j has the
// destination's Key, Aux = j, Val = the routed value, and Kind = Real if
// the key was found, Filler otherwise (the ⊥ case).
//
// Construction per [CS17]: O(1) oblivious sorts plus one oblivious
// propagation, all within the sorting bound — with the cache-agnostic,
// binary fork-join sorter this realizes the Table 2 "S-R" row.
//
// Entries of either array with Kind != Real are inert: a non-Real source
// sends nothing, and a non-Real destination occupies its output slot but
// always receives ⊥.
//
// Requirements: source and destination keys must be < MaxKey. If the
// distinct-keys promise is violated, the first source in sorted order wins.
func SendReceive(c *forkjoin.Ctx, sp *mem.Space, sources, dests *mem.Array[Elem], srt Sorter) *mem.Array[Elem] {
	ns, nd := sources.Len(), dests.Len()
	wLen := NextPow2(ns + nd)
	w := mem.Alloc[Elem](sp, wLen) // trailing slots are fillers

	const (
		tagSource = 0
		tagDest   = 1
	)
	forkjoin.ParallelRange(c, 0, ns, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			s := sources.Get(c, i)
			e := Elem{} // non-Real source slots contribute nothing
			c.Op(1)
			if s.Kind == Real {
				e = Elem{Key: s.Key, Val: s.Val, Tag: tagSource, Kind: Real}
			}
			w.Set(c, i, e)
		}
	})
	forkjoin.ParallelRange(c, 0, nd, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for j := lo; j < hi; j++ {
			d := dests.Get(c, j)
			key := d.Key
			c.Op(1)
			if d.Kind != Real {
				// Non-Real destination slots still occupy their output
				// position but request a key no source can hold, so they
				// come back as ⊥.
				key = MaxKey + uint64(j)
			}
			w.Set(c, ns+j, Elem{Key: key, Aux: uint64(j), Tag: tagDest, Kind: Real})
		}
	})

	// Sort by key with sources before destinations at equal keys.
	key1 := func(e Elem) uint64 {
		if e.Kind == Filler {
			return InfKey
		}
		return e.Key<<1 | uint64(e.Tag)
	}
	srt.Sort(c, sp, w, 0, wLen, key1)

	// Propagate each key-group's source value to the whole group.
	groupOf := func(e Elem) uint64 {
		if e.Kind == Filler {
			return InfKey
		}
		return e.Key
	}
	PropagateFirst(c, sp, w, groupOf,
		func(e Elem, i int) (uint64, bool) {
			return e.Val, e.Kind == Real && e.Tag == tagSource
		},
		func(e Elem, i int, v uint64, ok bool) Elem {
			if e.Kind == Real && e.Tag == tagDest {
				e.Val = v
				e.Mark = 0
				if ok {
					e.Mark = 1
				}
			}
			return e
		})

	// Sort destinations back to request order; sources and fillers last.
	key2 := func(e Elem) uint64 {
		if e.Kind == Real && e.Tag == tagDest {
			return e.Aux
		}
		return InfKey
	}
	srt.Sort(c, sp, w, 0, wLen, key2)

	out := mem.Alloc[Elem](sp, nd)
	forkjoin.ParallelRange(c, 0, nd, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for j := lo; j < hi; j++ {
			e := w.Get(c, j)
			r := Elem{Key: e.Key, Val: e.Val, Aux: e.Aux, Kind: Real}
			if e.Mark == 0 {
				r.Kind = Filler // ⊥: key not found
			}
			r.Mark = 0
			out.Set(c, j, r)
		}
	})
	return out
}
