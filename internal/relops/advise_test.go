package relops

import (
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/obliv/oblivtest"
	"oblivmc/internal/prng"
)

// checkJoinCapAdvise is the advisor's differential property: the advised
// bound must equal the nested-loop reference's exact pair count, and a
// JoinAll run at that capacity (floored to the legal minimum of 1) must
// never overflow.
func checkJoinCapAdvise(t testing.TB, seed uint64, nl, nr, w, dist int) {
	t.Helper()
	src := prng.New(seed)
	lrecs := genRecords(src, nl, w, dist)
	rrecs := genRecords(src, nr, w, dist)
	want := len(refJoinAll(lrecs, rrecs, w))

	sp := mem.NewSpace()
	left := mustLoadW(t, sp, lrecs, w)
	right := mustLoadW(t, sp, rrecs, w)
	advised, err := JoinCapAdvise(testCtx(), sp, NewArena(), left, right, testSorter(obliv.NextPow2(left.Len()+right.Len())))
	if err != nil {
		t.Fatalf("JoinCapAdvise(nl=%d nr=%d w=%d dist=%d): %v", nl, nr, w, dist, err)
	}
	if advised != int64(want) {
		t.Fatalf("JoinCapAdvise(nl=%d nr=%d w=%d dist=%d) = %d, reference bound %d", nl, nr, w, dist, advised, want)
	}

	capOut := int(advised)
	if capOut < 1 {
		capOut = 1
	}
	sp2 := mem.NewSpace()
	l2 := mustLoadW(t, sp2, lrecs, w)
	r2 := mustLoadW(t, sp2, rrecs, w)
	wLen := obliv.NextPow2(obliv.NextPow2(l2.Len()+r2.Len()) + obliv.NextPow2(capOut))
	_, m, err := JoinAll(testCtx(), sp2, NewArena(), l2, r2, capOut, testSorter(wLen))
	if err != nil {
		t.Fatalf("JoinAll at the advised capacity %d overflowed or failed: %v", capOut, err)
	}
	if m != want {
		t.Fatalf("JoinAll at advised capacity reports %d matches, reference %d", m, want)
	}
}

func TestJoinCapAdvise(t *testing.T) {
	// Hand-checked group structure: key 1 → 2·2 pairs, key 2 → 1·3, key 3
	// left-only, key 4 right-only.
	lrecs := []Record{{Key: 1, Val: 10}, {Key: 1, Val: 11}, {Key: 2, Val: 12}, {Key: 3, Val: 13}}
	rrecs := []Record{{Key: 1, Val: 20}, {Key: 1, Val: 21}, {Key: 2, Val: 22}, {Key: 2, Val: 23}, {Key: 2, Val: 24}, {Key: 4, Val: 25}}
	sp := mem.NewSpace()
	left := mustLoadW(t, sp, lrecs, 1)
	right := mustLoadW(t, sp, rrecs, 1)
	advised, err := JoinCapAdvise(testCtx(), sp, NewArena(), left, right, testSorter(16))
	if err != nil {
		t.Fatal(err)
	}
	if advised != 7 {
		t.Fatalf("advised %d, want 2*2 + 1*3 = 7", advised)
	}
}

func TestJoinCapAdviseProperty(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		for _, dist := range []int{distSpread, distDupHeavy, distAllEqual} {
			for w := 1; w <= MaxKeyCols; w++ {
				checkJoinCapAdvise(t, seed+uint64(97*dist), 1+int(seed)%13, 1+int(3*seed)%17, w, dist)
			}
		}
	}
}

// TestJoinCapAdviseObliviousTrace: the advisor runs one sort and one
// segmented scan over the interleave — its view must be identical across
// same-shape contents (the bound itself is a raw read) at both widths.
func TestJoinCapAdviseObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	check := func(name string, inputs [][]Record, w int) {
		bodies := make([]oblivtest.Body, 0, len(inputs)*len(inputs))
		for _, lrecs := range inputs {
			for _, rrecs := range inputs {
				lrecs, rrecs := lrecs, rrecs
				bodies = append(bodies, func(c *forkjoin.Ctx, sp *mem.Space) {
					l := mustLoadW(t, sp, lrecs, w)
					r := mustLoadW(t, sp, rrecs, w)
					if _, err := JoinCapAdvise(c, sp, NewArena(), l, r, srt); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
		oblivtest.FingerprintEqual(t, name, bodies...)
	}
	check("JoinCapAdvise", traceInputs(32), 1)
	check("WideJoinCapAdvise", wideTraceInputs(32), 2)
}
