package relops

// Native fuzz targets over the property checkers of property_test.go: the
// fuzzer mutates (seed, sizes, width, distribution) tuples and each input
// replays a full operator-vs-reference comparison. `go test` runs the seed
// corpus as regular tests; CI's `make fuzz-smoke` step runs each target
// under -fuzz for a short budget.

import "testing"

// fuzzShape folds raw fuzz bytes into a legal (n, w, dist) shape. Sizes are
// kept small enough for the exact reference sorters while still crossing
// power-of-two paddings.
func fuzzShape(n, w, dist uint8) (int, int, int) {
	return int(n%33) + 1, int(w%MaxKeyCols) + 1, int(dist % distKinds)
}

func FuzzJoinAll(f *testing.F) {
	f.Add(uint64(1), uint8(5), uint8(7), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(16), uint8(16), uint8(1), uint8(1))
	f.Add(uint64(3), uint8(3), uint8(31), uint8(0), uint8(2))
	f.Add(uint64(4), uint8(32), uint8(1), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nl, nr, w, dist uint8) {
		nlv, wv, dv := fuzzShape(nl, w, dist)
		nrv, _, _ := fuzzShape(nr, w, dist)
		checkJoinAll(t, seed, nlv, nrv, wv, dv)
	})
}

func FuzzJoin(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(9), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(17), uint8(12), uint8(1), uint8(1))
	f.Add(uint64(3), uint8(8), uint8(8), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nl, nr, w, dist uint8) {
		nlv, wv, dv := fuzzShape(nl, w, dist)
		nrv, _, _ := fuzzShape(nr, w, dist)
		checkJoin(t, seed, nlv, nrv, wv, dv)
	})
}

func FuzzGroupBy(f *testing.F) {
	f.Add(uint64(1), uint8(9), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(24), uint8(1), uint8(1), uint8(4))
	f.Add(uint64(3), uint8(17), uint8(0), uint8(2), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, n, w, dist, agg uint8) {
		nv, wv, dv := fuzzShape(n, w, dist)
		checkGroupBy(t, seed, nv, wv, dv, allAggs[int(agg)%len(allAggs)])
	})
}

func FuzzDistinct(f *testing.F) {
	f.Add(uint64(1), uint8(9), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(24), uint8(1), uint8(1))
	f.Add(uint64(3), uint8(17), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, n, w, dist uint8) {
		nv, wv, dv := fuzzShape(n, w, dist)
		checkDistinct(t, seed, nv, wv, dv)
	})
}

// FuzzJoinAllCapacityAdvisor differentially fuzzes the capacity advisor:
// the advised bound must equal the nested-loop reference's pair count, and
// a JoinAll at that capacity must never overflow — the property the
// JoinCapAuto mode rests on.
func FuzzJoinAllCapacityAdvisor(f *testing.F) {
	f.Add(uint64(1), uint8(5), uint8(7), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(16), uint8(16), uint8(1), uint8(1))
	f.Add(uint64(3), uint8(3), uint8(31), uint8(0), uint8(2))
	f.Add(uint64(4), uint8(32), uint8(1), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nl, nr, w, dist uint8) {
		nlv, wv, dv := fuzzShape(nl, w, dist)
		nrv, _, _ := fuzzShape(nr, w, dist)
		checkJoinCapAdvise(t, seed, nlv, nrv, wv, dv)
	})
}

// FuzzGroupByBackends differentially fuzzes the shuffle-then-sort backend
// against the keyed bitonic backend: the same GroupBy instance must produce
// identical surviving records under both (every relational order is strict
// via the position tie-break, so outputs are backend-independent). The
// shuffle sorter's seed is fuzzed too, exercising many permutations.
func FuzzGroupByBackends(f *testing.F) {
	f.Add(uint64(1), uint64(1), uint8(9), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(2), uint64(7), uint8(24), uint8(1), uint8(1), uint8(4))
	f.Add(uint64(3), uint64(99), uint8(17), uint8(0), uint8(2), uint8(5))
	f.Fuzz(func(t *testing.T, seed, sortSeed uint64, n, w, dist, agg uint8) {
		nv, wv, dv := fuzzShape(n, w, dist)
		checkGroupByBackends(t, seed, sortSeed, nv, wv, dv, allAggs[int(agg)%len(allAggs)])
	})
}
