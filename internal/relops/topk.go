package relops

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// TopK obliviously keeps the k records of r with the largest Val, leaving
// them at the front in descending value order, and returns the survivor
// count (min(k, #records); raw read, outside the adversary's view). Ties
// in Val are broken deterministically but arbitrarily (by network
// position). k is public — it is part of the query, not the data.
//
// Pipeline: one data-independent descending sort by value, an oblivious
// prefix-rank of the real records, and an elementwise pass keeping ranks
// <= k. A record with Val == 0 shares the descending sort key obliv.InfKey
// with the fillers, so survivors are selected by oblivious rank rather
// than by position: within the tied tail a filler may precede a real
// record, which every operator in this package tolerates (fillers carry
// the InfKey sentinel in every schedule word).
// ar supplies reusable scratch (nil = allocate fresh).
func TopK(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, r Rel, k int, srt obliv.Sorter) int {
	sortSched(c, sp, ar, r.A, descValSched(), srt)
	rankCut(c, sp, ar, r.A, k)
	return countReal(r.A)
}

// rankCut keeps the first k real records of a (by oblivious inclusive
// prefix rank) and drops everything else to fillers — TopK minus its sort,
// reused by the fused executor on an already value-sorted relation.
func rankCut(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, a *mem.Array[obliv.Elem], k int) {
	n := a.Len()
	rank := ar.Ranks(sp, n)
	forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			c.Op(1)
			var r uint64
			if e.Kind == obliv.Real {
				r = 1
			}
			rank.Set(c, i, r)
		}
	})
	obliv.PrefixSumU64(c, sp, rank, true)

	forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			r := rank.Get(c, i)
			c.Op(1)
			if e.Kind != obliv.Real || r > uint64(k) {
				e = obliv.Elem{}
			}
			a.Set(c, i, e)
		}
	})
}
