package relops

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/plan"
)

// Execute runs the physical pass sequence pl (produced by plan.Build from a
// public query shape) over the relation r, returning the survivor count
// (raw read, outside the adversary's view). pred is the filter predicate
// referenced by OpFilterMark / WithFilter ops (nil when the shape has no
// filter); it must be a pure function of the record.
//
// Every pass is one of the same data-independent primitives the
// stand-alone operators are built from, so the trace of a planned pipeline
// is a function of (len(r), r.W, pl) only — and pl itself is a function of
// the public query shape, which includes the key width. ar supplies
// reusable scratch (nil = allocate fresh).
func Execute(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, r Rel, pl plan.Plan, pred func(Record) bool, srt obliv.Sorter) int {
	for _, op := range pl.Ops {
		// Cancellation checkpoint between passes: the pass boundary is
		// public plan shape, so an abort here reveals only the pass index.
		c.Check("relops.pass")
		switch op.Kind {
		case plan.OpFilterMark:
			filterMark(c, r.A, pred)
		case plan.OpSortKey:
			sortSched(c, sp, ar, r.A, keyIdxSched(r.W), srt)
		case plan.OpDedup:
			dedupDrop(c, sp, ar, r, false, 0, filterOf(op, pred))
		case plan.OpAggregate:
			aggregateDrop(c, sp, ar, r, AggKind(op.Agg), filterOf(op, pred))
		case plan.OpDedupAggregate:
			dedupDrop(c, sp, ar, r, true, AggKind(op.Agg), filterOf(op, pred))
		case plan.OpSortValDesc:
			sortSched(c, sp, ar, r.A, descValSched(), srt)
		case plan.OpTopK:
			rankCut(c, sp, ar, r.A, op.K)
		case plan.OpCompactPos:
			// Every earlier pass zeroes the records it drops, so the sort
			// alone restores the public output order: survivors at the
			// front by original position, zero fillers at the tail.
			sortSched(c, sp, ar, r.A, posSched(), srt)
		case plan.OpJoinAll:
			// The join stage is binary: the query layer, which holds both
			// relations, runs JoinAll/JoinAllDeferred and hands Execute the
			// remaining unary passes.
			panic("relops: OpJoinAll must be executed by the query layer, not the fused executor")
		}
	}
	return countReal(r.A)
}

// filterOf returns the predicate an op's elementwise pass must apply, or
// nil when the op carries no pushed-down filter.
func filterOf(op plan.Op, pred func(Record) bool) func(Record) bool {
	if op.WithFilter {
		return pred
	}
	return nil
}

// filterMark drops records failing pred to fillers in one fixed
// elementwise pass (rule 1: no compaction sort — a later sort carries the
// fillers to the tail). Every slot is read and rewritten regardless of the
// predicate's outcome.
func filterMark(c *forkjoin.Ctx, a *mem.Array[obliv.Elem], pred func(Record) bool) {
	forkjoin.ParallelRange(c, 0, a.Len(), passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			c.Op(1)
			if e.Kind == obliv.Real && !pred(recordOf(e)) {
				e = obliv.Elem{}
			}
			a.Set(c, i, e)
		}
	})
}

// dedupDrop marks the key-group heads of a key-sorted relation and drops
// everything else to fillers in place. With withAgg it is the fused
// Distinct→GroupBy pass: each surviving head carries the aggregate of the
// deduplicated relation, in which every group is the single head record
// (AggCount → 1, AggSum/Min/Max/Avg → the head's own value, AggVar → 0).
// pred, when non-nil, is the pushed-down key-only filter merged into the
// same pass.
//
// The relation stays key-sorted among real records; dropped slots become
// interleaved fillers. That is safe for every later pass: the sorts key
// fillers to the InfKey sentinel in every word, and after deduplication
// every real key group is a singleton, so a filler can never split a
// group.
func dedupDrop(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, r Rel, withAgg bool, agg AggKind, pred func(Record) bool) {
	markBoundaries(c, sp, ar, r)
	a := r.A
	forkjoin.ParallelRange(c, 0, a.Len(), passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			c.Op(1)
			keep := e.Kind == obliv.Real && e.Mark == 1
			if keep && pred != nil {
				keep = pred(recordOf(e))
			}
			if keep {
				if withAgg {
					e.Val = singletonAgg(agg, e.Val)
				}
				e.Mark = 0
			} else {
				e = obliv.Elem{}
			}
			a.Set(c, i, e)
		}
	})
}

// aggregateDrop gives every key group of a key-sorted relation its
// aggregate under agg, installs it on the group head, and drops non-heads
// to fillers in place (GroupBy minus its sorts). pred, when non-nil, is the
// pushed-down key-only filter merged into the same pass.
func aggregateDrop(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, r Rel, agg AggKind, pred func(Record) bool) {
	aggregateGroups(c, sp, r, agg)
	markBoundaries(c, sp, ar, r)
	a := r.A
	forkjoin.ParallelRange(c, 0, a.Len(), passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			c.Op(1)
			keep := e.Kind == obliv.Real && e.Mark == 1
			if keep && pred != nil {
				keep = pred(recordOf(e))
			}
			if keep {
				e.Val = e.Lbl
				e.Lbl = 0
				e.Mark = 0
			} else {
				e = obliv.Elem{}
			}
			a.Set(c, i, e)
		}
	})
}
