package relops

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// Distinct obliviously deduplicates a by Key: for every key the earliest
// record (smallest original position) survives, survivors move to the
// front in original input order, and the distinct-key count is returned.
//
// Pipeline: sort by (key, position) so duplicates are adjacent with the
// earliest record first, mark group heads with a fixed neighbor-compare
// pass, then compact the marked records — two data-independent sorts and
// two elementwise passes, trace a function of len(a) only.
func Distinct(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], srt obliv.Sorter) int {
	srt.Sort(c, sp, a, 0, a.Len(), keyIdx)
	markBoundaries(c, sp, a)
	return compactMarked(c, sp, a, srt)
}
