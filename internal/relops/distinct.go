package relops

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// Distinct obliviously deduplicates a by Key: for every key the earliest
// record (smallest original position) survives, survivors move to the
// front in original input order, and the distinct-key count is returned.
//
// Pipeline: sort by (key, position) so duplicates are adjacent with the
// earliest record first, mark group heads with a fixed neighbor-compare
// pass, then compact the marked records — two data-independent sorts and
// two elementwise passes, trace a function of len(a) only. ar supplies
// reusable scratch (nil = allocate fresh).
func Distinct(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, a *mem.Array[obliv.Elem], srt obliv.Sorter) int {
	sortBy(c, sp, ar, a, keyIdx, srt)
	markBoundaries(c, sp, ar, a)
	return compactMarked(c, sp, ar, a, srt)
}
