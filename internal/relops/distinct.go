package relops

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// Distinct obliviously deduplicates r by its key columns: for every key
// tuple the earliest record (smallest original position) survives,
// survivors move to the front in original input order, and the
// distinct-key count is returned.
//
// Pipeline: sort by (key columns..., position) so duplicates are adjacent
// with the earliest record first, mark group heads with a fixed
// neighbor-compare pass, then compact the marked records — two
// data-independent sorts and two elementwise passes, trace a function of
// r's shape only. ar supplies reusable scratch (nil = allocate fresh).
func Distinct(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, r Rel, srt obliv.Sorter) int {
	sortSched(c, sp, ar, r.A, keyIdxSched(r.W), srt)
	markBoundaries(c, sp, ar, r)
	return compactMarked(c, sp, ar, r.A, srt)
}
