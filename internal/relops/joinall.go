package relops

import (
	"fmt"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// This file implements the full many-to-many oblivious equi-join. Join
// (join.go) requires the left key tuples to be distinct; JoinAll lifts that
// restriction by composing the paper's distribution/propagation building
// blocks into an oblivious expansion: every left multiplicity is counted
// with the segmented-scan primitives, the right relation is duplicated
// across computed output spans by obliv.DistributeOrdered, and the existing
// propagate+compact tail then pairs each duplicated copy with its distinct
// left partner. The output length is a caller-supplied *public* capacity
// maxOut — the true match count is data and must stay invisible in the
// trace, so the operator always processes NextPow2(maxOut) output slots and
// reports an overflow through the returned error (a raw read outside the
// adversary's view, like every survivor count here).
//
// Pass structure (3 data-independent sorts plus one bitonic merge, the rest
// scans and fixed elementwise passes; the trace is a function of
// (len(left), len(right), width, maxOut) only):
//
//  1. interleave and sort by (key columns..., side, position) — each key
//     group is its left records (in position order) then its right records;
//  2. segmented suffix-count + propagation give every element its group's
//     left multiplicity cnt, every left its within-group index, and every
//     right its copy count; an exclusive prefix sum turns the counts into
//     disjoint output spans [d, d+cnt);
//  3. obliv.DistributeOrdered expands each right record across its span:
//     copy k of a right record is the (k+1)-th match of that record,
//     destined for the left record with within-group index k. Because the
//     span offsets come out of a prefix sum over the already-sorted
//     relation, the expansion needs only a single bitonic merge — the
//     multiplicity-count sort of step 1 does double duty as the expansion
//     order, fusing what used to be two full sorts into one;
//  4. sort by (key columns..., left index, side, position) and propagate
//     each left value to its copies, then compact the matched copies into
//     (right position, left index) order with a schedule snapshotted before
//     the propagation reuses the index field.

// joinExpand runs the shared head of the many-to-many join (steps 1-3):
// it returns the expansion work relation — the duplicated right copies
// (Tag tagRight, Lbl holding the within-group left index, Aux the right
// record's original position) interleaved with the untouched left records
// (Tag tagLeft, Aux holding the within-group left index) — plus the true
// match count, read raw outside the adversary's view. maxOut and the
// relation shapes fully determine the trace.
func joinExpand(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, left, right Rel, maxOut int, srt obliv.Sorter) (Rel, int) {
	if left.W != right.W {
		panic(fmt.Sprintf("relops: join of width-%d and width-%d relations", left.W, right.W))
	}
	w := left.W
	nl, nr := left.Len(), right.Len()
	n1 := obliv.NextPow2(nl + nr)
	outLen := obliv.NextPow2(maxOut)
	a := mem.Alloc[obliv.Elem](sp, n1) // trailing slots are fillers

	forkjoin.ParallelRange(c, 0, nl, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := left.A.Get(c, i)
			e.Tag = tagLeft
			a.Set(c, i, e)
		}
	})
	forkjoin.ParallelRange(c, 0, nr, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for j := lo; j < hi; j++ {
			e := right.A.Get(c, j)
			e.Tag = tagRight
			a.Set(c, nl+j, e)
		}
	})

	// Step 1: sort by (key columns..., left-before-right, position).
	sortSched(c, sp, ar, a, keyIdxSched(w), srt)

	// Step 2a: segmented suffix-count of left records. Every element's Lbl
	// becomes the number of left records at or after it within its key
	// group — in particular each group head's Lbl is the group's full left
	// multiplicity (the lefts lead the group).
	obliv.AggregateSuffixBy(c, sp, a, sameGroup(w),
		func(e obliv.Elem) uint64 {
			if e.Kind == obliv.Real && e.Tag == tagLeft {
				return 1
			}
			return 0
		},
		func(x, y uint64) uint64 { return x + y },
		func(e obliv.Elem, i int, agg uint64) obliv.Elem { e.Lbl = agg; return e })

	// Step 2b: broadcast the head's multiplicity through each group. A left
	// derives its within-group index (earliest position first) from the
	// difference of the group count and its own suffix count; a right keeps
	// the multiplicity — its copy count — in Lbl. A left's original
	// position is consumed here: copies meet their partner by (key tuple,
	// left index), never by left position.
	obliv.PropagateFirstBy(c, sp, a, sameGroup(w),
		func(e obliv.Elem, i int) (uint64, bool) { return e.Lbl, e.Kind == obliv.Real },
		func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem {
			if e.Kind != obliv.Real {
				return e
			}
			if e.Tag == tagLeft {
				e.Aux = v - e.Lbl
				e.Lbl = 0
			} else {
				e.Lbl = v
			}
			return e
		})

	// True match count — the sum of the rights' copy counts — read raw
	// outside the adversary's view (overflow diagnostics, same convention
	// as countReal).
	matches := uint64(0)
	for _, e := range a.Data() {
		if e.Kind == obliv.Real && e.Tag == tagRight {
			matches += e.Lbl
		}
	}

	// Step 2c: disjoint output spans. Each right record claims cnt output
	// slots; the exclusive prefix sum of the counts is its span offset. The
	// offsets are left raw: they are non-decreasing in array order by
	// construction (and strictly increasing over the participants, whose
	// counts are positive), which is exactly DistributeOrdered's contract —
	// the participation test rides along as a predicate instead of the old
	// InfKey masking pass.
	ranks := ar.Ranks(sp, n1)
	forkjoin.ParallelRange(c, 0, n1, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			c.Op(1)
			var cnt uint64
			if e.Kind == obliv.Real && e.Tag == tagRight {
				cnt = e.Lbl
			}
			ranks.Set(c, i, cnt)
		}
	})
	obliv.PrefixSumU64(c, sp, ranks, false)

	// Step 3: expand. Slot s of a right record's span [d, d+cnt) becomes
	// copy s-d of that record — Mark distinguishes fresh copies from
	// zero-multiplicity rights passed through by the distribution, which the
	// cleanup pass below turns into fillers. Left records pass through
	// untouched for step 4. The step-1 sort order plus the prefix-sum
	// offsets let DistributeOrdered place the copies with a single bitonic
	// merge instead of a second full sort.
	wrkA := obliv.DistributeOrdered(c, sp, a, ranks, outLen,
		func(e obliv.Elem) bool { return e.Tag == tagRight && e.Lbl > 0 },
		func(slot, d uint64, src obliv.Elem, ok bool) obliv.Elem {
			li := slot - d
			if !ok || li >= src.Lbl {
				return obliv.Elem{}
			}
			return obliv.Elem{
				Key: src.Key, Key2: src.Key2, Val: src.Val,
				Aux: src.Aux, Lbl: li,
				Tag: tagRight, Kind: obliv.Real, Mark: 1,
			}
		})
	forkjoin.ParallelRange(c, 0, wrkA.Len(), passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := wrkA.Get(c, i)
			c.Op(1)
			if e.Kind == obliv.Real && e.Tag == tagRight && e.Mark == 0 {
				e = obliv.Elem{}
			}
			e.Mark = 0
			wrkA.Set(c, i, e)
		}
	})
	return Rel{A: wrkA, W: w}, int(matches)
}

// joinLiSched orders the expansion work relation by (key columns..., left
// index) with, via the TiePos tie-break, each run's left partner first and
// its copies following in right-position order — the grouping step 4's
// propagation needs.
func joinLiSched(w int) schedule {
	return schedule{w: w + 1, tie: obliv.TiePos, emit: func(e obliv.Elem, out []uint64) {
		if e.Kind != obliv.Real {
			fillInf(out)
			return
		}
		for k := 0; k < w; k++ {
			out[k] = keyCol(e, k)
		}
		if e.Tag == tagLeft {
			out[w] = e.Aux
		} else {
			out[w] = e.Lbl
		}
	}}
}

// sameGroupLi groups the li-sorted expansion relation into (key tuple,
// left index) runs: one left partner followed by every copy destined for
// it. Kind-aware like sameGroup.
func sameGroupLi(w int) func(x, y obliv.Elem) bool {
	same := sameGroup(w)
	liOf := func(e obliv.Elem) uint64 {
		if e.Tag == tagLeft {
			return e.Aux
		}
		return e.Lbl
	}
	return func(x, y obliv.Elem) bool {
		if !same(x, y) {
			return false
		}
		if x.Kind != obliv.Real {
			return true
		}
		return liOf(x) == liOf(y)
	}
}

// JoinAll is the oblivious many-to-many sort-merge equi-join of two
// relations of the same key width: the result holds one record per
// (left record, right record) pair with equal key tuples — left key tuples
// may repeat, unlike Join's. The output length is NextPow2(maxOut) where
// maxOut is a caller-supplied *public* capacity: the trace depends only on
// (len(left), len(right), width, maxOut), never on the contents or on the
// true match count. Matched records sit at the front ordered by
// (right position, left match index) — for each right record in original
// order, its matches in the left records' original order — with
// Key/Key2/Val the right record's and Lbl the joined left value, exactly
// Join's output convention (UnloadJoined applies).
//
// The true match count is always returned (raw read, outside the
// adversary's view). When it exceeds maxOut the error wraps
// ErrJoinOverflow and the relation holds an unspecified subset of the
// matches; the count tells the caller what capacity a retry needs. A
// maxOut outside [1, MaxRows] returns ErrBadCapacity (CheckCapacity).
// ar supplies reusable scratch (nil = allocate fresh).
func JoinAll(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, left, right Rel, maxOut int, srt obliv.Sorter) (Rel, int, error) {
	if err := CheckCapacity(int64(maxOut)); err != nil {
		return Rel{}, 0, err
	}
	wrk, matches := joinExpand(c, sp, ar, left, right, maxOut, srt)
	w := wrk.W
	n := wrk.Len()

	// Step 4a: group every copy with its left partner.
	sortSched(c, sp, ar, wrk.A, joinLiSched(w), srt)

	// Step 4b: snapshot the output-order schedule — (right position, left
	// index), fillers and lefts to the tail — *before* the propagation
	// below reuses Lbl for the delivered left value. The schedule moves
	// through the network in lockstep with the elements, so building it
	// early costs nothing.
	ks := ar.Keys(sp, n, 2)
	kscr := ar.KeyScratch(sp, n, 2)
	obliv.BuildKeySchedule(c, wrk.A, ks, 0, n, func(e obliv.Elem, out []uint64) {
		if e.Kind != obliv.Real || e.Tag != tagRight {
			fillInf(out)
			return
		}
		out[0] = e.Aux
		out[1] = e.Lbl
	})

	// Step 4c: each (key tuple, left index) run's left partner delivers its
	// value to the run's copies. Every copy has a partner by construction
	// (its index is below its group's multiplicity), so Mark==1 flags
	// exactly the matched output records.
	obliv.PropagateFirstBy(c, sp, wrk.A, sameGroupLi(w),
		func(e obliv.Elem, i int) (uint64, bool) {
			return e.Val, e.Kind == obliv.Real && e.Tag == tagLeft
		},
		func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem {
			e.Mark = 0
			if e.Kind == obliv.Real && e.Tag == tagRight && ok {
				e.Lbl = v
				e.Mark = 1
			}
			return e
		})

	// Step 4d: compact to the public output order with the snapshotted
	// schedule; everything but the matched copies becomes a filler.
	ss, ok := srt.(obliv.ScheduledSorter)
	if !ok {
		panic(fmt.Sprintf("relops: sorter %s does not support key schedules (obliv.ScheduledSorter)", srt.Name()))
	}
	ss.SortScheduled(c, sp, wrk.A, ks, ar.ElemScratch(sp, n), kscr, 0, n)
	forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := wrk.A.Get(c, i)
			c.Op(1)
			if e.Kind != obliv.Real || e.Mark == 0 {
				e = obliv.Elem{}
			}
			e.Mark = 0
			wrk.A.Set(c, i, e)
		}
	})

	out := Rel{A: wrk.A.View(0, obliv.NextPow2(maxOut)), W: w}
	if matches > maxOut {
		return out, matches, fmt.Errorf("%w: %d matches > maxOut %d", ErrJoinOverflow, matches, maxOut)
	}
	return out, matches, nil
}

// JoinAllDeferred is JoinAll for the planner's deferred-compaction rule:
// when a later pipeline stage re-sorts the relation anyway, the join's
// value-propagation and output-compaction sorts (steps 4a-4d — two of the
// operator's three) are pure waste, leaving a single sort plus the
// expansion merge. The result relation holds one record
// per match — the right record's key tuple, value, and original position —
// scattered among fillers in unspecified order, with the left values *not*
// delivered; the caller's next sorting pass restores contiguity. Length is
// NextPow2(NextPow2(len(left)+len(right)) + NextPow2(maxOut)) — a function
// of the public shapes. Match count and overflow behave exactly as in
// JoinAll.
func JoinAllDeferred(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, left, right Rel, maxOut int, srt obliv.Sorter) (Rel, int, error) {
	if err := CheckCapacity(int64(maxOut)); err != nil {
		return Rel{}, 0, err
	}
	wrk, matches := joinExpand(c, sp, ar, left, right, maxOut, srt)
	// Drop the left partners (their values are not delivered on this path)
	// and clear the copies' scratch index so downstream passes see plain
	// records.
	forkjoin.ParallelRange(c, 0, wrk.Len(), passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := wrk.A.Get(c, i)
			c.Op(1)
			if e.Kind == obliv.Real && e.Tag == tagLeft {
				e = obliv.Elem{}
			} else {
				e.Lbl = 0
			}
			wrk.A.Set(c, i, e)
		}
	})
	if matches > maxOut {
		return wrk, matches, fmt.Errorf("%w: %d matches > maxOut %d", ErrJoinOverflow, matches, maxOut)
	}
	return wrk, matches, nil
}
