package relops

import (
	"sort"
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// testSorter picks a cheap exact sorter for tiny inputs and the real
// cache-agnostic bitonic sorter otherwise, so the suite exercises both.
func testSorter(n int) obliv.Sorter {
	if n <= 64 {
		return obliv.SelectionNetwork{}
	}
	return bitonic.CacheAgnostic{}
}

func randRecords(src *prng.Source, n int, keySpread, valSpread uint64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: src.Uint64n(keySpread), Val: src.Uint64n(valSpread)}
	}
	return recs
}

func checkRecords(t *testing.T, got, want []Record, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d records, want %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %v, want %v\ngot  %v\nwant %v", label, i, got[i], want[i], got, want)
		}
	}
}

var testSizes = []int{1, 2, 3, 7, 8, 17, 33, 100, 129}

func TestCompactRandom(t *testing.T) {
	src := prng.New(101)
	pred := func(r Record) bool { return r.Val%3 == 0 }
	for _, n := range testSizes {
		recs := randRecords(src, n, 25, 1000)
		var want []Record
		for _, r := range recs {
			if pred(r) {
				want = append(want, r)
			}
		}
		sp := mem.NewSpace()
		a := Load(sp, recs)
		count := Compact(forkjoin.Serial(), sp, a, pred, testSorter(a.Len()))
		if count != len(want) {
			t.Fatalf("n=%d: Compact count = %d, want %d", n, count, len(want))
		}
		checkRecords(t, Unload(a), want, "Compact")
	}
}

func TestCompactNoneSurvive(t *testing.T) {
	sp := mem.NewSpace()
	a := Load(sp, randRecords(prng.New(5), 16, 10, 10))
	count := Compact(forkjoin.Serial(), sp, a, func(Record) bool { return false }, obliv.SelectionNetwork{})
	if count != 0 || len(Unload(a)) != 0 {
		t.Fatalf("expected empty result, got count=%d records=%v", count, Unload(a))
	}
}

func TestDistinctRandom(t *testing.T) {
	src := prng.New(202)
	for _, n := range testSizes {
		recs := randRecords(src, n, 12, 1000) // heavy duplication
		seen := map[uint64]bool{}
		var want []Record
		for _, r := range recs {
			if !seen[r.Key] {
				seen[r.Key] = true
				want = append(want, r)
			}
		}
		sp := mem.NewSpace()
		a := Load(sp, recs)
		count := Distinct(forkjoin.Serial(), sp, a, testSorter(a.Len()))
		if count != len(want) {
			t.Fatalf("n=%d: Distinct count = %d, want %d", n, count, len(want))
		}
		checkRecords(t, Unload(a), want, "Distinct")
	}
}

func refGroupBy(recs []Record, agg AggKind) []Record {
	aggs := map[uint64]uint64{}
	var order []uint64
	for _, r := range recs {
		cur, ok := aggs[r.Key]
		if !ok {
			order = append(order, r.Key)
			switch agg {
			case AggCount:
				aggs[r.Key] = 1
			default:
				aggs[r.Key] = r.Val
			}
			continue
		}
		switch agg {
		case AggSum:
			aggs[r.Key] = cur + r.Val
		case AggCount:
			aggs[r.Key] = cur + 1
		case AggMin:
			if r.Val < cur {
				aggs[r.Key] = r.Val
			}
		case AggMax:
			if r.Val > cur {
				aggs[r.Key] = r.Val
			}
		}
	}
	out := make([]Record, len(order))
	for i, k := range order {
		out[i] = Record{Key: k, Val: aggs[k]}
	}
	return out
}

func TestGroupByRandom(t *testing.T) {
	src := prng.New(303)
	for _, agg := range []AggKind{AggSum, AggCount, AggMin, AggMax} {
		for _, n := range testSizes {
			recs := randRecords(src, n, 10, 500)
			want := refGroupBy(recs, agg)
			sp := mem.NewSpace()
			a := Load(sp, recs)
			count := GroupBy(forkjoin.Serial(), sp, a, agg, testSorter(a.Len()))
			if count != len(want) {
				t.Fatalf("agg=%d n=%d: GroupBy count = %d, want %d", agg, n, count, len(want))
			}
			checkRecords(t, Unload(a), want, "GroupBy")
		}
	}
}

func TestJoinRandom(t *testing.T) {
	src := prng.New(404)
	for _, nl := range []int{1, 5, 16, 33} {
		for _, nr := range []int{1, 7, 16, 50} {
			// Left: distinct keys drawn sparsely so some right keys miss.
			perm := src.Perm(3 * nl)
			lrecs := make([]Record, nl)
			for i := range lrecs {
				lrecs[i] = Record{Key: uint64(perm[i]), Val: src.Uint64n(1000)}
			}
			rrecs := randRecords(src, nr, uint64(3*nl), 1000)

			lval := map[uint64]uint64{}
			for _, r := range lrecs {
				lval[r.Key] = r.Val
			}
			var want []Joined
			for _, r := range rrecs {
				if v, ok := lval[r.Key]; ok {
					want = append(want, Joined{Key: r.Key, LeftVal: v, RightVal: r.Val})
				}
			}

			sp := mem.NewSpace()
			left, right := Load(sp, lrecs), Load(sp, rrecs)
			out, count := Join(forkjoin.Serial(), sp, left, right, testSorter(obliv.NextPow2(left.Len()+right.Len())))
			if count != len(want) {
				t.Fatalf("nl=%d nr=%d: Join count = %d, want %d", nl, nr, count, len(want))
			}
			got := UnloadJoined(out)
			if len(got) != len(want) {
				t.Fatalf("nl=%d nr=%d: got %d joined records, want %d", nl, nr, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("nl=%d nr=%d: joined record %d = %v, want %v", nl, nr, i, got[i], want[i])
				}
			}
		}
	}
}

func TestJoinNoMatches(t *testing.T) {
	sp := mem.NewSpace()
	left := Load(sp, []Record{{Key: 1, Val: 10}, {Key: 2, Val: 20}})
	right := Load(sp, []Record{{Key: 7, Val: 1}, {Key: 8, Val: 2}, {Key: 9, Val: 3}})
	out, count := Join(forkjoin.Serial(), sp, left, right, obliv.SelectionNetwork{})
	if count != 0 || len(UnloadJoined(out)) != 0 {
		t.Fatalf("expected no matches, got count=%d %v", count, UnloadJoined(out))
	}
}

func TestTopKRandom(t *testing.T) {
	src := prng.New(505)
	for _, n := range testSizes {
		for _, k := range []int{0, 1, n / 2, n, n + 5} {
			recs := make([]Record, n)
			seen := map[uint64]bool{}
			for i := range recs {
				v := src.Uint64n(1 << 30)
				for seen[v] {
					v = src.Uint64n(1 << 30)
				}
				seen[v] = true
				recs[i] = Record{Key: uint64(i), Val: v} // distinct values: exact reference
			}
			want := append([]Record(nil), recs...)
			sort.Slice(want, func(i, j int) bool { return want[i].Val > want[j].Val })
			if k < len(want) {
				want = want[:k]
			}

			sp := mem.NewSpace()
			a := Load(sp, recs)
			count := TopK(forkjoin.Serial(), sp, a, k, testSorter(a.Len()))
			wantCount := k
			if wantCount > n {
				wantCount = n
			}
			if count != wantCount {
				t.Fatalf("n=%d k=%d: TopK count = %d, want %d", n, k, count, wantCount)
			}
			checkRecords(t, Unload(a), want, "TopK")
		}
	}
}

// TestTopKTiesAndZeros drives the Val==0 / filler key-collision corner: the
// survivors must still be a valid top-k multiset.
func TestTopKTiesAndZeros(t *testing.T) {
	src := prng.New(606)
	for trial := 0; trial < 20; trial++ {
		n := 5 + src.Intn(20)
		k := src.Intn(n + 2)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{Key: uint64(i), Val: src.Uint64n(3)} // many ties, many zeros
		}
		vals := make([]uint64, n)
		for i, r := range recs {
			vals[i] = r.Val
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })

		sp := mem.NewSpace()
		a := Load(sp, recs)
		count := TopK(forkjoin.Serial(), sp, a, k, obliv.SelectionNetwork{})
		got := Unload(a)
		wantCount := k
		if wantCount > n {
			wantCount = n
		}
		if count != wantCount || len(got) != wantCount {
			t.Fatalf("n=%d k=%d: count=%d len=%d, want %d", n, k, count, len(got), wantCount)
		}
		for i, r := range got {
			if r.Val != vals[i] {
				t.Fatalf("n=%d k=%d: survivor %d has val %d, want %d (vals %v, got %v)", n, k, i, r.Val, vals[i], vals, got)
			}
			if recs[r.Key].Val != r.Val {
				t.Fatalf("n=%d k=%d: survivor %v is not an input record", n, k, r)
			}
		}
	}
}

// TestMarkBoundariesParallelRace stresses the boundary scan with many
// forked leaves so the race detector can see any neighbor read racing a
// write (markBoundaries writes marks via a scratch array for this reason).
func TestMarkBoundariesParallelRace(t *testing.T) {
	src := prng.New(808)
	recs := randRecords(src, 1<<13, 64, 1000)
	forkjoin.RunParallel(8, func(c *forkjoin.Ctx) {
		sp := mem.NewSpace()
		srt := bitonic.CacheAgnostic{}
		a := Load(sp, recs)
		if got, want := Distinct(c, sp, a, srt), 64; got != want {
			t.Errorf("Distinct under parallel pool: %d keys, want %d", got, want)
		}
	})
}

// TestOperatorsParallel smoke-tests every operator under the real
// work-stealing pool (the race detector covers the forking passes).
func TestOperatorsParallel(t *testing.T) {
	src := prng.New(707)
	recs := randRecords(src, 200, 15, 1000)
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		sp := mem.NewSpace()
		srt := bitonic.CacheAgnostic{}

		a := Load(sp, recs)
		Compact(c, sp, a, func(r Record) bool { return r.Val%2 == 0 }, srt)

		b := Load(sp, recs)
		Distinct(c, sp, b, srt)

		g := Load(sp, recs)
		GroupBy(c, sp, g, AggSum, srt)

		tk := Load(sp, recs)
		TopK(c, sp, tk, 10, srt)

		left := Load(sp, []Record{{Key: 1, Val: 5}, {Key: 2, Val: 6}})
		right := Load(sp, recs[:50])
		Join(c, sp, left, right, srt)
	})
}
