package relops

import (
	"errors"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// testCtx returns the executor the suite's operator calls run under:
// serial by default, or a package-wide 4-worker stealing pool when
// OBLIVMC_TEST_MODE=parallel (CI's ModeParallel matrix leg, `make
// test-parallel`), so every correctness and property check in this package
// also exercises true concurrent execution. The trace-fingerprint tests
// are unaffected: fingerprints are defined by the metered executor, which
// is sequential by construction and never goes through this helper.
func testCtx() *forkjoin.Ctx {
	if os.Getenv("OBLIVMC_TEST_MODE") != "parallel" {
		return forkjoin.Serial()
	}
	suitePoolOnce.Do(func() { suitePool = forkjoin.NewPool(4) })
	return suitePool.OwnerCtx()
}

var (
	suitePool     *forkjoin.Pool
	suitePoolOnce sync.Once
)

// mustLoad is width-1 Load for known-in-range test data; the error path has
// its own tests (TestLoadRejectsOutOfRange). It panics rather than
// t.Fatal-ing so it is safe inside closures running on pool workers.
func mustLoad(t testing.TB, sp *mem.Space, recs []Record) Rel {
	t.Helper()
	return mustLoadW(t, sp, recs, 1)
}

// mustLoadW is Load at an explicit key width.
func mustLoadW(t testing.TB, sp *mem.Space, recs []Record, w int) Rel {
	t.Helper()
	r, err := Load(sp, recs, w)
	if err != nil {
		panic(err)
	}
	return r
}

// testSorter picks the sorter the correctness/property suite runs under.
// The default leg uses a cheap exact sorter for tiny inputs and the real
// cache-agnostic bitonic sorter otherwise, so the suite exercises both;
// with OBLIVMC_SORT_BACKEND=shuffle (CI's second matrix leg, `make
// test-shuffle`) every sort instead runs the shuffle-then-sort composition
// forced down to the smallest sizes. The relational operators' *outputs*
// are backend-independent — every relational order is made strict by the
// position tie-break — so the same reference checks apply to both legs.
// (The trace-fingerprint tests pin their backends explicitly and do not go
// through this helper: the shuffle backend's per-seed trace determinism is
// weaker, and its fingerprint guarantees are asserted by its own tests.)
func testSorter(n int) obliv.Sorter {
	if os.Getenv("OBLIVMC_SORT_BACKEND") == "shuffle" {
		seed := uint64(0x7e57)
		return &core.ShuffleSorter{FixedSeed: &seed, Crossover: 2}
	}
	if n <= 64 {
		return obliv.SelectionNetwork{}
	}
	return bitonic.CacheAgnostic{}
}

func randRecords(src *prng.Source, n int, keySpread, valSpread uint64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: src.Uint64n(keySpread), Val: src.Uint64n(valSpread)}
	}
	return recs
}

// randWideRecords draws width-2 records whose columns exercise the full
// uint64 range (far beyond the old 2^40 packed-key bound) with heavy
// column-0 duplication so the second column decides many comparisons.
func randWideRecords(src *prng.Source, n int, spread1, spread2, valSpread uint64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Key:  src.Uint64n(spread1) * 0x9e3779b97f4a7c15,
			Key2: src.Uint64n(spread2) * 0x517cc1b727220a95,
			Val:  src.Uint64n(valSpread),
		}
	}
	return recs
}

func checkRecords(t testing.TB, got, want []Record, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d records, want %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %v, want %v\ngot  %v\nwant %v", label, i, got[i], want[i], got, want)
		}
	}
}

var testSizes = []int{1, 2, 3, 7, 8, 17, 33, 100, 129}

func TestCompactRandom(t *testing.T) {
	src := prng.New(101)
	pred := func(r Record) bool { return r.Val%3 == 0 }
	for _, n := range testSizes {
		recs := randRecords(src, n, 25, 1000)
		var want []Record
		for _, r := range recs {
			if pred(r) {
				want = append(want, r)
			}
		}
		sp := mem.NewSpace()
		a := mustLoad(t, sp, recs)
		count := Compact(testCtx(), sp, NewArena(), a, pred, testSorter(a.Len()))
		if count != len(want) {
			t.Fatalf("n=%d: Compact count = %d, want %d", n, count, len(want))
		}
		checkRecords(t, Unload(a), want, "Compact")
	}
}

func TestCompactNoneSurvive(t *testing.T) {
	sp := mem.NewSpace()
	a := mustLoad(t, sp, randRecords(prng.New(5), 16, 10, 10))
	count := Compact(testCtx(), sp, NewArena(), a, func(Record) bool { return false }, obliv.SelectionNetwork{})
	if count != 0 || len(Unload(a)) != 0 {
		t.Fatalf("expected empty result, got count=%d records=%v", count, Unload(a))
	}
}

func TestDistinctRandom(t *testing.T) {
	src := prng.New(202)
	for _, n := range testSizes {
		recs := randRecords(src, n, 12, 1000) // heavy duplication
		seen := map[uint64]bool{}
		var want []Record
		for _, r := range recs {
			if !seen[r.Key] {
				seen[r.Key] = true
				want = append(want, r)
			}
		}
		sp := mem.NewSpace()
		a := mustLoad(t, sp, recs)
		count := Distinct(testCtx(), sp, NewArena(), a, testSorter(a.Len()))
		if count != len(want) {
			t.Fatalf("n=%d: Distinct count = %d, want %d", n, count, len(want))
		}
		checkRecords(t, Unload(a), want, "Distinct")
	}
}

// TestDistinctWideKeys drives width-2 deduplication: rows sharing column 0
// but differing in column 1 are distinct tuples, and column values far
// above the old 2^40 limit survive intact.
func TestDistinctWideKeys(t *testing.T) {
	src := prng.New(212)
	for _, n := range testSizes {
		recs := randWideRecords(src, n, 5, 4, 1000)
		seen := map[[2]uint64]bool{}
		var want []Record
		for _, r := range recs {
			k := [2]uint64{r.Key, r.Key2}
			if !seen[k] {
				seen[k] = true
				want = append(want, r)
			}
		}
		sp := mem.NewSpace()
		a := mustLoadW(t, sp, recs, 2)
		count := Distinct(testCtx(), sp, NewArena(), a, testSorter(a.Len()))
		if count != len(want) {
			t.Fatalf("n=%d: wide Distinct count = %d, want %d", n, count, len(want))
		}
		checkRecords(t, Unload(a), want, "Distinct wide")
	}
}

func refGroupBy(recs []Record, agg AggKind, wide bool) []Record {
	type stats struct{ sum, sq, cnt, minv, maxv uint64 }
	aggs := map[[2]uint64]*stats{}
	var order [][2]uint64
	keyOf := func(r Record) [2]uint64 {
		if wide {
			return [2]uint64{r.Key, r.Key2}
		}
		return [2]uint64{r.Key, 0}
	}
	for _, r := range recs {
		k := keyOf(r)
		s, ok := aggs[k]
		if !ok {
			s = &stats{minv: r.Val, maxv: r.Val}
			aggs[k] = s
			order = append(order, k)
		} else {
			if r.Val < s.minv {
				s.minv = r.Val
			}
			if r.Val > s.maxv {
				s.maxv = r.Val
			}
		}
		s.sum += r.Val
		s.sq += r.Val * r.Val
		s.cnt++
	}
	out := make([]Record, len(order))
	for i, k := range order {
		s := aggs[k]
		var v uint64
		switch agg {
		case AggSum:
			v = s.sum
		case AggCount:
			v = s.cnt
		case AggMin:
			v = s.minv
		case AggMax:
			v = s.maxv
		case AggAvg:
			v = s.sum / s.cnt
		case AggVar:
			m := s.sum / s.cnt
			ex2 := s.sq / s.cnt
			if ex2 >= m*m {
				v = ex2 - m*m
			}
		}
		rec := Record{Key: k[0], Val: v}
		if wide {
			rec.Key2 = k[1]
		}
		out[i] = rec
	}
	return out
}

var allAggs = []AggKind{AggSum, AggCount, AggMin, AggMax, AggAvg, AggVar}

func TestGroupByRandom(t *testing.T) {
	src := prng.New(303)
	for _, agg := range allAggs {
		for _, n := range testSizes {
			recs := randRecords(src, n, 10, 500)
			want := refGroupBy(recs, agg, false)
			sp := mem.NewSpace()
			a := mustLoad(t, sp, recs)
			count := GroupBy(testCtx(), sp, NewArena(), a, agg, testSorter(a.Len()))
			if count != len(want) {
				t.Fatalf("agg=%d n=%d: GroupBy count = %d, want %d", agg, n, count, len(want))
			}
			checkRecords(t, Unload(a), want, "GroupBy")
		}
	}
}

// TestGroupByWideKeys is the composite GROUP BY (a, b): every aggregate
// over two full-range key columns, against the plain-Go reference.
func TestGroupByWideKeys(t *testing.T) {
	src := prng.New(313)
	for _, agg := range allAggs {
		for _, n := range testSizes {
			recs := randWideRecords(src, n, 4, 3, 500)
			want := refGroupBy(recs, agg, true)
			sp := mem.NewSpace()
			a := mustLoadW(t, sp, recs, 2)
			count := GroupBy(testCtx(), sp, NewArena(), a, agg, testSorter(a.Len()))
			if count != len(want) {
				t.Fatalf("agg=%d n=%d: wide GroupBy count = %d, want %d", agg, n, count, len(want))
			}
			checkRecords(t, Unload(a), want, "GroupBy wide")
		}
	}
}

// TestGroupByMaxLegalKeys pins the lifted key range: key columns at the
// maximum legal value (KeyLimit-1 = 2^64-2, adjacent to the filler
// sentinel) must sort, group, and aggregate correctly — the Kind-aware
// grouping keeps even maximal keys out of the filler tail.
func TestGroupByMaxLegalKeys(t *testing.T) {
	maxKey := uint64(KeyLimit - 1)
	recs := []Record{
		{Key: maxKey, Key2: maxKey, Val: 10},
		{Key: 0, Key2: 1, Val: 1},
		{Key: maxKey, Key2: maxKey, Val: 30},
		{Key: maxKey, Key2: 0, Val: 7},
	}
	sp := mem.NewSpace()
	a := mustLoadW(t, sp, recs, 2)
	count := GroupBy(testCtx(), sp, NewArena(), a, AggAvg, obliv.SelectionNetwork{})
	want := []Record{
		{Key: maxKey, Key2: maxKey, Val: 20},
		{Key: 0, Key2: 1, Val: 1},
		{Key: maxKey, Key2: 0, Val: 7},
	}
	if count != len(want) {
		t.Fatalf("count = %d, want %d", count, len(want))
	}
	checkRecords(t, Unload(a), want, "GroupBy max keys")
}

func TestJoinRandom(t *testing.T) {
	src := prng.New(404)
	for _, nl := range []int{1, 5, 16, 33} {
		for _, nr := range []int{1, 7, 16, 50} {
			// Left: distinct keys drawn sparsely so some right keys miss.
			perm := src.Perm(3 * nl)
			lrecs := make([]Record, nl)
			for i := range lrecs {
				lrecs[i] = Record{Key: uint64(perm[i]), Val: src.Uint64n(1000)}
			}
			rrecs := randRecords(src, nr, uint64(3*nl), 1000)

			lval := map[uint64]uint64{}
			for _, r := range lrecs {
				lval[r.Key] = r.Val
			}
			var want []Joined
			for _, r := range rrecs {
				if v, ok := lval[r.Key]; ok {
					want = append(want, Joined{Key: r.Key, LeftVal: v, RightVal: r.Val})
				}
			}

			sp := mem.NewSpace()
			left, right := mustLoad(t, sp, lrecs), mustLoad(t, sp, rrecs)
			out, count := Join(testCtx(), sp, NewArena(), left, right, testSorter(obliv.NextPow2(left.Len()+right.Len())))
			if count != len(want) {
				t.Fatalf("nl=%d nr=%d: Join count = %d, want %d", nl, nr, count, len(want))
			}
			got := UnloadJoined(out)
			if len(got) != len(want) {
				t.Fatalf("nl=%d nr=%d: got %d joined records, want %d", nl, nr, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("nl=%d nr=%d: joined record %d = %v, want %v", nl, nr, i, got[i], want[i])
				}
			}
		}
	}
}

// TestJoinWideKeys joins on a two-column key tuple with full-range column
// values: matches require both columns to agree.
func TestJoinWideKeys(t *testing.T) {
	src := prng.New(414)
	lrecs := []Record{
		{Key: 1 << 50, Key2: 0, Val: 100},
		{Key: 1 << 50, Key2: 1, Val: 200},
		{Key: ^uint64(1), Key2: 9, Val: 300},
	}
	var rrecs []Record
	for i := 0; i < 40; i++ {
		r := Record{Key: 1 << 50, Key2: src.Uint64n(3), Val: src.Uint64n(1000)}
		if i%5 == 0 {
			r.Key = ^uint64(1)
			r.Key2 = 9
		}
		rrecs = append(rrecs, r)
	}
	lval := map[[2]uint64]uint64{}
	for _, r := range lrecs {
		lval[[2]uint64{r.Key, r.Key2}] = r.Val
	}
	var want []Joined
	for _, r := range rrecs {
		if v, ok := lval[[2]uint64{r.Key, r.Key2}]; ok {
			want = append(want, Joined{Key: r.Key, Key2: r.Key2, LeftVal: v, RightVal: r.Val})
		}
	}
	sp := mem.NewSpace()
	left, right := mustLoadW(t, sp, lrecs, 2), mustLoadW(t, sp, rrecs, 2)
	out, count := Join(testCtx(), sp, NewArena(), left, right, obliv.SelectionNetwork{})
	if count != len(want) {
		t.Fatalf("wide Join count = %d, want %d", count, len(want))
	}
	got := UnloadJoined(out)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wide joined record %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestJoinNoMatches(t *testing.T) {
	sp := mem.NewSpace()
	left := mustLoad(t, sp, []Record{{Key: 1, Val: 10}, {Key: 2, Val: 20}})
	right := mustLoad(t, sp, []Record{{Key: 7, Val: 1}, {Key: 8, Val: 2}, {Key: 9, Val: 3}})
	out, count := Join(testCtx(), sp, NewArena(), left, right, obliv.SelectionNetwork{})
	if count != 0 || len(UnloadJoined(out)) != 0 {
		t.Fatalf("expected no matches, got count=%d %v", count, UnloadJoined(out))
	}
}

func TestTopKRandom(t *testing.T) {
	src := prng.New(505)
	for _, n := range testSizes {
		for _, k := range []int{0, 1, n / 2, n, n + 5} {
			recs := make([]Record, n)
			seen := map[uint64]bool{}
			for i := range recs {
				v := src.Uint64n(1 << 30)
				for seen[v] {
					v = src.Uint64n(1 << 30)
				}
				seen[v] = true
				recs[i] = Record{Key: uint64(i), Val: v} // distinct values: exact reference
			}
			want := append([]Record(nil), recs...)
			sort.Slice(want, func(i, j int) bool { return want[i].Val > want[j].Val })
			if k < len(want) {
				want = want[:k]
			}

			sp := mem.NewSpace()
			a := mustLoad(t, sp, recs)
			count := TopK(testCtx(), sp, NewArena(), a, k, testSorter(a.Len()))
			wantCount := k
			if wantCount > n {
				wantCount = n
			}
			if count != wantCount {
				t.Fatalf("n=%d k=%d: TopK count = %d, want %d", n, k, count, wantCount)
			}
			checkRecords(t, Unload(a), want, "TopK")
		}
	}
}

// TestTopKTiesAndZeros drives the Val==0 / filler key-collision corner: the
// survivors must still be a valid top-k multiset.
func TestTopKTiesAndZeros(t *testing.T) {
	src := prng.New(606)
	for trial := 0; trial < 20; trial++ {
		n := 5 + src.Intn(20)
		k := src.Intn(n + 2)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{Key: uint64(i), Val: src.Uint64n(3)} // many ties, many zeros
		}
		vals := make([]uint64, n)
		for i, r := range recs {
			vals[i] = r.Val
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })

		sp := mem.NewSpace()
		a := mustLoad(t, sp, recs)
		count := TopK(testCtx(), sp, NewArena(), a, k, obliv.SelectionNetwork{})
		got := Unload(a)
		wantCount := k
		if wantCount > n {
			wantCount = n
		}
		if count != wantCount || len(got) != wantCount {
			t.Fatalf("n=%d k=%d: count=%d len=%d, want %d", n, k, count, len(got), wantCount)
		}
		for i, r := range got {
			if r.Val != vals[i] {
				t.Fatalf("n=%d k=%d: survivor %d has val %d, want %d (vals %v, got %v)", n, k, i, r.Val, vals[i], vals, got)
			}
			if recs[r.Key].Val != r.Val {
				t.Fatalf("n=%d k=%d: survivor %v is not an input record", n, k, r)
			}
		}
	}
}

// TestLoadRejectsOutOfRange pins the boundary contract: key columns at the
// filler sentinel, relations beyond MaxRows, and widths outside
// [1, MaxKeyCols] must be rejected with the typed errors. MaxRows is now
// 2^40 — far too large to materialize — so the row bound is exercised
// through the shape check Load itself applies.
func TestLoadRejectsOutOfRange(t *testing.T) {
	sp := mem.NewSpace()
	if _, err := Load(sp, []Record{{Key: KeyLimit, Val: 1}}, 1); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("key = KeyLimit: err = %v, want ErrKeyTooLarge", err)
	}
	if _, err := Load(sp, []Record{{Key: KeyLimit - 1, Val: 1}}, 1); err != nil {
		t.Fatalf("key = KeyLimit-1 (max legal key) rejected: %v", err)
	}
	// A width-1 load ignores column 1, so a sentinel there is legal...
	if _, err := Load(sp, []Record{{Key: 1, Key2: KeyLimit, Val: 1}}, 1); err != nil {
		t.Fatalf("width-1 load rejected ignored column: %v", err)
	}
	// ...but a width-2 load validates it.
	if _, err := Load(sp, []Record{{Key: 1, Key2: KeyLimit, Val: 1}}, 2); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("wide key = KeyLimit: err = %v, want ErrKeyTooLarge", err)
	}
	for _, w := range []int{0, MaxKeyCols + 1} {
		if _, err := Load(sp, []Record{{Key: 1}}, w); !errors.Is(err, ErrBadWidth) {
			t.Fatalf("width %d: err = %v, want ErrBadWidth", w, err)
		}
	}
	if err := CheckShape(MaxRows+1, 1); !errors.Is(err, ErrTooManyRows) {
		t.Fatalf("MaxRows+1 records: err = %v, want ErrTooManyRows", err)
	}
	if err := CheckShape(MaxRows, MaxKeyCols); err != nil {
		t.Fatalf("maximal legal shape rejected: %v", err)
	}
}

// TestErrorMessagesReflectConstants guards the parameterized limit strings:
// the messages must be derived from the active constants, not baked-in
// copies of historical bounds.
func TestErrorMessagesReflectConstants(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
	}{
		{ErrKeyTooLarge, "18446744073709551614"}, // KeyLimit-1 = 2^64-2
		{ErrTooManyRows, "2^40"},                 // log2(MaxRows)
		{ErrBadWidth, "[1, 2]"},                  // MaxKeyCols
	} {
		if !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("error %q does not mention active constant %q", tc.err, tc.want)
		}
	}
	for _, stale := range []string{"2^40-1", "2^20"} {
		for _, err := range []error{ErrKeyTooLarge, ErrTooManyRows, ErrBadWidth} {
			if strings.Contains(err.Error(), stale) {
				t.Errorf("error %q still bakes in the stale bound %q", err, stale)
			}
		}
	}
}

// TestArenaReuseMatchesFreshScratch runs the same operator pipeline with a
// shared arena and with fresh per-call scratch and asserts identical
// results — scratch reuse must be invisible to the operator semantics.
func TestArenaReuseMatchesFreshScratch(t *testing.T) {
	src := prng.New(909)
	recs := randRecords(src, 100, 12, 1000)
	run := func(ar *Arena) ([]Record, []Record) {
		sp := mem.NewSpace()
		srt := bitonic.CacheAgnostic{}
		a := mustLoad(t, sp, recs)
		Distinct(testCtx(), sp, ar, a, srt)
		b := mustLoad(t, sp, recs)
		GroupBy(testCtx(), sp, ar, b, AggSum, srt)
		return Unload(a), Unload(b)
	}
	d1, g1 := run(NewArena())
	d2, g2 := run(nil)
	checkRecords(t, d1, d2, "Distinct arena vs fresh")
	checkRecords(t, g1, g2, "GroupBy arena vs fresh")
}

// TestArenaMixedWidths holds one arena across passes of different schedule
// widths (a wide GroupBy between two narrow ones): the shared key backing
// must be re-carved per width without corrupting either.
func TestArenaMixedWidths(t *testing.T) {
	src := prng.New(919)
	narrow := randRecords(src, 90, 9, 500)
	wide := randWideRecords(src, 90, 4, 3, 500)
	ar := NewArena()
	sp := mem.NewSpace()
	srt := bitonic.CacheAgnostic{}

	a := mustLoad(t, sp, narrow)
	GroupBy(testCtx(), sp, ar, a, AggSum, srt)
	b := mustLoadW(t, sp, wide, 2)
	GroupBy(testCtx(), sp, ar, b, AggAvg, srt)
	c := mustLoad(t, sp, narrow)
	GroupBy(testCtx(), sp, ar, c, AggSum, srt)

	checkRecords(t, Unload(a), refGroupBy(narrow, AggSum, false), "narrow before wide")
	checkRecords(t, Unload(b), refGroupBy(wide, AggAvg, true), "wide between narrows")
	checkRecords(t, Unload(c), refGroupBy(narrow, AggSum, false), "narrow after wide")
}

// TestArenaRebindsAcrossSpaces holds one arena across two independent
// address spaces: cached arrays from the first space must not be handed
// out in the second (their addresses would alias the second space's own
// allocations), so the arena must transparently reallocate.
func TestArenaRebindsAcrossSpaces(t *testing.T) {
	ar := NewArena()
	s1 := mem.NewSpace()
	a1 := ar.ElemScratch(s1, 64)
	s2 := mem.NewSpace()
	a2 := ar.ElemScratch(s2, 64)
	if &a1.Data()[0] == &a2.Data()[0] {
		t.Fatal("arena handed out a cached array across address spaces")
	}
	a3 := ar.ElemScratch(s2, 64)
	if &a2.Data()[0] != &a3.Data()[0] {
		t.Fatal("arena failed to reuse its cache within one space")
	}

	// End to end: one arena across two spaces/runs yields the same rows.
	src := prng.New(1001)
	recs := randRecords(src, 80, 9, 500)
	arr := NewArena()
	var got [2][]Record
	for round := 0; round < 2; round++ {
		sp := mem.NewSpace()
		a := mustLoad(t, sp, recs)
		GroupBy(testCtx(), sp, arr, a, AggSum, bitonic.CacheAgnostic{})
		got[round] = Unload(a)
	}
	checkRecords(t, got[1], got[0], "arena across spaces")
}

// TestMarkBoundariesParallelRace stresses the boundary scan with many
// forked leaves so the race detector can see any neighbor read racing a
// write (markBoundaries writes marks via a scratch array for this reason).
func TestMarkBoundariesParallelRace(t *testing.T) {
	src := prng.New(808)
	recs := randRecords(src, 1<<13, 64, 1000)
	forkjoin.RunParallel(8, func(c *forkjoin.Ctx) {
		sp := mem.NewSpace()
		srt := bitonic.CacheAgnostic{}
		a := mustLoad(t, sp, recs)
		if got, want := Distinct(c, sp, NewArena(), a, srt), 64; got != want {
			t.Errorf("Distinct under parallel pool: %d keys, want %d", got, want)
		}
	})
}

// TestOperatorsParallel smoke-tests every operator under the real
// work-stealing pool (the race detector covers the forking passes),
// including a wide group-by.
func TestOperatorsParallel(t *testing.T) {
	src := prng.New(707)
	recs := randRecords(src, 200, 15, 1000)
	wrecs := randWideRecords(src, 200, 5, 4, 1000)
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		sp := mem.NewSpace()
		srt := bitonic.CacheAgnostic{}

		a := mustLoad(t, sp, recs)
		Compact(c, sp, NewArena(), a, func(r Record) bool { return r.Val%2 == 0 }, srt)

		b := mustLoad(t, sp, recs)
		Distinct(c, sp, nil, b, srt)

		g := mustLoad(t, sp, recs)
		GroupBy(c, sp, NewArena(), g, AggSum, srt)

		gw := mustLoadW(t, sp, wrecs, 2)
		GroupBy(c, sp, NewArena(), gw, AggVar, srt)

		tk := mustLoad(t, sp, recs)
		TopK(c, sp, NewArena(), tk, 10, srt)

		left := mustLoad(t, sp, []Record{{Key: 1, Val: 5}, {Key: 2, Val: 6}})
		right := mustLoad(t, sp, recs[:50])
		Join(c, sp, NewArena(), left, right, srt)
	})
}
