package relops

import (
	"errors"
	"sort"
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// mustLoad is Load for known-in-range test data; the error path has its own
// tests (TestLoadRejectsOutOfRange). It panics rather than t.Fatal-ing so it
// is safe inside closures running on pool workers.
func mustLoad(t *testing.T, sp *mem.Space, recs []Record) *mem.Array[obliv.Elem] {
	t.Helper()
	a, err := Load(sp, recs)
	if err != nil {
		panic(err)
	}
	return a
}

// testSorter picks a cheap exact sorter for tiny inputs and the real
// cache-agnostic bitonic sorter otherwise, so the suite exercises both.
func testSorter(n int) obliv.Sorter {
	if n <= 64 {
		return obliv.SelectionNetwork{}
	}
	return bitonic.CacheAgnostic{}
}

func randRecords(src *prng.Source, n int, keySpread, valSpread uint64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: src.Uint64n(keySpread), Val: src.Uint64n(valSpread)}
	}
	return recs
}

func checkRecords(t *testing.T, got, want []Record, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d records, want %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %v, want %v\ngot  %v\nwant %v", label, i, got[i], want[i], got, want)
		}
	}
}

var testSizes = []int{1, 2, 3, 7, 8, 17, 33, 100, 129}

func TestCompactRandom(t *testing.T) {
	src := prng.New(101)
	pred := func(r Record) bool { return r.Val%3 == 0 }
	for _, n := range testSizes {
		recs := randRecords(src, n, 25, 1000)
		var want []Record
		for _, r := range recs {
			if pred(r) {
				want = append(want, r)
			}
		}
		sp := mem.NewSpace()
		a := mustLoad(t, sp, recs)
		count := Compact(forkjoin.Serial(), sp, NewArena(), a, pred, testSorter(a.Len()))
		if count != len(want) {
			t.Fatalf("n=%d: Compact count = %d, want %d", n, count, len(want))
		}
		checkRecords(t, Unload(a), want, "Compact")
	}
}

func TestCompactNoneSurvive(t *testing.T) {
	sp := mem.NewSpace()
	a := mustLoad(t, sp, randRecords(prng.New(5), 16, 10, 10))
	count := Compact(forkjoin.Serial(), sp, NewArena(), a, func(Record) bool { return false }, obliv.SelectionNetwork{})
	if count != 0 || len(Unload(a)) != 0 {
		t.Fatalf("expected empty result, got count=%d records=%v", count, Unload(a))
	}
}

func TestDistinctRandom(t *testing.T) {
	src := prng.New(202)
	for _, n := range testSizes {
		recs := randRecords(src, n, 12, 1000) // heavy duplication
		seen := map[uint64]bool{}
		var want []Record
		for _, r := range recs {
			if !seen[r.Key] {
				seen[r.Key] = true
				want = append(want, r)
			}
		}
		sp := mem.NewSpace()
		a := mustLoad(t, sp, recs)
		count := Distinct(forkjoin.Serial(), sp, NewArena(), a, testSorter(a.Len()))
		if count != len(want) {
			t.Fatalf("n=%d: Distinct count = %d, want %d", n, count, len(want))
		}
		checkRecords(t, Unload(a), want, "Distinct")
	}
}

func refGroupBy(recs []Record, agg AggKind) []Record {
	aggs := map[uint64]uint64{}
	var order []uint64
	for _, r := range recs {
		cur, ok := aggs[r.Key]
		if !ok {
			order = append(order, r.Key)
			switch agg {
			case AggCount:
				aggs[r.Key] = 1
			default:
				aggs[r.Key] = r.Val
			}
			continue
		}
		switch agg {
		case AggSum:
			aggs[r.Key] = cur + r.Val
		case AggCount:
			aggs[r.Key] = cur + 1
		case AggMin:
			if r.Val < cur {
				aggs[r.Key] = r.Val
			}
		case AggMax:
			if r.Val > cur {
				aggs[r.Key] = r.Val
			}
		}
	}
	out := make([]Record, len(order))
	for i, k := range order {
		out[i] = Record{Key: k, Val: aggs[k]}
	}
	return out
}

func TestGroupByRandom(t *testing.T) {
	src := prng.New(303)
	for _, agg := range []AggKind{AggSum, AggCount, AggMin, AggMax} {
		for _, n := range testSizes {
			recs := randRecords(src, n, 10, 500)
			want := refGroupBy(recs, agg)
			sp := mem.NewSpace()
			a := mustLoad(t, sp, recs)
			count := GroupBy(forkjoin.Serial(), sp, NewArena(), a, agg, testSorter(a.Len()))
			if count != len(want) {
				t.Fatalf("agg=%d n=%d: GroupBy count = %d, want %d", agg, n, count, len(want))
			}
			checkRecords(t, Unload(a), want, "GroupBy")
		}
	}
}

func TestJoinRandom(t *testing.T) {
	src := prng.New(404)
	for _, nl := range []int{1, 5, 16, 33} {
		for _, nr := range []int{1, 7, 16, 50} {
			// Left: distinct keys drawn sparsely so some right keys miss.
			perm := src.Perm(3 * nl)
			lrecs := make([]Record, nl)
			for i := range lrecs {
				lrecs[i] = Record{Key: uint64(perm[i]), Val: src.Uint64n(1000)}
			}
			rrecs := randRecords(src, nr, uint64(3*nl), 1000)

			lval := map[uint64]uint64{}
			for _, r := range lrecs {
				lval[r.Key] = r.Val
			}
			var want []Joined
			for _, r := range rrecs {
				if v, ok := lval[r.Key]; ok {
					want = append(want, Joined{Key: r.Key, LeftVal: v, RightVal: r.Val})
				}
			}

			sp := mem.NewSpace()
			left, right := mustLoad(t, sp, lrecs), mustLoad(t, sp, rrecs)
			out, count := Join(forkjoin.Serial(), sp, NewArena(), left, right, testSorter(obliv.NextPow2(left.Len()+right.Len())))
			if count != len(want) {
				t.Fatalf("nl=%d nr=%d: Join count = %d, want %d", nl, nr, count, len(want))
			}
			got := UnloadJoined(out)
			if len(got) != len(want) {
				t.Fatalf("nl=%d nr=%d: got %d joined records, want %d", nl, nr, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("nl=%d nr=%d: joined record %d = %v, want %v", nl, nr, i, got[i], want[i])
				}
			}
		}
	}
}

func TestJoinNoMatches(t *testing.T) {
	sp := mem.NewSpace()
	left := mustLoad(t, sp, []Record{{Key: 1, Val: 10}, {Key: 2, Val: 20}})
	right := mustLoad(t, sp, []Record{{Key: 7, Val: 1}, {Key: 8, Val: 2}, {Key: 9, Val: 3}})
	out, count := Join(forkjoin.Serial(), sp, NewArena(), left, right, obliv.SelectionNetwork{})
	if count != 0 || len(UnloadJoined(out)) != 0 {
		t.Fatalf("expected no matches, got count=%d %v", count, UnloadJoined(out))
	}
}

func TestTopKRandom(t *testing.T) {
	src := prng.New(505)
	for _, n := range testSizes {
		for _, k := range []int{0, 1, n / 2, n, n + 5} {
			recs := make([]Record, n)
			seen := map[uint64]bool{}
			for i := range recs {
				v := src.Uint64n(1 << 30)
				for seen[v] {
					v = src.Uint64n(1 << 30)
				}
				seen[v] = true
				recs[i] = Record{Key: uint64(i), Val: v} // distinct values: exact reference
			}
			want := append([]Record(nil), recs...)
			sort.Slice(want, func(i, j int) bool { return want[i].Val > want[j].Val })
			if k < len(want) {
				want = want[:k]
			}

			sp := mem.NewSpace()
			a := mustLoad(t, sp, recs)
			count := TopK(forkjoin.Serial(), sp, NewArena(), a, k, testSorter(a.Len()))
			wantCount := k
			if wantCount > n {
				wantCount = n
			}
			if count != wantCount {
				t.Fatalf("n=%d k=%d: TopK count = %d, want %d", n, k, count, wantCount)
			}
			checkRecords(t, Unload(a), want, "TopK")
		}
	}
}

// TestTopKTiesAndZeros drives the Val==0 / filler key-collision corner: the
// survivors must still be a valid top-k multiset.
func TestTopKTiesAndZeros(t *testing.T) {
	src := prng.New(606)
	for trial := 0; trial < 20; trial++ {
		n := 5 + src.Intn(20)
		k := src.Intn(n + 2)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{Key: uint64(i), Val: src.Uint64n(3)} // many ties, many zeros
		}
		vals := make([]uint64, n)
		for i, r := range recs {
			vals[i] = r.Val
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })

		sp := mem.NewSpace()
		a := mustLoad(t, sp, recs)
		count := TopK(forkjoin.Serial(), sp, NewArena(), a, k, obliv.SelectionNetwork{})
		got := Unload(a)
		wantCount := k
		if wantCount > n {
			wantCount = n
		}
		if count != wantCount || len(got) != wantCount {
			t.Fatalf("n=%d k=%d: count=%d len=%d, want %d", n, k, count, len(got), wantCount)
		}
		for i, r := range got {
			if r.Val != vals[i] {
				t.Fatalf("n=%d k=%d: survivor %d has val %d, want %d (vals %v, got %v)", n, k, i, r.Val, vals[i], vals, got)
			}
			if recs[r.Key].Val != r.Val {
				t.Fatalf("n=%d k=%d: survivor %v is not an input record", n, k, r)
			}
		}
	}
}

// TestLoadRejectsOutOfRange pins the boundary contract: keys >= KeyLimit
// and relations > MaxRows would silently corrupt the packed composite sort
// keys, so Load must reject both with its typed errors.
func TestLoadRejectsOutOfRange(t *testing.T) {
	sp := mem.NewSpace()
	if _, err := Load(sp, []Record{{Key: KeyLimit, Val: 1}}); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("key = KeyLimit: err = %v, want ErrKeyTooLarge", err)
	}
	if a, err := Load(sp, []Record{{Key: KeyLimit - 1, Val: 1}}); err != nil || a == nil {
		t.Fatalf("key = KeyLimit-1 rejected: %v", err)
	}
	big := make([]Record, MaxRows+1)
	if _, err := Load(sp, big); !errors.Is(err, ErrTooManyRows) {
		t.Fatalf("MaxRows+1 records: err = %v, want ErrTooManyRows", err)
	}
}

// TestArenaReuseMatchesFreshScratch runs the same operator pipeline with a
// shared arena and with fresh per-call scratch and asserts identical
// results — scratch reuse must be invisible to the operator semantics.
func TestArenaReuseMatchesFreshScratch(t *testing.T) {
	src := prng.New(909)
	recs := randRecords(src, 100, 12, 1000)
	run := func(ar *Arena) ([]Record, []Record) {
		sp := mem.NewSpace()
		srt := bitonic.CacheAgnostic{}
		a := mustLoad(t, sp, recs)
		Distinct(forkjoin.Serial(), sp, ar, a, srt)
		b := mustLoad(t, sp, recs)
		GroupBy(forkjoin.Serial(), sp, ar, b, AggSum, srt)
		return Unload(a), Unload(b)
	}
	d1, g1 := run(NewArena())
	d2, g2 := run(nil)
	checkRecords(t, d1, d2, "Distinct arena vs fresh")
	checkRecords(t, g1, g2, "GroupBy arena vs fresh")
}

// TestArenaRebindsAcrossSpaces holds one arena across two independent
// address spaces: cached arrays from the first space must not be handed
// out in the second (their addresses would alias the second space's own
// allocations), so the arena must transparently reallocate.
func TestArenaRebindsAcrossSpaces(t *testing.T) {
	ar := NewArena()
	s1 := mem.NewSpace()
	a1 := ar.ElemScratch(s1, 64)
	s2 := mem.NewSpace()
	a2 := ar.ElemScratch(s2, 64)
	if &a1.Data()[0] == &a2.Data()[0] {
		t.Fatal("arena handed out a cached array across address spaces")
	}
	a3 := ar.ElemScratch(s2, 64)
	if &a2.Data()[0] != &a3.Data()[0] {
		t.Fatal("arena failed to reuse its cache within one space")
	}

	// End to end: one arena across two spaces/runs yields the same rows.
	src := prng.New(1001)
	recs := randRecords(src, 80, 9, 500)
	arr := NewArena()
	var got [2][]Record
	for round := 0; round < 2; round++ {
		sp := mem.NewSpace()
		a := mustLoad(t, sp, recs)
		GroupBy(forkjoin.Serial(), sp, arr, a, AggSum, bitonic.CacheAgnostic{})
		got[round] = Unload(a)
	}
	checkRecords(t, got[1], got[0], "arena across spaces")
}

// TestMarkBoundariesParallelRace stresses the boundary scan with many
// forked leaves so the race detector can see any neighbor read racing a
// write (markBoundaries writes marks via a scratch array for this reason).
func TestMarkBoundariesParallelRace(t *testing.T) {
	src := prng.New(808)
	recs := randRecords(src, 1<<13, 64, 1000)
	forkjoin.RunParallel(8, func(c *forkjoin.Ctx) {
		sp := mem.NewSpace()
		srt := bitonic.CacheAgnostic{}
		a := mustLoad(t, sp, recs)
		if got, want := Distinct(c, sp, NewArena(), a, srt), 64; got != want {
			t.Errorf("Distinct under parallel pool: %d keys, want %d", got, want)
		}
	})
}

// TestOperatorsParallel smoke-tests every operator under the real
// work-stealing pool (the race detector covers the forking passes).
func TestOperatorsParallel(t *testing.T) {
	src := prng.New(707)
	recs := randRecords(src, 200, 15, 1000)
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		sp := mem.NewSpace()
		srt := bitonic.CacheAgnostic{}

		a := mustLoad(t, sp, recs)
		Compact(c, sp, NewArena(), a, func(r Record) bool { return r.Val%2 == 0 }, srt)

		b := mustLoad(t, sp, recs)
		Distinct(c, sp, nil, b, srt)

		g := mustLoad(t, sp, recs)
		GroupBy(c, sp, NewArena(), g, AggSum, srt)

		tk := mustLoad(t, sp, recs)
		TopK(c, sp, NewArena(), tk, 10, srt)

		left := mustLoad(t, sp, []Record{{Key: 1, Val: 5}, {Key: 2, Val: 6}})
		right := mustLoad(t, sp, recs[:50])
		Join(c, sp, NewArena(), left, right, srt)
	})
}
