// Package relops implements data-oblivious relational operators over
// multi-column (keys..., value) records — the private-analytics workload
// layer the paper motivates in §1 (analytics on secret databases hosted on
// secure multicore processors).
//
// Every operator is composed entirely from the oblivious building blocks
// of internal/obliv (oblivious sorting networks, parallel prefix scans,
// segmented aggregation and propagation) running in the binary fork-join
// model, so each operator inherits the work/span/cache bounds of the
// primitives it is built from and — crucially — produces a memory trace
// that is a deterministic function of the *relation sizes and schema
// widths only*, never of the record contents. The test suite asserts this
// by trace-fingerprint equality across same-shape, different-content
// inputs.
//
// Representation: a relation of n width-w records lives in a Rel — a
// power-of-two obliv.Elem array (Load pads with fillers) plus its public
// key-column count. Within an element,
//
//	Key  — key column 0
//	Key2 — key column 1 (width-2 relations)
//	Val  — the record's payload value
//	Aux  — the record's original position (stable tie-break, < MaxRows)
//	Lbl  — scratch (aggregates, joined values)
//	Mark — scratch survivor flag used by the compaction passes
//
// Sort keys are no longer packed into one word: every sort materializes a
// width-parameterized obliv.KeySchedule — one cached word plane per key
// column — and the networks compare the cached vectors lexicographically,
// breaking full ties by the elements' in-register (Kind, Tag, Aux) triple
// (obliv.TiePos), which realizes the logical (key columns..., position)
// order without a dedicated position plane of comparator traffic. Key
// columns therefore span the full uint64 range below the filler sentinel
// (KeyLimit = obliv.InfKey) and relations may hold up to MaxRows = 2^40
// rows — both limits derive from the schedule's sentinel layout rather
// than from bit-packing headroom.
//
// Operators keep the array length fixed: records that logically leave a
// relation (filtered rows, duplicate keys, non-matching join rows) become
// fillers sorted to the tail, so the occupancy of the relation is never
// visible in the access pattern. Survivor counts are computed from raw
// memory outside the adversary's view (harness diagnostics, same
// convention as obliv.BinPlace's overflow count).
//
// Two execution surfaces share these passes: the stand-alone operators
// (Compact, Distinct, GroupBy, Join, TopK) and the fused executor
// (Execute, engine.go) that runs the pass sequence produced by the
// internal/plan sort-fusion planner. Both sort through the key-schedule
// fast path (obliv.ScheduledSorter — now a hard requirement of the
// relational sorts), and both draw their scratch from an Arena when one is
// supplied.
package relops

import (
	"fmt"

	"oblivmc/internal/faultinject"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

const (
	// MaxKeyCols is the number of key columns a relation may declare — the
	// key words an obliv.Elem carries (Key, Key2).
	MaxKeyCols = 2
	// maxRowsLog is log2(MaxRows), kept separate so the error message and
	// the bound derive from one constant without ever converting MaxRows
	// to a (possibly 32-bit) int.
	maxRowsLog = 40
	// MaxRows bounds the number of records in a relation. Positions appear
	// as schedule words in the compaction sorts, whose filler sentinel is
	// obliv.InfKey, so positions must stay strictly below it; 2^40 is the
	// enforced (memory-realistic) cap under that ceiling.
	MaxRows = 1 << maxRowsLog
	// KeyLimit bounds record key column values: obliv.InfKey is the filler
	// sentinel of every schedule word, so key columns span the full uint64
	// range below it (0 .. 2^64-2).
	KeyLimit = obliv.InfKey
	// passGrain is the leaf size of the operators' fixed elementwise passes
	// outside metered mode. At the forkjoin default of 64 the fork
	// bookkeeping rivaled these passes' loop bodies on 2^20+ relations —
	// the serial-equivalent tail behind join_all losing throughput at 4
	// workers. 2^10 elements per leaf keeps stealing profitable while a
	// 2^20 pass still splits 2^10 ways; metered runs are pinned to grain 1
	// by forkjoin.grainFor, so fingerprints never move when this is retuned.
	passGrain = 1 << 10
)

// Boundary errors. The messages are derived from the active constants so
// they can never drift from the enforced bounds.
var (
	// ErrKeyTooLarge is returned for a record key column >= KeyLimit.
	ErrKeyTooLarge = fmt.Errorf("relops: record key column exceeds KeyLimit (max key %d)", uint64(KeyLimit-1))
	// ErrTooManyRows is returned for a relation of more than MaxRows
	// records.
	ErrTooManyRows = fmt.Errorf("relops: relation exceeds MaxRows (2^%d rows)", maxRowsLog)
	// ErrBadWidth is returned for a key-column count outside
	// [1, MaxKeyCols].
	ErrBadWidth = fmt.Errorf("relops: key-column count must be in [1, %d]", MaxKeyCols)
	// ErrBadCapacity is returned for a join output capacity (maxOut)
	// outside [1, MaxRows] — the capacity is a public relation shape and is
	// bounded like a row count.
	ErrBadCapacity = fmt.Errorf("relops: join capacity maxOut must be in [1, 2^%d] rows", maxRowsLog)
	// ErrJoinOverflow is returned when a join's true match count exceeds
	// the caller-supplied public output capacity maxOut. The match count is
	// data, so the capacity must be chosen from public knowledge (at worst
	// len(left)*len(right), itself capped by the MaxRows capacity bound).
	ErrJoinOverflow = fmt.Errorf("relops: join match count exceeds the public output capacity maxOut (capacities range up to 2^%d rows)", maxRowsLog)
	// ErrCapTooLarge is returned by JoinCapAdvise (and the JoinCapAuto
	// resolution built on it) when the worst-case match bound Σ|L_g|·|R_g|
	// exceeds MaxRows: no legal capacity can hold the join, so the caller
	// must shrink the inputs rather than retry.
	ErrCapTooLarge = fmt.Errorf("relops: advised join capacity exceeds MaxRows (2^%d rows)", maxRowsLog)
)

// CheckCapacity validates a public join output capacity against the same
// row bound CheckShape enforces, without materializing anything. maxOut is
// an int64 so the above-MaxRows range stays expressible on 32-bit
// platforms.
func CheckCapacity(maxOut int64) error {
	if maxOut < 1 || maxOut > MaxRows {
		return fmt.Errorf("%w: capacity %d", ErrBadCapacity, maxOut)
	}
	return nil
}

// Record is one relational (keys..., value) record. Key is column 0; Key2
// is column 1 and is ignored by width-1 relations.
type Record struct {
	Key, Key2, Val uint64
}

// Col returns key column k of r.
func (r Record) Col(k int) uint64 {
	if k == 0 {
		return r.Key
	}
	return r.Key2
}

// Rel is a loaded relation: the padded power-of-two element array plus its
// public schema width (key-column count). The width, like the row count,
// is query shape — it determines the sort schedules' word count and
// nothing about the record contents.
type Rel struct {
	A *mem.Array[obliv.Elem]
	W int
}

// Len returns the padded array length.
func (r Rel) Len() int { return r.A.Len() }

// CheckShape validates a public relation shape (row count, key-column
// count) against the packing bounds without materializing anything. Load
// applies it; callers with shape-only knowledge (API validation, tests of
// bounds too large to allocate) use it directly. rows is an int64 so the
// above-MaxRows range stays expressible on 32-bit platforms.
func CheckShape(rows int64, cols int) error {
	if cols < 1 || cols > MaxKeyCols {
		return fmt.Errorf("%w: %d columns", ErrBadWidth, cols)
	}
	if rows > MaxRows {
		return fmt.Errorf("%w: %d records", ErrTooManyRows, rows)
	}
	return nil
}

// Load validates recs against the schedule bounds (key columns < KeyLimit,
// at most MaxRows records, 1 <= w <= MaxKeyCols — violations return
// ErrKeyTooLarge / ErrTooManyRows / ErrBadWidth) and places them into a
// fresh power-of-two element array padded with fillers, recording each
// record's original position in Aux. w is the relation's public key-column
// count; columns beyond w are ignored. The copy is a harness operation
// (input loading) and is not instrumented.
func Load(sp *mem.Space, recs []Record, w int) (Rel, error) {
	if err := CheckShape(int64(len(recs)), w); err != nil {
		return Rel{}, err
	}
	for i, r := range recs {
		for k := 0; k < w; k++ {
			if r.Col(k) >= KeyLimit {
				return Rel{}, fmt.Errorf("%w: record %d column %d key %d", ErrKeyTooLarge, i, k, r.Col(k))
			}
		}
	}
	a := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(len(recs)))
	for i, r := range recs {
		e := obliv.Elem{Key: r.Key, Val: r.Val, Aux: uint64(i), Kind: obliv.Real}
		if w > 1 {
			e.Key2 = r.Key2
		}
		a.Data()[i] = e
	}
	return Rel{A: a, W: w}, nil
}

// Unload extracts the real records of r in array order. Like Load it is a
// harness operation outside the adversary's view.
func Unload(r Rel) []Record {
	out := make([]Record, 0, r.Len())
	for _, e := range r.A.Data() {
		if e.Kind == obliv.Real {
			out = append(out, Record{Key: e.Key, Key2: e.Key2, Val: e.Val})
		}
	}
	return out
}

// countReal counts the real records of a from raw memory (outside the
// adversary's view; diagnostics only).
func countReal(a *mem.Array[obliv.Elem]) int {
	n := 0
	for _, e := range a.Data() {
		if e.Kind == obliv.Real {
			n++
		}
	}
	return n
}

// keyCol returns key column k of e.
func keyCol(e obliv.Elem, k int) uint64 {
	if k == 0 {
		return e.Key
	}
	return e.Key2
}

// schedule is the public description of one sort's key layout: the number
// of words per element, the emitter filling them, and the tie-break rule.
// Width, emitter identity, and tie rule are functions of the relation's
// schema, never of its contents.
type schedule struct {
	w    int
	tie  obliv.TieBreak
	emit func(e obliv.Elem, out []uint64)
}

// keyIdxSched is the (key columns..., position) schedule: it orders by the
// key tuple with a stable, deterministic position tie-break, and sorts
// fillers last (every cached word of a filler is the obliv.InfKey
// sentinel, above every legal key column). Only the key columns occupy
// schedule planes — the position word of the logical order rides inside
// the elements via obliv.TiePos, so widening the key never pays a
// dedicated position plane of comparator traffic.
func keyIdxSched(w int) schedule {
	return schedule{w: w, tie: obliv.TiePos, emit: func(e obliv.Elem, out []uint64) {
		if e.Kind != obliv.Real {
			fillInf(out)
			return
		}
		for k := 0; k < w; k++ {
			out[k] = keyCol(e, k)
		}
	}}
}

// posSched orders real elements by original position with fillers last —
// the compaction schedule that restores the operators' public output
// order.
func posSched() schedule {
	return schedule{w: 1, emit: func(e obliv.Elem, out []uint64) {
		if e.Kind != obliv.Real {
			out[0] = obliv.InfKey
			return
		}
		out[0] = e.Aux
	}}
}

// descValSched orders real elements by descending value with fillers last
// (TopK's schedule; a record with Val == 0 shares obliv.InfKey with the
// fillers, which every pass here tolerates).
func descValSched() schedule {
	return schedule{w: 1, emit: func(e obliv.Elem, out []uint64) {
		if e.Kind != obliv.Real {
			out[0] = obliv.InfKey
			return
		}
		out[0] = ^e.Val
	}}
}

// markSched orders marked real elements by original position and sends
// everything else to the filler tail — compactMarked's schedule.
func markSched() schedule {
	return schedule{w: 1, emit: func(e obliv.Elem, out []uint64) {
		if e.Kind != obliv.Real || e.Mark == 0 {
			out[0] = obliv.InfKey
			return
		}
		out[0] = e.Aux
	}}
}

func fillInf(out []uint64) {
	for i := range out {
		out[i] = obliv.InfKey
	}
}

// sameGroup reports whether two adjacent elements of a key-sorted relation
// belong to the same key group at width w. Fillers form their own group:
// grouping is Kind-aware, so even a real record whose key columns all
// carry the maximal legal value can never merge with the filler tail.
func sameGroup(w int) func(x, y obliv.Elem) bool {
	return func(x, y obliv.Elem) bool {
		if x.Kind != y.Kind {
			return false
		}
		if x.Kind != obliv.Real {
			return true
		}
		if x.Key != y.Key {
			return false
		}
		return w < 2 || x.Key2 == y.Key2
	}
}

// sortSched sorts all of a ascending by the lexicographic schedule sc. The
// key words are materialized once into an arena-backed obliv.KeySchedule
// (one fixed linear pass) and the sorter orders by the cached vectors — the
// relational sorts require obliv.ScheduledSorter since no single closure
// word can express a multi-word schedule. Backend selection happens inside
// the sorter: the keyed bitonic networks run everywhere, and the
// shuffle-then-sort backend (core.ShuffleSorter) switches between its
// composition and its bitonic fallback at a public size crossover — a
// function of a's length alone, so which machinery runs is itself query
// shape. Either way every pass moves the schedule planes in lockstep with
// the elements, and the trace shape depends only on public quantities:
// (length, sc.w) exactly for the networks, (length, sc.w, coins, permuted
// key order) for the shuffle composition (input-independent in
// distribution over its secret permutation; see core.ShuffleSorter).
func sortSched(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, a *mem.Array[obliv.Elem], sc schedule, srt obliv.Sorter) {
	n := a.Len()
	if n <= 1 {
		return
	}
	// Sort-pass seam: cancellation checkpoint plus the chaos harness's
	// injection point (a no-op unless a test armed it).
	c.Check("relops.sort")
	faultinject.Hit("sort.pass")
	ss, ok := srt.(obliv.ScheduledSorter)
	if !ok {
		panic(fmt.Sprintf("relops: sorter %s does not support key schedules (obliv.ScheduledSorter)", srt.Name()))
	}
	ks := ar.Keys(sp, n, sc.w)
	ks.Tie = sc.tie
	kscr := ar.KeyScratch(sp, n, sc.w)
	kscr.Tie = sc.tie // cache-agnostic merges swap the schedule roles
	obliv.BuildKeySchedule(c, a, ks, 0, n, sc.emit)
	ss.SortScheduled(c, sp, a, ks, ar.ElemScratch(sp, n), kscr, 0, n)
}

// markBoundaries sets Mark=1 on every real element whose predecessor
// belongs to a different key group (the group heads of a key-sorted
// relation) and Mark=0 elsewhere. The neighbor reads form a fixed access
// pattern. Like obliv.PropagateFirst, the boundary scan writes to a
// scratch array so no leaf reads a position another leaf writes (a
// read-and-write pass over the same positions would race under the
// parallel executor).
func markBoundaries(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, r Rel) {
	n := r.Len()
	a := r.A
	same := sameGroup(r.W)
	head := ar.Marks(sp, n)
	forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			h := i == 0
			if i > 0 {
				prev := a.Get(c, i-1)
				c.Op(1)
				h = !same(prev, e)
			}
			var b uint8
			if h && e.Kind == obliv.Real {
				b = 1
			}
			head.Set(c, i, b)
		}
	})
	forkjoin.ParallelRange(c, 0, n, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			e.Mark = head.Get(c, i)
			a.Set(c, i, e)
		}
	})
}

// compactMarked obliviously compacts a in place: records with Mark==1 move
// to the front ordered by original position (Aux), everything else becomes
// a filler, and all marks are cleared. Returns the survivor count (raw
// read, outside the adversary's view). This is the oblivious tight
// compaction at the heart of the stand-alone operators: one
// data-independent sort plus one elementwise pass.
func compactMarked(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, a *mem.Array[obliv.Elem], srt obliv.Sorter) int {
	sortSched(c, sp, ar, a, markSched(), srt)
	forkjoin.ParallelRange(c, 0, a.Len(), passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			c.Op(1)
			if e.Kind != obliv.Real || e.Mark == 0 {
				e = obliv.Elem{}
			}
			e.Mark = 0
			a.Set(c, i, e)
		}
	})
	return countReal(a)
}
