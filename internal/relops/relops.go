// Package relops implements data-oblivious relational operators over
// (key, value) records — the private-analytics workload layer the paper
// motivates in §1 (analytics on secret databases hosted on secure
// multicore processors).
//
// Every operator is composed entirely from the oblivious building blocks
// of internal/obliv (oblivious sorting networks, parallel prefix scans,
// segmented aggregation and propagation) running in the binary fork-join
// model, so each operator inherits the work/span/cache bounds of the
// primitives it is built from and — crucially — produces a memory trace
// that is a deterministic function of the *relation sizes only*, never of
// the record contents. The test suite asserts this by trace-fingerprint
// equality across same-shape, different-content inputs.
//
// Representation: a relation of n records lives in a power-of-two
// obliv.Elem array (Load pads with fillers). Within an element,
//
//	Key  — the record's relational key (must be < KeyLimit)
//	Val  — the record's payload value
//	Aux  — the record's original position (stable tie-break, < MaxRows)
//	Lbl  — scratch (aggregates, joined values)
//	Mark — scratch survivor flag used by the compaction passes
//
// Operators keep the array length fixed: records that logically leave a
// relation (filtered rows, duplicate keys, non-matching join rows) become
// fillers sorted to the tail, so the occupancy of the relation is never
// visible in the access pattern. Survivor counts are computed from raw
// memory outside the adversary's view (harness diagnostics, same
// convention as obliv.BinPlace's overflow count).
//
// Two execution surfaces share these passes: the stand-alone operators
// (Compact, Distinct, GroupBy, Join, TopK) and the fused executor
// (Execute, engine.go) that runs the pass sequence produced by the
// internal/plan sort-fusion planner. Both sort through the key-schedule
// fast path (obliv.ScheduledSorter) when the sorter supports it, and both
// draw their scratch from an Arena when one is supplied.
package relops

import (
	"errors"
	"fmt"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

const (
	// idxBits is the width of the original-position tie-break packed into
	// the low bits of composite sort keys.
	idxBits = 20
	// MaxRows bounds the number of records in a relation.
	MaxRows = 1 << idxBits
	// KeyLimit bounds record keys: composite sort keys shift the key left
	// by idxBits+1 bits and must stay below obliv.MaxKey = 2^62.
	KeyLimit = uint64(1) << 40
)

// Boundary errors: out-of-range inputs would silently corrupt the packed
// (key, position) composite sort keys, so Load rejects them up front.
var (
	// ErrKeyTooLarge is returned for a record key >= KeyLimit.
	ErrKeyTooLarge = errors.New("relops: record key exceeds KeyLimit (2^40-1)")
	// ErrTooManyRows is returned for a relation of more than MaxRows
	// records.
	ErrTooManyRows = errors.New("relops: relation exceeds MaxRows (2^20)")
)

// Record is one relational (key, value) record.
type Record struct {
	Key, Val uint64
}

// Load validates recs against the packing bounds (keys < KeyLimit, at most
// MaxRows records — violations return ErrKeyTooLarge / ErrTooManyRows) and
// places them into a fresh power-of-two element array padded with fillers,
// recording each record's original position in Aux. The copy is a harness
// operation (input loading) and is not instrumented.
func Load(sp *mem.Space, recs []Record) (*mem.Array[obliv.Elem], error) {
	if len(recs) > MaxRows {
		return nil, fmt.Errorf("%w: %d records", ErrTooManyRows, len(recs))
	}
	for i, r := range recs {
		if r.Key >= KeyLimit {
			return nil, fmt.Errorf("%w: record %d key %d", ErrKeyTooLarge, i, r.Key)
		}
	}
	a := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(len(recs)))
	for i, r := range recs {
		a.Data()[i] = obliv.Elem{Key: r.Key, Val: r.Val, Aux: uint64(i), Kind: obliv.Real}
	}
	return a, nil
}

// Unload extracts the real records of a in array order. Like Load it is a
// harness operation outside the adversary's view.
func Unload(a *mem.Array[obliv.Elem]) []Record {
	out := make([]Record, 0, a.Len())
	for _, e := range a.Data() {
		if e.Kind == obliv.Real {
			out = append(out, Record{Key: e.Key, Val: e.Val})
		}
	}
	return out
}

// countReal counts the real records of a from raw memory (outside the
// adversary's view; diagnostics only).
func countReal(a *mem.Array[obliv.Elem]) int {
	n := 0
	for _, e := range a.Data() {
		if e.Kind == obliv.Real {
			n++
		}
	}
	return n
}

// keyIdx is the composite (Key, original position) sort key: it orders by
// key with a stable, deterministic tie-break, and sorts fillers last.
func keyIdx(e obliv.Elem) uint64 {
	if e.Kind != obliv.Real {
		return obliv.InfKey
	}
	return e.Key<<idxBits | e.Aux
}

// groupKey groups real elements by Key; fillers form their own trailing
// group.
func groupKey(e obliv.Elem) uint64 {
	if e.Kind != obliv.Real {
		return obliv.InfKey
	}
	return e.Key
}

// posKey orders real elements by original position with fillers last — the
// compaction key that restores the operators' public output order.
func posKey(e obliv.Elem) uint64 {
	if e.Kind != obliv.Real {
		return obliv.InfKey
	}
	return e.Aux
}

// descValKey orders real elements by descending value with fillers last
// (TopK's sort key; a record with Val == 0 shares obliv.InfKey with the
// fillers, which every pass here tolerates).
func descValKey(e obliv.Elem) uint64 {
	if e.Kind != obliv.Real {
		return obliv.InfKey
	}
	return ^e.Val
}

// sortBy sorts all of a ascending by key. When srt supports the
// key-schedule fast path and an arena is supplied, the key is materialized
// once into an arena-backed word array (one fixed linear pass) and the
// network compares cached words; otherwise it falls back to the
// closure-keyed Sorter.Sort, which recomputes key twice per comparator (the
// pre-keysched behavior, kept as the nil-arena baseline). Either way the
// comparator schedule — and hence the trace shape — depends only on a's
// length.
func sortBy(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, a *mem.Array[obliv.Elem], key func(obliv.Elem) uint64, srt obliv.Sorter) {
	n := a.Len()
	if n <= 1 {
		return
	}
	if ss, ok := srt.(obliv.ScheduledSorter); ok && ar != nil {
		ks := ar.Keys(sp, n)
		obliv.BuildKeySchedule(c, a, ks, 0, n, key)
		ss.SortScheduled(c, a, ks, ar.ElemScratch(sp, n), ar.KeyScratch(sp, n), 0, n)
		return
	}
	srt.Sort(c, sp, a, 0, n, key)
}

// markBoundaries sets Mark=1 on every real element whose predecessor
// belongs to a different Key group (the group heads of a key-sorted array)
// and Mark=0 elsewhere. The neighbor reads form a fixed access pattern.
// Like obliv.PropagateFirst, the boundary scan writes to a scratch array
// so no leaf reads a position another leaf writes (a read-and-write pass
// over the same positions would race under the parallel executor).
func markBoundaries(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, a *mem.Array[obliv.Elem]) {
	n := a.Len()
	head := ar.Marks(sp, n)
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			h := i == 0
			if i > 0 {
				prev := a.Get(c, i-1)
				c.Op(1)
				h = groupKey(prev) != groupKey(e)
			}
			var b uint8
			if h && e.Kind == obliv.Real {
				b = 1
			}
			head.Set(c, i, b)
		}
	})
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			e.Mark = head.Get(c, i)
			a.Set(c, i, e)
		}
	})
}

// compactMarked obliviously compacts a in place: records with Mark==1 move
// to the front ordered by original position (Aux), everything else becomes
// a filler, and all marks are cleared. Returns the survivor count (raw
// read, outside the adversary's view). This is the oblivious tight
// compaction at the heart of the stand-alone operators: one
// data-independent sort plus one elementwise pass.
func compactMarked(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, a *mem.Array[obliv.Elem], srt obliv.Sorter) int {
	key := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real || e.Mark == 0 {
			return obliv.InfKey
		}
		return e.Aux
	}
	sortBy(c, sp, ar, a, key, srt)
	forkjoin.ParallelRange(c, 0, a.Len(), 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			c.Op(1)
			if e.Kind != obliv.Real || e.Mark == 0 {
				e = obliv.Elem{}
			}
			e.Mark = 0
			a.Set(c, i, e)
		}
	})
	return countReal(a)
}
