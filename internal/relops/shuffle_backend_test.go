package relops

// Shuffle-backend tests: (a) output equivalence — under the strict
// relational orders (position tie-break everywhere) every operator's
// surviving records are identical under the shuffle-then-sort and keyed
// bitonic backends, across randomized sizes, widths, and duplicate-heavy
// key distributions; (b) the trace guarantees the shuffle backend makes at
// a fixed seed — value-independence of the fingerprint (key *order*
// independence is distributional, supplied by the secret permutation; the
// variants below therefore vary values and payloads while preserving the
// rank structure, and the arbitrary-content fingerprint checks stay pinned
// to the bitonic backend in oblivious_test.go).

import (
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/obliv/oblivtest"
	"oblivmc/internal/prng"
)

// shuffleSorter forces the shuffle composition at every size; fresh per
// run (the sorter counts its sorts).
func shuffleSorter(seed uint64) obliv.Sorter {
	return &core.ShuffleSorter{FixedSeed: &seed, Crossover: 2}
}

// checkGroupByBackends runs one GroupBy instance under both backends and
// requires identical surviving records (also the body of
// FuzzGroupByBackends).
func checkGroupByBackends(t testing.TB, seed, sortSeed uint64, n, w, dist int, agg AggKind) {
	t.Helper()
	src := prng.New(seed)
	recs := genRecords(src, n, w, dist)
	run := func(srt obliv.Sorter) []Record {
		sp := mem.NewSpace()
		a := mustLoadW(t, sp, recs, w)
		GroupBy(testCtx(), sp, NewArena(), a, agg, srt)
		return Unload(a)
	}
	checkRecords(t, run(shuffleSorter(sortSeed)), run(bitonic.CacheAgnostic{}), "GroupBy backends")
}

// TestBackendEquivalenceProperty sweeps GroupBy, Distinct, Compact, and
// JoinAll over randomized sizes, both widths, and all key distributions
// (including duplicate-heavy and all-equal), asserting record-identical
// output between the backends.
func TestBackendEquivalenceProperty(t *testing.T) {
	sizes := []int{1, 2, 5, 9, 17, 24, 64, 100}
	seed := uint64(0xE0)
	for _, dist := range []int{distSpread, distDupHeavy, distAllEqual} {
		for _, w := range []int{1, 2} {
			for _, n := range sizes {
				seed++
				checkGroupByBackends(t, seed, seed*3, n, w, dist, allAggs[int(seed)%len(allAggs)])

				src := prng.New(seed ^ 0xD15)
				recs := genRecords(src, n, w, dist)
				runOp := func(srt obliv.Sorter, op func(c *forkjoin.Ctx, sp *mem.Space, r Rel, srt obliv.Sorter)) []Record {
					sp := mem.NewSpace()
					r := mustLoadW(t, sp, recs, w)
					op(testCtx(), sp, r, srt)
					return Unload(r)
				}
				distinct := func(c *forkjoin.Ctx, sp *mem.Space, r Rel, srt obliv.Sorter) {
					Distinct(c, sp, NewArena(), r, srt)
				}
				compact := func(c *forkjoin.Ctx, sp *mem.Space, r Rel, srt obliv.Sorter) {
					Compact(c, sp, NewArena(), r, func(rec Record) bool { return rec.Val%3 != 0 }, srt)
				}
				checkRecords(t, runOp(shuffleSorter(seed), distinct), runOp(bitonic.CacheAgnostic{}, distinct), "Distinct backends")
				checkRecords(t, runOp(shuffleSorter(seed), compact), runOp(bitonic.CacheAgnostic{}, compact), "Compact backends")

				if n >= 2 {
					lrecs := genRecords(src, (n+1)/2, w, dist)
					maxOut := len(lrecs)*n + 1
					runJoin := func(srt obliv.Sorter) []Joined {
						sp := mem.NewSpace()
						l := mustLoadW(t, sp, lrecs, w)
						r := mustLoadW(t, sp, recs, w)
						out, _, err := JoinAll(testCtx(), sp, NewArena(), l, r, maxOut, srt)
						if err != nil {
							t.Fatal(err)
						}
						return UnloadJoined(out)
					}
					checkJoined(t, runJoin(shuffleSorter(seed)), runJoin(bitonic.CacheAgnostic{}), "JoinAll backends")
				}
			}
		}
	}
}

// rankedRecords builds duplicate-heavy records whose key *ranks* are fixed
// by the shape (i%groups) while the numeric key values and payloads come
// from scale/bias/valSeed — the content axis the shuffle backend's
// fixed-seed fingerprint must be blind to.
func rankedRecords(n, w int, scale, bias, valSeed uint64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		rank := uint64(i % 7)
		recs[i] = Record{Key: rank*scale + bias, Val: prng.Mix64(valSeed + uint64(i))}
		if w > 1 {
			recs[i].Key2 = uint64(i%3)*scale + bias
		}
	}
	return recs
}

// TestShuffleBackendFixedSeedTraceValueIndependent is the relational half
// of the acceptance criterion: at a fixed sorter seed, a full GroupBy
// pipeline under the forced shuffle backend produces identical trace
// fingerprints across inputs whose key values and payloads differ wildly
// but whose rank structure agrees — at every tested key width.
func TestShuffleBackendFixedSeedTraceValueIndependent(t *testing.T) {
	const n = 48
	for _, w := range []int{1, 2} {
		for _, agg := range []AggKind{AggSum, AggAvg} {
			body := func(scale, bias, valSeed uint64) oblivtest.Body {
				return func(c *forkjoin.Ctx, sp *mem.Space) {
					r := mustLoadW(t, sp, rankedRecords(n, w, scale, bias, valSeed), w)
					GroupBy(c, sp, NewArena(), r, agg, shuffleSorter(0xF00D))
				}
			}
			oblivtest.FingerprintEqual(t, "GroupBy shuffle backend",
				body(1, 0, 1),
				body(1<<40, 9, 0xBEEF),
				body(0x9e3779b97f4a7c15>>2, 1<<33, 77),
			)
		}
	}
}

// TestShuffleBackendLockstep drives the shape-randomized lockstep runner
// under the forced shuffle backend: within a round every variant shares
// the shape-drawn sizes, widths, AND key ranks (keys come from the shape
// source — under shuffle-then-sort the key order is exactly the quantity
// whose hiding is distributional rather than per-seed), while payload
// values vary per variant. Views within a round must agree.
func TestShuffleBackendLockstep(t *testing.T) {
	oblivtest.Lockstep(t, "GroupBy shuffle", 4, 3, 2027,
		func(c *forkjoin.Ctx, sp *mem.Space, shape, content *prng.Source) {
			n := 1 + shape.Intn(48)
			w := 1 + shape.Intn(MaxKeyCols)
			recs := make([]Record, n)
			for i := range recs {
				recs[i] = Record{
					Key:  shape.Uint64n(6) * 0x9e3779b97f4a7c15 >> 1,
					Key2: shape.Uint64n(3),
					Val:  content.Uint64n(1 << 30), // the secret content axis
				}
			}
			r := mustLoadW(t, sp, recs, w)
			GroupBy(c, sp, NewArena(), r, AggSum, shuffleSorter(0xCAFE))
		})
}

// TestShuffleBackendTraceShapeSensitive is the sanity inverse: the forced
// shuffle backend's view must still change with the public shape.
func TestShuffleBackendTraceShapeSensitive(t *testing.T) {
	body := func(n int) oblivtest.Body {
		return func(c *forkjoin.Ctx, sp *mem.Space) {
			r := mustLoadW(t, sp, rankedRecords(n, 1, 1, 0, 1), 1)
			GroupBy(c, sp, NewArena(), r, AggSum, shuffleSorter(1))
		}
	}
	oblivtest.Different(t, "GroupBy shuffle size", body(24), body(48))
}
