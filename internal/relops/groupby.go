package relops

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// AggKind selects the aggregation function of GroupBy.
type AggKind uint8

const (
	// AggSum totals the group's values.
	AggSum AggKind = iota
	// AggCount counts the group's records.
	AggCount
	// AggMin takes the group's minimum value.
	AggMin
	// AggMax takes the group's maximum value.
	AggMax
)

// combineOf returns the associative, commutative combine and the per-record
// value extractor of agg.
func combineOf(agg AggKind) (valOf func(obliv.Elem) uint64, combine func(x, y uint64) uint64) {
	switch agg {
	case AggCount:
		return func(obliv.Elem) uint64 { return 1 },
			func(x, y uint64) uint64 { return x + y }
	case AggMin:
		return func(e obliv.Elem) uint64 { return e.Val },
			func(x, y uint64) uint64 {
				if y < x {
					return y
				}
				return x
			}
	case AggMax:
		return func(e obliv.Elem) uint64 { return e.Val },
			func(x, y uint64) uint64 {
				if y > x {
					return y
				}
				return x
			}
	default: // AggSum
		return func(e obliv.Elem) uint64 { return e.Val },
			func(x, y uint64) uint64 { return x + y }
	}
}

// GroupBy obliviously aggregates a by Key: afterwards a holds one record
// per distinct key whose Val is the aggregate of the group's values under
// agg, ordered by the earliest original position of the group's members,
// and the group count is returned.
//
// Pipeline (§F composition, mirroring the paper's group-by sketch): sort by
// (key, position), segmented suffix-aggregation gives every group head the
// full-group aggregate, a fixed neighbor-compare pass marks the heads and
// installs the aggregate as their Val, and compaction keeps only the heads.
// All phases are data-independent; the trace depends only on len(a).
// ar supplies reusable scratch (nil = allocate fresh).
func GroupBy(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, a *mem.Array[obliv.Elem], agg AggKind, srt obliv.Sorter) int {
	sortBy(c, sp, ar, a, keyIdx, srt)

	valOf, combine := combineOf(agg)
	obliv.AggregateSuffix(c, sp, a, groupKey, valOf, combine,
		func(e obliv.Elem, i int, aggVal uint64) obliv.Elem {
			e.Lbl = aggVal
			return e
		})

	// Group heads (inclusive suffix aggregate over the whole group) adopt
	// the aggregate as their value; markBoundaries then flags exactly them.
	markBoundaries(c, sp, ar, a)
	forkjoin.ParallelRange(c, 0, a.Len(), 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			c.Op(1)
			if e.Mark == 1 {
				e.Val = e.Lbl
			}
			e.Lbl = 0
			a.Set(c, i, e)
		}
	})
	return compactMarked(c, sp, ar, a, srt)
}
