package relops

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// AggKind selects the aggregation function of GroupBy.
type AggKind uint8

const (
	// AggSum totals the group's values.
	AggSum AggKind = iota
	// AggCount counts the group's records.
	AggCount
	// AggMin takes the group's minimum value.
	AggMin
	// AggMax takes the group's maximum value.
	AggMax
	// AggAvg takes the group's mean value (floor of sum/count).
	AggAvg
	// AggVar takes the group's population variance,
	// floor(E[X²]) - floor(E[X])² clamped at zero — an integer
	// approximation exact for constant groups and within rounding error
	// otherwise.
	AggVar
)

// aggStats is the compound carrier of the moment aggregates: one segmented
// scan accumulates the (sum, count) pair — plus the sum of squares for the
// second moment — so Avg and Var need a single aggregation pass, not one
// per component. Sums wrap modulo 2^64 (keep values below 2^32 if exact
// squares over large groups are required).
type aggStats struct {
	sum, sq, cnt uint64
}

func addStats(x, y aggStats) aggStats {
	return aggStats{sum: x.sum + y.sum, sq: x.sq + y.sq, cnt: x.cnt + y.cnt}
}

func statsOf(e obliv.Elem) aggStats {
	if e.Kind != obliv.Real {
		return aggStats{}
	}
	return aggStats{sum: e.Val, sq: e.Val * e.Val, cnt: 1}
}

// derive computes the final aggregate value from the group's moment
// statistics.
func (s aggStats) derive(agg AggKind) uint64 {
	if s.cnt == 0 {
		return 0
	}
	switch agg {
	case AggAvg:
		return s.sum / s.cnt
	default: // AggVar
		m := s.sum / s.cnt
		ex2 := s.sq / s.cnt
		if ex2 < m*m {
			return 0 // integer rounding can cross zero; variance cannot
		}
		return ex2 - m*m
	}
}

// momentAgg reports whether agg aggregates through the compound moment
// carrier rather than a single word.
func momentAgg(agg AggKind) bool { return agg == AggAvg || agg == AggVar }

// singletonAgg is the aggregate of a one-record group with value v — what
// the fused Distinct→GroupBy pass installs on each surviving head.
func singletonAgg(agg AggKind, v uint64) uint64 {
	switch agg {
	case AggCount:
		return 1
	case AggVar:
		return 0
	default: // Sum/Min/Max/Avg of a singleton is the value itself
		return v
	}
}

// combineOf returns the associative, commutative combine and the per-record
// value extractor of a single-word aggregation kind.
func combineOf(agg AggKind) (valOf func(obliv.Elem) uint64, combine func(x, y uint64) uint64) {
	switch agg {
	case AggCount:
		return func(obliv.Elem) uint64 { return 1 },
			func(x, y uint64) uint64 { return x + y }
	case AggMin:
		return func(e obliv.Elem) uint64 { return e.Val },
			func(x, y uint64) uint64 {
				if y < x {
					return y
				}
				return x
			}
	case AggMax:
		return func(e obliv.Elem) uint64 { return e.Val },
			func(x, y uint64) uint64 {
				if y > x {
					return y
				}
				return x
			}
	default: // AggSum
		return func(e obliv.Elem) uint64 { return e.Val },
			func(x, y uint64) uint64 { return x + y }
	}
}

// aggregateGroups runs the segmented suffix-aggregation of agg over the
// key-sorted relation r and leaves every element's group aggregate in its
// Lbl (each group head's Lbl holds the full-group aggregate). The choice
// of carrier — single word or moment statistics — is a function of agg,
// which is public query shape.
func aggregateGroups(c *forkjoin.Ctx, sp *mem.Space, r Rel, agg AggKind) {
	same := sameGroup(r.W)
	install := func(e obliv.Elem, i int, v uint64) obliv.Elem {
		e.Lbl = v
		return e
	}
	if momentAgg(agg) {
		obliv.AggregateSuffixBy(c, sp, r.A, same, statsOf, addStats,
			func(e obliv.Elem, i int, s aggStats) obliv.Elem {
				return install(e, i, s.derive(agg))
			})
		return
	}
	valOf, combine := combineOf(agg)
	obliv.AggregateSuffixBy(c, sp, r.A, same, valOf, combine, install)
}

// GroupBy obliviously aggregates r by its key columns: afterwards r holds
// one record per distinct key tuple whose Val is the aggregate of the
// group's values under agg, ordered by the earliest original position of
// the group's members, and the group count is returned.
//
// Pipeline (§F composition, mirroring the paper's group-by sketch): sort by
// (key columns..., position), segmented suffix-aggregation gives every
// group head the full-group aggregate, a fixed neighbor-compare pass marks
// the heads and installs the aggregate as their Val, and compaction keeps
// only the heads. All phases are data-independent; the trace depends only
// on (len, width, agg) — all public. ar supplies reusable scratch (nil =
// allocate fresh).
func GroupBy(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, r Rel, agg AggKind, srt obliv.Sorter) int {
	sortSched(c, sp, ar, r.A, keyIdxSched(r.W), srt)

	aggregateGroups(c, sp, r, agg)

	// Group heads (inclusive suffix aggregate over the whole group) adopt
	// the aggregate as their value; markBoundaries then flags exactly them.
	markBoundaries(c, sp, ar, r)
	a := r.A
	forkjoin.ParallelRange(c, 0, a.Len(), passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			c.Op(1)
			if e.Mark == 1 {
				e.Val = e.Lbl
			}
			e.Lbl = 0
			a.Set(c, i, e)
		}
	})
	return compactMarked(c, sp, ar, a, srt)
}
