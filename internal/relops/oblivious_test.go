package relops

// Obliviousness regression tests (DESIGN.md §3 strategy, as in
// TestCompareExchangeObliviousTrace): run each relational operator on
// different record contents of the same shape (relation sizes and key
// widths) under the metered executor and assert the adversary's views —
// the trace fingerprints — are identical. A divergence means record
// contents leak through the access pattern.

import (
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// meteredTrace runs body under the metered executor with tracing and
// returns the view fingerprint.
func meteredTrace(body func(c *forkjoin.Ctx, sp *mem.Space)) *forkjoin.Metrics {
	sp := mem.NewSpace()
	return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
		body(c, sp)
	})
}

// traceInputs yields record sets of identical shape but wildly different
// contents (different keys, values, duplication structure).
func traceInputs(n int) [][]Record {
	a := make([]Record, n) // all one group, zero values
	b := make([]Record, n) // all distinct keys, big values
	c := make([]Record, n) // random with duplicates
	src := prng.New(99)
	for i := 0; i < n; i++ {
		a[i] = Record{Key: 7, Val: 0}
		b[i] = Record{Key: uint64(i), Val: uint64(1<<35) + uint64(i)}
		c[i] = Record{Key: src.Uint64n(4), Val: src.Uint64n(1 << 30)}
	}
	return [][]Record{a, b, c}
}

// wideTraceInputs yields width-2 record sets of identical shape but wildly
// different contents, including full-range key columns at the maximum
// legal value.
func wideTraceInputs(n int) [][]Record {
	a := make([]Record, n) // one composite group at the sentinel boundary
	b := make([]Record, n) // all distinct tuples across the word range
	c := make([]Record, n) // random duplicated tuples
	src := prng.New(98)
	for i := 0; i < n; i++ {
		a[i] = Record{Key: KeyLimit - 1, Key2: KeyLimit - 1, Val: 0}
		b[i] = Record{Key: uint64(i) << 50, Key2: ^uint64(i*3 + 1), Val: uint64(i)}
		c[i] = Record{Key: src.Uint64n(4) * 0x9e3779b97f4a7c15, Key2: src.Uint64n(3), Val: src.Uint64n(1 << 30)}
	}
	return [][]Record{a, b, c}
}

func assertSameTrace(t *testing.T, label string, run func(recs []Record) *forkjoin.Metrics, inputs [][]Record) {
	t.Helper()
	ref := run(inputs[0])
	for i, in := range inputs[1:] {
		m := run(in)
		if !m.Trace.Equal(ref.Trace) {
			t.Fatalf("%s: trace of input %d differs from input 0 (%x/%d vs %x/%d) — record contents leak",
				label, i+1, m.Trace.Hash, m.Trace.Count, ref.Trace.Hash, ref.Trace.Count)
		}
	}
}

func TestCompactObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	run := func(recs []Record) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mustLoad(t, sp, recs)
			Compact(c, sp, NewArena(), a, func(r Record) bool { return r.Val%2 == 0 }, srt)
		})
	}
	assertSameTrace(t, "Compact", run, traceInputs(64))
}

func TestDistinctObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	run := func(recs []Record) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mustLoad(t, sp, recs)
			Distinct(c, sp, NewArena(), a, srt)
		})
	}
	assertSameTrace(t, "Distinct", run, traceInputs(64))
}

func TestGroupByObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	for _, agg := range allAggs {
		run := func(recs []Record) *forkjoin.Metrics {
			return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
				a := mustLoad(t, sp, recs)
				GroupBy(c, sp, NewArena(), a, agg, srt)
			})
		}
		assertSameTrace(t, "GroupBy", run, traceInputs(64))
	}
}

// TestWideKeyObliviousTrace is the wide-key trace regression: width-2
// operators (GroupBy under every aggregate, Distinct) must produce
// identical fingerprints across same-shape datasets whose key columns
// differ wildly — including columns pinned at the maximum legal value.
func TestWideKeyObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	inputs := wideTraceInputs(64)
	for _, agg := range allAggs {
		run := func(recs []Record) *forkjoin.Metrics {
			return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
				a := mustLoadW(t, sp, recs, 2)
				GroupBy(c, sp, NewArena(), a, agg, srt)
			})
		}
		assertSameTrace(t, "GroupBy wide", run, inputs)
	}
	run := func(recs []Record) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mustLoadW(t, sp, recs, 2)
			Distinct(c, sp, NewArena(), a, srt)
		})
	}
	assertSameTrace(t, "Distinct wide", run, inputs)
}

// TestWideTraceDependsOnWidth is the sanity inverse for the schema width:
// the same records loaded at width 1 and width 2 must yield different
// views (the wide schedule carries one more word per element), confirming
// the fingerprint is sensitive to the public width.
func TestWideTraceDependsOnWidth(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	recs := traceInputs(64)[2]
	run := func(w int) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mustLoadW(t, sp, recs, w)
			GroupBy(c, sp, NewArena(), a, AggSum, srt)
		})
	}
	if run(1).Trace.Equal(run(2).Trace) {
		t.Fatal("width-1 and width-2 traces should differ (width is public shape)")
	}
}

func TestJoinObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	inputs := traceInputs(48)
	// Left relations of matching shape: same size, different keys/values.
	lefts := [][]Record{
		{{Key: 7, Val: 0}, {Key: 8, Val: 0}, {Key: 9, Val: 0}},
		{{Key: 0, Val: 1 << 30}, {Key: 1, Val: 2}, {Key: 2, Val: 3}},
		{{Key: 100, Val: 5}, {Key: 200, Val: 6}, {Key: 300, Val: 7}},
	}
	run := func(i int) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			left, right := mustLoad(t, sp, lefts[i]), mustLoad(t, sp, inputs[i])
			Join(c, sp, NewArena(), left, right, srt)
		})
	}
	ref := run(0)
	for i := 1; i < len(lefts); i++ {
		if m := run(i); !m.Trace.Equal(ref.Trace) {
			t.Fatalf("Join: trace of input %d differs from input 0 — record contents leak", i)
		}
	}
}

// TestWideJoinObliviousTrace extends the join trace test to width-2 key
// tuples.
func TestWideJoinObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	rights := wideTraceInputs(48)
	lefts := [][]Record{
		{{Key: KeyLimit - 1, Key2: KeyLimit - 1, Val: 0}, {Key: 8, Key2: 1, Val: 0}, {Key: 9, Key2: 2, Val: 0}},
		{{Key: 0, Key2: 0, Val: 1 << 30}, {Key: 1 << 50, Key2: 5, Val: 2}, {Key: 2, Key2: 2, Val: 3}},
		{{Key: 100, Key2: 9, Val: 5}, {Key: 200, Key2: 8, Val: 6}, {Key: 300, Key2: 7, Val: 7}},
	}
	run := func(i int) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			left, right := mustLoadW(t, sp, lefts[i], 2), mustLoadW(t, sp, rights[i], 2)
			Join(c, sp, NewArena(), left, right, srt)
		})
	}
	ref := run(0)
	for i := 1; i < len(lefts); i++ {
		if m := run(i); !m.Trace.Equal(ref.Trace) {
			t.Fatalf("wide Join: trace of input %d differs from input 0 — record contents leak", i)
		}
	}
}

func TestTopKObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	run := func(recs []Record) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mustLoad(t, sp, recs)
			TopK(c, sp, NewArena(), a, 5, srt)
		})
	}
	assertSameTrace(t, "TopK", run, traceInputs(64))
}

// TestTraceDependsOnShape is the sanity inverse: a different relation size
// must (and does) change the view, confirming the fingerprint is sensitive.
func TestTraceDependsOnShape(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	run := func(n int) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mustLoad(t, sp, traceInputs(n)[2])
			GroupBy(c, sp, NewArena(), a, AggSum, srt)
		})
	}
	if run(32).Trace.Equal(run(64).Trace) {
		t.Fatal("traces of different shapes should differ")
	}
}

// TestScheduleWordBounds guards the schedule invariants that replaced the
// old packed-composite bound: every schedule stays within the comparator's
// stack budget, fillers emit the InfKey sentinel in every word, key sorts
// carry exactly one plane per column with the TiePos (position) tie-break,
// and a maximal legal real record still sorts strictly before a filler.
func TestScheduleWordBounds(t *testing.T) {
	e := obliv.Elem{Key: KeyLimit - 1, Key2: KeyLimit - 1, Aux: MaxRows - 1, Tag: 1, Kind: obliv.Real}
	var buf, fill [obliv.MaxScheduleWidth]uint64
	for _, sc := range []schedule{keyIdxSched(1), keyIdxSched(2), posSched(), descValSched(), markSched()} {
		if sc.w > obliv.MaxScheduleWidth {
			t.Fatalf("schedule width %d exceeds MaxScheduleWidth", sc.w)
		}
		filler := fill[:sc.w]
		sc.emit(obliv.Elem{}, filler)
		for w := 0; w < sc.w; w++ {
			if filler[w] != obliv.InfKey {
				t.Fatalf("filler schedule word %d is %x, want the InfKey sentinel", w, filler[w])
			}
		}
	}
	for _, w := range []int{1, 2} {
		sc := keyIdxSched(w)
		if sc.w != w || sc.tie != obliv.TiePos {
			t.Fatalf("keyIdxSched(%d): width %d tie %d, want one plane per column with TiePos", w, sc.w, sc.tie)
		}
		real := buf[:sc.w]
		sc.emit(e, real)
		// KeyLimit caps columns below the sentinel, so even the maximal
		// record's first word beats a filler's.
		if real[0] >= obliv.InfKey {
			t.Fatalf("maximal real record's key word %x reaches the filler sentinel", real[0])
		}
	}
	// Compaction schedules carry positions as words under the same
	// sentinel, which is what keeps MaxRows below InfKey.
	real := buf[:1]
	posSched().emit(e, real)
	if real[0] != MaxRows-1 || uint64(MaxRows) >= obliv.InfKey {
		t.Fatalf("position word %x out of range for MaxRows %x", real[0], uint64(MaxRows))
	}
}
