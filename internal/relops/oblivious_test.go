package relops

// Obliviousness regression tests (DESIGN.md §3 strategy, as in
// TestCompareExchangeObliviousTrace): run each relational operator on
// different record contents of the same shape (relation sizes and key
// widths) under the metered executor and assert the adversary's views —
// the trace fingerprints — are identical. A divergence means record
// contents leak through the access pattern. The machinery lives in the
// reusable internal/obliv/oblivtest harness; each operator's check is a
// few lines of body construction.

import (
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/obliv/oblivtest"
	"oblivmc/internal/prng"
)

// traceInputs yields record sets of identical shape but wildly different
// contents (different keys, values, duplication structure).
func traceInputs(n int) [][]Record {
	a := make([]Record, n) // all one group, zero values
	b := make([]Record, n) // all distinct keys, big values
	c := make([]Record, n) // random with duplicates
	src := prng.New(99)
	for i := 0; i < n; i++ {
		a[i] = Record{Key: 7, Val: 0}
		b[i] = Record{Key: uint64(i), Val: uint64(1<<35) + uint64(i)}
		c[i] = Record{Key: src.Uint64n(4), Val: src.Uint64n(1 << 30)}
	}
	return [][]Record{a, b, c}
}

// wideTraceInputs yields width-2 record sets of identical shape but wildly
// different contents, including full-range key columns at the maximum
// legal value.
func wideTraceInputs(n int) [][]Record {
	a := make([]Record, n) // one composite group at the sentinel boundary
	b := make([]Record, n) // all distinct tuples across the word range
	c := make([]Record, n) // random duplicated tuples
	src := prng.New(98)
	for i := 0; i < n; i++ {
		a[i] = Record{Key: KeyLimit - 1, Key2: KeyLimit - 1, Val: 0}
		b[i] = Record{Key: uint64(i) << 50, Key2: ^uint64(i*3 + 1), Val: uint64(i)}
		c[i] = Record{Key: src.Uint64n(4) * 0x9e3779b97f4a7c15, Key2: src.Uint64n(3), Val: src.Uint64n(1 << 30)}
	}
	return [][]Record{a, b, c}
}

// opBodies lifts one operator invocation over every content variant at a
// fixed width, yielding the harness bodies for FingerprintEqual.
func opBodies(t *testing.T, inputs [][]Record, w int, op func(c *forkjoin.Ctx, sp *mem.Space, r Rel)) []oblivtest.Body {
	bodies := make([]oblivtest.Body, len(inputs))
	for i, recs := range inputs {
		recs := recs
		bodies[i] = func(c *forkjoin.Ctx, sp *mem.Space) {
			op(c, sp, mustLoadW(t, sp, recs, w))
		}
	}
	return bodies
}

func TestCompactObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	oblivtest.FingerprintEqual(t, "Compact", opBodies(t, traceInputs(64), 1,
		func(c *forkjoin.Ctx, sp *mem.Space, r Rel) {
			Compact(c, sp, NewArena(), r, func(rec Record) bool { return rec.Val%2 == 0 }, srt)
		})...)
}

func TestDistinctObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	oblivtest.FingerprintEqual(t, "Distinct", opBodies(t, traceInputs(64), 1,
		func(c *forkjoin.Ctx, sp *mem.Space, r Rel) {
			Distinct(c, sp, NewArena(), r, srt)
		})...)
}

func TestGroupByObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	for _, agg := range allAggs {
		oblivtest.FingerprintEqual(t, "GroupBy", opBodies(t, traceInputs(64), 1,
			func(c *forkjoin.Ctx, sp *mem.Space, r Rel) {
				GroupBy(c, sp, NewArena(), r, agg, srt)
			})...)
	}
}

// TestWideKeyObliviousTrace is the wide-key trace regression: width-2
// operators (GroupBy under every aggregate, Distinct) must produce
// identical fingerprints across same-shape datasets whose key columns
// differ wildly — including columns pinned at the maximum legal value.
func TestWideKeyObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	inputs := wideTraceInputs(64)
	for _, agg := range allAggs {
		oblivtest.FingerprintEqual(t, "GroupBy wide", opBodies(t, inputs, 2,
			func(c *forkjoin.Ctx, sp *mem.Space, r Rel) {
				GroupBy(c, sp, NewArena(), r, agg, srt)
			})...)
	}
	oblivtest.FingerprintEqual(t, "Distinct wide", opBodies(t, inputs, 2,
		func(c *forkjoin.Ctx, sp *mem.Space, r Rel) {
			Distinct(c, sp, NewArena(), r, srt)
		})...)
}

// TestWideTraceDependsOnWidth is the sanity inverse for the schema width:
// the same records loaded at width 1 and width 2 must yield different
// views (the wide schedule carries one more word per element), confirming
// the fingerprint is sensitive to the public width.
func TestWideTraceDependsOnWidth(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	recs := traceInputs(64)[2]
	body := func(w int) oblivtest.Body {
		return func(c *forkjoin.Ctx, sp *mem.Space) {
			GroupBy(c, sp, NewArena(), mustLoadW(t, sp, recs, w), AggSum, srt)
		}
	}
	oblivtest.Different(t, "GroupBy width", body(1), body(2))
}

// joinBodies pairs each right-content variant with a same-shape left
// relation for the join trace checks.
func joinBodies(t *testing.T, lefts, rights [][]Record, w int, op func(c *forkjoin.Ctx, sp *mem.Space, left, right Rel)) []oblivtest.Body {
	bodies := make([]oblivtest.Body, len(rights))
	for i := range rights {
		l, r := lefts[i], rights[i]
		bodies[i] = func(c *forkjoin.Ctx, sp *mem.Space) {
			op(c, sp, mustLoadW(t, sp, l, w), mustLoadW(t, sp, r, w))
		}
	}
	return bodies
}

func TestJoinObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	lefts := [][]Record{
		{{Key: 7, Val: 0}, {Key: 8, Val: 0}, {Key: 9, Val: 0}},
		{{Key: 0, Val: 1 << 30}, {Key: 1, Val: 2}, {Key: 2, Val: 3}},
		{{Key: 100, Val: 5}, {Key: 200, Val: 6}, {Key: 300, Val: 7}},
	}
	oblivtest.FingerprintEqual(t, "Join", joinBodies(t, lefts, traceInputs(48), 1,
		func(c *forkjoin.Ctx, sp *mem.Space, left, right Rel) {
			Join(c, sp, NewArena(), left, right, srt)
		})...)
}

// TestWideJoinObliviousTrace extends the join trace test to width-2 key
// tuples.
func TestWideJoinObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	lefts := [][]Record{
		{{Key: KeyLimit - 1, Key2: KeyLimit - 1, Val: 0}, {Key: 8, Key2: 1, Val: 0}, {Key: 9, Key2: 2, Val: 0}},
		{{Key: 0, Key2: 0, Val: 1 << 30}, {Key: 1 << 50, Key2: 5, Val: 2}, {Key: 2, Key2: 2, Val: 3}},
		{{Key: 100, Key2: 9, Val: 5}, {Key: 200, Key2: 8, Val: 6}, {Key: 300, Key2: 7, Val: 7}},
	}
	oblivtest.FingerprintEqual(t, "Join wide", joinBodies(t, lefts, wideTraceInputs(48), 2,
		func(c *forkjoin.Ctx, sp *mem.Space, left, right Rel) {
			Join(c, sp, NewArena(), left, right, srt)
		})...)
}

// joinAllTraceLefts yields left relations of one shape whose duplication
// structures differ as wildly as the right-side traceInputs: the match
// counts of the three instances differ by orders of magnitude, which is
// exactly what must NOT show in the view.
func joinAllTraceLefts(n int, wide bool) [][]Record {
	a := make([]Record, n) // every left matches every all-equal right
	b := make([]Record, n) // distinct keys: at most one match per right
	c := make([]Record, n) // random duplicated keys
	src := prng.New(97)
	for i := 0; i < n; i++ {
		a[i] = Record{Key: 7, Val: uint64(i)}
		b[i] = Record{Key: uint64(i) << 40, Val: uint64(i)}
		c[i] = Record{Key: src.Uint64n(4), Val: src.Uint64n(1 << 30)}
		if wide {
			a[i].Key2 = KeyLimit - 1
			b[i].Key2 = ^uint64(3*i + 1)
			c[i].Key2 = src.Uint64n(3)
		}
	}
	return [][]Record{a, b, c}
}

// TestJoinAllObliviousTrace is the tentpole acceptance check at width 1:
// JoinAll's view must be a function of (len(left), len(right), width,
// maxOut) only — here the three same-shape instances produce match counts
// from 0 to len(left)*len(right) and identical fingerprints. Both the full
// operator and the planner's deferred variant are checked.
func TestJoinAllObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	const maxOut = 12 * 24 // covers the all-equal cross product
	lefts, rights := joinAllTraceLefts(12, false), traceInputs(24)
	oblivtest.FingerprintEqual(t, "JoinAll", joinBodies(t, lefts, rights, 1,
		func(c *forkjoin.Ctx, sp *mem.Space, left, right Rel) {
			if _, _, err := JoinAll(c, sp, NewArena(), left, right, maxOut, srt); err != nil {
				t.Fatal(err)
			}
		})...)
	oblivtest.FingerprintEqual(t, "JoinAllDeferred", joinBodies(t, lefts, rights, 1,
		func(c *forkjoin.Ctx, sp *mem.Space, left, right Rel) {
			if _, _, err := JoinAllDeferred(c, sp, NewArena(), left, right, maxOut, srt); err != nil {
				t.Fatal(err)
			}
		})...)
}

// TestWideJoinAllObliviousTrace is the width-2 half of the acceptance
// criterion, with key columns up to the sentinel boundary.
func TestWideJoinAllObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	const maxOut = 12 * 24 // covers the all-equal cross product
	oblivtest.FingerprintEqual(t, "JoinAll wide",
		joinBodies(t, joinAllTraceLefts(12, true), wideTraceInputs(24), 2,
			func(c *forkjoin.Ctx, sp *mem.Space, left, right Rel) {
				if _, _, err := JoinAll(c, sp, NewArena(), left, right, maxOut, srt); err != nil {
					t.Fatal(err)
				}
			})...)
}

// TestJoinAllTraceDependsOnCapacity is the sanity inverse for the public
// capacity: maxOut is part of the shape, so changing it must change the
// view even when contents and match counts are identical.
func TestJoinAllTraceDependsOnCapacity(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	lrecs, rrecs := joinAllTraceLefts(8, false)[2], traceInputs(16)[2]
	body := func(maxOut int) oblivtest.Body {
		return func(c *forkjoin.Ctx, sp *mem.Space) {
			if _, _, err := JoinAll(c, sp, NewArena(), mustLoad(t, sp, lrecs), mustLoad(t, sp, rrecs), maxOut, srt); err != nil {
				t.Fatal(err)
			}
		}
	}
	oblivtest.Different(t, "JoinAll capacity", body(64), body(128))
}

// TestJoinAllLockstep drives the shape-randomized lockstep runner: random
// (nl, nr, width, maxOut) shapes, three content variants per shape, equal
// views within every round. This is the harness pattern every future
// operator gets for free.
func TestJoinAllLockstep(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	oblivtest.Lockstep(t, "JoinAll", 4, 3, 2026,
		func(c *forkjoin.Ctx, sp *mem.Space, shape, content *prng.Source) {
			nl := 1 + shape.Intn(24)
			nr := 1 + shape.Intn(24)
			w := 1 + shape.Intn(MaxKeyCols)
			dist := shape.Intn(distKinds)
			maxOut := nl*nr + shape.Intn(16) // capacity covers any match count
			lrecs := genRecords(content, nl, w, dist)
			rrecs := genRecords(content, nr, w, dist)
			left, right := mustLoadW(t, sp, lrecs, w), mustLoadW(t, sp, rrecs, w)
			if _, _, err := JoinAll(c, sp, NewArena(), left, right, maxOut, srt); err != nil {
				t.Fatal(err)
			}
		})
}

func TestTopKObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	oblivtest.FingerprintEqual(t, "TopK", opBodies(t, traceInputs(64), 1,
		func(c *forkjoin.Ctx, sp *mem.Space, r Rel) {
			TopK(c, sp, NewArena(), r, 5, srt)
		})...)
}

// TestTraceDependsOnShape is the sanity inverse: a different relation size
// must (and does) change the view, confirming the fingerprint is sensitive.
func TestTraceDependsOnShape(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	body := func(n int) oblivtest.Body {
		recs := traceInputs(n)[2]
		return func(c *forkjoin.Ctx, sp *mem.Space) {
			GroupBy(c, sp, NewArena(), mustLoad(t, sp, recs), AggSum, srt)
		}
	}
	oblivtest.Different(t, "GroupBy size", body(32), body(64))
}

// TestScheduleWordBounds guards the schedule invariants that replaced the
// old packed-composite bound: every schedule stays within the comparator's
// stack budget, fillers emit the InfKey sentinel in every word, key sorts
// carry exactly one plane per column with the TiePos (position) tie-break,
// and a maximal legal real record still sorts strictly before a filler.
func TestScheduleWordBounds(t *testing.T) {
	e := obliv.Elem{Key: KeyLimit - 1, Key2: KeyLimit - 1, Aux: MaxRows - 1, Tag: 1, Kind: obliv.Real}
	var buf, fill [obliv.MaxScheduleWidth]uint64
	for _, sc := range []schedule{
		keyIdxSched(1), keyIdxSched(2), posSched(), descValSched(), markSched(),
		joinLiSched(1), joinLiSched(2),
	} {
		if sc.w > obliv.MaxScheduleWidth {
			t.Fatalf("schedule width %d exceeds MaxScheduleWidth", sc.w)
		}
		filler := fill[:sc.w]
		sc.emit(obliv.Elem{}, filler)
		for w := 0; w < sc.w; w++ {
			if filler[w] != obliv.InfKey {
				t.Fatalf("filler schedule word %d is %x, want the InfKey sentinel", w, filler[w])
			}
		}
	}
	for _, w := range []int{1, 2} {
		sc := keyIdxSched(w)
		if sc.w != w || sc.tie != obliv.TiePos {
			t.Fatalf("keyIdxSched(%d): width %d tie %d, want one plane per column with TiePos", w, sc.w, sc.tie)
		}
		real := buf[:sc.w]
		sc.emit(e, real)
		// KeyLimit caps columns below the sentinel, so even the maximal
		// record's first word beats a filler's.
		if real[0] >= obliv.InfKey {
			t.Fatalf("maximal real record's key word %x reaches the filler sentinel", real[0])
		}
		// The join's (key..., left index) schedule carries one extra word.
		if js := joinLiSched(w); js.w != w+1 || js.tie != obliv.TiePos {
			t.Fatalf("joinLiSched(%d): width %d tie %d, want key columns plus the index plane with TiePos", w, js.w, js.tie)
		}
	}
	// Compaction schedules carry positions as words under the same
	// sentinel, which is what keeps MaxRows below InfKey.
	real := buf[:1]
	posSched().emit(e, real)
	if real[0] != MaxRows-1 || uint64(MaxRows) >= obliv.InfKey {
		t.Fatalf("position word %x out of range for MaxRows %x", real[0], uint64(MaxRows))
	}
}
