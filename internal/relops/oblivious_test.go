package relops

// Obliviousness regression tests (DESIGN.md §3 strategy, as in
// TestCompareExchangeObliviousTrace): run each relational operator on
// different record contents of the same shape (relation sizes) under the
// metered executor and assert the adversary's views — the trace
// fingerprints — are identical. A divergence means record contents leak
// through the access pattern.

import (
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// meteredTrace runs body under the metered executor with tracing and
// returns the view fingerprint.
func meteredTrace(body func(c *forkjoin.Ctx, sp *mem.Space)) *forkjoin.Metrics {
	sp := mem.NewSpace()
	return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
		body(c, sp)
	})
}

// traceInputs yields record sets of identical shape but wildly different
// contents (different keys, values, duplication structure).
func traceInputs(n int) [][]Record {
	a := make([]Record, n) // all one group, zero values
	b := make([]Record, n) // all distinct keys, big values
	c := make([]Record, n) // random with duplicates
	src := prng.New(99)
	for i := 0; i < n; i++ {
		a[i] = Record{Key: 7, Val: 0}
		b[i] = Record{Key: uint64(i), Val: uint64(1<<35) + uint64(i)}
		c[i] = Record{Key: src.Uint64n(4), Val: src.Uint64n(1 << 30)}
	}
	return [][]Record{a, b, c}
}

func assertSameTrace(t *testing.T, label string, run func(recs []Record) *forkjoin.Metrics, inputs [][]Record) {
	t.Helper()
	ref := run(inputs[0])
	for i, in := range inputs[1:] {
		m := run(in)
		if !m.Trace.Equal(ref.Trace) {
			t.Fatalf("%s: trace of input %d differs from input 0 (%x/%d vs %x/%d) — record contents leak",
				label, i+1, m.Trace.Hash, m.Trace.Count, ref.Trace.Hash, ref.Trace.Count)
		}
	}
}

func TestCompactObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	run := func(recs []Record) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mustLoad(t, sp, recs)
			Compact(c, sp, NewArena(), a, func(r Record) bool { return r.Val%2 == 0 }, srt)
		})
	}
	assertSameTrace(t, "Compact", run, traceInputs(64))
}

func TestDistinctObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	run := func(recs []Record) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mustLoad(t, sp, recs)
			Distinct(c, sp, NewArena(), a, srt)
		})
	}
	assertSameTrace(t, "Distinct", run, traceInputs(64))
}

func TestGroupByObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	for _, agg := range []AggKind{AggSum, AggCount, AggMin, AggMax} {
		run := func(recs []Record) *forkjoin.Metrics {
			return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
				a := mustLoad(t, sp, recs)
				GroupBy(c, sp, NewArena(), a, agg, srt)
			})
		}
		assertSameTrace(t, "GroupBy", run, traceInputs(64))
	}
}

func TestJoinObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	inputs := traceInputs(48)
	// Left relations of matching shape: same size, different keys/values.
	lefts := [][]Record{
		{{Key: 7, Val: 0}, {Key: 8, Val: 0}, {Key: 9, Val: 0}},
		{{Key: 0, Val: 1 << 30}, {Key: 1, Val: 2}, {Key: 2, Val: 3}},
		{{Key: 100, Val: 5}, {Key: 200, Val: 6}, {Key: 300, Val: 7}},
	}
	run := func(i int) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			left, right := mustLoad(t, sp, lefts[i]), mustLoad(t, sp, inputs[i])
			Join(c, sp, NewArena(), left, right, srt)
		})
	}
	ref := run(0)
	for i := 1; i < len(lefts); i++ {
		if m := run(i); !m.Trace.Equal(ref.Trace) {
			t.Fatalf("Join: trace of input %d differs from input 0 — record contents leak", i)
		}
	}
}

func TestTopKObliviousTrace(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	run := func(recs []Record) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mustLoad(t, sp, recs)
			TopK(c, sp, NewArena(), a, 5, srt)
		})
	}
	assertSameTrace(t, "TopK", run, traceInputs(64))
}

// TestTraceDependsOnShape is the sanity inverse: a different relation size
// must (and does) change the view, confirming the fingerprint is sensitive.
func TestTraceDependsOnShape(t *testing.T) {
	srt := bitonic.CacheAgnostic{}
	run := func(n int) *forkjoin.Metrics {
		return meteredTrace(func(c *forkjoin.Ctx, sp *mem.Space) {
			a := mustLoad(t, sp, traceInputs(n)[2])
			GroupBy(c, sp, NewArena(), a, AggSum, srt)
		})
	}
	if run(32).Trace.Equal(run(64).Trace) {
		t.Fatal("traces of different shapes should differ")
	}
}

// Guard against accidental key-range widening: composite sort keys must
// stay below obliv.MaxKey for the largest legal key and position.
func TestCompositeKeyBounds(t *testing.T) {
	e := obliv.Elem{Key: KeyLimit - 1, Aux: MaxRows - 1, Tag: 1, Kind: obliv.Real}
	if k := keyIdx(e); k >= obliv.MaxKey {
		t.Fatalf("keyIdx overflows MaxKey: %x", k)
	}
	if k := e.Key<<(idxBits+1) | uint64(e.Tag)<<idxBits | e.Aux; k >= obliv.MaxKey {
		t.Fatalf("join side key overflows MaxKey: %x", k)
	}
}
