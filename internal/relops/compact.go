package relops

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// Compact is the oblivious Filter→tight-compaction operator: records
// satisfying pred move to the front of r in their original order, all other
// slots become fillers, and the survivor count is returned (computed
// outside the adversary's view).
//
// pred is evaluated once per record in a fixed elementwise pass; it must be
// a pure function of the record (register arithmetic only — it is handed
// values, not memory). The rest of the operator is one data-independent
// sort plus elementwise passes, so the trace depends only on r's shape.
// ar supplies reusable scratch (nil = allocate fresh).
func Compact(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, r Rel, pred func(Record) bool, srt obliv.Sorter) int {
	a := r.A
	forkjoin.ParallelRange(c, 0, a.Len(), passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := a.Get(c, i)
			c.Op(1)
			e.Mark = 0
			if e.Kind == obliv.Real && pred(recordOf(e)) {
				e.Mark = 1
			}
			a.Set(c, i, e)
		}
	})
	return compactMarked(c, sp, ar, a, srt)
}

// recordOf extracts the relational record carried by a real element.
func recordOf(e obliv.Elem) Record {
	return Record{Key: e.Key, Key2: e.Key2, Val: e.Val}
}
