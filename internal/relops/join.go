package relops

import (
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// Joined is one output record of Join: a right record together with the
// value of the left record sharing its key.
type Joined struct {
	Key, LeftVal, RightVal uint64
}

// Join is the oblivious sort-merge equi-join of a primary relation left
// (whose keys must be distinct; if they are not, the first key in sorted
// order wins, as in obliv.SendReceive) with a foreign relation right. The
// result array has length NextPow2(len(left)+len(right)) and holds, at the
// front in right's original order, one record per right record whose key
// appears in left — Key/Val are the right record's, Lbl carries the joined
// left value. The match count is returned (raw read, outside the
// adversary's view).
//
// Construction (§F / [CS17] style): tag and interleave the two relations,
// sort by (key, side, position) so each key group is its left record
// followed by its right records, obliviously propagate the left value
// through the group, then compact the matched right records. Two
// data-independent sorts, one propagation, elementwise passes — the trace
// depends only on (len(left), len(right)). ar supplies reusable scratch
// (nil = allocate fresh).
func Join(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, left, right *mem.Array[obliv.Elem], srt obliv.Sorter) (*mem.Array[obliv.Elem], int) {
	nl, nr := left.Len(), right.Len()
	wLen := obliv.NextPow2(nl + nr)
	w := mem.Alloc[obliv.Elem](sp, wLen) // trailing slots are fillers

	const (
		tagLeft  = 0
		tagRight = 1
	)
	forkjoin.ParallelRange(c, 0, nl, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := left.Get(c, i)
			e.Tag = tagLeft
			w.Set(c, i, e)
		}
	})
	forkjoin.ParallelRange(c, 0, nr, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for j := lo; j < hi; j++ {
			e := right.Get(c, j)
			e.Tag = tagRight
			w.Set(c, nl+j, e)
		}
	})

	// Sort by (key, left-before-right, position). Keys < 2^40 shifted by
	// idxBits+1 stay below obliv.MaxKey.
	sideKey := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real {
			return obliv.InfKey
		}
		return e.Key<<(idxBits+1) | uint64(e.Tag)<<idxBits | e.Aux
	}
	sortBy(c, sp, ar, w, sideKey, srt)

	// Propagate each key group's left value to the group's right records;
	// matched right records get Mark=1, everything else Mark=0.
	obliv.PropagateFirst(c, sp, w, groupKey,
		func(e obliv.Elem, i int) (uint64, bool) {
			return e.Val, e.Kind == obliv.Real && e.Tag == tagLeft
		},
		func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem {
			e.Mark = 0
			if e.Kind == obliv.Real && e.Tag == tagRight && ok {
				e.Lbl = v
				e.Mark = 1
			}
			return e
		})

	matched := compactMarked(c, sp, ar, w, srt)
	return w, matched
}

// UnloadJoined extracts the real joined records of a Join result in array
// order (harness operation, outside the adversary's view).
func UnloadJoined(a *mem.Array[obliv.Elem]) []Joined {
	out := make([]Joined, 0, a.Len())
	for _, e := range a.Data() {
		if e.Kind == obliv.Real {
			out = append(out, Joined{Key: e.Key, LeftVal: e.Lbl, RightVal: e.Val})
		}
	}
	return out
}
