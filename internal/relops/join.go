package relops

import (
	"fmt"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// Joined is one output record of Join and JoinAll: a right record together
// with the value of the left record sharing its key tuple.
type Joined struct {
	Key, Key2, LeftVal, RightVal uint64
}

// Side tags of the interleaved join work arrays (Join, JoinAll): tagLeft
// sorts before tagRight under the TiePos tie-break, putting each key
// group's left records ahead of its right records.
const (
	tagLeft  = 0
	tagRight = 1
)

// Join is the oblivious sort-merge equi-join of a primary relation left
// (whose key tuples must be distinct; if they are not, the first tuple in
// sorted order wins, as in obliv.SendReceive) with a foreign relation
// right of the same key width. The result relation has length
// NextPow2(len(left)+len(right)) and holds, at the front in right's
// original order, one record per right record whose key tuple appears in
// left — Key/Key2/Val are the right record's, Lbl carries the joined left
// value. The match count is returned (raw read, outside the adversary's
// view).
//
// Construction (§F / [CS17] style): tag and interleave the two relations,
// sort by (key columns..., side, position) so each key group is its left
// record followed by its right records, obliviously propagate the left
// value through the group, then compact the matched right records. Two
// data-independent sorts, one propagation, elementwise passes — the trace
// depends only on (len(left), len(right), width). The (side, position)
// suffix of the logical order is the obliv.TiePos tie-break — the
// elements' (Tag, Aux) read in registers — so the schedule carries only
// the key columns. ar supplies reusable scratch (nil = allocate fresh).
func Join(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, left, right Rel, srt obliv.Sorter) (Rel, int) {
	if left.W != right.W {
		panic(fmt.Sprintf("relops: join of width-%d and width-%d relations", left.W, right.W))
	}
	w := left.W
	nl, nr := left.Len(), right.Len()
	wLen := obliv.NextPow2(nl + nr)
	wrk := Rel{A: mem.Alloc[obliv.Elem](sp, wLen), W: w} // trailing slots are fillers

	forkjoin.ParallelRange(c, 0, nl, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := left.A.Get(c, i)
			e.Tag = tagLeft
			wrk.A.Set(c, i, e)
		}
	})
	forkjoin.ParallelRange(c, 0, nr, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for j := lo; j < hi; j++ {
			e := right.A.Get(c, j)
			e.Tag = tagRight
			wrk.A.Set(c, nl+j, e)
		}
	})

	// Sort by (key columns..., left-before-right, position): the key
	// columns are the cached schedule, and TiePos orders equal tuples by
	// (Tag, Aux) — tagLeft < tagRight puts each group's left record first,
	// then right records in original order.
	sortSched(c, sp, ar, wrk.A, keyIdxSched(w), srt)

	// Propagate each key group's left value to the group's right records;
	// matched right records get Mark=1, everything else Mark=0.
	obliv.PropagateFirstBy(c, sp, wrk.A, sameGroup(w),
		func(e obliv.Elem, i int) (uint64, bool) {
			return e.Val, e.Kind == obliv.Real && e.Tag == tagLeft
		},
		func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem {
			e.Mark = 0
			if e.Kind == obliv.Real && e.Tag == tagRight && ok {
				e.Lbl = v
				e.Mark = 1
			}
			return e
		})

	matched := compactMarked(c, sp, ar, wrk.A, srt)
	return wrk, matched
}

// UnloadJoined extracts the real joined records of a Join result in array
// order (harness operation, outside the adversary's view).
func UnloadJoined(r Rel) []Joined {
	out := make([]Joined, 0, r.Len())
	for _, e := range r.A.Data() {
		if e.Kind == obliv.Real {
			out = append(out, Joined{Key: e.Key, Key2: e.Key2, LeftVal: e.Lbl, RightVal: e.Val})
		}
	}
	return out
}
