package relops

import (
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// Arena caches the scratch arrays the relational passes need — sorting
// scratch, cached key schedules, boundary marks, rank counters — so a
// multi-pass operator or a whole planned query allocates each of them once
// instead of once per pass. Reuse is trace-safe: the allocation sequence,
// like everything else here, is a function of the relation sizes and
// schema widths only, and every pass fully overwrites the region it reads.
//
// A nil *Arena is valid and means "no reuse": every request allocates
// fresh, which reproduces the pre-arena behavior. Arenas are not safe for
// concurrent use; passes are issued sequentially from the orchestration
// path, which is the only place they are requested.
type Arena struct {
	// sp is the address space the cached arrays were reserved in. Cached
	// arrays are only valid in their own space — addresses from one space
	// would alias independently reserved ranges of another — so a request
	// under a different space drops the cache and reallocates.
	sp *mem.Space
	// keys and keyScr back the key schedules: one maximal word array each,
	// re-carved per request into a strided width-w schedule (passes of
	// different widths share the same backing).
	keys    *mem.Array[uint64]
	keyScr  *mem.Array[uint64]
	ranks   *mem.Array[uint64]
	elemScr *mem.Array[obliv.Elem]
	marks   *mem.Array[uint8]
}

// NewArena returns an empty arena; arrays are allocated on first use and
// grown when a larger relation shows up (Join's interleaved array).
func NewArena() *Arena { return &Arena{} }

// rebind invalidates the cache when the requesting space changes.
func (ar *Arena) rebind(sp *mem.Space) {
	if ar.sp != sp {
		*ar = Arena{sp: sp}
	}
}

// Keys returns a width-w cached key schedule covering n elements.
func (ar *Arena) Keys(sp *mem.Space, n, w int) *obliv.KeySchedule {
	if ar == nil {
		return obliv.AllocKeySchedule(sp, n, w)
	}
	ar.rebind(sp)
	if ar.keys == nil || ar.keys.Len() < n*w {
		ar.keys = mem.Alloc[uint64](sp, n*w)
	}
	return obliv.NewKeySchedule(ar.keys, n, w)
}

// KeyScratch returns a width-w key-schedule sorting scratch covering n
// elements.
func (ar *Arena) KeyScratch(sp *mem.Space, n, w int) *obliv.KeySchedule {
	if ar == nil {
		return obliv.AllocKeySchedule(sp, n, w)
	}
	ar.rebind(sp)
	if ar.keyScr == nil || ar.keyScr.Len() < n*w {
		ar.keyScr = mem.Alloc[uint64](sp, n*w)
	}
	return obliv.NewKeySchedule(ar.keyScr, n, w)
}

// Ranks returns the prefix-rank array of length n (TopK).
func (ar *Arena) Ranks(sp *mem.Space, n int) *mem.Array[uint64] {
	if ar == nil {
		return mem.Alloc[uint64](sp, n)
	}
	ar.rebind(sp)
	if ar.ranks == nil || ar.ranks.Len() < n {
		ar.ranks = mem.Alloc[uint64](sp, n)
	}
	return ar.ranks.View(0, n)
}

// ElemScratch returns the element sorting scratch of length n.
func (ar *Arena) ElemScratch(sp *mem.Space, n int) *mem.Array[obliv.Elem] {
	if ar == nil {
		return mem.Alloc[obliv.Elem](sp, n)
	}
	ar.rebind(sp)
	if ar.elemScr == nil || ar.elemScr.Len() < n {
		ar.elemScr = mem.Alloc[obliv.Elem](sp, n)
	}
	return ar.elemScr.View(0, n)
}

// Marks returns the boundary-mark scratch of length n (markBoundaries).
func (ar *Arena) Marks(sp *mem.Space, n int) *mem.Array[uint8] {
	if ar == nil {
		return mem.Alloc[uint8](sp, n)
	}
	ar.rebind(sp)
	if ar.marks == nil || ar.marks.Len() < n {
		ar.marks = mem.Alloc[uint8](sp, n)
	}
	return ar.marks.View(0, n)
}
