package relops

// Property tests (the testing/quick style, on internal/prng coins): every
// relational operator is fuzzed against a plain-Go reference implementation
// over randomized sizes, key widths, and key distributions — including the
// duplicate-heavy and all-equal distributions where the many-to-many join's
// expansion factor is largest. The same checkers back the native fuzz
// targets in fuzz_test.go, so `go test` replays the corpus and CI's
// `-fuzz` smoke explores beyond it.

import (
	"errors"
	"testing"

	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// Key distributions of the generated relations.
const (
	distSpread   = iota // many distinct keys, sparse duplicates
	distDupHeavy        // few keys, heavy duplication
	distAllEqual        // a single key tuple: worst-case expansion
	distKinds
)

// genRecords draws n width-w records under the given key distribution.
// Column values are scaled by large odd multipliers so wide keys exercise
// the full uint64 range.
func genRecords(src *prng.Source, n, w, dist int) []Record {
	var spread1, spread2 uint64
	switch dist {
	case distSpread:
		spread1, spread2 = uint64(3*n+1), 5
	case distDupHeavy:
		spread1, spread2 = uint64(n/4)+1, 2
	default: // distAllEqual
		spread1, spread2 = 1, 1
	}
	base1 := src.Uint64n(1 << 20)
	base2 := src.Uint64n(1 << 20)
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Key: (base1 + src.Uint64n(spread1)) * 0x9e3779b97f4a7c15 >> 1,
			Val: src.Uint64n(1 << 30),
		}
		if w > 1 {
			recs[i].Key2 = (base2 + src.Uint64n(spread2)) * 0x517cc1b727220a95 >> 1
		}
	}
	return recs
}

// sameKey reports whether two records share their width-w key tuple.
func sameKey(a, b Record, w int) bool {
	return a.Key == b.Key && (w < 2 || a.Key2 == b.Key2)
}

// refJoinAll is the nested-loop reference of the many-to-many equi-join in
// JoinAll's public output order: for each right record in input order, its
// matches in the left records' input order.
func refJoinAll(lrecs, rrecs []Record, w int) []Joined {
	var out []Joined
	for _, r := range rrecs {
		for _, l := range lrecs {
			if sameKey(l, r, w) {
				j := Joined{Key: r.Key, LeftVal: l.Val, RightVal: r.Val}
				if w > 1 {
					j.Key2 = r.Key2
				}
				out = append(out, j)
			}
		}
	}
	return out
}

func checkJoined(t testing.TB, got, want []Joined, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d joined records, want %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: joined record %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// checkJoinAll drives one randomized JoinAll instance against the
// nested-loop reference: an exact-capacity run, a slack run, and — when
// there are at least two matches — an undersized run that must report
// ErrJoinOverflow with the true match count.
func checkJoinAll(t testing.TB, seed uint64, nl, nr, w, dist int) {
	t.Helper()
	src := prng.New(seed)
	lrecs := genRecords(src, nl, w, dist)
	rrecs := genRecords(src, nr, w, dist)
	want := refJoinAll(lrecs, rrecs, w)
	m := len(want)

	run := func(maxOut int) (Rel, int, error) {
		sp := mem.NewSpace()
		left := mustLoadW(t, sp, lrecs, w)
		right := mustLoadW(t, sp, rrecs, w)
		srt := testSorter(obliv.NextPow2(obliv.NextPow2(left.Len()+right.Len()) + obliv.NextPow2(maxOut)))
		return JoinAll(testCtx(), sp, NewArena(), left, right, maxOut, srt)
	}

	for _, maxOut := range []int{max(1, m), m + 1 + int(src.Uint64n(8))} {
		out, count, err := run(maxOut)
		if err != nil {
			t.Fatalf("seed=%d nl=%d nr=%d w=%d dist=%d maxOut=%d: %v", seed, nl, nr, w, dist, maxOut, err)
		}
		if count != m {
			t.Fatalf("seed=%d nl=%d nr=%d w=%d dist=%d: count = %d, want %d", seed, nl, nr, w, dist, count, m)
		}
		checkJoined(t, UnloadJoined(out), want, "JoinAll")
	}
	if m >= 2 {
		_, count, err := run(m - 1)
		if !errors.Is(err, ErrJoinOverflow) {
			t.Fatalf("seed=%d nl=%d nr=%d w=%d dist=%d: maxOut=%d with %d matches: err = %v, want ErrJoinOverflow",
				seed, nl, nr, w, dist, m-1, m, err)
		}
		if count != m {
			t.Fatalf("overflow must still report the true match count: got %d, want %d", count, m)
		}
	}
}

// checkJoin drives the primary×foreign Join against its reference (left
// keys deduplicated first, as Join requires).
func checkJoin(t testing.TB, seed uint64, nl, nr, w, dist int) {
	t.Helper()
	src := prng.New(seed)
	raw := genRecords(src, nl, w, dist)
	var lrecs []Record
	for _, r := range raw { // keep the first record of each key tuple
		dup := false
		for _, k := range lrecs {
			if sameKey(k, r, w) {
				dup = true
				break
			}
		}
		if !dup {
			lrecs = append(lrecs, r)
		}
	}
	rrecs := genRecords(src, nr, w, dist)
	want := refJoinAll(lrecs, rrecs, w) // distinct left keys: same multiset, same order

	sp := mem.NewSpace()
	left := mustLoadW(t, sp, lrecs, w)
	right := mustLoadW(t, sp, rrecs, w)
	out, count := Join(testCtx(), sp, NewArena(), left, right,
		testSorter(obliv.NextPow2(left.Len()+right.Len())))
	if count != len(want) {
		t.Fatalf("seed=%d nl=%d nr=%d w=%d dist=%d: Join count = %d, want %d", seed, nl, nr, w, dist, count, len(want))
	}
	checkJoined(t, UnloadJoined(out), want, "Join")
}

// checkGroupBy drives GroupBy under agg against refGroupBy.
func checkGroupBy(t testing.TB, seed uint64, n, w, dist int, agg AggKind) {
	t.Helper()
	src := prng.New(seed)
	recs := genRecords(src, n, w, dist)
	want := refGroupBy(recs, agg, w > 1)
	sp := mem.NewSpace()
	a := mustLoadW(t, sp, recs, w)
	count := GroupBy(testCtx(), sp, NewArena(), a, agg, testSorter(a.Len()))
	if count != len(want) {
		t.Fatalf("seed=%d n=%d w=%d dist=%d agg=%d: GroupBy count = %d, want %d", seed, n, w, dist, agg, count, len(want))
	}
	checkRecords(t, Unload(a), want, "GroupBy property")
}

// checkDistinct drives Distinct against a first-occurrence reference.
func checkDistinct(t testing.TB, seed uint64, n, w, dist int) {
	t.Helper()
	src := prng.New(seed)
	recs := genRecords(src, n, w, dist)
	var want []Record
	for _, r := range recs {
		dup := false
		for _, k := range want {
			if sameKey(k, r, w) {
				dup = true
				break
			}
		}
		if !dup {
			want = append(want, r)
		}
	}
	sp := mem.NewSpace()
	a := mustLoadW(t, sp, recs, w)
	count := Distinct(testCtx(), sp, NewArena(), a, testSorter(a.Len()))
	if count != len(want) {
		t.Fatalf("seed=%d n=%d w=%d dist=%d: Distinct count = %d, want %d", seed, n, w, dist, count, len(want))
	}
	checkRecords(t, Unload(a), want, "Distinct property")
}

// propSizes keeps the randomized relations small enough for the exact
// selection-network sorter while still crossing power-of-two paddings.
var propSizes = []int{1, 2, 5, 9, 17, 24}

func TestJoinAllProperty(t *testing.T) {
	seed := uint64(0xA11)
	for _, dist := range []int{distSpread, distDupHeavy, distAllEqual} {
		for _, w := range []int{1, 2} {
			for _, nl := range propSizes {
				for _, nr := range propSizes {
					seed++
					checkJoinAll(t, seed, nl, nr, w, dist)
				}
			}
		}
	}
}

func TestJoinProperty(t *testing.T) {
	seed := uint64(0xB22)
	for _, dist := range []int{distSpread, distDupHeavy, distAllEqual} {
		for _, w := range []int{1, 2} {
			for _, nl := range propSizes {
				for _, nr := range propSizes {
					seed++
					checkJoin(t, seed, nl, nr, w, dist)
				}
			}
		}
	}
}

func TestGroupByProperty(t *testing.T) {
	seed := uint64(0xC33)
	for _, dist := range []int{distSpread, distDupHeavy, distAllEqual} {
		for _, w := range []int{1, 2} {
			for _, agg := range allAggs {
				for _, n := range propSizes {
					seed++
					checkGroupBy(t, seed, n, w, dist, agg)
				}
			}
		}
	}
}

func TestDistinctProperty(t *testing.T) {
	seed := uint64(0xD44)
	for _, dist := range []int{distSpread, distDupHeavy, distAllEqual} {
		for _, w := range []int{1, 2} {
			for _, n := range propSizes {
				seed++
				checkDistinct(t, seed, n, w, dist)
			}
		}
	}
}
