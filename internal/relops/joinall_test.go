package relops

import (
	"errors"
	"strings"
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// TestJoinAllBasic pins a hand-checked many-to-many instance: duplicated
// keys on both sides, a key missing from the left, a key missing from the
// right.
func TestJoinAllBasic(t *testing.T) {
	lrecs := []Record{
		{Key: 1, Val: 10}, // two lefts for key 1
		{Key: 2, Val: 20},
		{Key: 1, Val: 11},
		{Key: 9, Val: 90}, // no right partner
	}
	rrecs := []Record{
		{Key: 2, Val: 200},
		{Key: 1, Val: 100}, // fans out to both lefts
		{Key: 7, Val: 700}, // no left partner
		{Key: 1, Val: 101},
	}
	want := []Joined{
		{Key: 2, LeftVal: 20, RightVal: 200},
		{Key: 1, LeftVal: 10, RightVal: 100},
		{Key: 1, LeftVal: 11, RightVal: 100},
		{Key: 1, LeftVal: 10, RightVal: 101},
		{Key: 1, LeftVal: 11, RightVal: 101},
	}
	sp := mem.NewSpace()
	left, right := mustLoad(t, sp, lrecs), mustLoad(t, sp, rrecs)
	out, count, err := JoinAll(testCtx(), sp, NewArena(), left, right, 8, obliv.SelectionNetwork{})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(want) {
		t.Fatalf("count = %d, want %d", count, len(want))
	}
	checkJoined(t, UnloadJoined(out), want, "JoinAll basic")
	if got := out.Len(); got != 8 {
		t.Fatalf("output relation length %d, want the public NextPow2(maxOut) = 8", got)
	}
}

// TestJoinAllSubsumesJoin: on primary×foreign inputs (distinct left keys)
// JoinAll must produce exactly Join's output.
func TestJoinAllSubsumesJoin(t *testing.T) {
	src := prng.New(3131)
	for _, w := range []int{1, 2} {
		lrecs := genRecords(src, 13, w, distSpread)
		var dedup []Record
		for _, r := range lrecs {
			fresh := true
			for _, k := range dedup {
				if sameKey(k, r, w) {
					fresh = false
					break
				}
			}
			if fresh {
				dedup = append(dedup, r)
			}
		}
		rrecs := genRecords(src, 29, w, distDupHeavy)

		sp := mem.NewSpace()
		srt := bitonic.CacheAgnostic{}
		jOut, jCount := Join(testCtx(), sp, NewArena(), mustLoadW(t, sp, dedup, w), mustLoadW(t, sp, rrecs, w), srt)
		aOut, aCount, err := JoinAll(testCtx(), sp, NewArena(), mustLoadW(t, sp, dedup, w), mustLoadW(t, sp, rrecs, w), len(rrecs), srt)
		if err != nil {
			t.Fatal(err)
		}
		if aCount != jCount {
			t.Fatalf("w=%d: JoinAll count %d != Join count %d", w, aCount, jCount)
		}
		checkJoined(t, UnloadJoined(aOut), UnloadJoined(jOut), "JoinAll vs Join")
	}
}

// TestJoinAllOverflowBoundary is the exact-boundary overflow contract:
// with M real matches the operator succeeds at maxOut = M and fails with
// ErrJoinOverflow at maxOut = M-1 (i.e. the error fires at exactly
// maxOut+1 matches), still reporting the true count either way.
func TestJoinAllOverflowBoundary(t *testing.T) {
	// All-equal keys: M = nl * nr exactly.
	const nl, nr = 3, 5
	const m = nl * nr
	lrecs := make([]Record, nl)
	rrecs := make([]Record, nr)
	for i := range lrecs {
		lrecs[i] = Record{Key: 42, Val: uint64(i)}
	}
	for j := range rrecs {
		rrecs[j] = Record{Key: 42, Val: uint64(100 + j)}
	}
	run := func(maxOut int) (int, error) {
		sp := mem.NewSpace()
		left, right := mustLoad(t, sp, lrecs), mustLoad(t, sp, rrecs)
		_, count, err := JoinAll(testCtx(), sp, NewArena(), left, right, maxOut, obliv.SelectionNetwork{})
		return count, err
	}

	if count, err := run(m); err != nil || count != m {
		t.Fatalf("maxOut = M = %d: count %d err %v, want clean success", m, count, err)
	}
	count, err := run(m - 1)
	if !errors.Is(err, ErrJoinOverflow) {
		t.Fatalf("maxOut = M-1: err = %v, want ErrJoinOverflow", err)
	}
	if count != m {
		t.Fatalf("overflow count = %d, want the true match count %d", count, m)
	}
	// The wrapped message carries the concrete numbers for the retry.
	if !strings.Contains(err.Error(), "15 matches > maxOut 14") {
		t.Fatalf("overflow error %q does not carry the match count and capacity", err)
	}

	// Capacity bounds are typed shape errors like the rest of CheckShape's.
	if _, err := run(0); !errors.Is(err, ErrBadCapacity) {
		t.Fatalf("maxOut = 0: err = %v, want ErrBadCapacity", err)
	}
	if err := CheckCapacity(MaxRows + 1); !errors.Is(err, ErrBadCapacity) {
		t.Fatalf("maxOut = MaxRows+1: err = %v, want ErrBadCapacity", err)
	}
	if err := CheckCapacity(MaxRows); err != nil {
		t.Fatalf("maxOut = MaxRows rejected: %v", err)
	}
}

// TestJoinAllDeferredMatchesFull: the deferred variant must produce the
// same match multiset as the full operator — as plain records, since the
// deferred path does not deliver left values — under both widths.
func TestJoinAllDeferredMatchesFull(t *testing.T) {
	src := prng.New(717)
	for _, w := range []int{1, 2} {
		for _, dist := range []int{distSpread, distDupHeavy, distAllEqual} {
			lrecs := genRecords(src, 9, w, dist)
			rrecs := genRecords(src, 14, w, dist)
			want := refJoinAll(lrecs, rrecs, w)
			maxOut := len(want) + 3

			sp := mem.NewSpace()
			srt := bitonic.CacheAgnostic{}
			def, count, err := JoinAllDeferred(testCtx(), sp, NewArena(),
				mustLoadW(t, sp, lrecs, w), mustLoadW(t, sp, rrecs, w), maxOut, srt)
			if err != nil {
				t.Fatal(err)
			}
			if count != len(want) {
				t.Fatalf("w=%d dist=%d: deferred count = %d, want %d", w, dist, count, len(want))
			}
			// Scattered output: compare as a multiset of plain records.
			got := Unload(def)
			if len(got) != len(want) {
				t.Fatalf("w=%d dist=%d: %d deferred records, want %d", w, dist, len(got), len(want))
			}
			counts := map[Record]int{}
			for _, j := range want {
				counts[Record{Key: j.Key, Key2: j.Key2, Val: j.RightVal}]++
			}
			for _, r := range got {
				if counts[r] == 0 {
					t.Fatalf("w=%d dist=%d: unexpected deferred record %v", w, dist, r)
				}
				counts[r]--
			}
		}
	}
}

// TestJoinAllErrorMessagesReflectConstants extends the parameterized-limit
// guard to the join errors: the capacity and overflow messages must derive
// from the active MaxRows constant, never from baked-in copies.
func TestJoinAllErrorMessagesReflectConstants(t *testing.T) {
	for _, err := range []error{ErrBadCapacity, ErrJoinOverflow} {
		if !strings.Contains(err.Error(), "2^40") {
			t.Errorf("error %q does not mention the active row bound 2^40", err)
		}
		for _, stale := range []string{"2^40-1", "2^20", "2^62"} {
			if strings.Contains(err.Error(), stale) {
				t.Errorf("error %q bakes in the stale bound %q", err, stale)
			}
		}
	}
}

// TestJoinAllParallel smoke-tests the operator under the real work-stealing
// pool so the race detector sees the forked passes, at a size that uses the
// cache-agnostic bitonic pipeline.
func TestJoinAllParallel(t *testing.T) {
	src := prng.New(515)
	lrecs := genRecords(src, 150, 2, distDupHeavy)
	rrecs := genRecords(src, 300, 2, distDupHeavy)
	want := refJoinAll(lrecs, rrecs, 2)
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		sp := mem.NewSpace()
		left, right := mustLoadW(t, sp, lrecs, 2), mustLoadW(t, sp, rrecs, 2)
		out, count, err := JoinAll(c, sp, NewArena(), left, right, len(want)+5, bitonic.CacheAgnostic{})
		if err != nil {
			t.Error(err)
			return
		}
		if count != len(want) {
			t.Errorf("parallel JoinAll count = %d, want %d", count, len(want))
			return
		}
		got := UnloadJoined(out)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("parallel JoinAll record %d = %v, want %v", i, got[i], want[i])
				return
			}
		}
	})
}
