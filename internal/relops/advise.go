package relops

import (
	"fmt"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
)

// This file implements the join capacity advisor: an oblivious computation
// of the worst-case many-to-many match bound Σ over key groups of
// |L_g|·|R_g|. The bound replaces the guess-overflow-retry loop a caller
// otherwise runs against JoinAll's public capacity — one advisor pass (a
// single sort plus a segmented scan) always yields a maxOut that cannot
// overflow. The bound itself is read raw outside the adversary's view,
// like every survivor count in this package: a caller that feeds it back
// into a join as maxOut makes it public shape by doing so, which is the
// explicit contract of the JoinCapAuto mode layered on top.

// capPair carries a group's left and right multiplicities through the
// segmented suffix aggregate.
type capPair struct{ l, r uint64 }

// JoinCapAdvise returns the worst-case output size of JoinAll(left, right):
// the sum over key groups of the product of the group's left and right
// multiplicities. A capacity of at least the returned bound (and at least
// 1 — an empty bound still needs one output slot to be a legal maxOut)
// can never overflow. The trace is a function of
// (len(left), len(right), width) only: one interleave, one sort through
// the ScheduledSorter seam, and one segmented suffix scan — the final
// summation reads raw memory outside the adversary's view.
//
// When the bound exceeds MaxRows the error wraps ErrCapTooLarge and the
// returned value is MaxRows+1 (saturated): no legal capacity can hold the
// join. ar supplies reusable scratch (nil = allocate fresh).
func JoinCapAdvise(c *forkjoin.Ctx, sp *mem.Space, ar *Arena, left, right Rel, srt obliv.Sorter) (int64, error) {
	if left.W != right.W {
		panic(fmt.Sprintf("relops: join of width-%d and width-%d relations", left.W, right.W))
	}
	w := left.W
	nl, nr := left.Len(), right.Len()
	n1 := obliv.NextPow2(nl + nr)
	a := mem.Alloc[obliv.Elem](sp, n1) // trailing slots are fillers

	forkjoin.ParallelRange(c, 0, nl, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := left.A.Get(c, i)
			e.Tag = tagLeft
			a.Set(c, i, e)
		}
	})
	forkjoin.ParallelRange(c, 0, nr, passGrain, func(c *forkjoin.Ctx, lo, hi int) {
		for j := lo; j < hi; j++ {
			e := right.A.Get(c, j)
			e.Tag = tagRight
			a.Set(c, nl+j, e)
		}
	})

	// Sort by key so each group is contiguous, then give every element its
	// group's (lefts, rights) pair via the suffix aggregate — the group
	// head's pair is the full multiplicities. Lbl and Val of the scratch
	// copies carry the pair out to the raw walk.
	sortSched(c, sp, ar, a, keyIdxSched(w), srt)
	obliv.AggregateSuffixBy(c, sp, a, sameGroup(w),
		func(e obliv.Elem) capPair {
			if e.Kind != obliv.Real {
				return capPair{}
			}
			if e.Tag == tagLeft {
				return capPair{l: 1}
			}
			return capPair{r: 1}
		},
		func(x, y capPair) capPair { return capPair{l: x.l + y.l, r: x.r + y.r} },
		func(e obliv.Elem, i int, agg capPair) obliv.Elem { e.Lbl = agg.l; e.Val = agg.r; return e })

	// Raw walk over the group heads, summing |L_g|·|R_g| with saturation at
	// MaxRows+1: both factors can reach MaxRows, so the product alone can
	// overflow uint64, and any value above MaxRows is equally unusable.
	const tooBig = uint64(MaxRows) + 1
	same := sameGroup(w)
	data := a.Data()
	total := uint64(0)
	for i, e := range data {
		if e.Kind != obliv.Real {
			continue
		}
		if i > 0 && data[i-1].Kind == obliv.Real && same(data[i-1], e) {
			continue // not a group head
		}
		l, r := e.Lbl, e.Val
		prod := uint64(0)
		switch {
		case l == 0 || r == 0:
		case r > uint64(MaxRows)/l:
			prod = tooBig
		default:
			prod = l * r
		}
		total += prod
		if total > MaxRows {
			total = tooBig
		}
	}
	if total > MaxRows {
		return int64(tooBig), fmt.Errorf("%w: bound exceeds %d", ErrCapTooLarge, int64(MaxRows))
	}
	return int64(total), nil
}
