package trace

import "testing"

func TestFingerprintEquality(t *testing.T) {
	a := NewRecorder(0)
	b := NewRecorder(0)
	for i := uint64(0); i < 100; i++ {
		a.Record(Read, i)
		b.Record(Read, i)
	}
	if !a.Fingerprint().Equal(b.Fingerprint()) {
		t.Fatal("identical event streams produced different fingerprints")
	}
}

func TestFingerprintOrderSensitive(t *testing.T) {
	a := NewRecorder(0)
	b := NewRecorder(0)
	a.Record(Read, 1)
	a.Record(Read, 2)
	b.Record(Read, 2)
	b.Record(Read, 1)
	if a.Fingerprint().Equal(b.Fingerprint()) {
		t.Fatal("reordered streams should not collide")
	}
}

func TestFingerprintKindSensitive(t *testing.T) {
	a := NewRecorder(0)
	b := NewRecorder(0)
	a.Record(Read, 7)
	b.Record(Write, 7)
	if a.Fingerprint().Equal(b.Fingerprint()) {
		t.Fatal("read vs write should differ")
	}
}

func TestCountMismatchDetected(t *testing.T) {
	a := NewRecorder(0)
	b := NewRecorder(0)
	a.Record(Read, 1)
	if a.Fingerprint().Equal(b.Fingerprint()) {
		t.Fatal("different counts should differ")
	}
}

func TestPrefixRetention(t *testing.T) {
	r := NewRecorder(3)
	for i := uint64(0); i < 10; i++ {
		r.Record(Write, i)
	}
	p := r.Prefix()
	if len(p) != 3 {
		t.Fatalf("prefix length = %d, want 3", len(p))
	}
	for i, e := range p {
		if e.Kind != Write || e.Addr != uint64(i) {
			t.Fatalf("prefix[%d] = %+v", i, e)
		}
	}
	if r.Count() != 10 {
		t.Fatalf("count = %d, want 10", r.Count())
	}
}

func TestFirstDivergence(t *testing.T) {
	a := []Event{{Read, 1}, {Read, 2}, {Write, 3}}
	b := []Event{{Read, 1}, {Read, 9}, {Write, 3}}
	if d := FirstDivergence(a, b); d != 1 {
		t.Fatalf("divergence = %d, want 1", d)
	}
	if d := FirstDivergence(a, a); d != -1 {
		t.Fatalf("identical divergence = %d, want -1", d)
	}
	if d := FirstDivergence(a, a[:2]); d != 2 {
		t.Fatalf("length-mismatch divergence = %d, want 2", d)
	}
}

func TestChiSquareUniformNull(t *testing.T) {
	// Perfectly uniform counts → statistic 0.
	stat, dof := ChiSquareUniform([]int64{100, 100, 100, 100})
	if stat != 0 || dof != 3 {
		t.Fatalf("stat=%v dof=%d", stat, dof)
	}
}

func TestChiSquareDetectsSkew(t *testing.T) {
	stat, dof := ChiSquareUniform([]int64{1000, 10, 10, 10})
	if stat <= CriticalValue999(dof) {
		t.Fatalf("grossly skewed counts not detected: stat=%v crit=%v", stat, CriticalValue999(dof))
	}
}

func TestChiSquareAcceptsMildNoise(t *testing.T) {
	stat, dof := ChiSquareUniform([]int64{1010, 990, 1005, 995})
	if stat > CriticalValue999(dof) {
		t.Fatalf("mild noise rejected: stat=%v crit=%v", stat, CriticalValue999(dof))
	}
}

func TestCriticalValueMonotone(t *testing.T) {
	prev := 0.0
	for dof := 1; dof <= 100; dof++ {
		cv := CriticalValue999(dof)
		if cv <= prev {
			t.Fatalf("critical value not increasing at dof=%d", dof)
		}
		prev = cv
	}
}

func TestChiSquareDegenerate(t *testing.T) {
	if s, d := ChiSquareUniform(nil); s != 0 || d != 0 {
		t.Fatal("nil counts should be degenerate")
	}
	if s, d := ChiSquareUniform([]int64{5}); s != 0 || d != 0 {
		t.Fatal("single bucket should be degenerate")
	}
	if s, _ := ChiSquareUniform([]int64{0, 0}); s != 0 {
		t.Fatal("all-zero counts should give 0 statistic")
	}
}
