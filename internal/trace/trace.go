// Package trace records the adversary's view of an execution as defined in
// §B of the paper: the sequence of memory addresses accessed, each tagged
// read or write, plus the fork-join structure of the computation DAG.
//
// A Recorder streams the view into a 64-bit FNV-1a fingerprint (plus a
// count), optionally retaining a bounded prefix of raw events for
// diagnostics. Two executions have the same view iff their fingerprints
// and counts agree (up to hash collisions, negligible for test purposes).
//
// Obliviousness testing strategy (see DESIGN.md §3): the library draws all
// coins from pre-generated tapes, so for a data-oblivious algorithm the
// view is a deterministic function of (input length, tape). The test suite
// runs each algorithm on different inputs of the same length with the same
// tape and asserts fingerprint equality; separate statistical tests check
// that tape-dependent choices (bin loads, ORAM leaves) have the
// input-independent distributions the simulators in the paper rely on.
package trace

import "math"

// Kind labels a recorded event.
type Kind uint8

const (
	// Read is a memory load.
	Read Kind = iota
	// Write is a memory store.
	Write
	// ForkEvent marks a binary fork in the computation DAG.
	ForkEvent
	// JoinEvent marks the corresponding join.
	JoinEvent
	// Mark is an application-defined annotation (phase boundaries etc.).
	Mark
)

// Event is one element of the adversary's view.
type Event struct {
	Kind Kind
	Addr uint64
}

// Recorder accumulates a fingerprint of the view.
type Recorder struct {
	hash   uint64
	count  int64
	prefix []Event
	keep   int
}

const fnvOffset = 14695981039346656037
const fnvPrime = 1099511628211

// NewRecorder returns a Recorder that retains up to keepPrefix raw events
// (0 retains none).
func NewRecorder(keepPrefix int) *Recorder {
	r := &Recorder{hash: fnvOffset, keep: keepPrefix}
	if keepPrefix > 0 {
		r.prefix = make([]Event, 0, keepPrefix)
	}
	return r
}

// Record appends one event to the view.
func (r *Recorder) Record(kind Kind, addr uint64) {
	h := r.hash
	h ^= uint64(kind)
	h *= fnvPrime
	// Mix the address byte by byte (FNV-1a over the 8 little-endian bytes).
	for i := 0; i < 8; i++ {
		h ^= (addr >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	r.hash = h
	r.count++
	if len(r.prefix) < r.keep {
		r.prefix = append(r.prefix, Event{Kind: kind, Addr: addr})
	}
}

// Fingerprint summarizes a view.
type Fingerprint struct {
	Hash  uint64
	Count int64
}

// Fingerprint returns the current fingerprint.
func (r *Recorder) Fingerprint() Fingerprint {
	return Fingerprint{Hash: r.hash, Count: r.count}
}

// Count returns the number of events recorded.
func (r *Recorder) Count() int64 { return r.count }

// Prefix returns the retained raw-event prefix.
func (r *Recorder) Prefix() []Event { return r.prefix }

// Equal reports whether two fingerprints are identical.
func (f Fingerprint) Equal(g Fingerprint) bool {
	return f.Hash == g.Hash && f.Count == g.Count
}

// FirstDivergence compares two retained prefixes and returns the index of
// the first differing event, or -1 if the shared prefix is identical.
// Useful when an obliviousness test fails and we want to localize the leak.
func FirstDivergence(a, b []Event) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// ---------------------------------------------------------------------------
// Distribution checks for tape-dependent randomness.
// ---------------------------------------------------------------------------

// ChiSquareUniform computes the chi-square statistic of observed counts
// against the uniform distribution over len(counts) categories, and returns
// (statistic, degreesOfFreedom). Callers compare against a critical value;
// the helper CriticalValue999 gives a loose p≈0.001 threshold so tests are
// robust to noise.
func ChiSquareUniform(counts []int64) (stat float64, dof int) {
	k := len(counts)
	if k < 2 {
		return 0, 0
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, k - 1
	}
	expected := float64(total) / float64(k)
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, k - 1
}

// CriticalValue999 returns an upper bound for the chi-square critical value
// at significance 0.001 using the Wilson–Hilferty approximation. Tests that
// compare a statistic against this bound fail with probability ~0.1% under
// the null hypothesis.
func CriticalValue999(dof int) float64 {
	if dof <= 0 {
		return 0
	}
	k := float64(dof)
	// Wilson–Hilferty: X ~ k(1 - 2/(9k) + z*sqrt(2/(9k)))^3, z_{0.999} ≈ 3.0902.
	z := 3.0902
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}
