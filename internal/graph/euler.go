package graph

import (
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/pram"
	"oblivmc/internal/spms"
)

// Arc indexing: an undirected tree on n vertices is given as n-1 edges;
// edge e yields arc 2e = (U[e], V[e]) and arc 2e+1 = (V[e], U[e]). The
// reversal of arc a is a^1.

// vertexBits bounds vertex ids for the packed (u,v) arc keys.
const vertexBits = 30

func arcKey(u, v uint64) uint64 { return u<<vertexBits | v }

// EulerTourOblivious computes the Euler tour successor τ of every arc
// (§5.2), rooted at root: the returned slice maps arc index to successor
// arc index, with the tour's final arc mapping to 2(n-1) (the end
// sentinel). The steps — reverse arcs, oblivious sort by first endpoint,
// neighbor inspection plus oblivious propagation for the circular
// adjacency successor, and one oblivious send-receive for
// τ(u,v) = Adjsucc(v,u) — are all within the sorting bound.
func EulerTourOblivious(c *forkjoin.Ctx, sp *mem.Space, n int, edges [][2]int, root int, seed uint64, p core.Params) []int {
	m := 2 * len(edges)
	if m == 0 {
		return nil
	}
	if n >= 1<<vertexBits {
		panic("graph: too many vertices for packed arc keys")
	}
	p = normParams(p, m)

	// Build arcs: Key = packed (u,v), Val = own arc index.
	arcs := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(m))
	forkjoin.ParallelRange(c, 0, len(edges), 0, func(c *forkjoin.Ctx, lo, hi int) {
		for e := lo; e < hi; e++ {
			u, v := uint64(edges[e][0]), uint64(edges[e][1])
			arcs.Set(c, 2*e, obliv.Elem{Key: arcKey(u, v), Val: uint64(2 * e), Kind: obliv.Real})
			arcs.Set(c, 2*e+1, obliv.Elem{Key: arcKey(v, u), Val: uint64(2*e + 1), Kind: obliv.Real})
		}
	})

	// Oblivious sort by (u, v): each vertex's arcs become consecutive.
	keyFn := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real {
			return obliv.InfKey
		}
		return e.Key
	}
	obliv.SortKeyed(c, sp, arcs, arcs.Len(), keyFn, p.Sorter)

	// Adjacency successor: each arc's successor in the circular list
	// Adj(u) is its right neighbor if that shares u; the last arc of the
	// group learns the group's first arc via oblivious propagation.
	uOf := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real {
			return obliv.InfKey
		}
		return e.Key >> vertexBits
	}
	// Pass 1: Aux <- right neighbor's arc index, or sentinel if the group
	// ends here.
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := arcs.Get(c, i)
			nxt := uint64(m) // sentinel: group ends
			if i+1 < m {
				r := arcs.Get(c, i+1)
				c.Op(1)
				if uOf(r) == uOf(e) {
					nxt = r.Val
				}
			} else {
				c.Op(1)
			}
			e.Aux = nxt
			arcs.Set(c, i, e)
		}
	})
	// Pass 2: propagate the group's first arc index to close the circle.
	obliv.PropagateFirst(c, sp, arcs, uOf,
		func(e obliv.Elem, i int) (uint64, bool) { return e.Val, e.Kind == obliv.Real },
		func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem {
			c.Op(1)
			if e.Kind == obliv.Real && e.Aux == uint64(m) && ok {
				e.Aux = v
			}
			return e
		})

	// Identify e0 = first arc of Adj(root) (the tour start): exactly one
	// sorted arc is its group's first with u == root; sum (Val+1) over the
	// matching positions.
	marks := mem.Alloc[uint64](sp, m)
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := arcs.Get(c, i)
			first := i == 0
			if i > 0 {
				prev := arcs.Get(c, i-1)
				c.Op(1)
				first = uOf(prev) != uOf(e)
			}
			v := uint64(0)
			if first && uOf(e) == uint64(root) {
				v = e.Val + 1
			}
			marks.Set(c, i, v)
		}
	})
	e0 := obliv.SumU64(c, sp, marks.View(0, m)) - 1

	// τ(u,v) = Adjsucc(v,u): each arc requests its reversal's Aux.
	sources := mem.Alloc[obliv.Elem](sp, m)
	dests := mem.Alloc[obliv.Elem](sp, m)
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := arcs.Get(c, i)
			sources.Set(c, i, obliv.Elem{Key: e.Key, Val: e.Aux, Kind: obliv.Real})
			u, v := e.Key>>vertexBits, e.Key&((1<<vertexBits)-1)
			dests.Set(c, i, obliv.Elem{Key: arcKey(v, u), Aux: e.Val, Kind: obliv.Real})
		}
	})
	routed := obliv.SendReceive(c, sp, sources, dests, p.Sorter)

	// routed[i] parallels dests: the arc with original index
	// dests[i].Aux has τ = routed[i].Val; break the cycle at τ == e0.
	// Scatter τ values into original arc order obliviously.
	tau := mem.Alloc[uint64](sp, m)
	reqs := mem.Alloc[obliv.Elem](sp, m)
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := routed.Get(c, i)
			d := dests.Get(c, i)
			t := r.Val
			c.Op(1)
			if t == e0 {
				t = uint64(m) // end of tour
			}
			reqs.Set(c, i, obliv.Elem{Key: d.Aux, Val: t, Aux: uint64(i), Kind: obliv.Real})
		}
	})
	pram.ScatterResolve(c, sp, tau, reqs, p.Sorter)

	out := make([]int, m)
	for i := range out {
		out[i] = int(tau.Data()[i])
	}
	return out
}

// TreeFuncs carries the per-vertex results of the Euler-tour based tree
// computations of §5.2.
type TreeFuncs struct {
	Parent      []int    // Parent[root] = root
	Depth       []uint64 // Depth[root] = 0
	Preorder    []uint64 // 0-based; Preorder[root] = 0
	Postorder   []uint64 // 0-based; Postorder[root] = n-1
	SubtreeSize []uint64 // SubtreeSize[root] = n
}

// TreeFunctionsOblivious roots the tree at root and computes parent,
// depth, preorder and postorder numbers, and subtree sizes, by an
// oblivious Euler tour followed by oblivious (weighted) list rankings on
// the tour — the §5.2 recipe; performance is dominated by list ranking.
func TreeFunctionsOblivious(c *forkjoin.Ctx, sp *mem.Space, n int, edges [][2]int, root int, seed uint64, p core.Params) TreeFuncs {
	m := 2 * len(edges)
	tf := TreeFuncs{
		Parent:      make([]int, n),
		Depth:       make([]uint64, n),
		Preorder:    make([]uint64, n),
		Postorder:   make([]uint64, n),
		SubtreeSize: make([]uint64, n),
	}
	if n == 1 {
		tf.Parent[root] = root
		tf.Postorder[root] = 0
		tf.SubtreeSize[root] = 1
		return tf
	}
	p = normParams(p, m)
	tau := EulerTourOblivious(c, sp, n, edges, root, seed, p)

	// Tour positions via unweighted list ranking over arcs: the end arc
	// maps to itself (tail convention of ListRankOblivious).
	succ := make([]int, m)
	for a := 0; a < m; a++ {
		if tau[a] == m {
			succ[a] = a
		} else {
			succ[a] = tau[a]
		}
	}
	rankAfter := ListRankOblivious(c, sp, succ, nil, seed+1, p)
	pos := make([]uint64, m)
	for a := 0; a < m; a++ {
		pos[a] = uint64(m-1) - rankAfter[a]
	}

	// Forward arc = traversed before its reversal (static pairing a^1).
	forward := make([]bool, m)
	for a := 0; a < m; a++ {
		forward[a] = pos[a] < pos[a^1]
	}

	// Weighted rankings: forward-arc count and backward-arc count.
	wF := make([]uint64, m)
	wB := make([]uint64, m)
	var totF, totB uint64
	for a := 0; a < m; a++ {
		if forward[a] {
			wF[a] = 1
			totF++
		} else {
			wB[a] = 1
			totB++
		}
	}
	rankF := ListRankOblivious(c, sp, succ, wF, seed+2, p)
	rankB := ListRankOblivious(c, sp, succ, wB, seed+3, p)

	// Per-arc inclusive prefix counts: F(a) = totF - rankF(a) counts
	// forward arcs up to and including a (when a is forward), etc.
	// Scatter vertex values obliviously from arcs.
	parentArr := mem.Alloc[uint64](sp, n)
	depthArr := mem.Alloc[uint64](sp, n)
	preArr := mem.Alloc[uint64](sp, n)
	postArr := mem.Alloc[uint64](sp, n)
	sizeArr := mem.Alloc[uint64](sp, n)

	edgeOf := func(a int) (uint64, uint64) {
		e := edges[a/2]
		u, v := uint64(e[0]), uint64(e[1])
		if a%2 == 1 {
			u, v = v, u
		}
		return u, v
	}

	reqP := mem.Alloc[obliv.Elem](sp, m)
	reqD := mem.Alloc[obliv.Elem](sp, m)
	reqPre := mem.Alloc[obliv.Elem](sp, m)
	reqPost := mem.Alloc[obliv.Elem](sp, m)
	reqSize := mem.Alloc[obliv.Elem](sp, m)
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for a := lo; a < hi; a++ {
			u, v := edgeOf(a)
			c.Op(4)
			if forward[a] {
				fIncl := totF - rankF[a]
				bIncl := totB - rankB[a]
				sub := (pos[a^1] - pos[a] + 1) / 2
				reqP.Set(c, a, obliv.Elem{Key: v, Val: u, Aux: uint64(a), Kind: obliv.Real})
				reqD.Set(c, a, obliv.Elem{Key: v, Val: fIncl - bIncl, Aux: uint64(a), Kind: obliv.Real})
				reqPre.Set(c, a, obliv.Elem{Key: v, Val: fIncl, Aux: uint64(a), Kind: obliv.Real})
				reqSize.Set(c, a, obliv.Elem{Key: v, Val: sub, Aux: uint64(a), Kind: obliv.Real})
				reqPost.Set(c, a, obliv.Elem{Kind: obliv.Filler})
			} else {
				bIncl := totB - rankB[a]
				reqP.Set(c, a, obliv.Elem{Kind: obliv.Filler})
				reqD.Set(c, a, obliv.Elem{Kind: obliv.Filler})
				reqPre.Set(c, a, obliv.Elem{Kind: obliv.Filler})
				reqSize.Set(c, a, obliv.Elem{Kind: obliv.Filler})
				reqPost.Set(c, a, obliv.Elem{Key: u, Val: bIncl - 1, Aux: uint64(a), Kind: obliv.Real})
			}
		}
	})
	pram.ScatterResolve(c, sp, parentArr, reqP, p.Sorter)
	pram.ScatterResolve(c, sp, depthArr, reqD, p.Sorter)
	pram.ScatterResolve(c, sp, preArr, reqPre, p.Sorter)
	pram.ScatterResolve(c, sp, postArr, reqPost, p.Sorter)
	pram.ScatterResolve(c, sp, sizeArr, reqSize, p.Sorter)

	for v := 0; v < n; v++ {
		tf.Parent[v] = int(parentArr.Data()[v])
		tf.Depth[v] = depthArr.Data()[v]
		tf.Preorder[v] = preArr.Data()[v]
		tf.Postorder[v] = postArr.Data()[v]
		tf.SubtreeSize[v] = sizeArr.Data()[v]
	}
	tf.Parent[root] = root
	tf.Depth[root] = 0
	tf.Preorder[root] = 0
	tf.Postorder[root] = uint64(n - 1)
	tf.SubtreeSize[root] = uint64(n)
	return tf
}

// EulerTourSeq is the sequential reference: it produces τ by simulating
// the circular-adjacency rule directly, rooted at root.
func EulerTourSeq(n int, edges [][2]int, root int) []int {
	m := 2 * len(edges)
	// Sorted adjacency: arcs grouped by first endpoint in (u,v) order.
	type arc struct{ u, v, idx int }
	arcs := make([]arc, m)
	for e, ed := range edges {
		arcs[2*e] = arc{ed[0], ed[1], 2 * e}
		arcs[2*e+1] = arc{ed[1], ed[0], 2*e + 1}
	}
	// Simple stable sort by (u, v).
	sorted := append([]arc(nil), arcs...)
	for i := 1; i < len(sorted); i++ {
		x := sorted[i]
		j := i - 1
		for j >= 0 && (sorted[j].u > x.u || (sorted[j].u == x.u && sorted[j].v > x.v)) {
			sorted[j+1] = sorted[j]
			j--
		}
		sorted[j+1] = x
	}
	adjSucc := make([]int, m) // by arc idx: successor in Adj(u)
	first := map[int]int{}    // u -> first arc idx in its group
	for i := 0; i < len(sorted); i++ {
		if _, ok := first[sorted[i].u]; !ok {
			first[sorted[i].u] = sorted[i].idx
		}
		if i+1 < len(sorted) && sorted[i+1].u == sorted[i].u {
			adjSucc[sorted[i].idx] = sorted[i+1].idx
		} else {
			adjSucc[sorted[i].idx] = first[sorted[i].u]
		}
	}
	tau := make([]int, m)
	e0 := first[root]
	for a := 0; a < m; a++ {
		t := adjSucc[a^1]
		if t == e0 {
			t = m
		}
		tau[a] = t
	}
	return tau
}

// TreeFunctionsSeq is the sequential reference for TreeFuncs: it walks the
// Euler tour produced by EulerTourSeq once and applies the §5.2 position
// formulas directly. (The test suite additionally validates both
// implementations against structure-only properties — BFS depths, subtree
// interval containment — so the shared formulas are independently checked.)
func TreeFunctionsSeq(n int, edges [][2]int, root int) TreeFuncs {
	m := 2 * len(edges)
	tf := TreeFuncs{
		Parent:      make([]int, n),
		Depth:       make([]uint64, n),
		Preorder:    make([]uint64, n),
		Postorder:   make([]uint64, n),
		SubtreeSize: make([]uint64, n),
	}
	tf.Parent[root] = root
	tf.SubtreeSize[root] = uint64(n)
	tf.Postorder[root] = uint64(n - 1)
	if n == 1 {
		tf.Postorder[root] = 0
		tf.SubtreeSize[root] = 1
		return tf
	}
	tau := EulerTourSeq(n, edges, root)
	// Tour start: the (u,v)-smallest arc out of root.
	e0, bestKey := -1, uint64(0)
	for e, ed := range edges {
		for k := 0; k < 2; k++ {
			a := 2*e + k
			u, v := uint64(ed[0]), uint64(ed[1])
			if k == 1 {
				u, v = v, u
			}
			if int(u) == root {
				key := arcKey(u, v)
				if e0 < 0 || key < bestKey {
					e0, bestKey = a, key
				}
			}
		}
	}
	pos := make([]uint64, m)
	var fIncl, bIncl uint64
	cur := e0
	for step := 0; step < m; step++ {
		pos[cur] = uint64(step)
		if tau[cur] == m {
			break
		}
		cur = tau[cur]
	}
	cur = e0
	for step := 0; step < m; step++ {
		a := cur
		u, v := edges[a/2][0], edges[a/2][1]
		if a%2 == 1 {
			u, v = v, u
		}
		if pos[a] < pos[a^1] { // forward
			fIncl++
			tf.Parent[v] = u
			tf.Depth[v] = fIncl - bIncl
			tf.Preorder[v] = fIncl
			tf.SubtreeSize[v] = (pos[a^1] - pos[a] + 1) / 2
		} else {
			bIncl++
			tf.Postorder[u] = bIncl - 1
		}
		if tau[cur] == m {
			break
		}
		cur = tau[cur]
	}
	return tf
}

// TreeFunctionsDirect is the insecure baseline for the §5.2 tree
// computations: the same Euler-tour pipeline with direct (data-dependent)
// memory accesses — an insecure comparison sort over the arcs, direct
// neighbor/successor links, direct weighted list rankings, and direct
// scatters. Work O(n log n), span O(log² n)-shaped.
func TreeFunctionsDirect(c *forkjoin.Ctx, sp *mem.Space, n int, edges [][2]int, root int, seed uint64) TreeFuncs {
	m := 2 * len(edges)
	tf := TreeFuncs{
		Parent:      make([]int, n),
		Depth:       make([]uint64, n),
		Preorder:    make([]uint64, n),
		Postorder:   make([]uint64, n),
		SubtreeSize: make([]uint64, n),
	}
	tf.Parent[root] = root
	tf.SubtreeSize[root] = uint64(n)
	tf.Postorder[root] = uint64(n - 1)
	if n == 1 {
		tf.Postorder[root] = 0
		tf.SubtreeSize[root] = 1
		return tf
	}

	// Sort arcs by (u, v) with the insecure sample sort.
	arcs := mem.Alloc[obliv.Elem](sp, m)
	forkjoin.ParallelRange(c, 0, len(edges), 0, func(c *forkjoin.Ctx, lo, hi int) {
		for e := lo; e < hi; e++ {
			u, v := uint64(edges[e][0]), uint64(edges[e][1])
			arcs.Set(c, 2*e, obliv.Elem{Key: arcKey(u, v), Val: uint64(2 * e), Kind: obliv.Real})
			arcs.Set(c, 2*e+1, obliv.Elem{Key: arcKey(v, u), Val: uint64(2*e + 1), Kind: obliv.Real})
		}
	})
	spms.SampleSort(c, sp, arcs, seed)

	// Adjacency successors with direct neighbor reads; first-of-group via
	// a backward sequential-free approach: record group firsts directly.
	adjSucc := mem.Alloc[uint64](sp, m) // by arc id
	firstOf := mem.Alloc[uint64](sp, n) // by vertex: first arc id in group
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := arcs.Get(c, i)
			u := e.Key >> vertexBits
			if i == 0 || arcs.Get(c, i-1).Key>>vertexBits != u {
				firstOf.Set(c, int(u), e.Val)
			}
		}
	})
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := arcs.Get(c, i)
			u := e.Key >> vertexBits
			if i+1 < m {
				r := arcs.Get(c, i+1)
				if r.Key>>vertexBits == u {
					adjSucc.Set(c, int(e.Val), r.Val)
					continue
				}
			}
			adjSucc.Set(c, int(e.Val), firstOf.Get(c, int(u)))
		}
	})

	// τ(u,v) = Adjsucc(v,u), reversal = arc id ^ 1; break at Adj(root)'s
	// first arc.
	e0 := int(firstOf.Data()[root])
	succ := make([]int, m)
	for a := 0; a < m; a++ {
		t := int(adjSucc.Data()[a^1])
		if t == e0 {
			t = a // tail convention
		}
		succ[a] = t
	}

	rankAfter := ListRankDirect(c, sp, succ, nil)
	pos := make([]uint64, m)
	for a := 0; a < m; a++ {
		pos[a] = uint64(m-1) - rankAfter[a]
	}
	forward := make([]bool, m)
	wF := make([]uint64, m)
	wB := make([]uint64, m)
	var totF, totB uint64
	for a := 0; a < m; a++ {
		forward[a] = pos[a] < pos[a^1]
		if forward[a] {
			wF[a] = 1
			totF++
		} else {
			wB[a] = 1
			totB++
		}
	}
	rankF := ListRankDirect(c, sp, succ, wF)
	rankB := ListRankDirect(c, sp, succ, wB)
	for a := 0; a < m; a++ {
		u, v := edges[a/2][0], edges[a/2][1]
		if a%2 == 1 {
			u, v = v, u
		}
		if forward[a] {
			fIncl := totF - rankF[a]
			bIncl := totB - rankB[a]
			tf.Parent[v] = u
			tf.Depth[v] = fIncl - bIncl
			tf.Preorder[v] = fIncl
			tf.SubtreeSize[v] = (pos[a^1] - pos[a] + 1) / 2
		} else {
			tf.Postorder[u] = totB - rankB[a] - 1
		}
	}
	tf.Parent[root] = root
	tf.Depth[root] = 0
	tf.Preorder[root] = 0
	tf.Postorder[root] = uint64(n - 1)
	tf.SubtreeSize[root] = uint64(n)
	return tf
}
