// Package graph implements the paper's applications (§5): list ranking,
// Euler tour and rooted-tree computations, tree contraction, connected
// components, and minimum spanning forest — each in a data-oblivious,
// cache-agnostic, binary fork-join version built on the core sorting
// primitive, plus direct (insecure) baselines and sequential references
// for the Table 1 comparisons.
package graph

import (
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/pram"
)

// Tail marks a list tail: succ[i] == i.
//
// ListRankOblivious obliviously realizes (weighted) list ranking
// (Theorem 5.1): rank[i] is the sum of weights of the elements strictly
// ahead of i (between i and the tail); with nil weights every element
// weighs 1, so rank[i] is the number of elements ahead of i.
//
// Pipeline per §5.1: obliviously permute the entries (ORP), route each
// entry its successor's permuted position (send-receive), run the
// insecure pointer-jumping ranking on the permuted array — its accesses
// are distributed independently of the list structure because the
// permutation is — and route the answers back obliviously.
//
// Requirements: weights < 2^32, n < 2^31.
func ListRankOblivious(c *forkjoin.Ctx, sp *mem.Space, succ []int, weights []uint64, seed uint64, p core.Params) []uint64 {
	n := len(succ)
	if n == 0 {
		return nil
	}
	p = normParams(p, n)

	// Entries: Key = successor's original index (self = tail),
	// Val = weight, Aux = own original index.
	in := mem.Alloc[obliv.Elem](sp, n)
	for i := 0; i < n; i++ {
		w := uint64(1)
		if weights != nil {
			w = weights[i]
		}
		in.Data()[i] = obliv.Elem{Key: uint64(succ[i]), Val: w, Aux: uint64(i), Kind: obliv.Real}
	}

	perm, _ := core.MustRandomPermutation(c, sp, in, seed, p)

	// Route each permuted entry the (position, weight) of its successor.
	// Sources: (origIndex → pos<<32|weight); dests keyed by successor's
	// original index, with tails asking for ⊥.
	sources := mem.Alloc[obliv.Elem](sp, n)
	dests := mem.Alloc[obliv.Elem](sp, n)
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for pos := lo; pos < hi; pos++ {
			e := perm.Get(c, pos)
			sources.Set(c, pos, obliv.Elem{Key: e.Aux, Val: uint64(pos)<<32 | (e.Val & 0xffffffff), Kind: obliv.Real})
			d := obliv.Elem{Key: e.Key, Kind: obliv.Real}
			c.Op(1)
			if e.Key == e.Aux { // tail
				d.Kind = obliv.Filler
			}
			dests.Set(c, pos, d)
		}
	})
	routed := obliv.SendReceive(c, sp, sources, dests, p.Sorter)

	// Permuted-order successor and rank arrays. S == n marks the tail.
	s0 := mem.Alloc[uint64](sp, n)
	r0 := mem.Alloc[uint64](sp, n)
	s1 := mem.Alloc[uint64](sp, n)
	r1 := mem.Alloc[uint64](sp, n)
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for pos := lo; pos < hi; pos++ {
			e := routed.Get(c, pos)
			c.Op(1)
			if e.Kind == obliv.Real {
				s0.Set(c, pos, e.Val>>32)
				r0.Set(c, pos, e.Val&0xffffffff) // successor's weight
			} else {
				s0.Set(c, pos, uint64(n))
				r0.Set(c, pos, 0)
			}
		}
	})

	// Wyllie pointer jumping on the permuted arrays (insecure accesses,
	// safe by the random-permutation argument), fixed ⌈log₂ n⌉ rounds.
	rounds := 0
	for (1 << rounds) < n {
		rounds++
	}
	cs, cr, ns, nr := s0, r0, s1, r1
	for round := 0; round < rounds; round++ {
		// Pointer-jumping round count is ⌈log₂ n⌉ — public shape, so a
		// cancellation here reveals only the round index.
		c.Check("graph.round")
		forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
			for pos := lo; pos < hi; pos++ {
				s := cs.Get(c, pos)
				r := cr.Get(c, pos)
				c.Op(1)
				if s < uint64(n) {
					nr.Set(c, pos, r+cr.Get(c, int(s)))
					ns.Set(c, pos, cs.Get(c, int(s)))
				} else {
					nr.Set(c, pos, r)
					ns.Set(c, pos, s)
				}
			}
		})
		cs, ns = ns, cs
		cr, nr = nr, cr
	}

	// Route ranks back to original order: sources keyed by original index,
	// destinations requesting 0..n-1 in order.
	back := mem.Alloc[obliv.Elem](sp, n)
	want := mem.Alloc[obliv.Elem](sp, n)
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for pos := lo; pos < hi; pos++ {
			e := perm.Get(c, pos)
			back.Set(c, pos, obliv.Elem{Key: e.Aux, Val: cr.Get(c, pos), Kind: obliv.Real})
			want.Set(c, pos, obliv.Elem{Key: uint64(pos), Kind: obliv.Real})
		}
	})
	final := obliv.SendReceive(c, sp, back, want, p.Sorter)

	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = final.Data()[i].Val
	}
	return out
}

// ListRankDirect is the insecure baseline: Wyllie pointer jumping with
// direct accesses on the input order — O(n log n) work, O(log² n) span
// under binary forking, data-dependent access pattern.
func ListRankDirect(c *forkjoin.Ctx, sp *mem.Space, succ []int, weights []uint64) []uint64 {
	n := len(succ)
	if n == 0 {
		return nil
	}
	s0 := mem.Alloc[uint64](sp, n)
	r0 := mem.Alloc[uint64](sp, n)
	s1 := mem.Alloc[uint64](sp, n)
	r1 := mem.Alloc[uint64](sp, n)
	w := func(i int) uint64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			if succ[i] == i {
				s0.Set(c, i, uint64(n))
				r0.Set(c, i, 0)
			} else {
				s0.Set(c, i, uint64(succ[i]))
				r0.Set(c, i, w(succ[i]))
			}
		}
	})
	rounds := 0
	for (1 << rounds) < n {
		rounds++
	}
	cs, cr, ns, nr := s0, r0, s1, r1
	for round := 0; round < rounds; round++ {
		c.Check("graph.round")
		forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				s := cs.Get(c, i)
				r := cr.Get(c, i)
				c.Op(1)
				if s < uint64(n) {
					nr.Set(c, i, r+cr.Get(c, int(s)))
					ns.Set(c, i, cs.Get(c, int(s)))
				} else {
					nr.Set(c, i, r)
					ns.Set(c, i, s)
				}
			}
		})
		cs, ns = ns, cs
		cr, nr = nr, cr
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = cr.Data()[i]
	}
	return out
}

// ListRankSeq is the O(n) sequential reference.
func ListRankSeq(succ []int, weights []uint64) []uint64 {
	n := len(succ)
	out := make([]uint64, n)
	// Find the tail, then walk backwards via a predecessor map.
	pred := make([]int, n)
	for i := range pred {
		pred[i] = -1
	}
	tail := -1
	for i, s := range succ {
		if s == i {
			tail = i
		} else {
			pred[s] = i
		}
	}
	if tail < 0 {
		return out
	}
	w := func(i int) uint64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	acc := uint64(0)
	for v := tail; v >= 0; v = pred[v] {
		out[v] = acc
		acc += w(v)
	}
	return out
}

// normParams fills defaults using n.
func normParams(p core.Params, n int) core.Params {
	def := core.ParamsForN(n)
	if p.Z == 0 {
		p.Z = def.Z
	}
	if p.Gamma == 0 {
		p.Gamma = def.Gamma
	}
	if p.Sorter == nil {
		p.Sorter = def.Sorter
	}
	if p.SampleRate == 0 {
		p.SampleRate = def.SampleRate
	}
	if p.PivotSpacing == 0 {
		p.PivotSpacing = def.PivotSpacing
	}
	if p.BinCapFactor == 0 {
		p.BinCapFactor = def.BinCapFactor
	}
	return p
}

// gatherU64 wraps pram.Gather for package-local use.
func gatherU64(c *forkjoin.Ctx, sp *mem.Space, memory *mem.Array[uint64], addrs *mem.Array[uint64], srt obliv.ScheduledSorter) *mem.Array[obliv.Elem] {
	return pram.Gather(c, sp, memory, addrs, srt)
}
