package graph

// Native fuzz targets for the graph operators: the fuzzer mutates
// (seed, n, m, backend) tuples, each input derives a random graph —
// self-loops and duplicate edges included — and replays the oblivious
// op against its plain sequential reference. `go test` runs the seed
// corpus as regular tests; CI's `make fuzz-smoke` step runs each target
// under -fuzz for a short budget.

import (
	"testing"

	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/prng"
)

// fuzzGraph folds raw fuzz bytes into a legal graph: n in [2, 33],
// m in [1, 48], endpoints drawn freely (duplicates and self-loops are
// valid inputs and must not break the ops).
func fuzzGraph(seed uint64, n, m uint8) (int, [][2]int) {
	nv := int(n%32) + 2
	mv := int(m%48) + 1
	src := prng.New(seed)
	edges := make([][2]int, mv)
	for i := range edges {
		edges[i] = [2]int{src.Intn(nv), src.Intn(nv)}
	}
	return nv, edges
}

// fuzzSorter picks the sort backend under test from a fuzz byte.
func fuzzSorter(backend uint8) core.Params {
	p := testParams()
	if backend%2 == 1 {
		be := diffBackends()[1] // shuffle with fixed seed
		p.Sorter = be.srt()
	}
	return p
}

func FuzzConnectedComponents(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(10), uint8(0))
	f.Add(uint64(2), uint8(31), uint8(47), uint8(1))
	f.Add(uint64(3), uint8(2), uint8(1), uint8(0))
	f.Add(uint64(4), uint8(20), uint8(5), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, n, m, backend uint8) {
		nv, edges := fuzzGraph(seed, n, m)
		want := ConnectedComponentsSeq(nv, edges)
		got, _ := ConnectedComponentsMinHook(forkjoin.Serial(), mem.NewSpace(), nv, edges, 0, fuzzSorter(backend))
		if !sameInts(got, want) {
			t.Fatalf("minhook(n=%d, m=%d, seed=%d): labels %v, want %v", nv, len(edges), seed, got, want)
		}
		as := ConnectedComponentsOblivious(forkjoin.Serial(), mem.NewSpace(), nv, edges, fuzzSorter(backend))
		if !samePartition(as, want) {
			t.Fatalf("as(n=%d, m=%d, seed=%d): partition %v, want %v", nv, len(edges), seed, as, want)
		}
	})
}

func FuzzMSF(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(10), uint8(0))
	f.Add(uint64(2), uint8(31), uint8(47), uint8(1))
	f.Add(uint64(3), uint8(2), uint8(1), uint8(0))
	f.Add(uint64(4), uint8(16), uint8(30), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, n, m, backend uint8) {
		nv, edges := fuzzGraph(seed, n, m)
		src := prng.New(seed ^ 0xabcd)
		wedges := make([]WEdge, len(edges))
		for i, e := range edges {
			// Small weight range on purpose: duplicate weights exercise
			// the edge-id tie-break.
			wedges[i] = WEdge{U: e[0], V: e[1], W: src.Uint64n(6)}
		}
		want := MinimumSpanningForestSeq(nv, wedges)
		got := MinimumSpanningForestOblivious(forkjoin.Serial(), mem.NewSpace(), nv, wedges, fuzzSorter(backend))
		if !sameInts(got, want) {
			t.Fatalf("msf(n=%d, m=%d, seed=%d): chose %v, want %v", nv, len(wedges), seed, got, want)
		}
	})
}
