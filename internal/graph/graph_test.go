package graph

import (
	"testing"

	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/prng"
)

// testParams keeps the oblivious machinery small for unit tests.
func testParams() core.Params {
	return core.Params{Z: 32, Gamma: 4}
}

func randomListSucc(seed uint64, n int) []int {
	src := prng.New(seed)
	order := src.Perm(n)
	succ := make([]int, n)
	for k := 0; k < n; k++ {
		if k == n-1 {
			succ[order[k]] = order[k]
		} else {
			succ[order[k]] = order[k+1]
		}
	}
	return succ
}

func TestListRankObliviousUnweighted(t *testing.T) {
	for _, n := range []int{1, 2, 7, 33, 100} {
		succ := randomListSucc(uint64(n), n)
		want := ListRankSeq(succ, nil)
		sp := mem.NewSpace()
		got := ListRankOblivious(forkjoin.Serial(), sp, succ, nil, 5, testParams())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestListRankObliviousWeighted(t *testing.T) {
	const n = 50
	succ := randomListSucc(3, n)
	src := prng.New(9)
	w := make([]uint64, n)
	for i := range w {
		w[i] = src.Uint64n(1000)
	}
	want := ListRankSeq(succ, w)
	sp := mem.NewSpace()
	got := ListRankOblivious(forkjoin.Serial(), sp, succ, w, 7, testParams())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestListRankDirectMatchesSeq(t *testing.T) {
	const n = 64
	succ := randomListSucc(11, n)
	want := ListRankSeq(succ, nil)
	sp := mem.NewSpace()
	got := ListRankDirect(forkjoin.Serial(), sp, succ, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("direct rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestListRankObliviousTraceIndependent(t *testing.T) {
	// Same length, same tape seeds, different list structures: traces of
	// the oblivious phases are equal; the pointer-jumping phase touches
	// random positions whose distribution is structure-independent, so
	// with the SAME permutation tape but different inputs the overall
	// trace differs in general. We therefore check the strongest sound
	// property: the trace is a deterministic function of (n, seed) given
	// the input — re-running the same input reproduces it — and the
	// work/span/memops are structure-independent.
	const n = 40
	run := func(seed uint64) (*forkjoin.Metrics, []uint64) {
		succ := randomListSucc(seed, n)
		sp := mem.NewSpace()
		var got []uint64
		m := forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			got = ListRankOblivious(c, sp, succ, nil, 99, testParams())
		})
		return m, got
	}
	a, _ := run(1)
	b, _ := run(2)
	if a.Work != b.Work || a.Span != b.Span || a.MemOps != b.MemOps {
		t.Fatalf("cost profile depends on list structure: %+v vs %+v", a, b)
	}
	a2, _ := run(1)
	if !a.Trace.Equal(a2.Trace) {
		t.Fatal("trace not reproducible for identical input")
	}
}

func randomTree(seed uint64, n int) [][2]int {
	src := prng.New(seed)
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		p := src.Intn(v)
		edges = append(edges, [2]int{p, v})
	}
	return edges
}

func TestEulerTourObliviousIsValidTour(t *testing.T) {
	for _, n := range []int{2, 3, 8, 20} {
		edges := randomTree(uint64(n), n)
		root := 0
		sp := mem.NewSpace()
		tau := EulerTourOblivious(forkjoin.Serial(), sp, n, edges, root, 3, testParams())
		m := 2 * len(edges)
		// Walk from the start arc; must visit every arc exactly once.
		start := -1
		ref := EulerTourSeq(n, edges, root)
		for a := 0; a < m; a++ {
			if tau[a] != ref[a] {
				t.Fatalf("n=%d: tau[%d] = %d, ref %d", n, a, tau[a], ref[a])
			}
		}
		// Find the arc that nothing points to (the start).
		pointed := make([]bool, m+1)
		for a := 0; a < m; a++ {
			pointed[tau[a]] = true
		}
		for a := 0; a < m; a++ {
			if !pointed[a] {
				start = a
				break
			}
		}
		if start < 0 {
			t.Fatalf("n=%d: no start arc", n)
		}
		seen := make([]bool, m)
		cur := start
		count := 0
		for cur != m {
			if seen[cur] {
				t.Fatalf("n=%d: arc %d visited twice", n, cur)
			}
			seen[cur] = true
			count++
			cur = tau[cur]
		}
		if count != m {
			t.Fatalf("n=%d: tour visits %d arcs, want %d", n, count, m)
		}
	}
}

// bfsDepths computes depths independently of the Euler machinery.
func bfsDepths(n int, edges [][2]int, root int) []uint64 {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	depth := make([]uint64, n)
	visited := make([]bool, n)
	queue := []int{root}
	visited[root] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !visited[w] {
				visited[w] = true
				depth[w] = depth[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return depth
}

func checkTreeFuncs(t *testing.T, n int, edges [][2]int, root int, tf TreeFuncs) {
	t.Helper()
	depths := bfsDepths(n, edges, root)
	// Parent and depth against BFS (independent reference).
	for v := 0; v < n; v++ {
		if tf.Depth[v] != depths[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, tf.Depth[v], depths[v])
		}
		if v == root {
			if tf.Parent[v] != root {
				t.Fatalf("parent[root] = %d", tf.Parent[v])
			}
		} else if depths[tf.Parent[v]] != depths[v]-1 {
			t.Fatalf("parent[%d] = %d not one level up", v, tf.Parent[v])
		}
	}
	// Preorder/postorder are permutations of 0..n-1.
	seenPre := make([]bool, n)
	seenPost := make([]bool, n)
	for v := 0; v < n; v++ {
		if tf.Preorder[v] >= uint64(n) || seenPre[tf.Preorder[v]] {
			t.Fatalf("preorder not a permutation at %d", v)
		}
		if tf.Postorder[v] >= uint64(n) || seenPost[tf.Postorder[v]] {
			t.Fatalf("postorder not a permutation at %d", v)
		}
		seenPre[tf.Preorder[v]] = true
		seenPost[tf.Postorder[v]] = true
	}
	// Subtree sizes and DFS interval containment: w is in v's subtree iff
	// pre(v) <= pre(w) < pre(v)+size(v), and post(v) is the max post in
	// the subtree.
	sizes := make([]uint64, n)
	var acc func(v int) uint64
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		if v != root {
			children[tf.Parent[v]] = append(children[tf.Parent[v]], v)
		}
	}
	acc = func(v int) uint64 {
		s := uint64(1)
		for _, w := range children[v] {
			s += acc(w)
		}
		sizes[v] = s
		return s
	}
	acc(root)
	for v := 0; v < n; v++ {
		if tf.SubtreeSize[v] != sizes[v] {
			t.Fatalf("size[%d] = %d, want %d", v, tf.SubtreeSize[v], sizes[v])
		}
		for _, w := range children[v] {
			if !(tf.Preorder[v] < tf.Preorder[w] && tf.Preorder[w] < tf.Preorder[v]+tf.SubtreeSize[v]) {
				t.Fatalf("preorder interval violated for child %d of %d", w, v)
			}
			if tf.Postorder[w] >= tf.Postorder[v] {
				t.Fatalf("postorder order violated for child %d of %d", w, v)
			}
		}
	}
}

func TestTreeFunctionsSeq(t *testing.T) {
	for _, n := range []int{1, 2, 5, 30} {
		edges := randomTree(uint64(n)+5, n)
		tf := TreeFunctionsSeq(n, edges, 0)
		checkTreeFuncs(t, n, edges, 0, tf)
	}
}

func TestTreeFunctionsOblivious(t *testing.T) {
	for _, n := range []int{2, 4, 12, 24} {
		edges := randomTree(uint64(n)+7, n)
		sp := mem.NewSpace()
		tf := TreeFunctionsOblivious(forkjoin.Serial(), sp, n, edges, 0, 13, testParams())
		checkTreeFuncs(t, n, edges, 0, tf)
		// And exact agreement with the sequential tour walk.
		ref := TreeFunctionsSeq(n, edges, 0)
		for v := 0; v < n; v++ {
			if tf.Preorder[v] != ref.Preorder[v] || tf.Postorder[v] != ref.Postorder[v] {
				t.Fatalf("n=%d: orders differ from sequential reference at %d", n, v)
			}
		}
	}
}

func TestTreeFunctionsNonZeroRoot(t *testing.T) {
	const n = 10
	edges := randomTree(21, n)
	sp := mem.NewSpace()
	root := 7
	tf := TreeFunctionsOblivious(forkjoin.Serial(), sp, n, edges, root, 3, testParams())
	checkTreeFuncs(t, n, edges, root, tf)
}

// randomExprTree builds a random full binary expression tree with n leaves.
func randomExprTree(seed uint64, leaves int) ExprTree {
	src := prng.New(seed)
	n := 2*leaves - 1
	t := ExprTree{
		N:       n,
		Left:    make([]int, n),
		Right:   make([]int, n),
		Op:      make([]uint8, n),
		LeafVal: make([]uint64, n),
	}
	for i := range t.Left {
		t.Left[i] = -1
		t.Right[i] = -1
	}
	// Build bottom-up: repeatedly combine two random roots.
	roots := make([]int, leaves)
	for i := 0; i < leaves; i++ {
		roots[i] = i
		t.LeafVal[i] = src.Uint64n(1 << 20)
	}
	next := leaves
	for len(roots) > 1 {
		i := src.Intn(len(roots))
		a := roots[i]
		roots[i] = roots[len(roots)-1]
		roots = roots[:len(roots)-1]
		j := src.Intn(len(roots))
		b := roots[j]
		t.Left[next] = a
		t.Right[next] = b
		t.Op[next] = uint8(src.Intn(2))
		roots[j] = next
		next++
	}
	t.Root = roots[0]
	return t
}

func TestEvalTreeSeq(t *testing.T) {
	// 2*(3+4) = 14
	tr := ExprTree{
		N: 5, Root: 4,
		Left:    []int{-1, -1, -1, -1, 2},
		Right:   []int{-1, -1, -1, -1, 3},
		Op:      []uint8{0, 0, 0, 0, opMul},
		LeafVal: []uint64{0, 0, 2, 0, 0},
	}
	// node 3 = (0 + 1)
	tr.Left[3], tr.Right[3] = 0, 1
	tr.Op[3] = opAdd
	tr.LeafVal[0], tr.LeafVal[1] = 3, 4
	if got := EvalTreeSeq(tr); got != 14 {
		t.Fatalf("got %d, want 14", got)
	}
}

func TestEvalTreeObliviousMatchesSeq(t *testing.T) {
	for _, leaves := range []int{1, 2, 3, 5, 9, 16} {
		tr := randomExprTree(uint64(leaves)+1, leaves)
		want := EvalTreeSeq(tr)
		sp := mem.NewSpace()
		got := EvalTreeOblivious(forkjoin.Serial(), sp, tr, 5, testParams())
		if got != want {
			t.Fatalf("leaves=%d: got %d, want %d", leaves, got, want)
		}
	}
}

func TestEvalTreeObliviousDeepTree(t *testing.T) {
	// Left spine: (((v0 op v1) op v2) ...) — worst case for rake schedules.
	const leaves = 12
	n := 2*leaves - 1
	tr := ExprTree{N: n, Left: make([]int, n), Right: make([]int, n), Op: make([]uint8, n), LeafVal: make([]uint64, n)}
	for i := range tr.Left {
		tr.Left[i] = -1
		tr.Right[i] = -1
	}
	src := prng.New(77)
	for i := 0; i < leaves; i++ {
		tr.LeafVal[i] = src.Uint64n(100) + 1
	}
	cur := 0
	next := leaves
	for i := 1; i < leaves; i++ {
		tr.Left[next] = cur
		tr.Right[next] = i
		tr.Op[next] = uint8(src.Intn(2))
		cur = next
		next++
	}
	tr.Root = cur
	want := EvalTreeSeq(tr)
	sp := mem.NewSpace()
	got := EvalTreeOblivious(forkjoin.Serial(), sp, tr, 9, testParams())
	if got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func randomGraph(seed uint64, n, m int) [][2]int {
	src := prng.New(seed)
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	mapping := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if m, ok := mapping[a[i]]; ok {
			if m != b[i] {
				return false
			}
		} else {
			if _, ok := rev[b[i]]; ok {
				return false
			}
			mapping[a[i]] = b[i]
			rev[b[i]] = a[i]
		}
	}
	return true
}

func TestCCObliviousMatchesUnionFind(t *testing.T) {
	cases := []struct{ n, m int }{{8, 6}, {16, 10}, {32, 20}, {24, 60}}
	for _, cs := range cases {
		edges := randomGraph(uint64(cs.n*cs.m), cs.n, cs.m)
		want := ConnectedComponentsSeq(cs.n, edges)
		sp := mem.NewSpace()
		got := ConnectedComponentsOblivious(forkjoin.Serial(), sp, cs.n, edges, testParams())
		if !samePartition(got, want) {
			t.Fatalf("n=%d m=%d: partition mismatch\n got %v\nwant %v", cs.n, cs.m, got, want)
		}
	}
}

func TestCCObliviousEdgeCases(t *testing.T) {
	sp := mem.NewSpace()
	// No edges: all singletons.
	got := ConnectedComponentsOblivious(forkjoin.Serial(), sp, 5, nil, testParams())
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if got[i] == got[j] {
				t.Fatal("singletons merged")
			}
		}
	}
}

func TestCCDirectMatchesUnionFind(t *testing.T) {
	edges := randomGraph(42, 40, 50)
	want := ConnectedComponentsSeq(40, edges)
	sp := mem.NewSpace()
	got := ConnectedComponentsDirect(forkjoin.Serial(), sp, 40, edges)
	if !samePartition(got, want) {
		t.Fatal("direct CC mismatch")
	}
}

func TestCCObliviousTraceIndependent(t *testing.T) {
	// Same (n, m), different structure → identical access pattern.
	const n, m = 12, 10
	run := func(seed uint64) *forkjoin.Metrics {
		edges := randomGraph(seed, n, m)
		sp := mem.NewSpace()
		return forkjoin.RunMetered(forkjoin.MeterOpts{EnableTrace: true}, func(c *forkjoin.Ctx) {
			ConnectedComponentsOblivious(c, sp, n, edges, testParams())
		})
	}
	if !run(1).Trace.Equal(run(2).Trace) {
		t.Fatal("oblivious CC access pattern depends on the graph")
	}
}

func randomWeightedGraph(seed uint64, n, m int) []WEdge {
	src := prng.New(seed)
	edges := make([]WEdge, 0, m)
	for len(edges) < m {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			edges = append(edges, WEdge{U: u, V: v, W: src.Uint64n(1 << 16)})
		}
	}
	return edges
}

func msfWeight(edges []WEdge, chosen []int) uint64 {
	var w uint64
	for _, e := range chosen {
		w += edges[e].W
	}
	return w
}

func TestMSFObliviousMatchesKruskal(t *testing.T) {
	cases := []struct{ n, m int }{{8, 12}, {16, 24}, {24, 40}}
	for _, cs := range cases {
		edges := randomWeightedGraph(uint64(cs.n+cs.m), cs.n, cs.m)
		want := MinimumSpanningForestSeq(cs.n, edges)
		sp := mem.NewSpace()
		got := MinimumSpanningForestOblivious(forkjoin.Serial(), sp, cs.n, edges, testParams())
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d edges chosen, want %d", cs.n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				// Distinct effective weights make the MSF unique, so the
				// edge sets must match exactly.
				t.Fatalf("n=%d: edge sets differ: got %v want %v", cs.n, got, want)
			}
		}
		if msfWeight(edges, got) != msfWeight(edges, want) {
			t.Fatal("weight mismatch")
		}
	}
}

func TestMSFDirectMatchesKruskal(t *testing.T) {
	edges := randomWeightedGraph(99, 30, 60)
	want := MinimumSpanningForestSeq(30, edges)
	sp := mem.NewSpace()
	got := MinimumSpanningForestDirect(forkjoin.Serial(), sp, 30, edges)
	if len(got) != len(want) {
		t.Fatalf("%d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge sets differ: got %v want %v", got, want)
		}
	}
}

func TestMSFDisconnected(t *testing.T) {
	// Two components: forest has n - #components edges.
	edges := []WEdge{{0, 1, 5}, {1, 2, 3}, {3, 4, 7}}
	sp := mem.NewSpace()
	got := MinimumSpanningForestOblivious(forkjoin.Serial(), sp, 5, edges, testParams())
	if len(got) != 3 {
		t.Fatalf("chose %d edges, want 3", len(got))
	}
}

func TestGraphParallelMatchesSerial(t *testing.T) {
	const n, m = 20, 30
	edges := randomGraph(7, n, m)
	sp1 := mem.NewSpace()
	want := ConnectedComponentsOblivious(forkjoin.Serial(), sp1, n, edges, testParams())
	var got []int
	forkjoin.RunParallel(4, func(c *forkjoin.Ctx) {
		sp2 := mem.NewSpace()
		got = ConnectedComponentsOblivious(c, sp2, n, edges, testParams())
	})
	if !samePartition(got, want) {
		t.Fatal("parallel CC differs from serial")
	}
}

func TestTreeFunctionsDirectMatchesSeq(t *testing.T) {
	for _, n := range []int{2, 8, 24} {
		edges := randomTree(uint64(n)+9, n)
		ref := TreeFunctionsSeq(n, edges, 0)
		sp := mem.NewSpace()
		tf := TreeFunctionsDirect(forkjoin.Serial(), sp, n, edges, 0, 3)
		for v := 0; v < n; v++ {
			if tf.Parent[v] != ref.Parent[v] || tf.Depth[v] != ref.Depth[v] ||
				tf.Preorder[v] != ref.Preorder[v] || tf.Postorder[v] != ref.Postorder[v] ||
				tf.SubtreeSize[v] != ref.SubtreeSize[v] {
				t.Fatalf("n=%d: vertex %d mismatch", n, v)
			}
		}
	}
}

func TestEvalTreeDirectMatchesSeq(t *testing.T) {
	for _, leaves := range []int{1, 4, 10} {
		tr := randomExprTree(uint64(leaves)+3, leaves)
		want := EvalTreeSeq(tr)
		sp := mem.NewSpace()
		got := EvalTreeDirect(forkjoin.Serial(), sp, tr)
		if got != want {
			t.Fatalf("leaves=%d: got %d, want %d", leaves, got, want)
		}
	}
}
