package graph

import (
	"oblivmc/internal/core"
	"oblivmc/internal/faultinject"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/pram"
)

// ConnectedComponentsMinHook labels the components of an undirected graph
// by min-label hooking with double pointer-jumping — the streamlined
// workload variant of ConnectedComponentsOblivious. Each round is three
// oblivious bulk operations (one batched endpoint gather over both
// orientations, one min-combining conflict-resolved scatter, two pointer
// jumps), about 9 oblivious sorts, against the Awerbuch–Shiloach
// iteration's 34 — the difference between a fixed 3·⌈log₂ n⌉+5 iteration
// bound and a data-dependent round count.
//
// Correctness invariants: labels are always vertex ids of the own
// component and only ever decrease (the scatter is min-combining, and
// hooks write lo = min(D[u], D[v]) to the vertex named by the larger
// label, so D[x] <= x throughout and the pointer graph stays acyclic);
// a round that changes nothing has every edge label-equal and every
// pointer jump stable, which forces the converged labels to be exactly
// the minimum vertex id of each component.
//
// rounds > 0 runs exactly that many rounds with no convergence check: the
// access pattern is then a deterministic function of (n, m, rounds) alone
// — the shape the trace-fingerprint tests pin — at the price that too few
// rounds returns a partial (under-merged) partition. rounds == 0 runs to
// convergence and reveals the round count (same deviation class as the
// MSF iteration count; each non-converged round strictly decreases the
// label sum, so termination is unconditional and takes O(log n) rounds in
// practice).
//
// Requirements: n <= pram.MaxPrio (labels serve as scatter priorities).
// Returns the labels and the number of rounds executed.
func ConnectedComponentsMinHook(c *forkjoin.Ctx, sp *mem.Space, n int, edges [][2]int, rounds int, p core.Params) ([]int, int) {
	if n == 0 {
		return nil, 0
	}
	if n > pram.MaxPrio {
		panic("graph: min-hook CC graph too large for scatter priorities")
	}
	m := len(edges)
	p = normParams(p, n+2*m)
	srt := p.Sorter

	d := mem.Alloc[uint64](sp, n)
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			d.Set(c, v, uint64(v))
		}
	})

	// Static endpoint address array: both orientations, interleaved, so a
	// single gather fetches D[u] and D[v] for every edge.
	addrs := mem.Alloc[uint64](sp, max(2*m, 1))
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for e := lo; e < hi; e++ {
			addrs.Set(c, 2*e, uint64(edges[e][0]))
			addrs.Set(c, 2*e+1, uint64(edges[e][1]))
		}
	})

	fixed := rounds > 0
	prev := mem.Alloc[uint64](sp, n)
	changed := mem.Alloc[uint64](sp, n)
	reqs := mem.Alloc[obliv.Elem](sp, max(m, 1))
	executed := 0
	for {
		if fixed && executed == rounds {
			break
		}
		// Cancellation checkpoint between rounds: the round boundary is
		// public (fixed count, or a count the convergence mode reveals
		// anyway), so an abort here reveals only the round index.
		c.Check("graph.round")
		faultinject.Hit("graph.round")
		if !fixed {
			mem.CopyPar(c, prev, 0, d, 0, n)
		}

		if m > 0 {
			// Hook: for every cross edge, write the smaller endpoint label
			// to the vertex named by the larger, with the smaller label as
			// priority — so each written vertex receives the minimum
			// proposal, and the min-combining scatter keeps labels
			// monotonically decreasing.
			labels := pram.Gather(c, sp, d, addrs, srt)
			forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, fr, to int) {
				for e := fr; e < to; e++ {
					du := labels.Get(c, 2*e).Val
					dv := labels.Get(c, 2*e+1).Val
					lo, hi := du, dv
					if lo > hi {
						lo, hi = hi, lo
					}
					r := obliv.Elem{Kind: obliv.Filler, Aux: uint64(e)}
					c.Op(1)
					if lo != hi {
						r = obliv.Elem{Key: hi, Val: lo, Aux: lo, Kind: obliv.Real}
					}
					reqs.Set(c, e, r)
				}
			})
			pram.ScatterResolveMin(c, sp, d, reqs, srt)
		}

		// Double pointer jump: D[w] <- D[D[w]], twice.
		jumpOnce(c, sp, d, srt)
		jumpOnce(c, sp, d, srt)
		executed++

		if !fixed {
			forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, fr, to int) {
				for v := fr; v < to; v++ {
					ch := uint64(0)
					c.Op(1)
					if d.Get(c, v) != prev.Get(c, v) {
						ch = 1
					}
					changed.Set(c, v, ch)
				}
			})
			if obliv.SumU64(c, sp, changed) == 0 {
				break
			}
		}
	}

	out := make([]int, n)
	for v := range out {
		out[v] = int(d.Data()[v])
	}
	return out, executed
}
