package graph

import (
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/pram"
)

// ExprTree is a full binary expression tree (every internal node has
// exactly two children — the setting of Kosaraju–Delcher rake-based tree
// contraction [KD88]). Arithmetic is over the ring Z/2^64 (natural uint64
// wraparound), under which the rake step's affine-function composition is
// exact.
type ExprTree struct {
	N       int // number of nodes
	Root    int
	Left    []int // child ids; -1 marks a leaf
	Right   []int
	Op      []uint8  // 0 = add, 1 = mul (internal nodes)
	LeafVal []uint64 // leaf values
}

const (
	opAdd = 0
	opMul = 1

	flagAlive  = 1 << 0
	flagIsLeaf = 1 << 1
	flagIsLeft = 1 << 2
	flagOpMul  = 1 << 3

	// none is the null node reference (parent of the root, children of
	// leaves) — far above any node id, so oblivious gathers keyed by it
	// return ⊥.
	none = uint64(1) << 38
)

// Validate checks the full-binary-tree invariant.
func (t ExprTree) Validate() bool {
	if t.N == 0 {
		return false
	}
	for v := 0; v < t.N; v++ {
		l, r := t.Left[v], t.Right[v]
		if (l < 0) != (r < 0) {
			return false
		}
	}
	return true
}

// EvalTreeSeq is the recursive sequential reference.
func EvalTreeSeq(t ExprTree) uint64 {
	var rec func(v int) uint64
	rec = func(v int) uint64 {
		if t.Left[v] < 0 {
			return t.LeafVal[v]
		}
		a, b := rec(t.Left[v]), rec(t.Right[v])
		if t.Op[v] == opMul {
			return a * b
		}
		return a + b
	}
	return rec(t.Root)
}

// treeState is the flat node state of a contraction in progress.
type treeState struct {
	size    int
	parent  *mem.Array[uint64] // none for root
	left    *mem.Array[uint64] // none for leaves
	right   *mem.Array[uint64]
	flags   *mem.Array[uint64]
	affA    *mem.Array[uint64] // pending affine a·x+b on the edge to parent
	affB    *mem.Array[uint64]
	leafVal *mem.Array[uint64]
	leafNum *mem.Array[uint64] // 1-based left-to-right leaf number
}

// EvalTreeOblivious evaluates t by the paper's oblivious tree contraction
// (Theorem 5.2(i)): Kosaraju–Delcher rake rounds — all odd-numbered leaves
// that are left children, then those that are right children — realized
// with oblivious gathers/scatters, followed by an oblivious compaction
// that removes the (deterministically sized) dead fraction each round.
// Work O(Wsort(n)), span O(log n · Tsort(n)), cache O(Qsort(n)).
func EvalTreeOblivious(c *forkjoin.Ctx, sp *mem.Space, t ExprTree, seed uint64, p core.Params) uint64 {
	if !t.Validate() {
		panic("graph: EvalTreeOblivious requires a full binary tree")
	}
	if t.N == 1 {
		return t.LeafVal[t.Root]
	}
	p = normParams(p, t.N)

	st := initState(c, sp, t, seed, p)
	// Leaf count halves per round; fixed public round count.
	leaves := (t.N + 1) / 2
	rounds := 1
	for (1 << rounds) < leaves {
		rounds++
	}
	rounds++ // slack round: extra rounds are oblivious no-ops
	for r := 0; r < rounds && st.size > 1; r++ {
		// Fixed public round count (leaf count halves per round); an abort
		// here reveals only the round index.
		c.Check("graph.round")
		rakeHalfRound(c, sp, &st, true, p)
		rakeHalfRound(c, sp, &st, false, p)
		renumberLeaves(c, &st)
		compact(c, sp, &st, p)
	}
	if st.size != 1 {
		panic("graph: contraction did not converge (non-full tree?)")
	}
	a := st.affA.Data()[0]
	b := st.affB.Data()[0]
	v := st.leafVal.Data()[0]
	return a*v + b
}

// initState builds the flat arrays, deriving parents, sides, and oblivious
// left-to-right (in-order) leaf numbers. KD88's parallel rake schedule is
// only conflict-free under a numbering consistent with the Left/Right
// structure, so the numbering is derived from the structural Euler tour:
// arc 2v = parent(v)→v, arc 2v+1 = v→parent(v), with τ locally computable
// from (parent, left, right, side). The tour's leaf-entry arcs are ranked
// by one oblivious list ranking (§5.1); the arc table construction itself
// is input marshalling (static write order, secret values only).
func initState(c *forkjoin.Ctx, sp *mem.Space, t ExprTree, seed uint64, p core.Params) treeState {
	n := t.N
	st := treeState{
		size:    n,
		parent:  mem.Alloc[uint64](sp, n),
		left:    mem.Alloc[uint64](sp, n),
		right:   mem.Alloc[uint64](sp, n),
		flags:   mem.Alloc[uint64](sp, n),
		affA:    mem.Alloc[uint64](sp, n),
		affB:    mem.Alloc[uint64](sp, n),
		leafVal: mem.Alloc[uint64](sp, n),
		leafNum: mem.Alloc[uint64](sp, n),
	}
	parent := make([]int, n)
	side := make([]uint64, n)
	for v := 0; v < n; v++ {
		parent[v] = -1
	}
	for v := 0; v < n; v++ {
		if t.Left[v] >= 0 {
			parent[t.Left[v]] = v
			side[t.Left[v]] = flagIsLeft
			parent[t.Right[v]] = v
		}
	}

	// Structural Euler tour as a successor list over 2n arc slots (root
	// slots are inert self-tails), plus leaf-entry weights.
	succ := make([]int, 2*n)
	weights := make([]uint64, 2*n)
	totalLeaves := uint64(0)
	for v := 0; v < n; v++ {
		down, up := 2*v, 2*v+1
		if parent[v] < 0 { // root: inert slots
			succ[down], succ[up] = down, up
			continue
		}
		if t.Left[v] < 0 { // leaf
			succ[down] = up
			weights[down] = 1
			totalLeaves++
		} else {
			succ[down] = 2 * t.Left[v]
		}
		pv := parent[v]
		if side[v] == flagIsLeft {
			succ[up] = 2 * t.Right[pv]
		} else if parent[pv] < 0 {
			succ[up] = up // tour end
		} else {
			succ[up] = 2*pv + 1
		}
	}
	if t.Left[t.Root] < 0 { // degenerate single-node tree
		totalLeaves = 1
	}
	rank := ListRankOblivious(c, sp, succ, weights, seed, p)

	// leafNum(v) = leaf-entry arcs up to and including v's entry arc.
	leafNums := make([]uint64, n)
	for v := 0; v < n; v++ {
		if t.Left[v] < 0 && parent[v] >= 0 {
			leafNums[v] = totalLeaves - rank[2*v]
		}
	}
	if t.Left[t.Root] < 0 {
		leafNums[t.Root] = 1
	}
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			st.leafNum.Set(c, v, leafNums[v])
		}
	})

	// Fill the remaining state.
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, v, hi int) {
		for ; v < hi; v++ {
			pv := none
			if parent[v] >= 0 {
				pv = uint64(parent[v])
			}
			st.parent.Set(c, v, pv)
			l, r := none, none
			fl := uint64(flagAlive) | side[v]
			var lv uint64
			c.Op(2)
			if t.Left[v] >= 0 {
				l, r = uint64(t.Left[v]), uint64(t.Right[v])
				if t.Op[v] == opMul {
					fl |= flagOpMul
				}
			} else {
				fl |= flagIsLeaf
				lv = t.LeafVal[v]
			}
			st.left.Set(c, v, l)
			st.right.Set(c, v, r)
			st.flags.Set(c, v, fl)
			st.affA.Set(c, v, 1)
			st.affB.Set(c, v, 0)
			st.leafVal.Set(c, v, lv)
		}
	})
	return st
}

// rakeHalfRound rakes every alive odd-numbered leaf on the given side.
func rakeHalfRound(c *forkjoin.Ctx, sp *mem.Space, st *treeState, leftSide bool, p core.Params) {
	m := st.size
	srt := p.Sorter

	// Gather the parent's record for every node (root queries ⊥).
	pLeft := pram.Gather(c, sp, st.left, st.parent, srt)
	pRight := pram.Gather(c, sp, st.right, st.parent, srt)
	pFlags := pram.Gather(c, sp, st.flags, st.parent, srt)
	pA := pram.Gather(c, sp, st.affA, st.parent, srt)
	pB := pram.Gather(c, sp, st.affB, st.parent, srt)
	pParent := pram.Gather(c, sp, st.parent, st.parent, srt)

	// Sibling ids (valid only for rakers; ⊥ queries otherwise).
	sib := mem.Alloc[uint64](sp, m)
	raker := mem.Alloc[uint64](sp, m)
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for u := lo; u < hi; u++ {
			fl := st.flags.Get(c, u)
			num := st.leafNum.Get(c, u)
			pf := pFlags.Get(c, u)
			isRaker := fl&flagAlive != 0 && fl&flagIsLeaf != 0 && num%2 == 1 &&
				(fl&flagIsLeft != 0) == leftSide && pf.Kind == obliv.Real
			s := none
			c.Op(2)
			if isRaker {
				if leftSide {
					s = pRight.Get(c, u).Val
				} else {
					s = pLeft.Get(c, u).Val
				}
				raker.Set(c, u, 1)
			} else {
				// Balance the conditional access pattern: one dummy read.
				if leftSide {
					pRight.Get(c, u)
				} else {
					pLeft.Get(c, u)
				}
				raker.Set(c, u, 0)
			}
			sib.Set(c, u, s)
		}
	})
	sA := pram.Gather(c, sp, st.affA, sib, srt)
	sB := pram.Gather(c, sp, st.affB, sib, srt)
	sFlags := pram.Gather(c, sp, st.flags, sib, srt)

	// Build all write requests.
	reqSibParent := mem.Alloc[obliv.Elem](sp, m)
	reqSibA := mem.Alloc[obliv.Elem](sp, m)
	reqSibB := mem.Alloc[obliv.Elem](sp, m)
	reqLeft := mem.Alloc[obliv.Elem](sp, m)
	reqRight := mem.Alloc[obliv.Elem](sp, m)
	reqFlags := mem.Alloc[obliv.Elem](sp, 3*m)
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for u := lo; u < hi; u++ {
			isRaker := raker.Get(c, u) == 1
			s := sib.Get(c, u)
			gp := pParent.Get(c, u)
			pf := pFlags.Get(c, u)
			pa, pb := pA.Get(c, u).Val, pB.Get(c, u).Val
			sa, sb := sA.Get(c, u).Val, sB.Get(c, u).Val
			sf := sFlags.Get(c, u).Val
			a := st.affA.Get(c, u)
			b := st.affB.Get(c, u)
			lv := st.leafVal.Get(c, u)
			myParent := st.parent.Get(c, u)
			myFlags := st.flags.Get(c, u)

			fill := obliv.Elem{Kind: obliv.Filler}
			sp2, sa2, sb2, lg, rg := fill, fill, fill, fill, fill
			fU, fP, fS := fill, fill, fill
			c.Op(8)
			if isRaker {
				cu := a*lv + b
				var na, nb uint64
				if pf.Val&flagOpMul != 0 {
					na = pa * sa * cu
					nb = pa*(sb*cu) + pb
				} else {
					na = pa * sa
					nb = pa*(sb+cu) + pb
				}
				gpID := none
				if gp.Kind == obliv.Real {
					gpID = gp.Val
				}
				sp2 = obliv.Elem{Key: s, Val: gpID, Aux: uint64(u), Kind: obliv.Real}
				sa2 = obliv.Elem{Key: s, Val: na, Aux: uint64(u), Kind: obliv.Real}
				sb2 = obliv.Elem{Key: s, Val: nb, Aux: uint64(u), Kind: obliv.Real}
				// New flags for s: inherit p's side bit.
				nsf := (sf &^ uint64(flagIsLeft)) | (pf.Val & flagIsLeft)
				fS = obliv.Elem{Key: s, Val: nsf, Aux: uint64(u), Kind: obliv.Real}
				// gp's child pointer that pointed to p now points to s.
				if gpID != none {
					if pf.Val&flagIsLeft != 0 {
						lg = obliv.Elem{Key: gpID, Val: s, Aux: uint64(u), Kind: obliv.Real}
					} else {
						rg = obliv.Elem{Key: gpID, Val: s, Aux: uint64(u), Kind: obliv.Real}
					}
				}
				// Kill u and p.
				fU = obliv.Elem{Key: uint64(u), Val: myFlags &^ uint64(flagAlive), Aux: uint64(u), Kind: obliv.Real}
				fP = obliv.Elem{Key: myParent, Val: pf.Val &^ uint64(flagAlive), Aux: uint64(u), Kind: obliv.Real}
			}
			reqSibParent.Set(c, u, sp2)
			reqSibA.Set(c, u, sa2)
			reqSibB.Set(c, u, sb2)
			reqLeft.Set(c, u, lg)
			reqRight.Set(c, u, rg)
			reqFlags.Set(c, u, fS)
			reqFlags.Set(c, m+u, fU)
			reqFlags.Set(c, 2*m+u, fP)
		}
	})
	pram.ScatterResolve(c, sp, st.parent, reqSibParent, srt)
	pram.ScatterResolve(c, sp, st.affA, reqSibA, srt)
	pram.ScatterResolve(c, sp, st.affB, reqSibB, srt)
	pram.ScatterResolve(c, sp, st.left, reqLeft, srt)
	pram.ScatterResolve(c, sp, st.right, reqRight, srt)
	pram.ScatterResolve(c, sp, st.flags, reqFlags, srt)
}

// renumberLeaves halves every alive leaf's number (all odd numbers were
// raked this round).
func renumberLeaves(c *forkjoin.Ctx, st *treeState) {
	forkjoin.ParallelRange(c, 0, st.size, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for u := lo; u < hi; u++ {
			num := st.leafNum.Get(c, u)
			st.leafNum.Set(c, u, num/2)
		}
	})
}

// compact removes dead nodes: new ids by oblivious prefix sum over alive
// flags, reference relabeling by oblivious gathers, then two packed
// oblivious sorts that move the alive records to the front. The alive
// count is a deterministic function of the round (the rake schedule kills
// exactly the odd leaves and their parents), so revealing it leaks
// nothing.
func compact(c *forkjoin.Ctx, sp *mem.Space, st *treeState, p core.Params) {
	m := st.size
	srt := p.Sorter

	alive := mem.Alloc[uint64](sp, m)
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for u := lo; u < hi; u++ {
			alive.Set(c, u, st.flags.Get(c, u)&flagAlive)
		}
	})
	newID := mem.Alloc[uint64](sp, m)
	mem.CopyPar(c, newID, 0, alive, 0, m)
	obliv.PrefixSumU64(c, sp, newID, false)
	newSize := int(newID.Get(c, m-1) + alive.Get(c, m-1))

	// Relabel parent/left/right to new ids (none stays none via ⊥).
	relabel := func(arr *mem.Array[uint64]) {
		routed := pram.Gather(c, sp, newID, arr, srt)
		forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
			for u := lo; u < hi; u++ {
				r := routed.Get(c, u)
				v := none
				c.Op(1)
				if r.Kind == obliv.Real {
					v = r.Val
				}
				arr.Set(c, u, v)
			}
		})
	}
	relabel(st.parent)
	relabel(st.left)
	relabel(st.right)

	// Pack and obliviously sort records: alive first, stable by id.
	wl := obliv.NextPow2(m)
	wA := mem.Alloc[obliv.Elem](sp, wl)
	wB := mem.Alloc[obliv.Elem](sp, wl)
	const mask32 = 1<<32 - 1
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for u := lo; u < hi; u++ {
			fl := st.flags.Get(c, u)
			deadBit := uint64(1)
			if fl&flagAlive != 0 {
				deadBit = 0
			}
			key := deadBit<<41 | uint64(u)
			// Pack children into 32 bits each; none becomes mask32 (node
			// ids are < 2^31, so any value >= newSize unpacks as none).
			l, r := st.left.Get(c, u), st.right.Get(c, u)
			c.Op(2)
			if l >= mask32 {
				l = mask32
			}
			if r >= mask32 {
				r = mask32
			}
			wA.Set(c, u, obliv.Elem{
				Key: key, Val: st.parent.Get(c, u),
				Aux: l<<32 | r,
				Lbl: st.leafNum.Get(c, u), Kind: obliv.Real,
			})
			wB.Set(c, u, obliv.Elem{
				Key: key, Val: st.affA.Get(c, u), Aux: st.affB.Get(c, u),
				Lbl: st.leafVal.Get(c, u), Tag: uint32(fl), Kind: obliv.Real,
			})
		}
	})
	packKey := func(e obliv.Elem) uint64 {
		if e.Kind != obliv.Real {
			return obliv.InfKey
		}
		return e.Key
	}
	obliv.SortKeyed(c, sp, wA.View(0, wl), wl, packKey, srt)
	obliv.SortKeyed(c, sp, wB.View(0, wl), wl, packKey, srt)

	ns := treeState{
		size:    newSize,
		parent:  mem.Alloc[uint64](sp, newSize),
		left:    mem.Alloc[uint64](sp, newSize),
		right:   mem.Alloc[uint64](sp, newSize),
		flags:   mem.Alloc[uint64](sp, newSize),
		affA:    mem.Alloc[uint64](sp, newSize),
		affB:    mem.Alloc[uint64](sp, newSize),
		leafVal: mem.Alloc[uint64](sp, newSize),
		leafNum: mem.Alloc[uint64](sp, newSize),
	}
	forkjoin.ParallelRange(c, 0, newSize, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for u := lo; u < hi; u++ {
			ea := wA.Get(c, u)
			eb := wB.Get(c, u)
			ns.parent.Set(c, u, ea.Val)
			l := ea.Aux >> 32
			r := ea.Aux & mask32
			// Restore none markers (anything outside the live id range).
			c.Op(2)
			if l >= uint64(newSize) {
				l = none
			}
			if r >= uint64(newSize) {
				r = none
			}
			ns.left.Set(c, u, l)
			ns.right.Set(c, u, r)
			ns.leafNum.Set(c, u, ea.Lbl)
			ns.affA.Set(c, u, eb.Val)
			ns.affB.Set(c, u, eb.Aux)
			ns.leafVal.Set(c, u, eb.Lbl)
			ns.flags.Set(c, u, uint64(eb.Tag))
		}
	})
	*st = ns
}

// EvalTreeDirect is the insecure baseline for tree contraction: a parallel
// recursive descent with direct memory accesses — O(n) work and span
// proportional to the tree depth (for balanced random trees, O(log n); a
// skewed tree degrades it, which is exactly the weakness rake-based
// contraction fixes).
func EvalTreeDirect(c *forkjoin.Ctx, sp *mem.Space, t ExprTree) uint64 {
	left := mem.FromSlice(sp, t.Left)
	right := mem.FromSlice(sp, t.Right)
	op := mem.FromSlice(sp, t.Op)
	leafVal := mem.FromSlice(sp, t.LeafVal)
	var rec func(c *forkjoin.Ctx, v int) uint64
	rec = func(c *forkjoin.Ctx, v int) uint64 {
		l := left.Get(c, v)
		c.Op(1)
		if l < 0 {
			return leafVal.Get(c, v)
		}
		r := right.Get(c, v)
		var a, b uint64
		c.Fork(
			func(c *forkjoin.Ctx) { a = rec(c, l) },
			func(c *forkjoin.Ctx) { b = rec(c, r) },
		)
		c.Op(1)
		if op.Get(c, v) == opMul {
			return a * b
		}
		return a + b
	}
	return rec(c, t.Root)
}
