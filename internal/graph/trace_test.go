package graph

// Trace-obliviousness tests for the graph operators via the oblivtest
// harness: a graph op's fingerprint must be a function of the public
// shape only — (n, m, rounds) for fixed-round connected components,
// (n, m) for the fixed-iteration Awerbuch–Shiloach variant — never of
// which edges the graph actually contains. Revealed-convergence modes
// are excluded by design (the executed round count is declared public),
// so the MSF check pins fingerprints across weight distributions on a
// family whose revealed iteration count is structure-invariant. The
// metered bracket at the end is the grainFor invariant: fingerprints are
// defined by the sequential metered executor and cannot move because
// multi-worker pool runs happened in between.

import (
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv/oblivtest"
	"oblivmc/internal/prng"
)

// lockstepEdges draws m edges over n vertices from the content source —
// self-loops and duplicates allowed; they are secret contents like any
// other edge.
func lockstepEdges(content *prng.Source, n, m int) [][2]int {
	edges := make([][2]int, m)
	for i := range edges {
		edges[i] = [2]int{content.Intn(n), content.Intn(n)}
	}
	return edges
}

// TestCCMinHookLockstep: shape-randomized lockstep for fixed-round
// min-hook CC. Within each round all variants share (n, m, rounds) and
// differ only in edge contents; their traces must coincide.
func TestCCMinHookLockstep(t *testing.T) {
	oblivtest.Lockstep(t, "cc-minhook", 4, 3, 42,
		func(c *forkjoin.Ctx, sp *mem.Space, shape, content *prng.Source) {
			n := 8 + shape.Intn(25)
			m := n/2 + shape.Intn(n)
			rounds := 2 + shape.Intn(3)
			ConnectedComponentsMinHook(c, sp, n, lockstepEdges(content, n, m), rounds, testParams())
		})
}

// TestCCASLockstep: same for the fixed-iteration Awerbuch–Shiloach CC,
// whose iteration count is a function of n alone.
func TestCCASLockstep(t *testing.T) {
	oblivtest.Lockstep(t, "cc-as", 3, 3, 43,
		func(c *forkjoin.Ctx, sp *mem.Space, shape, content *prng.Source) {
			n := 6 + shape.Intn(14)
			m := n/2 + shape.Intn(n)
			ConnectedComponentsOblivious(c, sp, n, lockstepEdges(content, n, m), testParams())
		})
}

// TestCCMinHookShapeSensitivity: the inverse guard — a different public
// shape must change the view, or the fingerprint stopped observing the
// computation.
func TestCCMinHookShapeSensitivity(t *testing.T) {
	run := func(n, m, rounds int) oblivtest.Body {
		return func(c *forkjoin.Ctx, sp *mem.Space) {
			ConnectedComponentsMinHook(c, sp, n, lockstepEdges(prng.New(9), n, m), rounds, testParams())
		}
	}
	oblivtest.Different(t, "cc-minhook n", run(16, 20, 3), run(24, 20, 3))
	oblivtest.Different(t, "cc-minhook m", run(16, 20, 3), run(16, 28, 3))
	oblivtest.Different(t, "cc-minhook rounds", run(16, 20, 3), run(16, 20, 4))
}

// TestMSFFingerprintValueDistributions: MSF reveals its iteration count,
// so obliviousness is conditioned on it; on a star every weight
// assignment converges in the same number of iterations, which makes the
// remaining trace a pure function of shape. Three very different weight
// distributions over the same star must produce identical views.
func TestMSFFingerprintValueDistributions(t *testing.T) {
	const n = 16
	starWeights := func(draw func(i int) uint64) oblivtest.Body {
		return func(c *forkjoin.Ctx, sp *mem.Space) {
			edges := make([]WEdge, n-1)
			for i := range edges {
				edges[i] = WEdge{U: 0, V: i + 1, W: draw(i)}
			}
			MinimumSpanningForestOblivious(c, sp, n, edges, testParams())
		}
	}
	small := prng.New(5)
	large := prng.New(6)
	oblivtest.FingerprintEqual(t, "msf star weights",
		starWeights(func(i int) uint64 { return small.Uint64n(4) }),
		starWeights(func(i int) uint64 { return 1<<15 - 1 - uint64(i) }),
		starWeights(func(i int) uint64 { return large.Uint64n(1 << 15) }),
	)
}

// TestGraphFingerprintUnaffectedByParallelRuns is the grainFor-invariant
// bracket for the graph ops: metered fingerprints taken before and after
// a batch of multi-worker pool runs of the same op must agree bit for
// bit — parallel execution may never perturb the adversary's view, which
// is defined by the sequential metered executor alone.
func TestGraphFingerprintUnaffectedByParallelRuns(t *testing.T) {
	const n, m, rounds = 20, 30, 3
	edges := lockstepEdges(prng.New(77), n, m)
	fp := func() interface{} {
		return oblivtest.Fingerprint(func(c *forkjoin.Ctx, sp *mem.Space) {
			ConnectedComponentsMinHook(c, sp, n, edges, rounds, testParams())
		})
	}
	before := fp()
	for _, workers := range []int{2, 4} {
		forkjoin.RunParallel(workers, func(c *forkjoin.Ctx) {
			ConnectedComponentsMinHook(c, mem.NewSpace(), n, edges, rounds, testParams())
		})
	}
	if after := fp(); after != before {
		t.Fatalf("metered fingerprint moved across parallel runs: %v != %v", after, before)
	}
}
