package graph

import (
	"sort"

	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/pram"
)

// WEdge is a weighted undirected edge.
type WEdge struct {
	U, V int
	W    uint64
}

// Field widths for the packed min-edge selection keys: components and edge
// ids below 2^21, weights below 2^20.
const (
	msfIDBits = 21
	msfWBits  = 20
)

// MinimumSpanningForestOblivious computes the minimum spanning forest by
// Borůvka star-hooking realized with oblivious bulk operations: each
// iteration finds every star component's minimum incident cross edge (one
// oblivious sort + propagation over the 2m directed edges), hooks star
// roots along those edges (pseudo-forest with only 2-cycles, broken
// deterministically — weights are made distinct by edge-id tie-breaking),
// and pointer-jumps once. Returns the indices of the chosen edges.
//
// Deviation from Table 1 noted in DESIGN.md/EXPERIMENTS.md: the paper
// reaches O(log n) bulk steps via the randomized PR02 machine; Borůvka
// star-hooking needs O(log² n) in the worst case, and the iteration count
// (until no live cross edge remains) is revealed. Requirements: n, m <
// 2^21, weights < 2^20.
func MinimumSpanningForestOblivious(c *forkjoin.Ctx, sp *mem.Space, n int, edges []WEdge, p core.Params) []int {
	m := len(edges)
	if n == 0 || m == 0 {
		return nil
	}
	if n >= 1<<msfIDBits || m >= 1<<msfIDBits {
		panic("graph: MSF graph too large for packed keys")
	}
	p = normParams(p, n+m)
	srt := p.Sorter
	m2 := 2 * m

	d := mem.Alloc[uint64](sp, n)
	for v := 0; v < n; v++ {
		d.Data()[v] = uint64(v)
	}
	chosen := mem.Alloc[uint64](sp, m)
	star := mem.Alloc[uint64](sp, n)

	us := mem.Alloc[uint64](sp, m2)
	vs := mem.Alloc[uint64](sp, m2)
	ws := mem.Alloc[uint64](sp, m2)
	ids := mem.Alloc[uint64](sp, m2)
	forkjoin.ParallelRange(c, 0, m, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for e := lo; e < hi; e++ {
			us.Set(c, 2*e, uint64(edges[e].U))
			vs.Set(c, 2*e, uint64(edges[e].V))
			us.Set(c, 2*e+1, uint64(edges[e].V))
			vs.Set(c, 2*e+1, uint64(edges[e].U))
			// Distinct effective weights via edge-id tie-break.
			wTie := edges[e].W<<msfIDBits | uint64(e)
			ws.Set(c, 2*e, wTie)
			ws.Set(c, 2*e+1, wTie)
			ids.Set(c, 2*e, uint64(e))
			ids.Set(c, 2*e+1, uint64(e))
		}
	})

	maxIters := (log2ceilInt(n) + 2) * (log2ceilInt(n) + 2)
	sel := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(m2))
	for it := 0; it < maxIters; it++ {
		// Borůvka round boundaries: the iteration count is revealed by the
		// convergence check (see doc), so a cancellation here leaks nothing
		// beyond the round index.
		c.Check("graph.round")
		cu := pram.Gather(c, sp, d, us, srt)
		cv := pram.Gather(c, sp, d, vs, srt)

		// Live cross edges and convergence check (count revealed; see doc).
		live := mem.Alloc[uint64](sp, m2)
		forkjoin.ParallelRange(c, 0, m2, 0, func(c *forkjoin.Ctx, lo, hi int) {
			for e := lo; e < hi; e++ {
				l := uint64(0)
				c.Op(1)
				if cu.Get(c, e).Val != cv.Get(c, e).Val {
					l = 1
				}
				live.Set(c, e, l)
			}
		})
		if obliv.SumU64(c, sp, live) == 0 {
			break
		}

		computeStars(c, sp, d, star, srt)

		// Min cross edge per component label: sort (label, weight) and
		// propagate the minimum's (other endpoint, edge id) to the group.
		forkjoin.ParallelRange(c, 0, m2, 0, func(c *forkjoin.Ctx, lo, hi int) {
			for e := lo; e < hi; e++ {
				cuv := cu.Get(c, e).Val
				cvv := cv.Get(c, e).Val
				wv := ws.Get(c, e)
				id := ids.Get(c, e)
				el := obliv.Elem{Kind: obliv.Filler}
				c.Op(1)
				if cuv != cvv {
					// wv already packs (weight, edge id) in WBits+IDBits
					// bits; prefixing the component label keeps the whole
					// key below 2^62.
					el = obliv.Elem{
						Key:  cuv<<(msfWBits+msfIDBits) | wv,
						Val:  cvv<<msfIDBits | id,
						Aux:  cuv,
						Kind: obliv.Real,
					}
				}
				sel.Set(c, e, el)
			}
		})
		// Clear the pow2 padding tail.
		forkjoin.ParallelRange(c, m2, sel.Len(), 0, func(c *forkjoin.Ctx, lo, hi int) {
			for e := lo; e < hi; e++ {
				sel.Set(c, e, obliv.Elem{Kind: obliv.Filler})
			}
		})
		selKey := func(e obliv.Elem) uint64 {
			if e.Kind != obliv.Real {
				return obliv.InfKey
			}
			return e.Key
		}
		obliv.SortKeyed(c, sp, sel, sel.Len(), selKey, srt)
		groupOf := func(e obliv.Elem) uint64 {
			if e.Kind != obliv.Real {
				return obliv.InfKey
			}
			return e.Aux // component label
		}
		obliv.PropagateFirst(c, sp, sel, groupOf,
			func(e obliv.Elem, i int) (uint64, bool) { return e.Val, e.Kind == obliv.Real },
			func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem {
				if e.Kind == obliv.Real && ok {
					e.Val = v
				}
				return e
			})

		// Hook star roots along their min edge; mark chosen edges.
		sRoot := mem.Alloc[uint64](sp, sel.Len())
		forkjoin.ParallelRange(c, 0, sel.Len(), 0, func(c *forkjoin.Ctx, lo, hi int) {
			for e := lo; e < hi; e++ {
				el := sel.Get(c, e)
				a := el.Aux
				c.Op(1)
				if el.Kind != obliv.Real {
					a = uint64(n) + uint64(e) // ⊥ query
				}
				sRoot.Set(c, e, a)
			}
		})
		starOf := pram.Gather(c, sp, star, sRoot, srt)
		hookReqs := mem.Alloc[obliv.Elem](sp, sel.Len())
		chosenReqs := mem.Alloc[obliv.Elem](sp, sel.Len())
		forkjoin.ParallelRange(c, 0, sel.Len(), 0, func(c *forkjoin.Ctx, lo, hi int) {
			for e := lo; e < hi; e++ {
				el := sel.Get(c, e)
				st := starOf.Get(c, e)
				hr := obliv.Elem{Kind: obliv.Filler, Aux: uint64(e)}
				cr := obliv.Elem{Kind: obliv.Filler, Aux: uint64(e)}
				c.Op(1)
				if el.Kind == obliv.Real && st.Kind == obliv.Real && st.Val == 1 {
					other := el.Val >> msfIDBits
					id := el.Val & (1<<msfIDBits - 1)
					hr = obliv.Elem{Key: el.Aux, Val: other, Aux: uint64(e), Kind: obliv.Real}
					cr = obliv.Elem{Key: id, Val: 1, Aux: uint64(e), Kind: obliv.Real}
				}
				hookReqs.Set(c, e, hr)
				chosenReqs.Set(c, e, cr)
			}
		})
		pram.ScatterResolve(c, sp, d, hookReqs, srt)
		pram.ScatterResolve(c, sp, chosen, chosenReqs, srt)

		// Break 2-cycles: if D[D[r]] == r keep the smaller id as root.
		dw := mem.Alloc[uint64](sp, n)
		mem.CopyPar(c, dw, 0, d, 0, n)
		dd := pram.Gather(c, sp, d, dw, srt)
		forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
			for w := lo; w < hi; w++ {
				dv := dw.Get(c, w)
				ddv := dd.Get(c, w).Val
				nv := dv
				c.Op(1)
				if ddv == uint64(w) && uint64(w) < dv {
					nv = uint64(w)
				}
				d.Set(c, w, nv)
			}
		})

		jumpOnce(c, sp, d, srt)
	}

	var out []int
	for e := 0; e < m; e++ {
		if chosen.Data()[e] == 1 {
			out = append(out, e)
		}
	}
	return out
}

// MinimumSpanningForestDirect is the insecure baseline: the same Borůvka
// star-hooking with direct accesses (write phases serialized under the
// work-stealing pool; see ConnectedComponentsDirect).
func MinimumSpanningForestDirect(c *forkjoin.Ctx, sp *mem.Space, n int, edges []WEdge) []int {
	m := len(edges)
	if n == 0 || m == 0 {
		return nil
	}
	d := make([]uint64, n)
	for v := range d {
		d[v] = uint64(v)
	}
	chosen := make([]bool, m)
	star := make([]bool, n)
	stars := func() {
		for w := 0; w < n; w++ {
			star[w] = true
		}
		for w := 0; w < n; w++ {
			if d[d[w]] != d[w] {
				star[w] = false
				star[d[d[w]]] = false
			}
		}
		for w := 0; w < n; w++ {
			star[w] = star[d[w]]
		}
	}
	wTie := func(e int) uint64 { return edges[e].W<<msfIDBits | uint64(e) }
	maxIters := (log2ceilInt(n) + 2) * (log2ceilInt(n) + 2)
	minEdge := make([]int, n)
	for it := 0; it < maxIters; it++ {
		c.Check("graph.round")
		c.Op(int64(n + 2*m))
		live := false
		for e := range edges {
			if d[edges[e].U] != d[edges[e].V] {
				live = true
				break
			}
		}
		if !live {
			break
		}
		stars()
		for v := range minEdge {
			minEdge[v] = -1
		}
		for e := range edges {
			cu, cv := d[edges[e].U], d[edges[e].V]
			if cu == cv {
				continue
			}
			for _, root := range []uint64{cu, cv} {
				r := int(root)
				if minEdge[r] < 0 || wTie(e) < wTie(minEdge[r]) {
					minEdge[r] = e
				}
			}
		}
		for r := 0; r < n; r++ {
			if d[r] != uint64(r) || !star[r] || minEdge[r] < 0 {
				continue
			}
			e := minEdge[r]
			cu, cv := d[edges[e].U], d[edges[e].V]
			other := cv
			if cv == uint64(r) {
				other = cu
			}
			d[r] = other
			chosen[e] = true
		}
		for w := 0; w < n; w++ {
			if d[d[w]] == uint64(w) && uint64(w) < d[w] {
				d[w] = uint64(w)
			}
		}
		for w := 0; w < n; w++ {
			d[w] = d[d[w]]
		}
	}
	var out []int
	for e, ch := range chosen {
		if ch {
			out = append(out, e)
		}
	}
	return out
}

// MinimumSpanningForestSeq is the Kruskal reference with the same
// edge-id tie-break, so the chosen edge set is directly comparable.
func MinimumSpanningForestSeq(n int, edges []WEdge) []int {
	idx := make([]int, len(edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		wa := edges[idx[a]].W<<msfIDBits | uint64(idx[a])
		wb := edges[idx[b]].W<<msfIDBits | uint64(idx[b])
		return wa < wb
	})
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var out []int
	for _, e := range idx {
		a, b := find(edges[e].U), find(edges[e].V)
		if a != b {
			parent[a] = b
			out = append(out, e)
		}
	}
	sort.Ints(out)
	return out
}
