package graph

import (
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/pram"
)

// ConnectedComponentsOblivious labels the components of an undirected
// graph with the Awerbuch–Shiloach variant of Shiloach–Vishkin [SV82],
// realized as O(log n) iterations of O(1) oblivious bulk memory operations
// (gather / conflict-resolved scatter), each within the sorting bound —
// the Theorem 5.2(ii) route, applied to the PRAM algorithm in the "slightly
// non-blackbox" style of §5.3. The iteration count is the fixed public
// bound 3·⌈log₂ n⌉ + 5, so the access pattern depends only on (n, m).
//
// Returns a label per vertex; two vertices share a label iff connected.
func ConnectedComponentsOblivious(c *forkjoin.Ctx, sp *mem.Space, n int, edges [][2]int, p core.Params) []int {
	if n == 0 {
		return nil
	}
	p = normParams(p, n+len(edges))
	srt := p.Sorter
	m2 := 2 * len(edges)

	d := mem.Alloc[uint64](sp, n)
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for v := lo; v < hi; v++ {
			d.Set(c, v, uint64(v))
		}
	})

	// Static endpoint arrays, both orientations.
	us := mem.Alloc[uint64](sp, max(m2, 1))
	vs := mem.Alloc[uint64](sp, max(m2, 1))
	forkjoin.ParallelRange(c, 0, len(edges), 0, func(c *forkjoin.Ctx, lo, hi int) {
		for e := lo; e < hi; e++ {
			us.Set(c, 2*e, uint64(edges[e][0]))
			vs.Set(c, 2*e, uint64(edges[e][1]))
			us.Set(c, 2*e+1, uint64(edges[e][1]))
			vs.Set(c, 2*e+1, uint64(edges[e][0]))
		}
	})

	iters := 3*log2ceilInt(n) + 5
	star := mem.Alloc[uint64](sp, n)
	for it := 0; it < iters; it++ {
		// Round boundaries are a function of n alone (fixed iteration
		// bound), so a cancellation here reveals only the round index.
		c.Check("graph.round")
		// Conditional hooking: if star(u) and D[v] < D[u], D[D[u]] <- D[v].
		computeStars(c, sp, d, star, srt)
		hook(c, sp, d, star, us, vs, m2, false, srt)
		// Unconditional hooking for stagnant stars: if star(u) and
		// D[v] != D[u], hook regardless.
		computeStars(c, sp, d, star, srt)
		hook(c, sp, d, star, us, vs, m2, true, srt)
		// Pointer jumping: D[w] <- D[D[w]].
		jumpOnce(c, sp, d, srt)
	}

	out := make([]int, n)
	for v := range out {
		out[v] = int(d.Data()[v])
	}
	return out
}

// computeStars fills star[w] ∈ {0,1}: star(w) iff w's tree in the D forest
// is a star (everything points directly at the root).
func computeStars(c *forkjoin.Ctx, sp *mem.Space, d, star *mem.Array[uint64], srt obliv.ScheduledSorter) {
	n := d.Len()
	dw := mem.Alloc[uint64](sp, n)
	mem.CopyPar(c, dw, 0, d, 0, n)
	dd := pram.Gather(c, sp, d, dw, srt) // D[D[w]]

	mem.Fill(c, star, 1)
	// If D[w] != D[D[w]]: star[w] = 0 and star[D[D[w]]] = 0.
	reqs := mem.Alloc[obliv.Elem](sp, n)
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for w := lo; w < hi; w++ {
			dv := dw.Get(c, w)
			ddv := dd.Get(c, w).Val
			r := obliv.Elem{Kind: obliv.Filler, Aux: uint64(w)}
			z := star.Get(c, w)
			c.Op(1)
			if ddv != dv {
				z = 0
				r = obliv.Elem{Key: ddv, Val: 0, Aux: uint64(w), Kind: obliv.Real}
			}
			star.Set(c, w, z)
			reqs.Set(c, w, r)
		}
	})
	pram.ScatterResolve(c, sp, star, reqs, srt)
	// star[w] = star[D[w]].
	sOfD := pram.Gather(c, sp, star, dw, srt)
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for w := lo; w < hi; w++ {
			star.Set(c, w, sOfD.Get(c, w).Val)
		}
	})
}

// hook issues the (un)conditional star-hooking writes of one AS step.
func hook(c *forkjoin.Ctx, sp *mem.Space, d, star, us, vs *mem.Array[uint64], m2 int, unconditional bool, srt obliv.ScheduledSorter) {
	if m2 == 0 {
		return
	}
	du := pram.Gather(c, sp, d, us, srt)
	dv := pram.Gather(c, sp, d, vs, srt)
	su := pram.Gather(c, sp, star, us, srt)
	reqs := mem.Alloc[obliv.Elem](sp, m2)
	forkjoin.ParallelRange(c, 0, m2, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for e := lo; e < hi; e++ {
			duv := du.Get(c, e).Val
			dvv := dv.Get(c, e).Val
			isStar := su.Get(c, e).Val == 1
			cond := dvv < duv
			if unconditional {
				cond = dvv != duv
			}
			r := obliv.Elem{Kind: obliv.Filler, Aux: uint64(e)}
			c.Op(1)
			if isStar && cond {
				r = obliv.Elem{Key: duv, Val: dvv, Aux: uint64(e), Kind: obliv.Real}
			}
			reqs.Set(c, e, r)
		}
	})
	pram.ScatterResolve(c, sp, d, reqs, srt)
}

// jumpOnce applies one pointer-jumping round D[w] <- D[D[w]].
func jumpOnce(c *forkjoin.Ctx, sp *mem.Space, d *mem.Array[uint64], srt obliv.ScheduledSorter) {
	n := d.Len()
	dw := mem.Alloc[uint64](sp, n)
	mem.CopyPar(c, dw, 0, d, 0, n)
	dd := pram.Gather(c, sp, d, dw, srt)
	forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
		for w := lo; w < hi; w++ {
			d.Set(c, w, dd.Get(c, w).Val)
		}
	})
}

// ConnectedComponentsDirect is the insecure baseline: the same
// Awerbuch–Shiloach iteration with direct memory accesses and early
// termination.
func ConnectedComponentsDirect(c *forkjoin.Ctx, sp *mem.Space, n int, edges [][2]int) []int {
	if n == 0 {
		return nil
	}
	d := mem.Alloc[uint64](sp, n)
	for v := 0; v < n; v++ {
		d.Data()[v] = uint64(v)
	}
	star := make([]uint64, n)
	stars := func() {
		for w := 0; w < n; w++ {
			star[w] = 1
		}
		for w := 0; w < n; w++ {
			dv := d.Data()[w]
			dd := d.Data()[dv]
			if dd != dv {
				star[w] = 0
				star[dd] = 0
			}
		}
		for w := 0; w < n; w++ {
			star[w] = star[d.Data()[w]]
		}
	}
	// Hooking emulates arbitrary-CRCW writes; under the work-stealing pool
	// those would be real data races, so the edge loop serializes there
	// (the metered executor is sequential, so its measured span still
	// reflects the forked loop).
	hookLoop := func(body func(c *forkjoin.Ctx, e int)) {
		if c.ParallelMode() {
			for e := 0; e < len(edges); e++ {
				body(c, e)
			}
			return
		}
		forkjoin.ParallelFor(c, 0, len(edges), 0, body)
	}
	iters := 3*log2ceilInt(n) + 5
	for it := 0; it < iters; it++ {
		c.Check("graph.round")
		stars()
		hookLoop(func(c *forkjoin.Ctx, e int) {
			for dir := 0; dir < 2; dir++ {
				u, v := edges[e][0], edges[e][1]
				if dir == 1 {
					u, v = v, u
				}
				du := d.Get(c, u)
				dv := d.Get(c, v)
				c.Op(1)
				if star[u] == 1 && dv < du {
					d.Set(c, int(du), dv)
				}
			}
		})
		stars()
		hookLoop(func(c *forkjoin.Ctx, e int) {
			for dir := 0; dir < 2; dir++ {
				u, v := edges[e][0], edges[e][1]
				if dir == 1 {
					u, v = v, u
				}
				du := d.Get(c, u)
				dv := d.Get(c, v)
				c.Op(1)
				if star[u] == 1 && dv != du {
					d.Set(c, int(du), dv)
				}
			}
		})
		if c.ParallelMode() {
			for w := 0; w < n; w++ {
				d.Set(c, w, d.Get(c, int(d.Get(c, w))))
			}
		} else {
			forkjoin.ParallelRange(c, 0, n, 0, func(c *forkjoin.Ctx, lo, hi int) {
				for w := lo; w < hi; w++ {
					d.Set(c, w, d.Get(c, int(d.Get(c, w))))
				}
			})
		}
	}
	out := make([]int, n)
	for v := range out {
		out[v] = int(d.Data()[v])
	}
	return out
}

// ConnectedComponentsSeq is the union-find reference.
func ConnectedComponentsSeq(n int, edges [][2]int) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := find(e[0]), find(e[1])
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	out := make([]int, n)
	for v := range out {
		out[v] = find(v)
	}
	return out
}

func log2ceilInt(n int) int {
	l := 0
	for (1 << l) < n {
		l++
	}
	return l
}
