package graph

import (
	"testing"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
)

// TestGraphRoundCancelSite pins the round-boundary checkpoint: a tripped
// token aborts the min-hook components loop at the public "graph.round"
// site (the setup phase has no checkpoint, so round 0's boundary is the
// first), and an untripped token leaves the labels correct.
func TestGraphRoundCancelSite(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {3, 4}, {5, 6}, {6, 7}}
	const nv = 8

	cn := new(forkjoin.Cancel)
	cn.Cancel()
	var caught any
	func() {
		defer func() { caught = recover() }()
		ConnectedComponentsMinHook(forkjoin.SerialCancel(cn), mem.NewSpace(), nv, edges, 2, testParams())
	}()
	ce, ok := caught.(*forkjoin.CanceledError)
	if !ok {
		t.Fatalf("tripped components panicked %T (%v), want *forkjoin.CanceledError", caught, caught)
	}
	if ce.Site != "graph.round" {
		t.Fatalf("tripped components aborted at site %q, want graph.round", ce.Site)
	}

	// An untripped token must run to convergence and label correctly.
	labels, _ := ConnectedComponentsMinHook(
		forkjoin.SerialCancel(new(forkjoin.Cancel)), mem.NewSpace(), nv, edges, 0, testParams())
	want := []int{0, 0, 0, 3, 3, 5, 5, 5}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}
