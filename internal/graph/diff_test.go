package graph

// Differential property tests for the graph operators on the
// ScheduledSorter seam: every oblivious op runs across both sort backends
// (bitonic network, shuffle composition with a fixed seed) and both
// execution modes (serial, 4-worker pool) over a fixed zoo of graph
// families — paths, stars, cliques, duplicate edges, self-loops,
// disconnected forests — and each run must match the plain sequential
// reference AND be byte-identical to every other combo. The suite runs
// under -race in CI, so the 4-worker legs exercise the forkjoin deques
// and grained scans with real concurrency (mirrors parallel_test.go at
// the package-root layer).

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/prng"
)

// diffBackend is one sort backend leg of the differential matrix. The
// sorter is constructed fresh per run: the shuffle sorter keeps a
// per-instance call counter, so sharing one across runs would make the
// "byte-identical" comparison depend on run order.
type diffBackend struct {
	name string
	srt  func() obliv.ScheduledSorter
}

func diffBackends() []diffBackend {
	return []diffBackend{
		{"bitonic", func() obliv.ScheduledSorter { return bitonic.CacheAgnostic{} }},
		{"shuffle", func() obliv.ScheduledSorter {
			seed := uint64(0x7e57)
			return &core.ShuffleSorter{FixedSeed: &seed, Crossover: 2}
		}},
	}
}

// diffExec is one execution-mode leg: serial, or a 4-worker pool (the
// pool legs are what -race bites on).
type diffExec struct {
	name string
	run  func(body func(c *forkjoin.Ctx))
}

func diffExecs() []diffExec {
	return []diffExec{
		{"serial", func(body func(c *forkjoin.Ctx)) { body(forkjoin.Serial()) }},
		{"workers4", func(body func(c *forkjoin.Ctx)) { forkjoin.RunParallel(4, body) }},
	}
}

// graphTestCtx honors the suite-wide OBLIVMC_TEST_MODE=parallel escalation
// (the `make test-parallel` matrix leg for this package): helpers that are
// not themselves part of the serial-vs-parallel matrix run on a shared
// 4-worker pool instead of the serial context, so the whole package's
// oblivious kernels execute concurrently under -race.
func graphTestCtx() *forkjoin.Ctx {
	if os.Getenv("OBLIVMC_TEST_MODE") != "parallel" {
		return forkjoin.Serial()
	}
	graphPoolOnce.Do(func() { graphPool = forkjoin.NewPool(4) })
	return graphPool.OwnerCtx()
}

var (
	graphPool     *forkjoin.Pool
	graphPoolOnce sync.Once
)

// diffParams is testParams with an explicit sorter, the way the public
// layer injects Config.SortBackend through relSorter.
func diffParams(srt obliv.ScheduledSorter) core.Params {
	p := testParams()
	p.Sorter = srt
	return p
}

// graphFamily is one unweighted test graph. Weighted variants derive
// weights deterministically from the family name via familyWeights.
type graphFamily struct {
	name  string
	n     int
	edges [][2]int
}

// graphFamilies is the differential zoo from the issue: path, star,
// clique, duplicated edges, self-loops, and a disconnected forest with
// isolated vertices. Sizes stay small so the full 2-backend × 2-exec
// matrix finishes quickly under -race.
func graphFamilies() []graphFamily {
	var fams []graphFamily

	const pn = 24
	path := make([][2]int, 0, pn-1)
	for i := 0; i+1 < pn; i++ {
		path = append(path, [2]int{i, i + 1})
	}
	fams = append(fams, graphFamily{"path", pn, path})

	const sn = 20
	star := make([][2]int, 0, sn-1)
	for i := 1; i < sn; i++ {
		star = append(star, [2]int{0, i})
	}
	fams = append(fams, graphFamily{"star", sn, star})

	const kn = 8
	var clique [][2]int
	for u := 0; u < kn; u++ {
		for v := u + 1; v < kn; v++ {
			clique = append(clique, [2]int{u, v})
		}
	}
	fams = append(fams, graphFamily{"clique", kn, clique})

	// Random graph with every edge duplicated (and a few triplicated).
	base := randomGraph(7, 16, 12)
	dup := append(append([][2]int{}, base...), base...)
	dup = append(dup, base[0], base[len(base)-1])
	fams = append(fams, graphFamily{"dup-edges", 16, dup})

	// Random graph plus self-loops, including one on an otherwise
	// isolated vertex.
	loops := append([][2]int{}, randomGraph(8, 15, 14)...)
	loops = append(loops, [2]int{3, 3}, [2]int{0, 0}, [2]int{15, 15})
	fams = append(fams, graphFamily{"self-loops", 16, loops})

	// Disconnected forest: a path component, a star component, one lone
	// edge, and trailing isolated vertices 19..21.
	var forest [][2]int
	for i := 0; i+1 < 8; i++ {
		forest = append(forest, [2]int{i, i + 1}) // path on 0..7
	}
	for v := 9; v < 16; v++ {
		forest = append(forest, [2]int{8, v}) // star on 8..15
	}
	forest = append(forest, [2]int{17, 18})
	fams = append(fams, graphFamily{"forest", 22, forest})

	return fams
}

// familyWeights derives a deterministic weighted version of a family,
// with deliberate duplicate weights so the edge-id tie-break is load
// bearing in the MSF differential.
func familyWeights(f graphFamily, seed uint64) []WEdge {
	src := prng.New(seed)
	ws := make([]WEdge, len(f.edges))
	for i, e := range f.edges {
		ws[i] = WEdge{U: e[0], V: e[1], W: src.Uint64n(8)}
	}
	return ws
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCCMinHookDifferentialFamilies: the min-hook CC labeling equals the
// sequential union-find reference exactly (converged labels are the
// minimum vertex id per component) on every family, backend, and
// execution mode, and the executed round count plus a fixed-rounds re-run
// agree across the whole matrix.
func TestCCMinHookDifferentialFamilies(t *testing.T) {
	for _, fam := range graphFamilies() {
		want := ConnectedComponentsSeq(fam.n, fam.edges)
		var ref []int
		refRounds := -1
		for _, be := range diffBackends() {
			for _, ex := range diffExecs() {
				label := fmt.Sprintf("%s/%s/%s", fam.name, be.name, ex.name)
				var got []int
				var rounds int
				ex.run(func(c *forkjoin.Ctx) {
					got, rounds = ConnectedComponentsMinHook(c, mem.NewSpace(), fam.n, fam.edges, 0, diffParams(be.srt()))
				})
				if !sameInts(got, want) {
					t.Fatalf("%s: labels %v, want %v", label, got, want)
				}
				if ref == nil {
					ref, refRounds = got, rounds
				} else if !sameInts(got, ref) || rounds != refRounds {
					t.Fatalf("%s: combo diverged from first combo (rounds %d vs %d)", label, rounds, refRounds)
				}
				// Fixed public round count: same labels, no revealed
				// convergence check.
				var fixed []int
				ex.run(func(c *forkjoin.Ctx) {
					fixed, _ = ConnectedComponentsMinHook(c, mem.NewSpace(), fam.n, fam.edges, refRounds, diffParams(be.srt()))
				})
				if !sameInts(fixed, want) {
					t.Fatalf("%s: fixed-rounds(%d) labels %v, want %v", label, refRounds, fixed, want)
				}
			}
		}
	}
}

// TestCCASDifferentialFamilies: the Awerbuch–Shiloach labeling induces
// the same partition as the union-find reference on every family, and is
// byte-identical across backends and execution modes.
func TestCCASDifferentialFamilies(t *testing.T) {
	for _, fam := range graphFamilies() {
		want := ConnectedComponentsSeq(fam.n, fam.edges)
		var ref []int
		for _, be := range diffBackends() {
			for _, ex := range diffExecs() {
				label := fmt.Sprintf("%s/%s/%s", fam.name, be.name, ex.name)
				var got []int
				ex.run(func(c *forkjoin.Ctx) {
					got = ConnectedComponentsOblivious(c, mem.NewSpace(), fam.n, fam.edges, diffParams(be.srt()))
				})
				if !samePartition(got, want) {
					t.Fatalf("%s: partition %v, want %v", label, got, want)
				}
				if ref == nil {
					ref = got
				} else if !sameInts(got, ref) {
					t.Fatalf("%s: combo diverged from first combo:\n got %v\n ref %v", label, got, ref)
				}
			}
		}
	}
}

// TestMSFDifferentialFamilies: the oblivious minimum spanning forest
// chooses exactly the Kruskal reference's edge indices (the edge-id
// tie-break makes the forest unique) on every weighted family, backend,
// and execution mode.
func TestMSFDifferentialFamilies(t *testing.T) {
	for _, fam := range graphFamilies() {
		wedges := familyWeights(fam, 1000+uint64(len(fam.edges)))
		want := MinimumSpanningForestSeq(fam.n, wedges)
		var ref []int
		for _, be := range diffBackends() {
			for _, ex := range diffExecs() {
				label := fmt.Sprintf("%s/%s/%s", fam.name, be.name, ex.name)
				var got []int
				ex.run(func(c *forkjoin.Ctx) {
					got = MinimumSpanningForestOblivious(c, mem.NewSpace(), fam.n, wedges, diffParams(be.srt()))
				})
				if !sameInts(got, want) {
					t.Fatalf("%s: chose %v, want %v", label, got, want)
				}
				if ref == nil {
					ref = got
				} else if !sameInts(got, ref) {
					t.Fatalf("%s: combo diverged from first combo", label)
				}
			}
		}
	}
}

// TestListRankDifferentialBackends: list ranking (unweighted and
// weighted) matches the sequential reference across backends and
// execution modes on randomized lists.
func TestListRankDifferentialBackends(t *testing.T) {
	for _, n := range []int{1, 33, 64} {
		succ := randomListSucc(uint64(100+n), n)
		src := prng.New(uint64(200 + n))
		w := make([]uint64, n)
		for i := range w {
			w[i] = src.Uint64n(1000)
		}
		for _, weights := range [][]uint64{nil, w} {
			want := ListRankSeq(succ, weights)
			for _, be := range diffBackends() {
				for _, ex := range diffExecs() {
					label := fmt.Sprintf("n=%d/weighted=%t/%s/%s", n, weights != nil, be.name, ex.name)
					var got []uint64
					ex.run(func(c *forkjoin.Ctx) {
						got = ListRankOblivious(c, mem.NewSpace(), succ, weights, 5, diffParams(be.srt()))
					})
					if len(got) != len(want) {
						t.Fatalf("%s: %d ranks, want %d", label, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s: rank[%d] = %d, want %d", label, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestCCMinHookRandomGraphs widens the differential beyond the fixed
// families: random graphs over a sweep of densities, run on the
// suite-selected context (serial by default; a 4-worker pool under the
// test-parallel matrix leg).
func TestCCMinHookRandomGraphs(t *testing.T) {
	c := graphTestCtx()
	for trial := 0; trial < 12; trial++ {
		n := 2 + trial*5
		m := 1 + trial*trial
		edges := randomGraph(uint64(300+trial), n, m)
		want := ConnectedComponentsSeq(n, edges)
		got, _ := ConnectedComponentsMinHook(c, mem.NewSpace(), n, edges, 0, testParams())
		if !sameInts(got, want) {
			t.Fatalf("trial %d (n=%d m=%d): labels %v, want %v", trial, n, m, got, want)
		}
	}
}
