package forkjoin

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// stackTrace captures the panicking goroutine's stack. Called only inside
// a recovering defer, where the panicking frames are still live.
func stackTrace() []byte { return debug.Stack() }

// Cancel is a cooperative cancellation token threaded through an execution
// via Ctx. Tripping it (Cancel) makes the next Check call on any worker
// panic with *CanceledError; the panic unwinds level by level through Fork
// (each frame joins its forked sibling before re-panicking), so when it
// reaches the Run boundary the computation has fully quiesced — full
// strictness holds even for an aborted run.
//
// Obliviousness: Check performs one uninstrumented atomic load and is
// placed only at public-shape points (between sort passes, network layers,
// graph rounds), so an execution whose token never trips has an access
// pattern byte-identical to one with no token at all, and an abort reveals
// only the public site name of the pass that observed it.
type Cancel struct {
	flag atomic.Bool
}

// Cancel trips the token. Safe to call from any goroutine, repeatedly.
func (cn *Cancel) Cancel() { cn.flag.Store(true) }

// Canceled reports whether the token has been tripped. Nil-safe.
func (cn *Cancel) Canceled() bool { return cn != nil && cn.flag.Load() }

// CanceledError is the panic payload of a tripped Check: Site names the
// public checkpoint (e.g. "benes.level", "graph.round") that observed the
// cancellation — a function of public shape only.
type CanceledError struct {
	Site string
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("forkjoin: execution canceled (at %s)", e.Site)
}

// TaskPanic wraps a panic recovered from a forked task so it can be
// re-raised in the joining frame (and ultimately converted to a typed
// error at the run boundary) without losing the original value or the
// stack of the panicking goroutine.
type TaskPanic struct {
	Val   any
	Stack []byte
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("forkjoin: panic in forked task: %v", p.Val)
}

// wrapPanic normalizes a recovered value for re-raising: cancellation and
// already-wrapped task panics pass through unchanged (keeping the original
// site/stack); anything else is wrapped with the captured stack.
func wrapPanic(r any, stack []byte) any {
	switch r.(type) {
	case *CanceledError, *TaskPanic:
		return r
	}
	return &TaskPanic{Val: r, Stack: stack}
}

// SerialCancel returns a serial context carrying cn (Serial with a
// cancellation token).
func SerialCancel(cn *Cancel) *Ctx { return &Ctx{cancel: cn} }

// WithCancel returns a copy of c carrying cn. The returned context shares
// c's executor; in parallel mode prefer Pool.RunCancel, which arms every
// worker's context so stolen tasks check the token too.
func (c *Ctx) WithCancel(cn *Cancel) *Ctx {
	cp := *c
	cp.cancel = cn
	return &cp
}

// Check is the cooperative cancellation checkpoint: it panics with
// *CanceledError{Site: site} when the context's token has been tripped.
// Call it only at public-shape points — the call itself is one atomic load
// with no instrumented memory operations, so an untripped run's metered
// trace and access pattern are unchanged by any number of checks.
func (c *Ctx) Check(site string) {
	if c != nil && c.cancel.Canceled() {
		panic(&CanceledError{Site: site})
	}
}
