package forkjoin

// DefaultGrain is the leaf size used by ParallelFor in parallel mode when
// the caller passes grain <= 0. In metered mode the grain is always 1 so
// that the measured span is the span of the fully forked binary tree, which
// is what the paper's bounds describe.
const DefaultGrain = 64

// grain resolves the effective leaf size for c.
func grainFor(c *Ctx, g int) int {
	if c.Metered() {
		return 1
	}
	if g <= 0 {
		return DefaultGrain
	}
	return g
}

// ParallelFor executes body(i) for i in [lo, hi) using a binary fork tree,
// the canonical way a k-way parallel loop is expressed in the binary
// fork-join model (footnote a of the REC-ORBA pseudocode).
func ParallelFor(c *Ctx, lo, hi, grain int, body func(*Ctx, int)) {
	g := grainFor(c, grain)
	var rec func(c *Ctx, lo, hi int)
	rec = func(c *Ctx, lo, hi int) {
		if hi-lo <= g {
			for i := lo; i < hi; i++ {
				body(c, i)
			}
			return
		}
		mid := lo + (hi-lo)/2
		c.Fork(
			func(c *Ctx) { rec(c, lo, mid) },
			func(c *Ctx) { rec(c, mid, hi) },
		)
	}
	if hi > lo {
		rec(c, lo, hi)
	}
}

// ParallelRange is like ParallelFor but hands each leaf the whole [lo, hi)
// subrange, letting hot loops avoid per-index closure calls.
func ParallelRange(c *Ctx, lo, hi, grain int, body func(*Ctx, int, int)) {
	g := grainFor(c, grain)
	var rec func(c *Ctx, lo, hi int)
	rec = func(c *Ctx, lo, hi int) {
		if hi-lo <= g {
			body(c, lo, hi)
			return
		}
		mid := lo + (hi-lo)/2
		c.Fork(
			func(c *Ctx) { rec(c, lo, mid) },
			func(c *Ctx) { rec(c, mid, hi) },
		)
	}
	if hi > lo {
		rec(c, lo, hi)
	}
}

// ParallelDo runs the given functions as a balanced binary fork tree.
func ParallelDo(c *Ctx, fns ...func(*Ctx)) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0](c)
		return
	case 2:
		c.Fork(fns[0], fns[1])
		return
	}
	mid := len(fns) / 2
	c.Fork(
		func(c *Ctx) { ParallelDo(c, fns[:mid]...) },
		func(c *Ctx) { ParallelDo(c, fns[mid:]...) },
	)
}
