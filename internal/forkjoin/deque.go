package forkjoin

import "sync/atomic"

// deque is a Chase–Lev work-stealing deque (Chase & Lev, "Dynamic Circular
// Work-Stealing Deque", SPAA 2005) specialized to *task.
//
// The owner pushes and pops at the bottom; thieves steal from the top. Go's
// atomic operations are sequentially consistent, which is stronger than the
// fences the algorithm requires.
//
// top is CASed by thieves while the owner rewrites bottom on every push and
// pop; if the two indices share a cache line each steal attempt invalidates
// the owner's line and every push pays a coherence miss. The pads keep top,
// bottom, and the ring pointer on separate 64-byte lines (the deque is
// embedded in worker, so the pads also insulate it from the worker's other
// fields).
type deque struct {
	top    atomic.Int64
	_      [56]byte
	bottom atomic.Int64
	_      [56]byte
	buf    atomic.Pointer[ring]
	_      [56]byte
}

type ring struct {
	mask  int64
	slots []atomic.Pointer[task]
}

func newRing(capacity int64) *ring {
	if capacity&(capacity-1) != 0 {
		panic("forkjoin: ring capacity must be a power of two")
	}
	return &ring{mask: capacity - 1, slots: make([]atomic.Pointer[task], capacity)}
}

func (r *ring) get(i int64) *task    { return r.slots[i&r.mask].Load() }
func (r *ring) put(i int64, t *task) { r.slots[i&r.mask].Store(t) }
func (r *ring) size() int64          { return r.mask + 1 }

func (d *deque) init() {
	d.buf.Store(newRing(64))
}

// push adds t at the bottom. Only the owner calls push.
func (d *deque) push(t *task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.buf.Load()
	if b-tp >= r.size() {
		r = d.grow(r, b, tp)
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying live entries. Only the owner calls grow.
func (d *deque) grow(old *ring, b, tp int64) *ring {
	nr := newRing(old.size() * 2)
	for i := tp; i < b; i++ {
		nr.put(i, old.get(i))
	}
	d.buf.Store(nr)
	return nr
}

// pop removes and returns the bottom task, or nil if the deque is empty.
// Only the owner calls pop.
func (d *deque) pop() *task {
	b := d.bottom.Load() - 1
	r := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(t)
		return nil
	}
	tk := r.get(b)
	if t == b {
		// Last element: race against thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			tk = nil // lost the race
		}
		d.bottom.Store(t + 1)
	}
	return tk
}

// steal removes and returns the top task, or nil if the deque is empty or
// the steal raced with another thief or the owner.
func (d *deque) steal() *task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	r := d.buf.Load()
	tk := r.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return tk
}
