package forkjoin

import (
	"sync/atomic"
	"testing"
)

// fib computes Fibonacci with naive binary forking — the classic fork-join
// stress test exercising deep nesting and heavy stealing.
func fib(c *Ctx, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var a, b int64
	c.Fork(
		func(c *Ctx) { fib(c, n-1, &a) },
		func(c *Ctx) { fib(c, n-2, &b) },
	)
	*out = a + b
}

func TestSerialFork(t *testing.T) {
	var got int64
	fib(Serial(), 15, &got)
	if got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
}

func TestParallelFibCorrect(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		var got int64
		RunParallel(workers, func(c *Ctx) { fib(c, 20, &got) })
		if got != 6765 {
			t.Fatalf("workers=%d: fib(20) = %d, want 6765", workers, got)
		}
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for iter := 0; iter < 20; iter++ {
		var got int64
		p.Run(func(c *Ctx) { fib(c, 15, &got) })
		if got != 610 {
			t.Fatalf("iter %d: got %d", iter, got)
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	const n = 10000
	marks := make([]int32, n)
	RunParallel(4, func(c *Ctx) {
		ParallelFor(c, 0, n, 7, func(c *Ctx, i int) {
			atomic.AddInt32(&marks[i], 1)
		})
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
}

func TestParallelForEmptyAndSingle(t *testing.T) {
	count := int32(0)
	RunParallel(2, func(c *Ctx) {
		ParallelFor(c, 5, 5, 1, func(c *Ctx, i int) { atomic.AddInt32(&count, 1) })
		ParallelFor(c, 3, 4, 1, func(c *Ctx, i int) {
			if i != 3 {
				t.Errorf("index %d", i)
			}
			atomic.AddInt32(&count, 1)
		})
	})
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestParallelRangePartition(t *testing.T) {
	const n = 5000
	var total int64
	var mu atomic.Int64
	_ = total
	RunParallel(4, func(c *Ctx) {
		ParallelRange(c, 0, n, 11, func(c *Ctx, lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			mu.Add(s)
		})
	})
	want := int64(n) * (n - 1) / 2
	if mu.Load() != want {
		t.Fatalf("sum = %d, want %d", mu.Load(), want)
	}
}

func TestParallelDo(t *testing.T) {
	var flags [5]atomic.Bool
	RunParallel(3, func(c *Ctx) {
		ParallelDo(c,
			func(c *Ctx) { flags[0].Store(true) },
			func(c *Ctx) { flags[1].Store(true) },
			func(c *Ctx) { flags[2].Store(true) },
			func(c *Ctx) { flags[3].Store(true) },
			func(c *Ctx) { flags[4].Store(true) },
		)
	})
	for i := range flags {
		if !flags[i].Load() {
			t.Fatalf("fn %d did not run", i)
		}
	}
}

func TestMeteredWorkSpanSimple(t *testing.T) {
	// Two branches each doing 10 ops: work = 20 + fork/join bookkeeping (2),
	// span = 10 + fork + join = 12.
	m := RunMetered(MeterOpts{}, func(c *Ctx) {
		c.Fork(
			func(c *Ctx) { c.Op(10) },
			func(c *Ctx) { c.Op(10) },
		)
	})
	if m.Work != 22 {
		t.Fatalf("work = %d, want 22", m.Work)
	}
	if m.Span != 12 {
		t.Fatalf("span = %d, want 12", m.Span)
	}
	if m.Forks != 1 {
		t.Fatalf("forks = %d, want 1", m.Forks)
	}
}

func TestMeteredSpanIsMax(t *testing.T) {
	m := RunMetered(MeterOpts{}, func(c *Ctx) {
		c.Fork(
			func(c *Ctx) { c.Op(100) },
			func(c *Ctx) { c.Op(3) },
		)
	})
	if m.Span != 102 {
		t.Fatalf("span = %d, want 102 (max branch + fork + join)", m.Span)
	}
	m = RunMetered(MeterOpts{}, func(c *Ctx) {
		c.Fork(
			func(c *Ctx) { c.Op(3) },
			func(c *Ctx) { c.Op(100) },
		)
	})
	if m.Span != 102 {
		t.Fatalf("span = %d, want 102 (symmetric)", m.Span)
	}
}

func TestMeteredNestedSpan(t *testing.T) {
	// A balanced binary tree of depth d with unit leaf work has span
	// 2d + 1 (fork+join per level, 1 leaf op).
	var tree func(c *Ctx, d int)
	tree = func(c *Ctx, d int) {
		if d == 0 {
			c.Op(1)
			return
		}
		c.Fork(func(c *Ctx) { tree(c, d-1) }, func(c *Ctx) { tree(c, d-1) })
	}
	const d = 6
	m := RunMetered(MeterOpts{}, func(c *Ctx) { tree(c, d) })
	if m.Span != 2*d+1 {
		t.Fatalf("span = %d, want %d", m.Span, 2*d+1)
	}
	if m.Forks != (1<<d)-1 {
		t.Fatalf("forks = %d, want %d", m.Forks, (1<<d)-1)
	}
	// Work: 2^d leaf ops + 2 per fork.
	if m.Work != (1<<d)+2*((1<<d)-1) {
		t.Fatalf("work = %d", m.Work)
	}
}

func TestMeteredParallelForSpanLogarithmic(t *testing.T) {
	// ParallelFor in metered mode uses grain 1: span should grow like
	// log n, not n.
	span := func(n int) int64 {
		m := RunMetered(MeterOpts{}, func(c *Ctx) {
			ParallelFor(c, 0, n, 1000, func(c *Ctx, i int) { c.Op(1) })
		})
		return m.Span
	}
	s1, s2 := span(1<<8), span(1<<12)
	if s2 > 4*s1 {
		t.Fatalf("span grew too fast: %d -> %d (should be logarithmic)", s1, s2)
	}
	if s2 <= s1 {
		t.Fatalf("span should still grow: %d -> %d", s1, s2)
	}
}

func TestMeteredAccessCounts(t *testing.T) {
	m := RunMetered(MeterOpts{CacheM: 64, CacheB: 8, EnableTrace: true}, func(c *Ctx) {
		for i := 0; i < 10; i++ {
			c.Access(uint64(i), false)
		}
		for i := 0; i < 5; i++ {
			c.Access(uint64(i), true)
		}
	})
	if m.Reads != 10 || m.Writes != 5 || m.MemOps != 15 {
		t.Fatalf("reads=%d writes=%d memops=%d", m.Reads, m.Writes, m.MemOps)
	}
	if m.CacheAccesses != 15 {
		t.Fatalf("cache accesses = %d", m.CacheAccesses)
	}
	if m.CacheMisses != 2 { // addresses 0..9 cover blocks 0 and 1
		t.Fatalf("cache misses = %d, want 2", m.CacheMisses)
	}
	if m.Trace.Count != 15 {
		t.Fatalf("trace count = %d", m.Trace.Count)
	}
}

func TestMeteredTraceDeterministic(t *testing.T) {
	run := func() *Metrics {
		return RunMetered(MeterOpts{EnableTrace: true}, func(c *Ctx) {
			ParallelFor(c, 0, 100, 1, func(c *Ctx, i int) {
				c.Access(uint64(i*3), i%2 == 0)
			})
		})
	}
	a, b := run(), run()
	if !a.Trace.Equal(b.Trace) {
		t.Fatal("metered trace not deterministic")
	}
}

func TestDequeLIFOFIFO(t *testing.T) {
	var d deque
	d.init()
	t1, t2, t3 := &task{}, &task{}, &task{}
	d.push(t1)
	d.push(t2)
	d.push(t3)
	// Owner pops newest first.
	if d.pop() != t3 {
		t.Fatal("pop should return newest")
	}
	// Thief steals oldest.
	if d.steal() != t1 {
		t.Fatal("steal should return oldest")
	}
	if d.pop() != t2 {
		t.Fatal("pop should return remaining")
	}
	if d.pop() != nil || d.steal() != nil {
		t.Fatal("empty deque should return nil")
	}
}

func TestDequeGrowth(t *testing.T) {
	var d deque
	d.init()
	tasks := make([]*task, 1000)
	for i := range tasks {
		tasks[i] = &task{}
		d.push(tasks[i])
	}
	for i := len(tasks) - 1; i >= 0; i-- {
		if got := d.pop(); got != tasks[i] {
			t.Fatalf("pop %d: wrong task", i)
		}
	}
}

func TestDequeConcurrentSteals(t *testing.T) {
	// One owner pushes/pops, several thieves steal; every task must be
	// executed exactly once.
	const n = 200000
	var d deque
	d.init()
	var executed atomic.Int64
	counts := make([]atomic.Int32, n)
	done := make(chan struct{})
	stop := atomic.Bool{}
	thief := func() {
		for !stop.Load() {
			if tk := d.steal(); tk != nil {
				tk.fn(nil)
			}
		}
		done <- struct{}{}
	}
	for i := 0; i < 3; i++ {
		go thief()
	}
	mk := func(i int) *task {
		return &task{fn: func(*Ctx) {
			counts[i].Add(1)
			executed.Add(1)
		}}
	}
	next := 0
	for next < n {
		burst := 16
		for b := 0; b < burst && next < n; b++ {
			d.push(mk(next))
			next++
		}
		for {
			tk := d.pop()
			if tk == nil {
				break
			}
			tk.fn(nil)
		}
	}
	for executed.Load() < n {
	}
	stop.Store(true)
	for i := 0; i < 3; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d executed %d times", i, c)
		}
	}
}

func TestStressUnbalancedTree(t *testing.T) {
	// Heavily unbalanced fork trees exercise the leapfrogging join path.
	var count atomic.Int64
	var chain func(c *Ctx, depth int)
	chain = func(c *Ctx, depth int) {
		if depth == 0 {
			count.Add(1)
			return
		}
		c.Fork(
			func(c *Ctx) { chain(c, depth-1) },
			func(c *Ctx) { count.Add(1) },
		)
	}
	RunParallel(4, func(c *Ctx) { chain(c, 3000) })
	if count.Load() != 3001 {
		t.Fatalf("count = %d, want 3001", count.Load())
	}
}

func TestMarkOnlyAffectsTrace(t *testing.T) {
	a := RunMetered(MeterOpts{EnableTrace: true}, func(c *Ctx) {
		c.Mark(1)
		c.Op(5)
	})
	b := RunMetered(MeterOpts{EnableTrace: true}, func(c *Ctx) {
		c.Mark(2)
		c.Op(5)
	})
	if a.Work != b.Work || a.Span != b.Span {
		t.Fatal("Mark should not contribute work/span")
	}
	if a.Trace.Equal(b.Trace) {
		t.Fatal("different marks should change the trace")
	}
}

func TestWorkerIDSeam(t *testing.T) {
	// Serial and metered contexts report the degenerate single-worker view.
	if Serial().WorkerID() != 0 || Serial().Workers() != 1 {
		t.Fatalf("serial ctx: WorkerID=%d Workers=%d", Serial().WorkerID(), Serial().Workers())
	}
	RunMetered(MeterOpts{}, func(c *Ctx) {
		if c.WorkerID() != 0 || c.Workers() != 1 {
			t.Errorf("metered ctx: WorkerID=%d Workers=%d", c.WorkerID(), c.Workers())
		}
	})

	// Pool mode: per-worker accumulators indexed by WorkerID, padded to a
	// cache line each, summed without any synchronization — the scratch-seam
	// usage the accessor exists for. Every leaf must see a stable in-range id.
	const n = 1 << 14
	RunParallel(4, func(c *Ctx) {
		if c.Workers() != 4 {
			t.Errorf("Workers() = %d, want 4", c.Workers())
		}
		type padded struct {
			v int64
			_ [56]byte
		}
		acc := make([]padded, c.Workers())
		ParallelFor(c, 0, n, 16, func(c *Ctx, i int) {
			id := c.WorkerID()
			if id < 0 || id >= len(acc) {
				panic("WorkerID out of range")
			}
			acc[id].v++
		})
		var total int64
		for i := range acc {
			total += acc[i].v
		}
		if total != n {
			t.Errorf("per-worker accumulation lost updates: got %d, want %d", total, n)
		}
	})
}
