// Package forkjoin implements the binary fork-join computation model of the
// paper (§A.2): parallelism is expressed exclusively through paired binary
// fork and join operations, and any two fork-join computations are either
// disjoint or nested.
//
// The package provides two executors over the same algorithm code:
//
//   - a parallel executor (Pool) that schedules tasks with randomized work
//     stealing over Chase–Lev deques, the scheduler assumed by the paper's
//     performance model [BL99] — Go's own scheduler provides no fork-join
//     locality or bound guarantees, so we build one;
//
//   - a metered executor (RunMetered) that executes the computation
//     sequentially in depth-first order while computing the exact total
//     work, the exact span (critical-path length of the series-parallel
//     DAG), the number of memory operations, the sequential cache
//     complexity Q under an ideal (M,B) LRU cache, and the access-pattern
//     fingerprint that constitutes the adversary's view (§B).
//
// Algorithms receive a *Ctx and never know which executor is driving them.
package forkjoin

import (
	"sync/atomic"

	"oblivmc/internal/cachesim"
	"oblivmc/internal/trace"
)

// Ctx is the per-execution handle threaded through every algorithm. The
// zero value is a valid serial context (no instrumentation, no
// parallelism), which is convenient in tests.
type Ctx struct {
	w      *worker // non-nil in parallel mode
	m      *Meter  // non-nil in metered mode
	cancel *Cancel // non-nil when the run carries a cancellation token
}

// Serial returns a context that executes forks sequentially with no
// instrumentation.
func Serial() *Ctx { return &Ctx{} }

// Meter accumulates the metrics of a metered run. Fields are manipulated
// directly by the mem package's hot path; the package is internal, so the
// exported fields are not API surface.
type Meter struct {
	work   int64
	span   int64 // span along the current path
	memOps int64
	reads  int64
	writes int64
	forks  int64
	cache  *cachesim.Cache
	rec    *trace.Recorder
}

// Metrics is an immutable snapshot of a metered run.
type Metrics struct {
	Work   int64 // total operations (unit-cost ops + memory ops + fork/join bookkeeping)
	Span   int64 // critical-path length of the computation DAG
	MemOps int64 // instrumented memory operations
	Reads  int64
	Writes int64
	Forks  int64 // number of binary forks

	CacheMisses   int64 // ideal-cache misses (0 if cache simulation disabled)
	CacheAccesses int64
	CacheM        int // cache parameters used (words)
	CacheB        int

	Trace trace.Fingerprint // adversary's-view fingerprint (zero if disabled)
}

// MeterOpts configures a metered run.
type MeterOpts struct {
	// CacheM, CacheB enable ideal-cache simulation when CacheM > 0.
	CacheM, CacheB int
	// EnableTrace turns on access-pattern recording.
	EnableTrace bool
	// TraceKeep retains this many raw events for diagnostics.
	TraceKeep int
	// Cancel, when non-nil, arms the run's cooperative cancellation token
	// (see Ctx.Check). An untripped token leaves the metered trace and
	// metrics byte-identical to a run with no token.
	Cancel *Cancel
}

// RunMetered executes fn under the metered executor and returns its
// metrics. Execution is sequential and deterministic.
func RunMetered(o MeterOpts, fn func(*Ctx)) *Metrics {
	m := &Meter{}
	if o.CacheM > 0 {
		b := o.CacheB
		if b <= 0 {
			b = 1
		}
		m.cache = cachesim.New(o.CacheM, b)
	}
	if o.EnableTrace {
		m.rec = trace.NewRecorder(o.TraceKeep)
	}
	c := &Ctx{m: m, cancel: o.Cancel}
	fn(c)
	return m.snapshot()
}

// RunMeteredRecorder is like RunMetered but also returns the raw trace
// recorder so callers can inspect retained prefixes.
func RunMeteredRecorder(o MeterOpts, fn func(*Ctx)) (*Metrics, *trace.Recorder) {
	m := &Meter{}
	if o.CacheM > 0 {
		b := o.CacheB
		if b <= 0 {
			b = 1
		}
		m.cache = cachesim.New(o.CacheM, b)
	}
	m.rec = trace.NewRecorder(o.TraceKeep)
	c := &Ctx{m: m, cancel: o.Cancel}
	fn(c)
	return m.snapshot(), m.rec
}

func (m *Meter) snapshot() *Metrics {
	mt := &Metrics{
		Work:   m.work,
		Span:   m.span,
		MemOps: m.memOps,
		Reads:  m.reads,
		Writes: m.writes,
		Forks:  m.forks,
	}
	if m.cache != nil {
		mt.CacheMisses = m.cache.Misses()
		mt.CacheAccesses = m.cache.Accesses()
		mt.CacheM = m.cache.M()
		mt.CacheB = m.cache.B()
	}
	if m.rec != nil {
		mt.Trace = m.rec.Fingerprint()
	}
	return mt
}

// Metered reports whether c is running under the metered executor.
func (c *Ctx) Metered() bool { return c != nil && c.m != nil }

// ParallelMode reports whether c is running under the work-stealing pool
// (true concurrency). Insecure baselines with arbitrary-CRCW write races
// serialize their write phases in this mode.
func (c *Ctx) ParallelMode() bool { return c != nil && c.w != nil }

// WorkerID returns the index of the pool worker executing c, or 0 in the
// serial and metered executors. A worker runs one task at a time, so
// WorkerID together with Workers is the per-worker scratch seam: harness
// code indexes a Workers()-long slice of scratch by WorkerID and gets
// lock-free thread-local reuse without allocating inside the hot leaf.
// Two caveats: pad or space the per-worker entries (adjacent scratch
// headers written by different workers false-share), and never hold an
// entry across a Fork — a worker waiting at a join leapfrogs into stolen
// tasks, and one of those may claim the same worker's entry.
func (c *Ctx) WorkerID() int {
	if c != nil && c.w != nil {
		return c.w.id
	}
	return 0
}

// Workers returns the size of the pool executing c, or 1 in the serial and
// metered executors.
func (c *Ctx) Workers() int {
	if c != nil && c.w != nil {
		return len(c.w.pool.workers)
	}
	return 1
}

// Op charges n unit-cost operations (work and span each increase by n).
// Algorithms call Op for local computation that touches no instrumented
// memory, so the work measure reflects total operations, not just memory
// traffic.
func (c *Ctx) Op(n int64) {
	if c.m != nil {
		c.m.work += n
		c.m.span += n
	}
}

// Access records one instrumented memory operation at element address addr.
// It is called by the mem package.
func (c *Ctx) Access(addr uint64, write bool) {
	m := c.m
	if m == nil {
		return
	}
	m.work++
	m.span++
	m.memOps++
	if write {
		m.writes++
	} else {
		m.reads++
	}
	if m.cache != nil {
		m.cache.Touch(addr)
	}
	if m.rec != nil {
		k := trace.Read
		if write {
			k = trace.Write
		}
		m.rec.Record(k, addr)
	}
}

// Mark records an application-defined annotation in the trace (phase
// boundaries). It contributes no work.
func (c *Ctx) Mark(tag uint64) {
	if c.m != nil && c.m.rec != nil {
		c.m.rec.Record(trace.Mark, tag)
	}
}

// Fork executes a and b as the two branches of a binary fork and joins
// them. In metered mode the branches run sequentially and the span is
// combined as max(span_a, span_b) plus unit fork/join costs. In parallel
// mode b is made available to thieves while the worker runs a.
func (c *Ctx) Fork(a, b func(*Ctx)) {
	if m := c.m; m != nil {
		m.forks++
		m.work++ // fork bookkeeping
		if m.rec != nil {
			m.rec.Record(trace.ForkEvent, 0)
		}
		s0 := m.span
		m.span = s0 + 1
		a(c)
		sa := m.span
		m.span = s0 + 1
		b(c)
		if m.span < sa {
			m.span = sa
		}
		m.span++ // join
		m.work++
		if m.rec != nil {
			m.rec.Record(trace.JoinEvent, 0)
		}
		return
	}
	if c.w == nil {
		// Serial context.
		a(c)
		b(c)
		return
	}
	w := c.w
	t := &task{fn: b}
	w.dq.push(t)
	// A panic out of a (a cancellation Check or a genuine fault) must not
	// unwind past this frame while b is possibly running on a thief: catch
	// it, settle b, then re-raise. Level-by-level, this guarantees the
	// whole computation has quiesced when the panic reaches the Run
	// boundary — full strictness holds even for aborted runs.
	var aPanic any
	func() {
		defer func() {
			if r := recover(); r != nil {
				aPanic = wrapPanic(r, stackTrace())
			}
		}()
		a(c)
	}()
	if got := w.dq.pop(); got != nil {
		if got != t {
			// Fully strict fork-join guarantees the bottom of the deque is
			// our own task; anything else is a scheduler bug.
			panic("forkjoin: deque bottom is not the forked task")
		}
		if aPanic != nil {
			// b was never stolen: discard it unrun, exactly as the serial
			// executor would (a panic in a skips b), and re-raise.
			panic(aPanic)
		}
		b(c)
		t.done.Store(1)
		return
	}
	w.join(t)
	if aPanic != nil {
		panic(aPanic)
	}
	if t.err != nil {
		// The thief's panic, re-raised in the joining frame.
		panic(t.err)
	}
}

// task is a unit of stealable work.
type task struct {
	fn   func(*Ctx)
	done atomic.Uint32
	// err holds the wrapped panic of a stolen task's aborted execution,
	// written before done and re-raised by the joiner.
	err any
}
