package forkjoin

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestSerialCheck pins the cooperative contract on the serial executor: an
// untripped token is invisible, a tripped one panics *CanceledError with
// the public site at the next Check.
func TestSerialCheck(t *testing.T) {
	cn := new(Cancel)
	c := SerialCancel(cn)
	c.Check("a.site") // untripped: must not panic
	cn.Cancel()
	var caught any
	func() {
		defer func() { caught = recover() }()
		c.Check("b.site")
	}()
	ce, ok := caught.(*CanceledError)
	if !ok {
		t.Fatalf("Check after Cancel panicked %T (%v), want *CanceledError", caught, caught)
	}
	if ce.Site != "b.site" {
		t.Fatalf("CanceledError site = %q, want %q", ce.Site, "b.site")
	}
	// A nil ctx Check (helpers called with no harness) must be a no-op.
	var nilCtx *Ctx
	nilCtx.Check("c.site")
}

// TestRunCancelAborts cancels a running pool computation from another
// goroutine and requires: the abort surfaces as *CanceledError at the
// caller, the computation fully quiesces first, and the pool is reusable.
func TestRunCancelAborts(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	cn := new(Cancel)
	started := make(chan struct{})
	go func() {
		<-started
		time.Sleep(2 * time.Millisecond)
		cn.Cancel()
	}()
	var caught any
	func() {
		defer func() { caught = recover() }()
		p.RunCancel(cn, func(c *Ctx) {
			close(started)
			for {
				c.Check("root.loop")
				ParallelRange(c, 0, 1<<10, 32, func(c *Ctx, lo, hi int) {
					c.Check("body.range")
					time.Sleep(20 * time.Microsecond)
				})
			}
		})
	}()
	if _, ok := caught.(*CanceledError); !ok {
		t.Fatalf("canceled run panicked %T (%v), want *CanceledError", caught, caught)
	}
	// Full strictness must hold through the panic: the pool accepts and
	// completes the next run.
	var n atomic.Int64
	p.Run(func(c *Ctx) {
		ParallelRange(c, 0, 100, 1, func(c *Ctx, lo, hi int) {
			n.Add(int64(hi - lo))
		})
	})
	if n.Load() != 100 {
		t.Fatalf("post-cancel run covered %d/100 elements", n.Load())
	}
}

// TestForkPanicIsolation pins the panic path through Fork: an a-branch
// panic is wrapped *TaskPanic, the forked sibling is joined (or safely
// discarded when unstolen), the panic reaches the Run caller, and the
// pool's workers survive to run the next computation.
func TestForkPanicIsolation(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, branch := range []string{"a", "b"} {
		var caught any
		func() {
			defer func() { caught = recover() }()
			p.Run(func(c *Ctx) {
				// A tree of forks with one poisoned leaf, so stolen and
				// unstolen siblings both occur across iterations.
				ParallelRange(c, 0, 64, 1, func(c *Ctx, lo, hi int) {
					c.Fork(
						func(c *Ctx) {
							if branch == "a" && lo == 13 {
								panic("boom-a")
							}
						},
						func(c *Ctx) {
							if branch == "b" && lo == 13 {
								panic("boom-b")
							}
						},
					)
				})
			})
		}()
		if caught == nil {
			t.Fatalf("branch %s: panic did not propagate to Run caller", branch)
		}
		val := caught
		if tp, ok := caught.(*TaskPanic); ok {
			val = tp.Val
			if len(tp.Stack) == 0 {
				t.Fatalf("branch %s: TaskPanic carries no stack", branch)
			}
		}
		if want := "boom-" + branch; val != want {
			t.Fatalf("branch %s: panic value %v, want %q", branch, val, want)
		}
		// Quiescent unwinding: the same pool runs the next computation.
		var n atomic.Int64
		p.Run(func(c *Ctx) {
			ParallelRange(c, 0, 128, 1, func(c *Ctx, lo, hi int) { n.Add(int64(hi - lo)) })
		})
		if n.Load() != 128 {
			t.Fatalf("branch %s: post-panic run covered %d/128", branch, n.Load())
		}
	}
}

// TestCanceledErrorPassesThroughWrap pins that wrapPanic never re-wraps
// the typed payloads (a stolen task's CanceledError must reach the
// lifecycle boundary as itself, not buried in a TaskPanic).
func TestCanceledErrorPassesThroughWrap(t *testing.T) {
	ce := &CanceledError{Site: "x"}
	if got := wrapPanic(ce, nil); got != ce {
		t.Fatalf("wrapPanic(*CanceledError) = %#v, want identity", got)
	}
	tp := &TaskPanic{Val: "v"}
	if got := wrapPanic(tp, nil); got != tp {
		t.Fatalf("wrapPanic(*TaskPanic) = %#v, want identity", got)
	}
	if _, ok := wrapPanic("raw", []byte("st")).(*TaskPanic); !ok {
		t.Fatal("wrapPanic(raw) must wrap into *TaskPanic")
	}
}
