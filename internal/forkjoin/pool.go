package forkjoin

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oblivmc/internal/prng"
)

// Pool is a work-stealing scheduler for binary fork-join computations.
//
// The pool owns nWorkers-1 background worker goroutines; the goroutine that
// calls Run acts as worker 0 for the duration of the call. Run is not
// reentrant and must not be called concurrently from multiple goroutines.
type Pool struct {
	workers []*worker
	stop    atomic.Bool
	wg      sync.WaitGroup
	runMu   sync.Mutex
}

type worker struct {
	pool *Pool
	id   int
	dq   deque
	rng  uint64
	ctx  Ctx
}

// NewPool creates a pool with n workers. n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: make([]*worker, n)}
	for i := 0; i < n; i++ {
		w := &worker{pool: p, id: i, rng: uint64(i)*0x9e3779b97f4a7c15 + 1}
		w.dq.init()
		w.ctx = Ctx{w: w}
		p.workers[i] = w
	}
	for i := 1; i < n; i++ {
		p.wg.Add(1)
		go p.workers[i].loop()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.workers) }

// OwnerCtx returns worker 0's context, for harnesses that issue a sequence
// of direct algorithm calls as the pool's root computation: the calling
// goroutine acts as worker 0 exactly as it does inside Run, with the
// background workers stealing its forks. Must not be used concurrently
// with Run or from more than one goroutine at a time.
func (p *Pool) OwnerCtx() *Ctx { return &p.workers[0].ctx }

// Run executes root on the pool and returns when root (and therefore every
// task it forked, by full strictness) has completed.
func (p *Pool) Run(root func(*Ctx)) {
	p.RunCancel(nil, root)
}

// RunCancel is Run with a cancellation token armed on every worker's
// context, so Check calls observe it from stolen tasks too. A panic out of
// root — including the *CanceledError a tripped token raises — propagates
// to the caller only after the computation has fully quiesced (each Fork
// frame joins its forked sibling before re-panicking), so the pool is
// reusable afterwards. The token is disarmed before returning.
func (p *Pool) RunCancel(cn *Cancel, root func(*Ctx)) {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.stop.Load() {
		panic("forkjoin: Run on closed Pool")
	}
	if cn != nil {
		// The writes are ordered before any task push (and therefore
		// before any steal) of this run, and the workers only read their
		// context while running a task, so arming and disarming here are
		// race-free.
		for _, w := range p.workers {
			w.ctx.cancel = cn
		}
		defer func() {
			for _, w := range p.workers {
				w.ctx.cancel = nil
			}
		}()
	}
	root(&p.workers[0].ctx)
}

// Close stops the background workers. The pool must be idle.
func (p *Pool) Close() {
	p.stop.Store(true)
	p.wg.Wait()
}

// RunParallel is a convenience wrapper: create a pool of n workers, run fn,
// close the pool.
func RunParallel(n int, fn func(*Ctx)) {
	p := NewPool(n)
	defer p.Close()
	p.Run(fn)
}

// RunParallelCancel is RunParallel with a cancellation token. The pool is
// closed (its workers joined) even when fn aborts by panic.
func RunParallelCancel(n int, cn *Cancel, fn func(*Ctx)) {
	p := NewPool(n)
	defer p.Close()
	p.RunCancel(cn, fn)
}

// loop is the background worker main loop.
func (w *worker) loop() {
	defer w.pool.wg.Done()
	idle := 0
	for {
		if w.pool.stop.Load() {
			return
		}
		if t := w.findWork(); t != nil {
			w.runTask(t)
			idle = 0
			continue
		}
		idle++
		if idle < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// findWork pops the local deque, then attempts randomized steals.
func (w *worker) findWork() *task {
	if t := w.dq.pop(); t != nil {
		return t
	}
	n := len(w.pool.workers)
	if n == 1 {
		return nil
	}
	// A bounded number of random steal attempts per call; the caller loops.
	for attempt := 0; attempt < 2*n; attempt++ {
		v := int(prng.SplitMix64(&w.rng) % uint64(n))
		if v == w.id {
			continue
		}
		if t := w.pool.workers[v].dq.steal(); t != nil {
			return t
		}
	}
	return nil
}

func (w *worker) runTask(t *task) {
	// A panic in a stolen task must not kill the worker goroutine (that
	// would deadlock its joiner and leak the pool): record it for the
	// joining frame to re-raise, and always publish completion — the err
	// write is ordered before the done release store.
	defer func() {
		if r := recover(); r != nil {
			t.err = wrapPanic(r, stackTrace())
		}
		t.done.Store(1)
	}()
	t.fn(&w.ctx)
}

// join waits for t to complete, leapfrogging: while waiting, the worker
// executes any other available task (its own deque first, then steals).
// This is the standard busy-leapfrog join that keeps workers productive and
// avoids blocking OS threads.
func (w *worker) join(t *task) {
	idle := 0
	for t.done.Load() == 0 {
		if other := w.findWork(); other != nil {
			w.runTask(other)
			idle = 0
			continue
		}
		idle++
		if idle < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(5 * time.Microsecond)
		}
	}
}
