// Command freeport prints one free TCP port on 127.0.0.1, for shell
// scripts (scripts/serve_smoke.sh) that need to start a server on a port
// no other job holds.
package main

import (
	"fmt"
	"log"
	"net"
)

func main() {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Println(l.Addr().(*net.TCPAddr).Port)
}
