#!/usr/bin/env sh
# serve_smoke.sh — end-to-end smoke of the oblivserve serving loop.
#
# Builds oblivserve, starts it on a random free port, loads the generated
# example relation through the client, runs a fused group-by with
# -keyorder -as (materializing an OrderKeys result), then (a) repeats the
# identical query and asserts it is served from the cross-query cache
# with 0 executed sorts, and (b) queries the materialization and asserts
# the order token saved a sort versus the cold plan. This is the CI leg
# that keeps the client wire structs honest against the server's.
set -eu

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/oblivserve" ./cmd/oblivserve

# Pick a free port: bind :0 via the toolchain's resolver-free stdlib.
PORT="$(go run ./scripts/freeport 2>/dev/null || true)"
[ -n "$PORT" ] || PORT=18344
ADDR="http://127.0.0.1:$PORT"

"$BIN/oblivserve" serve -addr "127.0.0.1:$PORT" -lanes 2 &
SRV_PID=$!

# Wait for readiness (the client's WaitReady, via a trivial load retry).
i=0
until "$BIN/oblivserve" load -addr "$ADDR" -name _probe -rows 2 -groups 2 >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || { echo "serve_smoke: server never came up" >&2; exit 1; }
  sleep 0.1
done

"$BIN/oblivserve" load -addr "$ADDR" -name sales -rows 2048 -groups 32 -seed 7

run_query() {
  "$BIN/oblivserve" query -addr "$ADDR" -show 0 "$@"
}

echo "--- cold fused query, materialized in key order"
COLD="$(run_query -table sales -agg sum -keyorder -as totals)"
echo "$COLD"
echo "$COLD" | grep -q 'cached=false' || { echo "FAIL: cold run reported cached" >&2; exit 1; }
COLD_SORTS="$(echo "$COLD" | sed -n 's/.*sorts=\([0-9]*\).*/\1/p')"
[ "$COLD_SORTS" -ge 1 ] || { echo "FAIL: cold run executed $COLD_SORTS sorts" >&2; exit 1; }

echo "--- identical repeat: must be a cache hit with 0 sorts"
WARM="$(run_query -table sales -agg sum -keyorder -as totals)"
echo "$WARM"
echo "$WARM" | grep -q 'cached=true' || { echo "FAIL: repeat not served from cache" >&2; exit 1; }
echo "$WARM" | grep -q 'sorts=0 ' || { echo "FAIL: cached repeat executed sorts" >&2; exit 1; }

echo "--- follow-up over the ordered materialization: token must skip a sort"
FOLLOW="$(run_query -table totals -agg max -keyorder)"
echo "$FOLLOW"
F_SORTS="$(echo "$FOLLOW" | sed -n 's/.*sorts=\([0-9]*\).*/\1/p')"
F_COLD="$(echo "$FOLLOW" | sed -n 's/.*cold=\([0-9]*\).*/\1/p')"
[ "$F_SORTS" -lt "$F_COLD" ] || {
  echo "FAIL: follow-up executed $F_SORTS sorts, cold plan $F_COLD — token unused" >&2
  exit 1
}

echo "--- explain must show the carried input order"
"$BIN/oblivserve" explain -addr "$ADDR" -table totals -agg max -keyorder | tee /dev/stderr |
  grep -q 'in(' || { echo "FAIL: explain shows no input-order token" >&2; exit 1; }

echo "serve_smoke: OK (cold=$COLD_SORTS sorts, cached repeat=0, follow-up=$F_SORTS<$F_COLD)"
