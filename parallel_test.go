package oblivmc

// Parallel-correctness property tests for the multicore path: the same
// queries under ModeSerial and ModeParallel (several pool sizes) across
// both sort backends must produce byte-identical public results, and the
// trace fingerprint — which is defined by the metered executor, sequential
// by construction — must be unaffected by however many workers the pool
// runs. These tests run under -race by design: the pool's deques, the
// per-level Beneš routing fan-out, the grained scan sweeps, and the
// sample-sort scatter all execute with real concurrency here.

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"oblivmc/internal/prng"
)

// stressQueryRows draws a workload with heavy key duplication so Distinct,
// GroupBy, and TopK all do real work, padded past a power of two so the
// oblivious padding paths run too.
func stressQueryRows(n int, seed uint64) []Row {
	src := prng.New(seed)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Key: src.Uint64n(97), Val: src.Uint64n(1 << 30)}
	}
	return rows
}

func TestModeParallelMatchesSerial(t *testing.T) {
	tab := mustTable(t, stressQueryRows(3000, 1234)) // pads to 4096 slots
	queries := []Query{
		{
			Filter:   func(r Row) bool { return r.Val%7 != 0 },
			Distinct: true,
			GroupBy:  AggSum,
			TopK:     11,
		},
		{GroupBy: AggMax},
	}
	for qi, q := range queries {
		for _, backend := range []SortBackend{SortBitonic, SortShuffle} {
			ref, _, err := RunQuery(Config{Mode: ModeSerial, SortBackend: backend, Seed: 7}, tab, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				cfg := Config{Mode: ModeParallel, Workers: workers, SortBackend: backend, Seed: 7}
				got, _, err := RunQuery(cfg, tab, q)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("query %d, backend %d, workers %d", qi, backend, workers)
				if len(got.Rows()) != len(ref.Rows()) {
					t.Fatalf("%s: %d rows, want %d", label, len(got.Rows()), len(ref.Rows()))
				}
				for j := range ref.Rows() {
					if got.Rows()[j] != ref.Rows()[j] {
						t.Fatalf("%s: row %d = %v, want %v", label, j, got.Rows()[j], ref.Rows()[j])
					}
				}
			}
		}
	}
}

// TestFingerprintUnaffectedByParallelRuns pins that the adversary's-view
// fingerprint is a property of the metered (sequential) executor alone:
// metered runs bracketing a batch of multi-worker pool runs report the
// same fingerprint bit for bit.
func TestFingerprintUnaffectedByParallelRuns(t *testing.T) {
	tab := mustTable(t, stressQueryRows(700, 99)) // pads to 1024 slots
	q := Query{GroupBy: AggSum, TopK: 5}
	metered := func() interface{} {
		_, rep, err := RunQuery(Config{Mode: ModeMetered, Trace: true, SortBackend: SortBitonic}, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TraceFingerprint
	}
	before := metered()
	for _, workers := range []int{2, 8} {
		if _, _, err := RunQuery(Config{Mode: ModeParallel, Workers: workers, SortBackend: SortBitonic}, tab, q); err != nil {
			t.Fatal(err)
		}
	}
	if after := metered(); after != before {
		t.Fatalf("metered fingerprint moved across parallel runs: %v != %v", after, before)
	}
}

// TestScalingSmoke is the CI guard against parallelism regressions: a 2^18
// fused query at 4 workers must be no slower than the serial run (within a
// noise margin — it asserts "parallel doesn't lose", not a brittle speedup
// ratio, so it stays green on loaded runners). The measured ratio is
// logged, and appended to the job summary when GITHUB_STEP_SUMMARY is set,
// so the actual speedup trend is visible per run without gating on it.
func TestScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling smoke skipped in -short")
	}
	if raceEnabled {
		t.Skip("scaling smoke is a timing check; the race detector distorts it")
	}
	if runtime.NumCPU() < 2 {
		t.Skipf("scaling smoke needs >= 2 CPUs, have %d", runtime.NumCPU())
	}
	const n = 1 << 18
	tab := mustTable(t, stressQueryRows(n-n/8, 4321)) // pads to 2^18 slots
	q := Query{
		Filter:   func(r Row) bool { return r.Val%3 != 0 },
		Distinct: true,
		GroupBy:  AggSum,
		TopK:     benchTopKSmoke,
	}
	run := func(cfg Config) float64 {
		// Warm, then best-of-two: the minimum damps one-off scheduler and
		// allocator noise without averaging away a real regression.
		if _, _, err := RunQuery(cfg, tab, q); err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for i := 0; i < 2; i++ {
			start := time.Now()
			if _, _, err := RunQuery(cfg, tab, q); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start).Seconds(); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	serial := run(Config{Mode: ModeSerial, SortBackend: SortShuffle, Seed: 1, DeterministicShuffle: true})
	par := run(Config{Mode: ModeParallel, Workers: 4, SortBackend: SortShuffle, Seed: 1, DeterministicShuffle: true})
	ratio := serial / par // >1 means the parallel run was faster
	line := fmt.Sprintf("scaling smoke: n=%d serial=%.3fs 4-workers=%.3fs speedup=%.2fx (NumCPU=%d)",
		n, serial, par, ratio, runtime.NumCPU())
	t.Log(line)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			fmt.Fprintf(f, "%s\n\n", line)
			f.Close()
		}
	}
	// 10% headroom: on >= 2 real cores a 4-worker pool must at minimum not
	// lose to serial; anything below that is a scheduling or contention
	// regression, not noise.
	if par > serial*1.10 {
		t.Fatalf("4-worker run slower than serial beyond noise: %s", line)
	}
}

// benchTopKSmoke keeps the smoke query's TopK in one place.
const benchTopKSmoke = 9
