package oblivmc

// Parallel-correctness property tests for the multicore path: the same
// queries under ModeSerial and ModeParallel (several pool sizes) across
// both sort backends must produce byte-identical public results, and the
// trace fingerprint — which is defined by the metered executor, sequential
// by construction — must be unaffected by however many workers the pool
// runs. These tests run under -race by design: the pool's deques, the
// per-level Beneš routing fan-out, the grained scan sweeps, and the
// sample-sort scatter all execute with real concurrency here.

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"oblivmc/internal/benchdata"
	"oblivmc/internal/prng"
	"oblivmc/internal/relops"
)

// stressQueryRows draws a workload with heavy key duplication so Distinct,
// GroupBy, and TopK all do real work, padded past a power of two so the
// oblivious padding paths run too.
func stressQueryRows(n int, seed uint64) []Row {
	src := prng.New(seed)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Key: src.Uint64n(97), Val: src.Uint64n(1 << 30)}
	}
	return rows
}

func TestModeParallelMatchesSerial(t *testing.T) {
	tab := mustTable(t, stressQueryRows(3000, 1234)) // pads to 4096 slots
	queries := []Query{
		{
			Filter:   func(r Row) bool { return r.Val%7 != 0 },
			Distinct: true,
			GroupBy:  AggSum,
			TopK:     11,
		},
		{GroupBy: AggMax},
	}
	for qi, q := range queries {
		for _, backend := range []SortBackend{SortBitonic, SortShuffle} {
			ref, _, err := RunQuery(Config{Mode: ModeSerial, SortBackend: backend, Seed: 7}, tab, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				cfg := Config{Mode: ModeParallel, Workers: workers, SortBackend: backend, Seed: 7}
				got, _, err := RunQuery(cfg, tab, q)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("query %d, backend %d, workers %d", qi, backend, workers)
				if len(got.Rows()) != len(ref.Rows()) {
					t.Fatalf("%s: %d rows, want %d", label, len(got.Rows()), len(ref.Rows()))
				}
				for j := range ref.Rows() {
					if got.Rows()[j] != ref.Rows()[j] {
						t.Fatalf("%s: row %d = %v, want %v", label, j, got.Rows()[j], ref.Rows()[j])
					}
				}
			}
		}
	}
}

// TestFingerprintUnaffectedByParallelRuns pins that the adversary's-view
// fingerprint is a property of the metered (sequential) executor alone:
// metered runs bracketing a batch of multi-worker pool runs report the
// same fingerprint bit for bit.
func TestFingerprintUnaffectedByParallelRuns(t *testing.T) {
	tab := mustTable(t, stressQueryRows(700, 99)) // pads to 1024 slots
	q := Query{GroupBy: AggSum, TopK: 5}
	metered := func() interface{} {
		_, rep, err := RunQuery(Config{Mode: ModeMetered, Trace: true, SortBackend: SortBitonic}, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TraceFingerprint
	}
	before := metered()
	for _, workers := range []int{2, 8} {
		if _, _, err := RunQuery(Config{Mode: ModeParallel, Workers: workers, SortBackend: SortBitonic}, tab, q); err != nil {
			t.Fatal(err)
		}
	}
	if after := metered(); after != before {
		t.Fatalf("metered fingerprint moved across parallel runs: %v != %v", after, before)
	}
}

// TestScalingSmoke is the CI guard against parallelism regressions: a 2^18
// fused query at 4 workers must be no slower than the serial run (within a
// noise margin — it asserts "parallel doesn't lose", not a brittle speedup
// ratio, so it stays green on loaded runners). The measured ratio is
// logged, and appended to the job summary when GITHUB_STEP_SUMMARY is set,
// so the actual speedup trend is visible per run without gating on it.
func TestScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling smoke skipped in -short")
	}
	if raceEnabled {
		t.Skip("scaling smoke is a timing check; the race detector distorts it")
	}
	if runtime.NumCPU() < 2 {
		t.Skipf("scaling smoke needs >= 2 CPUs, have %d", runtime.NumCPU())
	}
	const n = 1 << 18
	tab := mustTable(t, stressQueryRows(n-n/8, 4321)) // pads to 2^18 slots
	q := Query{
		Filter:   func(r Row) bool { return r.Val%3 != 0 },
		Distinct: true,
		GroupBy:  AggSum,
		TopK:     benchTopKSmoke,
	}
	run := func(cfg Config) float64 {
		// Warm, then best-of-two: the minimum damps one-off scheduler and
		// allocator noise without averaging away a real regression.
		if _, _, err := RunQuery(cfg, tab, q); err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for i := 0; i < 2; i++ {
			start := time.Now()
			if _, _, err := RunQuery(cfg, tab, q); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start).Seconds(); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	serial := run(Config{Mode: ModeSerial, SortBackend: SortShuffle, Seed: 1, DeterministicShuffle: true})
	par := run(Config{Mode: ModeParallel, Workers: 4, SortBackend: SortShuffle, Seed: 1, DeterministicShuffle: true})
	ratio := serial / par // >1 means the parallel run was faster
	line := fmt.Sprintf("scaling smoke: n=%d serial=%.3fs 4-workers=%.3fs speedup=%.2fx (NumCPU=%d)",
		n, serial, par, ratio, runtime.NumCPU())
	t.Log(line)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			fmt.Fprintf(f, "%s\n\n", line)
			f.Close()
		}
	}
	// 10% headroom: on >= 2 real cores a 4-worker pool must at minimum not
	// lose to serial; anything below that is a scheduling or contention
	// regression, not noise.
	if par > serial*1.10 {
		t.Fatalf("4-worker run slower than serial beyond noise: %s", line)
	}
}

// benchTopKSmoke keeps the smoke query's TopK in one place.
const benchTopKSmoke = 9

// joinStressTables builds a genuinely many-to-many pair at width w: keys
// repeat on both sides, so the expansion pipeline (DistributeOrdered, the
// scatter/propagate/compact tail) does real duplication work.
func joinStressTables(t *testing.T, nl, nr int, w int, seed uint64) (Table, Table) {
	t.Helper()
	src := prng.New(seed)
	mk := func(n int, keySpace uint64) Table {
		rows := make([]WideRow, n)
		for i := range rows {
			keys := make([]uint64, w)
			for c := range keys {
				keys[c] = src.Uint64n(keySpace)
			}
			rows[i] = WideRow{Keys: keys, Val: src.Uint64n(1 << 30)}
		}
		tab, err := NewWideTable(rows)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	return mk(nl, 23), mk(nr, 23)
}

// TestJoinAllModeParallelMatchesSerial: the many-to-many join under
// ModeSerial and ModeParallel (several pool sizes, both sort backends, both
// key widths) must produce byte-identical joined rows. The capacity rides
// JoinCapAuto, so the advisor's parallel path is exercised too. Runs under
// -race by design: the bitonic-merge fan-out and the grained expansion
// scans execute with real concurrency here.
func TestJoinAllModeParallelMatchesSerial(t *testing.T) {
	for _, w := range []int{1, 2} {
		left, right := joinStressTables(t, 120, 400, w, 777)
		for _, backend := range []SortBackend{SortBitonic, SortShuffle} {
			ref, _, err := JoinAllRows(Config{Mode: ModeSerial, SortBackend: backend, Seed: 7}, left, right, JoinCapAuto)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				cfg := Config{Mode: ModeParallel, Workers: workers, SortBackend: backend, Seed: 7}
				got, _, err := JoinAllRows(cfg, left, right, JoinCapAuto)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("width %d, backend %d, workers %d", w, backend, workers)
				if len(got) != len(ref) {
					t.Fatalf("%s: %d rows, want %d", label, len(got), len(ref))
				}
				for j := range ref {
					if fmt.Sprint(got[j]) != fmt.Sprint(ref[j]) {
						t.Fatalf("%s: row %d = %v, want %v", label, j, got[j], ref[j])
					}
				}
			}
		}
	}
}

// TestJoinAllFingerprintUnaffectedByParallelRuns pins that the join
// pipeline's adversary's-view fingerprint is a property of the metered
// (sequential) executor alone: metered runs bracketing multi-worker pool
// runs of the same join report the same fingerprint bit for bit.
func TestJoinAllFingerprintUnaffectedByParallelRuns(t *testing.T) {
	left, right := joinStressTables(t, 60, 200, 1, 424242)
	const maxOut = 2048
	metered := func() interface{} {
		_, rep, err := JoinAllRows(Config{Mode: ModeMetered, Trace: true, SortBackend: SortBitonic}, left, right, maxOut)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TraceFingerprint
	}
	before := metered()
	for _, workers := range []int{2, 8} {
		if _, _, err := JoinAllRows(Config{Mode: ModeParallel, Workers: workers, SortBackend: SortBitonic}, left, right, maxOut); err != nil {
			t.Fatal(err)
		}
	}
	if after := metered(); after != before {
		t.Fatalf("metered join fingerprint moved across parallel runs: %v != %v", after, before)
	}
}

// TestJoinAllScalingSmoke guards the join_all parallel path specifically
// (the 4-worker regression this PR fixed): a 2^18 many-to-many join at 4
// workers must be no slower than the serial run, same skip rules and noise
// margin as TestScalingSmoke.
func TestJoinAllScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling smoke skipped in -short")
	}
	if raceEnabled {
		t.Skip("scaling smoke is a timing check; the race detector distorts it")
	}
	if runtime.NumCPU() < 2 {
		t.Skipf("scaling smoke needs >= 2 CPUs, have %d", runtime.NumCPU())
	}
	const n = 1 << 18
	lrecs, rrecs, maxOut := benchdata.JoinAllRecords(n)
	toRows := func(recs []relops.Record) []Row {
		rows := make([]Row, len(recs))
		for i, r := range recs {
			rows[i] = Row{Key: r.Key, Val: r.Val}
		}
		return rows
	}
	left := mustTable(t, toRows(lrecs))
	right := mustTable(t, toRows(rrecs))
	run := func(cfg Config) float64 {
		// Warm, then best-of-two, as in TestScalingSmoke.
		if _, _, err := JoinAllRows(cfg, left, right, maxOut); err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for i := 0; i < 2; i++ {
			start := time.Now()
			if _, _, err := JoinAllRows(cfg, left, right, maxOut); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start).Seconds(); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	serial := run(Config{Mode: ModeSerial, SortBackend: SortShuffle, Seed: 1, DeterministicShuffle: true})
	par := run(Config{Mode: ModeParallel, Workers: 4, SortBackend: SortShuffle, Seed: 1, DeterministicShuffle: true})
	ratio := serial / par
	line := fmt.Sprintf("join_all scaling smoke: n=%d serial=%.3fs 4-workers=%.3fs speedup=%.2fx (NumCPU=%d)",
		n, serial, par, ratio, runtime.NumCPU())
	t.Log(line)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			fmt.Fprintf(f, "%s\n\n", line)
			f.Close()
		}
	}
	if par > serial*1.10 {
		t.Fatalf("4-worker join_all slower than serial beyond noise: %s", line)
	}
}
