// Package client is the Go client of the oblivserve HTTP/JSON surface
// (internal/serve): load and drop relations, run declarative query specs,
// and read the per-query execution stats the server reports — the cached
// flag and executed sort-pass counts the cross-query planner is judged
// by. The wire structs mirror the server's; both sides are exercised
// against each other by the serve-smoke CI job.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Row is one (keys..., value) record on the wire.
type Row struct {
	Keys []uint64 `json:"keys"`
	Val  uint64   `json:"val"`
}

// Filter is the declarative filter clause: compare column Col (a key
// column by index, or the value column when -1) against Value with Op
// (eq, ne, lt, le, gt, ge).
type Filter struct {
	Col   int    `json:"col"`
	Op    string `json:"op"`
	Value uint64 `json:"value"`
}

// Join is the declarative join clause against a loaded relation. Set
// MaxOut to a public output capacity, or JoinCap to "auto" to let the
// server's capacity advisor size the output at the worst-case match bound
// (mutually exclusive).
type Join struct {
	Table   string `json:"table"`
	MaxOut  int    `json:"max_out,omitempty"`
	JoinCap string `json:"join_cap,omitempty"`
}

// Spec is one declarative query over a loaded relation. Graph, when set
// to "cc", "msf", or "pagerank", runs that graph operator over the named
// width-2 edge table instead of the relational pipeline (the relational
// clauses must then be absent); GraphRounds is the fixed round count for
// "cc" (0 = converge) and the iteration count for "pagerank".
type Spec struct {
	Table       string  `json:"table"`
	Join        *Join   `json:"join,omitempty"`
	Filter      *Filter `json:"filter,omitempty"`
	Distinct    bool    `json:"distinct,omitempty"`
	GroupBy     string  `json:"group_by,omitempty"`
	TopK        int     `json:"top_k,omitempty"`
	KeyOrderOut bool    `json:"key_order_out,omitempty"`
	NoOptimize  bool    `json:"no_optimize,omitempty"`
	As          string  `json:"as,omitempty"`
	Graph       string  `json:"graph,omitempty"`
	GraphRounds int     `json:"graph_rounds,omitempty"`
}

// Stats is the server's per-query execution accounting.
type Stats struct {
	Cached         bool   `json:"cached"`
	SortPasses     int    `json:"sort_passes"`
	ColdSortPasses int    `json:"cold_sort_passes"`
	Plan           string `json:"plan"`
	Order          string `json:"order"`
}

// TableInfo is the public metadata of one loaded relation.
type TableInfo struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Rows    int    `json:"rows"`
	Width   int    `json:"width"`
	Order   string `json:"order"`
}

// QueryResult is one query's rows plus stats.
type QueryResult struct {
	Rows          []Row  `json:"rows"`
	Stats         Stats  `json:"stats"`
	StoredAs      string `json:"stored_as,omitempty"`
	StoredVersion int    `json:"stored_version,omitempty"`
}

// Client talks to one oblivserve instance.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g.
// "http://localhost:8344"). The underlying http.Client has no timeout:
// oblivious queries run full padded passes, so calls can be long — wrap
// with your own client via NewWithHTTP to bound them.
func New(base string) *Client {
	return NewWithHTTP(base, &http.Client{})
}

// NewWithHTTP is New with a caller-supplied http.Client.
func NewWithHTTP(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// apiError is a non-2xx server response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("oblivserve: %s (HTTP %d)", e.Msg, e.Status)
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &apiError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks liveness.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/v1/healthz", nil, nil)
}

// WaitReady polls Health until the server answers or the timeout lapses.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := c.Health()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("oblivserve: not ready after %v: %w", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Load binds rows to name on the server.
func (c *Client) Load(name string, rows []Row, replace bool) (TableInfo, error) {
	var info TableInfo
	err := c.do(http.MethodPost, "/v1/tables", struct {
		Name    string `json:"name"`
		Rows    []Row  `json:"rows"`
		Replace bool   `json:"replace,omitempty"`
	}{name, rows, replace}, &info)
	return info, err
}

// List returns the loaded relations' metadata.
func (c *Client) List() ([]TableInfo, error) {
	var out []TableInfo
	err := c.do(http.MethodGet, "/v1/tables", nil, &out)
	return out, err
}

// Drop unbinds name.
func (c *Client) Drop(name string) error {
	return c.do(http.MethodDelete, "/v1/tables/"+url.PathEscape(name), nil, nil)
}

// Query executes spec.
func (c *Client) Query(spec Spec) (QueryResult, error) {
	var out QueryResult
	err := c.do(http.MethodPost, "/v1/query", spec, &out)
	return out, err
}

// Explain renders spec's order-aware plan without executing it.
func (c *Client) Explain(spec Spec) (string, error) {
	var out struct {
		Plan string `json:"plan"`
	}
	err := c.do(http.MethodPost, "/v1/explain", spec, &out)
	return out.Plan, err
}
